package dtdevolve_test

// Integration tests driving the whole pipeline over the file corpora in
// testdata/: real DTD files, real XML files, end to end.

import (
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"dtdevolve"
)

func loadDTD(t *testing.T, path, root string) *dtdevolve.DTD {
	t.Helper()
	d, err := dtdevolve.ParseDTDFile(path)
	if err != nil {
		t.Fatalf("ParseDTDFile(%s): %v", path, err)
	}
	d.Name = root
	return d
}

func loadDocs(t *testing.T, dir string) []*dtdevolve.Document {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".xml") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	var docs []*dtdevolve.Document
	for _, name := range names {
		doc, err := dtdevolve.ParseDocumentFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("parse %s: %v", name, err)
		}
		docs = append(docs, doc)
	}
	return docs
}

func TestIntegrationPlayCorpus(t *testing.T) {
	d := loadDTD(t, "testdata/plays/play.dtd", "play")
	docs := loadDocs(t, "testdata/plays")
	if len(docs) != 2 {
		t.Fatalf("docs = %d", len(docs))
	}
	// hamlet-excerpt is valid; modern-play deviates (author, footnote).
	if vs := dtdevolve.Validate(docs[0], d); len(vs) != 0 {
		t.Errorf("hamlet violations: %v", vs)
	}
	if sim := dtdevolve.Similarity(docs[0], d); sim != 1 {
		t.Errorf("hamlet similarity = %v", sim)
	}
	if vs := dtdevolve.Validate(docs[1], d); len(vs) == 0 {
		t.Error("modern-play should not be valid")
	}
	sim := dtdevolve.Similarity(docs[1], d)
	if !(sim > 0.7 && sim < 1) {
		t.Errorf("modern-play similarity = %v, want high but below 1", sim)
	}
	// Adapting the modern play to the classic DTD makes it valid.
	a := dtdevolve.NewAdapter(d, dtdevolve.DefaultAdaptOptions())
	fixed, report := a.Adapt(docs[1])
	if vs := dtdevolve.Validate(fixed, d); len(vs) != 0 {
		t.Errorf("adapted modern-play still invalid: %v", vs)
	}
	if report.Dropped == 0 {
		t.Error("adaptation should have dropped the novel elements")
	}
}

func TestIntegrationFeedEvolution(t *testing.T) {
	d := loadDTD(t, "testdata/feeds/feed.dtd", "feed")
	docs := loadDocs(t, "testdata/feeds")
	if len(docs) != 12 {
		t.Fatalf("docs = %d", len(docs))
	}
	// Every feed carries <tag> elements the DTD does not know.
	for i, doc := range docs {
		if len(dtdevolve.Validate(doc, d)) == 0 {
			t.Fatalf("feed %d unexpectedly valid", i)
		}
	}
	evolved, report := dtdevolve.EvolveOnce(d, docs, dtdevolve.DefaultEvolveConfig())
	for i, doc := range docs {
		if vs := dtdevolve.Validate(doc, evolved); len(vs) != 0 {
			t.Errorf("feed %d invalid after evolution: %v\n%s", i, vs, evolved)
		}
	}
	if evolved.Elements["tag"] == nil {
		t.Errorf("tag not declared:\n%s", evolved)
	}
	var entryChange string
	for _, c := range report.Changes {
		if c.Name == "entry" {
			entryChange = c.New
		}
	}
	if !strings.Contains(entryChange, "tag") {
		t.Errorf("entry did not gain tag: %s", entryChange)
	}
	// The evolved DTD serializes and reparses.
	if _, err := dtdevolve.ParseDTDString(evolved.String()); err != nil {
		t.Fatalf("evolved DTD does not reparse: %v", err)
	}
}

func TestIntegrationFeedSourceWithStoreAndSnapshot(t *testing.T) {
	d := loadDTD(t, "testdata/feeds/feed.dtd", "feed")
	cfg := dtdevolve.DefaultConfig()
	cfg.MinDocs = 8
	src := dtdevolve.NewSource(cfg)
	src.AddDTD("feed", d)
	dir := t.TempDir()
	if err := src.EnableStore(dir); err != nil {
		t.Fatal(err)
	}
	defer src.CloseStore()

	evolved := false
	for _, doc := range loadDocs(t, "testdata/feeds") {
		if res := src.Add(doc); res.Evolved {
			evolved = true
		}
	}
	if !evolved {
		t.Fatal("the feed corpus did not trigger an evolution")
	}
	// The store is durable: the segment file exists on disk.
	if _, err := os.Stat(filepath.Join(dir, "feed.seg")); err != nil {
		t.Errorf("segment missing: %v", err)
	}
	// Snapshot and restore preserve the evolved DTD.
	data, err := src.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := dtdevolve.RestoreSource(cfg, data)
	if err != nil {
		t.Fatal(err)
	}
	if !restored.DTD("feed").Equal(src.DTD("feed")) {
		t.Error("restored DTD differs")
	}
}
