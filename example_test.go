package dtdevolve_test

import (
	"fmt"
	"log"

	"dtdevolve"
)

// ExampleSimilarity shows the flexible classification measure: a document
// close to a DTD gets a high degree instead of a boolean rejection.
func ExampleSimilarity() {
	d, err := dtdevolve.ParseDTDString(`
<!ELEMENT article (title, body)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT body (#PCDATA)>`)
	if err != nil {
		log.Fatal(err)
	}
	valid, _ := dtdevolve.ParseDocumentString(`<article><title>t</title><body>b</body></article>`)
	drifted, _ := dtdevolve.ParseDocumentString(`<article><title>t</title><author>a</author><body>b</body></article>`)
	fmt.Printf("valid:   %.2f\n", dtdevolve.Similarity(valid, d))
	fmt.Printf("drifted: %.2f\n", dtdevolve.Similarity(drifted, d))
	fmt.Printf("valid is strictly valid: %v\n", len(dtdevolve.Validate(valid, d)) == 0)
	// Output:
	// valid:   1.00
	// drifted: 0.77
	// valid is strictly valid: true
}

// ExampleEvolveOnce evolves a DTD against a batch of drifted documents.
func ExampleEvolveOnce() {
	d, err := dtdevolve.ParseDTDString(`
<!ELEMENT article (title, body)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT body (#PCDATA)>`)
	if err != nil {
		log.Fatal(err)
	}
	var docs []*dtdevolve.Document
	for i := 0; i < 10; i++ {
		doc, _ := dtdevolve.ParseDocumentString(
			`<article><title>t</title><author>a</author><body>b</body></article>`)
		docs = append(docs, doc)
	}
	evolved, _ := dtdevolve.EvolveOnce(d, docs, dtdevolve.DefaultEvolveConfig())
	fmt.Println(evolved.Elements["article"])
	// Output:
	// (title, author, body)
}

// ExampleSource demonstrates the automatic lifecycle: classify, record,
// and evolve once enough documents deviate.
func ExampleSource() {
	d, err := dtdevolve.ParseDTDString(`
<!ELEMENT event (ts, msg)>
<!ELEMENT ts (#PCDATA)>
<!ELEMENT msg (#PCDATA)>`)
	if err != nil {
		log.Fatal(err)
	}
	d.Name = "event"
	cfg := dtdevolve.DefaultConfig()
	cfg.MinDocs = 5
	src := dtdevolve.NewSource(cfg)
	src.AddDTD("event", d)
	for i := 0; i < 10; i++ {
		doc, _ := dtdevolve.ParseDocumentString(
			`<event><ts>now</ts><msg>ok</msg><level>info</level></event>`)
		if res := src.Add(doc); res.Evolved {
			fmt.Printf("evolved after %d documents\n", i+1)
			break
		}
	}
	fmt.Print(src.DTD("event"))
	// Output:
	// evolved after 5 documents
	// <!ELEMENT event (ts, msg, level)>
	// <!ELEMENT ts (#PCDATA)>
	// <!ELEMENT msg (#PCDATA)>
	// <!ELEMENT level (#PCDATA)>
}

// ExampleNewAdapter adapts an old document to an evolved schema.
func ExampleNewAdapter() {
	d, err := dtdevolve.ParseDTDString(`
<!ELEMENT order (customer, total)>
<!ELEMENT customer (#PCDATA)>
<!ELEMENT total (#PCDATA)>`)
	if err != nil {
		log.Fatal(err)
	}
	opts := dtdevolve.DefaultAdaptOptions()
	opts.PlaceholderText = "0.00"
	adapter := dtdevolve.NewAdapter(d, opts)
	old, _ := dtdevolve.ParseDocumentString(`<order><customer>acme</customer><legacy/></order>`)
	adapted, report := adapter.Adapt(old)
	fmt.Println(adapted.Root)
	fmt.Printf("dropped %d, inserted %d\n", report.Dropped, report.Inserted)
	// Output:
	// <order><customer>acme</customer><total>0.00</total></order>
	// dropped 1, inserted 1
}

// ExampleInferDTD runs the XTRACT-style from-scratch baseline.
func ExampleInferDTD() {
	var docs []*dtdevolve.Document
	for _, src := range []string{
		`<r><item/><item/><note/></r>`,
		`<r><item/></r>`,
	} {
		doc, _ := dtdevolve.ParseDocumentString(src)
		docs = append(docs, doc)
	}
	d, err := dtdevolve.InferDTD(docs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(d.Elements["r"])
	// Output:
	// (item+, note?)
}
