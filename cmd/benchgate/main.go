// Command benchgate compares two `go test -bench -benchmem` output files and
// fails when a benchmark regresses beyond a threshold. It is the CI gate for
// the allocation budget (DESIGN.md §9): allocs/op and B/op are
// machine-independent, so they are gated tightly; ns/op varies with the
// runner's hardware, so its threshold should be set leniently when the
// baseline was recorded on a different machine.
//
// Usage:
//
//	benchgate -old bench/baseline.txt -new current.txt \
//	          [-json report.json] [-max-alloc-regress 0.10] [-max-time-regress 0.10]
//
// Each input file may contain several runs of the same benchmark (go test
// -count=N); runs are averaged. Benchmarks present in only one file are
// reported but never fail the gate. The JSON report records both sides and
// the ratios, for archival next to the baseline.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// metrics is one benchmark's averaged measurements.
type metrics struct {
	Runs     int     `json:"runs"`
	NsPerOp  float64 `json:"ns_per_op"`
	BPerOp   float64 `json:"b_per_op"`
	AllocsOp float64 `json:"allocs_per_op"`
}

// comparison is one benchmark's entry in the JSON report. Ratios are
// new/old; a ratio above 1 is a regression, below 1 an improvement.
type comparison struct {
	Name        string   `json:"name"`
	Old         *metrics `json:"old,omitempty"`
	New         *metrics `json:"new,omitempty"`
	TimeRatio   float64  `json:"time_ratio,omitempty"`
	AllocsRatio float64  `json:"allocs_ratio,omitempty"`
	BytesRatio  float64  `json:"bytes_ratio,omitempty"`
	Status      string   `json:"status"` // "ok", "regression", "old-only", "new-only"
}

type report struct {
	OldFile    string       `json:"old_file"`
	NewFile    string       `json:"new_file"`
	MaxAlloc   float64      `json:"max_alloc_regress"`
	MaxTime    float64      `json:"max_time_regress"`
	Benchmarks []comparison `json:"benchmarks"`
	Failures   []string     `json:"failures,omitempty"`
}

func main() {
	oldPath := flag.String("old", "", "baseline benchmark output")
	newPath := flag.String("new", "", "current benchmark output")
	jsonPath := flag.String("json", "", "write a JSON comparison report to this file")
	maxAlloc := flag.Float64("max-alloc-regress", 0.10, "fail when allocs/op or B/op grow beyond this fraction")
	maxTime := flag.Float64("max-time-regress", 0.10, "fail when ns/op grows beyond this fraction")
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -old and -new are required")
		os.Exit(2)
	}

	oldBench, err := parseFile(*oldPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	newBench, err := parseFile(*newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}

	rep := report{OldFile: *oldPath, NewFile: *newPath, MaxAlloc: *maxAlloc, MaxTime: *maxTime}
	for _, name := range sortedNames(oldBench, newBench) {
		o, haveOld := oldBench[name]
		n, haveNew := newBench[name]
		c := comparison{Name: name}
		switch {
		case !haveNew:
			c.Old, c.Status = o, "old-only"
		case !haveOld:
			c.New, c.Status = n, "new-only"
		default:
			c.Old, c.New, c.Status = o, n, "ok"
			c.TimeRatio = ratio(n.NsPerOp, o.NsPerOp)
			c.AllocsRatio = ratio(n.AllocsOp, o.AllocsOp)
			c.BytesRatio = ratio(n.BPerOp, o.BPerOp)
			var why []string
			if c.AllocsRatio > 1+*maxAlloc {
				why = append(why, fmt.Sprintf("allocs/op %.1f → %.1f (%+.1f%%)", o.AllocsOp, n.AllocsOp, pct(c.AllocsRatio)))
			}
			if c.BytesRatio > 1+*maxAlloc {
				why = append(why, fmt.Sprintf("B/op %.0f → %.0f (%+.1f%%)", o.BPerOp, n.BPerOp, pct(c.BytesRatio)))
			}
			if c.TimeRatio > 1+*maxTime {
				why = append(why, fmt.Sprintf("ns/op %.0f → %.0f (%+.1f%%)", o.NsPerOp, n.NsPerOp, pct(c.TimeRatio)))
			}
			if len(why) > 0 {
				c.Status = "regression"
				rep.Failures = append(rep.Failures, fmt.Sprintf("%s: %s", name, strings.Join(why, "; ")))
			}
		}
		rep.Benchmarks = append(rep.Benchmarks, c)
	}

	for _, c := range rep.Benchmarks {
		switch c.Status {
		case "ok":
			fmt.Printf("ok    %-34s ns/op %.3fx  allocs/op %.3fx  B/op %.3fx\n", c.Name, c.TimeRatio, c.AllocsRatio, c.BytesRatio)
		case "regression":
			fmt.Printf("FAIL  %-34s ns/op %.3fx  allocs/op %.3fx  B/op %.3fx\n", c.Name, c.TimeRatio, c.AllocsRatio, c.BytesRatio)
		default:
			fmt.Printf("skip  %-34s (%s)\n", c.Name, c.Status)
		}
	}

	if *jsonPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(2)
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(2)
		}
	}

	if len(rep.Failures) > 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %d regression(s):\n", len(rep.Failures))
		for _, f := range rep.Failures {
			fmt.Fprintf(os.Stderr, "  %s\n", f)
		}
		os.Exit(1)
	}
}

func ratio(new, old float64) float64 {
	if old == 0 {
		if new == 0 {
			return 1
		}
		// Regressing from zero is infinitely bad; report a large finite
		// ratio so thresholds catch it and JSON stays valid.
		return 1e9
	}
	return new / old
}

func pct(r float64) float64 { return (r - 1) * 100 }

func sortedNames(a, b map[string]*metrics) []string {
	seen := make(map[string]bool)
	var names []string
	for n := range a {
		seen[n] = true
		names = append(names, n)
	}
	for n := range b {
		if !seen[n] {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}

// parseFile reads `go test -bench` output, averaging repeated runs of each
// benchmark. Lines that are not benchmark results are skipped.
func parseFile(path string) (map[string]*metrics, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string]*metrics)
	sums := make(map[string]*metrics)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		name, m, ok := parseLine(sc.Text())
		if !ok {
			continue
		}
		s, exists := sums[name]
		if !exists {
			s = &metrics{}
			sums[name] = s
		}
		s.Runs++
		s.NsPerOp += m.NsPerOp
		s.BPerOp += m.BPerOp
		s.AllocsOp += m.AllocsOp
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for name, s := range sums {
		out[name] = &metrics{
			Runs:     s.Runs,
			NsPerOp:  s.NsPerOp / float64(s.Runs),
			BPerOp:   s.BPerOp / float64(s.Runs),
			AllocsOp: s.AllocsOp / float64(s.Runs),
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no benchmark results found", path)
	}
	return out, nil
}

// parseLine parses one result line, e.g.
//
//	BenchmarkFoo-8   12345   987 ns/op   64 B/op   2 allocs/op
//
// The -N GOMAXPROCS suffix is stripped so baselines from machines with
// different core counts compare by benchmark name.
func parseLine(line string) (string, metrics, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", metrics{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	var m metrics
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			m.NsPerOp, seen = v, true
		case "B/op":
			m.BPerOp = v
		case "allocs/op":
			m.AllocsOp = v
		}
	}
	return name, m, seen
}
