package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestParseLine(t *testing.T) {
	name, m, ok := parseLine("BenchmarkE1Classification-8   \t 153\t   6992286 ns/op\t 3129468 B/op\t   42611 allocs/op")
	if !ok {
		t.Fatal("line not parsed")
	}
	if name != "BenchmarkE1Classification" {
		t.Errorf("name = %q (GOMAXPROCS suffix should be stripped)", name)
	}
	if m.NsPerOp != 6992286 || m.BPerOp != 3129468 || m.AllocsOp != 42611 {
		t.Errorf("metrics = %+v", m)
	}
}

func TestParseLineNoBenchmem(t *testing.T) {
	name, m, ok := parseLine("BenchmarkFoo \t 100 \t 42 ns/op")
	if !ok || name != "BenchmarkFoo" || m.NsPerOp != 42 {
		t.Errorf("got %q %+v ok=%v", name, m, ok)
	}
	if _, _, ok := parseLine("ok  \tdtdevolve\t31.957s"); ok {
		t.Error("non-benchmark line parsed")
	}
	if _, _, ok := parseLine("PASS"); ok {
		t.Error("PASS line parsed")
	}
}

func TestParseFileAveragesRuns(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.txt")
	content := `goos: linux
BenchmarkFoo-4 	 100 	 10 ns/op 	 8 B/op 	 1 allocs/op
BenchmarkFoo-4 	 100 	 30 ns/op 	 8 B/op 	 3 allocs/op
BenchmarkBar-4 	 100 	 7 ns/op 	 0 B/op 	 0 allocs/op
PASS
`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := parseFile(path)
	if err != nil {
		t.Fatal(err)
	}
	foo := got["BenchmarkFoo"]
	if foo == nil || foo.Runs != 2 || foo.NsPerOp != 20 || foo.AllocsOp != 2 {
		t.Errorf("BenchmarkFoo = %+v", foo)
	}
	bar := got["BenchmarkBar"]
	if bar == nil || bar.Runs != 1 || bar.AllocsOp != 0 {
		t.Errorf("BenchmarkBar = %+v", bar)
	}
}

func TestRatioFromZero(t *testing.T) {
	if r := ratio(0, 0); r != 1 {
		t.Errorf("ratio(0,0) = %v, want 1", r)
	}
	if r := ratio(5, 0); r <= 1.10 {
		t.Errorf("ratio(5,0) = %v: regressing from zero must trip any threshold", r)
	}
	if r := ratio(50, 100); r != 0.5 {
		t.Errorf("ratio(50,100) = %v, want 0.5", r)
	}
}
