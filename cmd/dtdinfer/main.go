// Command dtdinfer infers a DTD from scratch for a set of XML documents
// sharing a root element (the XTRACT-style baseline of the paper's related
// work, §5).
//
// Usage:
//
//	dtdinfer doc1.xml doc2.xml ...
//
// The inferred DTD is written to standard output.
package main

import (
	"flag"
	"fmt"
	"os"

	"dtdevolve"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: dtdinfer doc.xml...\n")
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	var docs []*dtdevolve.Document
	for _, path := range flag.Args() {
		doc, err := dtdevolve.ParseDocumentFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dtdinfer: %v\n", err)
			os.Exit(1)
		}
		docs = append(docs, doc)
	}
	d, err := dtdevolve.InferDTD(docs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dtdinfer: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(d.String())
}
