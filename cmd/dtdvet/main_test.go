package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// buildTool compiles the dtdvet binary once per test binary run.
func buildTool(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	exe := filepath.Join(dir, "dtdvet")
	cmd := exec.Command("go", "build", "-o", exe, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building dtdvet: %v\n%s", err, out)
	}
	return exe
}

func TestVersionProbe(t *testing.T) {
	exe := buildTool(t)
	out, err := exec.Command(exe, "-V=full").Output()
	if err != nil {
		t.Fatalf("-V=full: %v", err)
	}
	// The go command parses this line and hashes the trailing field into its
	// build cache key; the format is part of the vettool contract.
	got := strings.TrimSpace(string(out))
	re := regexp.MustCompile(`^dtdvet version devel comments-go-here buildID=[0-9a-f]{64}$`)
	if !re.MatchString(got) {
		t.Fatalf("-V=full output %q does not match %v", got, re)
	}
}

func TestFlagsProbe(t *testing.T) {
	exe := buildTool(t)
	out, err := exec.Command(exe, "-flags").Output()
	if err != nil {
		t.Fatalf("-flags: %v", err)
	}
	var flags []any
	if err := json.Unmarshal(out, &flags); err != nil || len(flags) != 0 {
		t.Fatalf("-flags output %q: want empty JSON list", out)
	}
}

// writeUnit lays out a one-file package plus the vet unit config the go
// command would hand the tool, and returns the config path and the vetx
// path the tool must create.
func writeUnit(t *testing.T, src string, vetxOnly bool) (cfgPath, vetxPath string) {
	t.Helper()
	dir := t.TempDir()
	goFile := filepath.Join(dir, "p.go")
	if err := os.WriteFile(goFile, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	vetxPath = filepath.Join(dir, "p.vetx")
	cfg := map[string]any{
		"ID":          "p",
		"Compiler":    "gc",
		"Dir":         dir,
		"ImportPath":  "p",
		"GoFiles":     []string{goFile},
		"ImportMap":   map[string]string{},
		"PackageFile": map[string]string{},
		"Standard":    map[string]bool{},
		"VetxOnly":    vetxOnly,
		"VetxOutput":  vetxPath,
	}
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfgPath = filepath.Join(dir, "p.cfg")
	if err := os.WriteFile(cfgPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return cfgPath, vetxPath
}

func TestUnitFindings(t *testing.T) {
	exe := buildTool(t)
	// A malformed directive is the one finding reproducible without any
	// export data for imports.
	cfgPath, vetxPath := writeUnit(t, `package p

// dtdvet:bogus
func F() {}
`, false)
	cmd := exec.Command(exe, cfgPath)
	out, err := cmd.CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 2 {
		t.Fatalf("want exit code 2 on findings, got err=%v\n%s", err, out)
	}
	if !strings.Contains(string(out), "malformed dtdvet directive") {
		t.Fatalf("diagnostic missing from output:\n%s", out)
	}
	if _, err := os.Stat(vetxPath); err != nil {
		t.Fatalf("vetx facts file not written: %v", err)
	}
}

func TestUnitClean(t *testing.T) {
	exe := buildTool(t)
	cfgPath, vetxPath := writeUnit(t, `package p

func F() {}
`, false)
	if out, err := exec.Command(exe, cfgPath).CombinedOutput(); err != nil {
		t.Fatalf("clean unit: %v\n%s", err, out)
	}
	if _, err := os.Stat(vetxPath); err != nil {
		t.Fatalf("vetx facts file not written: %v", err)
	}
}

func TestUnitVetxOnly(t *testing.T) {
	exe := buildTool(t)
	// VetxOnly units are dependency scans: the tool must emit the facts
	// file and skip analysis entirely, even over a file with findings.
	cfgPath, vetxPath := writeUnit(t, `package p

// dtdvet:bogus
func F() {}
`, true)
	if out, err := exec.Command(exe, cfgPath).CombinedOutput(); err != nil {
		t.Fatalf("vetx-only unit: %v\n%s", err, out)
	}
	if _, err := os.Stat(vetxPath); err != nil {
		t.Fatalf("vetx facts file not written: %v", err)
	}
}
