// Command dtdvet runs the repository's custom static-analysis suite
// (internal/lint) under the `go vet -vettool` contract:
//
//	go vet -vettool=$(which dtdvet) ./...
//
// The go command probes the tool with -V=full (a version fingerprint it
// hashes into its build cache key) and -flags (supported flags, as JSON),
// then invokes it once per package with a single argument: the path to a
// JSON config describing the type-checked unit — file list, import map,
// and export-data locations for every dependency. The tool type-checks
// from that export data, runs the analyzers, prints findings, and exits 2
// if there were any. This is the same protocol
// golang.org/x/tools/go/analysis/unitchecker speaks; it is reimplemented
// here because the repository vendors nothing beyond the standard
// library.
//
// Run without arguments (or with package patterns), dtdvet re-executes
// itself through `go vet -vettool=<self>`, so `dtdvet ./...` just works.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"runtime"
	"strings"

	"dtdevolve/internal/lint"
	"dtdevolve/internal/lint/analysis"
)

func main() {
	args := os.Args[1:]
	for _, a := range args {
		switch a {
		case "-V=full", "--V=full":
			printVersion()
			return
		case "-flags", "--flags":
			// No tool-specific flags: the suite is not configurable from
			// the command line, only from directives in the source.
			fmt.Println("[]")
			return
		case "-h", "-help", "--help":
			usage()
			return
		}
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		code, err := runUnit(args[0])
		if err != nil {
			fmt.Fprintf(os.Stderr, "dtdvet: %v\n", err)
			os.Exit(1)
		}
		os.Exit(code)
	}
	// Standalone mode: delegate to the go command with ourselves as the
	// vet tool.
	os.Exit(standalone(args))
}

func usage() {
	fmt.Fprintf(os.Stderr, `dtdvet checks dtdevolve's invariant directives (dtdvet:requires,
guarded_by, journaled, noalloc, strict errsync; see DESIGN.md §11).

usage:
  dtdvet [packages]            # runs go vet -vettool=dtdvet [packages]
  go vet -vettool=dtdvet pkgs  # as a vet tool

analyzers:
`)
	for _, a := range lint.Analyzers() {
		fmt.Fprintf(os.Stderr, "  %-10s %s\n", a.Name, a.Doc)
	}
}

// printVersion answers the go command's -V=full probe. The fingerprint
// must change whenever the tool's behavior could: hashing the executable
// itself covers analyzer and framework edits alike, and lets the go
// command cache clean vet results between unchanged runs.
func printVersion() {
	exe, err := os.Executable()
	var sum [sha256.Size]byte
	if err == nil {
		if data, rerr := os.ReadFile(exe); rerr == nil {
			sum = sha256.Sum256(data)
		}
	}
	fmt.Printf("dtdvet version devel comments-go-here buildID=%02x\n", sum)
}

func standalone(args []string) int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "dtdvet: cannot locate own executable: %v\n", err)
		return 1
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + exe}, args...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintf(os.Stderr, "dtdvet: %v\n", err)
		return 1
	}
	return 0
}

// vetConfig mirrors the JSON the go command writes for each vet unit
// (the exported fields of unitchecker.Config).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runUnit analyzes one vet unit. Exit code 2 signals findings, matching
// the vet convention.
func runUnit(cfgPath string) (int, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return 0, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return 0, fmt.Errorf("parsing %s: %w", cfgPath, err)
	}

	// The go command expects the .vetx facts file to exist afterwards even
	// though this suite exports no facts; write it first so every exit
	// path below satisfies that.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			return 0, err
		}
	}
	if cfg.VetxOnly {
		// Dependency-only run: the go command wants facts, we have none.
		return 0, nil
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0, nil
			}
			return 0, err
		}
		files = append(files, f)
	}

	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		if mapped, ok := cfg.ImportMap[importPath]; ok {
			importPath = mapped
		}
		if importPath == "unsafe" {
			return types.Unsafe, nil
		}
		return compilerImporter.Import(importPath)
	})

	tconf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor(cfg.Compiler, runtime.GOARCH),
	}
	if cfg.GoVersion != "" {
		tconf.GoVersion = cfg.GoVersion
	}
	info := analysis.NewInfo()
	pkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0, nil
		}
		return 0, fmt.Errorf("typechecking %s: %w", cfg.ImportPath, err)
	}

	diags, err := analysis.Run(lint.Analyzers(), fset, files, pkg, info)
	if err != nil {
		return 0, err
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s\n", fset.Position(d.Pos), d.Message)
	}
	if len(diags) > 0 {
		return 2, nil
	}
	return 0, nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
