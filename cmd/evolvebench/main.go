// Command evolvebench regenerates every table and figure of the evaluation
// (EXPERIMENTS.md / DESIGN.md §5).
//
// Usage:
//
//	evolvebench             # run all experiments
//	evolvebench -e e3       # run one experiment
//	evolvebench -seed 7     # change the workload seed
//	evolvebench -quick      # reduced corpus sizes (CI-friendly)
package main

import (
	"flag"
	"fmt"
	"os"

	"dtdevolve/internal/experiments"
)

func main() {
	exp := flag.String("e", "", "experiment id (e1..e8; default: all)")
	seed := flag.Int64("seed", 1, "workload seed")
	quick := flag.Bool("quick", false, "reduced corpus sizes")
	flag.Parse()

	o := experiments.Options{Seed: *seed, Quick: *quick}
	if *exp != "" {
		table, ok := experiments.ByID(*exp, o)
		if !ok {
			fmt.Fprintf(os.Stderr, "evolvebench: unknown experiment %q (want e1..e8)\n", *exp)
			os.Exit(2)
		}
		fmt.Println(table)
		return
	}
	for _, table := range experiments.All(o) {
		fmt.Println(table)
	}
}
