// Command evolvebench regenerates every table and figure of the evaluation
// (EXPERIMENTS.md / DESIGN.md §5).
//
// Usage:
//
//	evolvebench             # run all experiments
//	evolvebench -e e3       # run one experiment
//	evolvebench -seed 7     # change the workload seed
//	evolvebench -quick      # reduced corpus sizes (CI-friendly)
//
// Profiling (DESIGN.md §9):
//
//	evolvebench -cpuprofile cpu.out -e e1   # CPU profile of one experiment
//	evolvebench -memprofile mem.out         # heap profile at exit
//
// Profiles are written in pprof format; inspect them with
// go tool pprof evolvebench <profile>.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"dtdevolve/internal/experiments"
)

func main() {
	exp := flag.String("e", "", "experiment id (e1..e8; default: all)")
	seed := flag.Int64("seed", 1, "workload seed")
	quick := flag.Bool("quick", false, "reduced corpus sizes")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "evolvebench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "evolvebench: starting CPU profile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	o := experiments.Options{Seed: *seed, Quick: *quick}
	if *exp != "" {
		table, ok := experiments.ByID(*exp, o)
		if !ok {
			fmt.Fprintf(os.Stderr, "evolvebench: unknown experiment %q (want e1..e8)\n", *exp)
			os.Exit(2)
		}
		fmt.Println(table)
	} else {
		for _, table := range experiments.All(o) {
			fmt.Println(table)
		}
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "evolvebench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		runtime.GC() // settle the heap so the profile shows retained objects
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "evolvebench: writing heap profile: %v\n", err)
			os.Exit(1)
		}
	}
}
