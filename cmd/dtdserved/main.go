// Command dtdserved runs the evolution lifecycle as an HTTP service: a
// long-lived "source of XML documents" whose DTD set follows the incoming
// population. See internal/api for the routes; ingest is concurrent —
// POST /documents classifies under a read lock (scoring every DTD in
// parallel), POST /documents/batch scores whole batches concurrently, and
// GET /metrics reports ingest counters and per-phase latencies.
//
// Usage:
//
//	dtdserved [-addr :8080] [-sigma 0.7] [-tau 0.25] [-mindocs 20] \
//	          [-store dir] [-snapshot file] [-pprof]
//
// With -snapshot the service restores from the checkpoint at startup (when
// the file exists) and writes a new checkpoint on SIGINT/SIGTERM shutdown.
// With -pprof the server also exposes the net/http/pprof profiling handlers
// under /debug/pprof/, for live CPU and allocation profiling of the ingest
// pipeline (e.g. go tool pprof http://host/debug/pprof/allocs).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dtdevolve"
	"dtdevolve/internal/api"
	"dtdevolve/internal/source"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	sigma := flag.Float64("sigma", 0.7, "classification threshold σ")
	tau := flag.Float64("tau", 0.25, "evolution activation threshold τ")
	minDocs := flag.Int("mindocs", 20, "minimum documents between evolutions")
	storeDir := flag.String("store", "", "directory for the durable document store (empty: no store)")
	snapshotPath := flag.String("snapshot", "", "checkpoint file restored at startup and written at shutdown")
	pprofFlag := flag.Bool("pprof", false, "expose /debug/pprof/ profiling handlers")
	flag.Parse()

	cfg := dtdevolve.DefaultConfig()
	cfg.Sigma = *sigma
	cfg.Tau = *tau
	cfg.MinDocs = *minDocs

	src, err := buildSource(cfg, *snapshotPath)
	if err != nil {
		log.Fatalf("dtdserved: %v", err)
	}
	if *storeDir != "" {
		if err := src.EnableStore(*storeDir); err != nil {
			log.Fatalf("dtdserved: %v", err)
		}
		defer src.CloseStore()
	}

	var handler http.Handler = api.New(src)
	if *pprofFlag {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", handler)
		handler = mux
		log.Printf("dtdserved: profiling enabled at /debug/pprof/")
	}
	server := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}
	go func() {
		log.Printf("dtdserved: listening on %s", *addr)
		if err := server.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("dtdserved: %v", err)
		}
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	m := src.Metrics()
	log.Printf("dtdserved: shutting down (added %d: %d classified, %d to repository; %d evolutions, %d reclassified)",
		m.Added, m.Classified, m.Repository, m.Evolutions, m.Reclassified)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = server.Shutdown(ctx)
	if *snapshotPath != "" {
		if err := writeSnapshot(src, *snapshotPath); err != nil {
			log.Printf("dtdserved: checkpoint failed: %v", err)
		} else {
			log.Printf("dtdserved: checkpoint written to %s", *snapshotPath)
		}
	}
}

func buildSource(cfg dtdevolve.Config, snapshotPath string) (*source.Source, error) {
	if snapshotPath != "" {
		data, err := os.ReadFile(snapshotPath)
		switch {
		case err == nil:
			src, err := dtdevolve.RestoreSource(cfg, data)
			if err != nil {
				return nil, fmt.Errorf("restoring %s: %w", snapshotPath, err)
			}
			log.Printf("dtdserved: restored from %s", snapshotPath)
			return src, nil
		case !os.IsNotExist(err):
			return nil, err
		}
	}
	return dtdevolve.NewSource(cfg), nil
}

func writeSnapshot(src *source.Source, path string) error {
	data, err := src.Snapshot()
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
