// Command dtdserved runs the evolution lifecycle as an HTTP service: a
// long-lived "source of XML documents" whose DTD set follows the incoming
// population. See internal/api for the routes; ingest is concurrent —
// POST /documents classifies under a read lock (scoring every DTD in
// parallel), POST /documents/batch scores whole batches concurrently, and
// GET /metrics reports ingest counters and per-phase latencies.
//
// Usage:
//
//	dtdserved [-addr :8080] [-sigma 0.7] [-tau 0.25] [-mindocs 20] \
//	          [-store dir] [-snapshot file] [-pprof] \
//	          [-wal dir] [-fsync always|interval|off] [-fsync-interval 100ms] \
//	          [-wal-segment 4194304] [-checkpoint 30s] \
//	          [-group-commit] [-group-max 64] [-group-wait 0] \
//	          [-classify-exact] [-classify-topk 16] \
//	          [-shards 1] [-shard-key X-Doc-Key] \
//	          [-follow url] [-replica-listen :8081] [-max-staleness 0] \
//	          [-follower-id id]
//
// Classification consults a signature index that prunes the candidate DTD
// set before any similarity alignment runs. The default (-classify-exact)
// skips a DTD only when a similarity upper bound proves skipping cannot
// change the winner or the classified/unclassified outcome; with
// -classify-exact=false only the -classify-topk best-ranked candidates are
// scored (faster on huge registries, may misclassify borderline documents).
// GET /metrics reports candidate counts and the achieved prune ratio. See
// DESIGN.md §12.
//
// With -group-commit, concurrent commits are batched by a leader/follower
// scheme: the first committer drains every commit that queued behind it
// (up to -group-max), journals them as one WAL batch and — under -fsync
// always — pays one fsync for the whole group, which is what makes
// synchronous durability viable at production write rates. -group-wait
// optionally holds a fresh leader back so larger groups form. GET /metrics
// reports the group-size distribution, commit-queue depth and amortized
// fsyncs per document.
//
// With -wal the service journals every state-changing operation to a
// write-ahead log before acknowledging it, recovers at startup from the
// latest checkpoint plus the log tail (tolerating a torn final record), and
// checkpoints in the background every -checkpoint interval, truncating the
// log history each snapshot covers. The checkpoint lives at -snapshot when
// given, else <wal>/checkpoint.json. If the log stops accepting records
// (disk full, dying device) the service degrades to read-only: mutating
// routes answer 503 and GET /status reports the error. See DESIGN.md §10.
//
// Without -wal, -snapshot alone keeps the old behavior: restore at startup,
// checkpoint once at shutdown — durable only across clean exits.
//
// With -shards N (N > 1) the document stream is partitioned across N fully
// independent sources, each with its own write lock, WAL subdirectory
// (shard-000, …), group-commit queue and staggered background checkpointer,
// routed by rendezvous hashing on a stable document key: the -shard-key
// request header of POST /documents, the per-item "keys" array of
// POST /documents/batch, falling back to a content hash. DTD registrations,
// triggers, forced evolutions and re-classifications broadcast to every
// shard. The shard count and hash seed are recorded in <wal>/manifest.json;
// restarting with a different -shards value is a refused configuration
// error (resharding requires migration). One degraded shard leaves the
// others writable: only requests touching it answer 503, and GET /status
// reports per-shard health. -snapshot is ignored sharded — checkpoints live
// at <wal>/checkpoint-NNN.json. See DESIGN.md §13.
//
// With -wal set, the server also serves the WAL-shipping replication
// protocol under /replication/v1/: followers pull sealed segments plus the
// active segment's durable prefix, acknowledge what they have applied, and
// checkpoint-time WAL truncation never deletes a segment an active follower
// still needs. GET /status and GET /metrics gain a "replication" section
// listing registered followers and their ack floors. See DESIGN.md §14.
//
// With -follow <primary-url> the process runs as a read-only follower
// replica instead: it bootstraps from the primary's latest checkpoint into
// the -wal directory (the local replica mirror — required), tails shipped
// WAL segments per shard with jittered retry/backoff, and serves GET
// traffic on -replica-listen. Mutating routes answer 503 with a
// Retry-After; with -max-staleness > 0 reads degrade to 503 too (except
// /status and /metrics) once replication lag exceeds the bound. POST
// /replication/promote turns a caught-up follower into a writable primary
// over the same directory.
//
// With -pprof the server also exposes the net/http/pprof profiling handlers
// under /debug/pprof/, for live CPU and allocation profiling of the ingest
// pipeline (e.g. go tool pprof http://host/debug/pprof/allocs).
//
// Shutdown: the first SIGINT/SIGTERM drains in-flight requests (bounded at
// 5s), writes a final checkpoint, and closes the log; a second signal exits
// immediately.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"sync/atomic"
	"syscall"
	"time"

	"dtdevolve"
	"dtdevolve/internal/api"
	"dtdevolve/internal/classify"
	"dtdevolve/internal/docstore"
	"dtdevolve/internal/replicate"
	"dtdevolve/internal/source"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	sigma := flag.Float64("sigma", 0.7, "classification threshold σ")
	tau := flag.Float64("tau", 0.25, "evolution activation threshold τ")
	minDocs := flag.Int("mindocs", 20, "minimum documents between evolutions")
	storeDir := flag.String("store", "", "directory for the durable document store (empty: no store)")
	snapshotPath := flag.String("snapshot", "", "checkpoint file (default with -wal: <wal>/checkpoint.json)")
	walDir := flag.String("wal", "", "directory for the write-ahead log (empty: no journaling)")
	fsyncMode := flag.String("fsync", "interval", "WAL fsync policy: always, interval or off")
	fsyncEvery := flag.Duration("fsync-interval", 100*time.Millisecond, "flush period under -fsync interval")
	walSegment := flag.Int64("wal-segment", 4<<20, "WAL segment size in bytes")
	checkpointEvery := flag.Duration("checkpoint", 30*time.Second, "background checkpoint interval (with -wal)")
	groupCommit := flag.Bool("group-commit", false, "batch concurrent commits into shared WAL appends (one fsync per group)")
	groupMax := flag.Int("group-max", source.DefaultMaxGroup, "maximum documents per commit group (with -group-commit)")
	groupWait := flag.Duration("group-wait", 0, "how long a commit leader waits for its group to fill (with -group-commit; 0: natural batching)")
	classifyExact := flag.Bool("classify-exact", true, "prune candidate DTDs only when the similarity upper bound proves the winner is unaffected")
	classifyTopK := flag.Int("classify-topk", classify.DefaultTopK, "candidates scored per document when -classify-exact=false")
	shards := flag.Int("shards", 1, "number of independent ingest shards (1: unsharded; omit to adopt an existing -wal directory's manifest)")
	shardKey := flag.String("shard-key", api.DefaultKeyHeader, "request header carrying the document routing key (with -shards)")
	shardSeed := flag.Uint64("shard-seed", 0, "rendezvous hash seed for a NEW sharded deployment (0: default; existing manifests keep their seed)")
	follow := flag.String("follow", "", "primary base URL; run as a read-only follower replica (requires -wal as the local replica directory)")
	replicaListen := flag.String("replica-listen", ":8081", "listen address in follower mode (with -follow)")
	maxStaleness := flag.Duration("max-staleness", 0, "bounded-staleness read gate in follower mode: reads answer 503 once lag exceeds this (0: serve regardless of lag)")
	followerID := flag.String("follower-id", "", "stable follower identity for the primary's ack/GC registry (default: hostname)")
	maxDocBytes := flag.Int64("max-doc-bytes", 0, "streaming ingest byte budget: POST /documents?stream=1 rejects bigger documents with 413 (0: unlimited)")
	maxChildren := flag.Int("max-children", 0, "streaming ingest width budget: an element exceeding this many children degrades to an ANY-style summary instead of growing memory (0: unlimited)")
	pprofFlag := flag.Bool("pprof", false, "expose /debug/pprof/ profiling handlers")
	flag.Parse()

	cfg := dtdevolve.DefaultConfig()
	cfg.Sigma = *sigma
	cfg.Tau = *tau
	cfg.MinDocs = *minDocs
	cfg.ClassifyApprox = !*classifyExact
	cfg.ClassifyTopK = *classifyTopK
	cfg.MaxDocBytes = *maxDocBytes
	cfg.MaxChildren = *maxChildren

	syncPolicy, err := dtdevolve.ParseSyncPolicy(*fsyncMode)
	if err != nil {
		log.Fatalf("dtdserved: %v", err)
	}
	walOpts := dtdevolve.WALOptions{
		SegmentSize: *walSegment,
		Sync:        syncPolicy,
		SyncEvery:   *fsyncEvery,
	}
	if *follow != "" {
		runFollower(cfg, walOpts, followerParams{
			primary:      *follow,
			listen:       *replicaListen,
			dir:          *walDir,
			id:           *followerID,
			maxStaleness: *maxStaleness,
			pprof:        *pprofFlag,
		})
		return
	}

	// A WAL directory with a shard manifest was created by a sharded
	// deployment; recovering it through the single-source path would
	// silently start empty (and write a conflicting legacy layout on top).
	// Restarting without -shards adopts the manifest's count; an explicit
	// -shards 1 against a sharded directory is the same config error a
	// wrong count would be, so let shard.Recover report it.
	sharded := *shards > 1
	if !sharded && *walDir != "" {
		if _, err := os.Stat(filepath.Join(*walDir, "manifest.json")); err == nil {
			sharded = true
			explicit := false
			flag.Visit(func(f *flag.Flag) { explicit = explicit || f.Name == "shards" })
			if !explicit {
				*shards = 0 // adopt the manifest's shard count
			}
		}
	}
	if sharded {
		runSharded(cfg, walOpts, shardedParams{
			addr:            *addr,
			shards:          *shards,
			seed:            *shardSeed,
			keyHeader:       *shardKey,
			storeDir:        *storeDir,
			snapshotPath:    *snapshotPath,
			walDir:          *walDir,
			syncPolicy:      syncPolicy,
			checkpointEvery: *checkpointEvery,
			groupCommit:     *groupCommit,
			groupMax:        *groupMax,
			groupWait:       *groupWait,
			pprof:           *pprofFlag,
		})
		return
	}

	checkpointPath := *snapshotPath
	if checkpointPath == "" && *walDir != "" {
		checkpointPath = filepath.Join(*walDir, "checkpoint.json")
	}

	src, err := buildSource(cfg, checkpointPath, *walDir, walOpts)
	if err != nil {
		log.Fatalf("dtdserved: %v", err)
	}
	if *groupCommit {
		// After recovery: replay goes through the serial path; live traffic
		// commits through the leader/follower group queue.
		src.EnableGroupCommit(source.GroupCommitOptions{MaxGroup: *groupMax, MaxWait: *groupWait})
		log.Printf("dtdserved: group commit enabled (max %d documents/group, wait %s)", *groupMax, *groupWait)
	}
	if *storeDir != "" {
		// The store mirrors the WAL's fsync discipline: with journaling on,
		// the log is the durability source of truth and the store can flush
		// lazily; without it, the store is all there is.
		if err := src.EnableStore(*storeDir, docstore.WithSync(syncPolicy)); err != nil {
			log.Fatalf("dtdserved: %v", err)
		}
		defer src.CloseStore()
	}

	var stopCheckpointer func()
	var handler http.Handler = api.New(src)
	if *walDir != "" {
		src.SetWALGCLogger(func(err error) { log.Printf("dtdserved: WAL GC: %v", err) })
		stopCheckpointer = src.StartCheckpointer(checkpointPath, *checkpointEvery, func(err error) {
			log.Printf("dtdserved: background checkpoint failed: %v", err)
		})
		log.Printf("dtdserved: journaling to %s (fsync %s), checkpointing to %s every %s",
			*walDir, *fsyncMode, checkpointPath, *checkpointEvery)
		prim := replicate.ForSource(src, *walDir, checkpointPath, replicate.PrimaryOptions{})
		handler = mountReplication(
			api.NewEngine(api.SourceEngine(src), api.Options{Replication: prim.Status}),
			prim)
	}

	serveAndWait(*addr, handler, *pprofFlag, func() {
		m := src.Metrics()
		log.Printf("dtdserved: shutting down (added %d: %d classified, %d to repository; %d evolutions, %d reclassified)",
			m.Added, m.Classified, m.Repository, m.Evolutions, m.Reclassified)
	})
	if stopCheckpointer != nil {
		stopCheckpointer() // runs one final checkpoint
		log.Printf("dtdserved: final checkpoint written to %s", checkpointPath)
	} else if checkpointPath != "" {
		if err := writeSnapshot(src, checkpointPath); err != nil {
			log.Printf("dtdserved: checkpoint failed: %v", err)
		} else {
			log.Printf("dtdserved: checkpoint written to %s", checkpointPath)
		}
	}
	if err := src.CloseWAL(); err != nil {
		log.Printf("dtdserved: closing WAL: %v", err)
	}
}

// shardedParams carries the flag values of a -shards > 1 deployment.
type shardedParams struct {
	addr            string
	shards          int
	seed            uint64
	keyHeader       string
	storeDir        string
	snapshotPath    string
	walDir          string
	syncPolicy      dtdevolve.SyncPolicy
	checkpointEvery time.Duration
	groupCommit     bool
	groupMax        int
	groupWait       time.Duration
	pprof           bool
}

// runSharded is main's -shards > 1 path: a router over N independent
// shards, each with its own WAL subdirectory, group-commit queue and
// staggered checkpointer, served through the same HTTP handler.
func runSharded(cfg dtdevolve.Config, walOpts dtdevolve.WALOptions, p shardedParams) {
	if p.snapshotPath != "" {
		log.Printf("dtdserved: -snapshot is ignored with -shards > 1 (checkpoints live at <wal>/checkpoint-NNN.json)")
	}
	opts := dtdevolve.ShardOptions{Shards: p.shards, Seed: p.seed}
	var router *dtdevolve.ShardRouter
	if p.walDir == "" {
		router = dtdevolve.NewShardRouter(cfg, opts)
	} else {
		var infos []dtdevolve.RecoveryInfo
		var err error
		router, infos, err = dtdevolve.RecoverShardRouter(cfg, p.walDir, walOpts, opts)
		if err != nil {
			log.Fatalf("dtdserved: %v", err)
		}
		replayed := 0
		restored := 0
		for i, info := range infos {
			replayed += info.Replayed
			if info.SnapshotRestored {
				restored++
			}
			if info.Truncated {
				log.Printf("dtdserved: shard %d: torn final WAL record truncated (crash mid-append)", i)
			}
			if info.Corrupted {
				log.Printf("dtdserved: shard %d: corrupt WAL suffix quarantined, NOT applied: %v", i, info.Quarantined)
			}
		}
		log.Printf("dtdserved: recovered %d shards (seed %d; %d checkpoints restored, %d WAL records replayed)",
			router.Shards(), router.Seed(), restored, replayed)
	}
	if p.groupCommit {
		router.EnableGroupCommit(source.GroupCommitOptions{MaxGroup: p.groupMax, MaxWait: p.groupWait})
		log.Printf("dtdserved: group commit enabled on every shard (max %d documents/group, wait %s)", p.groupMax, p.groupWait)
	}
	if p.storeDir != "" {
		if err := router.EnableStore(p.storeDir, docstore.WithSync(p.syncPolicy)); err != nil {
			log.Fatalf("dtdserved: %v", err)
		}
		defer router.CloseStores()
	}
	var prim *replicate.Primary
	if p.walDir != "" {
		for i := 0; i < router.Shards(); i++ {
			router.Shard(i).SetWALGCLogger(func(err error) {
				log.Printf("dtdserved: shard %d: WAL GC: %v", i, err)
			})
		}
		if _, err := router.StartCheckpointers(p.checkpointEvery, func(shard int, err error) {
			log.Printf("dtdserved: shard %d: background checkpoint failed: %v", shard, err)
		}); err != nil {
			log.Fatalf("dtdserved: %v", err)
		}
		log.Printf("dtdserved: journaling %d shards under %s (staggered checkpoints every %s)",
			router.Shards(), p.walDir, p.checkpointEvery)
		prim = replicate.ForRouter(router, replicate.PrimaryOptions{})
	}

	apiOpts := api.Options{KeyHeader: p.keyHeader}
	if prim != nil {
		apiOpts.Replication = prim.Status
	}
	var handler http.Handler = api.NewEngine(router, apiOpts)
	if prim != nil {
		handler = mountReplication(handler, prim)
	}
	serveAndWait(p.addr, handler, p.pprof, func() {
		m, _ := router.Metrics()
		degraded := 0
		for _, st := range router.ShardStatuses() {
			if st.Degraded {
				degraded++
			}
		}
		log.Printf("dtdserved: shutting down %d shards (added %d: %d classified, %d to repository; %d evolutions, %d reclassified; %d shards degraded)",
			router.Shards(), m.Added, m.Classified, m.Repository, m.Evolutions, m.Reclassified, degraded)
	})
	// Close stops every checkpointer (each writes a final per-shard
	// checkpoint) and closes every shard WAL.
	if err := router.Close(); err != nil {
		log.Printf("dtdserved: closing shards: %v", err)
	} else if p.walDir != "" {
		log.Printf("dtdserved: final per-shard checkpoints written under %s", p.walDir)
	}
}

// followerParams carries the flag values of a -follow deployment.
type followerParams struct {
	primary      string
	listen       string
	dir          string
	id           string
	maxStaleness time.Duration
	pprof        bool
}

// runFollower is main's -follow path: bootstrap a read-only replica of the
// primary into the -wal directory, tail shipped WAL segments, and serve
// GETs on -replica-listen until signalled.
func runFollower(cfg dtdevolve.Config, walOpts dtdevolve.WALOptions, p followerParams) {
	if p.dir == "" {
		log.Fatalf("dtdserved: -follow requires -wal (the local replica directory)")
	}
	if p.id == "" {
		if host, err := os.Hostname(); err == nil {
			p.id = host
		}
	}
	// Bootstrap retries against an unreachable primary until the first
	// signal; once tailing, the tailers own retry/backoff.
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	f, err := replicate.Open(ctx, cfg, p.primary, replicate.FollowerOptions{
		ID:           p.id,
		Dir:          p.dir,
		MaxStaleness: p.maxStaleness,
		WAL:          walOpts,
		Logf:         log.Printf,
	})
	cancel()
	if err != nil {
		log.Fatalf("dtdserved: %v", err)
	}
	f.Start()
	log.Printf("dtdserved: following %s as %q (%d shards, replica dir %s, max staleness %s)",
		p.primary, p.id, f.Shards(), p.dir, p.maxStaleness)
	serveAndWait(p.listen, f.Handler(), p.pprof, func() {
		st := f.Status()
		behind := int64(0)
		for _, lag := range st.Shards {
			behind += lag.BytesBehind
		}
		log.Printf("dtdserved: follower shutting down (promoted=%v, caught up=%v, %d bytes behind)",
			st.Promoted, f.CaughtUp(), behind)
	})
	if err := f.Close(); err != nil {
		log.Printf("dtdserved: closing follower: %v", err)
	}
}

// mountReplication serves the shipping protocol under /replication/v1/
// next to the ordinary API.
func mountReplication(apiHandler http.Handler, prim *replicate.Primary) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/replication/", prim.Handler())
	mux.Handle("/", apiHandler)
	return mux
}

// serveAndWait runs the HTTP server until the first SIGINT/SIGTERM, drains
// in-flight requests (bounded at 5s; a second signal exits immediately),
// and returns so the caller can finalize durability state. logState runs
// after the first signal, before the drain.
func serveAndWait(addr string, handler http.Handler, pprofOn bool, logState func()) {
	var inflight atomic.Int64
	handler = countInflight(&inflight, handler)
	if pprofOn {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", handler)
		handler = mux
		log.Printf("dtdserved: profiling enabled at /debug/pprof/")
	}
	server := &http.Server{
		Addr:              addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	go func() {
		log.Printf("dtdserved: listening on %s", addr)
		if err := server.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("dtdserved: %v", err)
		}
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	// A second signal while draining means "now": skip the graceful path.
	go func() {
		<-stop
		log.Printf("dtdserved: second signal, exiting immediately")
		os.Exit(1)
	}()
	if logState != nil {
		logState()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := server.Shutdown(ctx); err != nil {
		log.Printf("dtdserved: graceful shutdown incomplete (%d requests still in flight): %v; closing",
			inflight.Load(), err)
		_ = server.Close()
	} else {
		log.Printf("dtdserved: in-flight requests drained")
	}
}

// countInflight tracks the number of requests currently being served, for
// the shutdown drain log line.
func countInflight(n *atomic.Int64, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n.Add(1)
		defer n.Add(-1)
		next.ServeHTTP(w, r)
	})
}

// buildSource restores state. With a WAL directory the snapshot is only the
// checkpoint floor — the journal tail on top of it is replayed and the log
// reattached; without one, the snapshot alone (when present) is the state.
func buildSource(cfg dtdevolve.Config, snapshotPath, walDir string, walOpts dtdevolve.WALOptions) (*source.Source, error) {
	var snapshot []byte
	if snapshotPath != "" {
		data, err := os.ReadFile(snapshotPath)
		switch {
		case err == nil:
			snapshot = data
		case !os.IsNotExist(err):
			return nil, err
		}
	}
	if walDir == "" {
		if snapshot == nil {
			return dtdevolve.NewSource(cfg), nil
		}
		src, err := dtdevolve.RestoreSource(cfg, snapshot)
		if err != nil {
			return nil, fmt.Errorf("restoring %s: %w", snapshotPath, err)
		}
		log.Printf("dtdserved: restored from %s", snapshotPath)
		return src, nil
	}
	src, info, err := dtdevolve.RecoverSource(cfg, snapshot, walDir, walOpts)
	if err != nil {
		return nil, fmt.Errorf("recovering from %s + %s: %w", snapshotPath, walDir, err)
	}
	log.Printf("dtdserved: recovered (snapshot: %v, %d WAL records replayed)", info.SnapshotRestored, info.Replayed)
	if info.Truncated {
		log.Printf("dtdserved: torn final WAL record truncated (crash mid-append)")
	}
	if info.Corrupted {
		log.Printf("dtdserved: corrupt WAL suffix quarantined, NOT applied: %v", info.Quarantined)
	}
	return src, nil
}

func writeSnapshot(src *source.Source, path string) error {
	data, err := src.Snapshot()
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
