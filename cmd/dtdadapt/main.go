// Command dtdadapt transforms XML documents so they conform to a DTD —
// typically documents stored before a schema evolution, adapted to the
// evolved structure (the paper's §6 open problem).
//
// Usage:
//
//	dtdadapt -dtd evolved.dtd [-root name] [-thesaurus th.txt] \
//	         [-keep-extras] [-placeholder TBD] doc.xml...
//
// Each adapted document is written next to its input with an ".adapted.xml"
// suffix (or to stdout with -stdout); the applied changes are reported.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dtdevolve"
)

func main() {
	dtdPath := flag.String("dtd", "", "path to the target DTD (required)")
	rootName := flag.String("root", "", "root element name the DTD describes")
	thesaurusPath := flag.String("thesaurus", "", "optional thesaurus file (synonym renaming)")
	keepExtras := flag.Bool("keep-extras", false, "keep elements the DTD has no place for")
	placeholder := flag.String("placeholder", "", "text content for inserted #PCDATA elements")
	stdout := flag.Bool("stdout", false, "write adapted documents to stdout instead of files")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: dtdadapt -dtd evolved.dtd [flags] doc.xml...\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *dtdPath == "" || flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	d, err := dtdevolve.ParseDTDFile(*dtdPath)
	if err != nil {
		fatal(err)
	}
	if *rootName != "" {
		d.Name = *rootName
	}

	opts := dtdevolve.DefaultAdaptOptions()
	opts.DropExtras = !*keepExtras
	opts.PlaceholderText = *placeholder
	if *thesaurusPath != "" {
		f, err := os.Open(*thesaurusPath)
		if err != nil {
			fatal(err)
		}
		th, err := dtdevolve.LoadThesaurus(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		opts.Similarity.TagSimilarity = th.SimilarityFunc()
	}
	adapter := dtdevolve.NewAdapter(d, opts)

	exit := 0
	for _, path := range flag.Args() {
		doc, err := dtdevolve.ParseDocumentFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dtdadapt: %v\n", err)
			exit = 1
			continue
		}
		out, report := adapter.Adapt(doc)
		fmt.Printf("%s: %d matched, %d dropped, %d inserted, %d renamed\n",
			path, report.Matched, report.Dropped, report.Inserted, report.Renamed)
		for _, c := range report.Changes {
			fmt.Printf("  %s\n", c)
		}
		still := dtdevolve.Validate(out, d)
		if len(still) > 0 {
			fmt.Fprintf(os.Stderr, "dtdadapt: %s: %d violations remain after adaptation\n", path, len(still))
			exit = 1
		}
		if *stdout {
			if _, err := out.WriteTo(os.Stdout); err != nil {
				fatal(err)
			}
			continue
		}
		target := strings.TrimSuffix(path, ".xml") + ".adapted.xml"
		f, err := os.Create(target)
		if err != nil {
			fatal(err)
		}
		if _, err := out.WriteTo(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("  written to %s\n", target)
	}
	os.Exit(exit)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "dtdadapt: %v\n", err)
	os.Exit(1)
}
