// Command dtdevolve runs the full lifecycle of the paper over a corpus: it
// classifies every document of a directory (or file list) against a DTD,
// records structural statistics, runs the evolution phase, and writes the
// evolved DTD.
//
// Usage:
//
//	dtdevolve -dtd schema.dtd [-root name] [-out evolved.dtd] \
//	          [-sigma 0.7] [-tau 0.25] [-psi 0.15] [-mu 0.2] doc.xml... | dir
//
// A report of per-element actions is printed to standard output.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"dtdevolve"
)

func main() {
	dtdPath := flag.String("dtd", "", "path to the initial DTD (required)")
	rootName := flag.String("root", "", "root element name the DTD describes")
	outPath := flag.String("out", "", "file to write the evolved DTD to (default: stdout)")
	sigma := flag.Float64("sigma", 0.7, "classification threshold σ")
	tau := flag.Float64("tau", 0.25, "evolution activation threshold τ")
	psi := flag.Float64("psi", 0.15, "evolution window threshold ψ")
	mu := flag.Float64("mu", 0.2, "minimum sequence support µ")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: dtdevolve -dtd schema.dtd [flags] doc.xml... | dir\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *dtdPath == "" || flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	d, err := dtdevolve.ParseDTDFile(*dtdPath)
	if err != nil {
		fatal(err)
	}
	if *rootName != "" {
		d.Name = *rootName
	}

	cfg := dtdevolve.DefaultConfig()
	cfg.Sigma = *sigma
	cfg.Tau = *tau
	cfg.AutoEvolve = false
	cfg.Evolve.Psi = *psi
	cfg.Evolve.MinSupport = *mu

	src := dtdevolve.NewSource(cfg)
	src.AddDTD("schema", d)

	paths, err := expandArgs(flag.Args())
	if err != nil {
		fatal(err)
	}
	classified, unclassified := 0, 0
	for _, path := range paths {
		doc, err := dtdevolve.ParseDocumentFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dtdevolve: skipping %s: %v\n", path, err)
			continue
		}
		if res := src.Add(doc); res.Classified {
			classified++
		} else {
			unclassified++
			fmt.Printf("unclassified (similarity %.3f): %s\n", res.Similarity, path)
		}
	}
	fmt.Printf("classified %d documents, %d unclassified\n", classified, unclassified)
	if classified == 0 {
		fatal(fmt.Errorf("nothing classified: the DTD does not match the corpus (check -root and -sigma)"))
	}

	report, recovered, err := src.EvolveNow("schema")
	if err != nil {
		fatal(err)
	}
	fmt.Println("\nevolution report:")
	for _, c := range report.Changes {
		if c.Action.String() == "unchanged" {
			continue
		}
		fmt.Printf("  %-10s %-12s I=%.2f  %s -> %s\n", c.Name, c.Action, c.Invalidity, orDash(c.Old), c.New)
	}
	if recovered > 0 {
		fmt.Printf("recovered %d repository documents\n", recovered)
	}

	evolved := src.DTD("schema").String()
	if *outPath == "" {
		fmt.Println("\nevolved DTD:")
		fmt.Print(evolved)
		return
	}
	if err := os.WriteFile(*outPath, []byte(evolved), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("evolved DTD written to %s\n", *outPath)
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

// expandArgs expands directory arguments into their .xml files.
func expandArgs(args []string) ([]string, error) {
	var out []string
	for _, arg := range args {
		info, err := os.Stat(arg)
		if err != nil {
			return nil, err
		}
		if !info.IsDir() {
			out = append(out, arg)
			continue
		}
		entries, err := os.ReadDir(arg)
		if err != nil {
			return nil, err
		}
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".xml") {
				out = append(out, filepath.Join(arg, e.Name()))
			}
		}
	}
	sort.Strings(out)
	return out, nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "dtdevolve: %v\n", err)
	os.Exit(1)
}
