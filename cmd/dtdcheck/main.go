// Command dtdcheck inspects XML documents against a DTD: it reports strict
// validity (with violations) and the paper's global and local structural
// similarity degrees.
//
// Usage:
//
//	dtdcheck -dtd schema.dtd [-root name] [-decay 0.5] doc.xml...
//
// With no -dtd flag, each document must embed its DTD in an internal
// DOCTYPE subset.
package main

import (
	"flag"
	"fmt"
	"os"

	"dtdevolve"
)

func main() {
	dtdPath := flag.String("dtd", "", "path to the DTD file (default: use each document's internal subset)")
	rootName := flag.String("root", "", "root element name the DTD describes (default: first declared element)")
	decay := flag.Float64("decay", 0.5, "level decay of the similarity measure (0, 1]")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: dtdcheck [-dtd schema.dtd] [-root name] doc.xml...\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	var shared *dtdevolve.DTD
	if *dtdPath != "" {
		d, err := dtdevolve.ParseDTDFile(*dtdPath)
		if err != nil {
			fatal(err)
		}
		if *rootName != "" {
			d.Name = *rootName
		}
		shared = d
		warnNondeterministic(d)
	}

	cfg := dtdevolve.DefaultSimilarityConfig()
	cfg.Decay = *decay

	exit := 0
	for _, path := range flag.Args() {
		doc, err := dtdevolve.ParseDocumentFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dtdcheck: %v\n", err)
			exit = 1
			continue
		}
		d := shared
		if d == nil {
			d, err = dtdevolve.DocumentDTD(doc)
			if err != nil {
				fmt.Fprintf(os.Stderr, "dtdcheck: %s: internal subset: %v\n", path, err)
				exit = 1
				continue
			}
			if d == nil {
				fmt.Fprintf(os.Stderr, "dtdcheck: %s: no -dtd flag and no internal DTD subset\n", path)
				exit = 1
				continue
			}
		}
		res := dtdevolve.SimilarityDetail(doc, d, cfg)
		violations := dtdevolve.Validate(doc, d)
		status := "VALID"
		if len(violations) > 0 {
			status = fmt.Sprintf("INVALID (%d violations)", len(violations))
			exit = 1
		}
		fmt.Printf("%s: %s global=%.4f local=%.4f (plus=%.2f minus=%.2f common=%.2f)\n",
			path, status, res.Global, res.Local, res.Triple.Plus, res.Triple.Minus, res.Triple.Common)
		for _, v := range violations {
			fmt.Printf("  %s\n", v)
		}
	}
	os.Exit(exit)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "dtdcheck: %v\n", err)
	os.Exit(1)
}

// warnNondeterministic flags declarations violating the XML 1.0
// deterministic-content-model constraint (this tool's validator still
// handles them, but conforming processors may not).
func warnNondeterministic(d *dtdevolve.DTD) {
	for name, issues := range dtdevolve.CheckDeterminism(d) {
		for _, issue := range issues {
			fmt.Fprintf(os.Stderr, "dtdcheck: warning: <!ELEMENT %s>: nondeterministic content model: %s\n", name, issue)
		}
	}
}
