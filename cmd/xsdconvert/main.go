// Command xsdconvert converts between DTDs and the supported XML Schema
// subset, and optionally evolves a schema against a corpus — the paper's
// §6 extension ("we are currently extending the approach to the evolution
// of XML schemas").
//
// Usage:
//
//	xsdconvert -to-xsd schema.dtd [-root name]        # DTD  -> XSD (stdout)
//	xsdconvert -to-dtd schema.xsd                      # XSD  -> DTD (stdout)
//	xsdconvert -evolve schema.xsd doc.xml...           # evolve the schema
package main

import (
	"flag"
	"fmt"
	"os"

	"dtdevolve"
	"dtdevolve/internal/evolve"
	"dtdevolve/internal/xsd"
)

func main() {
	toXSD := flag.String("to-xsd", "", "DTD file to convert to XSD")
	toDTD := flag.String("to-dtd", "", "XSD file to convert to DTD")
	evolvePath := flag.String("evolve", "", "XSD file to evolve against the given documents")
	rootName := flag.String("root", "", "root element name (DTD input)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: xsdconvert (-to-xsd schema.dtd | -to-dtd schema.xsd | -evolve schema.xsd doc.xml...)\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	switch {
	case *toXSD != "":
		d, err := dtdevolve.ParseDTDFile(*toXSD)
		if err != nil {
			fatal(err)
		}
		if *rootName != "" {
			d.Name = *rootName
		}
		if err := xsd.FromDTD(d).Write(os.Stdout); err != nil {
			fatal(err)
		}
	case *toDTD != "":
		s, err := parseXSDFile(*toDTD)
		if err != nil {
			fatal(err)
		}
		d, notes := xsd.ToDTD(s)
		for _, note := range notes {
			fmt.Fprintf(os.Stderr, "xsdconvert: note: %s\n", note)
		}
		fmt.Print(d.String())
	case *evolvePath != "":
		if flag.NArg() == 0 {
			fatal(fmt.Errorf("-evolve needs documents"))
		}
		s, err := parseXSDFile(*evolvePath)
		if err != nil {
			fatal(err)
		}
		var docs []*dtdevolve.Document
		for _, path := range flag.Args() {
			doc, err := dtdevolve.ParseDocumentFile(path)
			if err != nil {
				fatal(err)
			}
			docs = append(docs, doc)
		}
		evolved, report, notes := xsd.Evolve(s, docs, evolve.DefaultConfig())
		for _, note := range notes {
			fmt.Fprintf(os.Stderr, "xsdconvert: note: %s\n", note)
		}
		for _, c := range report.Changes {
			if c.Action.String() != "unchanged" {
				fmt.Fprintf(os.Stderr, "xsdconvert: %s %s -> %s\n", c.Name, c.Action, c.New)
			}
		}
		if err := evolved.Write(os.Stdout); err != nil {
			fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func parseXSDFile(path string) (*xsd.Schema, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return xsd.Parse(f)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "xsdconvert: %v\n", err)
	os.Exit(1)
}
