// Package dtdevolve evolves a set of DTDs according to a dynamic set of
// XML documents, implementing Bertino, Guerrini, Mesiti & Tosetto (EDBT
// 2002 Workshops).
//
// A Source holds a set of DTDs describing the documents of an XML database.
// Each added document is classified against the set using a numeric
// structural-similarity measure (instead of a rigid boolean validator);
// compact structural statistics of classified documents accumulate in an
// "extended DTD", and once enough documents deviate from a DTD, the
// declaration of each drifting element is rewritten — guided by association
// rules mined over the observed child structures — so the schema tracks the
// actual document population.
//
// # Quick start
//
//	d, _ := dtdevolve.ParseDTDString(`
//	  <!ELEMENT article (title, body)>
//	  <!ELEMENT title (#PCDATA)>
//	  <!ELEMENT body (#PCDATA)>`)
//	d.Name = "article"
//
//	src := dtdevolve.NewSource(dtdevolve.DefaultConfig())
//	src.AddDTD("article", d)
//	for _, xml := range corpus {
//	    doc, _ := dtdevolve.ParseDocumentString(xml)
//	    res := src.Add(doc) // classify + record (+ evolve when triggered)
//	    if res.Evolved {
//	        fmt.Println("schema evolved:", src.DTD("article"))
//	    }
//	}
//
// The subpackages are wired together by this facade; the exported aliases
// below are the supported API surface.
package dtdevolve

import (
	"io"

	"dtdevolve/internal/adapt"
	"dtdevolve/internal/classify"
	"dtdevolve/internal/dtd"
	"dtdevolve/internal/evolve"
	"dtdevolve/internal/record"
	"dtdevolve/internal/shard"
	"dtdevolve/internal/similarity"
	"dtdevolve/internal/source"
	"dtdevolve/internal/thesaurus"
	"dtdevolve/internal/validate"
	"dtdevolve/internal/wal"
	"dtdevolve/internal/xmltree"
	"dtdevolve/internal/xsd"
	"dtdevolve/internal/xtract"
)

// Core data model.
type (
	// Document is a parsed XML document.
	Document = xmltree.Document
	// Node is a vertex of a document tree.
	Node = xmltree.Node
	// Doctype is a parsed <!DOCTYPE> declaration.
	Doctype = xmltree.Doctype
	// DTD is a parsed document type definition.
	DTD = dtd.DTD
	// Content is a node of a DTD content model.
	Content = dtd.Content
)

// Lifecycle engine.
type (
	// Source is the document source with its DTD set, extended-DTD
	// statistics, repository, and automatic evolution.
	Source = source.Source
	// Config parameterizes a Source (σ, τ, similarity and evolution
	// settings).
	Config = source.Config
	// AddResult reports the classification (and possible evolution)
	// outcome for one added document.
	AddResult = source.AddResult
	// DTDStatus summarizes one DTD's state inside a Source.
	DTDStatus = source.DTDStatus
	// GroupCommitOptions configures Source.EnableGroupCommit: batched
	// journal appends with one fsync per group of concurrent commits.
	GroupCommitOptions = source.GroupCommitOptions
)

// Component types for advanced use.
type (
	// SimilarityConfig parameterizes the structural similarity measure.
	SimilarityConfig = similarity.Config
	// SimilarityResult carries global and local degrees and the (p, m, c)
	// triple.
	SimilarityResult = similarity.Result
	// EvolveConfig parameterizes the evolution phase (ψ, µ, confidence).
	EvolveConfig = evolve.Config
	// EvolveReport describes what an evolution run changed.
	EvolveReport = evolve.Report
	// ElementChange is one entry of an EvolveReport.
	ElementChange = evolve.ElementChange
	// Violation is a single validation failure.
	Violation = validate.Violation
	// Classifier matches documents against a DTD set by similarity.
	Classifier = classify.Classifier
	// ClassifyResult is a Classifier outcome.
	ClassifyResult = classify.Result
	// Recorder accumulates extended-DTD statistics for one DTD.
	Recorder = record.Recorder
)

// DefaultConfig returns the source configuration used throughout the
// paper reproduction: σ = 0.7, τ = 0.25, ψ = 0.15, µ = 0.2.
func DefaultConfig() Config { return source.DefaultConfig() }

// NewSource returns an empty document source.
func NewSource(cfg Config) *Source { return source.New(cfg) }

// RestoreSource rebuilds a Source from a Snapshot checkpoint.
func RestoreSource(cfg Config, snapshot []byte) (*Source, error) {
	return source.Restore(cfg, snapshot)
}

// Crash-safe durability (DESIGN.md §10): a write-ahead log journals every
// state-changing operation, background checkpoints bound replay time, and
// recovery tolerates torn and corrupt log tails.
type (
	// WAL is a segmented, CRC-framed append-only log.
	WAL = wal.Log
	// WALOptions configures segment size and fsync policy.
	WALOptions = wal.Options
	// SyncPolicy selects when appended records are fsynced.
	SyncPolicy = wal.SyncPolicy
	// RecoveryInfo describes what RecoverSource rebuilt the state from.
	RecoveryInfo = source.RecoveryInfo
)

// Fsync policies for WALOptions.Sync.
const (
	SyncInterval = wal.SyncInterval
	SyncAlways   = wal.SyncAlways
	SyncOff      = wal.SyncOff
)

// OpenWAL opens (creating if needed) the write-ahead log at dir. Attach it
// with Source.AttachWAL to journal every subsequent mutation.
func OpenWAL(dir string, opts WALOptions) (*WAL, error) { return wal.Open(dir, opts) }

// ParseSyncPolicy parses "always", "interval" or "off".
func ParseSyncPolicy(s string) (SyncPolicy, error) { return wal.ParseSyncPolicy(s) }

// RecoverSource rebuilds a Source from an optional checkpoint (nil: start
// empty) plus the write-ahead log at walDir — truncating a torn tail and
// quarantining corruption — then reattaches the log so the recovered source
// is immediately durable again.
func RecoverSource(cfg Config, snapshot []byte, walDir string, opts WALOptions) (*Source, RecoveryInfo, error) {
	return source.Recover(cfg, snapshot, walDir, opts)
}

// Sharded ingest (DESIGN.md §13): partition the document stream across N
// fully independent Sources, each with its own lock, WAL directory,
// group-commit queue and checkpointer, routed by rendezvous hashing on a
// stable document key.
type (
	// ShardRouter routes documents across N independent Source shards.
	ShardRouter = shard.Router
	// ShardOptions sets the shard count and the rendezvous hash seed.
	ShardOptions = shard.Options
	// ShardStatus is one shard's health and volume summary.
	ShardStatus = shard.ShardStatus
	// ShardDegradedError reports an operation refused because a specific
	// shard is in the sticky degraded (read-only) state.
	ShardDegradedError = shard.DegradedError
)

// NewShardRouter returns a router over opts.Shards fresh in-memory shards.
func NewShardRouter(cfg Config, opts ShardOptions) *ShardRouter {
	return shard.New(cfg, opts)
}

// RecoverShardRouter rebuilds a durable router from dir: the manifest fixes
// the shard count and hash seed (a changed count is a configuration error —
// resharding requires migration), and each shard recovers in parallel from
// its own checkpoint plus WAL tail, then reattaches its log.
func RecoverShardRouter(cfg Config, dir string, walOpts WALOptions, opts ShardOptions) (*ShardRouter, []RecoveryInfo, error) {
	return shard.Recover(cfg, dir, walOpts, opts)
}

// ParseDocument reads an XML document from r.
func ParseDocument(r io.Reader) (*Document, error) { return xmltree.Parse(r) }

// ParseDocumentString parses an XML document held in a string.
func ParseDocumentString(s string) (*Document, error) { return xmltree.ParseString(s) }

// ParseDocumentFile parses the XML document stored at path.
func ParseDocumentFile(path string) (*Document, error) { return xmltree.ParseFile(path) }

// ParseDTD reads DTD declarations from r.
func ParseDTD(r io.Reader) (*DTD, error) { return dtd.Parse(r) }

// ParseDTDString parses DTD declarations held in a string.
func ParseDTDString(s string) (*DTD, error) { return dtd.ParseString(s) }

// ParseDTDFile parses the DTD stored at path.
func ParseDTDFile(path string) (*DTD, error) { return dtd.ParseFile(path) }

// DocumentDTD extracts the DTD embedded in a document's internal DOCTYPE
// subset, returning nil when the document carries none.
func DocumentDTD(doc *Document) (*DTD, error) {
	if doc == nil || doc.Doctype == nil || doc.Doctype.InternalSubset == "" {
		return nil, nil
	}
	d, err := dtd.ParseString(doc.Doctype.InternalSubset)
	if err != nil {
		return nil, err
	}
	d.Name = doc.Doctype.Name
	return d, nil
}

// Validate returns all violations of doc against d; an empty slice means
// the document is valid.
func Validate(doc *Document, d *DTD) []Violation {
	return validate.New(d).ValidateDocument(doc)
}

// Similarity returns the global structural similarity of doc against d in
// [0, 1], with the default measure configuration. Validity coincides with
// similarity 1.
func Similarity(doc *Document, d *DTD) float64 {
	return similarity.Global(doc.Root, d)
}

// SimilarityDetail returns global and local degrees and the (plus, minus,
// common) triple under a custom configuration.
func SimilarityDetail(doc *Document, d *DTD, cfg SimilarityConfig) SimilarityResult {
	return similarity.NewEvaluator(d, cfg).Evaluate(doc.Root)
}

// DefaultSimilarityConfig returns the default measure parameters.
func DefaultSimilarityConfig() SimilarityConfig { return similarity.DefaultConfig() }

// NewClassifier returns a similarity classifier with threshold σ.
func NewClassifier(sigma float64, cfg SimilarityConfig) *Classifier {
	return classify.New(sigma, cfg)
}

// InferDTD infers a DTD from scratch for a set of documents sharing a root
// element (the XTRACT-style baseline).
func InferDTD(docs []*Document) (*DTD, error) { return xtract.Infer(docs) }

// Thesaurus generalizes tag equality to tag similarity (the paper's §6
// extension): synonym classes and weighted related-term pairs. Install it
// via SimilarityConfig.TagSimilarity = th.SimilarityFunc().
type Thesaurus = thesaurus.Thesaurus

// NewThesaurus returns an empty thesaurus.
func NewThesaurus() *Thesaurus { return thesaurus.New() }

// LoadThesaurus reads a thesaurus in the line format
//
//	author = writer = byline
//	price ~ cost : 0.8
func LoadThesaurus(r io.Reader) (*Thesaurus, error) { return thesaurus.Load(r) }

// LoadThesaurusString is LoadThesaurus over a string.
func LoadThesaurusString(s string) (*Thesaurus, error) { return thesaurus.LoadString(s) }

// DefaultEvolveConfig returns the default evolution parameters.
func DefaultEvolveConfig() EvolveConfig { return evolve.DefaultConfig() }

// EvolveOnce records the documents against d and runs a single evolution
// phase, returning the evolved DTD and the per-element report. It is the
// one-shot batch form of the Source lifecycle.
func EvolveOnce(d *DTD, docs []*Document, cfg EvolveConfig) (*DTD, EvolveReport) {
	rec := record.New(d)
	for _, doc := range docs {
		rec.Record(doc)
	}
	return evolve.Evolve(rec, cfg)
}

// Document adaptation (the paper's §6 open problem: adapting stored
// documents to the structure prescribed by the evolved DTDs).
type (
	// Adapter transforms documents to conform to a DTD.
	Adapter = adapt.Adapter
	// AdaptOptions configures an Adapter.
	AdaptOptions = adapt.Options
	// AdaptReport records the transformations applied to one document.
	AdaptReport = adapt.Report
)

// NewAdapter returns an Adapter for d.
func NewAdapter(d *DTD, opts AdaptOptions) *Adapter { return adapt.New(d, opts) }

// DefaultAdaptOptions returns full adaptation: drop extras, insert missing
// mandatory elements.
func DefaultAdaptOptions() AdaptOptions { return adapt.DefaultOptions() }

// XML Schema support (the paper's §6 extension to XSD evolution).
type (
	// Schema is a structural XSD-subset schema.
	Schema = xsd.Schema
)

// DTDToSchema converts a DTD to the XSD subset (lossless for the
// structural content).
func DTDToSchema(d *DTD) *Schema { return xsd.FromDTD(d) }

// SchemaToDTD converts an XSD-subset schema to a DTD; the notes report
// occurrence ranges DTDs cannot express exactly.
func SchemaToDTD(s *Schema) (*DTD, []string) { return xsd.ToDTD(s) }

// ParseSchema reads an XSD document (the supported subset) from r.
func ParseSchema(r io.Reader) (*Schema, error) { return xsd.Parse(r) }

// EvolveSchema adapts a schema to a document corpus via the DTD evolution
// engine (one-shot batch form).
func EvolveSchema(s *Schema, docs []*Document, cfg EvolveConfig) (*Schema, EvolveReport, []string) {
	return xsd.Evolve(s, docs, cfg)
}

// CheckDeterminism returns, per element, the XML 1.0 determinism conflicts
// of the DTD's content models; an empty map means every declaration is
// deterministic. Evolved DTDs — in particular misc-window merges — may be
// nondeterministic; strictly conforming XML processors reject such models,
// while this library's validator handles them.
func CheckDeterminism(d *DTD) map[string][]string { return dtd.DTDDeterminism(d) }
