#!/usr/bin/env bash
# End-to-end replication check with the real binary: a 4-shard primary
# ingests documents while a follower tails it over HTTP; after quiescing,
# the follower's merged /snapshot must be byte-identical to the primary's,
# its lag must read zero, and a write against the follower must bounce
# with 503 + Retry-After. Run from the repository root. CI runs this in
# the `replication` job; locally: ./scripts/replication_e2e.sh
set -euo pipefail

WORK="$(mktemp -d)"
PRIMARY_ADDR="127.0.0.1:18080"
FOLLOWER_ADDR="127.0.0.1:18081"
PIDS=()
cleanup() {
    for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
    wait 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

go build -o "$WORK/dtdserved" ./cmd/dtdserved

wait_http() { # url [tries]
    local url=$1 tries=${2:-100}
    for _ in $(seq "$tries"); do
        if curl -fsS -o /dev/null "$url" 2>/dev/null; then return 0; fi
        sleep 0.1
    done
    echo "timeout waiting for $url" >&2
    return 1
}

echo "--- start primary (4 shards)"
"$WORK/dtdserved" -addr "$PRIMARY_ADDR" -wal "$WORK/primary" -shards 4 \
    -fsync interval -fsync-interval 10ms -wal-segment 4096 -mindocs 3 &
PIDS+=($!)
wait_http "http://$PRIMARY_ADDR/status"

echo "--- ingest"
curl -fsS -X PUT "http://$PRIMARY_ADDR/dtds/article" -o /dev/null --data-binary @- <<'EOF'
<!ELEMENT article (title, body)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT body (#PCDATA)>
EOF
for i in $(seq 60); do
    if [ $((i % 3)) -eq 0 ]; then
        doc="<article><title>t$i</title><author>a</author><body>b</body></article>"
    else
        doc="<article><title>t$i</title><body>b$i</body></article>"
    fi
    curl -fsS -X POST "http://$PRIMARY_ADDR/documents" \
        -H "X-Doc-Key: doc-$i" -o /dev/null --data-binary "$doc"
done

echo "--- start follower"
"$WORK/dtdserved" -follow "http://$PRIMARY_ADDR" -wal "$WORK/follower" \
    -replica-listen "$FOLLOWER_ADDR" -follower-id ci-e2e -mindocs 3 &
PIDS+=($!)
wait_http "http://$FOLLOWER_ADDR/status"

echo "--- ingest more while the follower tails"
for i in $(seq 61 90); do
    curl -fsS -X POST "http://$PRIMARY_ADDR/documents" \
        -H "X-Doc-Key: doc-$i" -o /dev/null \
        --data-binary "<article><title>t$i</title><body>b$i</body></article>"
done

echo "--- wait for byte-identical snapshots"
converged=
for _ in $(seq 200); do
    curl -fsS "http://$PRIMARY_ADDR/snapshot" -o "$WORK/p.snap"
    curl -fsS "http://$FOLLOWER_ADDR/snapshot" -o "$WORK/f.snap"
    if cmp -s "$WORK/p.snap" "$WORK/f.snap"; then converged=1; break; fi
    sleep 0.1
done
if [ -z "$converged" ]; then
    echo "FAIL: follower snapshot never converged to the primary's" >&2
    exit 1
fi
echo "snapshots byte-identical ($(wc -c <"$WORK/p.snap") bytes)"

echo "--- follower lag reads zero"
status="$(curl -fsS "http://$FOLLOWER_ADDR/status")"
echo "$status" | grep -q '"role":"follower"' || { echo "FAIL: not a follower: $status" >&2; exit 1; }
if echo "$status" | grep -Eq '"(segments|bytes)_behind":[1-9]'; then
    echo "FAIL: nonzero lag after convergence: $status" >&2
    exit 1
fi

echo "--- follower metrics expose replication state"
curl -fsS "http://$FOLLOWER_ADDR/metrics" | grep -q '"replication"' || {
    echo "FAIL: /metrics carries no replication block" >&2
    exit 1
}

echo "--- writes bounce off the follower with Retry-After"
code="$(curl -s -o /dev/null -w '%{http_code}' -X POST "http://$FOLLOWER_ADDR/documents" \
    -H "X-Doc-Key: nope" --data-binary "<article><title>x</title><body>y</body></article>")"
retry_after="$(curl -s -o /dev/null -D - -X POST "http://$FOLLOWER_ADDR/documents" \
    -H "X-Doc-Key: nope" --data-binary "<x/>" | tr -d '\r' | awk 'tolower($1)=="retry-after:"{print $2}')"
if [ "$code" != 503 ] || [ -z "$retry_after" ]; then
    echo "FAIL: follower write answered $code (Retry-After: '$retry_after'), want 503 + Retry-After" >&2
    exit 1
fi

echo "--- primary registry lists the follower"
curl -fsS "http://$PRIMARY_ADDR/status" | grep -q '"ci-e2e"' || {
    echo "FAIL: primary /status does not list follower ci-e2e" >&2
    exit 1
}

echo "PASS: replication end-to-end"
