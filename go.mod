module dtdevolve

go 1.22
