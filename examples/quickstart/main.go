// Quickstart walks through the paper's worked example (Example 5 / Figure
// 5): a DTD declaring <!ELEMENT a (b, c)> meets two families of documents —
// D1 with repeated (b, c) pairs followed by d, and D2 with one (b, c) pair
// followed by e — and evolves into ((b, c)*, (d | e)), with brand-new
// declarations extracted for the plus elements d and e.
package main

import (
	"fmt"
	"log"

	"dtdevolve"
)

func main() {
	d, err := dtdevolve.ParseDTDString(`
<!ELEMENT a (b, c)>
<!ELEMENT b (#PCDATA)>
<!ELEMENT c (#PCDATA)>`)
	if err != nil {
		log.Fatal(err)
	}
	d.Name = "a"
	fmt.Println("initial DTD:")
	fmt.Print(d.String())

	// The document population the DTD no longer describes.
	var corpus []*dtdevolve.Document
	d1 := `<a><b>1</b><c>1</c><b>2</b><c>2</c><d>x</d></a>`
	d2 := `<a><b>1</b><c>1</c><e>y</e></a>`
	for i := 0; i < 3; i++ {
		corpus = append(corpus, mustParse(d1))
	}
	for i := 0; i < 2; i++ {
		corpus = append(corpus, mustParse(d2))
	}

	// Each document is close to the DTD (similarity-based classification
	// keeps it) but not valid (a validator would reject it).
	for i, doc := range corpus {
		sim := dtdevolve.Similarity(doc, d)
		valid := len(dtdevolve.Validate(doc, d)) == 0
		fmt.Printf("doc %d: similarity %.3f, valid %v\n", i+1, sim, valid)
	}

	// One evolution step over the recorded corpus.
	evolved, report := dtdevolve.EvolveOnce(d, corpus, dtdevolve.DefaultEvolveConfig())
	fmt.Println("\nevolution report:")
	for _, c := range report.Changes {
		fmt.Printf("  %-3s %-10s -> %s\n", c.Name, c.Action, c.New)
	}
	fmt.Println("\nevolved DTD:")
	fmt.Print(evolved.String())

	// Every document of the population is now plainly valid.
	for i, doc := range corpus {
		if vs := dtdevolve.Validate(doc, evolved); len(vs) != 0 {
			log.Fatalf("doc %d still invalid: %v", i+1, vs)
		}
	}
	fmt.Println("\nall documents valid for the evolved DTD")
}

func mustParse(src string) *dtdevolve.Document {
	doc, err := dtdevolve.ParseDocumentString(src)
	if err != nil {
		log.Fatal(err)
	}
	return doc
}
