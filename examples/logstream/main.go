// Logstream demonstrates operating the source as a long-lived service: a
// stream of structured log events flows in, the source checkpoints its
// state (DTD set, extended-DTD statistics, repository) to JSON, a "restart"
// restores from the snapshot, and evolution continues seamlessly across
// the restart.
package main

import (
	"fmt"
	"log"
	"strings"

	"dtdevolve"
)

func main() {
	d, err := dtdevolve.ParseDTDString(`
<!ELEMENT event (ts, level, msg)>
<!ELEMENT ts (#PCDATA)>
<!ELEMENT level (#PCDATA)>
<!ELEMENT msg (#PCDATA)>`)
	if err != nil {
		log.Fatal(err)
	}
	d.Name = "event"

	cfg := dtdevolve.DefaultConfig()
	cfg.MinDocs = 12
	src := dtdevolve.NewSource(cfg)
	src.AddDTD("event", d)

	// New-style events carry a trace id the schema does not know about.
	evt := `<event><ts>2002-06-01T10:00</ts><level>info</level><msg>ok</msg><trace>abc</trace></event>`
	for i := 0; i < 8; i++ {
		feed(src, evt)
	}

	// Checkpoint mid-stream, before the evolution threshold is reached.
	snapshot, err := src.Snapshot()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpoint after 8 events: %d bytes\n", len(snapshot))

	// Simulated restart: all in-memory state is discarded and restored.
	restored, err := dtdevolve.RestoreSource(cfg, snapshot)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("restarted from checkpoint")

	// The stream continues on the restored source; the recorded statistics
	// survived the restart, so evolution triggers exactly as if the
	// process had never stopped.
	evolved := false
	for i := 0; i < 10 && !evolved; i++ {
		res := feed(restored, evt)
		if res.Evolved {
			evolved = true
			fmt.Printf("evolution triggered %d events after restart\n", i+1)
		}
	}
	if !evolved {
		log.Fatal("evolution did not trigger after restart")
	}
	fmt.Println("\nevolved event DTD:")
	fmt.Print(restored.DTD("event").String())

	doc, _ := dtdevolve.ParseDocumentString(evt)
	if vs := dtdevolve.Validate(doc, restored.DTD("event")); len(vs) != 0 {
		log.Fatalf("new-style event still invalid: %v", vs)
	}
	fmt.Println("\nnew-style events now valid")

	// A high-volume tail of the stream arrives through the one-pass
	// streaming path (DESIGN.md §15): same classification, same recorded
	// statistics, but the document is never materialized as a tree —
	// memory stays bounded by the open-element path however large the
	// event. Over HTTP this is POST /documents?stream=1.
	res, err := restored.AddStream(strings.NewReader(evt))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstreamed event classified %q at similarity %.2f (one pass, no tree)\n",
		res.DTDName, res.Similarity)
}

func feed(src *dtdevolve.Source, s string) dtdevolve.AddResult {
	doc, err := dtdevolve.ParseDocumentString(s)
	if err != nil {
		log.Fatal(err)
	}
	return src.Add(doc)
}
