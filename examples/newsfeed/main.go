// Newsfeed simulates the paper's motivating scenario: a feed of news
// articles whose structure drifts over time (editors start adding bylines,
// then tag lists), while a Source keeps the article DTD aligned with the
// population automatically.
package main

import (
	"fmt"
	"log"

	"dtdevolve"
)

func main() {
	d, err := dtdevolve.ParseDTDString(`
<!ELEMENT article (headline, body)>
<!ELEMENT headline (#PCDATA)>
<!ELEMENT body (#PCDATA)>`)
	if err != nil {
		log.Fatal(err)
	}
	d.Name = "article"

	cfg := dtdevolve.DefaultConfig()
	cfg.Sigma = 0.6 // era-3 articles drift further; keep them classifiable
	cfg.MinDocs = 10
	src := dtdevolve.NewSource(cfg)
	src.AddDTD("article", d)

	phases := []struct {
		name string
		doc  string
		n    int
	}{
		{"era 1: original schema",
			`<article><headline>h</headline><body>b</body></article>`, 15},
		{"era 2: bylines appear",
			`<article><headline>h</headline><byline>reporter</byline><body>b</body></article>`, 25},
		{"era 3: tag lists appear",
			`<article><headline>h</headline><byline>r</byline><body>b</body><tag>x</tag><tag>y</tag></article>`, 25},
	}

	for _, phase := range phases {
		fmt.Printf("--- %s (%d documents) ---\n", phase.name, phase.n)
		evolutions := 0
		var lastSim float64
		for i := 0; i < phase.n; i++ {
			doc, err := dtdevolve.ParseDocumentString(phase.doc)
			if err != nil {
				log.Fatal(err)
			}
			res := src.Add(doc)
			lastSim = res.Similarity
			if !res.Classified {
				fmt.Printf("  doc %d went to the repository (similarity %.3f)\n", i+1, res.Similarity)
			}
			if res.Evolved {
				evolutions++
				fmt.Printf("  evolution triggered at doc %d\n", i+1)
				for _, c := range res.Report.Changes {
					if c.Action.String() != "unchanged" {
						fmt.Printf("    %-9s %-10s -> %s\n", c.Name, c.Action, c.New)
					}
				}
			}
		}
		fmt.Printf("  end of era: similarity of the era's shape = %.3f, evolutions = %d\n",
			lastSim, evolutions)
	}

	fmt.Println("\nfinal DTD:")
	fmt.Print(src.DTD("article").String())
	for _, st := range src.Status() {
		fmt.Printf("status: %d evolutions, %d docs since last, check ratio %.3f\n",
			st.Evolutions, st.Docs, st.CheckRatio)
	}
}
