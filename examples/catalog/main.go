// Catalog demonstrates multi-DTD routing: a source holds two schemas
// (product catalogs and customer invoices); heterogeneous documents from
// the Web are routed to the best-matching DTD by structural similarity,
// documents too far from both land in the repository, and after an
// evolution step the repository is re-classified and recovered.
package main

import (
	"fmt"
	"log"

	"dtdevolve"
)

func main() {
	catalog, err := dtdevolve.ParseDTDString(`
<!ELEMENT catalog (product+)>
<!ELEMENT product (name, price)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT price (#PCDATA)>`)
	if err != nil {
		log.Fatal(err)
	}
	catalog.Name = "catalog"

	invoice, err := dtdevolve.ParseDTDString(`
<!ELEMENT invoice (customer, amount)>
<!ELEMENT customer (#PCDATA)>
<!ELEMENT amount (#PCDATA)>`)
	if err != nil {
		log.Fatal(err)
	}
	invoice.Name = "invoice"

	cfg := dtdevolve.DefaultConfig()
	cfg.Sigma = 0.75
	cfg.AutoEvolve = false
	src := dtdevolve.NewSource(cfg)
	src.AddDTD("catalog", catalog)
	src.AddDTD("invoice", invoice)

	stream := []string{
		// Plain instances of both schemas.
		`<catalog><product><name>lamp</name><price>10</price></product></catalog>`,
		`<invoice><customer>acme</customer><amount>99</amount></invoice>`,
		// Near misses: close enough to classify, not valid.
		`<catalog><product><name>desk</name><price>80</price><sku>D-1</sku></product></catalog>`,
		`<invoice><customer>zenith</customer><amount>45</amount><due>2002-06-01</due></invoice>`,
		// Far from both: repository.
		`<catalog><vendor/><vendor/><vendor/><vendor/><vendor/><vendor/></catalog>`,
	}
	for _, s := range stream {
		doc, err := dtdevolve.ParseDocumentString(s)
		if err != nil {
			log.Fatal(err)
		}
		res := src.Add(doc)
		if res.Classified {
			fmt.Printf("-> %-8s (similarity %.3f)\n", res.DTDName, res.Similarity)
		} else {
			fmt.Printf("-> repository (best similarity %.3f)\n", res.Similarity)
		}
	}
	fmt.Printf("repository size: %d\n", src.RepositorySize())

	// More sku-bearing catalogs accumulate; evolve the catalog DTD.
	for i := 0; i < 10; i++ {
		doc, _ := dtdevolve.ParseDocumentString(
			`<catalog><product><name>n</name><price>1</price><sku>S</sku></product><vendor/></catalog>`)
		src.Add(doc)
	}
	report, recovered, err := src.EvolveNow("catalog")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncatalog evolution:")
	for _, c := range report.Changes {
		if c.Action.String() != "unchanged" {
			fmt.Printf("  %-8s %-10s -> %s\n", c.Name, c.Action, c.New)
		}
	}
	fmt.Printf("repository documents recovered: %d (repository now %d)\n",
		recovered, src.RepositorySize())
	fmt.Println("\nevolved catalog DTD:")
	fmt.Print(src.DTD("catalog").String())
}
