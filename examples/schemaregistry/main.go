// Schemaregistry combines every extension of the paper's §6 into one
// scenario: a registry service manages an order schema as XSD, converts it
// to a DTD to run the lifecycle, keeps classified documents in a durable
// store, lets a trigger rule decide when to evolve, recognizes synonym tags
// through a thesaurus, and finally adapts the stored documents to the
// evolved schema before publishing it back as XSD.
package main

import (
	"fmt"
	"log"
	"os"

	"dtdevolve"
)

func main() {
	// The registry's published schema, maintained as XSD.
	schemaXSD := `<?xml version="1.0"?>
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="order">
    <xs:complexType>
      <xs:sequence>
        <xs:element ref="customer"/>
        <xs:element ref="item" maxOccurs="unbounded"/>
      </xs:sequence>
    </xs:complexType>
  </xs:element>
  <xs:element name="customer" type="xs:string"/>
  <xs:element name="item" type="xs:string"/>
</xs:schema>`
	f, err := os.CreateTemp("", "registry-*.xsd")
	if err != nil {
		log.Fatal(err)
	}
	defer os.Remove(f.Name())
	if _, err := f.WriteString(schemaXSD); err != nil {
		log.Fatal(err)
	}
	f.Close()

	schemaFile, err := os.Open(f.Name())
	if err != nil {
		log.Fatal(err)
	}
	schema, err := dtdevolve.ParseSchema(schemaFile)
	schemaFile.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("registered schema:")
	fmt.Print(schema.Summary())

	// The lifecycle runs at the DTD level.
	d, notes := dtdevolve.SchemaToDTD(schema)
	for _, n := range notes {
		fmt.Println("conversion note:", n)
	}

	// A thesaurus: some producers say <client> for <customer>.
	th, err := dtdevolve.LoadThesaurusString(`customer = client`)
	if err != nil {
		log.Fatal(err)
	}

	cfg := dtdevolve.DefaultConfig()
	cfg.AutoEvolve = false // the trigger rule is in charge
	cfg.Similarity.TagSimilarity = th.SimilarityFunc()
	src := dtdevolve.NewSource(cfg)
	src.AddDTD("order", d)
	if err := src.EnableStore(""); err != nil { // in-memory store for the demo
		log.Fatal(err)
	}
	defer src.CloseStore()
	if err := src.AddTriggerRule("on order when check_ratio >= 0.2 and docs >= 12 do evolve, reclassify"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntrigger installed:", src.TriggerRules()[0])

	// Era 1: conforming orders (some use the synonym <client>, which the
	// thesaurus keeps classifiable; once enough accumulate, the trigger
	// may already fire and fold <client> into the schema).
	for i := 0; i < 6; i++ {
		feed(src, `<order><customer>acme</customer><item>bolt</item></order>`)
		feed(src, `<order><client>zenith</client><item>nut</item><item>washer</item></order>`)
	}
	// Era 2: producers add a total element; the trigger fires (again).
	drifted := `<order><customer>acme</customer><item>bolt</item><item>nut</item><total>99</total></order>`
	evolvedAt := -1
	for i := 0; i < 20 && evolvedAt < 0; i++ {
		res := feed(src, drifted)
		if res.Evolved {
			evolvedAt = i + 1
			fmt.Printf("\ntrigger fired after %d drifted orders: %v\n", evolvedAt, res.Triggered)
		}
	}
	if evolvedAt < 0 {
		log.Fatal("trigger never fired")
	}
	fmt.Println("evolved DTD (first step):")
	fmt.Print(src.DTD("order").String())

	// An evolution built from the invalid population only (paper §3.2:
	// sequences are recorded for non-valid instances) may not yet cover
	// the drifted shape; the lifecycle self-corrects: the still-invalid
	// orders keep accumulating until the trigger fires again.
	if doc, _ := dtdevolve.ParseDocumentString(drifted); len(dtdevolve.Validate(doc, src.DTD("order"))) > 0 {
		fmt.Println("\ndrifted shape not yet covered; continuing the stream...")
		for i := 0; i < 30; i++ {
			if res := feed(src, drifted); res.Evolved {
				fmt.Printf("second evolution after %d more orders\n", i+1)
				break
			}
		}
	}
	if doc, _ := dtdevolve.ParseDocumentString(drifted); len(dtdevolve.Validate(doc, src.DTD("order"))) > 0 {
		log.Fatal("drifted shape still invalid after convergence")
	}
	fmt.Println("\nconverged DTD:")
	fmt.Print(src.DTD("order").String())

	// Adapt the stored era-1 orders to the evolved schema.
	opts := dtdevolve.DefaultAdaptOptions()
	opts.PlaceholderText = "0.00"
	opts.Similarity.TagSimilarity = th.SimilarityFunc()
	changed, err := src.AdaptStored("order", opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nadapted %d stored orders to the evolved schema\n", changed)
	invalid := 0
	for _, doc := range src.StoredDocs("order") {
		if len(dtdevolve.Validate(doc, src.DTD("order"))) > 0 {
			invalid++
		}
	}
	fmt.Printf("stored orders still invalid: %d\n", invalid)

	// Publish the evolved schema back as XSD.
	evolvedSchema := dtdevolve.DTDToSchema(src.DTD("order"))
	fmt.Println("\npublished schema:")
	fmt.Print(evolvedSchema.Summary())
}

func feed(src *dtdevolve.Source, s string) dtdevolve.AddResult {
	doc, err := dtdevolve.ParseDocumentString(s)
	if err != nil {
		log.Fatal(err)
	}
	res := src.Add(doc)
	if !res.Classified {
		fmt.Printf("unclassified (similarity %.3f): %s\n", res.Similarity, s)
	}
	if res.Evolved {
		fmt.Println("  (evolution ran)")
	}
	return res
}
