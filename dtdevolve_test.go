package dtdevolve_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dtdevolve"
)

const articleDTDSrc = `
<!ELEMENT article (title, body)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT body (#PCDATA)>`

func articleDTD(t *testing.T) *dtdevolve.DTD {
	t.Helper()
	d, err := dtdevolve.ParseDTDString(articleDTDSrc)
	if err != nil {
		t.Fatal(err)
	}
	d.Name = "article"
	return d
}

func TestFacadeParseAndValidate(t *testing.T) {
	d := articleDTD(t)
	doc, err := dtdevolve.ParseDocumentString(`<article><title>t</title><body>b</body></article>`)
	if err != nil {
		t.Fatal(err)
	}
	if vs := dtdevolve.Validate(doc, d); len(vs) != 0 {
		t.Errorf("violations = %v", vs)
	}
	if sim := dtdevolve.Similarity(doc, d); sim != 1 {
		t.Errorf("similarity = %v, want 1", sim)
	}
	bad, _ := dtdevolve.ParseDocumentString(`<article><title>t</title></article>`)
	if vs := dtdevolve.Validate(bad, d); len(vs) == 0 {
		t.Error("missing body not flagged")
	}
	if sim := dtdevolve.Similarity(bad, d); sim >= 1 {
		t.Errorf("similarity of invalid doc = %v", sim)
	}
}

func TestFacadeSimilarityDetail(t *testing.T) {
	d := articleDTD(t)
	doc, _ := dtdevolve.ParseDocumentString(`<article><title>t</title><extra/><body>b</body></article>`)
	res := dtdevolve.SimilarityDetail(doc, d, dtdevolve.DefaultSimilarityConfig())
	if res.Global >= 1 || res.Global <= 0 {
		t.Errorf("global = %v", res.Global)
	}
	if res.Triple.Plus == 0 {
		t.Error("extra element not reflected in triple")
	}
}

func TestFacadeSourceLifecycle(t *testing.T) {
	cfg := dtdevolve.DefaultConfig()
	cfg.MinDocs = 5
	src := dtdevolve.NewSource(cfg)
	src.AddDTD("article", articleDTD(t))
	drifted := `<article><title>t</title><author>a</author><body>b</body></article>`
	evolved := false
	for i := 0; i < 20 && !evolved; i++ {
		doc, err := dtdevolve.ParseDocumentString(drifted)
		if err != nil {
			t.Fatal(err)
		}
		res := src.Add(doc)
		evolved = res.Evolved
	}
	if !evolved {
		t.Fatal("no evolution over drifted stream")
	}
	if !strings.Contains(src.DTD("article").String(), "author") {
		t.Errorf("evolved DTD lacks author:\n%s", src.DTD("article"))
	}
}

func TestFacadeEvolveOnce(t *testing.T) {
	d := articleDTD(t)
	var docs []*dtdevolve.Document
	for i := 0; i < 10; i++ {
		doc, _ := dtdevolve.ParseDocumentString(`<article><title>t</title><author>a</author><body>b</body></article>`)
		docs = append(docs, doc)
	}
	evolved, report := dtdevolve.EvolveOnce(d, docs, dtdevolve.DefaultEvolveConfig())
	if !strings.Contains(evolved.Elements["article"].String(), "author") {
		t.Errorf("evolved article = %s", evolved.Elements["article"])
	}
	if len(report.Changes) == 0 {
		t.Error("empty report")
	}
}

func TestFacadeInferDTD(t *testing.T) {
	var docs []*dtdevolve.Document
	for _, src := range []string{`<r><a/><b/></r>`, `<r><a/></r>`} {
		doc, _ := dtdevolve.ParseDocumentString(src)
		docs = append(docs, doc)
	}
	d, err := dtdevolve.InferDTD(docs)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Elements["r"].String(); got != "(a, b?)" {
		t.Errorf("inferred r = %s", got)
	}
}

func TestFacadeDocumentDTD(t *testing.T) {
	doc, err := dtdevolve.ParseDocumentString(`<!DOCTYPE a [<!ELEMENT a (b)> <!ELEMENT b EMPTY>]><a><b/></a>`)
	if err != nil {
		t.Fatal(err)
	}
	d, err := dtdevolve.DocumentDTD(doc)
	if err != nil {
		t.Fatal(err)
	}
	if d == nil || d.Name != "a" || len(d.Elements) != 2 {
		t.Fatalf("embedded DTD = %v", d)
	}
	if vs := dtdevolve.Validate(doc, d); len(vs) != 0 {
		t.Errorf("doc invalid against its own DTD: %v", vs)
	}
	plain, _ := dtdevolve.ParseDocumentString(`<a/>`)
	if d, err := dtdevolve.DocumentDTD(plain); err != nil || d != nil {
		t.Errorf("DocumentDTD(no doctype) = %v, %v", d, err)
	}
}

func TestFacadeSnapshotRestore(t *testing.T) {
	cfg := dtdevolve.DefaultConfig()
	src := dtdevolve.NewSource(cfg)
	src.AddDTD("article", articleDTD(t))
	doc, _ := dtdevolve.ParseDocumentString(`<article><title>t</title><body>b</body></article>`)
	src.Add(doc)
	data, err := src.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := dtdevolve.RestoreSource(cfg, data)
	if err != nil {
		t.Fatal(err)
	}
	if len(restored.Names()) != 1 {
		t.Errorf("restored names = %v", restored.Names())
	}
}

func TestFacadeFileAndReaderParsers(t *testing.T) {
	dir := t.TempDir()
	dtdPath := filepath.Join(dir, "s.dtd")
	xmlPath := filepath.Join(dir, "d.xml")
	if err := os.WriteFile(dtdPath, []byte(articleDTDSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(xmlPath, []byte(`<article><title>t</title><body>b</body></article>`), 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := dtdevolve.ParseDTDFile(dtdPath)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := dtdevolve.ParseDocumentFile(xmlPath)
	if err != nil {
		t.Fatal(err)
	}
	if vs := dtdevolve.Validate(doc, d); len(vs) != 0 {
		t.Errorf("violations = %v", vs)
	}
	if _, err := dtdevolve.ParseDTD(strings.NewReader(articleDTDSrc)); err != nil {
		t.Error(err)
	}
	if _, err := dtdevolve.ParseDocument(strings.NewReader(`<a/>`)); err != nil {
		t.Error(err)
	}
}

func TestFacadeClassifier(t *testing.T) {
	c := dtdevolve.NewClassifier(0.7, dtdevolve.DefaultSimilarityConfig())
	c.Set("article", articleDTD(t))
	doc, _ := dtdevolve.ParseDocumentString(`<article><title>t</title><body>b</body></article>`)
	res := c.Classify(doc)
	if !res.Classified || res.DTDName != "article" {
		t.Errorf("res = %+v", res)
	}
}

func TestFacadeThesaurus(t *testing.T) {
	th := dtdevolve.NewThesaurus()
	th.AddSynonyms("body", "content")
	cfg := dtdevolve.DefaultSimilarityConfig()
	cfg.TagSimilarity = th.SimilarityFunc()
	doc, _ := dtdevolve.ParseDocumentString(`<article><title>t</title><content>b</content></article>`)
	res := dtdevolve.SimilarityDetail(doc, articleDTD(t), cfg)
	if res.Global != 1 {
		t.Errorf("synonym similarity = %v, want 1", res.Global)
	}
	th2, err := dtdevolve.LoadThesaurus(strings.NewReader("body = content"))
	if err != nil {
		t.Fatal(err)
	}
	if th2.Similarity("body", "content") != 1 {
		t.Error("LoadThesaurus lost the synonym")
	}
	if _, err := dtdevolve.LoadThesaurusString("broken line"); err == nil {
		t.Error("bad thesaurus accepted")
	}
}

func TestFacadeAdapter(t *testing.T) {
	d := articleDTD(t)
	opts := dtdevolve.DefaultAdaptOptions()
	opts.PlaceholderText = "?"
	a := dtdevolve.NewAdapter(d, opts)
	doc, _ := dtdevolve.ParseDocumentString(`<article><title>t</title><junk/></article>`)
	out, report := a.Adapt(doc)
	if len(dtdevolve.Validate(out, d)) != 0 {
		t.Errorf("adapted doc invalid")
	}
	if report.Dropped != 1 || report.Inserted != 1 {
		t.Errorf("report = %+v", report)
	}
}

func TestFacadeSchemaRoundTrip(t *testing.T) {
	d := articleDTD(t)
	s := dtdevolve.DTDToSchema(d)
	back, notes := dtdevolve.SchemaToDTD(s)
	if len(notes) != 0 {
		t.Errorf("notes = %v", notes)
	}
	if len(back.Elements) != len(d.Elements) {
		t.Errorf("element count changed: %d vs %d", len(back.Elements), len(d.Elements))
	}
	parsed, err := dtdevolve.ParseSchema(strings.NewReader(s.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !parsed.Equal(s) {
		t.Error("schema round trip changed")
	}
}

func TestFacadeEvolveSchema(t *testing.T) {
	s := dtdevolve.DTDToSchema(articleDTD(t))
	var docs []*dtdevolve.Document
	for i := 0; i < 10; i++ {
		doc, _ := dtdevolve.ParseDocumentString(`<article><title>t</title><author>a</author><body>b</body></article>`)
		docs = append(docs, doc)
	}
	evolved, report, notes := dtdevolve.EvolveSchema(s, docs, dtdevolve.DefaultEvolveConfig())
	if len(notes) != 0 {
		t.Errorf("notes = %v", notes)
	}
	if evolved.Elements["author"] == nil {
		t.Error("author not declared in evolved schema")
	}
	if len(report.Changes) == 0 {
		t.Error("empty report")
	}
}

func TestFacadeCheckDeterminism(t *testing.T) {
	d, err := dtdevolve.ParseDTDString(`<!ELEMENT a ((b, c) | (b, d))> <!ELEMENT b EMPTY> <!ELEMENT c EMPTY> <!ELEMENT d EMPTY>`)
	if err != nil {
		t.Fatal(err)
	}
	issues := dtdevolve.CheckDeterminism(d)
	if len(issues) != 1 || len(issues["a"]) == 0 {
		t.Errorf("issues = %v", issues)
	}
}
