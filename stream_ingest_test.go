package dtdevolve_test

// Benchmarks and the memory-bound proof of the streaming one-pass ingest
// (DESIGN.md §15): a synthetic document generated as a stream — never held
// in memory by the test either — flows through Source.AddStream, and peak
// HeapAlloc must stay bounded by the open-element path, not the document
// size.

import (
	"bytes"
	"io"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"dtdevolve"
	"dtdevolve/internal/classify"
	"dtdevolve/internal/dtd"
	"dtdevolve/internal/intern"
	"dtdevolve/internal/similarity"
	"dtdevolve/internal/source"
	"dtdevolve/internal/stream"
)

const logDTDSrc = `
<!ELEMENT log (entry)*>
<!ELEMENT entry (#PCDATA)>`

func logDTD() *dtd.DTD {
	d := dtd.MustParse(logDTDSrc)
	d.Name = "log"
	return d
}

// synthEntryText is the payload of one synthetic <entry>; with markup each
// entry contributes ~1 KiB to the stream.
var synthEntryText = strings.Repeat("x", 1000)

// synthReader streams "<log><entry>x…x</entry>…</log>" with n entries,
// generating each chunk on demand: the document as a whole never exists in
// the test process, so the ingest's heap is all there is to measure.
type synthReader struct {
	entries int // entries still to emit
	stage   int // 0 header, 1 entries, 2 footer, 3 done
	chunk   []byte
	off     int
}

func (r *synthReader) reset(entries int) {
	r.entries, r.stage, r.off = entries, 0, 0
	r.chunk = r.chunk[:0]
}

func (r *synthReader) Read(p []byte) (int, error) {
	for r.off == len(r.chunk) {
		r.chunk, r.off = r.chunk[:0], 0
		switch r.stage {
		case 0:
			r.chunk = append(r.chunk, "<log>"...)
			r.stage = 1
		case 1:
			if r.entries == 0 {
				r.stage = 2
				continue
			}
			r.entries--
			r.chunk = append(r.chunk, "<entry>"...)
			r.chunk = append(r.chunk, synthEntryText...)
			r.chunk = append(r.chunk, "</entry>"...)
		case 2:
			r.chunk = append(r.chunk, "</log>"...)
			r.stage = 3
		case 3:
			return 0, io.EOF
		}
	}
	n := copy(p, r.chunk[r.off:])
	r.off += n
	return n, nil
}

// TestStreamIngestBoundedHeap is the tentpole's memory claim: a ~256 MiB
// document ingests through the bounded streaming path (no WAL, no store —
// no spool) with peak HeapAlloc under 64 MiB, and still classifies
// perfectly.
func TestStreamIngestBoundedHeap(t *testing.T) {
	if testing.Short() {
		t.Skip("256 MiB ingest")
	}
	cfg := source.DefaultConfig()
	src := source.New(cfg)
	src.AddDTD("log", logDTD())

	// ~1015 bytes per entry; 265k entries ≈ 256 MiB.
	const entries = 265_000
	var rd synthReader
	rd.reset(entries)

	runtime.GC()
	var peak atomic.Uint64
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		var ms runtime.MemStats
		for {
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > peak.Load() {
				peak.Store(ms.HeapAlloc)
			}
			select {
			case <-stop:
				return
			case <-time.After(5 * time.Millisecond):
			}
		}
	}()

	res, err := src.AddStream(&rd)
	close(stop)
	<-done
	if err != nil {
		t.Fatal(err)
	}
	if !res.Classified || res.DTDName != "log" || res.Similarity != 1.0 {
		t.Fatalf("synthetic log misclassified: %+v", res)
	}
	if m := src.Metrics(); m.StreamBytes < 256<<20 {
		t.Fatalf("streamed only %d bytes, want >= 256 MiB", m.StreamBytes)
	}
	const heapBudget = 64 << 20
	p := peak.Load()
	t.Logf("streamed %d MiB with peak HeapAlloc %.1f MiB", src.Metrics().StreamBytes>>20, float64(p)/(1<<20))
	if p >= heapBudget {
		t.Errorf("peak HeapAlloc = %d MiB, want < 64 MiB", p>>20)
	}
}

// BenchmarkStreamIngest measures the full streaming ingest of a ~128 KiB
// synthetic document through Source.AddStream (bounded mode: classify +
// record, no journal), reporting document throughput alongside the usual
// per-op allocations.
func BenchmarkStreamIngest(b *testing.B) {
	cfg := source.DefaultConfig()
	src := source.New(cfg)
	src.AddDTD("log", logDTD())
	const entries = 128
	var size synthReader
	size.reset(entries)
	var counted int64
	buf := make([]byte, 32<<10)
	for {
		n, err := size.Read(buf)
		counted += int64(n)
		if err != nil {
			break
		}
	}
	b.SetBytes(counted)
	var rd synthReader
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		rd.reset(entries)
		res, err := src.AddStream(&rd)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Classified {
			b.Fatal("misclassified")
		}
	}
	b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "docs/s")
}

// BenchmarkBufferedIngest is the tree-path comparator for
// BenchmarkStreamIngest — the same synthetic document, parsed to a tree
// and ingested with Add. Not in the benchgate baseline: it exists to show
// the streaming path's relative cost, not to gate it.
func BenchmarkBufferedIngest(b *testing.B) {
	cfg := source.DefaultConfig()
	src := source.New(cfg)
	src.AddDTD("log", logDTD())
	var gen synthReader
	gen.reset(128)
	raw, err := io.ReadAll(&gen)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		doc, err := dtdevolve.ParseDocumentString(string(raw))
		if err != nil {
			b.Fatal(err)
		}
		if res := src.Add(doc); !res.Classified {
			b.Fatal("misclassified")
		}
	}
	b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "docs/s")
}

// BenchmarkStreamEventLoop isolates the steady-state per-event loop — pull
// parser, per-DTD evaluator, streaming recorder — with a reused Ingestor
// and pre-built entries, the way Source pools them. The gate pins it at 0
// allocs/op: the hot loop must not allocate per document, let alone per
// event.
func BenchmarkStreamEventLoop(b *testing.B) {
	tab := intern.NewTable()
	simCfg := similarity.DefaultConfig()
	c := classify.NewWithTable(0.7, simCfg, tab)
	c.Set("log", logDTD())
	entries := c.StreamEntries()

	var gen synthReader
	gen.reset(64)
	var doc bytes.Buffer
	buf := make([]byte, 32<<10)
	for {
		n, err := gen.Read(buf)
		doc.Write(buf[:n])
		if err != nil {
			break
		}
	}
	ing := stream.NewIngestor(tab, stream.Config{Decay: simCfg.Decay})
	rd := bytes.NewReader(doc.Bytes())
	// Warm the pools (evaluator, parser buffers, recorder lanes).
	if _, err := ing.Run(rd, entries, nil); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(doc.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rd.Reset(doc.Bytes())
		out, err := ing.Run(rd, entries, nil)
		if err != nil {
			b.Fatal(err)
		}
		if len(out.Scores) != 1 || out.Scores[0].Sim != 1.0 {
			b.Fatalf("bad outcome: %+v", out)
		}
	}
}
