package dtdevolve_test

// One benchmark per experiment of the evaluation harness (DESIGN.md §5 /
// EXPERIMENTS.md), plus micro-benchmarks of the core operations. The
// corresponding tables are regenerated with cmd/evolvebench.

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"dtdevolve"
	"dtdevolve/internal/classify"
	"dtdevolve/internal/dtd"
	"dtdevolve/internal/evolve"
	"dtdevolve/internal/experiments"
	"dtdevolve/internal/gen"
	"dtdevolve/internal/mine"
	"dtdevolve/internal/record"
	"dtdevolve/internal/similarity"
	"dtdevolve/internal/source"
	"dtdevolve/internal/validate"
	"dtdevolve/internal/xmltree"
	"dtdevolve/internal/xtract"
)

func benchOptions() experiments.Options {
	return experiments.Options{Seed: 1, Quick: true}
}

// --- experiment benchmarks (one per table/figure) ---

func BenchmarkE1Classification(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.E1Classification(benchOptions())
	}
}

func BenchmarkE2Evolution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.E2Evolution(benchOptions())
	}
}

func BenchmarkE3Incremental(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.E3Incremental(benchOptions())
	}
}

func BenchmarkE4PsiSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.E4PsiSweep(benchOptions())
	}
}

func BenchmarkE5SupportSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.E5SupportSweep(benchOptions())
	}
}

func BenchmarkE6Mining(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.E6Mining(benchOptions())
	}
}

func BenchmarkE7Throughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.E7Throughput(benchOptions())
	}
}

func BenchmarkE8SigmaSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.E8SigmaSweep(benchOptions())
	}
}

// --- micro-benchmarks of the core operations ---

var benchDTD = func() *dtd.DTD {
	d := dtd.MustParse(`
<!ELEMENT doc (head, section+)>
<!ELEMENT head (title, meta*)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT meta EMPTY>
<!ELEMENT section (heading?, (para | list)*)>
<!ELEMENT heading (#PCDATA)>
<!ELEMENT para (#PCDATA)>
<!ELEMENT list (item+)>
<!ELEMENT item (#PCDATA)>`)
	d.Name = "doc"
	return d
}()

func benchCorpus(n int, mutRate float64) []*dtdevolve.Document {
	g := gen.New(gen.DefaultConfig(42))
	return g.MutatedDocuments(benchDTD, n, 2, mutRate)
}

func BenchmarkParseDocument(b *testing.B) {
	src := benchCorpus(1, 0)[0].Root.String()
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dtdevolve.ParseDocumentString(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseDTD(b *testing.B) {
	src := benchDTD.String()
	for i := 0; i < b.N; i++ {
		if _, err := dtdevolve.ParseDTDString(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkValidate(b *testing.B) {
	docs := benchCorpus(100, 0.3)
	v := validate.New(benchDTD)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.ValidateDocument(docs[i%len(docs)])
	}
}

// BenchmarkSimilarityDP measures the alignment-based similarity measure —
// the cost of the flexible classification the paper proposes over boolean
// validation (compare with BenchmarkValidate).
func BenchmarkSimilarityDP(b *testing.B) {
	docs := benchCorpus(100, 0.3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := similarity.NewEvaluator(benchDTD, similarity.DefaultConfig())
		e.GlobalSim(docs[i%len(docs)].Root)
	}
}

// BenchmarkLocalSimilarity measures one steady-state local similarity
// evaluation on a reused evaluator — the per-element cost inside the
// classify → record pipeline. The interned kernel keeps this at 0 allocs/op
// (asserted by TestLocalSimSteadyStateAllocs and gated by cmd/benchgate).
func BenchmarkLocalSimilarity(b *testing.B) {
	docs := benchCorpus(100, 0.3)
	e := similarity.NewEvaluator(benchDTD, similarity.DefaultConfig())
	model := benchDTD.Elements[benchDTD.Name]
	for _, doc := range docs { // warm up memos and scratch
		e.LocalSim(doc.Root, model)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.LocalSim(docs[i%len(docs)].Root, model)
	}
}

// BenchmarkGlobalSimilarity is the whole-document variant: one pooled
// global evaluation per iteration over stamped documents, as the source's
// ingest path performs it.
func BenchmarkGlobalSimilarity(b *testing.B) {
	docs := benchCorpus(100, 0.3)
	pool := similarity.NewPool(benchDTD, similarity.DefaultConfig())
	for _, doc := range docs {
		pool.GlobalSim(doc.Root)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pool.GlobalSim(docs[i%len(docs)].Root)
	}
}

func BenchmarkRecordDocument(b *testing.B) {
	docs := benchCorpus(100, 0.3)
	rec := record.New(benchDTD)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.Record(docs[i%len(docs)])
	}
}

func BenchmarkEvolvePhase(b *testing.B) {
	docs := benchCorpus(500, 0.5)
	rec := record.New(benchDTD)
	for _, doc := range docs {
		rec.Record(doc)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = evolve.Evolve(rec, evolve.DefaultConfig())
	}
}

func BenchmarkXtractInfer(b *testing.B) {
	docs := benchCorpus(500, 0.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := xtract.Infer(docs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSourceAdd(b *testing.B) {
	docs := benchCorpus(200, 0.3)
	cfg := source.DefaultConfig()
	cfg.AutoEvolve = false
	s := source.New(cfg)
	s.AddDTD("doc", benchDTD)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(docs[i%len(docs)])
	}
}

// BenchmarkWALAppend measures the steady-state journal hot path under the
// service's default policy (interval fsync: the append never waits on the
// disk). The reusable frame buffer keeps it at 0 allocs/op; the benchgate
// pins that, since an allocation here is paid once per ingested document.
func BenchmarkWALAppend(b *testing.B) {
	l, err := dtdevolve.OpenWAL(b.TempDir(), dtdevolve.WALOptions{Sync: dtdevolve.SyncInterval})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	payload := []byte(`{"op":"doc","text":"<article><title>t</title><author>a</author><body>b</body></article>"}`)
	if err := l.Append(payload); err != nil { // warm up: create the segment, size the buffer
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := l.Append(payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSourceAddWAL is BenchmarkSourceAdd with journaling attached: the
// full durable ingest path (classify + journal + record) at interval fsync.
func BenchmarkSourceAddWAL(b *testing.B) {
	docs := benchCorpus(200, 0.3)
	cfg := source.DefaultConfig()
	cfg.AutoEvolve = false
	s := source.New(cfg)
	s.AddDTD("doc", benchDTD)
	l, err := dtdevolve.OpenWAL(b.TempDir(), dtdevolve.WALOptions{Sync: dtdevolve.SyncInterval})
	if err != nil {
		b.Fatal(err)
	}
	s.AttachWAL(l)
	defer s.CloseWAL()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(docs[i%len(docs)])
	}
}

// benchIngestSource registers four root-agnostic DTD variants, so every
// classification scores the document against all of them — the multi-DTD
// workload the concurrent ingest pipeline is built for.
func benchIngestSource() *source.Source {
	cfg := source.DefaultConfig()
	cfg.AutoEvolve = false
	s := source.New(cfg)
	variants := []string{
		benchDTD.String(),
		`<!ELEMENT doc (head?, section*)>
		 <!ELEMENT head (title)>
		 <!ELEMENT title (#PCDATA)>
		 <!ELEMENT section (para*)>
		 <!ELEMENT para (#PCDATA)>`,
		`<!ELEMENT doc (section+)>
		 <!ELEMENT section (heading, para+, list?)>
		 <!ELEMENT heading (#PCDATA)>
		 <!ELEMENT para (#PCDATA)>
		 <!ELEMENT list (item*)>
		 <!ELEMENT item (#PCDATA)>`,
		`<!ELEMENT doc (head, body)>
		 <!ELEMENT head (title, meta*)>
		 <!ELEMENT title (#PCDATA)>
		 <!ELEMENT meta EMPTY>
		 <!ELEMENT body (para | list)*>
		 <!ELEMENT para (#PCDATA)>
		 <!ELEMENT list (item+)>
		 <!ELEMENT item (#PCDATA)>`,
	}
	for i, src := range variants {
		d := dtd.MustParse(src)
		// No declared root: every DTD is a candidate for every document.
		d.Name = ""
		s.AddDTD(fmt.Sprintf("v%d", i), d)
	}
	return s
}

// BenchmarkSourceIngestSerial is the single-goroutine baseline over the
// multi-DTD source; compare with BenchmarkSourceIngestParallel, which
// drives the same source from GOMAXPROCS goroutines. On ≥ 4 cores the
// parallel path sustains well over 2× the serial throughput, because
// classification (the alignment-dominated phase) runs under a read lock
// and fans out per DTD, while only the cheap commit serializes.
func BenchmarkSourceIngestSerial(b *testing.B) {
	docs := benchCorpus(200, 0.3)
	s := benchIngestSource()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(docs[i%len(docs)])
	}
}

func BenchmarkSourceIngestParallel(b *testing.B) {
	docs := benchCorpus(200, 0.3)
	s := benchIngestSource()
	var next atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := int(next.Add(1))
			s.Add(docs[i%len(docs)])
		}
	})
}

// BenchmarkSourceIngestBatch measures the batch path: one read-lock section
// scoring a whole batch concurrently, one write-lock commit.
func BenchmarkSourceIngestBatch(b *testing.B) {
	const batchSize = 32
	docs := benchCorpus(batchSize, 0.3)
	s := benchIngestSource()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.AddBatch(docs)
	}
	b.ReportMetric(float64(b.N*batchSize)/b.Elapsed().Seconds(), "docs/s")
}

// BenchmarkConcurrentAddSyncAlways is the workload synchronous durability
// is hardest on: 16 writers committing concurrently over a SyncAlways WAL,
// with group commit batching their journal appends so the group shares one
// fsync — taken off the write lock entirely (wal.Flush), so scoring and
// queue growth overlap the disk round-trip. The custom metrics report
// sustained throughput and the amortized fsync cost; compare with
// BenchmarkConcurrentAddSyncAlwaysSerial (the same writers, each paying
// its own fsync) for the group-commit speedup. The ratio scales with
// fsync latency over per-document CPU cost: on a single-core host with a
// fast fsync (~180µs) classification is the bottleneck and the ratio sits
// near 3–4×; with more cores, or the millisecond-class fsyncs of typical
// cloud disks, the serial path stays pinned at 1/fsync-latency while the
// group path does not, and the ratio widens accordingly.
func BenchmarkConcurrentAddSyncAlways(b *testing.B) {
	benchConcurrentSyncAlways(b, true)
}

// BenchmarkConcurrentAddSyncAlwaysSerial is the per-commit-fsync baseline
// for BenchmarkConcurrentAddSyncAlways. It is not in the benchgate baseline:
// its ns/op is the disk's fsync latency, not code under test.
func BenchmarkConcurrentAddSyncAlwaysSerial(b *testing.B) {
	benchConcurrentSyncAlways(b, false)
}

func benchConcurrentSyncAlways(b *testing.B, group bool) {
	const writers = 16
	docs := benchCorpus(200, 0.3)
	cfg := source.DefaultConfig()
	cfg.AutoEvolve = false
	s := source.New(cfg)
	s.AddDTD("doc", benchDTD)
	l, err := dtdevolve.OpenWAL(b.TempDir(), dtdevolve.WALOptions{Sync: dtdevolve.SyncAlways})
	if err != nil {
		b.Fatal(err)
	}
	s.AttachWAL(l)
	defer s.CloseWAL()
	if group {
		s.EnableGroupCommit(source.GroupCommitOptions{})
	}
	start := l.Stats().Syncs
	var next atomic.Int64
	var wg sync.WaitGroup
	b.ResetTimer()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= b.N {
					return
				}
				s.Add(docs[i%len(docs)])
			}
		}()
	}
	wg.Wait()
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "docs/s")
	b.ReportMetric(float64(l.Stats().Syncs-start)/float64(b.N), "fsyncs/doc")
}

// BenchmarkShardedConcurrentAdd is the scaling curve for DESIGN.md §13:
// the same 16-writer SyncAlways workload as BenchmarkConcurrentAddSyncAlways,
// but spread over N independent shards, each with its own lock, WAL and
// group-commit queue. With one shard this is (modulo routing overhead) the
// unsharded group-commit number; with N shards the commit sections and the
// fsyncs proceed in parallel, so on an M-core host with M ≥ N the curve
// should approach N× until the disk saturates. On a single-core runner the
// shards time-slice one CPU and the curve is flat — the per-shard
// fsyncs/doc metric still shows the queues batching independently.
func BenchmarkShardedConcurrentAdd(b *testing.B) {
	for _, n := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) {
			benchShardedConcurrentAdd(b, n)
		})
	}
}

func benchShardedConcurrentAdd(b *testing.B, shards int) {
	const writers = 16
	docs := benchCorpus(200, 0.3)
	keys := make([]string, 1024)
	for i := range keys {
		keys[i] = fmt.Sprintf("doc-%d", i)
	}
	cfg := source.DefaultConfig()
	cfg.AutoEvolve = false
	r, _, err := dtdevolve.RecoverShardRouter(cfg, b.TempDir(),
		dtdevolve.WALOptions{Sync: dtdevolve.SyncAlways},
		dtdevolve.ShardOptions{Shards: shards})
	if err != nil {
		b.Fatal(err)
	}
	defer r.Close()
	if err := r.AddDTD("doc", benchDTD); err != nil {
		b.Fatal(err)
	}
	r.EnableGroupCommit(dtdevolve.GroupCommitOptions{})
	syncs := func() int64 {
		var total int64
		for i := 0; i < r.Shards(); i++ {
			total += r.Shard(i).WAL().Stats().Syncs
		}
		return total
	}
	start := syncs()
	ctx := context.Background()
	var next atomic.Int64
	var wg sync.WaitGroup
	b.ResetTimer()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= b.N {
					return
				}
				if _, err := r.AddDocument(ctx, keys[i%len(keys)], docs[i%len(docs)]); err != nil {
					b.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "docs/s")
	b.ReportMetric(float64(syncs()-start)/float64(b.N), "fsyncs/doc")
}

func BenchmarkApriori(b *testing.B) {
	txs := benchTransactions(2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mine.Apriori{}.FrequentItemsets(txs, 0.1, 4)
	}
}

func BenchmarkFPGrowth(b *testing.B) {
	txs := benchTransactions(2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mine.FPGrowth{}.FrequentItemsets(txs, 0.1, 4)
	}
}

func benchTransactions(n int) []mine.Transaction {
	items := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	txs := make([]mine.Transaction, n)
	for i := range txs {
		var its []string
		for j, it := range items {
			if (i+j)%3 == 0 {
				its = append(its, it)
			}
		}
		if len(its) == 0 {
			its = []string{"a"}
		}
		txs[i] = mine.NewTransaction(its, 1)
	}
	return txs
}

func BenchmarkE9AbsentAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.E9AbsentAblation(benchOptions())
	}
}

func BenchmarkE10DecaySweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.E10DecaySweep(benchOptions())
	}
}

// BenchmarkEquivalence measures the automata-based language-equivalence
// check used to compare evolved DTDs against ground truths.
func BenchmarkEquivalence(b *testing.B) {
	x, err := dtd.ParseContentModel("(a, (b | c)*, (d, e)+, f?)")
	if err != nil {
		b.Fatal(err)
	}
	y, err := dtd.ParseContentModel("(a, (c | b)*, (d, e), (d, e)*, f?)")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !dtd.Equivalent(x, y) {
			b.Fatal("should be equivalent")
		}
	}
}

// BenchmarkAdapt measures document adaptation to an evolved DTD.
func BenchmarkAdapt(b *testing.B) {
	docs := benchCorpus(100, 1.0)
	a := dtdevolve.NewAdapter(benchDTD, dtdevolve.DefaultAdaptOptions())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Adapt(docs[i%len(docs)])
	}
}

func BenchmarkE11ThesaurusRetention(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.E11ThesaurusRetention(benchOptions())
	}
}

func BenchmarkE12AdaptationQuality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.E12AdaptationQuality(benchOptions())
	}
}

// BenchmarkClassifyManyDTDs measures classification against a 1000-DTD
// registry shaped like a real schema registry (DESIGN.md §12): 900 DTDs
// with distinct roots (the root gate handles those), 94 unrelated
// vocabularies that happen to share the generic root tag the documents use
// (the inverted index must see through the shared root), and a family of 6
// drifted versions of the documents' actual schema (genuine competitors
// the upper bound cannot and must not prune). Pruned is the default exact
// mode; Exhaustive bypasses the index and is the paper's score-everything
// behavior. The alignments/doc metric is the mean number of DP alignments
// per classification, from the classifier's own counters.
func BenchmarkClassifyManyDTDs(b *testing.B) {
	build := func() (*classify.Classifier, []*xmltree.Document) {
		g := gen.New(gen.DefaultConfig(11))
		c := classify.New(0.7, similarity.DefaultConfig())
		for i := 0; i < 900; i++ {
			c.Set(fmt.Sprintf("solo%03d", i), g.RandomDTD(fmt.Sprintf("s%03d", i), 6))
		}
		// Unrelated same-root DTDs: distinct element vocabularies under one
		// generic root tag.
		for i := 0; i < 94; i++ {
			d := g.RandomDTD(fmt.Sprintf("h%02d", i), 6)
			old := d.Name
			d.Elements["hub"] = d.Elements[old]
			delete(d.Elements, old)
			for j, n := range d.Order {
				if n == old {
					d.Order[j] = "hub"
				}
			}
			d.Name = "hub"
			c.Set(fmt.Sprintf("hub%02d", i), d)
		}
		// A version family: the documents' schema and five drifted
		// successors, all plausible matches.
		family := g.RandomDTD("hub", 6)
		c.Set("family00", family)
		for i, d := 1, family; i < 6; i++ {
			d = g.Drift(d, 2)
			c.Set(fmt.Sprintf("family%02d", i), d)
		}
		return c, g.MutatedDocuments(family, 32, 2, 0.5)
	}
	b.Run("Pruned", func(b *testing.B) {
		c, docs := build()
		b.ResetTimer()
		start := c.Stats()
		for i := 0; i < b.N; i++ {
			c.Classify(docs[i%len(docs)])
		}
		st := c.Stats()
		b.ReportMetric(float64(st.Scored-start.Scored)/float64(b.N), "alignments/doc")
	})
	b.Run("Exhaustive", func(b *testing.B) {
		c, docs := build()
		b.ResetTimer()
		start := c.Stats()
		for i := 0; i < b.N; i++ {
			c.ClassifyExhaustive(docs[i%len(docs)])
		}
		st := c.Stats()
		b.ReportMetric(float64(st.Scored-start.Scored)/float64(b.N), "alignments/doc")
	})
}
