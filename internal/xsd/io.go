package xsd

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"dtdevolve/internal/xmltree"
)

// The schema reader/writer round-trips the supported subset through this
// repository's own XML parser — an XSD file is just an XML document.

const xsNamespace = "http://www.w3.org/2001/XMLSchema"

// Write serializes the schema as an XSD document.
func (s *Schema) Write(w io.Writer) error {
	doc := &xmltree.Document{Root: s.toXML()}
	_, err := doc.WriteTo(w)
	return err
}

// String renders the schema as an XSD document.
func (s *Schema) String() string {
	var b strings.Builder
	if err := s.Write(&b); err != nil {
		return fmt.Sprintf("<error: %v>", err)
	}
	return b.String()
}

func (s *Schema) toXML() *xmltree.Node {
	root := xmltree.NewElement("xs:schema")
	root.Attrs = []xmltree.Attr{{Name: "xmlns:xs", Value: xsNamespace}}
	for _, name := range s.Order {
		root.Children = append(root.Children, s.Elements[name].toXML())
	}
	return root
}

func (e *Element) toXML() *xmltree.Node {
	n := xmltree.NewElement("xs:element")
	n.Attrs = []xmltree.Attr{{Name: "name", Value: e.Name}}
	switch {
	case e.Any:
		n.Attrs = append(n.Attrs, xmltree.Attr{Name: "type", Value: "xs:anyType"})
	case e.Type == nil:
		n.Attrs = append(n.Attrs, xmltree.Attr{Name: "type", Value: "xs:string"})
	default:
		ct := xmltree.NewElement("xs:complexType")
		if e.Type.Mixed {
			ct.Attrs = append(ct.Attrs, xmltree.Attr{Name: "mixed", Value: "true"})
		}
		if e.Type.Particle != nil {
			ct.Children = append(ct.Children, e.Type.Particle.toXML())
		}
		for _, a := range e.Type.Attributes {
			at := xmltree.NewElement("xs:attribute")
			at.Attrs = []xmltree.Attr{
				{Name: "name", Value: a.Name},
				{Name: "type", Value: a.Type},
			}
			if a.Use != "" {
				at.Attrs = append(at.Attrs, xmltree.Attr{Name: "use", Value: a.Use})
			}
			ct.Children = append(ct.Children, at)
		}
		n.Children = append(n.Children, ct)
	}
	return n
}

func (p *Particle) toXML() *xmltree.Node {
	var n *xmltree.Node
	switch p.Kind {
	case ElementRef:
		n = xmltree.NewElement("xs:element")
		n.Attrs = []xmltree.Attr{{Name: "ref", Value: p.Ref}}
	case AnyParticle:
		n = xmltree.NewElement("xs:any")
	case Sequence:
		n = xmltree.NewElement("xs:sequence")
		for _, ch := range p.Children {
			n.Children = append(n.Children, ch.toXML())
		}
	case Choice:
		n = xmltree.NewElement("xs:choice")
		for _, ch := range p.Children {
			n.Children = append(n.Children, ch.toXML())
		}
	}
	if p.MinOccurs != 1 {
		n.Attrs = append(n.Attrs, xmltree.Attr{Name: "minOccurs", Value: strconv.Itoa(p.MinOccurs)})
	}
	switch {
	case p.MaxOccurs == Unbounded:
		n.Attrs = append(n.Attrs, xmltree.Attr{Name: "maxOccurs", Value: "unbounded"})
	case p.MaxOccurs != 1:
		n.Attrs = append(n.Attrs, xmltree.Attr{Name: "maxOccurs", Value: strconv.Itoa(p.MaxOccurs)})
	}
	return n
}

// Parse reads an XSD document (the supported subset) from r.
func Parse(r io.Reader) (*Schema, error) {
	doc, err := xmltree.Parse(r)
	if err != nil {
		return nil, fmt.Errorf("xsd: %w", err)
	}
	return FromDocument(doc)
}

// ParseString parses an XSD document held in a string.
func ParseString(src string) (*Schema, error) {
	return Parse(strings.NewReader(src))
}

// FromDocument interprets a parsed XML document as an XSD schema.
func FromDocument(doc *xmltree.Document) (*Schema, error) {
	root := doc.Root
	if localName(root.Name) != "schema" {
		return nil, fmt.Errorf("xsd: root element is <%s>, want <xs:schema>", root.Name)
	}
	s := NewSchema("")
	for _, c := range root.ChildElements() {
		switch localName(c.Name) {
		case "element":
			e, err := parseGlobalElement(s, c)
			if err != nil {
				return nil, err
			}
			s.Declare(e)
		case "annotation", "import", "include":
			// Tolerated and ignored.
		default:
			return nil, fmt.Errorf("xsd: unsupported top-level <%s>", c.Name)
		}
	}
	if len(s.Order) > 0 {
		s.Root = s.Order[0]
	}
	return s, nil
}

func localName(name string) string {
	if i := strings.LastIndexByte(name, ':'); i >= 0 {
		return name[i+1:]
	}
	return name
}

func parseGlobalElement(s *Schema, n *xmltree.Node) (*Element, error) {
	name, ok := n.Attr("name")
	if !ok {
		return nil, fmt.Errorf("xsd: global xs:element without name")
	}
	e := &Element{Name: name}
	if typ, ok := n.Attr("type"); ok {
		switch localName(typ) {
		case "anyType":
			e.Any = true
		default:
			// All simple types approximate to text content.
			e.Type = nil
		}
		return e, nil
	}
	for _, c := range n.ChildElements() {
		if localName(c.Name) != "complexType" {
			return nil, fmt.Errorf("xsd: element %q: unsupported child <%s>", name, c.Name)
		}
		ct, err := parseComplexType(s, name, c)
		if err != nil {
			return nil, err
		}
		e.Type = ct
		return e, nil
	}
	// No type and no complexType: xs:anyType per the XSD default.
	e.Any = true
	return e, nil
}

func parseComplexType(s *Schema, owner string, n *xmltree.Node) (*ComplexType, error) {
	ct := &ComplexType{}
	if mixed, ok := n.Attr("mixed"); ok && (mixed == "true" || mixed == "1") {
		ct.Mixed = true
	}
	for _, c := range n.ChildElements() {
		switch localName(c.Name) {
		case "sequence", "choice", "any", "element":
			// A bare element here is technically not schema-valid XSD but
			// common in hand-written files; tolerate it.
			if ct.Particle != nil {
				return nil, fmt.Errorf("xsd: element %q: multiple content particles", owner)
			}
			p, err := parseParticle(s, owner, c)
			if err != nil {
				return nil, err
			}
			ct.Particle = p
		case "attribute":
			att, err := parseAttribute(owner, c)
			if err != nil {
				return nil, err
			}
			ct.Attributes = append(ct.Attributes, att)
		case "annotation":
			// Ignored.
		default:
			return nil, fmt.Errorf("xsd: element %q: unsupported <%s> in complexType", owner, c.Name)
		}
	}
	return ct, nil
}

func parseAttribute(owner string, n *xmltree.Node) (Attribute, error) {
	name, ok := n.Attr("name")
	if !ok {
		return Attribute{}, fmt.Errorf("xsd: element %q: xs:attribute without name", owner)
	}
	att := Attribute{Name: name, Type: "xs:string"}
	if typ, ok := n.Attr("type"); ok {
		att.Type = typ
	}
	if use, ok := n.Attr("use"); ok {
		att.Use = use
	}
	return att, nil
}

func parseParticle(s *Schema, owner string, n *xmltree.Node) (*Particle, error) {
	var p *Particle
	switch localName(n.Name) {
	case "sequence":
		p = NewSequence()
	case "choice":
		p = NewChoice()
	case "any":
		p = &Particle{Kind: AnyParticle, MinOccurs: 1, MaxOccurs: 1}
	case "element":
		if ref, ok := n.Attr("ref"); ok {
			p = NewRef(ref)
			break
		}
		// A local element declaration: hoist it to a global declaration
		// (the subset keeps element declarations global, as DTDs do).
		name, ok := n.Attr("name")
		if !ok {
			return nil, fmt.Errorf("xsd: element %q: particle element without ref or name", owner)
		}
		hoisted, err := parseGlobalElement(s, n)
		if err != nil {
			return nil, err
		}
		if existing, dup := s.Elements[name]; dup && !existing.equal(hoisted) {
			return nil, fmt.Errorf("xsd: conflicting local declarations of element %q", name)
		}
		s.Declare(hoisted)
		p = NewRef(name)
	default:
		return nil, fmt.Errorf("xsd: element %q: unsupported particle <%s>", owner, n.Name)
	}
	if p.Kind == Sequence || p.Kind == Choice {
		for _, c := range n.ChildElements() {
			if localName(c.Name) == "annotation" {
				continue
			}
			ch, err := parseParticle(s, owner, c)
			if err != nil {
				return nil, err
			}
			p.Children = append(p.Children, ch)
		}
	}
	if v, ok := n.Attr("minOccurs"); ok {
		min, err := strconv.Atoi(v)
		if err != nil || min < 0 {
			return nil, fmt.Errorf("xsd: element %q: bad minOccurs %q", owner, v)
		}
		p.MinOccurs = min
	}
	if v, ok := n.Attr("maxOccurs"); ok {
		if v == "unbounded" {
			p.MaxOccurs = Unbounded
		} else {
			max, err := strconv.Atoi(v)
			if err != nil || max < 0 {
				return nil, fmt.Errorf("xsd: element %q: bad maxOccurs %q", owner, v)
			}
			p.MaxOccurs = max
		}
	}
	if p.MaxOccurs != Unbounded && p.MaxOccurs < p.MinOccurs {
		return nil, fmt.Errorf("xsd: element %q: maxOccurs < minOccurs", owner)
	}
	return p, nil
}
