package xsd

import (
	"strings"
	"testing"

	"dtdevolve/internal/dtd"
	"dtdevolve/internal/evolve"
	"dtdevolve/internal/xmltree"
)

const bookDTDSrc = `
<!ELEMENT book (title, author+, (price | offer)?, keywords)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (#PCDATA)>
<!ELEMENT price (#PCDATA)>
<!ELEMENT offer (#PCDATA)>
<!ELEMENT keywords (kw*)>
<!ELEMENT kw (#PCDATA)>
<!ATTLIST book isbn CDATA #REQUIRED lang CDATA #IMPLIED>`

func bookDTD(t *testing.T) *dtd.DTD {
	t.Helper()
	d := dtd.MustParse(bookDTDSrc)
	d.Name = "book"
	return d
}

func TestFromDTDBasics(t *testing.T) {
	s := FromDTD(bookDTD(t))
	if s.Root != "book" {
		t.Errorf("root = %q", s.Root)
	}
	book := s.Elements["book"]
	if book == nil || book.Type == nil || book.Type.Particle == nil {
		t.Fatalf("book = %+v", book)
	}
	p := book.Type.Particle
	if p.Kind != Sequence || len(p.Children) != 4 {
		t.Fatalf("book particle = %+v", p)
	}
	if p.Children[1].Ref != "author" || p.Children[1].MaxOccurs != Unbounded || p.Children[1].MinOccurs != 1 {
		t.Errorf("author particle = %+v", p.Children[1])
	}
	if p.Children[2].Kind != Choice || p.Children[2].MinOccurs != 0 {
		t.Errorf("choice particle = %+v", p.Children[2])
	}
	if s.Elements["title"].Type != nil || s.Elements["title"].Any {
		t.Errorf("title should be a simple xs:string element")
	}
	// Attributes carried over.
	if atts := book.Type.Attributes; len(atts) != 2 || atts[0].Use != "required" {
		t.Errorf("attributes = %+v", atts)
	}
}

func TestDTDSchemaRoundTrip(t *testing.T) {
	d := bookDTD(t)
	s := FromDTD(d)
	back, notes := ToDTD(s)
	if len(notes) != 0 {
		t.Errorf("unexpected approximation notes: %v", notes)
	}
	for name, model := range d.Elements {
		got := back.Elements[name]
		if got == nil || !dtd.Equivalent(model, got) {
			t.Errorf("element %s changed: %s -> %v", name, model, got)
		}
	}
	if len(back.Attlists["book"]) != 2 {
		t.Errorf("attlist lost: %+v", back.Attlists["book"])
	}
}

func TestXSDSerializeParseRoundTrip(t *testing.T) {
	s := FromDTD(bookDTD(t))
	out := s.String()
	if !strings.Contains(out, `xmlns:xs="http://www.w3.org/2001/XMLSchema"`) {
		t.Errorf("missing namespace: %s", out)
	}
	parsed, err := ParseString(out)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, out)
	}
	if !s.Equal(parsed) {
		t.Errorf("round trip changed schema:\n%s\nvs\n%s", s.Summary(), parsed.Summary())
	}
}

func TestParseHandwrittenXSD(t *testing.T) {
	src := `<?xml version="1.0"?>
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="note">
    <xs:complexType>
      <xs:sequence>
        <xs:element name="to" type="xs:string"/>
        <xs:element name="body" type="xs:string" minOccurs="0" maxOccurs="3"/>
      </xs:sequence>
      <xs:attribute name="id" type="xs:ID" use="required"/>
    </xs:complexType>
  </xs:element>
</xs:schema>`
	s, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	// Local declarations hoist to globals.
	if s.Elements["to"] == nil || s.Elements["body"] == nil {
		t.Fatalf("local elements not hoisted: %v", s.Names())
	}
	note := s.Elements["note"]
	if note.Type.Particle.Children[1].MaxOccurs != 3 {
		t.Errorf("maxOccurs lost: %+v", note.Type.Particle.Children[1])
	}
	// Conversion to DTD approximates maxOccurs=3 and reports it.
	d, notes := ToDTD(s)
	if len(notes) != 1 || !strings.Contains(notes[0], "approximated") {
		t.Errorf("notes = %v", notes)
	}
	if got := d.Elements["note"].String(); got != "(to, body*)" {
		t.Errorf("note = %s", got)
	}
	if d.Attlists["note"][0].Type != "ID" {
		t.Errorf("attribute type = %+v", d.Attlists["note"])
	}
}

func TestParseMixedAndAny(t *testing.T) {
	src := `<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="p">
    <xs:complexType mixed="true">
      <xs:choice minOccurs="0" maxOccurs="unbounded">
        <xs:element name="em" type="xs:string"/>
      </xs:choice>
    </xs:complexType>
  </xs:element>
  <xs:element name="blob" type="xs:anyType"/>
</xs:schema>`
	s, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Elements["p"].Type.Mixed {
		t.Error("mixed lost")
	}
	if !s.Elements["blob"].Any {
		t.Error("anyType lost")
	}
	d, _ := ToDTD(s)
	if got := d.Elements["p"].String(); got != "(#PCDATA | em)*" {
		t.Errorf("p = %s", got)
	}
	if d.Elements["blob"].Kind != dtd.Any {
		t.Errorf("blob = %s", d.Elements["blob"])
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		`<not-a-schema/>`,
		`<xs:schema xmlns:xs="x"><xs:bogus/></xs:schema>`,
		`<xs:schema xmlns:xs="x"><xs:element/></xs:schema>`, // no name
		`<xs:schema xmlns:xs="x"><xs:element name="a"><xs:complexType><xs:sequence><xs:element/></xs:sequence></xs:complexType></xs:element></xs:schema>`,
		`<xs:schema xmlns:xs="x"><xs:element name="a"><xs:complexType><xs:sequence><xs:element ref="b" minOccurs="2" maxOccurs="1"/></xs:sequence></xs:complexType></xs:element></xs:schema>`,
		`<xs:schema xmlns:xs="x"><xs:element name="a"><xs:complexType><xs:sequence/><xs:choice/></xs:complexType></xs:element></xs:schema>`,
	}
	for _, src := range cases {
		if _, err := ParseString(src); err == nil {
			t.Errorf("ParseString(%q) succeeded, want error", src)
		}
	}
}

func TestSchemaEvolve(t *testing.T) {
	// The paper's §6 scenario at the XSD level: an article schema meets
	// author-bearing documents and evolves.
	d := dtd.MustParse(`
<!ELEMENT article (title, body)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT body (#PCDATA)>`)
	d.Name = "article"
	s := FromDTD(d)

	var docs []*xmltree.Document
	for i := 0; i < 10; i++ {
		doc, err := xmltree.ParseString(`<article><title>t</title><author>a</author><body>b</body></article>`)
		if err != nil {
			t.Fatal(err)
		}
		docs = append(docs, doc)
	}
	evolved, report, notes := Evolve(s, docs, evolve.DefaultConfig())
	if len(notes) != 0 {
		t.Errorf("notes = %v", notes)
	}
	if evolved.Elements["author"] == nil {
		t.Fatalf("author not declared:\n%s", evolved.Summary())
	}
	article := evolved.Elements["article"]
	refs := collectRefs(article.Type.Particle)
	found := false
	for _, r := range refs {
		if r == "author" {
			found = true
		}
	}
	if !found {
		t.Errorf("article particle lacks author: %s", evolved.Summary())
	}
	if len(report.Changes) == 0 {
		t.Error("empty report")
	}
	// The evolved schema serializes to parseable XSD.
	if _, err := ParseString(evolved.String()); err != nil {
		t.Fatalf("evolved schema does not reparse: %v\n%s", err, evolved)
	}
}

func TestSummary(t *testing.T) {
	s := FromDTD(bookDTD(t))
	sum := s.Summary()
	for _, want := range []string{"element book:", "author{1..unbounded}", "[attrs: isbn, lang]", "xs:string"} {
		if !strings.Contains(sum, want) {
			t.Errorf("summary missing %q:\n%s", want, sum)
		}
	}
}

func TestCloneAndEqual(t *testing.T) {
	s := FromDTD(bookDTD(t))
	c := s.Clone()
	if !s.Equal(c) {
		t.Fatal("clone not equal")
	}
	c.Elements["book"].Type.Particle.Children[0].Ref = "zzz"
	if s.Equal(c) {
		t.Fatal("mutating clone affected equality")
	}
	if s.Elements["book"].Type.Particle.Children[0].Ref != "title" {
		t.Fatal("clone shares particles")
	}
}

func TestAttributeTypeMappings(t *testing.T) {
	d := dtd.MustParse(`
<!ELEMENT a EMPTY>
<!ATTLIST a
  id ID #REQUIRED
  ref IDREF #IMPLIED
  refs IDREFS #IMPLIED
  tok NMTOKEN #IMPLIED
  toks NMTOKENS #IMPLIED
  ent ENTITY #IMPLIED
  plain CDATA #IMPLIED
  choice (x | y) "x">`)
	s := FromDTD(d)
	atts := s.Elements["a"].Type.Attributes
	want := map[string]string{
		"id": "xs:ID", "ref": "xs:IDREF", "refs": "xs:IDREFS",
		"tok": "xs:NMTOKEN", "toks": "xs:NMTOKENS", "ent": "xs:ENTITY",
		"plain": "xs:string", "choice": "xs:string",
	}
	got := make(map[string]string)
	for _, a := range atts {
		got[a.Name] = a.Type
	}
	for name, typ := range want {
		if got[name] != typ {
			t.Errorf("attr %s type = %q, want %q", name, got[name], typ)
		}
	}
	// And back again.
	back, _ := ToDTD(s)
	backTypes := make(map[string]string)
	for _, a := range back.Attlists["a"] {
		backTypes[a.Name] = a.Type
	}
	for _, name := range []string{"id", "ref", "refs", "tok", "toks", "ent"} {
		if backTypes[name] == "CDATA" {
			t.Errorf("attr %s lost its type on the way back", name)
		}
	}
	if backTypes["plain"] != "CDATA" {
		t.Errorf("plain = %q", backTypes["plain"])
	}
}

func TestAnyAndEmptyElements(t *testing.T) {
	d := dtd.MustParse(`
<!ELEMENT blob ANY>
<!ELEMENT void EMPTY>
<!ELEMENT attred ANY>
<!ELEMENT textattred (#PCDATA)>
<!ATTLIST attred k CDATA #IMPLIED>
<!ATTLIST textattred k CDATA #IMPLIED>`)
	s := FromDTD(d)
	if !s.Elements["blob"].Any {
		t.Error("blob should be anyType")
	}
	if ct := s.Elements["void"].Type; ct == nil || ct.Particle != nil {
		t.Errorf("void = %+v", s.Elements["void"])
	}
	// ANY with attributes becomes a complex type with an any particle.
	attred := s.Elements["attred"]
	if attred.Any || attred.Type == nil || attred.Type.Particle.Kind != AnyParticle {
		t.Errorf("attred = %+v", attred)
	}
	// (#PCDATA) with attributes becomes mixed simple content.
	ta := s.Elements["textattred"]
	if ta.Type == nil || !ta.Type.Mixed {
		t.Errorf("textattred = %+v", ta)
	}
	// Round trips.
	back, _ := ToDTD(s)
	if back.Elements["blob"].Kind != dtd.Any {
		t.Errorf("blob back = %s", back.Elements["blob"])
	}
	if back.Elements["void"].Kind != dtd.Empty {
		t.Errorf("void back = %s", back.Elements["void"])
	}
	if !back.Elements["textattred"].HasPCDATA() {
		t.Errorf("textattred back = %s", back.Elements["textattred"])
	}
	if got := s.Names(); len(got) != 4 {
		t.Errorf("names = %v", got)
	}
}

func TestWithOccursWrapsNestedRange(t *testing.T) {
	// (a?)+ — the inner particle already carries a range, so the outer
	// one wraps it in a singleton sequence rather than overwriting.
	m, err := dtd.ParseContentModel("((a?)+)")
	if err != nil {
		t.Fatal(err)
	}
	d := dtd.NewDTD("r")
	d.Declare("r", m)
	d.Declare("a", dtd.NewEmpty())
	s := FromDTD(d)
	back, _ := ToDTD(s)
	if !dtd.Equivalent(back.Elements["r"], m) {
		t.Errorf("round trip changed language: %s -> %s", m, back.Elements["r"])
	}
}
