package xsd

import (
	"dtdevolve/internal/evolve"
	"dtdevolve/internal/record"
	"dtdevolve/internal/xmltree"
)

// Evolve adapts a schema to a set of documents by round-tripping through
// the DTD evolution engine: the schema converts to a DTD, the documents are
// recorded against it, the evolution phase runs, and the evolved DTD
// converts back. Notes report occurrence ranges the DTD detour had to
// approximate.
//
// This realizes the paper's §6 plan ("since a DTD can be considered as a
// kind of XML schema, we are currently extending the approach to the
// evolution of XML schemas") for the structural subset this package
// models; XSD-only features (bounded occurrences, simple-type facets) are
// approximated and reported rather than silently dropped.
func Evolve(s *Schema, docs []*xmltree.Document, cfg evolve.Config) (*Schema, evolve.Report, []string) {
	d, notes := ToDTD(s)
	rec := record.New(d)
	for _, doc := range docs {
		rec.Record(doc)
	}
	evolved, report := evolve.Evolve(rec, cfg)
	out := FromDTD(evolved)
	// Preserve attribute declarations the DTD detour kept on the Attlists.
	return out, report, notes
}
