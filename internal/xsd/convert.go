package xsd

import (
	"fmt"

	"dtdevolve/internal/dtd"
)

// FromDTD converts a DTD into the XSD subset. The conversion is lossless
// for the structural content: DTD operators map onto occurrence ranges
// (? → 0..1, * → 0..unbounded, + → 1..unbounded), (#PCDATA) maps to the
// xs:string simple type, mixed content maps to mixed="true", EMPTY to an
// empty complex type, and ANY to xs:anyType. ATTLIST definitions become
// xs:attribute declarations.
func FromDTD(d *dtd.DTD) *Schema {
	s := NewSchema(d.Name)
	for _, name := range d.Order {
		s.Declare(elementFromDTD(name, d.Elements[name], d.Attlists[name]))
	}
	return s
}

func elementFromDTD(name string, model *dtd.Content, atts []dtd.AttDef) *Element {
	e := &Element{Name: name}
	attributes := attributesFromDTD(atts)
	switch {
	case model == nil || model.Kind == dtd.Any:
		e.Any = true
		if len(attributes) > 0 {
			e.Type = &ComplexType{Attributes: attributes}
			e.Any = false
			e.Type.Particle = &Particle{Kind: AnyParticle, MinOccurs: 0, MaxOccurs: Unbounded}
		}
		return e
	case model.Kind == dtd.PCDATA:
		if len(attributes) == 0 {
			return e // simple xs:string element
		}
		// Attributes force a complex type with simple (mixed) content.
		e.Type = &ComplexType{Mixed: true, Attributes: attributes}
		return e
	case model.Kind == dtd.Empty:
		e.Type = &ComplexType{Attributes: attributes}
		return e
	case model.IsMixed():
		ct := &ComplexType{Mixed: true, Attributes: attributes}
		labels := model.Labels()
		if len(labels) > 0 {
			kids := make([]*Particle, len(labels))
			for i, l := range labels {
				kids[i] = NewRef(l)
			}
			choice := NewChoice(kids...)
			choice.MinOccurs = 0
			choice.MaxOccurs = Unbounded
			ct.Particle = choice
		}
		e.Type = ct
		return e
	default:
		p := particleFromContent(model)
		// A complexType's content must be a model group, not a bare
		// element reference or wildcard.
		if p != nil && (p.Kind == ElementRef || p.Kind == AnyParticle) {
			p = NewSequence(p)
		}
		e.Type = &ComplexType{Particle: p, Attributes: attributes}
		return e
	}
}

func attributesFromDTD(atts []dtd.AttDef) []Attribute {
	out := make([]Attribute, 0, len(atts))
	for _, a := range atts {
		att := Attribute{Name: a.Name, Type: xsdAttrType(a.Type)}
		if a.Mode == "#REQUIRED" {
			att.Use = "required"
		}
		out = append(out, att)
	}
	return out
}

func xsdAttrType(dtdType string) string {
	switch dtdType {
	case "ID":
		return "xs:ID"
	case "IDREF":
		return "xs:IDREF"
	case "IDREFS":
		return "xs:IDREFS"
	case "NMTOKEN":
		return "xs:NMTOKEN"
	case "NMTOKENS":
		return "xs:NMTOKENS"
	case "ENTITY":
		return "xs:ENTITY"
	default:
		return "xs:string" // CDATA and enumerations approximate to string
	}
}

func particleFromContent(c *dtd.Content) *Particle {
	switch c.Kind {
	case dtd.Name:
		return NewRef(c.Name)
	case dtd.Seq:
		kids := make([]*Particle, len(c.Children))
		for i, ch := range c.Children {
			kids[i] = particleFromContent(ch)
		}
		return NewSequence(kids...)
	case dtd.Choice:
		kids := make([]*Particle, len(c.Children))
		for i, ch := range c.Children {
			kids[i] = particleFromContent(ch)
		}
		return NewChoice(kids...)
	case dtd.Opt:
		p := particleFromContent(c.Children[0])
		return withOccurs(p, 0, 1)
	case dtd.Star:
		p := particleFromContent(c.Children[0])
		return withOccurs(p, 0, Unbounded)
	case dtd.Plus:
		p := particleFromContent(c.Children[0])
		return withOccurs(p, 1, Unbounded)
	case dtd.Any:
		return &Particle{Kind: AnyParticle, MinOccurs: 0, MaxOccurs: Unbounded}
	default:
		return nil
	}
}

// withOccurs applies an occurrence range to a particle; a particle that
// already has a non-default range is wrapped in a singleton sequence so
// nothing is lost (e.g. (a?)+ in a hand-built model).
func withOccurs(p *Particle, min, max int) *Particle {
	if p.MinOccurs == 1 && p.MaxOccurs == 1 {
		p.MinOccurs, p.MaxOccurs = min, max
		return p
	}
	wrap := NewSequence(p)
	wrap.MinOccurs, wrap.MaxOccurs = min, max
	return wrap
}

// ToDTD converts the schema back into a DTD. The conversion is exact
// except for bounded occurrence ranges DTDs cannot express (e.g.
// maxOccurs="3"); those are approximated (min>0 → +, min=0 → *) and every
// approximation is reported.
func ToDTD(s *Schema) (*dtd.DTD, []string) {
	d := dtd.NewDTD(s.Root)
	var notes []string
	for _, name := range s.Order {
		e := s.Elements[name]
		model := contentFromElement(e, &notes)
		d.Declare(name, model)
		if e.Type != nil {
			for _, a := range e.Type.Attributes {
				def := dtd.AttDef{Name: a.Name, Type: dtdAttrType(a.Type)}
				if a.Use == "required" {
					def.Mode = "#REQUIRED"
				} else {
					def.Mode = "#IMPLIED"
				}
				d.Attlists[name] = append(d.Attlists[name], def)
			}
		}
	}
	return dtd.RewriteDTD(d), notes
}

func dtdAttrType(xsdType string) string {
	switch xsdType {
	case "xs:ID":
		return "ID"
	case "xs:IDREF":
		return "IDREF"
	case "xs:IDREFS":
		return "IDREFS"
	case "xs:NMTOKEN":
		return "NMTOKEN"
	case "xs:NMTOKENS":
		return "NMTOKENS"
	case "xs:ENTITY":
		return "ENTITY"
	default:
		return "CDATA"
	}
}

func contentFromElement(e *Element, notes *[]string) *dtd.Content {
	switch {
	case e.Any:
		return dtd.NewAny()
	case e.Type == nil:
		return dtd.NewPCDATA()
	case e.Type.Particle == nil:
		if e.Type.Mixed {
			return dtd.NewPCDATA()
		}
		return dtd.NewEmpty()
	case e.Type.Mixed:
		labels := collectRefs(e.Type.Particle)
		kids := []*dtd.Content{dtd.NewPCDATA()}
		for _, l := range labels {
			kids = append(kids, dtd.NewName(l))
		}
		if len(kids) == 1 {
			return dtd.NewPCDATA()
		}
		return dtd.NewStar(dtd.NewChoice(kids...))
	default:
		return contentFromParticle(e.Name, e.Type.Particle, notes)
	}
}

func collectRefs(p *Particle) []string {
	if p == nil {
		return nil
	}
	var out []string
	seen := make(map[string]bool)
	var visit func(*Particle)
	visit = func(q *Particle) {
		if q.Kind == ElementRef && !seen[q.Ref] {
			seen[q.Ref] = true
			out = append(out, q.Ref)
		}
		for _, ch := range q.Children {
			visit(ch)
		}
	}
	visit(p)
	return out
}

func contentFromParticle(owner string, p *Particle, notes *[]string) *dtd.Content {
	var core *dtd.Content
	switch p.Kind {
	case ElementRef:
		core = dtd.NewName(p.Ref)
	case AnyParticle:
		core = dtd.NewAny()
	case Sequence:
		kids := make([]*dtd.Content, len(p.Children))
		for i, ch := range p.Children {
			kids[i] = contentFromParticle(owner, ch, notes)
		}
		core = dtd.NewSeq(kids...)
	case Choice:
		kids := make([]*dtd.Content, len(p.Children))
		for i, ch := range p.Children {
			kids[i] = contentFromParticle(owner, ch, notes)
		}
		core = dtd.NewChoice(kids...)
	}
	return applyOccurs(owner, core, p.MinOccurs, p.MaxOccurs, notes)
}

func applyOccurs(owner string, core *dtd.Content, min, max int, notes *[]string) *dtd.Content {
	switch {
	case min == 1 && max == 1:
		return core
	case min == 0 && max == 1:
		return dtd.NewOpt(core)
	case min == 0 && max == Unbounded:
		return dtd.NewStar(core)
	case min == 1 && max == Unbounded:
		return dtd.NewPlus(core)
	case min == 0:
		*notes = append(*notes, fmt.Sprintf("%s: occurrence %s approximated as *", owner, occursString(min, max)))
		return dtd.NewStar(core)
	default:
		*notes = append(*notes, fmt.Sprintf("%s: occurrence %s approximated as +", owner, occursString(min, max)))
		return dtd.NewPlus(core)
	}
}
