// Package xsd implements the XML Schema extension the paper names in §6
// ("since a DTD can be considered as a kind of XML schema, we are currently
// extending the approach to the evolution of XML schemas"): a structural
// subset of XSD 1.0, lossless conversion from DTDs, best-effort conversion
// back, parsing and serialization of schema documents (using this
// repository's own XML parser), and schema evolution by round-tripping
// through the DTD evolution engine.
//
// Supported subset: global xs:element declarations; xs:complexType with
// xs:sequence / xs:choice particles, element references, minOccurs /
// maxOccurs (including "unbounded"), mixed content, and xs:attribute;
// xs:string as the text simple type; xs:anyType for ANY.
package xsd

import (
	"fmt"
	"sort"
	"strings"
)

// ParticleKind discriminates content-model particles.
type ParticleKind int

const (
	// Sequence is xs:sequence (the DTD AND).
	Sequence ParticleKind = iota
	// Choice is xs:choice (the DTD OR).
	Choice
	// ElementRef references a global element declaration.
	ElementRef
	// AnyParticle is xs:any (the DTD ANY).
	AnyParticle
)

// Unbounded is the MaxOccurs value for maxOccurs="unbounded".
const Unbounded = -1

// Particle is one node of a complex type's content model.
type Particle struct {
	Kind      ParticleKind
	Ref       string // for ElementRef
	MinOccurs int
	MaxOccurs int // Unbounded for "unbounded"
	Children  []*Particle
}

// NewRef returns a reference particle with default occurrence 1..1.
func NewRef(name string) *Particle {
	return &Particle{Kind: ElementRef, Ref: name, MinOccurs: 1, MaxOccurs: 1}
}

// NewSequence returns a sequence particle with default occurrence 1..1.
func NewSequence(children ...*Particle) *Particle {
	return &Particle{Kind: Sequence, MinOccurs: 1, MaxOccurs: 1, Children: children}
}

// NewChoice returns a choice particle with default occurrence 1..1.
func NewChoice(children ...*Particle) *Particle {
	return &Particle{Kind: Choice, MinOccurs: 1, MaxOccurs: 1, Children: children}
}

// Attribute is an attribute declaration of a complex type.
type Attribute struct {
	Name string
	Type string // e.g. "xs:string", "xs:ID"
	Use  string // "required", "optional" (default), "prohibited"
}

// ComplexType is the content description of an element.
type ComplexType struct {
	// Mixed allows character data interleaved with child elements.
	Mixed bool
	// Particle is the content model; nil means empty content.
	Particle *Particle
	// Attributes are the declared attributes.
	Attributes []Attribute
}

// Element is a global element declaration.
type Element struct {
	Name string
	// Type is the element's complex type; nil means the simple type
	// xs:string (text content).
	Type *ComplexType
	// Any marks an xs:anyType element (the DTD ANY).
	Any bool
}

// Schema is a set of global element declarations.
type Schema struct {
	// Root names the intended document root element ("" when unknown).
	Root string
	// Elements maps element names to declarations.
	Elements map[string]*Element
	// Order preserves declaration order.
	Order []string
}

// NewSchema returns an empty schema.
func NewSchema(root string) *Schema {
	return &Schema{Root: root, Elements: make(map[string]*Element)}
}

// Declare adds (or replaces) a global element declaration.
func (s *Schema) Declare(e *Element) {
	if _, exists := s.Elements[e.Name]; !exists {
		s.Order = append(s.Order, e.Name)
	}
	s.Elements[e.Name] = e
}

// Names returns the declared element names in declaration order.
func (s *Schema) Names() []string { return append([]string(nil), s.Order...) }

// Clone returns a deep copy of the schema.
func (s *Schema) Clone() *Schema {
	out := NewSchema(s.Root)
	for _, name := range s.Order {
		out.Declare(s.Elements[name].clone())
	}
	return out
}

func (e *Element) clone() *Element {
	c := &Element{Name: e.Name, Any: e.Any}
	if e.Type != nil {
		ct := &ComplexType{Mixed: e.Type.Mixed, Attributes: append([]Attribute(nil), e.Type.Attributes...)}
		ct.Particle = e.Type.Particle.clone()
		c.Type = ct
	}
	return c
}

func (p *Particle) clone() *Particle {
	if p == nil {
		return nil
	}
	c := &Particle{Kind: p.Kind, Ref: p.Ref, MinOccurs: p.MinOccurs, MaxOccurs: p.MaxOccurs}
	for _, ch := range p.Children {
		c.Children = append(c.Children, ch.clone())
	}
	return c
}

// Equal reports structural equality of two schemas.
func (s *Schema) Equal(o *Schema) bool {
	if len(s.Elements) != len(o.Elements) {
		return false
	}
	for name, e := range s.Elements {
		oe, ok := o.Elements[name]
		if !ok || !e.equal(oe) {
			return false
		}
	}
	return true
}

func (e *Element) equal(o *Element) bool {
	if e.Name != o.Name || e.Any != o.Any {
		return false
	}
	if (e.Type == nil) != (o.Type == nil) {
		return false
	}
	if e.Type == nil {
		return true
	}
	if e.Type.Mixed != o.Type.Mixed || len(e.Type.Attributes) != len(o.Type.Attributes) {
		return false
	}
	for i := range e.Type.Attributes {
		if e.Type.Attributes[i] != o.Type.Attributes[i] {
			return false
		}
	}
	return e.Type.Particle.equal(o.Type.Particle)
}

func (p *Particle) equal(o *Particle) bool {
	if p == nil || o == nil {
		return p == o
	}
	if p.Kind != o.Kind || p.Ref != o.Ref || p.MinOccurs != o.MinOccurs ||
		p.MaxOccurs != o.MaxOccurs || len(p.Children) != len(o.Children) {
		return false
	}
	for i := range p.Children {
		if !p.Children[i].equal(o.Children[i]) {
			return false
		}
	}
	return true
}

// occursString renders an occurrence range for diagnostics.
func occursString(min, max int) string {
	m := fmt.Sprintf("%d", max)
	if max == Unbounded {
		m = "unbounded"
	}
	return fmt.Sprintf("%d..%s", min, m)
}

// Summary renders a compact, human-readable description of the schema.
func (s *Schema) Summary() string {
	var b strings.Builder
	for _, name := range s.Order {
		e := s.Elements[name]
		fmt.Fprintf(&b, "element %s: ", name)
		switch {
		case e.Any:
			b.WriteString("anyType")
		case e.Type == nil:
			b.WriteString("xs:string")
		case e.Type.Particle == nil:
			if e.Type.Mixed {
				b.WriteString("mixed (text only)")
			} else {
				b.WriteString("empty")
			}
		default:
			if e.Type.Mixed {
				b.WriteString("mixed ")
			}
			e.Type.Particle.summarize(&b)
		}
		if e.Type != nil && len(e.Type.Attributes) > 0 {
			atts := make([]string, len(e.Type.Attributes))
			for i, a := range e.Type.Attributes {
				atts[i] = a.Name
			}
			sort.Strings(atts)
			fmt.Fprintf(&b, " [attrs: %s]", strings.Join(atts, ", "))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func (p *Particle) summarize(b *strings.Builder) {
	switch p.Kind {
	case ElementRef:
		b.WriteString(p.Ref)
	case AnyParticle:
		b.WriteString("any")
	case Sequence, Choice:
		sep := ", "
		if p.Kind == Choice {
			sep = " | "
		}
		b.WriteByte('(')
		for i, ch := range p.Children {
			if i > 0 {
				b.WriteString(sep)
			}
			ch.summarize(b)
		}
		b.WriteByte(')')
	}
	if p.MinOccurs != 1 || p.MaxOccurs != 1 {
		fmt.Fprintf(b, "{%s}", occursString(p.MinOccurs, p.MaxOccurs))
	}
}
