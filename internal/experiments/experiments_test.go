package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func quick() Options { return Options{Seed: 1, Quick: true} }

func TestAllExperimentsProduceTables(t *testing.T) {
	tables := All(quick())
	if len(tables) != 12 {
		t.Fatalf("tables = %d, want 12", len(tables))
	}
	for _, tab := range tables {
		if tab.ID == "" || tab.Title == "" || tab.Claim == "" {
			t.Errorf("table %q missing metadata", tab.ID)
		}
		if len(tab.Rows) == 0 {
			t.Errorf("table %q has no rows", tab.ID)
		}
		for _, row := range tab.Rows {
			if len(row) != len(tab.Columns) {
				t.Errorf("table %q row width %d != %d columns", tab.ID, len(row), len(tab.Columns))
			}
		}
		if s := tab.String(); !strings.Contains(s, tab.Title) {
			t.Errorf("table %q String() missing title", tab.ID)
		}
	}
}

func TestByID(t *testing.T) {
	for _, id := range []string{"e1", "E2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12"} {
		if _, ok := ByID(id, quick()); !ok {
			t.Errorf("ByID(%q) not found", id)
		}
	}
	if _, ok := ByID("e99", quick()); ok {
		t.Error("ByID(e99) found")
	}
}

func cell(t *testing.T, tab Table, row int, col string) string {
	t.Helper()
	for i, c := range tab.Columns {
		if c == col {
			return tab.Rows[row][i]
		}
	}
	t.Fatalf("table %s has no column %q (have %v)", tab.ID, col, tab.Columns)
	return ""
}

func cellF(t *testing.T, tab Table, row int, col string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(cell(t, tab, row, col), 64)
	if err != nil {
		t.Fatalf("cell %s[%d,%s] = %q not a float", tab.ID, row, col, cell(t, tab, row, col))
	}
	return v
}

// TestE1Shape pins the qualitative claim: at mutation rate 0 both
// classifiers retain everything; at high rates the validator loses most
// documents while the similarity classifier retains far more.
func TestE1Shape(t *testing.T) {
	tab := E1Classification(quick())
	last := len(tab.Rows) - 1
	if v := cellF(t, tab, 0, "val_retained"); v != 1 {
		t.Errorf("validator retention at rate 0 = %v, want 1", v)
	}
	simHigh := cellF(t, tab, last, "sim_retained")
	valHigh := cellF(t, tab, last, "val_retained")
	if !(simHigh > valHigh) {
		t.Errorf("similarity retention (%v) should exceed validator retention (%v) at high mutation", simHigh, valHigh)
	}
}

// TestE2Shape pins the claim: the evolved DTD conforms better to the
// drifted corpus than the original.
func TestE2Shape(t *testing.T) {
	tab := E2Evolution(quick())
	orig := cellF(t, tab, 0, "conformance")
	evolved := cellF(t, tab, 1, "conformance")
	if !(evolved > orig) {
		t.Errorf("evolved conformance (%v) should exceed original (%v)", evolved, orig)
	}
	truth := cellF(t, tab, 2, "conformance")
	if truth != 1 {
		t.Errorf("drifted ground truth conformance = %v, want 1", truth)
	}
}

// TestE3Shape pins the claim: evolution cost does not grow with corpus
// size the way from-scratch inference does.
func TestE3Shape(t *testing.T) {
	tab := E3Incremental(quick())
	if len(tab.Rows) < 2 {
		t.Fatal("need at least two sizes")
	}
	// The evolve column must not blow up with corpus size: allow generous
	// noise but catch linear growth (quick sizes double).
	first := cellF(t, tab, 0, "evolve_ms")
	last := cellF(t, tab, len(tab.Rows)-1, "evolve_ms")
	if first > 0.001 && last > first*20 {
		t.Errorf("evolve time grew from %v to %v ms across corpus sizes", first, last)
	}
}

// TestE8Shape pins the claim: stricter σ grows the repository, and the
// evolution recovers documents.
func TestE8Shape(t *testing.T) {
	tab := E8SigmaSweep(quick())
	firstRepo := cellF(t, tab, 0, "repository")
	lastRepo := cellF(t, tab, len(tab.Rows)-1, "repository")
	if lastRepo < firstRepo {
		t.Errorf("repository at σ=0.95 (%v) should be ≥ at σ=0.5 (%v)", lastRepo, firstRepo)
	}
}

// TestE9Shape pins the ablation claim: with augmentation the exclusive
// pair yields an OR; without it no OR can be discovered.
func TestE9Shape(t *testing.T) {
	tab := E9AbsentAblation(quick())
	with := cell(t, tab, 0, "with_augmentation")
	without := cell(t, tab, 0, "without_augmentation")
	if !strings.Contains(with, "|") {
		t.Errorf("with augmentation = %s, want an OR", with)
	}
	if strings.Contains(without, "|") {
		t.Errorf("without augmentation = %s, want no OR", without)
	}
	// Plain sequences are unaffected by the ablation.
	if a, b := cell(t, tab, 2, "with_augmentation"), cell(t, tab, 2, "without_augmentation"); a != b {
		t.Errorf("plain sequence diverged: %s vs %s", a, b)
	}
}

// TestE10Shape pins the decay claim: deep mutants always hurt less than
// shallow ones, and the gap shrinks as γ grows.
func TestE10Shape(t *testing.T) {
	tab := E10DecaySweep(quick())
	for i := range tab.Rows {
		if gap := cellF(t, tab, i, "gap"); gap <= 0 {
			t.Errorf("row %d: deep mutants should score higher than shallow (gap %v)", i, gap)
		}
	}
	first := cellF(t, tab, 0, "gap")
	last := cellF(t, tab, len(tab.Rows)-1, "gap")
	if !(last < first) {
		t.Errorf("gap should shrink with γ: %v -> %v", first, last)
	}
}

// TestE11Shape pins the thesaurus claim: at full synonym drift the plain
// classifier loses everything while the thesaurus classifier keeps all.
func TestE11Shape(t *testing.T) {
	tab := E11ThesaurusRetention(quick())
	last := len(tab.Rows) - 1
	if v := cellF(t, tab, last, "plain_retained"); v != 0 {
		t.Errorf("plain retention at rate 1 = %v, want 0", v)
	}
	if v := cellF(t, tab, last, "thesaurus_retained"); v != 1 {
		t.Errorf("thesaurus retention at rate 1 = %v, want 1", v)
	}
	if v := cellF(t, tab, 0, "plain_retained"); v != 1 {
		t.Errorf("plain retention at rate 0 = %v, want 1", v)
	}
}

// TestE12Shape pins the adaptation claim: adaptation always reaches full
// validity on this cycle-free DTD, retaining most content.
func TestE12Shape(t *testing.T) {
	tab := E12AdaptationQuality(quick())
	for i := range tab.Rows {
		if v := cellF(t, tab, i, "valid_after"); v != 1 {
			t.Errorf("row %d: valid_after = %v, want 1", i, v)
		}
		if r := cellF(t, tab, i, "content_retained"); r < 0.8 {
			t.Errorf("row %d: content_retained = %v, want >= 0.8", i, r)
		}
	}
	if b, a := cellF(t, tab, 0, "valid_before"), cellF(t, tab, len(tab.Rows)-1, "valid_before"); a > b {
		t.Errorf("validity before adaptation should fall with mutations: %v -> %v", b, a)
	}
}
