// Package experiments implements the evaluation harness of EXPERIMENTS.md.
//
// The paper (a workshop paper) reports no quantitative evaluation — §6
// states the authors were "currently experimentally evaluating the proposed
// approach" — so this harness is the designed evaluation documented in
// DESIGN.md §5: every experiment validates one claim the paper makes in
// prose, and each table/figure is regenerated both by cmd/evolvebench and
// by a benchmark in the repository root.
package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"dtdevolve/internal/adapt"
	"dtdevolve/internal/classify"
	"dtdevolve/internal/dtd"
	"dtdevolve/internal/evolve"
	"dtdevolve/internal/gen"
	"dtdevolve/internal/metrics"
	"dtdevolve/internal/mine"
	"dtdevolve/internal/record"
	"dtdevolve/internal/similarity"
	"dtdevolve/internal/source"
	"dtdevolve/internal/thesaurus"
	"dtdevolve/internal/validate"
	"dtdevolve/internal/xmltree"
	"dtdevolve/internal/xtract"
)

// Options controls an experiment run.
type Options struct {
	// Seed drives all randomness; the same seed reproduces the same table.
	Seed int64
	// Quick shrinks corpus sizes for tests; the published tables use the
	// full sizes.
	Quick bool
}

func (o Options) scale(full, quick int) int {
	if o.Quick {
		return quick
	}
	return full
}

// Table is one regenerated table or figure series.
type Table struct {
	ID      string
	Title   string
	Claim   string // the paper claim the experiment validates
	Columns []string
	Rows    [][]string
}

// String renders the table with aligned columns.
func (t Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	fmt.Fprintf(&b, "claim: %s\n", t.Claim)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// All runs every experiment.
func All(o Options) []Table {
	return []Table{
		E1Classification(o),
		E2Evolution(o),
		E3Incremental(o),
		E4PsiSweep(o),
		E5SupportSweep(o),
		E6Mining(o),
		E7Throughput(o),
		E8SigmaSweep(o),
		E9AbsentAblation(o),
		E10DecaySweep(o),
		E11ThesaurusRetention(o),
		E12AdaptationQuality(o),
	}
}

// ByID returns the experiment with the given id (e1..e12), or false.
func ByID(id string, o Options) (Table, bool) {
	switch strings.ToLower(id) {
	case "e1":
		return E1Classification(o), true
	case "e2":
		return E2Evolution(o), true
	case "e3":
		return E3Incremental(o), true
	case "e4":
		return E4PsiSweep(o), true
	case "e5":
		return E5SupportSweep(o), true
	case "e6":
		return E6Mining(o), true
	case "e7":
		return E7Throughput(o), true
	case "e8":
		return E8SigmaSweep(o), true
	case "e9":
		return E9AbsentAblation(o), true
	case "e10":
		return E10DecaySweep(o), true
	case "e11":
		return E11ThesaurusRetention(o), true
	case "e12":
		return E12AdaptationQuality(o), true
	default:
		return Table{}, false
	}
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }

// truthDTD is the ground-truth schema used by several experiments: a
// document-centric DTD exercising every operator.
func truthDTD() *dtd.DTD {
	d := dtd.MustParse(`
<!ELEMENT doc (head, section+)>
<!ELEMENT head (title, meta*)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT meta EMPTY>
<!ELEMENT section (heading?, (para | list)*)>
<!ELEMENT heading (#PCDATA)>
<!ELEMENT para (#PCDATA)>
<!ELEMENT list (item+)>
<!ELEMENT item (#PCDATA)>`)
	d.Name = "doc"
	return d
}

// E1Classification (Table 1) — similarity classification vs the strict
// validator baseline over a heterogeneous DTD set, sweeping the mutation
// rate. The claim: requiring validity "would lead to reject a large amount
// of documents, thus resulting in a considerable loss of information".
func E1Classification(o Options) Table {
	nDTDs := 5
	docsPerRate := o.scale(200, 40)
	rates := []float64{0, 0.1, 0.2, 0.3, 0.5}

	g := gen.New(gen.DefaultConfig(o.Seed))
	dtds := make(map[string]*dtd.DTD, nDTDs)
	names := make([]string, nDTDs)
	for i := range names {
		names[i] = fmt.Sprintf("dtd%d", i+1)
		// All DTDs share the root tag and element alphabet, so
		// classification is structural, not nominal.
		d := gen.New(gen.DefaultConfig(o.Seed+int64(i)*101)).RandomDTD("doc", 8)
		dtds[names[i]] = d
	}
	simClassifier := classify.New(0.7, similarity.DefaultConfig())
	for name, d := range dtds {
		simClassifier.Set(name, d)
	}
	valClassifier := classify.NewValidator(dtds)

	table := Table{
		ID:    "E1 (Table 1)",
		Title: "Classification: similarity vs strict validation",
		Claim: "validator-based classification loses heterogeneous documents; similarity-based classification retains and routes them",
		Columns: []string{
			"mutation_rate", "sim_retained", "sim_accuracy", "val_retained", "val_accuracy",
		},
	}
	for _, rate := range rates {
		simRetained, simCorrect, valRetained, valCorrect, total := 0, 0, 0, 0, 0
		for _, name := range names {
			docs := g.MutatedDocuments(dtds[name], docsPerRate/nDTDs, 2, rate)
			for _, doc := range docs {
				total++
				if res := simClassifier.Classify(doc); res.Classified {
					simRetained++
					if res.DTDName == name {
						simCorrect++
					}
				}
				if got, ok := valClassifier.Classify(doc); ok {
					valRetained++
					if got == name {
						valCorrect++
					}
				}
			}
		}
		row := []string{
			f2(rate),
			f3(float64(simRetained) / float64(total)),
			ratioOrDash(simCorrect, simRetained),
			f3(float64(valRetained) / float64(total)),
			ratioOrDash(valCorrect, valRetained),
		}
		table.Rows = append(table.Rows, row)
	}
	return table
}

func ratioOrDash(num, den int) string {
	if den == 0 {
		return "-"
	}
	return f3(float64(num) / float64(den))
}

// E2Evolution (Table 2) — the evolution phase adapts a DTD to a drifted
// population: conformance and mean similarity before vs after, plus the
// behavioral distance to the drifted ground truth.
func E2Evolution(o Options) Table {
	nDocs := o.scale(300, 50)
	g := gen.New(gen.DefaultConfig(o.Seed))
	truth := truthDTD()
	drifted := g.Drift(truth, 3)
	docs := g.Documents(drifted, nDocs)

	rec := record.New(truth)
	for _, doc := range docs {
		rec.Record(doc)
	}
	evolved, _ := evolve.Evolve(rec, evolve.DefaultConfig())

	simCfg := similarity.DefaultConfig()
	table := Table{
		ID:    "E2 (Table 2)",
		Title: "Evolution adapts the DTD to a drifted population",
		Claim: "the evolved DTD reflects the actual structure of documents: conformance and similarity rise, distance to the drifted ground truth falls",
		Columns: []string{
			"dtd", "conformance", "mean_similarity", "dist_to_truth", "conciseness",
		},
	}
	table.Columns = append(table.Columns, "lang_equiv_truth")
	probe := gen.New(gen.DefaultConfig(o.Seed + 7))
	for _, entry := range []struct {
		name string
		d    *dtd.DTD
	}{{"original", truth}, {"evolved", evolved}, {"drifted-truth", drifted}} {
		table.Rows = append(table.Rows, []string{
			entry.name,
			f3(metrics.Conformance(docs, entry.d)),
			f3(metrics.MeanSimilarity(docs, entry.d, simCfg)),
			f3(metrics.BehavioralDistance(drifted, entry.d, probe, o.scale(200, 40))),
			fmt.Sprintf("%d", metrics.Conciseness(entry.d)),
			fmt.Sprintf("%v", dtd.EquivalentDTDs(entry.d, drifted)),
		})
	}
	return table
}

// E3Incremental (Table 3) — the cost argument of §2: recording makes the
// evolution phase cheap and corpus-size independent, while a from-scratch
// inference must re-analyze every document.
func E3Incremental(o Options) Table {
	sizes := []int{100, 500, 1000, 2000, 5000}
	if o.Quick {
		sizes = []int{50, 100}
	}
	g := gen.New(gen.DefaultConfig(o.Seed))
	truth := truthDTD()
	drifted := g.Drift(truth, 3)

	table := Table{
		ID:    "E3 (Table 3)",
		Title: "Incremental evolution vs from-scratch re-inference",
		Claim: "recording at classification time makes the evolution phase fast and independent of corpus size",
		Columns: []string{
			"docs", "record_total_ms", "evolve_ms", "xtract_infer_ms",
		},
	}
	for _, n := range sizes {
		docs := g.Documents(drifted, n)
		rec := record.New(truth)
		t0 := time.Now()
		for _, doc := range docs {
			rec.Record(doc)
		}
		recordMS := time.Since(t0)

		t0 = time.Now()
		_, _ = evolve.Evolve(rec, evolve.DefaultConfig())
		evolveMS := time.Since(t0)

		t0 = time.Now()
		_, err := xtract.Infer(docs)
		xtractMS := time.Since(t0)
		if err != nil {
			panic(err)
		}
		table.Rows = append(table.Rows, []string{
			fmt.Sprintf("%d", n),
			f3(float64(recordMS.Microseconds()) / 1000),
			f3(float64(evolveMS.Microseconds()) / 1000),
			f3(float64(xtractMS.Microseconds()) / 1000),
		})
	}
	return table
}

// E4PsiSweep (Figure A) — the window threshold ψ trades schema stability
// against adaptivity.
func E4PsiSweep(o Options) Table {
	nOld := o.scale(150, 30)  // documents following the old schema
	nNew := o.scale(100, 20)  // documents following the drifted schema
	nEval := o.scale(200, 40) // evaluation documents (drifted)
	g := gen.New(gen.DefaultConfig(o.Seed))
	truth := truthDTD()
	drifted := g.Drift(truth, 3)

	mixed := append(g.Documents(truth, nOld), g.Documents(drifted, nNew)...)
	evalDocs := gen.New(gen.DefaultConfig(o.Seed+13)).Documents(drifted, nEval)

	table := Table{
		ID:    "E4 (Figure A)",
		Title: "Window threshold ψ: stability vs adaptivity",
		Claim: "ψ controls how much relevance DOC_old keeps against DOC_cur: small ψ leaves declarations unchanged, large ψ rebuilds them",
		Columns: []string{
			"psi", "unchanged", "restricted", "merged", "rebuilt", "conformance_drifted", "conciseness",
		},
	}
	for _, psi := range []float64{0.05, 0.15, 0.25, 0.35, 0.45} {
		rec := record.New(truth)
		for _, doc := range mixed {
			rec.Record(doc)
		}
		cfg := evolve.DefaultConfig()
		cfg.Psi = psi
		evolved, report := evolve.Evolve(rec, cfg)
		counts := map[evolve.Action]int{}
		for _, c := range report.Changes {
			counts[c.Action]++
		}
		table.Rows = append(table.Rows, []string{
			f2(psi),
			fmt.Sprintf("%d", counts[evolve.Unchanged]),
			fmt.Sprintf("%d", counts[evolve.Restricted]),
			fmt.Sprintf("%d", counts[evolve.Merged]),
			fmt.Sprintf("%d", counts[evolve.Rebuilt]),
			f3(metrics.Conformance(evalDocs, evolved)),
			fmt.Sprintf("%d", metrics.Conciseness(evolved)),
		})
	}
	return table
}

// E5SupportSweep (Figure B) — the support threshold µ controls which
// sequences participate in rule extraction and therefore the rebuilt
// structure.
func E5SupportSweep(o Options) Table {
	nDocs := o.scale(200, 40)
	r := rand.New(rand.NewSource(o.Seed))
	// A synthetic population for one element: 60% (a, b), 25% (a, b, c),
	// 10% (d), 5% one-off noise shapes.
	shapes := []struct {
		weight float64
		tags   []string
	}{
		{0.60, []string{"a", "b"}},
		{0.25, []string{"a", "b", "c"}},
		{0.10, []string{"d"}},
	}
	host := dtd.MustParse(`<!ELEMENT r (zzz)> <!ELEMENT zzz EMPTY>`)
	rec := record.New(host)
	for i := 0; i < nDocs; i++ {
		root := xmltree.NewElement("r")
		x := r.Float64()
		acc := 0.0
		var tags []string
		for _, s := range shapes {
			acc += s.weight
			if x < acc {
				tags = s.tags
				break
			}
		}
		if tags == nil { // noise: a unique singleton tag
			tags = []string{fmt.Sprintf("noise%d", i)}
		}
		for _, tag := range tags {
			root.Children = append(root.Children, xmltree.NewElement(tag))
		}
		rec.RecordElement(root)
	}
	stats := rec.Stats("r")
	txs := mine.AugmentAll(stats.Transactions(), stats.LabelSet())

	table := Table{
		ID:    "E5 (Figure B)",
		Title: "Support threshold µ: rule base size and rebuilt structure",
		Claim: "sequences below µ are not representative and are discarded; µ trades noise immunity against structure coverage",
		Columns: []string{
			"mu", "kept_sequences", "frequent_itemsets", "conf1_rules", "model", "accepts_frequent",
		},
	}
	for _, mu := range []float64{0.02, 0.05, 0.1, 0.2, 0.4, 0.7} {
		total := 0
		for _, tx := range txs {
			total += tx.Count
		}
		kept := 0
		for _, tx := range txs {
			if float64(tx.Count)/float64(total) >= mu {
				kept++
			}
		}
		freq := mine.Apriori{}.FrequentItemsets(txs, mu, 3)
		rules := mine.GenerateRules(freq, mine.NewTable(txs), 1.0)

		cfg := evolve.DefaultConfig()
		cfg.MinSupport = mu
		model := evolve.ExtractStructure(stats, cfg)

		// Does the model accept the frequent shapes (a,b) and (a,b,c)?
		accepted := 0
		for _, tags := range [][]string{{"a", "b"}, {"a", "b", "c"}} {
			if validate.MatchModel(model, tags) {
				accepted++
			}
		}
		table.Rows = append(table.Rows, []string{
			f2(mu),
			fmt.Sprintf("%d", kept),
			fmt.Sprintf("%d", len(freq)),
			fmt.Sprintf("%d", len(rules)),
			model.String(),
			fmt.Sprintf("%d/2", accepted),
		})
	}
	return table
}

// E6Mining (Table 4) — ablation: Apriori vs FP-Growth.
func E6Mining(o Options) Table {
	sizes := []int{100, 1000, 10000, 100000}
	if o.Quick {
		sizes = []int{100, 1000}
	}
	items := []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j", "k", "l"}

	table := Table{
		ID:    "E6 (Table 4)",
		Title: "Frequent-itemset mining ablation: Apriori vs FP-Growth",
		Claim: "both miners return identical itemsets; FP-Growth wins on large, dense transaction sets",
		Columns: []string{
			"transactions", "itemsets", "apriori_ms", "fpgrowth_ms",
		},
	}
	for _, n := range sizes {
		r := rand.New(rand.NewSource(o.Seed))
		txs := make([]mine.Transaction, n)
		for i := range txs {
			var its []string
			for _, it := range items {
				if r.Intn(3) == 0 {
					its = append(its, it)
				}
			}
			if len(its) == 0 {
				its = []string{"a"}
			}
			txs[i] = mine.NewTransaction(its, 1)
		}
		t0 := time.Now()
		a := mine.Apriori{}.FrequentItemsets(txs, 0.1, 4)
		aprioriMS := time.Since(t0)
		t0 = time.Now()
		fp := mine.FPGrowth{}.FrequentItemsets(txs, 0.1, 4)
		fpMS := time.Since(t0)
		if len(a) != len(fp) {
			panic(fmt.Sprintf("miner disagreement: %d vs %d", len(a), len(fp)))
		}
		table.Rows = append(table.Rows, []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%d", len(a)),
			f3(float64(aprioriMS.Microseconds()) / 1000),
			f3(float64(fpMS.Microseconds()) / 1000),
		})
	}
	return table
}

// E7Throughput (Figure C) — classification + recording pipeline
// throughput against corpus size.
func E7Throughput(o Options) Table {
	sizes := []int{100, 500, 2000}
	if o.Quick {
		sizes = []int{50, 100}
	}
	g := gen.New(gen.DefaultConfig(o.Seed))
	truth := truthDTD()
	drifted := g.Drift(truth, 2)

	table := Table{
		ID:    "E7 (Figure C)",
		Title: "Classify+record pipeline throughput",
		Claim: "per-document cost is flat: the pipeline scales linearly with corpus size",
		Columns: []string{
			"docs", "avg_elems_per_doc", "total_ms", "docs_per_sec",
		},
	}
	for _, n := range sizes {
		docs := g.MutatedDocuments(drifted, n, 1, 0.3)
		elems := 0
		for _, doc := range docs {
			elems += doc.Root.CountElements()
		}
		cfg := source.DefaultConfig()
		cfg.AutoEvolve = false
		s := source.New(cfg)
		s.AddDTD("doc", truth)
		t0 := time.Now()
		for _, doc := range docs {
			s.Add(doc)
		}
		elapsed := time.Since(t0)
		table.Rows = append(table.Rows, []string{
			fmt.Sprintf("%d", n),
			f2(float64(elems) / float64(n)),
			f3(float64(elapsed.Microseconds()) / 1000),
			f2(float64(n) / elapsed.Seconds()),
		})
	}
	return table
}

// E8SigmaSweep (Table 5) — the classification threshold σ: loss of
// information vs repository growth, and post-evolution recovery.
func E8SigmaSweep(o Options) Table {
	nDocs := o.scale(150, 30)
	g := gen.New(gen.DefaultConfig(o.Seed))
	truth := truthDTD()
	drifted := g.Drift(truth, 3)
	docs := g.Documents(drifted, nDocs)

	table := Table{
		ID:    "E8 (Table 5)",
		Title: "Classification threshold σ: retention, repository, recovery",
		Claim: "σ fixes how close classified documents are to their DTD; evolution recovers repository documents afterwards",
		Columns: []string{
			"sigma", "classified", "repository", "recovered_after_evolution",
		},
	}
	for _, sigma := range []float64{0.5, 0.6, 0.7, 0.8, 0.9, 0.95} {
		cfg := source.DefaultConfig()
		cfg.Sigma = sigma
		cfg.AutoEvolve = false
		s := source.New(cfg)
		s.AddDTD("doc", truth)
		classified := 0
		for _, doc := range docs {
			if res := s.Add(doc); res.Classified {
				classified++
			}
		}
		repoBefore := s.RepositorySize()
		recovered := 0
		if classified > 0 {
			_, rec, err := s.EvolveNow("doc")
			if err != nil {
				panic(err)
			}
			recovered = rec
		}
		table.Rows = append(table.Rows, []string{
			f2(sigma),
			fmt.Sprintf("%d/%d", classified, len(docs)),
			fmt.Sprintf("%d", repoBefore),
			fmt.Sprintf("%d", recovered),
		})
	}
	return table
}

// E9AbsentAblation (Table 6) — ablation of the absent-element augmentation
// (paper §4.2, Example 4): without ¬tag items the rules "the absence of
// these elements implies the presence of these elements" cannot be mined,
// so mutually exclusive subelements are never bound by OR.
func E9AbsentAblation(o Options) Table {
	nDocs := o.scale(200, 40)
	table := Table{
		ID:    "E9 (Table 6)",
		Title: "Ablation: absent-element augmentation",
		Claim: "absent elements in the sequences make it possible to determine subelements that never appear together (OR structure)",
		Columns: []string{
			"corpus", "with_augmentation", "without_augmentation",
		},
	}
	corpora := []struct {
		name   string
		shapes [][]string
	}{
		{"exclusive pair (d | e)", [][]string{{"b", "c", "d"}, {"b", "c", "e"}}},
		{"exclusive triple", [][]string{{"x"}, {"y"}, {"z"}}},
		{"plain sequence", [][]string{{"a", "b"}, {"a", "b"}}},
	}
	for _, corpus := range corpora {
		host := dtd.MustParse(`<!ELEMENT r (zzz)> <!ELEMENT zzz EMPTY>`)
		rec := record.New(host)
		for i := 0; i < nDocs; i++ {
			shape := corpus.shapes[i%len(corpus.shapes)]
			root := xmltree.NewElement("r")
			for _, tag := range shape {
				root.Children = append(root.Children, xmltree.NewElement(tag))
			}
			rec.RecordElement(root)
		}
		stats := rec.Stats("r")
		with := evolve.ExtractStructure(stats, evolve.DefaultConfig())
		cfgOff := evolve.DefaultConfig()
		cfgOff.DisableAbsentAugmentation = true
		without := evolve.ExtractStructure(stats, cfgOff)
		table.Rows = append(table.Rows, []string{
			corpus.name, with.String(), without.String(),
		})
	}
	return table
}

// E10DecaySweep (Figure D) — the level decay γ of the similarity measure:
// how much mismatches deep in the tree matter for classification.
func E10DecaySweep(o Options) Table {
	nDocs := o.scale(150, 30)
	g := gen.New(gen.DefaultConfig(o.Seed))
	truth := truthDTD()
	table := Table{
		ID:    "E10 (Figure D)",
		Title: "Level decay γ: depth sensitivity of the similarity measure",
		Claim: "contributions from deeper levels are scaled per level; γ controls how much deep deviations reduce the degree",
		Columns: []string{
			"decay", "mean_sim_shallow_mutants", "mean_sim_deep_mutants", "gap",
		},
	}
	// Shallow mutants: a novel element directly under the root. Deep
	// mutants: a novel element three levels down (inside a list item).
	mkShallow := func() *xmltree.Document {
		doc := g.Document(truth)
		doc.Root.Children = append([]*xmltree.Node{xmltree.NewElement("novel")}, doc.Root.Children...)
		return doc
	}
	mkDeep := func() *xmltree.Document {
		doc := g.Document(truth)
		// Walk to the deepest element and attach the novel element there.
		deepest := doc.Root
		maxDepth := -1
		doc.Root.Walk(func(n *xmltree.Node, d int) bool {
			if n.IsElement() && d > maxDepth {
				deepest, maxDepth = n, d
			}
			return true
		})
		deepest.Children = append(deepest.Children, xmltree.NewElement("novel"))
		return doc
	}
	for _, decay := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
		cfg := similarity.DefaultConfig()
		cfg.Decay = decay
		var shallowDocs, deepDocs []*xmltree.Document
		for i := 0; i < nDocs; i++ {
			shallowDocs = append(shallowDocs, mkShallow())
			deepDocs = append(deepDocs, mkDeep())
		}
		s := metrics.MeanSimilarity(shallowDocs, truth, cfg)
		d := metrics.MeanSimilarity(deepDocs, truth, cfg)
		table.Rows = append(table.Rows, []string{
			f2(decay), f3(s), f3(d), f3(d - s),
		})
	}
	return table
}

// E11ThesaurusRetention (Table 7) — the §6 thesaurus extension quantified:
// documents using synonym tags (writer for author, cost for price) are
// lost by tag-equality classification but retained when the measure shifts
// to tag similarity.
func E11ThesaurusRetention(o Options) Table {
	nDocs := o.scale(200, 40)
	d := dtd.MustParse(`
<!ELEMENT book (title, author, price)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (#PCDATA)>
<!ELEMENT price (#PCDATA)>`)
	d.Name = "book"
	th, err := thesaurus.LoadString("author = writer\nprice ~ cost : 0.9")
	if err != nil {
		panic(err)
	}

	plain := classify.New(0.8, similarity.DefaultConfig())
	plain.Set("book", d)
	simCfg := similarity.DefaultConfig()
	simCfg.TagSimilarity = th.SimilarityFunc()
	withTh := classify.New(0.8, simCfg)
	withTh.Set("book", d)

	table := Table{
		ID:    "E11 (Table 7)",
		Title: "Thesaurus extension: retention under synonym drift",
		Claim: "shifting from tag equality to tag similarity (paper §6) retains documents whose producers use synonym tags",
		Columns: []string{
			"synonym_rate", "plain_retained", "thesaurus_retained",
		},
	}
	r := rand.New(rand.NewSource(o.Seed))
	for _, rate := range []float64{0, 0.25, 0.5, 0.75, 1.0} {
		plainKept, thKept := 0, 0
		for i := 0; i < nDocs; i++ {
			author, price := "author", "price"
			if r.Float64() < rate {
				author, price = "writer", "cost"
			}
			root := xmltree.NewElement("book",
				xmltree.NewElement("title", xmltree.NewText("t")),
				xmltree.NewElement(author, xmltree.NewText("a")),
				xmltree.NewElement(price, xmltree.NewText("9")),
			)
			doc := &xmltree.Document{Root: root}
			if plain.Classify(doc).Classified {
				plainKept++
			}
			if withTh.Classify(doc).Classified {
				thKept++
			}
		}
		table.Rows = append(table.Rows, []string{
			f2(rate),
			f3(float64(plainKept) / float64(nDocs)),
			f3(float64(thKept) / float64(nDocs)),
		})
	}
	return table
}

// E12AdaptationQuality (Table 8) — the §6 open problem quantified: stored
// documents adapted to an evolved DTD become valid, while retaining almost
// all of their original content.
func E12AdaptationQuality(o Options) Table {
	nDocs := o.scale(200, 40)
	truth := truthDTD()
	table := Table{
		ID:    "E12 (Table 8)",
		Title: "Document adaptation: validity gained, content retained",
		Claim: "documents already stored in the source can be adapted to the structure prescribed by the evolved DTDs (§6), losing only the elements the schema cannot place",
		Columns: []string{
			"mutations_per_doc", "valid_before", "valid_after", "content_retained",
		},
	}
	for _, k := range []int{1, 2, 4, 8} {
		g := gen.New(gen.DefaultConfig(o.Seed + int64(k)))
		adapter := adapt.New(truth, adapt.DefaultOptions())
		v := validate.New(truth)
		validBefore, validAfter := 0, 0
		retainedSum := 0.0
		for i := 0; i < nDocs; i++ {
			doc := g.Mutate(g.Document(truth), k)
			if len(v.ValidateDocument(doc)) == 0 {
				validBefore++
			}
			out, _ := adapter.Adapt(doc)
			if len(v.ValidateDocument(out)) == 0 {
				validAfter++
			}
			before := doc.Root.CountElements()
			after := out.Root.CountElements()
			if before > 0 {
				ratio := float64(after) / float64(before)
				if ratio > 1 {
					ratio = 1 // insertions can exceed the original count
				}
				retainedSum += ratio
			}
		}
		table.Rows = append(table.Rows, []string{
			fmt.Sprintf("%d", k),
			f3(float64(validBefore) / float64(nDocs)),
			f3(float64(validAfter) / float64(nDocs)),
			f3(retainedSum / float64(nDocs)),
		})
	}
	return table
}
