package trigger

import (
	"strings"
	"testing"
)

func TestParseFullRule(t *testing.T) {
	r, err := Parse("on article when check_ratio > 0.3 and docs >= 50 do evolve, reclassify")
	if err != nil {
		t.Fatal(err)
	}
	if r.DTD != "article" {
		t.Errorf("dtd = %q", r.DTD)
	}
	if len(r.Conditions) != 2 {
		t.Fatalf("conditions = %+v", r.Conditions)
	}
	c0 := r.Conditions[0]
	if c0.Metric != CheckRatio || c0.Op != ">" || c0.Value != 0.3 {
		t.Errorf("cond 0 = %+v", c0)
	}
	c1 := r.Conditions[1]
	if c1.Metric != Docs || c1.Op != ">=" || c1.Value != 50 {
		t.Errorf("cond 1 = %+v", c1)
	}
	if len(r.Actions) != 2 || r.Actions[0] != Evolve || r.Actions[1] != Reclassify {
		t.Errorf("actions = %v", r.Actions)
	}
	if !strings.Contains(r.String(), "check_ratio") {
		t.Errorf("String = %q", r.String())
	}
}

func TestParseInvalidityCondition(t *testing.T) {
	r, err := Parse("on * when invalidity(product) > 0.8 do evolve")
	if err != nil {
		t.Fatal(err)
	}
	c := r.Conditions[0]
	if c.Metric != Invalidity || c.Element != "product" {
		t.Errorf("cond = %+v", c)
	}
	if got := c.String(); got != "invalidity(product) > 0.8" {
		t.Errorf("cond String = %q", got)
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	if _, err := Parse("ON x WHEN docs > 1 DO evolve"); err != nil {
		t.Errorf("uppercase keywords rejected: %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"when docs > 1 do evolve",            // missing on
		"on x do evolve",                     // missing when
		"on x when docs > 1",                 // missing do
		"on x when docs > 1 do explode",      // unknown action
		"on x when bogus > 1 do evolve",      // unknown metric
		"on x when docs >> 1 do evolve",      // bad comparator
		"on x when docs > abc do evolve",     // bad number
		"on x when invalidity > 1 do evolve", // missing parens
		"on x when invalidity() > 1 do evolve",
		"on x when docs > 1 do evolve trailing",
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestParseAll(t *testing.T) {
	rules, err := ParseAll(`
# two rules
on a when docs > 10 do evolve

on * when repository >= 5 do reclassify
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 {
		t.Fatalf("rules = %d", len(rules))
	}
	if _, err := ParseAll("on broken"); err == nil {
		t.Error("broken rule list accepted")
	}
}

// fakeState implements State for evaluation tests.
type fakeState struct {
	check map[string]float64
	docs  map[string]int
	repo  int
	inval map[string]float64 // key: dtd/element
}

func (f fakeState) CheckRatio(d string) float64 { return f.check[d] }
func (f fakeState) Docs(d string) int           { return f.docs[d] }
func (f fakeState) Repository() int             { return f.repo }
func (f fakeState) Invalidity(d, e string) float64 {
	return f.inval[d+"/"+e]
}

func TestEval(t *testing.T) {
	st := fakeState{
		check: map[string]float64{"a": 0.4},
		docs:  map[string]int{"a": 60},
		repo:  3,
		inval: map[string]float64{"a/p": 0.9},
	}
	cases := []struct {
		rule string
		dtd  string
		want bool
	}{
		{"on a when check_ratio > 0.3 do evolve", "a", true},
		{"on a when check_ratio > 0.5 do evolve", "a", false},
		{"on b when check_ratio > 0.3 do evolve", "a", false}, // scope
		{"on * when docs >= 60 do evolve", "a", true},
		{"on * when docs > 60 do evolve", "a", false},
		{"on a when repository < 5 do reclassify", "a", true},
		{"on a when repository == 3 do reclassify", "a", true},
		{"on a when invalidity(p) >= 0.9 do evolve", "a", true},
		{"on a when invalidity(q) >= 0.9 do evolve", "a", false},
		{"on a when check_ratio > 0.3 and docs >= 100 do evolve", "a", false},
		{"on a when check_ratio > 0.3 and docs >= 50 do evolve", "a", true},
	}
	for _, tc := range cases {
		r, err := Parse(tc.rule)
		if err != nil {
			t.Fatalf("parse %q: %v", tc.rule, err)
		}
		if got := r.Eval(tc.dtd, st); got != tc.want {
			t.Errorf("Eval(%q, %q) = %v, want %v", tc.rule, tc.dtd, got, tc.want)
		}
	}
}

func TestStringers(t *testing.T) {
	if Evolve.String() != "evolve" || Reclassify.String() != "reclassify" {
		t.Error("action stringers")
	}
	for m, want := range map[Metric]string{
		CheckRatio: "check_ratio", Docs: "docs", Repository: "repository", Invalidity: "invalidity",
	} {
		if m.String() != want {
			t.Errorf("%v != %s", m, want)
		}
	}
}
