// Package trigger implements the evolution trigger language the paper
// proposes as a second extension direction (§6): "the development of an
// evolution trigger language, by using which applications can specify and
// automatically activate DTD evolution".
//
// A rule has the form
//
//	on <dtd> when <condition> [and <condition>]... do <action> [, <action>]...
//
// with conditions over the source's observable state:
//
//	check_ratio  >  0.3      the check-phase quantity of §2
//	docs         >= 50       documents classified since the last evolution
//	repository   >  10       unclassified documents held in the repository
//	invalidity(name) > 0.8   the invalidity ratio I(name) of one element
//
// comparators >, >=, <, <=, ==, and actions
//
//	evolve        run the evolution phase for the rule's DTD
//	reclassify    re-classify the repository against the DTD set
//
// Example:
//
//	on article when check_ratio > 0.3 and docs >= 50 do evolve, reclassify
package trigger

import (
	"fmt"
	"strconv"
	"strings"
)

// Action is a rule consequence.
type Action int

const (
	// Evolve runs the evolution phase for the rule's DTD.
	Evolve Action = iota
	// Reclassify re-classifies the repository documents.
	Reclassify
)

// String returns the action keyword.
func (a Action) String() string {
	switch a {
	case Evolve:
		return "evolve"
	case Reclassify:
		return "reclassify"
	default:
		return fmt.Sprintf("Action(%d)", int(a))
	}
}

// Metric identifies an observable quantity.
type Metric int

const (
	// CheckRatio is the check-phase quantity (Σ invalid ratios / #docs).
	CheckRatio Metric = iota
	// Docs is the number of documents classified since the last evolution.
	Docs
	// Repository is the number of unclassified documents.
	Repository
	// Invalidity is the invalidity ratio I(e) of a named element.
	Invalidity
)

// String returns the metric keyword.
func (m Metric) String() string {
	switch m {
	case CheckRatio:
		return "check_ratio"
	case Docs:
		return "docs"
	case Repository:
		return "repository"
	case Invalidity:
		return "invalidity"
	default:
		return fmt.Sprintf("Metric(%d)", int(m))
	}
}

// Condition is one comparison of the rule.
type Condition struct {
	Metric  Metric
	Element string // for Invalidity
	Op      string // ">", ">=", "<", "<=", "=="
	Value   float64
}

func (c Condition) String() string {
	lhs := c.Metric.String()
	if c.Metric == Invalidity {
		lhs = fmt.Sprintf("invalidity(%s)", c.Element)
	}
	return fmt.Sprintf("%s %s %g", lhs, c.Op, c.Value)
}

// holds evaluates the condition against a measured value.
func (c Condition) holds(v float64) bool {
	switch c.Op {
	case ">":
		return v > c.Value
	case ">=":
		return v >= c.Value
	case "<":
		return v < c.Value
	case "<=":
		return v <= c.Value
	case "==":
		return v == c.Value
	default:
		return false
	}
}

// Rule is one parsed trigger rule.
type Rule struct {
	// DTD names the DTD the rule watches; "*" watches every DTD.
	DTD        string
	Conditions []Condition
	Actions    []Action
	src        string
}

// String returns the rule's source text.
func (r *Rule) String() string { return r.src }

// State provides the measured values a rule is evaluated against.
type State interface {
	// CheckRatio returns the check-phase quantity for the DTD.
	CheckRatio(dtdName string) float64
	// Docs returns the documents classified in the DTD since last evolution.
	Docs(dtdName string) int
	// Repository returns the repository size.
	Repository() int
	// Invalidity returns I(element) for the DTD's element.
	Invalidity(dtdName, element string) float64
}

// Eval reports whether all conditions of the rule hold for the given DTD.
func (r *Rule) Eval(dtdName string, s State) bool {
	if r.DTD != "*" && r.DTD != dtdName {
		return false
	}
	for _, c := range r.Conditions {
		var v float64
		switch c.Metric {
		case CheckRatio:
			v = s.CheckRatio(dtdName)
		case Docs:
			v = float64(s.Docs(dtdName))
		case Repository:
			v = float64(s.Repository())
		case Invalidity:
			v = s.Invalidity(dtdName, c.Element)
		}
		if !c.holds(v) {
			return false
		}
	}
	return true
}

// Parse parses one rule.
func Parse(src string) (*Rule, error) {
	p := &ruleParser{tokens: tokenize(src), src: strings.TrimSpace(src)}
	rule, err := p.parse()
	if err != nil {
		return nil, fmt.Errorf("trigger: %s: %w", strings.TrimSpace(src), err)
	}
	return rule, nil
}

// ParseAll parses a newline-separated rule list, skipping blank lines and
// '#' comments.
func ParseAll(src string) ([]*Rule, error) {
	var out []*Rule
	for _, line := range strings.Split(src, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		rule, err := Parse(line)
		if err != nil {
			return nil, err
		}
		out = append(out, rule)
	}
	return out, nil
}

func tokenize(src string) []string {
	// Make punctuation self-delimiting, then split on whitespace.
	replacer := strings.NewReplacer(
		"(", " ( ", ")", " ) ", ",", " , ",
		">=", " >= ", "<=", " <= ", "==", " == ",
	)
	s := replacer.Replace(src)
	// Lone > and < (avoid re-splitting >= etc., already spaced).
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c == '>' || c == '<') && (i+1 >= len(s) || s[i+1] != '=') {
			b.WriteByte(' ')
			b.WriteByte(c)
			b.WriteByte(' ')
			continue
		}
		b.WriteByte(c)
	}
	return strings.Fields(b.String())
}

type ruleParser struct {
	tokens []string
	pos    int
	src    string
}

func (p *ruleParser) peek() string {
	if p.pos >= len(p.tokens) {
		return ""
	}
	return p.tokens[p.pos]
}

func (p *ruleParser) next() string {
	t := p.peek()
	if t != "" {
		p.pos++
	}
	return t
}

func (p *ruleParser) expect(keyword string) error {
	if t := p.next(); !strings.EqualFold(t, keyword) {
		return fmt.Errorf("expected %q, got %q", keyword, t)
	}
	return nil
}

func (p *ruleParser) parse() (*Rule, error) {
	if err := p.expect("on"); err != nil {
		return nil, err
	}
	name := p.next()
	if name == "" {
		return nil, fmt.Errorf("expected a DTD name after 'on'")
	}
	if err := p.expect("when"); err != nil {
		return nil, err
	}
	rule := &Rule{DTD: name, src: p.src}
	for {
		cond, err := p.parseCondition()
		if err != nil {
			return nil, err
		}
		rule.Conditions = append(rule.Conditions, cond)
		if strings.EqualFold(p.peek(), "and") {
			p.next()
			continue
		}
		break
	}
	if err := p.expect("do"); err != nil {
		return nil, err
	}
	for {
		switch t := strings.ToLower(p.next()); t {
		case "evolve":
			rule.Actions = append(rule.Actions, Evolve)
		case "reclassify":
			rule.Actions = append(rule.Actions, Reclassify)
		default:
			return nil, fmt.Errorf("unknown action %q", t)
		}
		if p.peek() == "," {
			p.next()
			continue
		}
		break
	}
	if p.peek() != "" {
		return nil, fmt.Errorf("unexpected trailing token %q", p.peek())
	}
	return rule, nil
}

func (p *ruleParser) parseCondition() (Condition, error) {
	var cond Condition
	switch t := strings.ToLower(p.next()); t {
	case "check_ratio":
		cond.Metric = CheckRatio
	case "docs":
		cond.Metric = Docs
	case "repository":
		cond.Metric = Repository
	case "invalidity":
		cond.Metric = Invalidity
		if err := p.expect("("); err != nil {
			return cond, err
		}
		cond.Element = p.next()
		if cond.Element == "" || cond.Element == ")" {
			return cond, fmt.Errorf("invalidity() needs an element name")
		}
		if err := p.expect(")"); err != nil {
			return cond, err
		}
	default:
		return cond, fmt.Errorf("unknown metric %q", t)
	}
	op := p.next()
	switch op {
	case ">", ">=", "<", "<=", "==":
		cond.Op = op
	default:
		return cond, fmt.Errorf("expected a comparator, got %q", op)
	}
	v, err := strconv.ParseFloat(p.next(), 64)
	if err != nil {
		return cond, fmt.Errorf("expected a number: %v", err)
	}
	cond.Value = v
	return cond, nil
}
