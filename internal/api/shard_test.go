package api

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"dtdevolve/internal/shard"
	"dtdevolve/internal/source"
	"dtdevolve/internal/wal"
	"dtdevolve/internal/wal/faultfs"
)

func newShardedServer(t *testing.T, shards int) (*httptest.Server, *shard.Router) {
	t.Helper()
	cfg := source.DefaultConfig()
	cfg.MinDocs = 5
	r := shard.New(cfg, shard.Options{Shards: shards})
	srv := httptest.NewServer(NewEngine(r, Options{}))
	t.Cleanup(srv.Close)
	return srv, r
}

// shardKey returns a key the router routes to the wanted shard.
func shardKey(t *testing.T, r *shard.Router, want int) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		key := fmt.Sprintf("key-%d", i)
		if r.ShardFor(key) == want {
			return key
		}
	}
	t.Fatalf("no key found for shard %d", want)
	return ""
}

func TestShardedDocumentRoutingByHeader(t *testing.T) {
	srv, r := newShardedServer(t, 4)
	if resp, out := do(t, "PUT", srv.URL+"/dtds/article?root=article", articleDTD); resp.StatusCode != http.StatusCreated {
		t.Fatalf("put dtd: %d (%v)", resp.StatusCode, out)
	}
	target := 3
	// do() has no header hook; send by hand.
	req, err := http.NewRequest("POST", srv.URL+"/documents",
		strings.NewReader(`<article><title>t</title><body>b</body></article>`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(DefaultKeyHeader, shardKey(t, r, target))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post document: %d", resp.StatusCode)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out["classified"] != true {
		t.Errorf("classified = %v", out["classified"])
	}
	if got := r.Shard(target).Metrics().Added; got != 1 {
		t.Errorf("target shard Added = %d, want 1 (header key must route)", got)
	}
}

func TestShardedStatusReportsShards(t *testing.T) {
	srv, _ := newShardedServer(t, 3)
	if resp, _ := do(t, "PUT", srv.URL+"/dtds/article?root=article", articleDTD); resp.StatusCode != http.StatusCreated {
		t.Fatal("put dtd failed")
	}
	resp, out := do(t, "GET", srv.URL+"/status", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if out["degraded"] != false {
		t.Errorf("degraded = %v", out["degraded"])
	}
	shardsAny, ok := out["shards"].([]any)
	if !ok || len(shardsAny) != 3 {
		t.Fatalf("shards = %v, want 3 entries", out["shards"])
	}
	if _, present := out["degraded_shards"]; present {
		t.Errorf("degraded_shards present with all shards healthy: %v", out["degraded_shards"])
	}
}

func TestShardedMetricsEmbedTotalsAndShards(t *testing.T) {
	srv, r := newShardedServer(t, 2)
	if resp, _ := do(t, "PUT", srv.URL+"/dtds/article?root=article", articleDTD); resp.StatusCode != http.StatusCreated {
		t.Fatal("put dtd failed")
	}
	for i := 0; i < 2; i++ {
		req, _ := http.NewRequest("POST", srv.URL+"/documents",
			strings.NewReader(`<article><title>t</title><body>b</body></article>`))
		req.Header.Set(DefaultKeyHeader, shardKey(t, r, i))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	resp, out := do(t, "GET", srv.URL+"/metrics", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics = %d", resp.StatusCode)
	}
	if out["added"].(float64) != 2 {
		t.Errorf("aggregate added = %v, want 2", out["added"])
	}
	per, ok := out["shards"].([]any)
	if !ok || len(per) != 2 {
		t.Fatalf("metrics shards = %v, want 2 entries", out["shards"])
	}
	for i, s := range per {
		if s.(map[string]any)["added"].(float64) != 1 {
			t.Errorf("shard %d added = %v, want 1", i, s.(map[string]any)["added"])
		}
	}
}

func TestShardedBatchKeys(t *testing.T) {
	srv, r := newShardedServer(t, 2)
	if resp, _ := do(t, "PUT", srv.URL+"/dtds/article?root=article", articleDTD); resp.StatusCode != http.StatusCreated {
		t.Fatal("put dtd failed")
	}
	body := fmt.Sprintf(`{"documents": [%q, %q], "keys": [%q, %q]}`,
		`<article><title>a</title><body>b</body></article>`,
		`<alien><x/></alien>`,
		shardKey(t, r, 0), shardKey(t, r, 1))
	resp, out := do(t, "POST", srv.URL+"/documents/batch", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch = %d (%v)", resp.StatusCode, out)
	}
	results := out["results"].([]any)
	if len(results) != 2 {
		t.Fatalf("results = %v", results)
	}
	// Input order survives the shard fan-out.
	if results[0].(map[string]any)["classified"] != true || results[1].(map[string]any)["classified"] != false {
		t.Errorf("result order wrong: %v", results)
	}
	if r.Shard(0).Metrics().Added != 1 || r.Shard(1).Metrics().Added != 1 {
		t.Errorf("keys did not route: shard adds = %d, %d",
			r.Shard(0).Metrics().Added, r.Shard(1).Metrics().Added)
	}

	// Mismatched key count is the client's error.
	bad := `{"documents": ["<a/>", "<b/>"], "keys": ["only-one"]}`
	if resp, out := do(t, "POST", srv.URL+"/documents/batch", bad); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("mismatched keys = %d (%v)", resp.StatusCode, out)
	}
}

// TestShardedDegradedShard503 checks the HTTP-level blast radius: requests
// touching a degraded shard answer 503, everything else keeps working, and
// GET /status reports the shard-level failure while the service as a whole
// stays writable.
func TestShardedDegradedShard503(t *testing.T) {
	cfg := source.DefaultConfig()
	cfg.MinDocs = 5
	r := shard.New(cfg, shard.Options{Shards: 2})
	const target = 1
	fs := faultfs.New()
	for i := 0; i < r.Shards(); i++ {
		opts := wal.Options{Sync: wal.SyncOff}
		if i == target {
			opts.FS = fs
		}
		w, err := wal.Open(t.TempDir(), opts)
		if err != nil {
			t.Fatal(err)
		}
		r.Shard(i).AttachWAL(w)
		t.Cleanup(func() { r.Shard(i).CloseWAL() })
	}
	srv := httptest.NewServer(NewEngine(r, Options{}))
	t.Cleanup(srv.Close)
	if resp, _ := do(t, "PUT", srv.URL+"/dtds/article?root=article", articleDTD); resp.StatusCode != http.StatusCreated {
		t.Fatal("put dtd failed")
	}

	// Kill the target shard's disk and trip its degraded flag.
	fs.FailWritesAfter(0)
	req, _ := http.NewRequest("POST", srv.URL+"/documents",
		strings.NewReader(`<article><title>t</title><body>b</body></article>`))
	req.Header.Set(DefaultKeyHeader, shardKey(t, r, target))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if r.Shard(target).Degraded() == nil {
		t.Fatal("target shard not degraded")
	}

	// A document for the dead shard: 503.
	req, _ = http.NewRequest("POST", srv.URL+"/documents",
		strings.NewReader(`<article><title>u</title><body>c</body></article>`))
	req.Header.Set(DefaultKeyHeader, shardKey(t, r, target))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("document to degraded shard = %d, want 503", resp.StatusCode)
	}

	// A document for the healthy shard: 200.
	req, _ = http.NewRequest("POST", srv.URL+"/documents",
		strings.NewReader(`<article><title>v</title><body>d</body></article>`))
	req.Header.Set(DefaultKeyHeader, shardKey(t, r, 0))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("document to healthy shard = %d, want 200", resp.StatusCode)
	}

	// A batch touching the dead shard: 503 whole.
	body := fmt.Sprintf(`{"documents": [%q], "keys": [%q]}`,
		`<article><title>w</title><body>e</body></article>`, shardKey(t, r, target))
	if resp, out := do(t, "POST", srv.URL+"/documents/batch", body); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("batch to degraded shard = %d (%v), want 503", resp.StatusCode, out)
	}

	// Broadcast mutations need every shard: 503.
	if resp, out := do(t, "PUT", srv.URL+"/dtds/extra?root=article", articleDTD); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("broadcast put with degraded shard = %d (%v), want 503", resp.StatusCode, out)
	}

	// /status: service not degraded, one shard is.
	resp2, out := do(t, "GET", srv.URL+"/status", "")
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp2.StatusCode)
	}
	if out["degraded"] != false {
		t.Errorf("service degraded = %v with one healthy shard", out["degraded"])
	}
	if out["degraded_shards"].(float64) != 1 {
		t.Errorf("degraded_shards = %v, want 1", out["degraded_shards"])
	}
	sts := out["shards"].([]any)
	st := sts[target].(map[string]any)
	if st["degraded"] != true || st["error"] == "" {
		t.Errorf("shard %d status = %v, want degraded with error", target, st)
	}
}
