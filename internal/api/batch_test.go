package api

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"dtdevolve/internal/source"
)

func TestBatchIngest(t *testing.T) {
	srv, src := newServer(t)
	if resp, out := do(t, "PUT", srv.URL+"/dtds/article?root=article", articleDTD); resp.StatusCode != http.StatusCreated {
		t.Fatalf("register status = %d (%v)", resp.StatusCode, out)
	}
	body, _ := json.Marshal(map[string]any{"documents": []string{
		`<article><title>t</title><body>b</body></article>`,
		`<article><title>u</title><body>c</body></article>`,
		`<invoice><total>3</total></invoice>`,
	}})
	resp, out := do(t, "POST", srv.URL+"/documents/batch", string(body))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d (%v)", resp.StatusCode, out)
	}
	if out["classified"].(float64) != 2 || out["repository"].(float64) != 1 {
		t.Errorf("batch summary = %v", out)
	}
	results := out["results"].([]any)
	if len(results) != 3 {
		t.Fatalf("results = %v", results)
	}
	first := results[0].(map[string]any)
	if first["classified"] != true || first["dtd"] != "article" || first["similarity"].(float64) != 1 {
		t.Errorf("first result = %v", first)
	}
	if src.RepositorySize() != 1 {
		t.Errorf("repository = %d, want 1", src.RepositorySize())
	}
}

func TestBatchIngestBadRequests(t *testing.T) {
	srv, _ := newServer(t)
	for _, body := range []string{
		`{not json`,
		`{"documents": []}`,
		`{"documents": ["<broken"]}`,
	} {
		resp, out := do(t, "POST", srv.URL+"/documents/batch", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status = %d (%v), want 400", body, resp.StatusCode, out)
		}
	}
}

func TestMetricsRoute(t *testing.T) {
	srv, _ := newServer(t)
	do(t, "PUT", srv.URL+"/dtds/article?root=article", articleDTD)
	do(t, "POST", srv.URL+"/documents", `<article><title>t</title><body>b</body></article>`)
	do(t, "POST", srv.URL+"/documents", `<invoice><total>3</total></invoice>`)
	resp, out := do(t, "GET", srv.URL+"/metrics", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status = %d", resp.StatusCode)
	}
	if out["added"].(float64) != 2 || out["classified"].(float64) != 1 || out["repository"].(float64) != 1 {
		t.Errorf("metrics = %v", out)
	}
	if out["classify_ns_total"].(float64) <= 0 {
		t.Errorf("no classify latency recorded: %v", out)
	}
}

// TestReadBodyTooLarge checks that only an over-limit body maps to 413.
func TestReadBodyTooLarge(t *testing.T) {
	old := maxBodyBytes
	maxBodyBytes = 64
	defer func() { maxBodyBytes = old }()
	srv, _ := newServer(t)
	resp, out := do(t, "POST", srv.URL+"/documents", strings.Repeat("<a>", 100))
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("status = %d (%v), want 413", resp.StatusCode, out)
	}
}

// errReader fails mid-body: the request is broken, not too large, so the
// handler must answer 400, not 413.
type errReader struct{}

func (errReader) Read([]byte) (int, error) { return 0, errors.New("boom: connection reset") }

func TestReadBodyFailureIsBadRequest(t *testing.T) {
	h := New(source.New(source.DefaultConfig()))
	req := httptest.NewRequest("POST", "/documents", errReader{})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("status = %d (%s), want 400", rec.Code, rec.Body)
	}
}
