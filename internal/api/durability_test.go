package api

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"dtdevolve/internal/source"
	"dtdevolve/internal/wal"
	"dtdevolve/internal/wal/faultfs"
)

// newDurableServer wires a faultfs-backed WAL into the served source so
// tests can kill the disk under live HTTP traffic.
func newDurableServer(t *testing.T) (*httptest.Server, *source.Source, *faultfs.FS) {
	t.Helper()
	fs := faultfs.New()
	w, err := wal.Open(t.TempDir(), wal.Options{Sync: wal.SyncOff, FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	cfg := source.DefaultConfig()
	cfg.MinDocs = 5
	src := source.New(cfg)
	src.AttachWAL(w)
	t.Cleanup(func() { src.CloseWAL() })
	srv := httptest.NewServer(New(src))
	t.Cleanup(srv.Close)
	return srv, src, fs
}

// TestDegradedServerGoesReadOnly kills the WAL's disk and checks mutating
// routes answer 503 while reads (status, snapshot) keep serving.
func TestDegradedServerGoesReadOnly(t *testing.T) {
	srv, _, fs := newDurableServer(t)
	do(t, "PUT", srv.URL+"/dtds/article?root=article", articleDTD)
	resp, _ := do(t, "POST", srv.URL+"/documents", `<article><title>t</title><body>b</body></article>`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy ingest status = %d", resp.StatusCode)
	}

	fs.FailWritesAfter(0)
	// The request that hits the disk failure is still answered (its
	// in-memory effect happened); from then on the service is read-only.
	do(t, "POST", srv.URL+"/documents", `<article><title>t</title><body>b</body></article>`)

	resp, out := do(t, "POST", srv.URL+"/documents", `<article><title>t</title><body>b</body></article>`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("mutation on degraded server = %d (%v), want 503", resp.StatusCode, out)
	}
	resp, out = do(t, "PUT", srv.URL+"/triggers", "on article when docs > 1 do evolve")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("trigger install on degraded server = %d (%v), want 503", resp.StatusCode, out)
	}

	resp, out = do(t, "GET", srv.URL+"/status", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status on degraded server = %d", resp.StatusCode)
	}
	if out["degraded"] != true || out["error"] == "" {
		t.Errorf("status body = %v, want degraded=true with an error", out)
	}
	resp, _ = do(t, "GET", srv.URL+"/snapshot", "")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("snapshot on degraded server = %d, want the operator escape hatch to work", resp.StatusCode)
	}
}

// TestSnapshotRoundTripAfterRecovery is the golden round-trip: serve ops,
// crash, recover from the WAL, and check GET /snapshot of the recovered
// server equals GET /snapshot of the original.
func TestSnapshotRoundTripAfterRecovery(t *testing.T) {
	dir := t.TempDir()
	w, err := wal.Open(dir, wal.Options{Sync: wal.SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	cfg := source.DefaultConfig()
	cfg.MinDocs = 5
	src := source.New(cfg)
	src.AttachWAL(w)
	srv := httptest.NewServer(New(src))
	defer srv.Close()

	do(t, "PUT", srv.URL+"/dtds/article?root=article", articleDTD)
	do(t, "PUT", srv.URL+"/triggers", "on article when docs >= 4 and check_ratio > 0.1 do evolve")
	for i := 0; i < 8; i++ {
		do(t, "POST", srv.URL+"/documents",
			`<article><title>t</title><author>a</author><body>b</body></article>`)
	}
	do(t, "POST", srv.URL+"/documents", `<alien><x/></alien>`)
	do(t, "POST", srv.URL+"/repository/reclassify", "")
	want, err := src.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := src.CloseWAL(); err != nil {
		t.Fatal(err)
	}

	recovered, info, err := source.Recover(cfg, nil, dir, wal.Options{Sync: wal.SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer recovered.CloseWAL()
	if info.Replayed == 0 {
		t.Fatal("nothing replayed")
	}
	srv2 := httptest.NewServer(New(recovered))
	defer srv2.Close()
	resp, err := http.Get(srv2.URL + "/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bytes.TrimSpace(buf.Bytes()), bytes.TrimSpace(want)) {
		t.Errorf("snapshot after recovery diverges:\n got: %s\nwant: %s", buf.Bytes(), want)
	}
}

// TestBatchCancelledByClient checks a dead client context aborts the batch
// with nothing committed.
func TestBatchCancelledByClient(t *testing.T) {
	srv, src, _ := newDurableServer(t)
	do(t, "PUT", srv.URL+"/dtds/article?root=article", articleDTD)

	ctx, cancel := context.WithCancel(context.Background())
	body := `{"documents": ["<article><title>t</title><body>b</body></article>"]}`
	req, err := http.NewRequestWithContext(ctx, "POST", srv.URL+"/documents/batch", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	if _, err := http.DefaultClient.Do(req); err == nil {
		t.Fatal("request with cancelled context succeeded")
	}
	if n := src.Metrics().Added; n != 0 {
		t.Errorf("cancelled batch committed %d documents", n)
	}
}
