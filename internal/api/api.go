// Package api exposes the source lifecycle over HTTP: the paper's scenario
// is a Web document source, and this handler turns the library into the
// long-lived service a downstream user would deploy — register DTDs, stream
// documents in, watch evolutions happen, manage triggers, checkpoint state.
//
// Routes (all JSON unless noted):
//
//	GET  /status                  per-DTD status + durability health
//	GET  /dtds                    registered DTD names
//	PUT  /dtds/{name}?root=r      register/replace a DTD (body: DTD text)
//	GET  /dtds/{name}             current DTD (text/plain)
//	POST /dtds/{name}/evolve      force the evolution phase
//	POST /documents               classify+record one document (body: XML)
//	POST /documents/batch         batch ingest (body: {"documents": [xml, …]})
//	GET  /repository              repository size
//	POST /repository/reclassify   re-classify the repository
//	PUT  /triggers                install trigger rules (body: rule list)
//	GET  /triggers                installed rules
//	GET  /metrics                 ingest counters and per-phase latencies
//	GET  /snapshot                JSON checkpoint of the whole source
//
// Documents in a batch are scored concurrently (one read-lock section, one
// goroutine per document, each fanning out per DTD) and committed in a
// single write-lock section, so a batch is both faster than and equivalent
// to the same documents POSTed one by one. A client that disconnects
// mid-batch cancels the remaining scoring work before anything commits.
//
// When the source's write-ahead log fails (disk full, dying device), the
// service degrades to read-only: every mutating route answers 503 with the
// sticky durability error, while reads — including GET /snapshot, the
// operator's escape hatch for saving state — keep working. GET /status
// reports the degraded flag. See DESIGN.md §10.
package api

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"dtdevolve/internal/classify"
	"dtdevolve/internal/dtd"
	"dtdevolve/internal/source"
	"dtdevolve/internal/xmltree"
)

// maxBodyBytes bounds request bodies (documents, DTDs, rule lists). A
// variable so handler tests can exercise the limit without 16 MiB bodies.
var maxBodyBytes int64 = 16 << 20

// Handler serves the lifecycle API for one Source.
type Handler struct {
	src *source.Source
	mux *http.ServeMux
}

// New returns an http.Handler managing src.
func New(src *source.Source) *Handler {
	h := &Handler{src: src, mux: http.NewServeMux()}
	h.mux.HandleFunc("GET /status", h.status)
	h.mux.HandleFunc("GET /dtds", h.listDTDs)
	h.mux.HandleFunc("PUT /dtds/{name}", h.putDTD)
	h.mux.HandleFunc("GET /dtds/{name}", h.getDTD)
	h.mux.HandleFunc("POST /dtds/{name}/evolve", h.evolve)
	h.mux.HandleFunc("POST /documents", h.addDocument)
	h.mux.HandleFunc("POST /documents/batch", h.addBatch)
	h.mux.HandleFunc("GET /metrics", h.metrics)
	h.mux.HandleFunc("GET /repository", h.repository)
	h.mux.HandleFunc("POST /repository/reclassify", h.reclassify)
	h.mux.HandleFunc("PUT /triggers", h.putTriggers)
	h.mux.HandleFunc("GET /triggers", h.getTriggers)
	h.mux.HandleFunc("GET /snapshot", h.snapshot)
	return h
}

// statusClientClosedRequest is nginx's non-standard code for a client that
// disconnected before the response was produced.
const statusClientClosedRequest = 499

// ServeHTTP implements http.Handler. Mutating requests are refused with 503
// while the source is degraded (its write-ahead log stopped accepting
// records): the in-memory state could still change, but its durability can
// no longer be promised, and a lost-on-restart mutation acknowledged with
// 200 would be a silent lie. All routes mutate iff their method is not GET.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		if err := h.src.Degraded(); err != nil {
			writeError(w, http.StatusServiceUnavailable, "source degraded (read-only): %v", err)
			return
		}
	}
	h.mux.ServeHTTP(w, r)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

func readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		// Only an over-limit body is 413; any other read failure (client
		// disconnect, malformed chunking) is the client's bad request.
		status := http.StatusBadRequest
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			status = http.StatusRequestEntityTooLarge
		}
		writeError(w, status, "reading body: %v", err)
		return nil, false
	}
	return data, true
}

// statusResponse is the JSON shape of GET /status: per-DTD state plus the
// service's durability health.
type statusResponse struct {
	Degraded bool               `json:"degraded"`
	Error    string             `json:"error,omitempty"`
	DTDs     []source.DTDStatus `json:"dtds"`
}

func (h *Handler) status(w http.ResponseWriter, _ *http.Request) {
	resp := statusResponse{DTDs: h.src.Status()}
	if err := h.src.Degraded(); err != nil {
		resp.Degraded = true
		resp.Error = err.Error()
	}
	writeJSON(w, http.StatusOK, resp)
}

func (h *Handler) listDTDs(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"dtds": h.src.Names()})
}

func (h *Handler) putDTD(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	data, ok := readBody(w, r)
	if !ok {
		return
	}
	d, err := dtd.ParseString(string(data))
	if err != nil {
		writeError(w, http.StatusBadRequest, "parsing DTD: %v", err)
		return
	}
	if root := r.URL.Query().Get("root"); root != "" {
		d.Name = root
	}
	h.src.AddDTD(name, d)
	writeJSON(w, http.StatusCreated, map[string]any{"registered": name, "elements": len(d.Elements)})
}

func (h *Handler) getDTD(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	d := h.src.DTD(name)
	if d == nil {
		writeError(w, http.StatusNotFound, "no DTD named %q", name)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = io.WriteString(w, d.String())
}

// evolveResponse is the JSON shape of a forced evolution.
type evolveResponse struct {
	Reclassified int             `json:"reclassified"`
	Changes      []elementChange `json:"changes"`
}

type elementChange struct {
	Name       string  `json:"name"`
	Action     string  `json:"action"`
	Invalidity float64 `json:"invalidity"`
	Old        string  `json:"old,omitempty"`
	New        string  `json:"new"`
}

func (h *Handler) evolve(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	report, reclassified, err := h.src.EvolveNow(name)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	resp := evolveResponse{Reclassified: reclassified}
	for _, c := range report.Changes {
		resp.Changes = append(resp.Changes, elementChange{
			Name:       c.Name,
			Action:     c.Action.String(),
			Invalidity: c.Invalidity,
			Old:        c.Old,
			New:        c.New,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// addResponse is the JSON shape of a document classification.
type addResponse struct {
	Classified   bool     `json:"classified"`
	DTD          string   `json:"dtd,omitempty"`
	Similarity   float64  `json:"similarity"`
	Evolved      bool     `json:"evolved"`
	Reclassified int      `json:"reclassified,omitempty"`
	Triggered    []string `json:"triggered,omitempty"`
	// Candidates echoes the runner-up scores for single-document adds,
	// capped at maxEchoCandidates: the payload must stay O(1) in the size
	// of the registry, whatever the classifier scored.
	Candidates []classify.Candidate `json:"candidates,omitempty"`
}

// maxEchoCandidates caps how many scored candidates POST /documents echoes
// back. Batch responses omit candidates entirely.
const maxEchoCandidates = 5

func (h *Handler) addDocument(w http.ResponseWriter, r *http.Request) {
	data, ok := readBody(w, r)
	if !ok {
		return
	}
	doc, err := parseDocument(data)
	if err != nil {
		writeError(w, http.StatusBadRequest, "parsing document: %v", err)
		return
	}
	res := h.src.Add(doc)
	cands := res.Candidates
	if len(cands) > maxEchoCandidates {
		cands = cands[:maxEchoCandidates]
	}
	writeJSON(w, http.StatusOK, addResponse{
		Classified:   res.Classified,
		DTD:          res.DTDName,
		Similarity:   res.Similarity,
		Evolved:      res.Evolved,
		Reclassified: res.Reclassified,
		Triggered:    res.Triggered,
		Candidates:   cands,
	})
}

// batchRequest is the JSON body of POST /documents/batch.
type batchRequest struct {
	Documents []string `json:"documents"`
}

// batchResponse is the JSON shape of a batch ingest.
type batchResponse struct {
	Results    []addResponse `json:"results"`
	Classified int           `json:"classified"`
	Repository int           `json:"repository"`
}

func (h *Handler) addBatch(w http.ResponseWriter, r *http.Request) {
	data, ok := readBody(w, r)
	if !ok {
		return
	}
	var req batchRequest
	if err := json.Unmarshal(data, &req); err != nil {
		writeError(w, http.StatusBadRequest, "parsing batch request: %v", err)
		return
	}
	if len(req.Documents) == 0 {
		writeError(w, http.StatusBadRequest, "batch request has no documents")
		return
	}
	docs := make([]*xmltree.Document, len(req.Documents))
	for i, src := range req.Documents {
		doc, err := parseDocument([]byte(src))
		if err != nil {
			writeError(w, http.StatusBadRequest, "parsing document %d: %v", i, err)
			return
		}
		docs[i] = doc
	}
	results, err := h.src.AddBatchContext(r.Context(), docs)
	if err != nil {
		// The client went away mid-batch; scoring was cancelled and nothing
		// committed. Nobody reads this response, but access logs should not
		// record the abort as a server fault.
		writeError(w, statusClientClosedRequest, "batch cancelled: %v", err)
		return
	}
	resp := batchResponse{Results: make([]addResponse, len(results))}
	for i, res := range results {
		resp.Results[i] = addResponse{
			Classified:   res.Classified,
			DTD:          res.DTDName,
			Similarity:   res.Similarity,
			Evolved:      res.Evolved,
			Reclassified: res.Reclassified,
			Triggered:    res.Triggered,
		}
		if res.Classified {
			resp.Classified++
		} else {
			resp.Repository++
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (h *Handler) metrics(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, h.src.Metrics())
}

func (h *Handler) repository(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"size": h.src.RepositorySize()})
}

func (h *Handler) reclassify(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"recovered": h.src.ReclassifyRepository()})
}

func (h *Handler) putTriggers(w http.ResponseWriter, r *http.Request) {
	data, ok := readBody(w, r)
	if !ok {
		return
	}
	if err := h.src.SetTriggerRules(string(data)); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"rules": h.src.TriggerRules()})
}

func (h *Handler) getTriggers(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"rules": h.src.TriggerRules()})
}

func (h *Handler) snapshot(w http.ResponseWriter, _ *http.Request) {
	data, err := h.src.Snapshot()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "snapshot: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(data)
}
