// Package api exposes the source lifecycle over HTTP: the paper's scenario
// is a Web document source, and this handler turns the library into the
// long-lived service a downstream user would deploy — register DTDs, stream
// documents in, watch evolutions happen, manage triggers, checkpoint state.
//
// Routes (all JSON unless noted):
//
//	GET  /status                  per-DTD status + durability health (+ per-shard health)
//	GET  /dtds                    registered DTD names
//	PUT  /dtds/{name}?root=r      register/replace a DTD (body: DTD text)
//	GET  /dtds/{name}             current DTD (text/plain)
//	POST /dtds/{name}/evolve      force the evolution phase
//	POST /documents               classify+record one document (body: XML)
//	POST /documents?stream=1      same, via the bounded-memory one-pass path
//	                              (body streams straight into the parser; the
//	                              engine's MaxDocBytes budget replaces the
//	                              handler's body cap; sharded ingest needs
//	                              the routing-key header)
//	POST /documents/batch         batch ingest (body: {"documents": [xml, …], "keys": [k, …]})
//	GET  /repository              repository size
//	POST /repository/reclassify   re-classify the repository
//	PUT  /triggers                install trigger rules (body: rule list)
//	GET  /triggers                installed rules
//	GET  /metrics                 ingest counters and per-phase latencies (+ per-shard)
//	GET  /snapshot                JSON checkpoint of the whole source
//
// The handler serves any Engine: a single *source.Source (New) or a
// *shard.Router (NewEngine) that partitions documents across N independent
// shards by a routing key — the X-Doc-Key request header on
// POST /documents (configurable via Options.KeyHeader), the per-item
// "keys" array on POST /documents/batch, falling back to a content hash.
// Unsharded deployments ignore keys, so clients can always send them.
//
// Documents in a batch are scored concurrently (one read-lock section per
// shard, each document fanning out per DTD) and committed per shard in a
// single write-lock section, so a batch is both faster than and equivalent
// to the same documents POSTed one by one. A client that disconnects
// mid-batch cancels the remaining scoring work before anything commits.
//
// When the source's write-ahead log fails (disk full, dying device), the
// service degrades to read-only: every mutating route answers 503 with the
// sticky durability error, while reads — including GET /snapshot, the
// operator's escape hatch for saving state — keep working. Sharded, the
// blanket read-only gate engages only when EVERY shard is degraded; while
// some shards are healthy, requests touching a degraded shard answer 503
// individually (broadcast mutations like PUT /dtds need all shards), and
// GET /status reports the per-shard failures. See DESIGN.md §10 and §13.
package api

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"dtdevolve/internal/classify"
	"dtdevolve/internal/dtd"
	"dtdevolve/internal/evolve"
	"dtdevolve/internal/metrics"
	"dtdevolve/internal/shard"
	"dtdevolve/internal/source"
	"dtdevolve/internal/xmltree"
)

// maxBodyBytes bounds request bodies (documents, DTDs, rule lists). A
// variable so handler tests can exercise the limit without 16 MiB bodies.
var maxBodyBytes int64 = 16 << 20

// DefaultKeyHeader is the request header carrying the routing key of
// POST /documents when Options.KeyHeader is unset.
const DefaultKeyHeader = "X-Doc-Key"

// Engine is the lifecycle surface the handler serves: implemented by
// *shard.Router, and by sourceEngine for a single unsharded Source. The
// key parameters and per-shard results are no-ops on the single source.
type Engine interface {
	AddDTD(name string, d *dtd.DTD) error
	DTD(name string) *dtd.DTD
	Names() []string
	AddDocument(ctx context.Context, key string, doc *xmltree.Document) (source.AddResult, error)
	// AddDocumentStream ingests one document through the bounded-memory
	// one-pass path without materializing the tree. Sharded engines require
	// a non-empty key (shard.ErrStreamKeyRequired otherwise): the router
	// never sees the bytes, so there is no content-hash fallback.
	AddDocumentStream(ctx context.Context, key string, r io.Reader) (source.AddResult, error)
	AddBatchKeyed(ctx context.Context, keys []string, docs []*xmltree.Document) ([]source.AddResult, error)
	EvolveNow(name string) (evolve.Report, int, error)
	Reclassify() (int, error)
	RepositorySize() int
	SetTriggerRules(src string) error
	TriggerRules() []string
	Snapshot() ([]byte, error)
	Degraded() error
	DTDStatus() []source.DTDStatus
	// ShardStatuses returns per-shard health, nil for unsharded engines.
	ShardStatuses() []shard.ShardStatus
	// Metrics returns the rolled-up counters plus per-shard snapshots (nil
	// for unsharded engines, keeping the single-source JSON unchanged).
	Metrics() (metrics.IngestSnapshot, []metrics.IngestSnapshot)
}

// sourceEngine adapts one *source.Source to the Engine interface. Routing
// keys are ignored: there is nothing to route between.
type sourceEngine struct{ src *source.Source }

// SourceEngine wraps a single Source as an Engine, for callers composing
// their own handler options.
func SourceEngine(src *source.Source) Engine { return sourceEngine{src} }

func (e sourceEngine) AddDTD(name string, d *dtd.DTD) error {
	e.src.AddDTD(name, d)
	return nil
}
func (e sourceEngine) DTD(name string) *dtd.DTD { return e.src.DTD(name) }
func (e sourceEngine) Names() []string          { return e.src.Names() }
func (e sourceEngine) AddDocument(_ context.Context, _ string, doc *xmltree.Document) (source.AddResult, error) {
	return e.src.Add(doc), nil
}
func (e sourceEngine) AddDocumentStream(_ context.Context, _ string, r io.Reader) (source.AddResult, error) {
	return e.src.AddStream(r)
}
func (e sourceEngine) AddBatchKeyed(ctx context.Context, _ []string, docs []*xmltree.Document) ([]source.AddResult, error) {
	return e.src.AddBatchContext(ctx, docs)
}
func (e sourceEngine) EvolveNow(name string) (evolve.Report, int, error) {
	return e.src.EvolveNow(name)
}
func (e sourceEngine) Reclassify() (int, error)           { return e.src.ReclassifyRepository(), nil }
func (e sourceEngine) RepositorySize() int                { return e.src.RepositorySize() }
func (e sourceEngine) SetTriggerRules(src string) error   { return e.src.SetTriggerRules(src) }
func (e sourceEngine) TriggerRules() []string             { return e.src.TriggerRules() }
func (e sourceEngine) Snapshot() ([]byte, error)          { return e.src.Snapshot() }
func (e sourceEngine) Degraded() error                    { return e.src.Degraded() }
func (e sourceEngine) DTDStatus() []source.DTDStatus      { return e.src.Status() }
func (e sourceEngine) ShardStatuses() []shard.ShardStatus { return nil }
func (e sourceEngine) Metrics() (metrics.IngestSnapshot, []metrics.IngestSnapshot) {
	return e.src.Metrics(), nil
}

// Options tunes the handler.
type Options struct {
	// KeyHeader is the request header read as the routing key of
	// POST /documents; empty means DefaultKeyHeader.
	KeyHeader string
	// Replication, when set, is called on each GET /status and GET /metrics
	// and its result is embedded under "replication" in the response. The
	// value is opaque to the handler (any JSON-marshalable value): the
	// replication runtime — primary follower registry or follower lag —
	// injects its state without the api package depending on it.
	Replication func() any
}

// Handler serves the lifecycle API for one Engine.
type Handler struct {
	eng         Engine
	keyHeader   string
	replication func() any
	mux         *http.ServeMux
}

// New returns an http.Handler managing a single unsharded Source.
func New(src *source.Source) *Handler {
	return NewEngine(SourceEngine(src), Options{})
}

// NewEngine returns an http.Handler managing any Engine — pass a
// *shard.Router for the sharded service.
func NewEngine(eng Engine, opts Options) *Handler {
	if opts.KeyHeader == "" {
		opts.KeyHeader = DefaultKeyHeader
	}
	h := &Handler{eng: eng, keyHeader: opts.KeyHeader, replication: opts.Replication, mux: http.NewServeMux()}
	h.mux.HandleFunc("GET /status", h.status)
	h.mux.HandleFunc("GET /dtds", h.listDTDs)
	h.mux.HandleFunc("PUT /dtds/{name}", h.putDTD)
	h.mux.HandleFunc("GET /dtds/{name}", h.getDTD)
	h.mux.HandleFunc("POST /dtds/{name}/evolve", h.evolve)
	h.mux.HandleFunc("POST /documents", h.addDocument)
	h.mux.HandleFunc("POST /documents/batch", h.addBatch)
	h.mux.HandleFunc("GET /metrics", h.metrics)
	h.mux.HandleFunc("GET /repository", h.repository)
	h.mux.HandleFunc("POST /repository/reclassify", h.reclassify)
	h.mux.HandleFunc("PUT /triggers", h.putTriggers)
	h.mux.HandleFunc("GET /triggers", h.getTriggers)
	h.mux.HandleFunc("GET /snapshot", h.snapshot)
	return h
}

// statusClientClosedRequest is nginx's non-standard code for a client that
// disconnected before the response was produced.
const statusClientClosedRequest = 499

// ServeHTTP implements http.Handler. Mutating requests are refused with 503
// while the engine is degraded (a single source's write-ahead log stopped
// accepting records — or, sharded, every shard's did): the in-memory state
// could still change, but its durability can no longer be promised, and a
// lost-on-restart mutation acknowledged with 200 would be a silent lie.
// All routes mutate iff their method is not GET. Partially-degraded shard
// failures are mapped per request by writeEngineError.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		if err := h.eng.Degraded(); err != nil {
			writeError(w, http.StatusServiceUnavailable, "source degraded (read-only): %v", err)
			return
		}
	}
	h.mux.ServeHTTP(w, r)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

// writeEngineError maps an engine failure: a degraded shard answers 503
// (the mutation's durability cannot be promised there), anything else gets
// the caller's fallback status.
func writeEngineError(w http.ResponseWriter, err error, fallback int, context string) {
	var de *shard.DegradedError
	if errors.As(err, &de) {
		writeError(w, http.StatusServiceUnavailable, "%s: shard degraded (read-only): %v", context, err)
		return
	}
	writeError(w, fallback, "%s: %v", context, err)
}

func readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		// Only an over-limit body is 413; any other read failure (client
		// disconnect, malformed chunking) is the client's bad request.
		status := http.StatusBadRequest
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			status = http.StatusRequestEntityTooLarge
		}
		writeError(w, status, "reading body: %v", err)
		return nil, false
	}
	return data, true
}

// statusResponse is the JSON shape of GET /status: per-DTD state plus the
// service's durability health. Sharded, the DTD states are rolled up by
// name, degraded means "no shard left writable", and shards / a degraded
// shard count carry the per-shard detail.
type statusResponse struct {
	Degraded bool               `json:"degraded"`
	Error    string             `json:"error,omitempty"`
	DTDs     []source.DTDStatus `json:"dtds"`
	// DegradedShards counts shards currently read-only (omitted unsharded
	// and when all healthy).
	DegradedShards int `json:"degraded_shards,omitempty"`
	// Shards is the per-shard health and volume detail (sharded only).
	Shards []shard.ShardStatus `json:"shards,omitempty"`
	// Replication is the replication runtime's state (Options.Replication):
	// follower registry on a primary, per-shard lag on a follower.
	Replication any `json:"replication,omitempty"`
}

func (h *Handler) status(w http.ResponseWriter, _ *http.Request) {
	resp := statusResponse{DTDs: h.eng.DTDStatus(), Shards: h.eng.ShardStatuses()}
	if err := h.eng.Degraded(); err != nil {
		resp.Degraded = true
		resp.Error = err.Error()
	}
	for _, st := range resp.Shards {
		if st.Degraded {
			resp.DegradedShards++
		}
	}
	if h.replication != nil {
		resp.Replication = h.replication()
	}
	writeJSON(w, http.StatusOK, resp)
}

func (h *Handler) listDTDs(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"dtds": h.eng.Names()})
}

func (h *Handler) putDTD(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	data, ok := readBody(w, r)
	if !ok {
		return
	}
	d, err := dtd.ParseString(string(data))
	if err != nil {
		writeError(w, http.StatusBadRequest, "parsing DTD: %v", err)
		return
	}
	if root := r.URL.Query().Get("root"); root != "" {
		d.Name = root
	}
	if err := h.eng.AddDTD(name, d); err != nil {
		writeEngineError(w, err, http.StatusInternalServerError, "registering DTD")
		return
	}
	writeJSON(w, http.StatusCreated, map[string]any{"registered": name, "elements": len(d.Elements)})
}

func (h *Handler) getDTD(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	d := h.eng.DTD(name)
	if d == nil {
		writeError(w, http.StatusNotFound, "no DTD named %q", name)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = io.WriteString(w, d.String())
}

// evolveResponse is the JSON shape of a forced evolution.
type evolveResponse struct {
	Reclassified int             `json:"reclassified"`
	Changes      []elementChange `json:"changes"`
}

type elementChange struct {
	Name       string  `json:"name"`
	Action     string  `json:"action"`
	Invalidity float64 `json:"invalidity"`
	Old        string  `json:"old,omitempty"`
	New        string  `json:"new"`
}

func (h *Handler) evolve(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	report, reclassified, err := h.eng.EvolveNow(name)
	if err != nil {
		writeEngineError(w, err, http.StatusNotFound, "evolving")
		return
	}
	resp := evolveResponse{Reclassified: reclassified}
	for _, c := range report.Changes {
		resp.Changes = append(resp.Changes, elementChange{
			Name:       c.Name,
			Action:     c.Action.String(),
			Invalidity: c.Invalidity,
			Old:        c.Old,
			New:        c.New,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// addResponse is the JSON shape of a document classification.
type addResponse struct {
	Classified   bool     `json:"classified"`
	DTD          string   `json:"dtd,omitempty"`
	Similarity   float64  `json:"similarity"`
	Evolved      bool     `json:"evolved"`
	Reclassified int      `json:"reclassified,omitempty"`
	Triggered    []string `json:"triggered,omitempty"`
	// Candidates echoes the runner-up scores for single-document adds,
	// capped at maxEchoCandidates: the payload must stay O(1) in the size
	// of the registry, whatever the classifier scored.
	Candidates []classify.Candidate `json:"candidates,omitempty"`
}

// maxEchoCandidates caps how many scored candidates POST /documents echoes
// back. Batch responses omit candidates entirely.
const maxEchoCandidates = 5

// streamRequested reports whether the client asked for the one-pass
// streaming ingest (?stream=1 / ?stream=true on POST /documents).
func streamRequested(r *http.Request) bool {
	switch r.URL.Query().Get("stream") {
	case "1", "true":
		return true
	}
	return false
}

// writeStreamError maps a streaming-ingest failure onto a status: the byte
// budget is 413 like an over-limit buffered body, malformed XML is the
// client's 400, a missing routing key on a sharded engine is 400, and the
// bounded-mode refusals (no spool kept for the repository or for re-scoring
// after a DTD change) are 409 — the document was not ingested and the
// client should re-send it, buffered.
func writeStreamError(w http.ResponseWriter, err error) {
	var se *xmltree.SizeError
	var pe *xmltree.ParseError
	switch {
	case errors.As(err, &se):
		writeError(w, http.StatusRequestEntityTooLarge, "streaming document: %v", err)
	case errors.As(err, &pe):
		writeError(w, http.StatusBadRequest, "parsing document: %v", err)
	case errors.Is(err, shard.ErrStreamKeyRequired):
		writeError(w, http.StatusBadRequest, "streaming document: %v", err)
	case errors.Is(err, source.ErrStreamRepository), errors.Is(err, source.ErrStreamStale):
		writeError(w, http.StatusConflict, "streaming document: %v", err)
	default:
		writeEngineError(w, err, http.StatusInternalServerError, "streaming document")
	}
}

func (h *Handler) addDocument(w http.ResponseWriter, r *http.Request) {
	var res source.AddResult
	var err error
	if streamRequested(r) {
		// The body flows straight into the one-pass ingest: no read-side
		// buffer, no maxBodyBytes — the engine's MaxDocBytes budget is the
		// cap, enforced as the bytes stream (SizeError → 413).
		res, err = h.eng.AddDocumentStream(r.Context(), r.Header.Get(h.keyHeader), r.Body)
		if err != nil {
			writeStreamError(w, err)
			return
		}
	} else {
		data, ok := readBody(w, r)
		if !ok {
			return
		}
		doc, perr := parseDocument(data)
		if perr != nil {
			writeError(w, http.StatusBadRequest, "parsing document: %v", perr)
			return
		}
		res, err = h.eng.AddDocument(r.Context(), r.Header.Get(h.keyHeader), doc)
		if err != nil {
			writeEngineError(w, err, http.StatusInternalServerError, "adding document")
			return
		}
	}
	cands := res.Candidates
	if len(cands) > maxEchoCandidates {
		cands = cands[:maxEchoCandidates]
	}
	writeJSON(w, http.StatusOK, addResponse{
		Classified:   res.Classified,
		DTD:          res.DTDName,
		Similarity:   res.Similarity,
		Evolved:      res.Evolved,
		Reclassified: res.Reclassified,
		Triggered:    res.Triggered,
		Candidates:   cands,
	})
}

// batchRequest is the JSON body of POST /documents/batch. Keys, when
// present, must parallel Documents: keys[i] routes documents[i] to its
// shard (ignored by unsharded deployments, content-hash fallback when
// empty).
type batchRequest struct {
	Documents []string `json:"documents"`
	Keys      []string `json:"keys,omitempty"`
}

// batchResponse is the JSON shape of a batch ingest.
type batchResponse struct {
	Results    []addResponse `json:"results"`
	Classified int           `json:"classified"`
	Repository int           `json:"repository"`
}

func (h *Handler) addBatch(w http.ResponseWriter, r *http.Request) {
	data, ok := readBody(w, r)
	if !ok {
		return
	}
	var req batchRequest
	if err := json.Unmarshal(data, &req); err != nil {
		writeError(w, http.StatusBadRequest, "parsing batch request: %v", err)
		return
	}
	if len(req.Documents) == 0 {
		writeError(w, http.StatusBadRequest, "batch request has no documents")
		return
	}
	if len(req.Keys) != 0 && len(req.Keys) != len(req.Documents) {
		writeError(w, http.StatusBadRequest, "batch request has %d keys for %d documents", len(req.Keys), len(req.Documents))
		return
	}
	docs := make([]*xmltree.Document, len(req.Documents))
	for i, src := range req.Documents {
		doc, err := parseDocument([]byte(src))
		if err != nil {
			writeError(w, http.StatusBadRequest, "parsing document %d: %v", i, err)
			return
		}
		docs[i] = doc
	}
	results, err := h.eng.AddBatchKeyed(r.Context(), req.Keys, docs)
	if err != nil {
		// Either a shard refused the batch (degraded → 503) or the client
		// went away mid-batch; in the latter case scoring was cancelled and
		// nothing committed — nobody reads this response, but access logs
		// should not record the abort as a server fault.
		writeEngineError(w, err, statusClientClosedRequest, "batch cancelled")
		return
	}
	resp := batchResponse{Results: make([]addResponse, len(results))}
	for i, res := range results {
		resp.Results[i] = addResponse{
			Classified:   res.Classified,
			DTD:          res.DTDName,
			Similarity:   res.Similarity,
			Evolved:      res.Evolved,
			Reclassified: res.Reclassified,
			Triggered:    res.Triggered,
		}
		if res.Classified {
			resp.Classified++
		} else {
			resp.Repository++
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// shardedMetrics is the GET /metrics shape of a sharded engine: the
// rolled-up counters at the top level — field-compatible with the
// single-source shape, so dashboards keep working — plus the per-shard
// snapshots and, when a replication runtime is attached, its state.
type shardedMetrics struct {
	metrics.IngestSnapshot
	Shards      []metrics.IngestSnapshot `json:"shards,omitempty"`
	Replication any                      `json:"replication,omitempty"`
}

func (h *Handler) metrics(w http.ResponseWriter, _ *http.Request) {
	total, per := h.eng.Metrics()
	if per == nil && h.replication == nil {
		writeJSON(w, http.StatusOK, total)
		return
	}
	resp := shardedMetrics{IngestSnapshot: total, Shards: per}
	if h.replication != nil {
		resp.Replication = h.replication()
	}
	writeJSON(w, http.StatusOK, resp)
}

func (h *Handler) repository(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"size": h.eng.RepositorySize()})
}

func (h *Handler) reclassify(w http.ResponseWriter, _ *http.Request) {
	recovered, err := h.eng.Reclassify()
	if err != nil {
		writeEngineError(w, err, http.StatusInternalServerError, "reclassifying")
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"recovered": recovered})
}

func (h *Handler) putTriggers(w http.ResponseWriter, r *http.Request) {
	data, ok := readBody(w, r)
	if !ok {
		return
	}
	if err := h.eng.SetTriggerRules(string(data)); err != nil {
		writeEngineError(w, err, http.StatusBadRequest, "installing triggers")
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"rules": h.eng.TriggerRules()})
}

func (h *Handler) getTriggers(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"rules": h.eng.TriggerRules()})
}

func (h *Handler) snapshot(w http.ResponseWriter, _ *http.Request) {
	data, err := h.eng.Snapshot()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "snapshot: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(data)
}
