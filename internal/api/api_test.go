package api

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"dtdevolve/internal/source"
	"dtdevolve/internal/wal"
)

func newServer(t *testing.T) (*httptest.Server, *source.Source) {
	t.Helper()
	cfg := source.DefaultConfig()
	cfg.MinDocs = 5
	src := source.New(cfg)
	srv := httptest.NewServer(New(src))
	t.Cleanup(srv.Close)
	return srv, src
}

func do(t *testing.T, method, url, body string) (*http.Response, map[string]any) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	var out map[string]any
	if strings.HasPrefix(resp.Header.Get("Content-Type"), "application/json") {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("decoding %s %s: %v", method, url, err)
		}
	}
	return resp, out
}

const articleDTD = `
<!ELEMENT article (title, body)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT body (#PCDATA)>`

func TestRegisterAndFetchDTD(t *testing.T) {
	srv, _ := newServer(t)
	resp, out := do(t, "PUT", srv.URL+"/dtds/article?root=article", articleDTD)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("status = %d (%v)", resp.StatusCode, out)
	}
	if out["elements"].(float64) != 3 {
		t.Errorf("elements = %v", out["elements"])
	}
	resp, _ = do(t, "GET", srv.URL+"/dtds/article", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get status = %d", resp.StatusCode)
	}
	resp, out = do(t, "GET", srv.URL+"/dtds/missing", "")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("missing DTD status = %d (%v)", resp.StatusCode, out)
	}
	_, out = do(t, "GET", srv.URL+"/dtds", "")
	dtds := out["dtds"].([]any)
	if len(dtds) != 1 || dtds[0] != "article" {
		t.Errorf("dtds = %v", dtds)
	}
}

func TestRegisterInvalidDTD(t *testing.T) {
	srv, _ := newServer(t)
	resp, out := do(t, "PUT", srv.URL+"/dtds/x", "<!ELEMENT broken")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("status = %d (%v)", resp.StatusCode, out)
	}
}

func TestDocumentLifecycleOverHTTP(t *testing.T) {
	srv, src := newServer(t)
	do(t, "PUT", srv.URL+"/dtds/article?root=article", articleDTD)

	// A valid document classifies with similarity 1.
	resp, out := do(t, "POST", srv.URL+"/documents",
		`<article><title>t</title><body>b</body></article>`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if out["classified"] != true || out["dtd"] != "article" || out["similarity"].(float64) != 1 {
		t.Errorf("response = %v", out)
	}

	// Drifted documents eventually report evolved=true.
	evolved := false
	for i := 0; i < 20 && !evolved; i++ {
		_, out = do(t, "POST", srv.URL+"/documents",
			`<article><title>t</title><author>a</author><body>b</body></article>`)
		if out["evolved"] == true {
			evolved = true
		}
	}
	if !evolved {
		t.Fatal("no evolution over HTTP stream")
	}
	if src.DTD("article").Elements["author"] == nil {
		t.Error("server-side DTD lacks author")
	}

	// Status reflects it.
	req, _ := http.NewRequest("GET", srv.URL+"/status", nil)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var status struct {
		Degraded bool             `json:"degraded"`
		DTDs     []map[string]any `json:"dtds"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	if len(status.DTDs) != 1 || status.DTDs[0]["Evolutions"].(float64) < 1 {
		t.Errorf("status = %v", status)
	}
	if status.Degraded {
		t.Error("healthy server reports degraded")
	}
}

func TestBadDocumentRejected(t *testing.T) {
	srv, _ := newServer(t)
	resp, out := do(t, "POST", srv.URL+"/documents", "<broken")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("status = %d (%v)", resp.StatusCode, out)
	}
}

func TestRepositoryEndpoints(t *testing.T) {
	srv, _ := newServer(t)
	do(t, "PUT", srv.URL+"/dtds/article?root=article", articleDTD)
	do(t, "POST", srv.URL+"/documents", `<alien><x/></alien>`)
	_, out := do(t, "GET", srv.URL+"/repository", "")
	if out["size"].(float64) != 1 {
		t.Errorf("repository = %v", out)
	}
	_, out = do(t, "POST", srv.URL+"/repository/reclassify", "")
	if out["recovered"].(float64) != 0 {
		t.Errorf("recovered = %v", out)
	}
}

func TestForceEvolveEndpoint(t *testing.T) {
	srv, _ := newServer(t)
	do(t, "PUT", srv.URL+"/dtds/article?root=article", articleDTD)
	for i := 0; i < 3; i++ {
		do(t, "POST", srv.URL+"/documents",
			`<article><title>t</title><author>a</author><body>b</body></article>`)
	}
	resp, out := do(t, "POST", srv.URL+"/dtds/article/evolve", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d (%v)", resp.StatusCode, out)
	}
	changes := out["changes"].([]any)
	found := false
	for _, c := range changes {
		m := c.(map[string]any)
		if m["name"] == "article" && m["action"] == "rebuilt" {
			found = true
		}
	}
	if !found {
		t.Errorf("changes = %v", changes)
	}
	resp, _ = do(t, "POST", srv.URL+"/dtds/missing/evolve", "")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("missing evolve status = %d", resp.StatusCode)
	}
}

func TestTriggerEndpoints(t *testing.T) {
	srv, _ := newServer(t)
	do(t, "PUT", srv.URL+"/dtds/article?root=article", articleDTD)
	resp, out := do(t, "PUT", srv.URL+"/triggers",
		"on article when docs >= 2 and check_ratio > 0.1 do evolve")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d (%v)", resp.StatusCode, out)
	}
	_, out = do(t, "GET", srv.URL+"/triggers", "")
	if rules := out["rules"].([]any); len(rules) != 1 {
		t.Errorf("rules = %v", rules)
	}
	resp, _ = do(t, "PUT", srv.URL+"/triggers", "on broken")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad rule status = %d", resp.StatusCode)
	}
	// The installed rule drives evolution through document POSTs.
	evolved := false
	for i := 0; i < 10 && !evolved; i++ {
		_, out = do(t, "POST", srv.URL+"/documents",
			`<article><title>t</title><author>a</author><body>b</body></article>`)
		if trig, ok := out["triggered"].([]any); ok && len(trig) > 0 {
			evolved = true
		}
	}
	if !evolved {
		t.Error("trigger rule never fired over HTTP")
	}
}

func TestSnapshotEndpoint(t *testing.T) {
	srv, _ := newServer(t)
	do(t, "PUT", srv.URL+"/dtds/article?root=article", articleDTD)
	do(t, "POST", srv.URL+"/documents", `<article><title>t</title><body>b</body></article>`)
	resp, err := http.Get(srv.URL + "/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if _, ok := snap["dtds"]; !ok {
		t.Errorf("snapshot missing dtds: %v", snap)
	}
}

// TestMetricsGroupCommitFields pins the GET /metrics fields added with the
// group-commit pipeline: the group-size distribution, the commit-queue
// depth gauge, and the amortized fsync cost per document.
func TestMetricsGroupCommitFields(t *testing.T) {
	cfg := source.DefaultConfig()
	src := source.New(cfg)
	src.EnableGroupCommit(source.GroupCommitOptions{})
	w, err := wal.Open(t.TempDir(), wal.Options{Sync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	src.AttachWAL(w)
	t.Cleanup(func() { src.CloseWAL() })
	srv := httptest.NewServer(New(src))
	t.Cleanup(srv.Close)

	do(t, "PUT", srv.URL+"/dtds/article?root=article", articleDTD)
	batch := `{"documents": [
		"<article><title>t</title><body>b</body></article>",
		"<article><title>u</title><body>c</body></article>",
		"<article><title>v</title><body>d</body></article>",
		"<article><title>w</title><body>e</body></article>"
	]}`
	if resp, out := do(t, "POST", srv.URL+"/documents/batch", batch); resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d (%v)", resp.StatusCode, out)
	}

	resp, m := do(t, "GET", srv.URL+"/metrics", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status = %d", resp.StatusCode)
	}
	// The queue depth gauge is always present (0 when idle).
	if _, ok := m["commit_queue_depth"]; !ok {
		t.Errorf("metrics missing commit_queue_depth: %v", m)
	}
	// One four-document batch through the queue is one group of four.
	for field, want := range map[string]float64{
		"wal_groups":          1,
		"wal_group_size_min":  4,
		"wal_group_size_mean": 4,
		"wal_group_size_max":  4,
	} {
		if got, ok := m[field].(float64); !ok || got != want {
			t.Errorf("metrics[%q] = %v, want %v", field, m[field], want)
		}
	}
	// Two fsyncs (dtd registration + the group) over four documents.
	if got, ok := m["fsyncs_per_doc"].(float64); !ok || got >= 1 {
		t.Errorf("metrics[fsyncs_per_doc] = %v, want < 1 (group amortization)", m["fsyncs_per_doc"])
	}
}
