package api

import (
	"bytes"

	"dtdevolve/internal/xmltree"
)

// parseDocument parses an XML request body.
func parseDocument(data []byte) (*xmltree.Document, error) {
	return xmltree.Parse(bytes.NewReader(data))
}
