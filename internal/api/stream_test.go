package api

// Tests for POST /documents?stream=1 — the bounded-memory one-pass ingest
// mode — and its error mapping (413 oversize, 400 malformed / missing
// shard key, 409 bounded-mode refusal), plus the stream counters pinned in
// GET /metrics.

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"dtdevolve/internal/source"
)

const articleXML = `<article><title>t</title><body>b</body></article>`

func TestStreamDocumentEndpoint(t *testing.T) {
	srv, _ := newServer(t)
	if resp, out := do(t, "PUT", srv.URL+"/dtds/article?root=article", articleDTD); resp.StatusCode != http.StatusCreated {
		t.Fatalf("put dtd: %d (%v)", resp.StatusCode, out)
	}
	resp, buffered := do(t, "POST", srv.URL+"/documents", articleXML)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("buffered post: %d (%v)", resp.StatusCode, buffered)
	}
	resp, streamed := do(t, "POST", srv.URL+"/documents?stream=1", articleXML)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("streamed post: %d (%v)", resp.StatusCode, streamed)
	}
	// Same response shape and content as the buffered path.
	for _, k := range []string{"classified", "dtd", "similarity"} {
		if buffered[k] != streamed[k] {
			t.Errorf("%s: buffered %v != streamed %v", k, buffered[k], streamed[k])
		}
	}
	if streamed["classified"] != true {
		t.Errorf("streamed document not classified: %v", streamed)
	}

	// The stream counters must be pinned in GET /metrics — and count only
	// the streamed ingest, not the buffered one.
	resp, m := do(t, "GET", srv.URL+"/metrics", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d", resp.StatusCode)
	}
	if got := m["stream_docs"]; got != float64(1) {
		t.Errorf("stream_docs = %v, want 1", got)
	}
	if got, ok := m["stream_bytes"].(float64); !ok || got < float64(len(articleXML)) {
		t.Errorf("stream_bytes = %v, want >= %d", m["stream_bytes"], len(articleXML))
	}
	if m["added"] != float64(2) {
		t.Errorf("added = %v, want 2", m["added"])
	}
}

func TestStreamDocumentOversize413(t *testing.T) {
	cfg := source.DefaultConfig()
	cfg.MaxDocBytes = 64
	src := source.New(cfg)
	srv := httptest.NewServer(New(src))
	t.Cleanup(srv.Close)
	if resp, out := do(t, "PUT", srv.URL+"/dtds/article?root=article", articleDTD); resp.StatusCode != http.StatusCreated {
		t.Fatalf("put dtd: %d (%v)", resp.StatusCode, out)
	}
	big := "<article>" + strings.Repeat("<title>x</title>", 50) + "</article>"
	resp, out := do(t, "POST", srv.URL+"/documents?stream=1", big)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversize stream: %d (%v), want 413", resp.StatusCode, out)
	}
	_, m := do(t, "GET", srv.URL+"/metrics", "")
	if m["stream_rejected_oversize"] != float64(1) {
		t.Errorf("stream_rejected_oversize = %v, want 1", m["stream_rejected_oversize"])
	}
}

func TestStreamDocumentMalformed400(t *testing.T) {
	srv, _ := newServer(t)
	resp, out := do(t, "POST", srv.URL+"/documents?stream=1", "<open><unclosed>")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed stream: %d (%v), want 400", resp.StatusCode, out)
	}
}

func TestStreamDocumentBoundedRepository409(t *testing.T) {
	// No WAL, no store: an unclassifiable streamed document has no spooled
	// bytes left for the repository — the handler reports 409 so the client
	// re-sends buffered.
	srv, _ := newServer(t)
	if resp, out := do(t, "PUT", srv.URL+"/dtds/article?root=article", articleDTD); resp.StatusCode != http.StatusCreated {
		t.Fatalf("put dtd: %d (%v)", resp.StatusCode, out)
	}
	resp, out := do(t, "POST", srv.URL+"/documents?stream=1", "<unrelated><x/></unrelated>")
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("bounded repository: %d (%v), want 409", resp.StatusCode, out)
	}
	// The buffered path still accepts it into the repository.
	if resp, out := do(t, "POST", srv.URL+"/documents", "<unrelated><x/></unrelated>"); resp.StatusCode != http.StatusOK {
		t.Fatalf("buffered fallback: %d (%v)", resp.StatusCode, out)
	}
	if _, out := do(t, "GET", srv.URL+"/repository", ""); out["size"] != float64(1) {
		t.Errorf("repository size = %v, want 1", out["size"])
	}
}

func TestStreamDocumentShardedNeedsKey(t *testing.T) {
	srv, r := newShardedServer(t, 4)
	if resp, out := do(t, "PUT", srv.URL+"/dtds/article?root=article", articleDTD); resp.StatusCode != http.StatusCreated {
		t.Fatalf("put dtd: %d (%v)", resp.StatusCode, out)
	}
	// No key: the router cannot content-hash a stream it never buffers.
	resp, out := do(t, "POST", srv.URL+"/documents?stream=1", articleXML)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("keyless sharded stream: %d (%v), want 400", resp.StatusCode, out)
	}
	// With a key it lands on exactly the routed shard.
	target := 2
	key := shardKey(t, r, target)
	req, err := http.NewRequest("POST", srv.URL+"/documents?stream=1", strings.NewReader(articleXML))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(DefaultKeyHeader, key)
	hresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("keyed sharded stream: %d", hresp.StatusCode)
	}
	for i := 0; i < r.Shards(); i++ {
		want := int64(0)
		if i == target {
			want = 1
		}
		if got := r.Shard(i).Metrics().StreamDocs; got != want {
			t.Errorf("shard %d stream_docs = %d, want %d", i, got, want)
		}
	}
}
