// Package gen generates synthetic XML workloads: valid document instances
// of a DTD, controlled structural mutations (the paper's three regularity
// classes: missing declared elements, novel elements, operator violations),
// schema drift, and random DTD sets.
//
// The paper evaluated on Web-gathered corpora that are unavailable; this
// generator is the documented substitution (DESIGN.md §4). Everything is
// deterministic under a seed.
package gen

import (
	"fmt"
	"math/rand"

	"dtdevolve/internal/dtd"
	"dtdevolve/internal/xmltree"
)

// Config controls generation.
type Config struct {
	// Seed makes the generator deterministic.
	Seed int64
	// OptProb is the probability that optional content (?, and the zero
	// case of *) is emitted.
	OptProb float64
	// MaxRepeat bounds how many instances a * or + emits.
	MaxRepeat int
	// MaxDepth bounds recursion for cyclic DTDs.
	MaxDepth int
	// NovelTags is the pool of tags used for inserted novel elements.
	NovelTags []string
}

// DefaultConfig returns the configuration used by the evaluation harness.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:      seed,
		OptProb:   0.5,
		MaxRepeat: 3,
		MaxDepth:  12,
		NovelTags: []string{"novel", "extra", "annex", "note"},
	}
}

// Generator produces documents and DTDs.
type Generator struct {
	cfg Config
	r   *rand.Rand
}

// New returns a Generator for the configuration.
func New(cfg Config) *Generator {
	if cfg.MaxRepeat <= 0 {
		cfg.MaxRepeat = 3
	}
	if cfg.MaxDepth <= 0 {
		cfg.MaxDepth = 12
	}
	if cfg.OptProb <= 0 {
		cfg.OptProb = 0.5
	}
	if len(cfg.NovelTags) == 0 {
		cfg.NovelTags = []string{"novel"}
	}
	return &Generator{cfg: cfg, r: rand.New(rand.NewSource(cfg.Seed))}
}

// Document generates one valid instance of the DTD, rooted at the DTD's
// root element.
func (g *Generator) Document(d *dtd.DTD) *xmltree.Document {
	rootName, _ := d.Root()
	root := g.element(d, rootName, 0)
	return &xmltree.Document{Root: root}
}

// Documents generates n valid instances.
func (g *Generator) Documents(d *dtd.DTD, n int) []*xmltree.Document {
	out := make([]*xmltree.Document, n)
	for i := range out {
		out[i] = g.Document(d)
	}
	return out
}

func (g *Generator) element(d *dtd.DTD, name string, depth int) *xmltree.Node {
	n := xmltree.NewElement(name)
	model, ok := d.Elements[name]
	if !ok || depth >= g.cfg.MaxDepth {
		return n
	}
	n.Children = g.instantiate(d, model, depth)
	return n
}

func (g *Generator) instantiate(d *dtd.DTD, model *dtd.Content, depth int) []*xmltree.Node {
	switch model.Kind {
	case dtd.Empty:
		return nil
	case dtd.Any:
		return []*xmltree.Node{xmltree.NewText("any")}
	case dtd.PCDATA:
		return []*xmltree.Node{xmltree.NewText(g.text())}
	case dtd.Name:
		return []*xmltree.Node{g.element(d, model.Name, depth+1)}
	case dtd.Seq:
		var out []*xmltree.Node
		for _, ch := range model.Children {
			out = append(out, g.instantiate(d, ch, depth)...)
		}
		return out
	case dtd.Choice:
		pick := model.Children[g.r.Intn(len(model.Children))]
		if pick.Kind == dtd.PCDATA {
			return []*xmltree.Node{xmltree.NewText(g.text())}
		}
		return g.instantiate(d, pick, depth)
	case dtd.Opt:
		if g.r.Float64() < g.cfg.OptProb {
			return g.instantiate(d, model.Children[0], depth)
		}
		return nil
	case dtd.Star:
		reps := 0
		if g.r.Float64() < g.cfg.OptProb {
			reps = 1 + g.r.Intn(g.cfg.MaxRepeat)
		}
		return g.repeat(d, model.Children[0], depth, reps)
	case dtd.Plus:
		return g.repeat(d, model.Children[0], depth, 1+g.r.Intn(g.cfg.MaxRepeat))
	default:
		return nil
	}
}

func (g *Generator) repeat(d *dtd.DTD, model *dtd.Content, depth, reps int) []*xmltree.Node {
	var out []*xmltree.Node
	for i := 0; i < reps; i++ {
		out = append(out, g.instantiate(d, model, depth)...)
	}
	return out
}

var words = []string{"alpha", "beta", "gamma", "delta", "omega", "vector", "matrix", "tuple"}

func (g *Generator) text() string {
	return words[g.r.Intn(len(words))]
}

// Mutation identifies one structural mutation class from the paper §2.
type Mutation int

const (
	// MissingElement removes one child element (the paper's "some
	// documents miss some elements specified in the DTD").
	MissingElement Mutation = iota
	// NovelElement inserts an element not defined in the DTD.
	NovelElement
	// DuplicateElement duplicates a child, violating non-repeatable
	// operators.
	DuplicateElement
	// ReorderElements swaps two children, violating sequence order.
	ReorderElements
	numMutations
)

// String returns the mutation class name.
func (m Mutation) String() string {
	switch m {
	case MissingElement:
		return "missing-element"
	case NovelElement:
		return "novel-element"
	case DuplicateElement:
		return "duplicate-element"
	case ReorderElements:
		return "reorder-elements"
	default:
		return fmt.Sprintf("Mutation(%d)", int(m))
	}
}

// Mutate returns a copy of the document with k random mutations applied.
func (g *Generator) Mutate(doc *xmltree.Document, k int) *xmltree.Document {
	root := doc.Root.Clone()
	for i := 0; i < k; i++ {
		g.mutateOnce(root, Mutation(g.r.Intn(int(numMutations))))
	}
	return &xmltree.Document{Root: root}
}

// MutateWith returns a copy with one specific mutation applied.
func (g *Generator) MutateWith(doc *xmltree.Document, m Mutation) *xmltree.Document {
	root := doc.Root.Clone()
	g.mutateOnce(root, m)
	return &xmltree.Document{Root: root}
}

func (g *Generator) mutateOnce(root *xmltree.Node, m Mutation) {
	var elems []*xmltree.Node
	root.Walk(func(n *xmltree.Node, _ int) bool {
		if n.IsElement() {
			elems = append(elems, n)
		}
		return true
	})
	n := elems[g.r.Intn(len(elems))]
	switch m {
	case MissingElement:
		if idx, ok := g.randomElementChild(n); ok {
			n.Children = append(n.Children[:idx], n.Children[idx+1:]...)
		}
	case NovelElement:
		tag := g.cfg.NovelTags[g.r.Intn(len(g.cfg.NovelTags))]
		child := xmltree.NewElement(tag, xmltree.NewText(g.text()))
		pos := 0
		if len(n.Children) > 0 {
			pos = g.r.Intn(len(n.Children) + 1)
		}
		n.Children = append(n.Children[:pos], append([]*xmltree.Node{child}, n.Children[pos:]...)...)
	case DuplicateElement:
		if idx, ok := g.randomElementChild(n); ok {
			dup := n.Children[idx].Clone()
			n.Children = append(n.Children[:idx], append([]*xmltree.Node{dup}, n.Children[idx:]...)...)
		}
	case ReorderElements:
		if len(n.Children) >= 2 {
			i, j := g.r.Intn(len(n.Children)), g.r.Intn(len(n.Children))
			n.Children[i], n.Children[j] = n.Children[j], n.Children[i]
		}
	}
}

func (g *Generator) randomElementChild(n *xmltree.Node) (int, bool) {
	var idxs []int
	for i, c := range n.Children {
		if c.IsElement() {
			idxs = append(idxs, i)
		}
	}
	if len(idxs) == 0 {
		return 0, false
	}
	return idxs[g.r.Intn(len(idxs))], true
}

// MutatedDocuments generates n documents from the DTD, applying k mutations
// to each with probability rate.
func (g *Generator) MutatedDocuments(d *dtd.DTD, n, k int, rate float64) []*xmltree.Document {
	out := make([]*xmltree.Document, n)
	for i := range out {
		doc := g.Document(d)
		if g.r.Float64() < rate {
			doc = g.Mutate(doc, k)
		}
		out[i] = doc
	}
	return out
}

// Drift produces a drifted copy of the DTD: the ground truth itself
// changes, and subsequent documents follow the new schema. Applied drift
// operations mirror the paper's regularity classes: a new optional or
// required element appears under a random declaration, an element becomes
// repeatable, or an alternative is added.
func (g *Generator) Drift(d *dtd.DTD, ops int) *dtd.DTD {
	out := d.Clone()
	for i := 0; i < ops; i++ {
		g.driftOnce(out, i)
	}
	return out
}

func (g *Generator) driftOnce(d *dtd.DTD, salt int) {
	name := d.Order[g.r.Intn(len(d.Order))]
	model := d.Elements[name]
	switch g.r.Intn(3) {
	case 0: // new element appended to the content
		tag := fmt.Sprintf("drift%d", salt)
		d.Declare(tag, dtd.NewPCDATA())
		switch model.Kind {
		case dtd.Empty, dtd.PCDATA, dtd.Any:
			d.Elements[name] = dtd.NewName(tag)
		default:
			d.Elements[name] = dtd.NewSeq(model, dtd.NewName(tag))
		}
	case 1: // an element becomes repeatable
		if model.Kind == dtd.Seq && len(model.Children) > 0 {
			i := g.r.Intn(len(model.Children))
			if model.Children[i].Kind == dtd.Name {
				model.Children[i] = dtd.NewPlus(model.Children[i])
			}
		}
	case 2: // a new alternative for the whole content
		tag := fmt.Sprintf("alt%d", salt)
		d.Declare(tag, dtd.NewPCDATA())
		switch model.Kind {
		case dtd.Empty, dtd.PCDATA, dtd.Any:
			d.Elements[name] = dtd.NewName(tag)
		default:
			d.Elements[name] = dtd.NewChoice(model, dtd.NewName(tag))
		}
	}
	d.Elements[name] = dtd.Rewrite(d.Elements[name])
}

// RandomDTD builds a random DTD with the given root name and roughly size
// element declarations, for classification experiments over DTD sets.
func (g *Generator) RandomDTD(root string, size int) *dtd.DTD {
	if size < 1 {
		size = 1
	}
	d := dtd.NewDTD(root)
	names := make([]string, size)
	for i := range names {
		names[i] = fmt.Sprintf("%s_e%d", root, i)
	}
	// The root always has element content over the first few names.
	d.Declare(root, g.randomModel(names, 0))
	for _, n := range names {
		if g.r.Intn(3) == 0 {
			d.Declare(n, g.randomModel(names, 2))
		} else {
			d.Declare(n, dtd.NewPCDATA())
		}
	}
	return dtd.RewriteDTD(d)
}

func (g *Generator) randomModel(names []string, depth int) *dtd.Content {
	if depth >= 3 {
		return dtd.NewName(names[g.r.Intn(len(names))])
	}
	switch g.r.Intn(5) {
	case 0:
		return dtd.NewOpt(g.randomModel(names, depth+1))
	case 1:
		k := 2 + g.r.Intn(3)
		kids := make([]*dtd.Content, k)
		for i := range kids {
			kids[i] = g.randomModel(names, depth+1)
		}
		return dtd.NewSeq(kids...)
	case 2:
		k := 2 + g.r.Intn(2)
		kids := make([]*dtd.Content, k)
		for i := range kids {
			kids[i] = g.randomModel(names, depth+1)
		}
		return dtd.NewChoice(kids...)
	case 3:
		return dtd.NewStar(g.randomModel(names, depth+1))
	default:
		return dtd.NewName(names[g.r.Intn(len(names))])
	}
}
