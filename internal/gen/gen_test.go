package gen

import (
	"testing"

	"dtdevolve/internal/dtd"
	"dtdevolve/internal/validate"
	"dtdevolve/internal/xmltree"
)

var testDTD = func() *dtd.DTD {
	d := dtd.MustParse(`
<!ELEMENT doc (head, section+)>
<!ELEMENT head (title, meta*)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT meta EMPTY>
<!ELEMENT section (heading?, (para | list)*)>
<!ELEMENT heading (#PCDATA)>
<!ELEMENT para (#PCDATA)>
<!ELEMENT list (item+)>
<!ELEMENT item (#PCDATA)>`)
	d.Name = "doc"
	return d
}()

func TestGeneratedDocumentsAreValid(t *testing.T) {
	g := New(DefaultConfig(1))
	v := validate.New(testDTD)
	for i, doc := range g.Documents(testDTD, 200) {
		if vs := v.ValidateDocument(doc); len(vs) != 0 {
			t.Fatalf("doc %d invalid: %v\n%s", i, vs, doc.Root.Indent())
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a := New(DefaultConfig(42)).Documents(testDTD, 20)
	b := New(DefaultConfig(42)).Documents(testDTD, 20)
	for i := range a {
		if !a[i].Root.Equal(b[i].Root) {
			t.Fatalf("doc %d differs across same-seed generators", i)
		}
	}
	c := New(DefaultConfig(43)).Documents(testDTD, 20)
	same := true
	for i := range a {
		if !a[i].Root.Equal(c[i].Root) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical corpora")
	}
}

func TestMutationsBreakValidity(t *testing.T) {
	g := New(DefaultConfig(7))
	v := validate.New(testDTD)
	broken := 0
	const n = 100
	for i := 0; i < n; i++ {
		doc := g.Mutate(g.Document(testDTD), 2)
		if len(v.ValidateDocument(doc)) > 0 {
			broken++
		}
	}
	// Mutations are random; a duplicate under * stays valid, but most
	// double mutations must break validity.
	if broken < n/2 {
		t.Errorf("only %d/%d mutated docs invalid", broken, n)
	}
}

func TestMutateDoesNotTouchOriginal(t *testing.T) {
	g := New(DefaultConfig(3))
	doc := g.Document(testDTD)
	before := doc.Root.String()
	for i := 0; i < 20; i++ {
		g.Mutate(doc, 3)
	}
	if doc.Root.String() != before {
		t.Error("Mutate modified the original document")
	}
}

func TestMutateWithNovelElement(t *testing.T) {
	g := New(DefaultConfig(5))
	doc := g.MutateWith(g.Document(testDTD), NovelElement)
	found := false
	doc.Root.Walk(func(n *xmltree.Node, _ int) bool {
		for _, tag := range DefaultConfig(0).NovelTags {
			if n.Name == tag {
				found = true
			}
		}
		return true
	})
	if !found {
		t.Error("novel element not inserted")
	}
}

func TestMutationString(t *testing.T) {
	for m, want := range map[Mutation]string{
		MissingElement: "missing-element", NovelElement: "novel-element",
		DuplicateElement: "duplicate-element", ReorderElements: "reorder-elements",
	} {
		if m.String() != want {
			t.Errorf("%d.String() = %q", int(m), m.String())
		}
	}
}

func TestMutatedDocumentsRate(t *testing.T) {
	g := New(DefaultConfig(11))
	v := validate.New(testDTD)
	docs := g.MutatedDocuments(testDTD, 200, 1, 0.0)
	for _, doc := range docs {
		if len(v.ValidateDocument(doc)) != 0 {
			t.Fatal("rate 0 must generate only valid documents")
		}
	}
	docs = g.MutatedDocuments(testDTD, 200, 2, 1.0)
	invalid := 0
	for _, doc := range docs {
		if len(v.ValidateDocument(doc)) != 0 {
			invalid++
		}
	}
	if invalid == 0 {
		t.Error("rate 1 produced no invalid documents")
	}
}

func TestDriftProducesParsableEvolvingSchema(t *testing.T) {
	g := New(DefaultConfig(17))
	drifted := g.Drift(testDTD, 5)
	if drifted.Equal(testDTD) {
		t.Error("drift produced an identical DTD")
	}
	// The drifted DTD must be serializable and reparsable.
	if _, err := dtd.ParseString(drifted.String()); err != nil {
		t.Fatalf("drifted DTD does not reparse: %v\n%s", err, drifted)
	}
	// Documents generated from the drifted DTD are valid for it.
	v := validate.New(drifted)
	for _, doc := range g.Documents(drifted, 50) {
		if vs := v.ValidateDocument(doc); len(vs) != 0 {
			t.Fatalf("drifted doc invalid for drifted DTD: %v", vs)
		}
	}
	// Original DTD must not be mutated.
	if !testDTD.Equal(testDTD.Clone()) {
		t.Error("sanity")
	}
}

func TestRandomDTDGeneratesUsableSchemas(t *testing.T) {
	g := New(DefaultConfig(23))
	for i := 0; i < 10; i++ {
		d := g.RandomDTD("root", 6)
		if _, err := dtd.ParseString(d.String()); err != nil {
			t.Fatalf("random DTD does not reparse: %v\n%s", err, d)
		}
		v := validate.New(d)
		for _, doc := range g.Documents(d, 10) {
			if vs := v.ValidateDocument(doc); len(vs) != 0 {
				t.Fatalf("random-DTD doc invalid: %v\nDTD:\n%s", vs, d)
			}
		}
	}
}

func TestRecursiveDTDGenerationTerminates(t *testing.T) {
	d := dtd.MustParse(`<!ELEMENT tree (tree, tree) > <!ELEMENT leaf EMPTY>`)
	d.Name = "tree"
	cfg := DefaultConfig(1)
	cfg.MaxDepth = 5
	g := New(cfg)
	doc := g.Document(d)
	if doc.Root.Depth() > 6 {
		t.Errorf("depth = %d, want capped", doc.Root.Depth())
	}
}
