// Package replicate ships the write-ahead log from a primary dtdevolve
// service to follower replicas and replays it there (DESIGN.md §14).
//
// The design is pull-based WAL shipping over HTTP. The primary exposes a
// small protocol under /replication/v1/: its shard layout (manifest
// parameters), each shard's latest checkpoint, a listing of each shard's
// WAL segments with their durable sizes, CRC-protected byte ranges of any
// segment (sealed segments whole, the active segment up to its
// fsync-durable prefix — a follower can never apply bytes the primary
// could still lose in a crash), and an acknowledgment endpoint. A follower
// bootstraps from the primary's checkpoint, then tails each shard's
// segment stream: fetched bytes are appended to a local mirror of the
// primary's directory layout (manifest + shard-NNN/wal-*.log +
// checkpoint-NNN.json, so a promoted follower directory is directly
// recoverable by the ordinary startup path) and complete frames are
// applied through source.ApplyWALRecord in shipped order. Because the
// primary journals every state-changing decision — including
// auto-evolutions and trigger firings — as its own logical record, replay
// is exact and the follower's state is byte-identical to the primary's at
// every segment boundary.
//
// Acknowledgments gate the primary's WAL GC: checkpoint-time truncation
// keeps every segment at or above the lowest unacknowledged position of
// any live follower (source.SetWALRetention), so retention can never
// delete an unshipped segment. Followers that vanish stop pinning GC
// after a TTL; a follower that returns after its history was collected
// detects the gap and reports resync-required (restart re-bootstraps it
// from the current checkpoint). Transient failures — primary down,
// connection resets, CRC mismatches in transit — are retried with
// jittered exponential backoff; corruption that survives into a local
// segment is quarantined and refetched from the last applied boundary,
// never applied.
//
// dtdvet:strict errsync
//
// Tailer goroutines must be tied to the follower's stop channel and
// WaitGroup, and every retry loop must back off with a growing, jittered
// delay — a fleet of followers on a fixed cadence reconnects in lockstep.
// dtdvet:strict golife
// dtdvet:retry
package replicate

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// protocolVersion is the wire version of the shipping protocol; it is also
// baked into the URL prefix so incompatible revisions cannot half-work.
const protocolVersion = 1

// pathPrefix is where the primary's handler lives, relative to the
// server root the primary is mounted on.
const pathPrefix = "/replication/v1/"

// segmentInfo describes one shippable WAL segment of a shard, as listed by
// GET /replication/v1/segments.
type segmentInfo struct {
	// Seq is the segment's sequence number.
	Seq uint64 `json:"seq"`
	// Size is the segment's current size in bytes.
	Size int64 `json:"size"`
	// Durable is the prefix length a follower may fetch and apply: the
	// whole file for sealed segments, the fsync-covered prefix for the
	// active one.
	Durable int64 `json:"durable"`
	// Sealed reports the segment will never grow again.
	Sealed bool `json:"sealed"`
}

// infoResponse is the primary's layout, served at
// GET /replication/v1/info; a follower mirrors it into its local manifest
// and refuses to run against a primary whose layout changed.
type infoResponse struct {
	Version int    `json:"version"`
	Shards  int    `json:"shards"`
	Seed    uint64 `json:"seed"`
	// Sharded reports the primary serves through a shard router (even a
	// one-shard one). The follower mirrors it so the merged /snapshot shape
	// — bare source vs. router envelope — matches the primary byte for byte.
	Sharded bool `json:"sharded"`
}

// crcHeader carries the CRC32-C of a segment chunk response body, so a
// follower rejects bytes mangled in transit before the frame-level CRC
// ever sees them.
const crcHeader = "X-Replication-Crc"

// writeJSON writes v as a JSON response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError writes the api-style JSON error body.
func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}
