package replicate

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dtdevolve/internal/api"
	"dtdevolve/internal/dtd"
	"dtdevolve/internal/shard"
	"dtdevolve/internal/source"
	"dtdevolve/internal/wal"
	"dtdevolve/internal/xmltree"
)

func testCfg() source.Config {
	cfg := source.DefaultConfig()
	cfg.MinDocs = 5
	return cfg
}

func articleDTD() *dtd.DTD {
	d := dtd.MustParse(`
<!ELEMENT article (title, body)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT body (#PCDATA)>`)
	d.Name = "article"
	return d
}

func parseDoc(t *testing.T, src string) *xmltree.Document {
	t.Helper()
	doc, err := xmltree.ParseString(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return doc
}

var docShapes = []string{
	`<article><title>t</title><body>b</body></article>`,
	`<article><title>t</title><author>a</author><body>b</body></article>`,
	`<invoice><total>3</total></invoice>`,
	`<article><title>u</title><ref/><body>c</body></article>`,
}

// fastFollower is FollowerOptions tuned for tests: tight polling and
// backoff so catch-up and retry assertions run in milliseconds.
func fastFollower(dir, id string) FollowerOptions {
	return FollowerOptions{
		ID:          id,
		Dir:         dir,
		Poll:        5 * time.Millisecond,
		BackoffBase: 2 * time.Millisecond,
		BackoffMax:  50 * time.Millisecond,
	}
}

// listenServe serves h on addr ("127.0.0.1:0" for an ephemeral port) and
// returns the server plus the bound address.
func listenServe(t *testing.T, addr string, h http.Handler) (*http.Server, string) {
	t.Helper()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: h}
	go srv.Serve(ln) //nolint:errcheck // returns ErrServerClosed on shutdown
	return srv, ln.Addr().String()
}

// primaryHandler mounts the shipping protocol next to the ordinary API,
// the same way cmd/dtdserved does.
func primaryHandler(prim *Primary, eng api.Engine) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/replication/", prim.Handler())
	mux.Handle("/", api.NewEngine(eng, api.Options{Replication: prim.Status}))
	return mux
}

// waitCaughtUp waits until the follower reports caught-up on two
// consecutive samples with no ingest progress between them. A single
// CaughtUp() reading can be one poll-cycle stale — the lag was computed
// from a segment listing fetched just before the primary's final write —
// so a stable reading across a full poll interval is required.
func waitCaughtUp(t *testing.T, f *Follower, d time.Duration) {
	t.Helper()
	deadline := time.Now().Add(d)
	var last []ShardLag
	for time.Now().Before(deadline) {
		if !f.CaughtUp() {
			last = nil
			time.Sleep(2 * time.Millisecond)
			continue
		}
		cur := f.Status().Shards
		if last != nil {
			stable := true
			for i := range cur {
				if cur[i].FetchedBytes != last[i].FetchedBytes || cur[i].RecordsApplied != last[i].RecordsApplied {
					stable = false
					break
				}
			}
			if stable {
				return
			}
		}
		last = cur
		time.Sleep(15 * time.Millisecond) // > the 5ms test poll interval
	}
	t.Fatalf("follower never caught up: %+v", f.Status())
}

func httpGetBody(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s: %s", url, resp.Status, body)
	}
	return body
}

func ingestDocs(t *testing.T, r *shard.Router, from, to int) {
	t.Helper()
	for i := from; i < to; i++ {
		key := fmt.Sprintf("doc-%d", i)
		if _, err := r.AddDocument(context.Background(), key, parseDoc(t, docShapes[i%len(docShapes)])); err != nil {
			t.Fatal(err)
		}
	}
}

// totalFetched sums FetchedBytes across a follower's shards.
func totalFetched(f *Follower) int64 {
	var n int64
	for _, lag := range f.Status().Shards {
		n += lag.FetchedBytes
	}
	return n
}

// TestFollowerEndToEndSharded is the acceptance test: a 4-shard primary
// ingests documents while a follower tails; after quiescing, the
// follower's merged /snapshot is byte-identical to the primary's and its
// lag reads zero. Then the follower is killed mid-stream, the primary
// keeps ingesting, and a restart over the same replica directory resumes
// without re-shipping completed history and without duplicate replay.
func TestFollowerEndToEndSharded(t *testing.T) {
	dir := t.TempDir()
	walOpts := wal.Options{Sync: wal.SyncOff, SegmentSize: 512}
	router, _, err := shard.Recover(testCfg(), dir, walOpts, shard.Options{Shards: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()
	prim := ForRouter(router, PrimaryOptions{})
	srv, addr := listenServe(t, "127.0.0.1:0", primaryHandler(prim, router))
	defer srv.Close()
	base := "http://" + addr

	if err := router.AddDTD("article", articleDTD()); err != nil {
		t.Fatal(err)
	}
	ingestDocs(t, router, 0, 30)

	fdir := t.TempDir()
	f, err := Open(context.Background(), testCfg(), base, fastFollower(fdir, "f1"))
	if err != nil {
		t.Fatal(err)
	}
	if f.Shards() != 4 {
		t.Fatalf("follower sees %d shards, want 4", f.Shards())
	}
	f.Start()

	// Keep ingesting while the follower tails.
	ingestDocs(t, router, 30, 60)
	waitCaughtUp(t, f, 10*time.Second)

	fsrv, faddr := listenServe(t, "127.0.0.1:0", f.Handler())
	defer fsrv.Close()
	pSnap := httpGetBody(t, base+"/snapshot")
	fSnap := httpGetBody(t, "http://"+faddr+"/snapshot")
	if !bytes.Equal(pSnap, fSnap) {
		t.Errorf("follower /snapshot differs from primary (%d vs %d bytes)", len(fSnap), len(pSnap))
	}
	st := f.Status()
	for _, lag := range st.Shards {
		if lag.SegmentsBehind != 0 || lag.BytesBehind != 0 || lag.SecondsBehind != 0 {
			t.Errorf("shard %d lag nonzero after quiesce: %+v", lag.Shard, lag)
		}
	}
	firstFetched := totalFetched(f)
	if firstFetched == 0 {
		t.Fatal("follower fetched nothing")
	}

	// Writes must bounce off the follower with a Retry-After.
	resp, err := http.Post("http://"+faddr+"/documents", "application/xml", bytes.NewBufferString(docShapes[0]))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Errorf("follower write: status %d Retry-After %q, want 503 + Retry-After", resp.StatusCode, resp.Header.Get("Retry-After"))
	}

	// Kill the follower mid-stream, keep ingesting, restart over the same
	// directory: it must converge again fetching only the delta — completed
	// segments replay from local disk, not over the wire.
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	ingestDocs(t, router, 60, 70)
	f2, err := Open(context.Background(), testCfg(), base, fastFollower(fdir, "f1"))
	if err != nil {
		t.Fatal(err)
	}
	f2.Start()
	waitCaughtUp(t, f2, 10*time.Second)
	defer f2.Close()

	pSnap2 := httpGetBody(t, base+"/snapshot")
	f2srv, f2addr := listenServe(t, "127.0.0.1:0", f2.Handler())
	defer f2srv.Close()
	fSnap2 := httpGetBody(t, "http://"+f2addr+"/snapshot")
	if !bytes.Equal(pSnap2, fSnap2) {
		t.Errorf("restarted follower /snapshot differs from primary")
	}
	if refetched := totalFetched(f2); refetched >= firstFetched {
		t.Errorf("restart re-shipped history: fetched %d bytes, first run fetched %d for 6x the documents",
			refetched, firstFetched)
	}

	// The primary's /status lists the follower with its ack floors.
	ps, ok := prim.Status().(*PrimaryStatus)
	if !ok || ps.Role != "primary" {
		t.Fatalf("primary status = %#v", prim.Status())
	}
	if len(ps.Followers) != 1 || ps.Followers[0].ID != "f1" {
		t.Errorf("primary followers = %+v, want [f1]", ps.Followers)
	}
}

// TestFollowerRetryBackoff kills the primary's listener under a tailing
// follower: the follower must back off and retry (lag and retries visible
// in Status), then converge once the primary comes back on the same
// address.
func TestFollowerRetryBackoff(t *testing.T) {
	dir := t.TempDir()
	walOpts := wal.Options{Sync: wal.SyncOff, SegmentSize: 512}
	router, _, err := shard.Recover(testCfg(), dir, walOpts, shard.Options{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()
	prim := ForRouter(router, PrimaryOptions{})
	h := primaryHandler(prim, router)
	srv, addr := listenServe(t, "127.0.0.1:0", h)
	base := "http://" + addr

	if err := router.AddDTD("article", articleDTD()); err != nil {
		t.Fatal(err)
	}
	ingestDocs(t, router, 0, 10)

	f, err := Open(context.Background(), testCfg(), base, fastFollower(t.TempDir(), "f1"))
	if err != nil {
		t.Fatal(err)
	}
	f.Start()
	defer f.Close()
	waitCaughtUp(t, f, 10*time.Second)

	// Primary goes away; the source keeps ingesting locally.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	ingestDocs(t, router, 10, 20)
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if st := f.Status(); len(st.Shards) > 0 && st.Shards[0].Retries > 0 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	st := f.Status()
	if st.Shards[0].Retries == 0 {
		t.Fatalf("no retries observed while the primary was down: %+v", st)
	}
	if st.Shards[0].LastError == "" {
		t.Error("Status carries no LastError while the primary is down")
	}

	// Primary returns on the same address; the follower converges without
	// intervention — and without having marked itself failed.
	srv2, _ := listenServe(t, addr, h)
	defer srv2.Close()
	waitCaughtUp(t, f, 10*time.Second)
	pSnap, err := router.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	fSnap, err := f.Engine().Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pSnap, fSnap) {
		t.Error("follower diverged across the primary outage")
	}
	if st := f.Status(); st.Shards[0].ResyncRequired {
		t.Errorf("transient outage latched resync: %+v", st.Shards[0])
	}
}

// TestFollowerKillAtEveryOffsetLocalIngest is the follower-side durability
// property: crash the follower at every byte offset of its local segment
// stream (truncation = torn tail) and at sampled offsets with a flipped
// byte (CRC corruption at rest), restart over the damaged directory, and
// require convergence to the primary's exact state — corrupt bytes are
// quarantined, never applied.
func TestFollowerKillAtEveryOffsetLocalIngest(t *testing.T) {
	dir := t.TempDir()
	walOpts := wal.Options{Sync: wal.SyncOff, SegmentSize: 512}
	router, _, err := shard.Recover(testCfg(), dir, walOpts, shard.Options{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()
	prim := ForRouter(router, PrimaryOptions{})
	srv, addr := listenServe(t, "127.0.0.1:0", primaryHandler(prim, router))
	defer srv.Close()
	base := "http://" + addr

	if err := router.AddDTD("article", articleDTD()); err != nil {
		t.Fatal(err)
	}
	ingestDocs(t, router, 0, 12)
	pSnap, err := router.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	// A fully caught-up follower leaves a local checkpoint plus the active
	// segment's applied prefix on disk.
	fdir := t.TempDir()
	f, err := Open(context.Background(), testCfg(), base, fastFollower(fdir, "f1"))
	if err != nil {
		t.Fatal(err)
	}
	f.Start()
	waitCaughtUp(t, f, 10*time.Second)
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	shardDir := filepath.Join(fdir, shard.ShardDirName(0))
	segs, err := wal.ListSegments(shardDir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("no local segments after catch-up: %v %v", segs, err)
	}
	segPath := filepath.Join(shardDir, wal.SegmentFileName(segs[len(segs)-1]))
	stream, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(stream) == 0 {
		t.Fatal("active local segment is empty; nothing to cut")
	}

	reopen := func(t *testing.T, damaged func(string)) {
		t.Helper()
		sub := t.TempDir()
		for _, name := range []string{"manifest.json", shard.CheckpointFileName(0)} {
			data, err := os.ReadFile(filepath.Join(fdir, name))
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(sub, name), data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		subShard := filepath.Join(sub, shard.ShardDirName(0))
		if err := os.MkdirAll(subShard, 0o755); err != nil {
			t.Fatal(err)
		}
		damaged(filepath.Join(subShard, filepath.Base(segPath)))

		f2, err := Open(context.Background(), testCfg(), base, fastFollower(sub, "f1"))
		if err != nil {
			t.Fatalf("reopen failed: %v", err)
		}
		f2.Start()
		waitCaughtUp(t, f2, 10*time.Second)
		fSnap, err := f2.Engine().Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(pSnap, fSnap) {
			t.Error("recovered follower diverged from primary")
		}
		if err := f2.Close(); err != nil {
			t.Fatal(err)
		}
	}

	t.Run("torn", func(t *testing.T) {
		for cut := 0; cut <= len(stream); cut++ {
			cut := cut
			reopen(t, func(path string) {
				if cut == 0 {
					return // crash before any byte landed
				}
				if err := os.WriteFile(path, stream[:cut], 0o644); err != nil {
					t.Fatal(err)
				}
			})
			if t.Failed() {
				t.Fatalf("diverged at cut %d/%d", cut, len(stream))
			}
		}
	})

	t.Run("corrupt", func(t *testing.T) {
		stride := 7
		if testing.Short() {
			stride = 31
		}
		for off := 0; off < len(stream); off += stride {
			off := off
			reopen(t, func(path string) {
				bad := append([]byte(nil), stream...)
				bad[off] ^= 0xFF
				if err := os.WriteFile(path, bad, 0o644); err != nil {
					t.Fatal(err)
				}
			})
			if t.Failed() {
				t.Fatalf("diverged at corrupt offset %d/%d", off, len(stream))
			}
		}
	})
}

// TestFollowerTransportCorruptionQuarantined interposes a corrupting proxy
// that flips a byte in every shipped chunk and fixes up the transport CRC
// header, so only the frame-level CRC can catch it: the follower must
// quarantine the corrupt suffix (never applying it), and converge cleanly
// once the corruption stops.
func TestFollowerTransportCorruptionQuarantined(t *testing.T) {
	dir := t.TempDir()
	walOpts := wal.Options{Sync: wal.SyncOff, SegmentSize: 512}
	router, _, err := shard.Recover(testCfg(), dir, walOpts, shard.Options{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()
	prim := ForRouter(router, PrimaryOptions{})
	inner := primaryHandler(prim, router)

	var corrupt atomic.Bool
	proxy := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := httptest.NewRecorder()
		inner.ServeHTTP(rec, r)
		body := rec.Body.Bytes()
		if corrupt.Load() && r.URL.Path == pathPrefix+"segment" && rec.Code == http.StatusOK && len(body) > 0 {
			body = append([]byte(nil), body...)
			body[len(body)/2] ^= 0xFF
			// Re-stamp the transport CRC over the corrupted bytes: the
			// transport check must pass so the frame parser is the last line
			// of defense.
			rec.Header().Set(crcHeader, fmt.Sprintf("%08x", wal.Checksum(body)))
		}
		for k, vs := range rec.Header() {
			for _, v := range vs {
				w.Header().Add(k, v)
			}
		}
		w.WriteHeader(rec.Code)
		w.Write(body)
	})
	srv, addr := listenServe(t, "127.0.0.1:0", proxy)
	defer srv.Close()
	base := "http://" + addr

	if err := router.AddDTD("article", articleDTD()); err != nil {
		t.Fatal(err)
	}
	ingestDocs(t, router, 0, 12)

	corrupt.Store(true)
	fdir := t.TempDir()
	f, err := Open(context.Background(), testCfg(), base, fastFollower(fdir, "f1"))
	if err != nil {
		t.Fatal(err)
	}
	f.Start()
	defer f.Close()

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if st := f.Status(); len(st.Shards) > 0 && st.Shards[0].Corruptions > 0 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	st := f.Status()
	if st.Shards[0].Corruptions == 0 {
		t.Fatalf("no corruption detected through the fixed-up proxy: %+v", st)
	}

	// Quarantine files hold the rejected bytes for inspection.
	quarantined, err := filepath.Glob(filepath.Join(fdir, shard.ShardDirName(0), "*.quarantine"))
	if err != nil || len(quarantined) == 0 {
		t.Errorf("no quarantine file written: %v %v", quarantined, err)
	}

	// Corruption stops; the follower refetches and converges — proof the
	// corrupt bytes were never applied.
	corrupt.Store(false)
	waitCaughtUp(t, f, 10*time.Second)
	pSnap, err := router.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	fSnap, err := f.Engine().Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pSnap, fSnap) {
		t.Error("follower state diverged after transport corruption")
	}
	if st := f.Status(); st.Shards[0].ResyncRequired {
		t.Errorf("transport corruption latched resync: %+v", st.Shards[0])
	}
}

// TestConcurrentShipReplayRead is the -race stress: concurrent primary
// writers, a tailing follower, and readers hammering both sides' status
// and snapshot surfaces.
func TestConcurrentShipReplayRead(t *testing.T) {
	dir := t.TempDir()
	walOpts := wal.Options{Sync: wal.SyncOff, SegmentSize: 1024}
	router, _, err := shard.Recover(testCfg(), dir, walOpts, shard.Options{Shards: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()
	prim := ForRouter(router, PrimaryOptions{})
	srv, addr := listenServe(t, "127.0.0.1:0", primaryHandler(prim, router))
	defer srv.Close()

	if err := router.AddDTD("article", articleDTD()); err != nil {
		t.Fatal(err)
	}
	f, err := Open(context.Background(), testCfg(), "http://"+addr, fastFollower(t.TempDir(), "f1"))
	if err != nil {
		t.Fatal(err)
	}
	f.Start()

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				key := fmt.Sprintf("w%d-%d", g, i)
				if _, err := router.AddDocument(context.Background(), key, parseDoc(t, docShapes[(g+i)%len(docShapes)])); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() { // readers race the tailers and writers
		defer wg.Done()
		for i := 0; i < 50; i++ {
			f.Status()
			f.CaughtUp()
			if _, err := f.Engine().Snapshot(); err != nil {
				t.Error(err)
				return
			}
			prim.Status()
		}
	}()
	wg.Wait()

	waitCaughtUp(t, f, 10*time.Second)
	pSnap, err := router.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	fSnap, err := f.Engine().Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pSnap, fSnap) {
		t.Error("follower diverged under concurrent ship/replay/read")
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestPromoteFollower is the manual failover path: once the primary is
// gone and the follower has caught up, promotion makes it writable over
// the same directory — and that directory recovers through the ordinary
// sharded startup path, pinned by the manifest.
func TestPromoteFollower(t *testing.T) {
	dir := t.TempDir()
	walOpts := wal.Options{Sync: wal.SyncOff, SegmentSize: 512}
	router, _, err := shard.Recover(testCfg(), dir, walOpts, shard.Options{Shards: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	prim := ForRouter(router, PrimaryOptions{})
	srv, addr := listenServe(t, "127.0.0.1:0", primaryHandler(prim, router))

	if err := router.AddDTD("article", articleDTD()); err != nil {
		t.Fatal(err)
	}
	ingestDocs(t, router, 0, 16)

	fdir := t.TempDir()
	f, err := Open(context.Background(), testCfg(), "http://"+addr, fastFollower(fdir, "f1"))
	if err != nil {
		t.Fatal(err)
	}
	f.Start()
	waitCaughtUp(t, f, 10*time.Second)

	// Primary dies for good.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := router.Close(); err != nil {
		t.Fatal(err)
	}

	fsrv, faddr := listenServe(t, "127.0.0.1:0", f.Handler())
	defer fsrv.Close()
	resp, err := http.Post("http://"+faddr+"/replication/promote", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("promote: status %d", resp.StatusCode)
	}
	if !f.Promoted() {
		t.Fatal("Promoted() = false after POST /replication/promote")
	}

	// The promoted node accepts writes and journals them.
	for i := 0; i < 4; i++ {
		res := f.Source(i % 2).Add(parseDoc(t, docShapes[i%len(docShapes)]))
		_ = res
	}
	for i := 0; i < 2; i++ {
		if err := f.Source(i).Degraded(); err != nil {
			t.Fatalf("promoted shard %d degraded: %v", i, err)
		}
	}
	want, err := f.Engine().Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// The replica directory is a first-class durable deployment now.
	recovered, _, err := shard.Recover(testCfg(), fdir, walOpts, shard.Options{})
	if err != nil {
		t.Fatalf("recovering the promoted directory: %v", err)
	}
	defer recovered.Close()
	if recovered.Shards() != 2 {
		t.Fatalf("recovered %d shards, want 2 from the replica manifest", recovered.Shards())
	}
	got, err := recovered.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("promoted directory did not recover to the promoted state")
	}
}

// TestStalenessGate checks the bounded-staleness read gate: with the
// primary unreachable and MaxStaleness exceeded, reads answer 503 — except
// /status and /metrics, which must stay up for operators.
func TestStalenessGate(t *testing.T) {
	dir := t.TempDir()
	walOpts := wal.Options{Sync: wal.SyncOff}
	router, _, err := shard.Recover(testCfg(), dir, walOpts, shard.Options{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()
	prim := ForRouter(router, PrimaryOptions{})
	srv, addr := listenServe(t, "127.0.0.1:0", primaryHandler(prim, router))

	if err := router.AddDTD("article", articleDTD()); err != nil {
		t.Fatal(err)
	}
	ingestDocs(t, router, 0, 6)

	opts := fastFollower(t.TempDir(), "f1")
	opts.MaxStaleness = 30 * time.Millisecond
	f, err := Open(context.Background(), testCfg(), "http://"+addr, opts)
	if err != nil {
		t.Fatal(err)
	}
	f.Start()
	defer f.Close()
	waitCaughtUp(t, f, 10*time.Second)

	fsrv, faddr := listenServe(t, "127.0.0.1:0", f.Handler())
	defer fsrv.Close()
	// Healthy and fresh: reads pass.
	httpGetBody(t, "http://"+faddr+"/snapshot")

	// Primary vanishes; after MaxStaleness the gate trips.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	get := func(path string) int {
		resp, err := http.Get("http://" + faddr + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if get("/snapshot") == http.StatusServiceUnavailable {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if code := get("/snapshot"); code != http.StatusServiceUnavailable {
		t.Errorf("stale read: status %d, want 503", code)
	}
	if code := get("/status"); code != http.StatusOK {
		t.Errorf("/status while stale: %d, want 200", code)
	}
	if code := get("/metrics"); code != http.StatusOK {
		t.Errorf("/metrics while stale: %d, want 200", code)
	}
	st := f.Status()
	if !st.Stale {
		t.Errorf("Status().Stale = false with the primary gone: %+v", st)
	}
}
