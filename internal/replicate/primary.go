package replicate

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"time"

	"dtdevolve/internal/shard"
	"dtdevolve/internal/source"
	"dtdevolve/internal/wal"
)

// PrimaryShard is one shard the primary serves: the live source (for the
// active segment's durable frontier), its WAL directory (sealed segments
// are read from disk) and its checkpoint file (shipped to bootstrapping
// followers).
type PrimaryShard struct {
	Source         *source.Source
	WALDir         string
	CheckpointPath string
}

// PrimaryOptions tunes the primary side of replication.
type PrimaryOptions struct {
	// FollowerTTL is how long a silent follower keeps pinning WAL GC
	// before it is expired from the registry. 0 means 5 minutes.
	FollowerTTL time.Duration
	// MaxChunk bounds one segment-range response. 0 means 1 MiB.
	MaxChunk int64
	// now is the test clock.
	now func() time.Time
}

func (o *PrimaryOptions) normalize() {
	if o.FollowerTTL <= 0 {
		o.FollowerTTL = 5 * time.Minute
	}
	if o.MaxChunk <= 0 {
		o.MaxChunk = 1 << 20
	}
	if o.now == nil {
		o.now = time.Now
	}
}

// followerState is the primary's view of one follower: when it was last
// heard from and, per shard, the first segment it has NOT durably applied
// (its GC floor — everything below is safe to truncate).
type followerState struct {
	lastSeen time.Time
	floors   []uint64
}

// Primary serves the shipping protocol for a set of shards and tracks
// follower acknowledgments so checkpoint-time WAL GC never outruns
// shipping. Construct with NewPrimary/ForRouter/ForSource — construction
// installs the retention floor on every shard — and mount Handler under
// the service root.
type Primary struct {
	shards  []PrimaryShard
	seed    uint64
	sharded bool
	opts    PrimaryOptions
	mux     *http.ServeMux

	mu        sync.Mutex
	followers map[string]*followerState // dtdvet:guarded_by mu
}

// NewPrimary wires a primary over the given shards. seed is the router's
// rendezvous seed (0 for an unsharded deployment); followers build their
// replica router from it so routing — and the merged snapshot shape — match
// the primary exactly. Each shard's WAL retention floor is installed here;
// Detach removes it again.
func NewPrimary(shards []PrimaryShard, seed uint64, opts PrimaryOptions) *Primary {
	opts.normalize()
	p := &Primary{
		shards:    shards,
		seed:      seed,
		sharded:   len(shards) > 1,
		opts:      opts,
		followers: make(map[string]*followerState),
	}
	for i := range p.shards {
		i := i
		p.shards[i].Source.SetWALRetention(func() uint64 { return p.retentionFloor(i) })
	}
	p.mux = http.NewServeMux()
	p.mux.HandleFunc("GET "+pathPrefix+"info", p.handleInfo)
	p.mux.HandleFunc("POST "+pathPrefix+"register", p.handleRegister)
	p.mux.HandleFunc("GET "+pathPrefix+"checkpoint", p.handleCheckpoint)
	p.mux.HandleFunc("GET "+pathPrefix+"segments", p.handleSegments)
	p.mux.HandleFunc("GET "+pathPrefix+"segment", p.handleSegment)
	p.mux.HandleFunc("POST "+pathPrefix+"ack", p.handleAck)
	return p
}

// ForRouter builds a Primary over every shard of a durable router.
func ForRouter(r *shard.Router, opts PrimaryOptions) *Primary {
	shards := make([]PrimaryShard, r.Shards())
	for i := range shards {
		shards[i] = PrimaryShard{
			Source:         r.Shard(i),
			WALDir:         r.WALDir(i),
			CheckpointPath: r.CheckpointFile(i),
		}
	}
	p := NewPrimary(shards, r.Seed(), opts)
	p.sharded = true // even one-shard routers serve the router envelope
	return p
}

// ForSource builds a Primary over a single unsharded source.
func ForSource(src *source.Source, walDir, checkpointPath string, opts PrimaryOptions) *Primary {
	return NewPrimary([]PrimaryShard{{Source: src, WALDir: walDir, CheckpointPath: checkpointPath}}, 0, opts)
}

// Detach removes the retention floors, so WAL GC stops consulting the
// follower registry.
func (p *Primary) Detach() {
	for i := range p.shards {
		p.shards[i].Source.SetWALRetention(nil)
	}
}

// Handler returns the shipping protocol handler. Its routes live under
// /replication/v1/, so mount it at the server root (or under
// "/replication/" with a non-stripping mux).
func (p *Primary) Handler() http.Handler { return p.mux }

// retentionFloor is the GC floor of one shard: the lowest unacknowledged
// position of any live follower, MaxUint64 (no pin) when none. Expired
// followers are dropped here — the checkpointers call this periodically,
// so the registry cannot accumulate ghosts.
func (p *Primary) retentionFloor(i int) uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	now := p.opts.now()
	floor := uint64(math.MaxUint64)
	for id, f := range p.followers {
		if now.Sub(f.lastSeen) > p.opts.FollowerTTL {
			delete(p.followers, id)
			continue
		}
		if f.floors[i] < floor {
			floor = f.floors[i]
		}
	}
	return floor
}

// touch upserts a follower's registry entry and refreshes its liveness. A
// fresh entry pins every shard's GC at 0 until its first ack.
func (p *Primary) touch(id string) *followerState {
	p.mu.Lock()
	defer p.mu.Unlock()
	f := p.followers[id]
	if f == nil {
		f = &followerState{floors: make([]uint64, len(p.shards))}
		p.followers[id] = f
	}
	f.lastSeen = p.opts.now()
	return f
}

// shardParam parses the shard index query parameter.
func (p *Primary) shardParam(w http.ResponseWriter, r *http.Request) (int, bool) {
	i, err := strconv.Atoi(r.URL.Query().Get("shard"))
	if err != nil || i < 0 || i >= len(p.shards) {
		writeError(w, http.StatusBadRequest, "bad shard %q (have %d)", r.URL.Query().Get("shard"), len(p.shards))
		return 0, false
	}
	return i, true
}

func (p *Primary) handleInfo(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, infoResponse{Version: protocolVersion, Shards: len(p.shards), Seed: p.seed, Sharded: p.sharded})
}

func (p *Primary) handleRegister(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("id")
	if id == "" {
		writeError(w, http.StatusBadRequest, "missing follower id")
		return
	}
	p.touch(id)
	writeJSON(w, http.StatusOK, map[string]bool{"registered": true})
}

func (p *Primary) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	i, ok := p.shardParam(w, r)
	if !ok {
		return
	}
	data, err := os.ReadFile(p.shards[i].CheckpointPath)
	if os.IsNotExist(err) {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, "reading checkpoint: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if _, err := w.Write(data); err != nil {
		return // client went away; nothing to do
	}
}

// listSegments enumerates what shard i can ship right now. The active
// segment (if any) reports its durable prefix from the live log; sealed
// segments ship whole.
func (p *Primary) listSegments(i int) ([]segmentInfo, error) {
	sh := p.shards[i]
	seqs, err := wal.ListSegments(sh.WALDir)
	if err != nil {
		return nil, err
	}
	var aseq uint64
	var asize, adur int64
	var haveActive bool
	if w := sh.Source.WAL(); w != nil {
		aseq, asize, adur, haveActive = w.ActivePosition()
	}
	out := make([]segmentInfo, 0, len(seqs))
	for _, seq := range seqs {
		if haveActive && seq == aseq {
			out = append(out, segmentInfo{Seq: seq, Size: asize, Durable: adur})
			continue
		}
		fi, err := os.Stat(filepath.Join(sh.WALDir, wal.SegmentFileName(seq)))
		if err != nil {
			if os.IsNotExist(err) {
				continue // truncated between listing and stat
			}
			return nil, err
		}
		out = append(out, segmentInfo{Seq: seq, Size: fi.Size(), Durable: fi.Size(), Sealed: true})
	}
	return out, nil
}

func (p *Primary) handleSegments(w http.ResponseWriter, r *http.Request) {
	i, ok := p.shardParam(w, r)
	if !ok {
		return
	}
	if id := r.URL.Query().Get("id"); id != "" {
		p.touch(id)
	}
	segs, err := p.listSegments(i)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "listing segments: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, segs)
}

func (p *Primary) handleSegment(w http.ResponseWriter, r *http.Request) {
	i, ok := p.shardParam(w, r)
	if !ok {
		return
	}
	q := r.URL.Query()
	if id := q.Get("id"); id != "" {
		p.touch(id)
	}
	seq, err := strconv.ParseUint(q.Get("seq"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad seq %q", q.Get("seq"))
		return
	}
	off, err := strconv.ParseInt(q.Get("off"), 10, 64)
	if err != nil || off < 0 {
		writeError(w, http.StatusBadRequest, "bad off %q", q.Get("off"))
		return
	}
	sh := p.shards[i]
	// The shippable end: the durable prefix while the segment is active,
	// the whole file once sealed.
	end := int64(-1)
	if wl := sh.Source.WAL(); wl != nil {
		if aseq, _, adur, ok := wl.ActivePosition(); ok && aseq == seq {
			end = adur
		}
	}
	f, err := os.Open(filepath.Join(sh.WALDir, wal.SegmentFileName(seq)))
	if err != nil {
		if os.IsNotExist(err) {
			// Distinguish "truncated by GC" (the follower must resync) from
			// "not written yet" (the follower is ahead of the stream).
			if segs, lerr := p.listSegments(i); lerr == nil {
				for _, s := range segs {
					if s.Seq > seq {
						writeError(w, http.StatusGone, "segment %d was truncated (oldest available %d)", seq, s.Seq)
						return
					}
				}
			}
			writeError(w, http.StatusNotFound, "segment %d does not exist yet", seq)
			return
		}
		writeError(w, http.StatusInternalServerError, "opening segment: %v", err)
		return
	}
	defer f.Close() // dtdvet:allow errsync -- read-only handle
	if end < 0 {
		fi, err := f.Stat()
		if err != nil {
			writeError(w, http.StatusInternalServerError, "stat segment: %v", err)
			return
		}
		end = fi.Size()
	}
	if off >= end {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	n := end - off
	if n > p.opts.MaxChunk {
		n = p.opts.MaxChunk
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(io.NewSectionReader(f, off, n), buf); err != nil {
		writeError(w, http.StatusInternalServerError, "reading segment: %v", err)
		return
	}
	// Same CRC32-C the WAL frames use, over the whole chunk: transit
	// corruption is rejected at the transport layer before the follower's
	// frame parser ever sees the bytes.
	w.Header().Set(crcHeader, fmt.Sprintf("%08x", wal.Checksum(buf)))
	w.Header().Set("Content-Type", "application/octet-stream")
	if _, err := w.Write(buf); err != nil {
		return // client went away; it will refetch
	}
}

func (p *Primary) handleAck(w http.ResponseWriter, r *http.Request) {
	i, ok := p.shardParam(w, r)
	if !ok {
		return
	}
	q := r.URL.Query()
	id := q.Get("id")
	if id == "" {
		writeError(w, http.StatusBadRequest, "missing follower id")
		return
	}
	seq, err := strconv.ParseUint(q.Get("seq"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad seq %q", q.Get("seq"))
		return
	}
	f := p.touch(id)
	p.mu.Lock()
	// The ack means "segments <= seq are durably stored and applied";
	// floors are monotonic so a delayed duplicate cannot move GC backward.
	if seq+1 > f.floors[i] {
		f.floors[i] = seq + 1
	}
	p.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]bool{"acked": true})
}

// FollowerInfo is one registry entry of PrimaryStatus.
type FollowerInfo struct {
	ID string `json:"id"`
	// AgeMS is how long ago the follower was last heard from.
	AgeMS int64 `json:"age_ms"`
	// Floors is, per shard, the first segment the follower has not yet
	// acknowledged (what its presence pins in the WAL).
	Floors []uint64 `json:"floors"`
}

// PrimaryStatus is the replication state a primary injects into
// GET /status and GET /metrics (api.Options.Replication).
type PrimaryStatus struct {
	Role      string         `json:"role"`
	Followers []FollowerInfo `json:"followers,omitempty"`
}

// Status returns the current follower registry (live entries only).
func (p *Primary) Status() any {
	p.mu.Lock()
	defer p.mu.Unlock()
	now := p.opts.now()
	st := &PrimaryStatus{Role: "primary"}
	for id, f := range p.followers {
		if now.Sub(f.lastSeen) > p.opts.FollowerTTL {
			continue
		}
		floors := make([]uint64, len(f.floors))
		copy(floors, f.floors)
		st.Followers = append(st.Followers, FollowerInfo{ID: id, AgeMS: now.Sub(f.lastSeen).Milliseconds(), Floors: floors})
	}
	sort.Slice(st.Followers, func(i, j int) bool { return st.Followers[i].ID < st.Followers[j].ID })
	return st
}
