package replicate

import (
	"math/rand/v2"
	"time"
)

// backoff is jittered exponential retry pacing: base·2^attempt capped at
// max, each delay jittered ±25% so a fleet of followers losing the same
// primary does not reconnect in lockstep.
type backoff struct {
	base, max time.Duration
	attempt   int
}

func newBackoff(base, max time.Duration) *backoff {
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	if max < base {
		max = 5 * time.Second
	}
	return &backoff{base: base, max: max}
}

// next returns the delay before the next retry and advances the schedule.
func (b *backoff) next() time.Duration {
	d := b.base
	for i := 0; i < b.attempt && d < b.max; i++ {
		d *= 2
	}
	if d > b.max {
		d = b.max
	}
	b.attempt++
	jitter := time.Duration(rand.Int64N(int64(d)/2+1)) - d/4
	return d + jitter
}

// reset restores the schedule after a success.
func (b *backoff) reset() { b.attempt = 0 }
