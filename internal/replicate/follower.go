package replicate

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"dtdevolve/internal/api"
	"dtdevolve/internal/shard"
	"dtdevolve/internal/source"
	"dtdevolve/internal/wal"
)

// FollowerOptions tunes a follower replica.
type FollowerOptions struct {
	// ID names this follower in the primary's registry (ack tracking, GC
	// pinning). Followers sharing an ID share an ack floor; give each
	// replica a stable unique ID. Empty means "follower".
	ID string
	// Dir is the local replica root (required): a mirror of the primary's
	// durable layout, directly recoverable — and promotable — by the
	// ordinary startup path.
	Dir string
	// Poll is the tail polling interval while caught up. 0 means 250ms.
	Poll time.Duration
	// BackoffBase/BackoffMax bound the jittered exponential retry delay on
	// transient failures. 0 means 100ms / 5s.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// MaxStaleness, when positive, flips the follower to degraded (reads
	// answer 503, except /status and /metrics) once any shard has not been
	// confirmed caught up for this long.
	MaxStaleness time.Duration
	// WAL is the local log configuration used at promotion, when the
	// replica starts journaling its own writes.
	WAL wal.Options
	// Client is the HTTP client for primary requests. nil gets a client
	// with a 30s timeout.
	Client *http.Client
	// Logf, when set, receives operational log lines.
	Logf func(format string, args ...any)
}

func (o *FollowerOptions) normalize() error {
	if o.Dir == "" {
		return errors.New("replicate: FollowerOptions.Dir is required")
	}
	if o.ID == "" {
		o.ID = "follower"
	}
	if o.Poll <= 0 {
		o.Poll = 250 * time.Millisecond
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 100 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 5 * time.Second
	}
	if o.Client == nil {
		o.Client = &http.Client{Timeout: 30 * time.Second}
	}
	return nil
}

// ShardLag is one shard's replication position, exposed in /status and
// /metrics on the follower.
type ShardLag struct {
	Shard int `json:"shard"`
	// Segment/Offset is the follower's cursor: the segment currently being
	// ingested and how many of its bytes are stored and applied locally.
	Segment uint64 `json:"segment"`
	Offset  int64  `json:"offset"`
	// SegmentsBehind/BytesBehind measure the durable primary data not yet
	// applied here, as of the last successful poll.
	SegmentsBehind int64 `json:"segments_behind"`
	BytesBehind    int64 `json:"bytes_behind"`
	// SecondsBehind is how long ago this shard was last confirmed fully
	// caught up (0 while it is).
	SecondsBehind  float64 `json:"seconds_behind"`
	RecordsApplied int64   `json:"records_applied"`
	FetchedBytes   int64   `json:"fetched_bytes"`
	// Retries counts backed-off transient failures (primary unreachable,
	// chunk CRC mismatch in transit).
	Retries int64 `json:"retries,omitempty"`
	// Corruptions counts CRC-invalid frames that reached the local segment
	// and were quarantined (never applied) before refetching.
	Corruptions int64 `json:"corruptions,omitempty"`
	// ResyncRequired is sticky: the primary no longer has history this
	// follower needs (or a record failed to apply); restart the follower to
	// re-bootstrap from the current checkpoint.
	ResyncRequired bool   `json:"resync_required,omitempty"`
	LastError      string `json:"last_error,omitempty"`
}

// FollowerStatus is the replication state a follower injects into
// GET /status and GET /metrics.
type FollowerStatus struct {
	Role     string     `json:"role"`
	Primary  string     `json:"primary"`
	Promoted bool       `json:"promoted,omitempty"`
	Stale    bool       `json:"stale,omitempty"`
	Shards   []ShardLag `json:"shards"`
}

// shardTail is one shard's tail cursor. Everything here is owned by the
// shard's tailer goroutine (and, after the tailers are stopped, by
// Promote/Close); observable state is mirrored into Follower.lags under
// Follower.mu.
type shardTail struct {
	shard int
	dir   string // local WAL dir (mirror of the primary's)
	ckpt  string // local checkpoint file
	src   *source.Source

	seq       uint64   // segment currently being ingested
	written   int64    // bytes of it stored locally
	applied   int64    // frame-boundary prefix applied to src
	pending   []byte   // stored-but-unapplied tail (partial frame)
	file      *os.File // open local segment file, nil until first append
	lastAcked uint64   // highest segment acked to the primary
	records   int64
	fetched   int64
}

// Follower is a read-only replica of a primary: per shard, a Source in
// replica mode fed by tailing the primary's shipped WAL. Build with Open
// (bootstrap), run with Start, serve Handler, and optionally Promote once
// the primary is gone.
type Follower struct {
	base    string
	cfg     source.Config
	opts    FollowerOptions
	nshards int
	seed    uint64
	sources []*source.Source
	tails   []*shardTail
	eng     api.Engine
	client  *http.Client

	stop      chan struct{}
	wg        sync.WaitGroup
	startOnce sync.Once
	stopOnce  sync.Once

	mu       sync.Mutex
	lags     []ShardLag  // dtdvet:guarded_by mu
	caught   []bool      // dtdvet:guarded_by mu -- shard confirmed caught up at its last poll
	lastOK   []time.Time // dtdvet:guarded_by mu -- last instant the shard was confirmed caught up
	failed   []error     // dtdvet:guarded_by mu -- sticky per-shard failure (resync required)
	promoted bool        // dtdvet:guarded_by mu
}

// Open bootstraps a follower of the primary at base (e.g.
// "http://primary:8080"): fetches the layout, mirrors the manifest into
// opts.Dir, restores each shard from the local checkpoint if present or
// the primary's otherwise, replays local segments (torn tails truncated,
// corruption quarantined — crash recovery of the follower itself), and
// positions the tail cursors. ctx bounds the bootstrap, including its
// retry/backoff against an unreachable primary.
func Open(ctx context.Context, cfg source.Config, base string, opts FollowerOptions) (*Follower, error) {
	if err := opts.normalize(); err != nil {
		return nil, err
	}
	f := &Follower{
		base:   trimSlash(base),
		cfg:    cfg,
		opts:   opts,
		client: opts.Client,
		stop:   make(chan struct{}),
	}
	info, err := f.fetchInfoRetry(ctx)
	if err != nil {
		return nil, err
	}
	if info.Version != protocolVersion {
		return nil, fmt.Errorf("replicate: primary speaks protocol v%d, want v%d", info.Version, protocolVersion)
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	if n, seed, ok, err := shard.ReadManifest(opts.Dir); err != nil {
		return nil, err
	} else if ok && (n != info.Shards || seed != info.Seed) {
		return nil, fmt.Errorf("replicate: local replica %s has %d shards (seed %d), primary has %d (seed %d); point the follower at an empty directory to re-bootstrap",
			opts.Dir, n, seed, info.Shards, info.Seed)
	} else if !ok {
		if err := shard.WriteManifest(opts.Dir, info.Shards, info.Seed); err != nil {
			return nil, err
		}
	}
	f.nshards, f.seed = info.Shards, info.Seed
	if err := f.post(ctx, "register", url.Values{"id": {f.opts.ID}}); err != nil {
		return nil, err
	}

	f.sources = make([]*source.Source, f.nshards)
	f.tails = make([]*shardTail, f.nshards)
	f.mu.Lock()
	f.lags = make([]ShardLag, f.nshards)
	f.caught = make([]bool, f.nshards)
	f.lastOK = make([]time.Time, f.nshards)
	f.failed = make([]error, f.nshards)
	f.mu.Unlock()
	for i := 0; i < f.nshards; i++ {
		st, err := f.bootstrapShard(ctx, i)
		if err != nil {
			return nil, fmt.Errorf("replicate: bootstrapping shard %d: %w", i, err)
		}
		f.tails[i] = st
		f.sources[i] = st.src
		f.mu.Lock()
		f.lags[i] = ShardLag{Shard: i, Segment: st.seq, Offset: st.applied, RecordsApplied: st.records}
		f.lastOK[i] = time.Now()
		f.mu.Unlock()
	}
	// Mirror the primary's serving shape: a sharded primary (even one
	// shard) merges snapshots through the router envelope, an unsharded one
	// serves the bare source — matching it keeps /snapshot byte-comparable.
	if info.Sharded {
		f.eng = shard.NewReplica(cfg, f.sources, f.seed)
	} else {
		f.eng = api.SourceEngine(f.sources[0])
	}
	return f, nil
}

func trimSlash(s string) string {
	for len(s) > 0 && s[len(s)-1] == '/' {
		s = s[:len(s)-1]
	}
	return s
}

// bootstrapShard restores one shard and positions its cursor. On a
// coverage gap (the primary truncated history this replica needs — its
// acks expired while it was down) the local shard state is wiped and the
// bootstrap retried from the primary's current checkpoint.
func (f *Follower) bootstrapShard(ctx context.Context, i int) (*shardTail, error) {
	st := &shardTail{
		shard: i,
		dir:   filepath.Join(f.opts.Dir, shard.ShardDirName(i)),
		ckpt:  filepath.Join(f.opts.Dir, shard.CheckpointFileName(i)),
	}
	if err := os.MkdirAll(st.dir, 0o755); err != nil {
		return nil, err
	}
	for attempt := 0; ; attempt++ {
		ckpt, err := os.ReadFile(st.ckpt)
		if err != nil && !os.IsNotExist(err) {
			return nil, err
		}
		if len(ckpt) == 0 {
			ckpt, err = f.fetchCheckpoint(ctx, i)
			if err != nil {
				return nil, err
			}
			if len(ckpt) > 0 {
				if err := source.WriteFileAtomic(st.ckpt, ckpt); err != nil {
					return nil, err
				}
			}
		}
		var minSeq uint64
		if len(ckpt) > 0 {
			src, err := source.Restore(f.cfg, ckpt)
			if err != nil {
				return nil, err
			}
			st.src = src
			minSeq = source.SnapshotWALPosition(ckpt)
		} else {
			st.src = source.New(f.cfg)
		}
		st.src.SetReplica(true)
		res, err := wal.ReplayFrom(st.dir, minSeq, st.src.ApplyWALRecord)
		if err != nil {
			return nil, err
		}
		st.records = int64(res.Records)
		if res.Truncated || res.Corrupted {
			f.logf("shard %d: local replay truncated=%v corrupted=%v (quarantined %d); refetching from last applied boundary",
				i, res.Truncated, res.Corrupted, len(res.Quarantined))
		}
		st.seq, st.written, err = localCursor(st.dir, minSeq)
		if err != nil {
			return nil, err
		}
		st.applied = st.written
		st.pending = nil

		// The primary must still hold segment st.seq (or not have written
		// it yet). A gap means our history was truncated while we were
		// away: wipe and re-bootstrap from the current checkpoint.
		segs, err := f.fetchSegments(ctx, i)
		if err != nil {
			return nil, err
		}
		if len(segs) == 0 || segs[0].Seq <= st.seq {
			if st.seq > 1 {
				// Re-pin GC where we actually are before tailing starts.
				if err := f.ack(ctx, i, st.seq-1); err != nil {
					return nil, err
				}
				st.lastAcked = st.seq - 1
			}
			return st, nil
		}
		if attempt >= 2 {
			return nil, fmt.Errorf("replicate: shard %d: primary's oldest segment is %d, need %d (history truncated)", i, segs[0].Seq, st.seq)
		}
		f.logf("shard %d: primary truncated history (oldest %d, need %d); wiping local state and re-bootstrapping", i, segs[0].Seq, st.seq)
		if err := wipeShard(st); err != nil {
			return nil, err
		}
	}
}

// localCursor positions the tail after local replay: the highest local
// segment at or above minSeq and its (post-truncation) size, or (minSeq,
// 0) — never below segment 1 — when none exists.
func localCursor(dir string, minSeq uint64) (uint64, int64, error) {
	seqs, err := wal.ListSegments(dir)
	if err != nil {
		return 0, 0, err
	}
	seq := minSeq
	if seq == 0 {
		seq = 1
	}
	var size int64
	for _, s := range seqs {
		if s < minSeq {
			continue
		}
		if s >= seq {
			seq = s
			fi, err := os.Stat(filepath.Join(dir, wal.SegmentFileName(s)))
			if err != nil {
				return 0, 0, err
			}
			size = fi.Size()
		}
	}
	return seq, size, nil
}

// wipeShard removes a shard's local checkpoint and segments so the next
// bootstrap attempt starts from the primary's current state.
func wipeShard(st *shardTail) error {
	if err := os.Remove(st.ckpt); err != nil && !os.IsNotExist(err) {
		return err
	}
	seqs, err := wal.ListSegments(st.dir)
	if err != nil {
		return err
	}
	for _, s := range seqs {
		if err := os.Remove(filepath.Join(st.dir, wal.SegmentFileName(s))); err != nil {
			return err
		}
	}
	return nil
}

// Start launches one tailer goroutine per shard. Idempotent.
func (f *Follower) Start() {
	f.startOnce.Do(func() {
		for _, st := range f.tails {
			f.wg.Add(1)
			go f.runShard(st)
		}
	})
}

// Close stops the tailers and closes local files (and, after a promotion,
// the attached WALs). The local replica directory remains valid: a new
// Open resumes from it without re-shipping completed history.
func (f *Follower) Close() error {
	f.stopTailers()
	var errs []error
	for _, st := range f.tails {
		if st.file != nil {
			if err := st.file.Sync(); err != nil {
				errs = append(errs, err)
			}
			if err := st.file.Close(); err != nil {
				errs = append(errs, err)
			}
			st.file = nil
		}
	}
	for _, s := range f.sources {
		if err := s.CloseWAL(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

func (f *Follower) stopTailers() {
	f.stopOnce.Do(func() { close(f.stop) })
	f.wg.Wait()
}

// Engine returns the serving engine (a replica router, or the single
// source unsharded) — the same shape the primary serves, so /snapshot is
// byte-comparable across the pair.
func (f *Follower) Engine() api.Engine { return f.eng }

// Source returns shard i's source (tests and tools).
func (f *Follower) Source(i int) *source.Source { return f.sources[i] }

// Shards returns the shard count.
func (f *Follower) Shards() int { return f.nshards }

func (f *Follower) logf(format string, args ...any) {
	if f.opts.Logf != nil {
		f.opts.Logf("replicate: "+format, args...)
	}
}

// sleep waits d or until the follower stops; false means stop.
func (f *Follower) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-f.stop:
		return false
	}
}

// runShard is one shard's tail loop: poll the primary's segment listing,
// fetch and apply what is new, retry transient failures with jittered
// exponential backoff, park permanently on a sticky failure.
func (f *Follower) runShard(st *shardTail) {
	defer f.wg.Done()
	back := newBackoff(f.opts.BackoffBase, f.opts.BackoffMax)
	for {
		select {
		case <-f.stop:
			return
		default:
		}
		progressed, err := f.pollShard(st)
		if err != nil {
			f.noteRetry(st, err)
			if !f.sleep(back.next()) {
				return
			}
			continue
		}
		back.reset()
		if f.shardFailed(st.shard) {
			// Sticky: resync required. The tailer parks; status and the
			// staleness gate carry the condition.
			return
		}
		if !progressed {
			if !f.sleep(f.opts.Poll) {
				return
			}
		}
	}
}

// errGone marks history truncated under the follower (HTTP 410).
var errGone = errors.New("replicate: segment truncated on primary")

// pollShard runs one poll cycle: list, reconcile, ingest, complete,
// measure lag. It returns whether any progress was made; transient errors
// bubble up for backoff, fatal conditions latch via markFailed.
func (f *Follower) pollShard(st *shardTail) (bool, error) {
	ctx := context.Background()
	// Re-send a lost ack before anything else: the primary's GC floor (and
	// its TTL view of us) must track what we have even when no new data
	// flows.
	if st.seq > 1 && st.lastAcked < st.seq-1 {
		if err := f.ack(ctx, st.shard, st.seq-1); err != nil {
			return false, err
		}
		st.lastAcked = st.seq - 1
	}
	segs, err := f.fetchSegments(ctx, st.shard)
	if err != nil {
		return false, err
	}
	if len(segs) > 0 && segs[0].Seq > st.seq {
		f.markFailed(st, fmt.Errorf("replicate: shard %d: primary truncated segment %d (oldest available %d); restart the follower to re-bootstrap", st.shard, st.seq, segs[0].Seq))
		return false, nil
	}
	progressed := false
	var cur *segmentInfo
	for j := range segs {
		if segs[j].Seq == st.seq {
			cur = &segs[j]
			break
		}
	}
	if cur != nil {
		n, err := f.ingest(st, cur)
		progressed = progressed || n
		if err != nil {
			if errors.Is(err, errGone) {
				f.markFailed(st, fmt.Errorf("replicate: shard %d: %w; restart the follower to re-bootstrap", st.shard, err))
				return progressed, nil
			}
			return progressed, err
		}
		if cur.Sealed && st.written >= cur.Size {
			if st.applied != st.written {
				// The primary sealed a segment whose tail never parses as
				// complete frames: its file is torn at rest. Quarantine
				// locally and park; shipping cannot outrun a broken source.
				f.markFailed(st, fmt.Errorf("replicate: shard %d: sealed segment %d has a torn tail at %d/%d", st.shard, st.seq, st.applied, st.written))
				return progressed, nil
			}
			if err := f.completeSegment(ctx, st); err != nil {
				return progressed, err
			}
			progressed = true
		}
	}
	f.updateLag(st, segs)
	return progressed, nil
}

// ingest fetches the current segment's durable bytes, appends them to the
// local mirror and applies every complete frame.
func (f *Follower) ingest(st *shardTail, cur *segmentInfo) (bool, error) {
	progressed := false
	for st.written < cur.Durable {
		chunk, err := f.fetchChunk(context.Background(), st.shard, st.seq, st.written)
		if err != nil {
			return progressed, err
		}
		if len(chunk) == 0 {
			break
		}
		if st.file == nil {
			fh, err := os.OpenFile(f.segPath(st, st.seq), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return progressed, err
			}
			st.file = fh
		}
		if _, err := st.file.Write(chunk); err != nil {
			return progressed, err
		}
		st.written += int64(len(chunk))
		st.fetched += int64(len(chunk))
		st.pending = append(st.pending, chunk...)
		progressed = true
		if err := f.applyPending(st); err != nil {
			if errors.Is(err, wal.ErrCorrupt) {
				if qerr := f.quarantineLocal(st); qerr != nil {
					return progressed, qerr
				}
				return progressed, err // transient: backoff, then refetch from the applied boundary
			}
			// A CRC-valid record that fails to apply is a poison pill — no
			// amount of refetching fixes it.
			f.markFailed(st, fmt.Errorf("replicate: shard %d: applying record in segment %d: %w", st.shard, st.seq, err))
			return progressed, nil
		}
	}
	return progressed, nil
}

func (f *Follower) segPath(st *shardTail, seq uint64) string {
	return filepath.Join(st.dir, wal.SegmentFileName(seq))
}

// applyPending applies every complete frame in st.pending, advancing
// applied past each one. An incomplete trailing frame stays pending until
// more bytes arrive (it is only an error if the segment seals under it);
// a zero/oversized length or CRC mismatch returns wal.ErrCorrupt and
// applies nothing further.
// dtdvet:replayroot
func (f *Follower) applyPending(st *shardTail) error {
	for {
		if len(st.pending) < wal.FrameHeaderSize {
			return nil
		}
		length := binary.LittleEndian.Uint32(st.pending[0:4])
		if length == 0 || int64(length) > wal.MaxRecordSize {
			return wal.ErrCorrupt
		}
		total := wal.FrameHeaderSize + int(length)
		if len(st.pending) < total {
			return nil
		}
		payload := st.pending[wal.FrameHeaderSize:total]
		if wal.Checksum(payload) != binary.LittleEndian.Uint32(st.pending[4:8]) {
			return wal.ErrCorrupt
		}
		if err := st.src.ApplyWALRecord(payload); err != nil {
			return err
		}
		st.applied += int64(total)
		st.pending = st.pending[total:]
		st.records++
		f.mu.Lock()
		f.lags[st.shard].RecordsApplied = st.records
		f.mu.Unlock()
	}
}

// quarantineLocal handles a CRC-invalid suffix in the local segment: the
// unapplied bytes are preserved for inspection, the local file is
// truncated back to the applied boundary, and the cursor rewinds so the
// suffix is refetched — corrupt bytes are never applied and never acked.
func (f *Follower) quarantineLocal(st *shardTail) error {
	qpath := f.segPath(st, st.seq) + ".quarantine"
	if err := os.WriteFile(qpath, st.pending, 0o644); err != nil {
		return err
	}
	if st.file != nil {
		if err := st.file.Close(); err != nil {
			return err
		}
		st.file = nil
	}
	if err := os.Truncate(f.segPath(st, st.seq), st.applied); err != nil {
		return err
	}
	st.written = st.applied
	st.pending = nil
	f.mu.Lock()
	f.lags[st.shard].Corruptions++
	f.mu.Unlock()
	f.logf("shard %d: CRC-invalid suffix in segment %d quarantined to %s; refetching from %d", st.shard, st.seq, qpath, st.applied)
	return nil
}

// completeSegment finishes a fully-applied sealed segment: fsync the local
// copy, checkpoint the shard locally at the segment boundary (pruning
// covered local segments), acknowledge to the primary, advance the cursor.
func (f *Follower) completeSegment(ctx context.Context, st *shardTail) error {
	if st.file != nil {
		if err := st.file.Sync(); err != nil {
			return err
		}
		if err := st.file.Close(); err != nil {
			return err
		}
		st.file = nil
	}
	done := st.seq
	// A follower's state at a segment boundary is exactly "everything
	// before done+1" — the same invariant the primary's Checkpoint
	// establishes — so the local snapshot is a valid recovery point and
	// restart never re-applies (or re-ships) the completed segment.
	data, err := st.src.SnapshotAt(done + 1)
	if err != nil {
		return err
	}
	if err := source.WriteFileAtomic(st.ckpt, data); err != nil {
		return err
	}
	seqs, err := wal.ListSegments(st.dir)
	if err != nil {
		return err
	}
	for _, s := range seqs {
		if s <= done {
			if err := os.Remove(f.segPath(st, s)); err != nil && !os.IsNotExist(err) {
				return err
			}
		}
	}
	st.seq = done + 1
	st.written, st.applied = 0, 0
	st.pending = nil
	if err := f.ack(ctx, st.shard, done); err != nil {
		// The data is safe locally; the ack retries at the next poll.
		f.logf("shard %d: ack(%d) failed: %v (will retry)", st.shard, done, err)
		return nil
	}
	st.lastAcked = done
	return nil
}

// updateLag recomputes the shard's lag against the primary's listing.
func (f *Follower) updateLag(st *shardTail, segs []segmentInfo) {
	var segsBehind, bytesBehind int64
	for _, s := range segs {
		if s.Seq > st.seq {
			segsBehind++
			bytesBehind += s.Durable
		} else if s.Seq == st.seq && s.Durable > st.applied {
			bytesBehind += s.Durable - st.applied
		}
	}
	now := time.Now()
	f.mu.Lock()
	lag := &f.lags[st.shard]
	lag.Segment = st.seq
	lag.Offset = st.applied
	lag.SegmentsBehind = segsBehind
	lag.BytesBehind = bytesBehind
	lag.RecordsApplied = st.records
	lag.FetchedBytes = st.fetched
	lag.LastError = ""
	f.caught[st.shard] = bytesBehind == 0
	if bytesBehind == 0 {
		f.lastOK[st.shard] = now
	}
	f.mu.Unlock()
}

// noteRetry records a transient failure ahead of a backoff sleep.
func (f *Follower) noteRetry(st *shardTail, err error) {
	f.mu.Lock()
	f.lags[st.shard].Retries++
	f.lags[st.shard].LastError = err.Error()
	f.caught[st.shard] = false
	f.mu.Unlock()
	f.logf("shard %d: %v (backing off)", st.shard, err)
}

// markFailed latches a sticky failure: the shard needs operator attention
// (typically a restart, which re-bootstraps from the primary's current
// checkpoint).
func (f *Follower) markFailed(st *shardTail, err error) {
	f.mu.Lock()
	if f.failed[st.shard] == nil {
		f.failed[st.shard] = err
	}
	f.lags[st.shard].ResyncRequired = true
	f.lags[st.shard].LastError = err.Error()
	f.caught[st.shard] = false
	f.mu.Unlock()
	f.logf("shard %d: %v", st.shard, err)
}

func (f *Follower) shardFailed(i int) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.failed[i] != nil
}

// CaughtUp reports whether every shard was fully caught up with the
// primary's durable frontier at its last poll.
func (f *Follower) CaughtUp() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	for i := range f.caught {
		if !f.caught[i] || f.failed[i] != nil {
			return false
		}
	}
	return true
}

// Status returns the follower's replication state for /status and
// /metrics.
func (f *Follower) Status() FollowerStatus {
	now := time.Now()
	f.mu.Lock()
	defer f.mu.Unlock()
	st := FollowerStatus{Role: "follower", Primary: f.base, Promoted: f.promoted}
	for i := range f.lags {
		lag := f.lags[i]
		if !f.caught[i] {
			lag.SecondsBehind = now.Sub(f.lastOK[i]).Seconds()
		}
		st.Shards = append(st.Shards, lag)
	}
	st.Stale = f.staleLocked(now) != nil
	return st
}

// staleLocked is the bounded-staleness gate: nil while every shard is
// healthy and fresh enough.
// dtdvet:requires mu
func (f *Follower) staleLocked(now time.Time) error {
	if f.promoted {
		return nil
	}
	for i := range f.lags {
		if f.failed[i] != nil {
			return f.failed[i]
		}
		if f.opts.MaxStaleness > 0 && !f.caught[i] {
			if behind := now.Sub(f.lastOK[i]); behind > f.opts.MaxStaleness {
				return fmt.Errorf("replicate: shard %d is %.1fs behind (max staleness %s)", i, behind.Seconds(), f.opts.MaxStaleness)
			}
		}
	}
	return nil
}

// Promote turns the follower into a writable primary: tailers stop, each
// shard's local segment is truncated to its applied frame boundary (a
// half-fetched frame must not survive — the next recovery would quarantine
// everything after it), a fresh local WAL is attached positioned after the
// ingested history, and replica mode ends. Refused while any shard carries
// a sticky failure. The local directory remains manifest-pinned, so a
// restart recovers it through the ordinary sharded startup path.
func (f *Follower) Promote() error {
	f.mu.Lock()
	if f.promoted {
		f.mu.Unlock()
		return errors.New("replicate: already promoted")
	}
	for i := range f.failed {
		if f.failed[i] != nil {
			err := f.failed[i]
			f.mu.Unlock()
			return fmt.Errorf("replicate: refusing to promote: %w", err)
		}
	}
	f.mu.Unlock()
	f.stopTailers()
	for _, st := range f.tails {
		if st.file != nil {
			if err := st.file.Sync(); err != nil {
				return err
			}
			if err := st.file.Close(); err != nil {
				return err
			}
			st.file = nil
		}
		if st.applied < st.written {
			if err := os.Truncate(f.segPath(st, st.seq), st.applied); err != nil {
				return err
			}
			st.written = st.applied
			st.pending = nil
		}
		w, err := wal.Open(st.dir, f.opts.WAL)
		if err != nil {
			return err
		}
		// Keep new segment numbers at or above the cursor even when no
		// local segment file exists yet: the local checkpoint covers
		// everything below it, and recovery skips what it covers.
		w.SkipTo(st.seq)
		st.src.SetReplica(false)
		st.src.AttachWAL(w)
	}
	f.mu.Lock()
	f.promoted = true
	f.mu.Unlock()
	f.logf("promoted: serving writes from %s", f.opts.Dir)
	return nil
}

// Promoted reports whether Promote has completed.
func (f *Follower) Promoted() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.promoted
}

// Handler serves the read-only API plus the promotion endpoint. While
// unpromoted, non-GET requests answer 503 with a Retry-After; when the
// staleness gate trips, reads answer 503 too — except /status and
// /metrics, which operators need precisely then.
func (f *Follower) Handler() http.Handler {
	status := f.Status
	inner := api.NewEngine(f.eng, api.Options{Replication: func() any { s := status(); return &s }})
	mux := http.NewServeMux()
	mux.HandleFunc("POST /replication/promote", func(w http.ResponseWriter, _ *http.Request) {
		if err := f.Promote(); err != nil {
			writeError(w, http.StatusConflict, "promote: %v", err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]bool{"promoted": true})
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		promoted := f.promoted
		staleErr := f.staleLocked(time.Now())
		f.mu.Unlock()
		if !promoted {
			if r.Method != http.MethodGet {
				w.Header().Set("Retry-After", "5")
				writeError(w, http.StatusServiceUnavailable, "follower is read-only; write to the primary (or POST /replication/promote)")
				return
			}
			if staleErr != nil && r.URL.Path != "/status" && r.URL.Path != "/metrics" {
				w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(f.opts.Poll)))
				writeError(w, http.StatusServiceUnavailable, "follower too stale: %v", staleErr)
				return
			}
		}
		inner.ServeHTTP(w, r)
	})
	return mux
}

// retryAfterSeconds suggests a client retry delay from the poll interval.
func retryAfterSeconds(poll time.Duration) int {
	s := int((2 * poll).Seconds())
	if s < 1 {
		s = 1
	}
	return s
}

// --- HTTP client helpers ---

// fetchInfoRetry fetches the primary's layout, retrying with backoff until
// ctx expires: followers routinely start before (or during a restart of)
// their primary.
func (f *Follower) fetchInfoRetry(ctx context.Context) (infoResponse, error) {
	back := newBackoff(f.opts.BackoffBase, f.opts.BackoffMax)
	for {
		var info infoResponse
		err := f.getJSON(ctx, "info", url.Values{}, &info)
		if err == nil {
			return info, nil
		}
		f.logf("primary %s unreachable: %v (retrying)", f.base, err)
		t := time.NewTimer(back.next())
		select {
		case <-ctx.Done():
			t.Stop()
			return infoResponse{}, fmt.Errorf("replicate: primary %s unreachable: %w (last: %v)", f.base, ctx.Err(), err)
		case <-t.C:
		}
	}
}

func (f *Follower) fetchCheckpoint(ctx context.Context, i int) ([]byte, error) {
	q := url.Values{"shard": {strconv.Itoa(i)}}
	resp, err := f.do(ctx, http.MethodGet, "checkpoint", q)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close() // dtdvet:allow errsync -- response body; read errors surface from ReadAll
	switch resp.StatusCode {
	case http.StatusOK:
		return io.ReadAll(resp.Body)
	case http.StatusNoContent:
		return nil, nil
	default:
		return nil, httpStatusError("checkpoint", resp)
	}
}

func (f *Follower) fetchSegments(ctx context.Context, i int) ([]segmentInfo, error) {
	var segs []segmentInfo
	q := url.Values{"shard": {strconv.Itoa(i)}, "id": {f.opts.ID}}
	if err := f.getJSON(ctx, "segments", q, &segs); err != nil {
		return nil, err
	}
	return segs, nil
}

func (f *Follower) fetchChunk(ctx context.Context, i int, seq uint64, off int64) ([]byte, error) {
	q := url.Values{
		"shard": {strconv.Itoa(i)},
		"seq":   {strconv.FormatUint(seq, 10)},
		"off":   {strconv.FormatInt(off, 10)},
		"id":    {f.opts.ID},
	}
	resp, err := f.do(ctx, http.MethodGet, "segment", q)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close() // dtdvet:allow errsync -- response body; read errors surface from ReadAll
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNoContent, http.StatusNotFound:
		return nil, nil
	case http.StatusGone:
		return nil, errGone
	default:
		return nil, httpStatusError("segment", resp)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if want := resp.Header.Get(crcHeader); want != "" {
		if got := fmt.Sprintf("%08x", wal.Checksum(data)); got != want {
			return nil, fmt.Errorf("replicate: chunk CRC mismatch (got %s, want %s)", got, want)
		}
	}
	return data, nil
}

func (f *Follower) ack(ctx context.Context, i int, seq uint64) error {
	q := url.Values{
		"shard": {strconv.Itoa(i)},
		"seq":   {strconv.FormatUint(seq, 10)},
		"id":    {f.opts.ID},
	}
	return f.post(ctx, "ack", q)
}

func (f *Follower) do(ctx context.Context, method, path string, q url.Values) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, method, f.base+pathPrefix+path+"?"+q.Encode(), nil)
	if err != nil {
		return nil, err
	}
	return f.client.Do(req)
}

func (f *Follower) getJSON(ctx context.Context, path string, q url.Values, v any) error {
	resp, err := f.do(ctx, http.MethodGet, path, q)
	if err != nil {
		return err
	}
	defer resp.Body.Close() // dtdvet:allow errsync -- response body; read errors surface from Decode
	if resp.StatusCode != http.StatusOK {
		return httpStatusError(path, resp)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

func (f *Follower) post(ctx context.Context, path string, q url.Values) error {
	resp, err := f.do(ctx, http.MethodPost, path, q)
	if err != nil {
		return err
	}
	defer resp.Body.Close() // dtdvet:allow errsync -- response body; drained below
	if resp.StatusCode != http.StatusOK {
		return httpStatusError(path, resp)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	return nil
}

// httpStatusError folds a non-OK response (and its error body, if any)
// into an error.
func httpStatusError(what string, resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
	return fmt.Errorf("replicate: %s: %s: %s", what, resp.Status, string(body))
}
