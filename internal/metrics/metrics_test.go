package metrics

import (
	"testing"

	"dtdevolve/internal/dtd"
	"dtdevolve/internal/gen"
	"dtdevolve/internal/similarity"
	"dtdevolve/internal/xmltree"
)

func docs(t *testing.T, srcs ...string) []*xmltree.Document {
	t.Helper()
	out := make([]*xmltree.Document, len(srcs))
	for i, src := range srcs {
		doc, err := xmltree.ParseString(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		out[i] = doc
	}
	return out
}

var d = func() *dtd.DTD {
	d := dtd.MustParse(`<!ELEMENT a (b, c?)> <!ELEMENT b EMPTY> <!ELEMENT c EMPTY>`)
	d.Name = "a"
	return d
}()

func TestConformance(t *testing.T) {
	set := docs(t,
		`<a><b/></a>`,
		`<a><b/><c/></a>`,
		`<a><c/></a>`,     // invalid: b missing
		`<a><b/><b/></a>`, // invalid: b repeated
	)
	if got := Conformance(set, d); got != 0.5 {
		t.Errorf("conformance = %v, want 0.5", got)
	}
	if got := Conformance(nil, d); got != 0 {
		t.Errorf("conformance of empty set = %v", got)
	}
}

func TestMeanSimilarity(t *testing.T) {
	cfg := similarity.DefaultConfig()
	valid := docs(t, `<a><b/></a>`, `<a><b/><c/></a>`)
	if got := MeanSimilarity(valid, d, cfg); got != 1 {
		t.Errorf("mean similarity of valid docs = %v, want 1", got)
	}
	mixed := docs(t, `<a><b/></a>`, `<a><zz/><zz/><zz/></a>`)
	got := MeanSimilarity(mixed, d, cfg)
	if !(got > 0 && got < 1) {
		t.Errorf("mean similarity = %v, want in (0, 1)", got)
	}
}

func TestConciseness(t *testing.T) {
	// a: Seq + b + Opt + c = 4; b: EMPTY = 1; c: EMPTY = 1.
	if got := Conciseness(d); got != 6 {
		t.Errorf("conciseness = %d, want 6", got)
	}
	loose := dtd.MustParse(`<!ELEMENT a ANY>`)
	if got := Conciseness(loose); got != 1 {
		t.Errorf("conciseness = %d, want 1", got)
	}
}

func TestOverGeneralization(t *testing.T) {
	g := gen.New(gen.DefaultConfig(5))
	tight := OverGeneralization(d, g, 100, 2)
	anyDTD := dtd.MustParse(`<!ELEMENT a ANY>`)
	anyDTD.Name = "a"
	// Mutants of ANY documents may introduce undeclared novel elements,
	// so even ANY rejects some; but it must accept far more than a tight
	// schema.
	loose := OverGeneralization(anyDTD, gen.New(gen.DefaultConfig(5)), 100, 2)
	if !(tight < loose) {
		t.Errorf("tight (%v) should be below loose (%v)", tight, loose)
	}
	if tight > 0.6 {
		t.Errorf("tight DTD accepts %v of mutants", tight)
	}
}

func TestBehavioralDistance(t *testing.T) {
	g := gen.New(gen.DefaultConfig(9))
	if got := BehavioralDistance(d, d, g, 50); got != 0 {
		t.Errorf("distance to self = %v, want 0", got)
	}
	narrow := dtd.MustParse(`<!ELEMENT a (b)> <!ELEMENT b EMPTY> <!ELEMENT c EMPTY>`)
	narrow.Name = "a"
	got := BehavioralDistance(d, narrow, g, 200)
	if !(got > 0 && got < 1) {
		t.Errorf("distance = %v, want in (0, 1): narrow rejects docs with c", got)
	}
	wide := dtd.MustParse(`<!ELEMENT a (b?, c?)> <!ELEMENT b EMPTY> <!ELEMENT c EMPTY>`)
	wide.Name = "a"
	if got := BehavioralDistance(d, wide, g, 200); got != 0 {
		t.Errorf("distance to superset schema = %v, want 0", got)
	}
}
