// Package metrics defines the evaluation measures used by the benchmark
// harness (EXPERIMENTS.md): conformance, mean structural similarity, DTD
// conciseness, over-generalization, and a behavioral distance between DTDs.
package metrics

import (
	"dtdevolve/internal/dtd"
	"dtdevolve/internal/gen"
	"dtdevolve/internal/similarity"
	"dtdevolve/internal/validate"
	"dtdevolve/internal/xmltree"
)

// Conformance returns the fraction of documents that are strictly valid for
// the DTD.
func Conformance(docs []*xmltree.Document, d *dtd.DTD) float64 {
	if len(docs) == 0 {
		return 0
	}
	v := validate.New(d)
	valid := 0
	for _, doc := range docs {
		if len(v.ValidateDocument(doc)) == 0 {
			valid++
		}
	}
	return float64(valid) / float64(len(docs))
}

// MeanSimilarity returns the average global similarity of the documents
// against the DTD.
func MeanSimilarity(docs []*xmltree.Document, d *dtd.DTD, cfg similarity.Config) float64 {
	if len(docs) == 0 {
		return 0
	}
	e := similarity.NewEvaluator(d, cfg)
	sum := 0.0
	for _, doc := range docs {
		sum += e.GlobalSim(doc.Root)
	}
	return sum / float64(len(docs))
}

// Conciseness returns the total content-model node count across all element
// declarations: smaller is more concise.
func Conciseness(d *dtd.DTD) int {
	total := 0
	for _, m := range d.Elements {
		total += m.NodeCount()
	}
	return total
}

// OverGeneralization estimates how loose a DTD is: the fraction of randomly
// mutated documents (k mutations each) it still accepts. A tight DTD
// rejects most mutants; ANY-style declarations accept them all.
func OverGeneralization(d *dtd.DTD, g *gen.Generator, n, k int) float64 {
	if n <= 0 {
		return 0
	}
	v := validate.New(d)
	accepted := 0
	for i := 0; i < n; i++ {
		doc := g.Mutate(g.Document(d), k)
		if len(v.ValidateDocument(doc)) == 0 {
			accepted++
		}
	}
	return float64(accepted) / float64(n)
}

// BehavioralDistance measures how far candidate is from target as schemas:
// 1 minus the fraction of documents generated from target that candidate
// accepts. 0 means candidate covers target's population entirely.
func BehavioralDistance(target, candidate *dtd.DTD, g *gen.Generator, n int) float64 {
	if n <= 0 {
		return 1
	}
	return 1 - Conformance(g.Documents(target, n), candidate)
}
