package metrics

import (
	"sync/atomic"
	"time"
)

// Ingest aggregates operational counters for the source ingest pipeline:
// how many documents were offered, where they went, how often evolution
// fired, and how long the two phases of an Add (concurrent classification,
// write-locked commit) take. All methods are safe for concurrent use and
// nil-safe, so instrumentation points need no guards.
//
// These are service-side observability counters, complementing the offline
// evaluation measures (Conformance, MeanSimilarity, …) in this package.
type Ingest struct {
	added        atomic.Int64
	classified   atomic.Int64
	repository   atomic.Int64
	evolutions   atomic.Int64
	reclassified atomic.Int64
	batches      atomic.Int64

	classifyNS    atomic.Int64
	classifyCalls atomic.Int64
	commitNS      atomic.Int64
	commitCalls   atomic.Int64

	walErrors   atomic.Int64
	walGCErrors atomic.Int64
	checkpoints atomic.Int64

	// Streaming-ingest counters: documents that went through the one-pass
	// path, the input bytes they consumed, and documents rejected by the
	// byte budget.
	streamDocs             atomic.Int64
	streamBytes            atomic.Int64
	streamRejectedOversize atomic.Int64

	// Group-commit counters: how many WAL groups were committed, how many
	// documents they carried (groupDocs/groups is the mean group size), the
	// extreme sizes seen, and the instantaneous commit-queue depth.
	groups     atomic.Int64
	groupDocs  atomic.Int64
	groupMin   atomic.Int64 // 0 until the first group
	groupMax   atomic.Int64
	queueDepth atomic.Int64
}

// ObserveDocument records the outcome of one added document.
func (m *Ingest) ObserveDocument(classified bool) {
	if m == nil {
		return
	}
	m.added.Add(1)
	if classified {
		m.classified.Add(1)
	} else {
		m.repository.Add(1)
	}
}

// ObserveBatch records one AddBatch call.
func (m *Ingest) ObserveBatch() {
	if m == nil {
		return
	}
	m.batches.Add(1)
}

// ObserveEvolution records one run of the evolution phase.
func (m *Ingest) ObserveEvolution() {
	if m == nil {
		return
	}
	m.evolutions.Add(1)
}

// ObserveReclassified records n repository documents recovered by
// re-classification.
func (m *Ingest) ObserveReclassified(n int) {
	if m == nil || n == 0 {
		return
	}
	m.reclassified.Add(int64(n))
}

// ObserveClassifyPhase records the latency of one classification phase (the
// read-locked, concurrent scoring of one Add or AddBatch).
func (m *Ingest) ObserveClassifyPhase(d time.Duration) {
	if m == nil {
		return
	}
	m.classifyNS.Add(int64(d))
	m.classifyCalls.Add(1)
}

// ObserveCommitPhase records the latency of one commit phase (the
// write-locked record/check/evolve section of one Add or AddBatch).
func (m *Ingest) ObserveCommitPhase(d time.Duration) {
	if m == nil {
		return
	}
	m.commitNS.Add(int64(d))
	m.commitCalls.Add(1)
}

// ObserveGroup records one committed WAL group of n documents.
func (m *Ingest) ObserveGroup(n int) {
	if m == nil || n <= 0 {
		return
	}
	m.groups.Add(1)
	m.groupDocs.Add(int64(n))
	for {
		min := m.groupMin.Load()
		if min != 0 && min <= int64(n) {
			break
		}
		if m.groupMin.CompareAndSwap(min, int64(n)) {
			break
		}
	}
	for {
		max := m.groupMax.Load()
		if max >= int64(n) {
			break
		}
		if m.groupMax.CompareAndSwap(max, int64(n)) {
			break
		}
	}
}

// SetCommitQueueDepth records the current depth of the commit queue.
func (m *Ingest) SetCommitQueueDepth(n int) {
	if m == nil {
		return
	}
	m.queueDepth.Store(int64(n))
}

// ObserveStream records one document ingested through the streaming
// one-pass path and the input bytes it consumed.
func (m *Ingest) ObserveStream(bytes int64) {
	if m == nil {
		return
	}
	m.streamDocs.Add(1)
	m.streamBytes.Add(bytes)
}

// ObserveStreamRejectedOversize records one streamed document rejected by
// the byte budget (HTTP 413 at the serving layer).
func (m *Ingest) ObserveStreamRejectedOversize() {
	if m == nil {
		return
	}
	m.streamRejectedOversize.Add(1)
}

// ObserveWALError records a failed write-ahead-log append or sync — the
// event that degrades the service to read-only.
func (m *Ingest) ObserveWALError() {
	if m == nil {
		return
	}
	m.walErrors.Add(1)
}

// ObserveWALGCError records a failed WAL segment removal after a
// checkpoint. Retention failures cost disk, not correctness — recovery
// skips covered segments via the snapshot's WAL position — but a silently
// filling disk is an outage in the making, so they are counted.
func (m *Ingest) ObserveWALGCError() {
	if m == nil {
		return
	}
	m.walGCErrors.Add(1)
}

// ObserveCheckpoint records one completed checkpoint (snapshot written,
// covered WAL history truncated).
func (m *Ingest) ObserveCheckpoint() {
	if m == nil {
		return
	}
	m.checkpoints.Add(1)
}

// IngestSnapshot is a point-in-time copy of the counters, with derived
// per-call phase latencies. It is the JSON shape of the service's
// GET /metrics route.
type IngestSnapshot struct {
	// Added is the total number of documents offered (Add and AddBatch).
	Added int64 `json:"added"`
	// Classified counts documents that reached σ against some DTD.
	Classified int64 `json:"classified"`
	// Repository counts documents sent to the unclassified repository.
	Repository int64 `json:"repository"`
	// Evolutions counts runs of the evolution phase (automatic or forced).
	Evolutions int64 `json:"evolutions"`
	// Reclassified counts repository documents recovered after evolutions.
	Reclassified int64 `json:"reclassified"`
	// Batches counts AddBatch calls.
	Batches int64 `json:"batches"`

	// ClassifyNS / CommitNS are cumulative per-phase latencies; the Avg
	// variants divide by the number of calls (0 when none). The call counts
	// are exported so Aggregate can recompute exact averages across shards.
	ClassifyNS    int64 `json:"classify_ns_total"`
	CommitNS      int64 `json:"commit_ns_total"`
	ClassifyCalls int64 `json:"classify_calls,omitempty"`
	CommitCalls   int64 `json:"commit_calls,omitempty"`
	AvgClassifyNS int64 `json:"classify_ns_avg"`
	AvgCommitNS   int64 `json:"commit_ns_avg"`

	// Durability counters (DESIGN.md §10). The WAL* values mirror the
	// attached log's own statistics; WALErrors counts journal failures
	// (each marks the source degraded); WALGCErrors counts failed segment
	// removals after checkpoints (disk cost, not a correctness risk);
	// Checkpoints counts completed snapshot+truncate cycles.
	WALAppends   int64 `json:"wal_appends,omitempty"`
	WALBytes     int64 `json:"wal_bytes,omitempty"`
	WALSyncs     int64 `json:"wal_syncs,omitempty"`
	WALRotations int64 `json:"wal_rotations,omitempty"`
	WALErrors    int64 `json:"wal_errors,omitempty"`
	WALGCErrors  int64 `json:"wal_gc_errors,omitempty"`
	Checkpoints  int64 `json:"checkpoints,omitempty"`

	// Streaming-ingest counters (DESIGN.md §15): documents ingested through
	// the bounded-memory one-pass path, the input bytes they consumed, and
	// documents its byte budget rejected.
	StreamDocs             int64 `json:"stream_docs,omitempty"`
	StreamBytes            int64 `json:"stream_bytes,omitempty"`
	StreamRejectedOversize int64 `json:"stream_rejected_oversize,omitempty"`

	// Candidate-index shape (DESIGN.md §12): ClassifyPossible is the
	// alignments exhaustive scoring would have run (classifications ×
	// registered DTDs), ClassifyCandidates how many DTDs survived the
	// signature prefilter, ClassifyScored how many DP alignments actually
	// ran, ClassifyPruned how many surviving candidates the upper bound
	// skipped. ClassifyPruneRatio is 1 − Scored/Possible.
	ClassifyPossible   int64   `json:"classify_possible,omitempty"`
	ClassifyCandidates int64   `json:"classify_candidates,omitempty"`
	ClassifyScored     int64   `json:"classify_scored,omitempty"`
	ClassifyPruned     int64   `json:"classify_pruned,omitempty"`
	ClassifyPruneRatio float64 `json:"classify_prune_ratio,omitempty"`
	// InternedSymbols is the size of the source's label symbol table.
	InternedSymbols int64 `json:"interned_symbols,omitempty"`

	// Group-commit shape: size statistics of the WAL batches written by the
	// leader/follower commit pipeline, the current commit-queue depth, and
	// the amortized fsync cost per document (WALSyncs/Added; well under 1
	// when group commit is absorbing concurrent writers). The queue depth is
	// always present so dashboards can tell "group commit off" (other fields
	// absent) from "on but idle".
	WALGroups        int64   `json:"wal_groups,omitempty"`
	WALGroupSizeMin  int64   `json:"wal_group_size_min,omitempty"`
	WALGroupSizeMean float64 `json:"wal_group_size_mean,omitempty"`
	WALGroupSizeMax  int64   `json:"wal_group_size_max,omitempty"`
	CommitQueueDepth int64   `json:"commit_queue_depth"`
	FsyncsPerDoc     float64 `json:"fsyncs_per_doc,omitempty"`
}

// Snapshot returns a copy of the current counters. A nil Ingest yields the
// zero snapshot.
func (m *Ingest) Snapshot() IngestSnapshot {
	if m == nil {
		return IngestSnapshot{}
	}
	s := IngestSnapshot{
		Added:        m.added.Load(),
		Classified:   m.classified.Load(),
		Repository:   m.repository.Load(),
		Evolutions:   m.evolutions.Load(),
		Reclassified: m.reclassified.Load(),
		Batches:      m.batches.Load(),
		ClassifyNS:   m.classifyNS.Load(),
		CommitNS:     m.commitNS.Load(),
		WALErrors:    m.walErrors.Load(),
		WALGCErrors:  m.walGCErrors.Load(),
		Checkpoints:  m.checkpoints.Load(),

		StreamDocs:             m.streamDocs.Load(),
		StreamBytes:            m.streamBytes.Load(),
		StreamRejectedOversize: m.streamRejectedOversize.Load(),

		WALGroups:        m.groups.Load(),
		WALGroupSizeMin:  m.groupMin.Load(),
		WALGroupSizeMax:  m.groupMax.Load(),
		CommitQueueDepth: m.queueDepth.Load(),
	}
	s.ClassifyCalls = m.classifyCalls.Load()
	s.CommitCalls = m.commitCalls.Load()
	if s.ClassifyCalls > 0 {
		s.AvgClassifyNS = s.ClassifyNS / s.ClassifyCalls
	}
	if s.CommitCalls > 0 {
		s.AvgCommitNS = s.CommitNS / s.CommitCalls
	}
	if s.WALGroups > 0 {
		s.WALGroupSizeMean = float64(m.groupDocs.Load()) / float64(s.WALGroups)
	}
	return s
}

// Aggregate rolls per-shard snapshots up into one service-wide snapshot:
// counters sum, averages and ratios are recomputed from the summed
// numerators and denominators (not averaged-over-averages), the group-size
// min/max take the extremes of the shards that committed groups, and the
// commit-queue depth sums (total documents waiting service-wide).
func Aggregate(shards []IngestSnapshot) IngestSnapshot {
	var out IngestSnapshot
	var groupDocs float64
	for _, s := range shards {
		out.Added += s.Added
		out.Classified += s.Classified
		out.Repository += s.Repository
		out.Evolutions += s.Evolutions
		out.Reclassified += s.Reclassified
		out.Batches += s.Batches
		out.ClassifyNS += s.ClassifyNS
		out.CommitNS += s.CommitNS
		out.ClassifyCalls += s.ClassifyCalls
		out.CommitCalls += s.CommitCalls
		out.WALAppends += s.WALAppends
		out.WALBytes += s.WALBytes
		out.WALSyncs += s.WALSyncs
		out.WALRotations += s.WALRotations
		out.WALErrors += s.WALErrors
		out.WALGCErrors += s.WALGCErrors
		out.Checkpoints += s.Checkpoints
		out.StreamDocs += s.StreamDocs
		out.StreamBytes += s.StreamBytes
		out.StreamRejectedOversize += s.StreamRejectedOversize
		out.ClassifyPossible += s.ClassifyPossible
		out.ClassifyCandidates += s.ClassifyCandidates
		out.ClassifyScored += s.ClassifyScored
		out.ClassifyPruned += s.ClassifyPruned
		out.InternedSymbols += s.InternedSymbols
		out.WALGroups += s.WALGroups
		out.CommitQueueDepth += s.CommitQueueDepth
		groupDocs += s.WALGroupSizeMean * float64(s.WALGroups)
		if s.WALGroups > 0 {
			if out.WALGroupSizeMin == 0 || s.WALGroupSizeMin < out.WALGroupSizeMin {
				out.WALGroupSizeMin = s.WALGroupSizeMin
			}
			if s.WALGroupSizeMax > out.WALGroupSizeMax {
				out.WALGroupSizeMax = s.WALGroupSizeMax
			}
		}
	}
	if out.ClassifyCalls > 0 {
		out.AvgClassifyNS = out.ClassifyNS / out.ClassifyCalls
	}
	if out.CommitCalls > 0 {
		out.AvgCommitNS = out.CommitNS / out.CommitCalls
	}
	if out.ClassifyPossible > 0 {
		out.ClassifyPruneRatio = 1 - float64(out.ClassifyScored)/float64(out.ClassifyPossible)
	}
	if out.WALGroups > 0 {
		out.WALGroupSizeMean = groupDocs / float64(out.WALGroups)
	}
	if out.Added > 0 && out.WALSyncs > 0 {
		out.FsyncsPerDoc = float64(out.WALSyncs) / float64(out.Added)
	}
	return out
}
