package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestIngestCounters(t *testing.T) {
	var m Ingest
	m.ObserveDocument(true)
	m.ObserveDocument(true)
	m.ObserveDocument(false)
	m.ObserveBatch()
	m.ObserveEvolution()
	m.ObserveReclassified(3)
	m.ObserveClassifyPhase(10 * time.Millisecond)
	m.ObserveClassifyPhase(20 * time.Millisecond)
	m.ObserveCommitPhase(4 * time.Millisecond)

	s := m.Snapshot()
	if s.Added != 3 || s.Classified != 2 || s.Repository != 1 {
		t.Errorf("document counters = %+v", s)
	}
	if s.Batches != 1 || s.Evolutions != 1 || s.Reclassified != 3 {
		t.Errorf("lifecycle counters = %+v", s)
	}
	if s.AvgClassifyNS != int64(15*time.Millisecond) {
		t.Errorf("AvgClassifyNS = %d", s.AvgClassifyNS)
	}
	if s.AvgCommitNS != int64(4*time.Millisecond) {
		t.Errorf("AvgCommitNS = %d", s.AvgCommitNS)
	}
}

func TestIngestNilSafe(t *testing.T) {
	var m *Ingest
	m.ObserveDocument(true)
	m.ObserveBatch()
	m.ObserveEvolution()
	m.ObserveReclassified(1)
	m.ObserveClassifyPhase(time.Millisecond)
	m.ObserveCommitPhase(time.Millisecond)
	if s := m.Snapshot(); s != (IngestSnapshot{}) {
		t.Errorf("nil snapshot = %+v", s)
	}
}

func TestIngestConcurrent(t *testing.T) {
	var m Ingest
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				m.ObserveDocument(i%2 == 0)
				m.ObserveClassifyPhase(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	s := m.Snapshot()
	if s.Added != 800 || s.Classified != 400 || s.Repository != 400 {
		t.Errorf("concurrent counters = %+v", s)
	}
}
