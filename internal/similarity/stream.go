// Streaming evaluation: the global similarity of a document against one
// DTD computed from a Start/Text/End event stream, never holding the
// tree (DESIGN.md §15).
//
// The tree evaluator's recursion is replaced by an explicit frame stack:
// each open element carries the per-model state its triple needs — the
// accumulator of ANY/EMPTY/(#PCDATA)/mixed models, or one DP layer of the
// alignment automaton for element content. The [BGM01] alignment is
// sequential in the children, so one automaton-states-sized layer per open
// frame is enough: when a child element closes, its own triple (computed
// the same way, one level deeper) feeds exactly one DP transition of its
// parent. Memory is O(open depth × automaton states), independent of
// document size, and the arithmetic performs the identical floating-point
// operations in the identical order as Evaluator.Evaluate, so results are
// bit-identical (pinned by TestStreamEvalMatchesEvaluate).
//
// Each frame also tracks the boolean one-level validity of its element
// (validate.LocalValid semantics) so the recording path can reuse it: for
// element content this is a reachable-state bitset over the same automaton
// restricted to its zero-minus epsilon edges and exact-ID symbol edges.
// The one divergence between that automaton and the validator's matcher is
// a nested ANY inside element content (the matcher accepts any segment,
// the automaton compiles ANY to an empty-only epsilon); such models —
// vanishingly rare — fall back to buffering the child tags and asking the
// matcher at close.
package similarity

import (
	"math/bits"

	"dtdevolve/internal/dtd"
	"dtdevolve/internal/intern"
	"dtdevolve/internal/validate"
)

type streamMode int8

const (
	// modeOff: the element has no declaration in the DTD — no triple of its
	// own (its cost is carried by the parent as a plus component) and never
	// locally valid.
	modeOff streamMode = iota
	modeAny
	modeEmpty
	modePCDATA
	modeMixed
	modeContent
)

// sframe is the per-open-element state of one streaming evaluation.
type sframe struct {
	mode       streamMode
	declared   bool // the element name has a declaration in the DTD
	triples    bool // triple accumulation active (declared && depth < MaxDepth)
	degraded   bool // child budget exceeded: triple escalated to the ANY-style summary
	useTags    bool // nested-ANY model: validity via buffered tags + matcher
	hasText    bool // some non-whitespace text child (xmltree.Node.HasText semantics)
	mixedOK    bool // mixed validity: every element child so far is in the alphabet
	id         int32
	name       string
	decl       *dtd.Content
	set        *labelSet
	a          *nfa
	t          Triple   // ANY/EMPTY/PCDATA/mixed accumulator
	anyT       Triple   // ANY-style summary of a content frame, used when degraded
	textPlus   float64  // content models: one plus per text child
	childCount int      // all kept children (text nodes included)
	elemCount  int      // element children only
	cells      []cell   // content: current DP layer
	spare      []cell   // content: next DP layer (swapped each step)
	vbits      []uint64 // content: validity reachable-state set
	vspare     []uint64
	tags       []string // nested-ANY fallback: buffered child tags
}

// StreamEval scores one document against one DTD from a stream of events.
// Obtain one from Pool.GetStream, feed Start/Text/End in document order,
// read Result after the root closes, and return it with Pool.PutStream.
// Not safe for concurrent use.
type StreamEval struct {
	e      *Evaluator
	frames []sframe
	n      int // open frames
	// sc provides the worklist scratch relaxEps and the validity closure
	// share; owned (not drawn from scratchPool) so a pooled StreamEval
	// keeps warm buffers.
	sc           alignScratch
	anyNested    map[*dtd.Content]bool
	rootT        Triple
	rootDeclared bool
	closed       bool
}

// GetStream borrows a streaming evaluator for the pool's DTD. Return it
// with PutStream.
func (p *Pool) GetStream() *StreamEval {
	if v := p.streams.Get(); v != nil {
		se := v.(*StreamEval)
		se.Reset()
		return se
	}
	return &StreamEval{e: p.Get(), anyNested: make(map[*dtd.Content]bool)}
}

// PutStream returns a streaming evaluator to the pool.
func (p *Pool) PutStream(se *StreamEval) {
	if se != nil && se.e != nil && se.e.d == p.d {
		p.streams.Put(se)
	}
}

// Reset prepares the evaluator for a new document.
func (se *StreamEval) Reset() {
	se.n = 0
	se.rootT = Triple{}
	se.rootDeclared = false
	se.closed = false
}

// Declared reports whether name is declared by the DTD under evaluation.
func (se *StreamEval) Declared(name string) bool {
	_, ok := se.e.d.Elements[name]
	return ok
}

// Start opens an element with interned label id. name must stay valid
// until the matching End (interned names are).
func (se *StreamEval) Start(id int32, name string) {
	if se.n == len(se.frames) {
		se.frames = append(se.frames, sframe{})
	}
	f := &se.frames[se.n]
	depth := se.n
	se.n++
	decl, declared := se.e.d.Elements[name]
	f.id, f.name, f.decl, f.declared = id, name, decl, declared
	f.triples = declared && depth < se.e.cfg.MaxDepth
	f.degraded, f.useTags, f.hasText = false, false, false
	f.mixedOK = true
	f.t, f.anyT, f.textPlus = Triple{}, Triple{}, 0
	f.childCount, f.elemCount = 0, 0
	f.tags = f.tags[:0]
	switch {
	case !declared:
		f.mode = modeOff
	case decl == nil || decl.Kind == dtd.Any:
		f.mode = modeAny
	case decl.Kind == dtd.Empty:
		f.mode = modeEmpty
	case decl.Kind == dtd.PCDATA:
		f.mode = modePCDATA
	case decl.IsMixed():
		f.mode = modeMixed
		f.set = se.e.mixedSet(decl)
	default:
		f.mode = modeContent
		f.a = se.e.compiled(decl)
		se.initContent(f)
	}
}

// initContent prepares the DP layer and validity set of a content frame.
func (se *StreamEval) initContent(f *sframe) {
	n := len(f.a.eps)
	if cap(f.cells) < n {
		f.cells = make([]cell, n)
		f.spare = make([]cell, n)
	}
	f.cells, f.spare = f.cells[:n], f.spare[:n]
	se.growScratch(n)
	if f.triples {
		for i := range f.cells {
			f.cells[i] = cell{}
		}
		f.cells[f.a.start] = cell{ok: true}
		se.e.relaxEps(f.a, f.cells, &se.sc)
	}
	words := (n + 63) / 64
	if cap(f.vbits) < words {
		f.vbits = make([]uint64, words)
		f.vspare = make([]uint64, words)
	}
	f.vbits, f.vspare = f.vbits[:words], f.vspare[:words]
	if f.useTags = se.nestedAny(f.decl); f.useTags {
		return
	}
	for i := range f.vbits {
		f.vbits[i] = 0
	}
	f.vbits[f.a.start/64] |= 1 << (uint(f.a.start) % 64)
	se.closure0(f.a, f.vbits)
}

// growScratch sizes the shared worklist scratch for n automaton states.
func (se *StreamEval) growScratch(n int) {
	if len(se.sc.inWork) < n {
		se.sc.inWork = make([]bool, n)
	}
}

// nestedAny reports whether model contains an ANY leaf below the top level:
// the matcher accepts any child segment there, the compiled automaton does
// not, so validity must go through the matcher.
func (se *StreamEval) nestedAny(model *dtd.Content) bool {
	if v, ok := se.anyNested[model]; ok {
		return v
	}
	v := false
	for _, ch := range model.Children {
		if containsAny(ch) {
			v = true
			break
		}
	}
	se.anyNested[model] = v
	return v
}

func containsAny(c *dtd.Content) bool {
	if c.Kind == dtd.Any {
		return true
	}
	for _, ch := range c.Children {
		if containsAny(ch) {
			return true
		}
	}
	return false
}

// Text records one kept text child of the open element; nonWS reports
// whether it contains non-whitespace data.
// dtdvet:noalloc
func (se *StreamEval) Text(nonWS bool) {
	f := &se.frames[se.n-1]
	f.childCount++
	if nonWS {
		f.hasText = true
	}
	if !f.triples {
		return
	}
	switch f.mode {
	case modeEmpty:
		// weightedSize of a text node is exactly 1.
		f.t.Plus++
	case modeContent:
		f.textPlus++
	}
}

// DegradeTop marks the open element as over the child budget: its triple
// degrades to the ANY-style set summary and it is never locally valid.
func (se *StreamEval) DegradeTop() {
	se.frames[se.n-1].degraded = true
}

// End closes the open element. childW is its weighted size (1 +
// Decay·Σ weighted sizes of its children, text nodes weighing 1). It
// returns whether the element's direct content is valid for its own
// declaration — false when undeclared — matching the recorder's
// decl != nil && LocalValid test.
// dtdvet:noalloc
func (se *StreamEval) End(childW float64) (valid bool) {
	f := &se.frames[se.n-1]
	se.n--
	valid = se.conforms(f)
	var tr Triple
	if f.triples {
		tr = se.ownTriple(f)
	}
	if se.n == 0 {
		se.rootT = tr
		se.rootDeclared = f.declared
		se.closed = true
		return valid
	}
	p := &se.frames[se.n-1]
	p.childCount++
	p.elemCount++
	se.consume(p, f.id, f.name, f.declared, childW, tr)
	return valid
}

// conforms is localConforms over the frame's accumulated state.
func (se *StreamEval) conforms(f *sframe) bool {
	if !f.declared || f.decl == nil || f.degraded {
		// Undeclared elements are never counted valid by the recorder; a
		// declared-but-nil model cannot arise from the DTD parser but would
		// be invalid there too. Degraded frames dropped their exact state.
		return false
	}
	switch f.mode {
	case modeAny:
		return true
	case modeEmpty:
		return f.childCount == 0
	case modePCDATA:
		return f.elemCount == 0
	case modeMixed:
		return f.mixedOK
	default:
		if f.hasText {
			return false
		}
		if f.useTags {
			return validate.MatchModel(f.decl, f.tags)
		}
		return f.vbits[f.a.accept/64]&(1<<(uint(f.a.accept)%64)) != 0
	}
}

// ownTriple finalizes the closing frame's triple — the value
// elementTriple(n, decl, depth, true) computes on the tree.
func (se *StreamEval) ownTriple(f *sframe) Triple {
	switch f.mode {
	case modePCDATA:
		if f.hasText {
			f.t.Common++
		}
		return f.t
	case modeContent:
		if f.degraded {
			return f.anyT
		}
		t := Triple{Minus: 1}
		if f.cells[f.a.accept].ok {
			t = f.cells[f.a.accept].t
		}
		t.Plus += f.textPlus
		return t
	default: // modeAny, modeEmpty, modeMixed
		return f.t
	}
}

// consume applies one closed child element to its parent frame: the
// parent's triple advances exactly as the corresponding branch of
// elementTriple would, and its validity state consumes the child's tag.
// dtdvet:noalloc
func (se *StreamEval) consume(p *sframe, cid int32, name string, childDeclared bool, childW float64, childT Triple) {
	decay := se.e.cfg.Decay
	if p.triples {
		switch p.mode {
		case modeAny:
			if childDeclared {
				p.t = p.t.Add(partialMatch(1))
				p.t = p.t.Add(childT.Scale(decay))
			} else {
				p.t.Plus += childW
			}
		case modeEmpty, modePCDATA:
			p.t.Plus += childW
		case modeMixed:
			if p.inMixedSet(cid) {
				p.t = p.t.Add(partialMatch(1))
				if childDeclared {
					p.t = p.t.Add(childT.Scale(decay))
				}
			} else {
				p.t.Plus += childW
			}
		case modeContent:
			// The ANY-style summary runs alongside the DP so a later budget
			// overflow can degrade the frame without replaying its children.
			if childDeclared {
				p.anyT = p.anyT.Add(partialMatch(1))
				p.anyT = p.anyT.Add(childT.Scale(decay))
			} else {
				p.anyT.Plus += childW
			}
			if !p.degraded {
				delta := partialMatch(1)
				if childDeclared {
					delta = delta.Add(childT.Scale(decay))
				}
				se.dpStep(p, cid, childW, delta)
			}
		}
	}
	// Validity consumes the child tag at every depth (recording is not
	// depth-capped), independent of the triple accumulation above.
	switch p.mode {
	case modeMixed:
		if p.mixedOK && !p.inMixedSet(cid) {
			p.mixedOK = false
		}
	case modeContent:
		if p.degraded {
			return
		}
		if p.useTags {
			p.tags = append(p.tags, name)
			return
		}
		se.vStep(p, cid)
	}
}

// inMixedSet reports whether cid is in the mixed model's label alphabet.
// dtdvet:noalloc
func (p *sframe) inMixedSet(cid int32) bool {
	if cid == intern.None {
		return false
	}
	for _, lid := range p.set.ids {
		if lid == cid {
			return true
		}
	}
	return false
}

// dpStep advances the parent's DP layer by one child element, mirroring
// the per-child body of Evaluator.align: the skip move at plus cost
// childW, the symbol moves at delta, then the epsilon relaxation.
// dtdvet:noalloc
func (se *StreamEval) dpStep(p *sframe, cid int32, childW float64, delta Triple) {
	a := p.a
	cur, next := p.cells, p.spare
	for i := range next {
		next[i] = cell{}
	}
	for s := range cur {
		if !cur[s].ok {
			continue
		}
		se.e.improve(next, s, cur[s].t.Add(Triple{Plus: childW}))
		for _, edge := range a.syms[s] {
			if cid == intern.None || cid != edge.id {
				continue
			}
			se.e.improve(next, edge.to, cur[s].t.Add(delta))
		}
	}
	p.cells, p.spare = next, cur
	se.e.relaxEps(a, p.cells, &se.sc)
}

// vStep advances the validity reachable set by one child element: exact-ID
// symbol moves, then the zero-minus epsilon closure.
// dtdvet:noalloc
func (se *StreamEval) vStep(p *sframe, cid int32) {
	a := p.a
	for i := range p.vspare {
		p.vspare[i] = 0
	}
	for w, word := range p.vbits {
		for word != 0 {
			s := w*64 + bits.TrailingZeros64(word)
			word &= word - 1
			for _, edge := range a.syms[s] {
				if cid != intern.None && cid == edge.id {
					p.vspare[edge.to/64] |= 1 << (uint(edge.to) % 64)
				}
			}
		}
	}
	p.vbits, p.vspare = p.vspare, p.vbits
	se.closure0(a, p.vbits)
}

// closure0 closes bits over the automaton's zero-minus epsilon edges (the
// structural edges; skip edges carry a positive minus and are excluded).
// dtdvet:noalloc
func (se *StreamEval) closure0(a *nfa, set []uint64) {
	work := se.sc.work[:0]
	for w, word := range set {
		for word != 0 {
			work = append(work, w*64+bits.TrailingZeros64(word))
			word &= word - 1
		}
	}
	for len(work) > 0 {
		s := work[len(work)-1]
		work = work[:len(work)-1]
		for _, edge := range a.eps[s] {
			if edge.minus != 0 {
				continue
			}
			if set[edge.to/64]&(1<<(uint(edge.to)%64)) == 0 {
				set[edge.to/64] |= 1 << (uint(edge.to) % 64)
				work = append(work, edge.to)
			}
		}
	}
	se.sc.work = work[:0]
}

// Result returns the evaluation after the root element has closed: the
// same Global (and root Triple) Evaluator.Evaluate computes on the tree.
// The Local degree is not computed on the streaming path.
func (se *StreamEval) Result() Result {
	if !se.closed || !se.rootDeclared {
		return Result{}
	}
	t := partialMatch(1).Add(se.rootT.Scale(se.e.cfg.Decay))
	return Result{Global: se.e.cfg.Eval(t), Triple: t}
}
