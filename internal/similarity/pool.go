package similarity

import (
	"sync"

	"dtdevolve/internal/dtd"
	"dtdevolve/internal/xmltree"
)

// sharedTables holds the per-DTD memo tables shared by every Evaluator of a
// Pool: the required-weight table and the compiled alignment automata. Both
// are built once at Pool construction and are read-only afterwards, so
// pooled evaluators consult them without locking.
type sharedTables struct {
	req  map[string]float64
	nfas map[*dtd.Content]*nfa
}

// Pool hands out Evaluators for one DTD so that many goroutines can score
// documents against it concurrently. The evaluator memo maps are
// unsynchronized by design (they sit on the scoring hot path); the pool
// keeps the expensive, DTD-derived tables — required weights and compiled
// alignment automata — in a shared read-only structure precompiled at
// construction, and gives each borrowed evaluator its own private maps for
// anything not precompiled.
//
// Get/Put follow the usual sync.Pool discipline; Evaluate and GlobalSim
// wrap a borrow-score-return cycle for the common case.
type Pool struct {
	d      *dtd.DTD
	shared *sharedTables
	pool   sync.Pool
}

// NewPool precompiles the alignment automata and required-weight table of d
// and returns a pool of evaluators sharing them. The DTD must not be
// mutated while the pool is in use; register a fresh pool after an
// evolution instead.
func NewPool(d *dtd.DTD, cfg Config) *Pool {
	seed := NewEvaluator(d, cfg)
	for name, model := range d.Elements {
		seed.requiredWeight(name, make(map[string]bool))
		if isElementContent(model) {
			seed.compiled(model)
		}
	}
	shared := &sharedTables{req: seed.reqMemo, nfas: seed.nfaMemo}
	p := &Pool{d: d, shared: shared}
	p.pool.New = func() any {
		e := NewEvaluator(d, cfg)
		e.shared = shared
		return e
	}
	return p
}

// isElementContent reports whether elementTriple would compile an alignment
// automaton for model (i.e. it is regular element content, not EMPTY, ANY,
// (#PCDATA) or mixed).
func isElementContent(m *dtd.Content) bool {
	if m == nil {
		return false
	}
	switch m.Kind {
	case dtd.Any, dtd.Empty, dtd.PCDATA:
		return false
	}
	return !m.IsMixed()
}

// DTD returns the DTD the pool scores against.
func (p *Pool) DTD() *dtd.DTD { return p.d }

// Get borrows an evaluator. Return it with Put when done; evaluators must
// not be used concurrently or after Put.
func (p *Pool) Get() *Evaluator { return p.pool.Get().(*Evaluator) }

// Put returns a borrowed evaluator to the pool. Evaluators built for a
// different DTD are dropped.
func (p *Pool) Put(e *Evaluator) {
	if e != nil && e.d == p.d {
		p.pool.Put(e)
	}
}

// Evaluate scores root with a pooled evaluator. Safe for concurrent use.
func (p *Pool) Evaluate(root *xmltree.Node) Result {
	e := p.Get()
	defer p.Put(e)
	return e.Evaluate(root)
}

// GlobalSim returns only the global degree of Evaluate. Safe for concurrent
// use.
func (p *Pool) GlobalSim(root *xmltree.Node) float64 {
	return p.Evaluate(root).Global
}
