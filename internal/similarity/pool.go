package similarity

import (
	"sync"

	"dtdevolve/internal/dtd"
	"dtdevolve/internal/intern"
	"dtdevolve/internal/xmltree"
)

// sharedTables holds the per-DTD memo tables shared by every Evaluator of a
// Pool: the symbol table, the required-weight table (indexed by label ID,
// NaN = no entry), the compiled alignment automata, and the interned label
// sets of mixed models. All are built once at Pool construction and are
// read-only afterwards (the Table extends itself internally and is safe
// for concurrent use), so pooled evaluators consult them without locking.
type sharedTables struct {
	tab   *intern.Table
	req   []float64
	nfas  map[*dtd.Content]*nfa
	mixed map[*dtd.Content]*labelSet
}

// Pool hands out Evaluators for one DTD so that many goroutines can score
// documents against it concurrently. The evaluator memo structures are
// unsynchronized by design (they sit on the scoring hot path); the pool
// keeps the expensive, DTD-derived tables — required weights, compiled
// alignment automata and mixed-model alphabets — in a shared read-only
// structure precompiled at construction, and gives each borrowed evaluator
// its own private memos for anything not precompiled.
//
// Get/Put follow the usual sync.Pool discipline; Evaluate and GlobalSim
// wrap a borrow-score-return cycle for the common case.
type Pool struct {
	d      *dtd.DTD
	shared *sharedTables
	bound  Bound
	pool   sync.Pool
	// streams pools StreamEvals (each owning a borrowed evaluator) for the
	// streaming ingest path; see stream.go.
	streams sync.Pool
}

// NewPool precompiles the alignment automata and required-weight table of d
// and returns a pool of evaluators sharing them, interning d's labels into
// a fresh symbol table. The DTD must not be mutated while the pool is in
// use; register a fresh pool after an evolution instead.
func NewPool(d *dtd.DTD, cfg Config) *Pool {
	return NewPoolWithTable(d, cfg, intern.NewTable())
}

// NewPoolWithTable is NewPool with a caller-provided symbol table, so one
// source can share a single table across the pools of all its DTDs and its
// recorders — IDs stamped on a document stay valid everywhere.
func NewPoolWithTable(d *dtd.DTD, cfg Config, tab *intern.Table) *Pool {
	intern.InternDTD(tab, d)
	seed := newEvaluator(d, cfg, tab)
	for name, model := range d.Elements {
		seed.requiredWeightName(name)
		if isElementContent(model) {
			seed.compiled(model)
		} else if model != nil && model.IsMixed() {
			seed.mixedSet(model)
		}
	}
	shared := &sharedTables{
		tab:   tab,
		req:   seed.reqMemo,
		nfas:  seed.nfaMemo,
		mixed: seed.mixedMemo,
	}
	p := &Pool{d: d, shared: shared, bound: computeBound(d, cfg, seed)}
	p.pool.New = func() any {
		e := newEvaluator(d, cfg, tab)
		e.shared = shared
		return e
	}
	return p
}

// isElementContent reports whether elementTriple would compile an alignment
// automaton for model (i.e. it is regular element content, not EMPTY, ANY,
// (#PCDATA) or mixed).
func isElementContent(m *dtd.Content) bool {
	if m == nil {
		return false
	}
	switch m.Kind {
	case dtd.Any, dtd.Empty, dtd.PCDATA:
		return false
	}
	return !m.IsMixed()
}

// DTD returns the DTD the pool scores against.
func (p *Pool) DTD() *dtd.DTD { return p.d }

// Table returns the symbol table shared by the pool's evaluators.
func (p *Pool) Table() *intern.Table { return p.shared.tab }

// Get borrows an evaluator. Return it with Put when done; evaluators must
// not be used concurrently or after Put.
func (p *Pool) Get() *Evaluator { return p.pool.Get().(*Evaluator) }

// Put returns a borrowed evaluator to the pool. Evaluators built for a
// different DTD are dropped.
func (p *Pool) Put(e *Evaluator) {
	if e != nil && e.d == p.d {
		p.pool.Put(e)
	}
}

// Evaluate scores root with a pooled evaluator. Safe for concurrent use.
func (p *Pool) Evaluate(root *xmltree.Node) Result {
	e := p.Get()
	defer p.Put(e)
	return e.Evaluate(root)
}

// GlobalSim returns only the global degree of Evaluate. Safe for concurrent
// use.
func (p *Pool) GlobalSim(root *xmltree.Node) float64 {
	return p.Evaluate(root).Global
}
