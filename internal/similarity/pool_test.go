package similarity

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"dtdevolve/internal/dtd"
	"dtdevolve/internal/xmltree"
)

// TestEvaluateClearsTriMemo is the regression test for the evaluator memo
// leak: triMemo is keyed by live document nodes, so a long-lived evaluator
// reused across documents must not retain entries (and thus whole document
// trees) after Evaluate returns.
func TestEvaluateClearsTriMemo(t *testing.T) {
	d := dtd.MustParse(`
<!ELEMENT doc (sec, sec, sec)>
<!ELEMENT sec (title?, para*)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT para (#PCDATA)>`)
	e := NewEvaluator(d, DefaultConfig())
	for i := 0; i < 5; i++ {
		root := parseDoc(t, `<doc><sec><title>t</title><para>p</para></sec><sec/><sec><para>q</para></sec></doc>`)
		if sim := e.Evaluate(root).Global; sim <= 0 {
			t.Fatalf("document %d: unexpected similarity %v", i, sim)
		}
		if n := len(e.triMemo); n != 0 {
			t.Fatalf("document %d: triMemo retains %d entries after Evaluate", i, n)
		}
	}
}

func TestAlignChildrenClearsTriMemo(t *testing.T) {
	d := dtd.MustParse(`
<!ELEMENT doc (a, b)>
<!ELEMENT a (#PCDATA)>
<!ELEMENT b (a)>`)
	e := NewEvaluator(d, DefaultConfig())
	root := parseDoc(t, `<doc><a>x</a><b><a>y</a></b></doc>`)
	ops := e.AlignChildren(d.Elements["doc"], root.ChildElements())
	if len(ops) == 0 {
		t.Fatal("expected alignment ops")
	}
	if n := len(e.triMemo); n != 0 {
		t.Fatalf("triMemo retains %d entries after AlignChildren", n)
	}
}

// TestPoolMatchesStandaloneEvaluator checks that pooled evaluators, which
// share precompiled automata and required-weight tables, score exactly like
// a fresh standalone evaluator.
func TestPoolMatchesStandaloneEvaluator(t *testing.T) {
	d := dtd.MustParse(`
<!ELEMENT doc (head, section+)>
<!ELEMENT head (title, meta*)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT meta EMPTY>
<!ELEMENT section (heading?, (para | list)*)>
<!ELEMENT heading (#PCDATA)>
<!ELEMENT para (#PCDATA)>
<!ELEMENT list (item+)>
<!ELEMENT item (#PCDATA)>`)
	docs := []string{
		`<doc><head><title>t</title></head><section><para>p</para></section></doc>`,
		`<doc><head><title>t</title><meta/></head><section><heading>h</heading><list><item>i</item></list></section></doc>`,
		`<doc><section><para>p</para><extra/></section></doc>`,
		`<other><para>p</para></other>`,
	}
	p := NewPool(d, DefaultConfig())
	for _, src := range docs {
		root := parseDoc(t, src)
		want := NewEvaluator(d, DefaultConfig()).Evaluate(root)
		got := p.Evaluate(root)
		if math.Abs(got.Global-want.Global) > 1e-12 || math.Abs(got.Local-want.Local) > 1e-12 {
			t.Errorf("%s: pool = (%v, %v), standalone = (%v, %v)",
				src, got.Global, got.Local, want.Global, want.Local)
		}
	}
}

// TestPoolConcurrent hammers one pool from many goroutines and checks every
// result against the serial answer (run with -race).
func TestPoolConcurrent(t *testing.T) {
	d := dtd.MustParse(`
<!ELEMENT doc (sec+)>
<!ELEMENT sec (title, para*)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT para (#PCDATA)>`)
	docs := make([]string, 8)
	for i := range docs {
		docs[i] = `<doc>`
		for j := 0; j <= i; j++ {
			docs[i] += fmt.Sprintf(`<sec><title>t%d</title><para>p</para></sec>`, j)
		}
		docs[i] += `<stray/></doc>`
	}
	roots := make([]*xmltree.Node, len(docs))
	want := make([]float64, len(docs))
	p := NewPool(d, DefaultConfig())
	for i, src := range docs {
		roots[i] = parseDoc(t, src)
		want[i] = NewEvaluator(d, DefaultConfig()).GlobalSim(roots[i])
	}
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := (g + i) % len(docs)
				if got := p.GlobalSim(roots[k]); math.Abs(got-want[k]) > 1e-12 {
					errs <- fmt.Sprintf("doc %d: got %v, want %v", k, got, want[k])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}
