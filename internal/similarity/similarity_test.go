package similarity

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dtdevolve/internal/dtd"
	"dtdevolve/internal/validate"
	"dtdevolve/internal/xmltree"
)

func parseDoc(t *testing.T, src string) *xmltree.Node {
	t.Helper()
	doc, err := xmltree.ParseString(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return doc.Root
}

// TestPaperExample1 reproduces Example 1 of the paper: for the document
// <a><b>5</b><c>7</c></a> and the DTD of Figure 2, the local similarity of
// element a is full, while the global similarity of the document is not,
// because element c has data content where the DTD requires a subelement d.
func TestPaperExample1(t *testing.T) {
	d := dtd.MustParse(`
<!ELEMENT a (b, c)>
<!ELEMENT b (#PCDATA)>
<!ELEMENT c (d)>
<!ELEMENT d (#PCDATA)>`)
	root := parseDoc(t, `<a><b>5</b><c>7</c></a>`)
	e := NewEvaluator(d, DefaultConfig())
	res := e.Evaluate(root)
	if res.Local != 1 {
		t.Errorf("local similarity of a = %v, want 1 (full)", res.Local)
	}
	if res.Global >= 1 {
		t.Errorf("global similarity = %v, want < 1", res.Global)
	}
	if res.Global <= 0 {
		t.Errorf("global similarity = %v, want > 0", res.Global)
	}
	// Element c itself: local similarity against (d) is not full.
	c := root.ChildElements()[1]
	if sim := e.LocalSim(c, d.Elements["c"]); sim >= 1 {
		t.Errorf("local similarity of c = %v, want < 1", sim)
	}
}

func TestValidDocumentHasGlobalSimilarityOne(t *testing.T) {
	d := dtd.MustParse(`
<!ELEMENT catalog (product+)>
<!ELEMENT product (name, price?, (tag | category)*)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT price (#PCDATA)>
<!ELEMENT tag (#PCDATA)>
<!ELEMENT category (#PCDATA)>`)
	docs := []string{
		`<catalog><product><name>n</name></product></catalog>`,
		`<catalog><product><name>n</name><price>1</price><tag>t</tag><category>c</category></product></catalog>`,
		`<catalog><product><name>n</name><tag>a</tag><tag>b</tag></product><product><name>m</name></product></catalog>`,
	}
	e := NewEvaluator(d, DefaultConfig())
	for _, src := range docs {
		if sim := e.GlobalSim(parseDoc(t, src)); sim != 1 {
			t.Errorf("global similarity of valid doc = %v, want 1\n%s", sim, src)
		}
	}
}

func TestMissingAndExtraElementsLowerSimilarity(t *testing.T) {
	d := dtd.MustParse(`
<!ELEMENT a (b, c, d)>
<!ELEMENT b EMPTY>
<!ELEMENT c EMPTY>
<!ELEMENT d EMPTY>`)
	e := NewEvaluator(d, DefaultConfig())
	full := e.GlobalSim(parseDoc(t, `<a><b/><c/><d/></a>`))
	missingOne := e.GlobalSim(parseDoc(t, `<a><b/><c/></a>`))
	missingTwo := e.GlobalSim(parseDoc(t, `<a><b/></a>`))
	extra := e.GlobalSim(parseDoc(t, `<a><b/><c/><d/><z/></a>`))
	if full != 1 {
		t.Errorf("full = %v, want 1", full)
	}
	if !(missingOne < full) || !(missingTwo < missingOne) {
		t.Errorf("missing-element degradation: %v, %v, %v", full, missingOne, missingTwo)
	}
	if !(extra < full) {
		t.Errorf("extra element did not lower similarity: %v", extra)
	}
}

func TestOperatorViolationsLowerSimilarity(t *testing.T) {
	d := dtd.MustParse(`
<!ELEMENT a (b, c?)>
<!ELEMENT b EMPTY>
<!ELEMENT c EMPTY>`)
	e := NewEvaluator(d, DefaultConfig())
	if sim := e.GlobalSim(parseDoc(t, `<a><b/></a>`)); sim != 1 {
		t.Errorf("optional absent: sim = %v, want 1", sim)
	}
	// c repeated although declared at most once.
	repeated := e.GlobalSim(parseDoc(t, `<a><b/><c/><c/></a>`))
	if repeated >= 1 {
		t.Errorf("repeated optional: sim = %v, want < 1", repeated)
	}
}

func TestChoiceTakesBestAlternative(t *testing.T) {
	d := dtd.MustParse(`
<!ELEMENT a ((b, c) | (d, e, f))>
<!ELEMENT b EMPTY> <!ELEMENT c EMPTY> <!ELEMENT d EMPTY>
<!ELEMENT e EMPTY> <!ELEMENT f EMPTY>`)
	e := NewEvaluator(d, DefaultConfig())
	if sim := e.GlobalSim(parseDoc(t, `<a><d/><e/><f/></a>`)); sim != 1 {
		t.Errorf("second alternative: sim = %v, want 1", sim)
	}
	// [d, e] is closer to (d, e, f) than to (b, c): one minus vs two
	// minuses plus two pluses.
	partial := e.GlobalSim(parseDoc(t, `<a><d/><e/></a>`))
	if partial <= 0.5 {
		t.Errorf("partial second alternative: sim = %v, want > 0.5", partial)
	}
}

func TestLocalIgnoresSubelementDeclarations(t *testing.T) {
	d := dtd.MustParse(`
<!ELEMENT a (b)>
<!ELEMENT b (x, y, z)>
<!ELEMENT x EMPTY> <!ELEMENT y EMPTY> <!ELEMENT z EMPTY>`)
	e := NewEvaluator(d, DefaultConfig())
	root := parseDoc(t, `<a><b/></a>`) // b is empty: violates b's declaration
	res := e.Evaluate(root)
	if res.Local != 1 {
		t.Errorf("local = %v, want 1 (direct children of a are fine)", res.Local)
	}
	if res.Global >= 1 {
		t.Errorf("global = %v, want < 1 (b misses x, y, z)", res.Global)
	}
}

func TestDeeperMismatchesMatterLess(t *testing.T) {
	d := dtd.MustParse(`
<!ELEMENT r (a, b)>
<!ELEMENT a (x)>
<!ELEMENT b (y)>
<!ELEMENT x (q)>
<!ELEMENT y EMPTY>
<!ELEMENT q EMPTY>`)
	e := NewEvaluator(d, DefaultConfig())
	// Mismatch at depth 1: a missing its x.
	shallow := e.GlobalSim(parseDoc(t, `<r><a/><b><y/></b></r>`))
	// Mismatch at depth 2: x missing its q.
	deep := e.GlobalSim(parseDoc(t, `<r><a><x/></a><b><y/></b></r>`))
	if !(deep > shallow) {
		t.Errorf("deep mismatch (%v) should hurt less than shallow (%v)", deep, shallow)
	}
}

func TestUndeclaredRootIsZero(t *testing.T) {
	d := dtd.MustParse(`<!ELEMENT a EMPTY>`)
	e := NewEvaluator(d, DefaultConfig())
	if sim := e.GlobalSim(parseDoc(t, `<zzz/>`)); sim != 0 {
		t.Errorf("sim = %v, want 0", sim)
	}
}

func TestEmptyAnyMixedPCDATA(t *testing.T) {
	d := dtd.MustParse(`
<!ELEMENT r (e, m, p, y)>
<!ELEMENT e EMPTY>
<!ELEMENT m (#PCDATA | b)*>
<!ELEMENT p (#PCDATA)>
<!ELEMENT y ANY>
<!ELEMENT b EMPTY>`)
	e := NewEvaluator(d, DefaultConfig())
	valid := `<r><e/><m>t<b/>t</m><p>txt</p><y><b/>any</y></r>`
	if sim := e.GlobalSim(parseDoc(t, valid)); sim != 1 {
		t.Errorf("valid doc sim = %v, want 1", sim)
	}
	cases := []string{
		`<r><e><b/></e><m/><p>x</p><y/></r>`,  // EMPTY with content
		`<r><e/><m><zz/></m><p>x</p><y/></r>`, // disallowed element in mixed
		`<r><e/><m/><p><b/></p><y/></r>`,      // element child under #PCDATA
		`<r><e/><m/><p>x</p><y><zz/></y></r>`, // undeclared element under ANY
	}
	for _, src := range cases {
		if sim := e.GlobalSim(parseDoc(t, src)); sim >= 1 {
			t.Errorf("sim = %v, want < 1 for %s", sim, src)
		}
	}
}

func TestWeightConfiguration(t *testing.T) {
	d := dtd.MustParse(`<!ELEMENT a (b)> <!ELEMENT b EMPTY>`)
	root := parseDoc(t, `<a><b/><z/></a>`) // one plus element
	lenient := Config{CommonWeight: 1, PlusWeight: 0, MinusWeight: 1, Decay: 0.5, MaxDepth: 64}
	strict := Config{CommonWeight: 1, PlusWeight: 5, MinusWeight: 1, Decay: 0.5, MaxDepth: 64}
	if sim := NewEvaluator(d, lenient).GlobalSim(root); sim != 1 {
		t.Errorf("plus weight 0: sim = %v, want 1", sim)
	}
	def := NewEvaluator(d, DefaultConfig()).GlobalSim(root)
	if sim := NewEvaluator(d, strict).GlobalSim(root); !(sim < def) {
		t.Errorf("plus weight 5: sim = %v, want < default %v", sim, def)
	}
}

func TestTripleEvalEdgeCases(t *testing.T) {
	cfg := DefaultConfig()
	if got := cfg.Eval(Triple{}); got != 1 {
		t.Errorf("E(0,0,0) = %v, want 1", got)
	}
	if got := cfg.Eval(Triple{Plus: 3}); got != 0 {
		t.Errorf("E(3,0,0) = %v, want 0", got)
	}
	if got := cfg.Eval(Triple{Common: 2, Plus: 1, Minus: 1}); got != 0.5 {
		t.Errorf("E = %v, want 0.5", got)
	}
}

func TestRecursiveDTDDoesNotHang(t *testing.T) {
	d := dtd.MustParse(`<!ELEMENT tree (leaf, tree?)> <!ELEMENT leaf EMPTY>`)
	e := NewEvaluator(d, DefaultConfig())
	if sim := e.GlobalSim(parseDoc(t, `<tree><leaf/><tree><leaf/></tree></tree>`)); sim != 1 {
		t.Errorf("recursive valid doc sim = %v, want 1", sim)
	}
	// Mutually recursive required elements: required weight must not loop.
	d2 := dtd.MustParse(`<!ELEMENT a (b)> <!ELEMENT b (a)>`)
	e2 := NewEvaluator(d2, DefaultConfig())
	if sim := e2.GlobalSim(parseDoc(t, `<a/>`)); sim >= 1 || sim < 0 {
		t.Errorf("sim = %v, want in [0, 1)", sim)
	}
}

// --- randomized agreement with the validator ---

// instantiate builds a valid child sequence for a model, recursively
// instantiating subelement declarations.
func instantiate(r *rand.Rand, d *dtd.DTD, model *dtd.Content, depth int) []*xmltree.Node {
	if model == nil || depth > 6 {
		return nil
	}
	switch model.Kind {
	case dtd.Empty, dtd.Any:
		return nil
	case dtd.PCDATA:
		return []*xmltree.Node{xmltree.NewText("pcdata")}
	case dtd.Name:
		n := xmltree.NewElement(model.Name)
		if decl, ok := d.Elements[model.Name]; ok {
			n.Children = instantiate(r, d, decl, depth+1)
		}
		return []*xmltree.Node{n}
	case dtd.Seq:
		var out []*xmltree.Node
		for _, ch := range model.Children {
			out = append(out, instantiate(r, d, ch, depth)...)
		}
		return out
	case dtd.Choice:
		pick := model.Children[r.Intn(len(model.Children))]
		if pick.Kind == dtd.PCDATA { // mixed content: also legal to emit nothing
			return nil
		}
		return instantiate(r, d, pick, depth)
	case dtd.Opt:
		if r.Intn(2) == 0 {
			return nil
		}
		return instantiate(r, d, model.Children[0], depth)
	case dtd.Star:
		var out []*xmltree.Node
		for i := r.Intn(3); i > 0; i-- {
			out = append(out, instantiate(r, d, model.Children[0], depth)...)
		}
		return out
	case dtd.Plus:
		var out []*xmltree.Node
		for i := 1 + r.Intn(2); i > 0; i-- {
			out = append(out, instantiate(r, d, model.Children[0], depth)...)
		}
		return out
	}
	return nil
}

var corpusDTD = dtd.MustParse(`
<!ELEMENT doc (head, body)>
<!ELEMENT head (title, meta*)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT meta EMPTY>
<!ELEMENT body (section+)>
<!ELEMENT section (heading?, (para | list)*)>
<!ELEMENT heading (#PCDATA)>
<!ELEMENT para (#PCDATA | em)*>
<!ELEMENT em (#PCDATA)>
<!ELEMENT list (item+)>
<!ELEMENT item (#PCDATA)>`)

func init() { corpusDTD.Name = "doc" }

// mutate applies a random structural mutation to a random element.
func mutate(r *rand.Rand, root *xmltree.Node) {
	var elems []*xmltree.Node
	root.Walk(func(n *xmltree.Node, _ int) bool {
		if n.IsElement() {
			elems = append(elems, n)
		}
		return true
	})
	n := elems[r.Intn(len(elems))]
	switch r.Intn(3) {
	case 0: // insert a novel element
		n.Children = append(n.Children, xmltree.NewElement("novel"))
	case 1: // drop a child, if any
		if len(n.Children) > 0 {
			i := r.Intn(len(n.Children))
			n.Children = append(n.Children[:i], n.Children[i+1:]...)
		}
	case 2: // duplicate a child, if any
		if len(n.Children) > 0 {
			i := r.Intn(len(n.Children))
			n.Children = append(n.Children, n.Children[i].Clone())
		}
	}
}

func TestPropertySimilarityAgreesWithValidator(t *testing.T) {
	v := validate.New(corpusDTD)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		root := xmltree.NewElement("doc")
		root.Children = instantiate(r, corpusDTD, corpusDTD.Elements["doc"], 0)
		for k := r.Intn(4); k > 0; k-- {
			mutate(r, root)
		}
		e := NewEvaluator(corpusDTD, DefaultConfig())
		sim := e.GlobalSim(root)
		if sim < 0 || sim > 1 {
			t.Logf("sim out of range: %v", sim)
			return false
		}
		valid := len(v.ValidateElement(root)) == 0
		if valid && sim != 1 {
			t.Logf("valid doc with sim %v:\n%s", sim, root.Indent())
			return false
		}
		if !valid && sim == 1 {
			t.Logf("invalid doc with sim 1:\n%s", root.Indent())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropertyMoreMutationsLowerSimilarity(t *testing.T) {
	// Not strictly monotone per step, but adding five mutations to a valid
	// document must never leave similarity at 1.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		root := xmltree.NewElement("doc")
		root.Children = instantiate(r, corpusDTD, corpusDTD.Elements["doc"], 0)
		// Insert novel elements only (always a real deviation).
		var elems []*xmltree.Node
		root.Walk(func(n *xmltree.Node, _ int) bool {
			if n.IsElement() {
				elems = append(elems, n)
			}
			return true
		})
		for i := 0; i < 5; i++ {
			n := elems[r.Intn(len(elems))]
			n.Children = append(n.Children, xmltree.NewElement("novel"))
		}
		e := NewEvaluator(corpusDTD, DefaultConfig())
		sim := e.GlobalSim(root)
		return sim < 1 && sim >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
