package similarity

import (
	"fmt"
	"testing"

	"dtdevolve/internal/dtd"
	"dtdevolve/internal/gen"
)

// TestBoundDominatesEvaluatedSimilarity is the soundness property the
// candidate index relies on: for any document rooted at the declared root,
// the evaluated global similarity never exceeds Bound.Max fed with the
// document's true common total (as cmax) and true plus total (as pmin) —
// and the underlying inequality c + m ≥ 1 + RootRequired holds on the
// aligner's chosen optimum.
func TestBoundDominatesEvaluatedSimilarity(t *testing.T) {
	cfgs := []Config{
		DefaultConfig(),
		{CommonWeight: 2, PlusWeight: 0.5, MinusWeight: 1.5, Decay: 0.7, MaxDepth: 64, MinTagSimilarity: 0.5},
		// A shallow cap: the bound must stay sound when the aligner stops
		// charging below MaxDepth.
		{CommonWeight: 1, PlusWeight: 1, MinusWeight: 1, Decay: 0.5, MaxDepth: 3, MinTagSimilarity: 0.5},
	}
	g := gen.New(gen.DefaultConfig(7))
	for seed := 0; seed < 6; seed++ {
		d := g.RandomDTD(fmt.Sprintf("root%d", seed), 4+seed*3)
		if seed%2 == 1 {
			d = g.Drift(d, 3)
		}
		docs := g.MutatedDocuments(d, 25, 3, 0.8)
		for ci, cfg := range cfgs {
			pool := NewPool(d, cfg)
			b := pool.Bound()
			if !b.Exactable() {
				t.Fatalf("cfg %d unexpectedly not exactable", ci)
			}
			for di, doc := range docs {
				if doc.Root == nil || doc.Root.Name != d.Name {
					continue
				}
				res := pool.Evaluate(doc.Root)
				if res.Triple.Common <= 0 {
					continue // never scored (root undeclared)
				}
				tr := res.Triple
				if got, want := tr.Common+tr.Minus, 1+b.RootRequired(); got < want-1e-9 {
					t.Errorf("cfg %d doc %d: c+m = %g < 1+RootRequired = %g", ci, di, got, want)
				}
				if ub := b.Max(tr.Common, tr.Plus); res.Global > ub+1e-9 {
					t.Errorf("cfg %d doc %d: global %g exceeds bound %g", ci, di, res.Global, ub)
				}
			}
		}
	}
}

// TestBoundMaxProperties pins the algebra of Max: range, the zero case,
// and monotonicity in both arguments (the index feeds progressively
// tighter cmax estimates and relies on tighter never meaning larger).
func TestBoundMaxProperties(t *testing.T) {
	d := dtd.MustParse(`
<!ELEMENT doc (head, para+)>
<!ELEMENT head (#PCDATA)>
<!ELEMENT para (#PCDATA)>`)
	d.Name = "doc" // as a DOCTYPE-extracted DTD would carry
	b := NewPool(d, DefaultConfig()).Bound()
	if got := b.Max(0, 0); got != 0 {
		t.Errorf("Max(0,0) = %g, want 0", got)
	}
	if b.RootRequired() <= 0 {
		t.Errorf("RootRequired = %g, want > 0 for a mandatory model", b.RootRequired())
	}
	prev := -1.0
	for c := 0.25; c <= 20; c += 0.25 {
		ub := b.Max(c, 1)
		if ub < 0 || ub > 1 {
			t.Fatalf("Max(%g,1) = %g out of range", c, ub)
		}
		if ub < prev {
			t.Fatalf("Max not monotone in cmax at %g: %g < %g", c, ub, prev)
		}
		prev = ub
	}
	prev = 2
	for p := 0.0; p <= 20; p += 0.5 {
		ub := b.Max(3, p)
		if ub > prev {
			t.Fatalf("Max not anti-monotone in pmin at %g: %g > %g", p, ub, prev)
		}
		prev = ub
	}
}

// TestBoundThesaurusDisablesPruning: with a thesaurus the bound's
// reasoning (exact-match label accounting) does not apply, so Max must
// degrade to the trivial bound 1.
func TestBoundThesaurusDisablesPruning(t *testing.T) {
	d := dtd.MustParse(`<!ELEMENT doc (#PCDATA)>`)
	cfg := DefaultConfig()
	cfg.TagSimilarity = func(a, c string) float64 { return 0.9 }
	b := NewPool(d, cfg).Bound()
	if b.Exactable() {
		t.Fatal("thesaurus configuration reported exactable")
	}
	if got := b.Max(0.1, 100); got != 1 {
		t.Errorf("non-exactable Max = %g, want 1", got)
	}
}
