package similarity

import (
	"dtdevolve/internal/dtd"
	"dtdevolve/internal/xmltree"
)

// AlignOpKind discriminates the steps of an alignment edit script.
type AlignOpKind int

const (
	// OpMatch pairs a document child with a Name occurrence of the model.
	OpMatch AlignOpKind = iota
	// OpExtra marks a document child with no place in the model (a plus
	// component).
	OpExtra
	// OpMissing marks a mandatory model element with no matching child (a
	// minus component).
	OpMissing
)

// String returns the op kind name.
func (k AlignOpKind) String() string {
	switch k {
	case OpMatch:
		return "match"
	case OpExtra:
		return "extra"
	case OpMissing:
		return "missing"
	default:
		return "AlignOpKind(?)"
	}
}

// AlignOp is one step of the best alignment of an element's children
// against its content model, in model order.
type AlignOp struct {
	Kind AlignOpKind
	// Child is the document child involved (OpMatch, OpExtra).
	Child *xmltree.Node
	// Name is the model-side element name (OpMatch, OpMissing). For a
	// thesaurus-backed match it may differ from Child.Name.
	Name string
}

// AlignChildren computes the best alignment of the element children against
// an element-content model and returns its edit script: the sequence of
// matches, extras (children to drop) and missing mandatory elements (to
// insert), in model order. It is the machinery behind document adaptation
// to an evolved DTD.
//
// Non-element-content models are handled degenerately: EMPTY marks every
// child extra, (#PCDATA) marks element children extra, mixed content and
// ANY match allowed children in place.
func (e *Evaluator) AlignChildren(model *dtd.Content, children []*xmltree.Node) []AlignOp {
	defer clear(e.triMemo) // global triples are scoped per call, as in Evaluate
	switch {
	case model == nil || model.Kind == dtd.Any:
		out := make([]AlignOp, len(children))
		for i, c := range children {
			out[i] = AlignOp{Kind: OpMatch, Child: c, Name: c.Name}
		}
		return out
	case model.Kind == dtd.Empty:
		out := make([]AlignOp, len(children))
		for i, c := range children {
			out[i] = AlignOp{Kind: OpExtra, Child: c}
		}
		return out
	case model.Kind == dtd.PCDATA:
		out := make([]AlignOp, len(children))
		for i, c := range children {
			out[i] = AlignOp{Kind: OpExtra, Child: c}
		}
		return out
	case model.IsMixed():
		labels := model.Labels()
		var out []AlignOp
		for _, c := range children {
			bestLabel, bestSim := "", 0.0
			for _, l := range labels {
				if s := e.tagSim(c.Name, l); s > bestSim {
					bestLabel, bestSim = l, s
				}
			}
			if bestSim > 0 {
				out = append(out, AlignOp{Kind: OpMatch, Child: c, Name: bestLabel})
			} else {
				out = append(out, AlignOp{Kind: OpExtra, Child: c})
			}
		}
		return out
	}
	return e.alignTrace(e.compiled(model), children)
}

// traceOp records how a cell was reached.
type traceOp struct {
	kind  byte // 'm' match, 'x' extra child, 'd' delete required, 0 epsilon/init
	child *xmltree.Node
	name  string
}

type traceCell struct {
	t         Triple
	ok        bool
	fromLayer int
	fromState int
	op        traceOp
}

// alignTrace mirrors align but records provenance, so the optimal edit
// script can be reconstructed.
func (e *Evaluator) alignTrace(a *nfa, children []*xmltree.Node) []AlignOp {
	layers := make([][]traceCell, len(children)+1)
	for i := range layers {
		layers[i] = make([]traceCell, len(a.eps))
	}
	layers[0][a.start] = traceCell{ok: true, fromLayer: -1}
	e.relaxEpsTrace(a, layers, 0)
	for i, child := range children {
		cur, next := layers[i], layers[i+1]
		for s := range cur {
			if !cur[s].ok {
				continue
			}
			// Skip the child (extra).
			e.improveTrace(next, s, traceCell{
				t: cur[s].t.Add(Triple{Plus: e.weightedSize(child)}), ok: true,
				fromLayer: i, fromState: s,
				op: traceOp{kind: 'x', child: child},
			})
			// Match the child on a symbol edge.
			for _, edge := range a.syms[s] {
				ts := e.tagSim(child.Name, edge.name)
				if ts <= 0 {
					continue
				}
				delta := e.matchDelta(child, edge.name, 0, true, ts)
				e.improveTrace(next, edge.to, traceCell{
					t: cur[s].t.Add(delta), ok: true,
					fromLayer: i, fromState: s,
					op: traceOp{kind: 'm', child: child, name: edge.name},
				})
			}
		}
		e.relaxEpsTrace(a, layers, i+1)
	}
	// Reconstruct from the accept state of the last layer.
	var ops []AlignOp
	layer, state := len(children), a.accept
	for {
		cell := layers[layer][state]
		if !cell.ok || cell.fromLayer < 0 {
			break
		}
		switch cell.op.kind {
		case 'm':
			ops = append(ops, AlignOp{Kind: OpMatch, Child: cell.op.child, Name: cell.op.name})
		case 'x':
			ops = append(ops, AlignOp{Kind: OpExtra, Child: cell.op.child})
		case 'd':
			ops = append(ops, AlignOp{Kind: OpMissing, Name: cell.op.name})
		}
		layer, state = cell.fromLayer, cell.fromState
	}
	// Reverse into model order.
	for i, j := 0, len(ops)-1; i < j; i, j = i+1, j-1 {
		ops[i], ops[j] = ops[j], ops[i]
	}
	return ops
}

func (e *Evaluator) improveTrace(cells []traceCell, s int, cand traceCell) bool {
	if !cells[s].ok || e.cfg.score(cand.t) > e.cfg.score(cells[s].t) {
		cells[s] = cand
		return true
	}
	return false
}

func (e *Evaluator) relaxEpsTrace(a *nfa, layers [][]traceCell, layer int) {
	cells := layers[layer]
	work := make([]int, 0, len(cells))
	inWork := make([]bool, len(cells))
	for s := range cells {
		if cells[s].ok {
			work = append(work, s)
			inWork[s] = true
		}
	}
	for len(work) > 0 {
		s := work[len(work)-1]
		work = work[:len(work)-1]
		inWork[s] = false
		for _, edge := range a.eps[s] {
			op := traceOp{}
			if edge.skipName != "" {
				op = traceOp{kind: 'd', name: edge.skipName}
			}
			cand := traceCell{
				t: cells[s].t.Add(Triple{Minus: edge.minus}), ok: true,
				fromLayer: layer, fromState: s, op: op,
			}
			if e.improveTrace(cells, edge.to, cand) && !inWork[edge.to] {
				work = append(work, edge.to)
				inWork[edge.to] = true
			}
		}
	}
}
