package similarity

import (
	"dtdevolve/internal/dtd"
	"dtdevolve/internal/intern"
	"dtdevolve/internal/xmltree"
	"sync"
)

// The alignment of a child-element sequence against an element-content
// model is computed on a Thompson-style automaton compiled from the model.
// Three move kinds carry the triple deltas:
//
//   - a symbol edge consumes one document child whose tag matches a Name in
//     the model (common, plus the decayed subtree triple when global);
//   - an epsilon edge with a minus cost skips a mandatory part of the model
//     (the paper's minus components);
//   - a "skip child" move consumes one document child at plus cost (the
//     paper's plus components).
//
// The best triple per automaton state is propagated across child positions,
// maximizing the linear score surrogate (see Config.score). The automaton
// alphabet is interned: symbol edges carry the dense ID of their label, so
// the inner matching loop is an integer comparison; the name is kept only
// for thesaurus lookups and alignment traces.

type epsEdge struct {
	to    int
	minus float64 // 0 for a structural epsilon, > 0 for skipping a required part
	// skipName is the element name this edge skips, set only on the delete
	// edge of a Name leaf; it lets alignment traces report which required
	// element went missing.
	skipName string
}

type symEdge struct {
	to   int
	id   int32 // interned label ID; never None (labels are interned at build)
	name string
}

type nfa struct {
	eps    [][]epsEdge
	syms   [][]symEdge
	start  int
	accept int
}

// compiled returns the automaton for model, building and caching it on
// first use. Evaluators drawn from a Pool consult the pool's precompiled
// read-only table first, so concurrent evaluators never race on the cache.
func (e *Evaluator) compiled(model *dtd.Content) *nfa {
	if e.shared != nil {
		if a, ok := e.shared.nfas[model]; ok {
			return a
		}
	}
	if a, ok := e.nfaMemo[model]; ok {
		return a
	}
	b := &nfaBuilder{e: e}
	start, accept := b.build(model)
	a := &nfa{eps: b.eps, syms: b.syms, start: start, accept: accept}
	e.nfaMemo[model] = a
	return a
}

type nfaBuilder struct {
	e    *Evaluator
	eps  [][]epsEdge
	syms [][]symEdge
}

func (b *nfaBuilder) newState() int {
	b.eps = append(b.eps, nil)
	b.syms = append(b.syms, nil)
	return len(b.eps) - 1
}

func (b *nfaBuilder) addEps(from, to int, minus float64) {
	b.eps[from] = append(b.eps[from], epsEdge{to: to, minus: minus})
}

func (b *nfaBuilder) addSkip(from, to int, minus float64, name string) {
	b.eps[from] = append(b.eps[from], epsEdge{to: to, minus: minus, skipName: name})
}

func (b *nfaBuilder) addSym(from, to int, id int32, name string) {
	b.syms[from] = append(b.syms[from], symEdge{to: to, id: id, name: name})
}

// build compiles c into a fragment and returns its (start, accept) states.
// Every fragment is traversable start→accept using only epsilon edges, with
// a minimal total minus cost equal to the model's required weight; this is
// what lets the aligner skip any mandatory part at the paper's minus cost.
func (b *nfaBuilder) build(c *dtd.Content) (int, int) {
	start, accept := b.newState(), b.newState()
	switch c.Kind {
	case dtd.Name:
		id := b.e.tab.Intern(c.Name)
		b.addSym(start, accept, id, c.Name)
		b.addSkip(start, accept, b.e.requiredWeight(c.Name, id), c.Name)
	case dtd.PCDATA, dtd.Empty, dtd.Any:
		// No child elements to consume; character data is costed by the
		// caller.
		b.addEps(start, accept, 0)
	case dtd.Seq:
		prev := start
		for _, ch := range c.Children {
			fs, fa := b.build(ch)
			b.addEps(prev, fs, 0)
			prev = fa
		}
		b.addEps(prev, accept, 0)
	case dtd.Choice:
		for _, ch := range c.Children {
			fs, fa := b.build(ch)
			b.addEps(start, fs, 0)
			b.addEps(fa, accept, 0)
		}
	case dtd.Opt:
		fs, fa := b.build(c.Children[0])
		b.addEps(start, fs, 0)
		b.addEps(fa, accept, 0)
		b.addEps(start, accept, 0)
	case dtd.Star:
		fs, fa := b.build(c.Children[0])
		b.addEps(start, fs, 0)
		b.addEps(fa, accept, 0)
		b.addEps(start, accept, 0)
		b.addEps(fa, fs, 0)
	case dtd.Plus:
		fs, fa := b.build(c.Children[0])
		b.addEps(start, fs, 0)
		b.addEps(fa, accept, 0)
		b.addEps(fa, fs, 0)
	default:
		b.addEps(start, accept, 0)
	}
	return start, accept
}

// cell is the best-known triple at an automaton state.
type cell struct {
	t  Triple
	ok bool
}

// alignScratch is one reusable set of alignment buffers. Alignment draws
// them from a pool (not a single instance per evaluator): global alignment
// recurses — matching a child recursively aligns the child's own children —
// so nested align calls each need live buffers. The slices are grow-only;
// inWork self-cleans (every pushed state is popped), so only cur needs
// zeroing on reuse (next is wiped at the top of every child step).
type alignScratch struct {
	cur, next []cell
	work      []int
	inWork    []bool
}

// scratchPool shares alignment buffers across every evaluator in the
// process. A package-level sync.Pool rather than a per-evaluator free list:
// classification builds short-lived evaluators (one per DTD per pool miss),
// and with a private free list each of them re-grows its buffers from
// scratch — the dominant allocation cost of a cold evaluation. GC may
// reclaim pooled buffers under pressure; the steady-state hot path (one
// warm evaluator, no allocation, hence no GC) keeps its buffers.
var scratchPool = sync.Pool{New: func() any { return new(alignScratch) }}

// getScratch takes a pooled scratch sized for n automaton states, with cur
// zeroed. At steady state this allocates nothing.
func getScratch(n int) *alignScratch {
	sc := scratchPool.Get().(*alignScratch)
	if cap(sc.cur) < n {
		sc.cur = make([]cell, n)
		sc.next = make([]cell, n)
		sc.inWork = make([]bool, n)
	}
	sc.cur = sc.cur[:n]
	sc.next = sc.next[:n]
	sc.inWork = sc.inWork[:n]
	for i := range sc.cur {
		sc.cur[i] = cell{}
	}
	return sc
}

func putScratch(sc *alignScratch) {
	scratchPool.Put(sc)
}

// align runs the automaton over the element children of n, returning the
// best triple that ends in the accept state after all children are
// consumed.
func (e *Evaluator) align(a *nfa, n *xmltree.Node, depth int, global bool) Triple {
	sc := getScratch(len(a.eps))
	defer putScratch(sc)
	cur, next := sc.cur, sc.next
	cur[a.start] = cell{ok: true}
	e.relaxEps(a, cur, sc)
	for _, child := range n.Children {
		if child.Kind != xmltree.Element {
			continue
		}
		cid := e.docID(child)
		for i := range next {
			next[i] = cell{}
		}
		for s := range cur {
			if !cur[s].ok {
				continue
			}
			// Skip the child: it is a plus component.
			e.improve(next, s, cur[s].t.Add(Triple{Plus: e.weightedSize(child)}))
			// Match the child on a symbol edge (exactly, by ID, or by tag
			// similarity when a thesaurus is configured).
			for _, edge := range a.syms[s] {
				var ts float64
				if cid != intern.None && cid == edge.id {
					ts = 1
				} else {
					ts = e.tagSimID(cid, child.Name, edge.id, edge.name)
				}
				if ts <= 0 {
					continue
				}
				delta := e.matchDelta(child, edge.name, depth, global, ts)
				e.improve(next, edge.to, cur[s].t.Add(delta))
			}
		}
		cur, next = next, cur
		e.relaxEps(a, cur, sc)
	}
	if !cur[a.accept].ok {
		// Unreachable by construction (every fragment has an epsilon path),
		// but stay defensive.
		return Triple{Minus: 1}
	}
	return cur[a.accept].t
}

// improve installs t at state s when it beats the current occupant.
func (e *Evaluator) improve(cells []cell, s int, t Triple) bool {
	if !cells[s].ok || e.cfg.score(t) > e.cfg.score(cells[s].t) {
		cells[s] = cell{t: t, ok: true}
		return true
	}
	return false
}

// relaxEps propagates triples along epsilon edges to a fixpoint. Epsilon
// moves never increase the score (minus costs are non-negative), so the
// relaxation terminates; a worklist keeps it near-linear in practice.
func (e *Evaluator) relaxEps(a *nfa, cells []cell, sc *alignScratch) {
	work, inWork := sc.work[:0], sc.inWork
	for s := range cells {
		if cells[s].ok {
			work = append(work, s)
			inWork[s] = true
		}
	}
	for len(work) > 0 {
		s := work[len(work)-1]
		work = work[:len(work)-1]
		inWork[s] = false
		for _, edge := range a.eps[s] {
			cand := cells[s].t.Add(Triple{Minus: edge.minus})
			if e.improve(cells, edge.to, cand) && !inWork[edge.to] {
				work = append(work, edge.to)
				inWork[edge.to] = true
			}
		}
	}
	sc.work = work[:0]
}
