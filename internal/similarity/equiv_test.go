package similarity

// Equivalence tests for the interned hot path: the rewritten Evaluator must
// produce bit-for-bit the scores of the pre-interning implementation, frozen
// in legacy_test.go. Identity must hold float-for-float (==, not within an
// epsilon): the rewrite only changed data representation, never arithmetic
// or iteration order.

import (
	"fmt"
	"path/filepath"
	"testing"

	"dtdevolve/internal/dtd"
	"dtdevolve/internal/gen"
	"dtdevolve/internal/intern"
	"dtdevolve/internal/xmltree"
)

// checkEquivalent scores root with both implementations and fails on any
// difference. The fresh-evaluator and reused-evaluator scores are also
// compared, so memo state cannot leak into results.
func checkEquivalent(t *testing.T, label string, e *Evaluator, d *dtd.DTD, cfg Config, root *xmltree.Node) {
	t.Helper()
	want := newLegacyEvaluator(d, cfg).Evaluate(root)
	got := e.Evaluate(root)
	if got != want {
		t.Errorf("%s: interned %+v, legacy %+v", label, got, want)
	}
	if decl, ok := d.Elements[root.Name]; ok {
		lw := newLegacyEvaluator(d, cfg).LocalSim(root, decl)
		lg := e.LocalSim(root, decl)
		if lg != lw {
			t.Errorf("%s: LocalSim interned %v, legacy %v", label, lg, lw)
		}
	}
}

// corpus loads a testdata directory: one .dtd plus every .xml.
func corpus(t *testing.T, dir string) (*dtd.DTD, []*xmltree.Document) {
	t.Helper()
	dtds, err := filepath.Glob(filepath.Join(dir, "*.dtd"))
	if err != nil || len(dtds) != 1 {
		t.Fatalf("globbing %s: %v (%d DTDs)", dir, err, len(dtds))
	}
	d, err := dtd.ParseFile(dtds[0])
	if err != nil {
		t.Fatal(err)
	}
	xmls, err := filepath.Glob(filepath.Join(dir, "*.xml"))
	if err != nil || len(xmls) == 0 {
		t.Fatalf("globbing %s: %v (%d docs)", dir, err, len(xmls))
	}
	var docs []*xmltree.Document
	for _, path := range xmls {
		doc, err := xmltree.ParseFile(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		docs = append(docs, doc)
	}
	return d, docs
}

// TestInternedEquivalenceCorpus runs both implementations over the full
// testdata corpus: every document of each family scored against both
// families' DTDs (the cross-family scores exercise the undeclared-tag and
// bestDecl paths).
func TestInternedEquivalenceCorpus(t *testing.T) {
	feedDTD, feedDocs := corpus(t, filepath.Join("..", "..", "testdata", "feeds"))
	playDTD, playDocs := corpus(t, filepath.Join("..", "..", "testdata", "plays"))
	cfg := DefaultConfig()
	for _, set := range []struct {
		name string
		d    *dtd.DTD
	}{{"feeds", feedDTD}, {"plays", playDTD}} {
		e := NewEvaluator(set.d, cfg)
		for i, doc := range append(append([]*xmltree.Document{}, feedDocs...), playDocs...) {
			checkEquivalent(t, fmt.Sprintf("%s vs doc %d", set.name, i), e, set.d, cfg, doc.Root)
		}
	}
}

// TestInternedEquivalenceRandom fuzzes both implementations with generated
// DTDs and mutated documents: same-DTD documents, heavily mutated ones, and
// cross-DTD pairs. One evaluator is reused across all documents of a DTD, so
// stale-memo bugs would surface as score drift.
func TestInternedEquivalenceRandom(t *testing.T) {
	cfg := DefaultConfig()
	for seed := int64(1); seed <= 5; seed++ {
		g := gen.New(gen.DefaultConfig(seed))
		a := g.RandomDTD("root", 8)
		b := g.RandomDTD("root", 6)
		docsA := g.MutatedDocuments(a, 10, 3, 0.7)
		docsB := g.MutatedDocuments(b, 10, 3, 0.7)
		ea := NewEvaluator(a, cfg)
		eb := NewEvaluator(b, cfg)
		for i, doc := range docsA {
			checkEquivalent(t, fmt.Sprintf("seed %d A/A doc %d", seed, i), ea, a, cfg, doc.Root)
			checkEquivalent(t, fmt.Sprintf("seed %d B/A doc %d", seed, i), eb, b, cfg, doc.Root)
		}
		for i, doc := range docsB {
			checkEquivalent(t, fmt.Sprintf("seed %d B/B doc %d", seed, i), eb, b, cfg, doc.Root)
		}
	}
}

// TestInternedEquivalenceThesaurus repeats the fuzz with a tag-similarity
// function installed, covering the simMemo cache and the partial-match
// paths.
func TestInternedEquivalenceThesaurus(t *testing.T) {
	cfg := DefaultConfig()
	// Deterministic pseudo-thesaurus: tags sharing a first byte are near
	// synonyms. Works on any generated label set.
	cfg.TagSimilarity = func(docTag, dtdTag string) float64 {
		if docTag == dtdTag {
			return 1
		}
		if docTag != "" && dtdTag != "" && docTag[0] == dtdTag[0] {
			return 0.7
		}
		return 0
	}
	for seed := int64(1); seed <= 3; seed++ {
		g := gen.New(gen.DefaultConfig(seed))
		d := g.RandomDTD("root", 8)
		e := NewEvaluator(d, cfg)
		for i, doc := range g.MutatedDocuments(d, 10, 4, 0.9) {
			checkEquivalent(t, fmt.Sprintf("seed %d doc %d", seed, i), e, d, cfg, doc.Root)
		}
	}
}

// TestInternedEquivalenceStampedDocuments checks that label-ID stamps — both
// stamps from the evaluator's own table and stale stamps from a foreign
// table — never change scores: stamps are a lookup shortcut, not an input.
func TestInternedEquivalenceStampedDocuments(t *testing.T) {
	cfg := DefaultConfig()
	g := gen.New(gen.DefaultConfig(7))
	d := g.RandomDTD("root", 8)
	docs := g.MutatedDocuments(d, 8, 3, 0.8)
	e := NewEvaluator(d, cfg)

	unstamped := make([]Result, len(docs))
	for i, doc := range docs {
		unstamped[i] = e.Evaluate(doc.Root)
	}
	for i, doc := range docs {
		intern.InternDocument(e.Table(), doc.Root)
		if got := e.Evaluate(doc.Root); got != unstamped[i] {
			t.Errorf("doc %d: own-table stamp changed score: %+v vs %+v", i, got, unstamped[i])
		}
	}
	// Restamp with a skewed foreign table: every cached ID is now wrong for
	// e's table, and must be rejected by the NameIs verification.
	foreign := intern.NewTable()
	for i := 0; i < 17; i++ {
		foreign.Intern(fmt.Sprintf("skew%d", i))
	}
	for i, doc := range docs {
		intern.InternDocument(foreign, doc.Root)
		if got := e.Evaluate(doc.Root); got != unstamped[i] {
			t.Errorf("doc %d: foreign stamp changed score: %+v vs %+v", i, got, unstamped[i])
		}
		checkEquivalent(t, fmt.Sprintf("foreign-stamped doc %d", i), e, d, cfg, doc.Root)
	}
}

// TestPooledEvaluatorEquivalence draws evaluators from a shared-table pool
// and checks they score like standalone ones: the precompiled shared tables
// must be observationally identical to privately built memos.
func TestPooledEvaluatorEquivalence(t *testing.T) {
	cfg := DefaultConfig()
	g := gen.New(gen.DefaultConfig(11))
	d := g.RandomDTD("root", 8)
	docs := g.MutatedDocuments(d, 8, 3, 0.6)
	pool := NewPoolWithTable(d, cfg, intern.NewTable())
	for i, doc := range docs {
		want := newLegacyEvaluator(d, cfg).Evaluate(doc.Root)
		if got := pool.Evaluate(doc.Root); got != want {
			t.Errorf("doc %d: pooled %+v, legacy %+v", i, got, want)
		}
	}
}
