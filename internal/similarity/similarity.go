// Package similarity measures the structural similarity between XML
// documents and DTDs: the numeric classification mechanism of Bertino,
// Guerrini & Mesiti that the evolution paper builds on.
//
// The measure visits the document tree and the DTD simultaneously,
// associating with each level a triple (p, m, c): the evaluation of plus
// components (document structure absent from the DTD), minus components
// (DTD structure absent from the document) and common components. The
// similarity degree is
//
//	E(p, m, c) = wc·c / (wc·c + wp·p + wm·m)   with E(0, 0, 0) = 1,
//
// so a valid element has similarity exactly 1, and deviations reduce the
// degree toward 0. Contributions from deeper levels are scaled by a decay
// factor per level, mirroring the level-based weighting of the original
// measure (the exact evaluation function of the companion paper is not
// reproduced in the evolution paper; DESIGN.md §3.1 documents this
// reconstruction).
//
// Two degrees are exposed, as in the paper:
//
//   - global similarity of an element recurses into subelement
//     declarations; global similarity 1 coincides with validity;
//   - local similarity only evaluates the direct subelements of an element
//     against the operators in its declaration, and is the signal that
//     drives the recording and evolution phases.
//
// The implementation runs on interned labels: every element name is mapped
// to a dense int32 ID by an intern.Table shared across the evaluators of a
// Pool (and, higher up, across one source's classifiers and recorders), so
// the per-document inner loop compares integers and indexes slices instead
// of hashing strings. DESIGN.md §9 describes the interning lifecycle and
// the allocation budget; at steady state Evaluate performs no heap
// allocations.
package similarity

import (
	"math"

	"dtdevolve/internal/dtd"
	"dtdevolve/internal/intern"
	"dtdevolve/internal/xmltree"
)

// nan marks unset entries of ID-indexed float64 memo slices.
var nan = math.NaN()

// Config holds the parameters of the measure. The zero value is not valid;
// use DefaultConfig (or fill every field).
type Config struct {
	// CommonWeight (wc), PlusWeight (wp) and MinusWeight (wm) weigh the
	// triple components in the evaluation function E.
	CommonWeight float64
	PlusWeight   float64
	MinusWeight  float64
	// Decay scales contributions one level deeper; it must be in (0, 1]
	// for global similarity 1 to coincide with validity.
	Decay float64
	// MaxDepth caps recursion on pathological or cyclic inputs.
	MaxDepth int
	// TagSimilarity optionally generalizes tag equality to tag similarity,
	// the thesaurus extension of the paper's §6: it returns a degree in
	// [0, 1] for a document tag against a DTD tag (1 for synonyms). Nil
	// means exact tag equality. A match with degree s contributes s to the
	// common component instead of 1, so synonym matches rank between a
	// miss and an exact match.
	TagSimilarity func(docTag, dtdTag string) float64
	// MinTagSimilarity is the smallest TagSimilarity degree treated as a
	// match; lower degrees count as plus/minus as usual.
	MinTagSimilarity float64
}

// DefaultConfig returns the parameters used throughout the paper
// reproduction: unit weights and a decay of 1/2.
func DefaultConfig() Config {
	return Config{
		CommonWeight: 1, PlusWeight: 1, MinusWeight: 1,
		Decay: 0.5, MaxDepth: 64, MinTagSimilarity: 0.5,
	}
}

// Triple is the paper's (p, m, c) evaluation of plus, minus and common
// components.
type Triple struct {
	Plus   float64
	Minus  float64
	Common float64
}

// Add returns the componentwise sum of two triples.
func (t Triple) Add(o Triple) Triple {
	return Triple{Plus: t.Plus + o.Plus, Minus: t.Minus + o.Minus, Common: t.Common + o.Common}
}

// Scale returns the triple scaled by f in every component.
func (t Triple) Scale(f float64) Triple {
	return Triple{Plus: t.Plus * f, Minus: t.Minus * f, Common: t.Common * f}
}

// Eval applies the evaluation function E to the triple.
func (c Config) Eval(t Triple) float64 {
	num := c.CommonWeight * t.Common
	den := num + c.PlusWeight*t.Plus + c.MinusWeight*t.Minus
	if den == 0 {
		return 1 // nothing required, nothing extra: a perfect (vacuous) match
	}
	return num / den
}

// score is the linear surrogate maximized by the alignment: the evaluation
// function E is monotone (increasing in c, decreasing in p and m), and the
// triple combination is additive, so maximizing wc·c − wp·p − wm·m yields a
// deterministic, total-ordered optimum. DESIGN.md §3.1.
func (c Config) score(t Triple) float64 {
	return c.CommonWeight*t.Common - c.PlusWeight*t.Plus - c.MinusWeight*t.Minus
}

// Result reports the similarity of a document against a DTD.
type Result struct {
	// Global is the global similarity degree in [0, 1].
	Global float64
	// Local is the local similarity degree of the root element.
	Local float64
	// Triple is the global (p, m, c) evaluation at the root.
	Triple Triple
}

// Evaluator computes similarities against a fixed DTD. It memoizes
// per-declaration data (required weights, compiled alignment automata) and
// is safe for sequential reuse across many documents; create one per
// goroutine for concurrent use, or draw evaluators from a Pool, which
// shares the per-DTD tables across goroutines.
type Evaluator struct {
	cfg Config
	d   *dtd.DTD
	// tab interns element labels to the dense IDs the hot path runs on.
	// Every structure below that is ID-indexed is relative to this table.
	tab *intern.Table
	// shared holds precompiled read-only tables when the evaluator comes
	// from a Pool; nil for a standalone evaluator.
	shared *sharedTables
	// reqMemo caches required weights, indexed by label ID; NaN = unset.
	// visiting is the cycle-detection set of the same computation. Both
	// grow on demand and self-clean (visiting follows stack discipline).
	reqMemo  []float64
	visiting []bool
	nfaMemo  map[*dtd.Content]*nfa
	// mixedMemo caches the sorted, interned label set of mixed models.
	mixedMemo map[*dtd.Content]*labelSet
	// triMemo caches global triples per (element node, model): a model may
	// reference the same name several times, and without the cache the same
	// subtree would be re-evaluated once per reference. It is scoped to a
	// single Evaluate/AlignChildren call — entries key live document nodes,
	// and a long-lived evaluator must not pin every tree it ever scored.
	triMemo map[triKey]Triple
	// simMemo caches thesaurus degrees per (document tag, DTD tag) ID pair;
	// nil until the first thesaurus lookup. Degrees are config-stable, so
	// the cache is never cleared.
	simMemo map[simKey]float64
}

type triKey struct {
	n *xmltree.Node
	m *dtd.Content
}

type simKey struct {
	doc, dtd int32
}

// labelSet is the label alphabet of a mixed content model: names sorted as
// model.Labels() returns them, with ids[i] the interned ID of names[i].
type labelSet struct {
	names []string
	ids   []int32
}

// NewEvaluator returns an Evaluator for d with the given configuration,
// interning d's labels into a private symbol table. To share one table
// across evaluators (and with recorders), use a Pool.
func NewEvaluator(d *dtd.DTD, cfg Config) *Evaluator {
	tab := intern.NewTable()
	intern.InternDTD(tab, d)
	return newEvaluator(d, cfg, tab)
}

// newEvaluator builds a bare evaluator on an existing table; the caller is
// responsible for having interned d into tab.
func newEvaluator(d *dtd.DTD, cfg Config, tab *intern.Table) *Evaluator {
	cfg.MaxDepth = cfg.DepthCap()
	return &Evaluator{
		cfg:       cfg,
		d:         d,
		tab:       tab,
		nfaMemo:   make(map[*dtd.Content]*nfa),
		mixedMemo: make(map[*dtd.Content]*labelSet),
		triMemo:   make(map[triKey]Triple),
	}
}

// Table returns the symbol table the evaluator interns labels into.
func (e *Evaluator) Table() *intern.Table { return e.tab }

// docID resolves the interned ID of a document element's tag: the node's
// cached LabelID when it verifiably belongs to this evaluator's table
// (documents are stamped by the source engine at recording time), else a
// fresh intern — lock-free unless the tag has never been seen.
// dtdvet:noalloc
func (e *Evaluator) docID(n *xmltree.Node) int32 {
	if id := n.LabelID(); id > 0 && e.tab.NameIs(id, n.Name) {
		return id
	}
	return e.tab.Intern(n.Name)
}

// Evaluate computes the global and local similarity of the document rooted
// at root against the DTD. A root whose tag has no declaration has
// similarity 0. This is the classification hot path: evaluator state is
// pooled and memoized precisely so that scoring allocates nothing in the
// steady state.
// dtdvet:noalloc
func (e *Evaluator) Evaluate(root *xmltree.Node) Result {
	defer clear(e.triMemo)
	if root == nil || !root.IsElement() {
		return Result{}
	}
	declName, ts := e.bestDecl(root.Name)
	if ts <= 0 {
		return Result{}
	}
	model := e.d.Elements[declName]
	// The evaluated element matches its declaration by name (or by tag
	// similarity): it is itself a common component, and its content
	// contributes one level deeper.
	t := partialMatch(ts).Add(e.globalTriple(root, model, 0).Scale(e.cfg.Decay))
	local := partialMatch(ts).Add(e.localTriple(root, model).Scale(e.cfg.Decay))
	return Result{
		Global: e.cfg.Eval(t),
		Local:  e.cfg.Eval(local),
		Triple: t,
	}
}

// GlobalSim is a convenience wrapper returning only the global degree.
// dtdvet:noalloc
func (e *Evaluator) GlobalSim(root *xmltree.Node) float64 {
	return e.Evaluate(root).Global
}

// LocalSim computes the local similarity of element n against model: how
// well the direct subelements of n meet the constraints imposed by the
// operators of the declaration, without considering declarations of the
// subelements themselves. As in Evaluate, the element itself counts as a
// common component.
// dtdvet:noalloc
func (e *Evaluator) LocalSim(n *xmltree.Node, model *dtd.Content) float64 {
	t := Triple{Common: 1}.Add(e.localTriple(n, model).Scale(e.cfg.Decay))
	return e.cfg.Eval(t)
}

// Global computes the global similarity of root against d with the default
// configuration.
func Global(root *xmltree.Node, d *dtd.DTD) float64 {
	return NewEvaluator(d, DefaultConfig()).GlobalSim(root)
}

// Local computes the local similarity of n against model with the default
// configuration.
func Local(n *xmltree.Node, model *dtd.Content) float64 {
	// The DTD is only needed for subelement declarations, which local
	// similarity does not consult.
	e := NewEvaluator(dtd.NewDTD(""), DefaultConfig())
	return e.LocalSim(n, model)
}

// globalTriple evaluates element n against its content model, recursing
// into matched subelements' declarations.
func (e *Evaluator) globalTriple(n *xmltree.Node, model *dtd.Content, depth int) Triple {
	key := triKey{n: n, m: model}
	if t, ok := e.triMemo[key]; ok {
		return t
	}
	t := e.elementTriple(n, model, depth, true)
	e.triMemo[key] = t
	return t
}

// localTriple evaluates only the direct subelements of n against model.
// dtdvet:noalloc
func (e *Evaluator) localTriple(n *xmltree.Node, model *dtd.Content) Triple {
	return e.elementTriple(n, model, 0, false)
}

func (e *Evaluator) elementTriple(n *xmltree.Node, model *dtd.Content, depth int, global bool) Triple {
	if depth >= e.cfg.MaxDepth {
		return Triple{}
	}
	switch {
	case model == nil || model.Kind == dtd.Any:
		return e.anyTriple(n, depth, global)
	case model.Kind == dtd.Empty:
		var t Triple
		for _, c := range n.Children {
			t.Plus += e.weightedSize(c)
		}
		return t
	case model.Kind == dtd.PCDATA:
		var t Triple
		if n.HasText() {
			t.Common++
		}
		for _, c := range n.Children {
			if c.Kind == xmltree.Element {
				t.Plus += e.weightedSize(c)
			}
		}
		return t
	case model.IsMixed():
		return e.mixedTriple(model, n, depth, global)
	default:
		return e.contentTriple(model, n, depth, global)
	}
}

// anyTriple handles ANY declarations: any declared element is acceptable
// content; undeclared elements count as plus.
func (e *Evaluator) anyTriple(n *xmltree.Node, depth int, global bool) Triple {
	var t Triple
	for _, c := range n.Children {
		if c.Kind != xmltree.Element {
			continue
		}
		declName, ts := e.bestDecl(c.Name)
		if ts <= 0 {
			t.Plus += e.weightedSize(c)
			continue
		}
		t = t.Add(partialMatch(ts))
		if global {
			t = t.Add(e.globalTriple(c, e.d.Elements[declName], depth+1).Scale(e.cfg.Decay))
		}
	}
	return t
}

// mixedSet returns the interned label alphabet of a mixed model, building
// and caching it on first use.
func (e *Evaluator) mixedSet(model *dtd.Content) *labelSet {
	if e.shared != nil {
		if s, ok := e.shared.mixed[model]; ok {
			return s
		}
	}
	if s, ok := e.mixedMemo[model]; ok {
		return s
	}
	names := model.Labels()
	s := &labelSet{names: names, ids: make([]int32, len(names))}
	for i, l := range names {
		s.ids[i] = e.tab.Intern(l)
	}
	e.mixedMemo[model] = s
	return s
}

func (e *Evaluator) mixedTriple(model *dtd.Content, n *xmltree.Node, depth int, global bool) Triple {
	set := e.mixedSet(model)
	var t Triple
	for _, c := range n.Children {
		if c.Kind != xmltree.Element {
			continue
		}
		cid := e.docID(c)
		bestIdx, bestSim := -1, 0.0
		for i, lid := range set.ids {
			var s float64
			if cid != intern.None && cid == lid {
				s = 1
			} else {
				s = e.tagSimID(cid, c.Name, lid, set.names[i])
			}
			if s > bestSim {
				bestIdx, bestSim = i, s
			}
		}
		if bestSim <= 0 {
			t.Plus += e.weightedSize(c)
			continue
		}
		t = t.Add(partialMatch(bestSim))
		if global {
			if decl, ok := e.d.Elements[set.names[bestIdx]]; ok {
				t = t.Add(e.globalTriple(c, decl, depth+1).Scale(e.cfg.Decay))
			}
		}
	}
	return t
}

// contentTriple aligns the children of n against an element-content model
// using the compiled automaton.
func (e *Evaluator) contentTriple(model *dtd.Content, n *xmltree.Node, depth int, global bool) Triple {
	a := e.compiled(model)
	var textPlus float64
	for _, c := range n.Children {
		if c.Kind == xmltree.Text {
			textPlus++ // character data is not allowed in element content
		}
	}
	t := e.align(a, n, depth, global)
	t.Plus += textPlus
	return t
}

// partialMatch is the triple of a tag match with degree ts: the matched
// fraction is common, and the unmatched remainder (1 - ts) splits evenly
// between plus (document side) and minus (DTD side), so weighted thesaurus
// matches rank strictly between a miss and an exact match.
func partialMatch(ts float64) Triple {
	return Triple{Common: ts, Plus: (1 - ts) / 2, Minus: (1 - ts) / 2}
}

// tagSim returns the match degree of a document tag against a DTD tag: 1
// for equal tags, the configured TagSimilarity for different ones (0 when
// below the floor or when no TagSimilarity is configured). It is the
// string-keyed entry point of the cold paths; the hot path compares
// interned IDs and falls through to tagSimID.
func (e *Evaluator) tagSim(docTag, dtdTag string) float64 {
	if docTag == dtdTag {
		return 1
	}
	return e.thesaurusSim(docTag, dtdTag)
}

// tagSimID is tagSim for tags whose ID comparison already ruled out
// equality: it consults the thesaurus through a per-ID-pair cache. Degrees
// for tags that escaped interning (None) are computed uncached.
func (e *Evaluator) tagSimID(docID int32, docTag string, dtdID int32, dtdTag string) float64 {
	if e.cfg.TagSimilarity == nil {
		return 0
	}
	if docID == intern.None || dtdID == intern.None {
		return e.thesaurusSim(docTag, dtdTag)
	}
	key := simKey{doc: docID, dtd: dtdID}
	if s, ok := e.simMemo[key]; ok {
		return s
	}
	s := e.thesaurusSim(docTag, dtdTag)
	if e.simMemo == nil {
		e.simMemo = make(map[simKey]float64)
	}
	e.simMemo[key] = s
	return s
}

// thesaurusSim applies the configured TagSimilarity with the floor and
// clamp of the measure; the tags are known to differ.
func (e *Evaluator) thesaurusSim(docTag, dtdTag string) float64 {
	if e.cfg.TagSimilarity == nil {
		return 0
	}
	s := e.cfg.TagSimilarity(docTag, dtdTag)
	if s < e.cfg.MinTagSimilarity || s <= 0 {
		return 0
	}
	if s > 1 {
		return 1
	}
	return s
}

// bestDecl finds the declaration best matching a document tag: the tag's
// own declaration when present, otherwise the declared element with the
// highest tag similarity (ties broken toward the lexicographically
// smallest name, so the result is independent of map iteration order).
func (e *Evaluator) bestDecl(tag string) (string, float64) {
	if _, ok := e.d.Elements[tag]; ok {
		return tag, 1
	}
	if e.cfg.TagSimilarity == nil {
		return "", 0
	}
	bestName, bestSim := "", 0.0
	for name := range e.d.Elements {
		if s := e.tagSim(tag, name); s > bestSim || (s == bestSim && s > 0 && name < bestName) {
			bestName, bestSim = name, s
		}
	}
	return bestName, bestSim
}

// matchDelta is the triple contributed by matching document element c
// against the declaration of the element named name with tag-match degree
// ts.
func (e *Evaluator) matchDelta(c *xmltree.Node, name string, depth int, global bool, ts float64) Triple {
	t := partialMatch(ts)
	if !global {
		return t
	}
	decl, ok := e.d.Elements[name]
	if !ok {
		// The model references an element the DTD never declares; there is
		// no constraint to compare the subtree against.
		return t
	}
	return t.Add(e.globalTriple(c, decl, depth+1).Scale(e.cfg.Decay))
}

// weightedSize is the plus cost of an entirely unmatched subtree: 1 for the
// node itself plus decayed contributions of its children.
func (e *Evaluator) weightedSize(n *xmltree.Node) float64 {
	size := 1.0
	var sub float64
	for _, c := range n.Children {
		sub += e.weightedSize(c)
	}
	return size + e.cfg.Decay*sub
}

// requiredWeightName is the entry point for required weights keyed by a
// name alone (pool precompilation, tests): it interns the name and
// delegates to the ID-indexed computation.
func (e *Evaluator) requiredWeightName(name string) float64 {
	return e.requiredWeight(name, e.tab.Intern(name))
}

// requiredWeight is the minus cost of skipping a mandatory reference to the
// element called name (with interned ID id): 1 for the element itself plus
// the decayed required weight of its own declaration. Cycles in the DTD
// contribute once, tracked by the ID-indexed visiting stack.
func (e *Evaluator) requiredWeight(name string, id int32) float64 {
	if e.shared != nil && int(id) < len(e.shared.req) {
		if w := e.shared.req[id]; w == w { // not NaN: precompiled
			return w
		}
	}
	if int(id) < len(e.reqMemo) {
		if w := e.reqMemo[id]; w == w {
			return w
		}
	}
	if int(id) < len(e.visiting) && e.visiting[id] {
		return 1
	}
	decl, ok := e.d.Elements[name]
	if !ok {
		return 1
	}
	e.growReqMemo(id)
	e.visiting[id] = true
	w := 1 + e.cfg.Decay*e.requiredModelWeight(decl)
	e.visiting[id] = false
	e.reqMemo[id] = w
	return w
}

// growReqMemo extends the ID-indexed required-weight tables to cover id,
// filling new memo entries with NaN ("unset").
func (e *Evaluator) growReqMemo(id int32) {
	for int(id) >= len(e.reqMemo) {
		e.reqMemo = append(e.reqMemo, nan)
	}
	for int(id) >= len(e.visiting) {
		e.visiting = append(e.visiting, false)
	}
}

// requiredModelWeight is the minimal mandatory weight of a content model:
// the minus cost of providing none of its content.
func (e *Evaluator) requiredModelWeight(c *dtd.Content) float64 {
	switch c.Kind {
	case dtd.Name:
		return e.requiredWeight(c.Name, e.tab.Intern(c.Name))
	case dtd.Opt, dtd.Star, dtd.Empty, dtd.Any, dtd.PCDATA:
		return 0
	case dtd.Plus:
		return e.requiredModelWeight(c.Children[0])
	case dtd.Seq:
		var sum float64
		for _, ch := range c.Children {
			sum += e.requiredModelWeight(ch)
		}
		return sum
	case dtd.Choice:
		best := -1.0
		for _, ch := range c.Children {
			w := e.requiredModelWeight(ch)
			if best < 0 || w < best {
				best = w
			}
		}
		if best < 0 {
			return 0
		}
		return best
	default:
		return 0
	}
}
