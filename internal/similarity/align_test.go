package similarity

import (
	"strings"
	"testing"

	"dtdevolve/internal/dtd"
	"dtdevolve/internal/thesaurus"
	"dtdevolve/internal/xmltree"
)

func opsString(ops []AlignOp) string {
	var parts []string
	for _, op := range ops {
		switch op.Kind {
		case OpMatch:
			parts = append(parts, "match:"+op.Name)
		case OpExtra:
			parts = append(parts, "extra:"+op.Child.Name)
		case OpMissing:
			parts = append(parts, "missing:"+op.Name)
		}
	}
	return strings.Join(parts, " ")
}

func alignCase(t *testing.T, dtdSrc, docSrc string) []AlignOp {
	t.Helper()
	d := dtd.MustParse(dtdSrc)
	e := NewEvaluator(d, DefaultConfig())
	root := parseDoc(t, docSrc)
	return e.AlignChildren(d.Elements[root.Name], root.ChildElements())
}

func TestAlignPerfectMatch(t *testing.T) {
	ops := alignCase(t,
		`<!ELEMENT a (b, c)> <!ELEMENT b EMPTY> <!ELEMENT c EMPTY>`,
		`<a><b/><c/></a>`)
	if got := opsString(ops); got != "match:b match:c" {
		t.Errorf("ops = %s", got)
	}
}

func TestAlignExtraAndMissing(t *testing.T) {
	ops := alignCase(t,
		`<!ELEMENT a (b, c, d)> <!ELEMENT b EMPTY> <!ELEMENT c EMPTY> <!ELEMENT d EMPTY>`,
		`<a><b/><x/><d/></a>`)
	if got := opsString(ops); got != "match:b extra:x missing:c match:d" &&
		got != "match:b missing:c extra:x match:d" {
		t.Errorf("ops = %s", got)
	}
}

func TestAlignRepetition(t *testing.T) {
	ops := alignCase(t,
		`<!ELEMENT a (b+)> <!ELEMENT b EMPTY>`,
		`<a><b/><b/><b/></a>`)
	if got := opsString(ops); got != "match:b match:b match:b" {
		t.Errorf("ops = %s", got)
	}
}

func TestAlignChoicePicksBestBranch(t *testing.T) {
	ops := alignCase(t,
		`<!ELEMENT a ((b, c) | (d, e))> <!ELEMENT b EMPTY> <!ELEMENT c EMPTY> <!ELEMENT d EMPTY> <!ELEMENT e EMPTY>`,
		`<a><d/></a>`)
	if got := opsString(ops); got != "match:d missing:e" {
		t.Errorf("ops = %s", got)
	}
}

func TestAlignOptionalNotInserted(t *testing.T) {
	ops := alignCase(t,
		`<!ELEMENT a (b, c?)> <!ELEMENT b EMPTY> <!ELEMENT c EMPTY>`,
		`<a><b/></a>`)
	if got := opsString(ops); got != "match:b" {
		t.Errorf("ops = %s (optional c must not be reported missing)", got)
	}
}

func TestAlignEmptyAndPCDATA(t *testing.T) {
	ops := alignCase(t, `<!ELEMENT a EMPTY>`, `<a><x/><y/></a>`)
	if got := opsString(ops); got != "extra:x extra:y" {
		t.Errorf("EMPTY ops = %s", got)
	}
	ops = alignCase(t, `<!ELEMENT a (#PCDATA)>`, `<a>text<x/></a>`)
	if got := opsString(ops); got != "extra:x" {
		t.Errorf("PCDATA ops = %s", got)
	}
}

func TestAlignMixed(t *testing.T) {
	ops := alignCase(t,
		`<!ELEMENT a (#PCDATA | em)*> <!ELEMENT em EMPTY>`,
		`<a>t<em/>t<bad/></a>`)
	if got := opsString(ops); got != "match:em extra:bad" {
		t.Errorf("mixed ops = %s", got)
	}
}

func TestAlignWithThesaurusRename(t *testing.T) {
	th, _ := thesaurus.LoadString(`author = writer`)
	d := dtd.MustParse(`<!ELEMENT a (author)> <!ELEMENT author EMPTY>`)
	cfg := DefaultConfig()
	cfg.TagSimilarity = th.SimilarityFunc()
	e := NewEvaluator(d, cfg)
	root := parseDoc(t, `<a><writer/></a>`)
	ops := e.AlignChildren(d.Elements["a"], root.ChildElements())
	if got := opsString(ops); got != "match:author" {
		t.Errorf("ops = %s (writer should match author)", got)
	}
	if ops[0].Child.Name != "writer" {
		t.Errorf("child = %q", ops[0].Child.Name)
	}
}

func TestAlignEmptyChildren(t *testing.T) {
	ops := alignCase(t,
		`<!ELEMENT a (b, c?)> <!ELEMENT b EMPTY> <!ELEMENT c EMPTY>`,
		`<a/>`)
	if got := opsString(ops); got != "missing:b" {
		t.Errorf("ops = %s", got)
	}
	var node *xmltree.Node
	_ = node
}
