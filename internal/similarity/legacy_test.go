package similarity

// This file freezes the string-keyed evaluator as it stood before the
// interned-label rewrite (PR 2). It exists only as a reference
// implementation for the equivalence tests: the interned hot path must
// produce bit-for-bit identical similarity degrees. Keep the arithmetic
// and iteration order in lockstep with the pre-rewrite code; do not
// "improve" it.

import (
	"dtdevolve/internal/dtd"
	"dtdevolve/internal/xmltree"
)

type legacyEvaluator struct {
	cfg     Config
	d       *dtd.DTD
	reqMemo map[string]float64
	nfaMemo map[*dtd.Content]*legacyNFA
	triMemo map[triKey]Triple
}

func newLegacyEvaluator(d *dtd.DTD, cfg Config) *legacyEvaluator {
	if cfg.MaxDepth <= 0 {
		cfg.MaxDepth = 64
	}
	return &legacyEvaluator{
		cfg:     cfg,
		d:       d,
		reqMemo: make(map[string]float64),
		nfaMemo: make(map[*dtd.Content]*legacyNFA),
		triMemo: make(map[triKey]Triple),
	}
}

func (e *legacyEvaluator) Evaluate(root *xmltree.Node) Result {
	defer clear(e.triMemo)
	if root == nil || !root.IsElement() {
		return Result{}
	}
	declName, ts := e.bestDecl(root.Name)
	if ts <= 0 {
		return Result{}
	}
	model := e.d.Elements[declName]
	t := partialMatch(ts).Add(e.globalTriple(root, model, 0).Scale(e.cfg.Decay))
	local := partialMatch(ts).Add(e.localTriple(root, model).Scale(e.cfg.Decay))
	return Result{
		Global: e.cfg.Eval(t),
		Local:  e.cfg.Eval(local),
		Triple: t,
	}
}

func (e *legacyEvaluator) LocalSim(n *xmltree.Node, model *dtd.Content) float64 {
	t := Triple{Common: 1}.Add(e.localTriple(n, model).Scale(e.cfg.Decay))
	return e.cfg.Eval(t)
}

func (e *legacyEvaluator) globalTriple(n *xmltree.Node, model *dtd.Content, depth int) Triple {
	key := triKey{n: n, m: model}
	if t, ok := e.triMemo[key]; ok {
		return t
	}
	t := e.elementTriple(n, model, depth, true)
	e.triMemo[key] = t
	return t
}

func (e *legacyEvaluator) localTriple(n *xmltree.Node, model *dtd.Content) Triple {
	return e.elementTriple(n, model, 0, false)
}

func (e *legacyEvaluator) elementTriple(n *xmltree.Node, model *dtd.Content, depth int, global bool) Triple {
	if depth >= e.cfg.MaxDepth {
		return Triple{}
	}
	elems := n.ChildElements()
	switch {
	case model == nil || model.Kind == dtd.Any:
		return e.anyTriple(elems, depth, global)
	case model.Kind == dtd.Empty:
		var t Triple
		for _, c := range n.Children {
			t.Plus += e.weightedSize(c)
		}
		return t
	case model.Kind == dtd.PCDATA:
		var t Triple
		if n.HasText() {
			t.Common++
		}
		for _, c := range elems {
			t.Plus += e.weightedSize(c)
		}
		return t
	case model.IsMixed():
		return e.mixedTriple(model, elems, depth, global)
	default:
		return e.contentTriple(model, n, depth, global)
	}
}

func (e *legacyEvaluator) anyTriple(elems []*xmltree.Node, depth int, global bool) Triple {
	var t Triple
	for _, c := range elems {
		declName, ts := e.bestDecl(c.Name)
		if ts <= 0 {
			t.Plus += e.weightedSize(c)
			continue
		}
		t = t.Add(partialMatch(ts))
		if global {
			t = t.Add(e.globalTriple(c, e.d.Elements[declName], depth+1).Scale(e.cfg.Decay))
		}
	}
	return t
}

func (e *legacyEvaluator) mixedTriple(model *dtd.Content, elems []*xmltree.Node, depth int, global bool) Triple {
	labels := model.Labels()
	var t Triple
	for _, c := range elems {
		bestLabel, bestSim := "", 0.0
		for _, l := range labels {
			if s := e.tagSim(c.Name, l); s > bestSim {
				bestLabel, bestSim = l, s
			}
		}
		if bestSim <= 0 {
			t.Plus += e.weightedSize(c)
			continue
		}
		t = t.Add(partialMatch(bestSim))
		if global {
			if decl, ok := e.d.Elements[bestLabel]; ok {
				t = t.Add(e.globalTriple(c, decl, depth+1).Scale(e.cfg.Decay))
			}
		}
	}
	return t
}

func (e *legacyEvaluator) contentTriple(model *dtd.Content, n *xmltree.Node, depth int, global bool) Triple {
	a := e.compiled(model)
	var textPlus float64
	for _, c := range n.Children {
		if c.Kind == xmltree.Text {
			textPlus++
		}
	}
	t := e.align(a, n.ChildElements(), depth, global)
	t.Plus += textPlus
	return t
}

func (e *legacyEvaluator) tagSim(docTag, dtdTag string) float64 {
	if docTag == dtdTag {
		return 1
	}
	if e.cfg.TagSimilarity == nil {
		return 0
	}
	s := e.cfg.TagSimilarity(docTag, dtdTag)
	if s < e.cfg.MinTagSimilarity || s <= 0 {
		return 0
	}
	if s > 1 {
		return 1
	}
	return s
}

func (e *legacyEvaluator) bestDecl(tag string) (string, float64) {
	if _, ok := e.d.Elements[tag]; ok {
		return tag, 1
	}
	if e.cfg.TagSimilarity == nil {
		return "", 0
	}
	bestName, bestSim := "", 0.0
	for name := range e.d.Elements {
		if s := e.tagSim(tag, name); s > bestSim || (s == bestSim && s > 0 && name < bestName) {
			bestName, bestSim = name, s
		}
	}
	return bestName, bestSim
}

func (e *legacyEvaluator) matchDelta(c *xmltree.Node, name string, depth int, global bool, ts float64) Triple {
	t := partialMatch(ts)
	if !global {
		return t
	}
	decl, ok := e.d.Elements[name]
	if !ok {
		return t
	}
	return t.Add(e.globalTriple(c, decl, depth+1).Scale(e.cfg.Decay))
}

func (e *legacyEvaluator) weightedSize(n *xmltree.Node) float64 {
	size := 1.0
	var sub float64
	for _, c := range n.Children {
		sub += e.weightedSize(c)
	}
	return size + e.cfg.Decay*sub
}

func (e *legacyEvaluator) requiredWeight(name string, visiting map[string]bool) float64 {
	if w, ok := e.reqMemo[name]; ok {
		return w
	}
	if visiting[name] {
		return 1
	}
	decl, ok := e.d.Elements[name]
	if !ok {
		return 1
	}
	if visiting == nil {
		visiting = make(map[string]bool)
	}
	visiting[name] = true
	w := 1 + e.cfg.Decay*e.requiredModelWeight(decl, visiting)
	delete(visiting, name)
	e.reqMemo[name] = w
	return w
}

func (e *legacyEvaluator) requiredModelWeight(c *dtd.Content, visiting map[string]bool) float64 {
	switch c.Kind {
	case dtd.Name:
		return e.requiredWeight(c.Name, visiting)
	case dtd.Opt, dtd.Star, dtd.Empty, dtd.Any, dtd.PCDATA:
		return 0
	case dtd.Plus:
		return e.requiredModelWeight(c.Children[0], visiting)
	case dtd.Seq:
		var sum float64
		for _, ch := range c.Children {
			sum += e.requiredModelWeight(ch, visiting)
		}
		return sum
	case dtd.Choice:
		best := -1.0
		for _, ch := range c.Children {
			w := e.requiredModelWeight(ch, visiting)
			if best < 0 || w < best {
				best = w
			}
		}
		if best < 0 {
			return 0
		}
		return best
	default:
		return 0
	}
}

// --- legacy automaton ---

type legacyEpsEdge struct {
	to    int
	minus float64
}

type legacySymEdge struct {
	to   int
	name string
}

type legacyNFA struct {
	eps    [][]legacyEpsEdge
	syms   [][]legacySymEdge
	start  int
	accept int
}

func (e *legacyEvaluator) compiled(model *dtd.Content) *legacyNFA {
	if a, ok := e.nfaMemo[model]; ok {
		return a
	}
	b := &legacyNFABuilder{e: e}
	start, accept := b.build(model)
	a := &legacyNFA{eps: b.eps, syms: b.syms, start: start, accept: accept}
	e.nfaMemo[model] = a
	return a
}

type legacyNFABuilder struct {
	e    *legacyEvaluator
	eps  [][]legacyEpsEdge
	syms [][]legacySymEdge
}

func (b *legacyNFABuilder) newState() int {
	b.eps = append(b.eps, nil)
	b.syms = append(b.syms, nil)
	return len(b.eps) - 1
}

func (b *legacyNFABuilder) addEps(from, to int, minus float64) {
	b.eps[from] = append(b.eps[from], legacyEpsEdge{to: to, minus: minus})
}

func (b *legacyNFABuilder) addSym(from, to int, name string) {
	b.syms[from] = append(b.syms[from], legacySymEdge{to: to, name: name})
}

func (b *legacyNFABuilder) build(c *dtd.Content) (int, int) {
	start, accept := b.newState(), b.newState()
	switch c.Kind {
	case dtd.Name:
		b.addSym(start, accept, c.Name)
		b.addEps(start, accept, b.e.requiredWeight(c.Name, make(map[string]bool)))
	case dtd.PCDATA, dtd.Empty, dtd.Any:
		b.addEps(start, accept, 0)
	case dtd.Seq:
		prev := start
		for _, ch := range c.Children {
			fs, fa := b.build(ch)
			b.addEps(prev, fs, 0)
			prev = fa
		}
		b.addEps(prev, accept, 0)
	case dtd.Choice:
		for _, ch := range c.Children {
			fs, fa := b.build(ch)
			b.addEps(start, fs, 0)
			b.addEps(fa, accept, 0)
		}
	case dtd.Opt:
		fs, fa := b.build(c.Children[0])
		b.addEps(start, fs, 0)
		b.addEps(fa, accept, 0)
		b.addEps(start, accept, 0)
	case dtd.Star:
		fs, fa := b.build(c.Children[0])
		b.addEps(start, fs, 0)
		b.addEps(fa, accept, 0)
		b.addEps(start, accept, 0)
		b.addEps(fa, fs, 0)
	case dtd.Plus:
		fs, fa := b.build(c.Children[0])
		b.addEps(start, fs, 0)
		b.addEps(fa, accept, 0)
		b.addEps(fa, fs, 0)
	default:
		b.addEps(start, accept, 0)
	}
	return start, accept
}

func (e *legacyEvaluator) align(a *legacyNFA, children []*xmltree.Node, depth int, global bool) Triple {
	cur := make([]cell, len(a.eps))
	next := make([]cell, len(a.eps))
	cur[a.start] = cell{ok: true}
	e.relaxEps(a, cur)
	for _, child := range children {
		for i := range next {
			next[i] = cell{}
		}
		for s := range cur {
			if !cur[s].ok {
				continue
			}
			e.improve(next, s, cur[s].t.Add(Triple{Plus: e.weightedSize(child)}))
			for _, edge := range a.syms[s] {
				ts := e.tagSim(child.Name, edge.name)
				if ts <= 0 {
					continue
				}
				delta := e.matchDelta(child, edge.name, depth, global, ts)
				e.improve(next, edge.to, cur[s].t.Add(delta))
			}
		}
		cur, next = next, cur
		e.relaxEps(a, cur)
	}
	if !cur[a.accept].ok {
		return Triple{Minus: 1}
	}
	return cur[a.accept].t
}

func (e *legacyEvaluator) improve(cells []cell, s int, t Triple) bool {
	if !cells[s].ok || e.cfg.score(t) > e.cfg.score(cells[s].t) {
		cells[s] = cell{t: t, ok: true}
		return true
	}
	return false
}

func (e *legacyEvaluator) relaxEps(a *legacyNFA, cells []cell) {
	work := make([]int, 0, len(cells))
	inWork := make([]bool, len(cells))
	for s := range cells {
		if cells[s].ok {
			work = append(work, s)
			inWork[s] = true
		}
	}
	for len(work) > 0 {
		s := work[len(work)-1]
		work = work[:len(work)-1]
		inWork[s] = false
		for _, edge := range a.eps[s] {
			cand := cells[s].t.Add(Triple{Minus: edge.minus})
			if e.improve(cells, edge.to, cand) && !inWork[edge.to] {
				work = append(work, edge.to)
				inWork[edge.to] = true
			}
		}
	}
}
