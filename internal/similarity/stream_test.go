package similarity

// Equivalence tests for the streaming evaluator (stream.go): driven over
// the events a tree walk produces, StreamEval must reproduce the tree
// evaluator's Global degree and root triple bit-for-bit (==, not within an
// epsilon), and its per-element validity must match the recorder's
// decl != nil && LocalValid test at every element, at every depth.

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"dtdevolve/internal/dtd"
	"dtdevolve/internal/gen"
	"dtdevolve/internal/validate"
	"dtdevolve/internal/xmltree"
)

// streamScore replays the event stream of root into a StreamEval,
// computing weighted sizes exactly as the streaming consumer does, and
// returns the result plus the per-element validity bits in close order.
func streamScore(p *Pool, cfg Config, root *xmltree.Node, degradeAt int) (Result, []bool) {
	se := p.GetStream()
	defer p.PutStream(se)
	var valids []bool
	closed := 0
	var walk func(n *xmltree.Node) float64
	walk = func(n *xmltree.Node) float64 {
		se.Start(p.Table().Intern(n.Name), n.Name)
		sum := 0.0
		for _, c := range n.Children {
			switch c.Kind {
			case xmltree.Element:
				sum += walk(c)
			case xmltree.Text:
				se.Text(strings.TrimSpace(c.Data) != "")
				sum++
			}
		}
		if closed == degradeAt {
			se.DegradeTop()
		}
		closed++
		w := 1 + cfg.Decay*sum
		valids = append(valids, se.End(w))
		return w
	}
	walk(root)
	return se.Result(), valids
}

// treeValids collects the recorder's validity bit for every element of the
// tree, in the same element-close order the stream emits.
func treeValids(d *dtd.DTD, root *xmltree.Node) []bool {
	v := validate.New(d)
	var out []bool
	var walk func(n *xmltree.Node)
	walk = func(n *xmltree.Node) {
		for _, c := range n.Children {
			if c.Kind == xmltree.Element {
				walk(c)
			}
		}
		model := d.Elements[n.Name]
		out = append(out, model != nil && v.LocalValid(n, model))
	}
	walk(root)
	return out
}

func checkStreamEquivalent(t *testing.T, label string, p *Pool, d *dtd.DTD, cfg Config, root *xmltree.Node) {
	t.Helper()
	want := p.Evaluate(root)
	got, valids := streamScore(p, cfg, root, -1)
	if got.Global != want.Global || got.Triple != want.Triple {
		t.Errorf("%s: stream %+v, tree %+v", label, got, want)
	}
	wantValids := treeValids(d, root)
	if len(valids) != len(wantValids) {
		t.Fatalf("%s: %d stream validity bits, %d tree elements", label, len(valids), len(wantValids))
	}
	for i := range valids {
		if valids[i] != wantValids[i] {
			t.Errorf("%s: element %d validity stream=%v tree=%v", label, i, valids[i], wantValids[i])
		}
	}
}

// TestStreamEvalMatchesEvaluateCorpus runs the streaming evaluator over
// the full testdata corpus, including cross-family scoring (undeclared
// roots and tags).
func TestStreamEvalMatchesEvaluateCorpus(t *testing.T) {
	feedDTD, feedDocs := corpus(t, filepath.Join("..", "..", "testdata", "feeds"))
	playDTD, playDocs := corpus(t, filepath.Join("..", "..", "testdata", "plays"))
	cfg := DefaultConfig()
	for _, set := range []struct {
		name string
		d    *dtd.DTD
	}{{"feeds", feedDTD}, {"plays", playDTD}} {
		p := NewPool(set.d, cfg)
		for i, doc := range append(append([]*xmltree.Document{}, feedDocs...), playDocs...) {
			checkStreamEquivalent(t, fmt.Sprintf("%s vs doc %d", set.name, i), p, set.d, cfg, doc.Root)
		}
	}
}

// TestStreamEvalMatchesEvaluateRandom fuzzes the streaming evaluator with
// generated DTDs and heavily mutated documents, one pooled StreamEval
// reused across documents so stale frame state would surface as drift.
func TestStreamEvalMatchesEvaluateRandom(t *testing.T) {
	cfg := DefaultConfig()
	for seed := int64(1); seed <= 5; seed++ {
		g := gen.New(gen.DefaultConfig(seed))
		a := g.RandomDTD("root", 8)
		b := g.RandomDTD("root", 6)
		pa, pb := NewPool(a, cfg), NewPool(b, cfg)
		for i, doc := range g.MutatedDocuments(a, 10, 3, 0.7) {
			checkStreamEquivalent(t, fmt.Sprintf("seed %d A/A doc %d", seed, i), pa, a, cfg, doc.Root)
			checkStreamEquivalent(t, fmt.Sprintf("seed %d B/A doc %d", seed, i), pb, b, cfg, doc.Root)
		}
		for i, doc := range g.MutatedDocuments(b, 10, 3, 0.7) {
			checkStreamEquivalent(t, fmt.Sprintf("seed %d B/B doc %d", seed, i), pb, b, cfg, doc.Root)
		}
	}
}

// TestStreamEvalShallowDepthCap pins the depth-cap semantics: triples stop
// at MaxDepth but validity keeps being computed below it.
func TestStreamEvalShallowDepthCap(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxDepth = 2
	g := gen.New(gen.DefaultConfig(11))
	d := g.RandomDTD("root", 8)
	p := NewPool(d, cfg)
	for i, doc := range g.MutatedDocuments(d, 8, 4, 0.8) {
		checkStreamEquivalent(t, fmt.Sprintf("doc %d", i), p, d, cfg, doc.Root)
	}
}

// TestStreamEvalNestedAny covers the validator/automaton divergence: a
// content model with ANY nested under a sequence matches any segment for
// the validator, which the streaming path must reproduce through the
// buffered-tag fallback.
func TestStreamEvalNestedAny(t *testing.T) {
	d := dtd.NewDTD("root")
	d.Elements["root"] = &dtd.Content{Kind: dtd.Seq, Children: []*dtd.Content{
		{Kind: dtd.Name, Name: "a"},
		{Kind: dtd.Any},
	}}
	d.Elements["a"] = &dtd.Content{Kind: dtd.PCDATA}
	cfg := DefaultConfig()
	p := NewPool(d, cfg)
	for _, text := range []string{
		"<root><a>x</a></root>",
		"<root><a>x</a><b/><c/></root>",
		"<root><b/></root>",
	} {
		doc, err := xmltree.ParseString(text)
		if err != nil {
			t.Fatal(err)
		}
		checkStreamEquivalent(t, text, p, d, cfg, doc.Root)
	}
}

// TestStreamEvalDegrade pins the budget-degradation semantics: degrading a
// content frame scores it exactly as an ANY declaration would (the set
// summary), and the degraded element reports invalid.
func TestStreamEvalDegrade(t *testing.T) {
	cfg := DefaultConfig()
	g := gen.New(gen.DefaultConfig(3))
	d := g.RandomDTD("root", 8)
	anyD := dtd.NewDTD(d.Name)
	for name, model := range d.Elements {
		anyD.Elements[name] = model
	}
	anyD.Elements["root"] = &dtd.Content{Kind: dtd.Any}
	p := NewPool(d, cfg)
	pAny := NewPool(anyD, cfg)
	if !isElementContent(d.Elements["root"]) {
		t.Skip("generated root model is not element content")
	}
	for i, doc := range g.MutatedDocuments(d, 6, 3, 0.7) {
		// Degrade the root frame (the last element to close).
		n := countElements(doc.Root)
		got, valids := streamScore(p, cfg, doc.Root, n-1)
		want := pAny.Evaluate(doc.Root)
		if got.Global != want.Global {
			t.Errorf("doc %d: degraded root scored %v, ANY model scores %v", i, got.Global, want.Global)
		}
		if valids[len(valids)-1] {
			t.Errorf("doc %d: degraded root reported valid", i)
		}
	}
}

func countElements(n *xmltree.Node) int {
	c := 1
	for _, ch := range n.Children {
		if ch.Kind == xmltree.Element {
			c += countElements(ch)
		}
	}
	return c
}
