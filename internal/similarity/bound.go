// Upper bounds on attainable similarity, exported for candidate pruning.
//
// The classification index (package classify, DESIGN.md §12) skips a DTD
// without aligning it when no document could score high enough against it
// to matter. That decision needs a per-DTD bound derived from the same
// required-weight tables the aligner runs on, so it lives here: a Bound is
// computed once at pool-compile time and is a pure function afterwards.
//
// Soundness rests on two facts about the measure (exact tag matching, no
// thesaurus):
//
//   - E(p, m, c) = wc·c / (wc·c + wp·p + wm·m) is monotone increasing in c
//     and decreasing in p and m, so an upper bound follows from any upper
//     bound cmax on the common components together with lower bounds on
//     the plus and minus components.
//   - Every root-to-accept path of the alignment automata satisfies
//     c + m ≥ 1 + RootRequired, where RootRequired is the decayed,
//     depth-capped required weight of the declared root's content model:
//     each mandatory model part is either matched (contributing its weight
//     to c) or skipped on an epsilon edge costing at least its capped
//     required weight in m. Hence m ≥ max(0, 1 + RootRequired − c).
//
// The depth cap matters: the aligner stops recursing at MaxDepth, so the
// required weight feeding the bound must be computed with the same cap —
// an uncapped weight could exceed what the aligner can ever charge, which
// would overstate m and understate the bound (unsound). Capping only
// shrinks RootRequired, which only loosens the bound.
package similarity

import "dtdevolve/internal/dtd"

// DepthCap returns the effective recursion cap of the measure: MaxDepth,
// defaulted exactly as evaluators default it when the configuration
// leaves it unset. Signature extraction and the aligner must agree on
// this value, so both read it from here.
func (c Config) DepthCap() int {
	if c.MaxDepth > 0 {
		return c.MaxDepth
	}
	return 64
}

// Bound carries the per-DTD constants from which a conservative upper
// bound on attainable global similarity is computed. Obtain one from
// Pool.Bound; the zero value is unusable.
type Bound struct {
	wc, wp, wm   float64
	decay        float64
	depthCap     int
	rootRequired float64
	exactable    bool
}

// Bound returns the upper-bound constants of the pool's DTD.
func (p *Pool) Bound() Bound { return p.bound }

// Exactable reports whether Max is a sound bound for this configuration.
// A thesaurus breaks it (a sub-unit tag match contributes less than a full
// label weight to c, and bestDecl can redirect the root), as do degenerate
// weights; Max then returns 1, pruning nothing.
func (b Bound) Exactable() bool { return b.exactable }

// DepthCap returns the recursion cap the bound was computed under.
func (b Bound) DepthCap() int { return b.depthCap }

// Decay returns the per-level decay factor of the measure.
func (b Bound) Decay() float64 { return b.decay }

// RootRequired returns the decayed, depth-capped required weight of the
// declared root's content model (0 when the DTD declares no root).
func (b Bound) RootRequired() float64 { return b.rootRequired }

// Max returns an upper bound on Evaluate().Global over every document
// whose common components total at most cmax and whose plus components
// total at least pmin. Monotone in both arguments: raising cmax or
// lowering pmin never lowers the result, so callers may feed any sound
// cmax/pmin estimates.
func (b Bound) Max(cmax, pmin float64) float64 {
	if !b.exactable {
		return 1
	}
	if cmax <= 0 {
		// A scored document always has c ≥ 1 (the root match itself); no
		// attainable common weight means the similarity is 0.
		return 0
	}
	m := 1 + b.rootRequired - cmax
	if m < 0 {
		m = 0
	}
	num := b.wc * cmax
	den := num + b.wp*pmin + b.wm*m
	if den <= num {
		return 1
	}
	ub := num / den
	if ub > 1 {
		return 1
	}
	return ub
}

// computeBound derives the Bound of d under cfg, using seed (the pool's
// precompilation evaluator) for label interning and declaration lookup.
func computeBound(d *dtd.DTD, cfg Config, seed *Evaluator) Bound {
	b := Bound{
		wc:    cfg.CommonWeight,
		wp:    cfg.PlusWeight,
		wm:    cfg.MinusWeight,
		decay: cfg.Decay,
		// seed's config has MaxDepth normalized by newEvaluator.
		depthCap: seed.cfg.MaxDepth,
		exactable: cfg.TagSimilarity == nil && cfg.CommonWeight > 0 &&
			cfg.PlusWeight >= 0 && cfg.MinusWeight >= 0 &&
			cfg.Decay > 0 && cfg.Decay <= 1,
	}
	if d.Name != "" {
		if model, ok := d.Elements[d.Name]; ok {
			b.rootRequired = cfg.Decay * seed.cappedRequiredModelWeight(model, 0, map[reqCapKey]float64{})
		}
	}
	return b
}

// reqCapKey memoizes capped required weights per (element, frame depth):
// unlike the uncapped weight, the capped one genuinely depends on how deep
// the reference sits.
type reqCapKey struct {
	id    int32
	depth int
}

// cappedRequiredModelWeight is requiredModelWeight under the aligner's
// depth cap: the minimal mandatory weight of a content model aligned in a
// frame at the given depth, counting nothing below MaxDepth (frames there
// never run, so the aligner never charges for them). Recursion needs no
// cycle detection — depth strictly increases through every Name — and the
// memo keeps the cost at O(elements × MaxDepth).
func (e *Evaluator) cappedRequiredModelWeight(c *dtd.Content, depth int, memo map[reqCapKey]float64) float64 {
	if c == nil || depth >= e.cfg.MaxDepth {
		return 0
	}
	switch c.Kind {
	case dtd.Name:
		key := reqCapKey{id: e.tab.Intern(c.Name), depth: depth}
		if w, ok := memo[key]; ok {
			return w
		}
		w := 1.0
		if decl, ok := e.d.Elements[c.Name]; ok {
			w += e.cfg.Decay * e.cappedRequiredModelWeight(decl, depth+1, memo)
		}
		memo[key] = w
		return w
	case dtd.Plus:
		return e.cappedRequiredModelWeight(c.Children[0], depth, memo)
	case dtd.Seq:
		var sum float64
		for _, ch := range c.Children {
			sum += e.cappedRequiredModelWeight(ch, depth, memo)
		}
		return sum
	case dtd.Choice:
		best := -1.0
		for _, ch := range c.Children {
			w := e.cappedRequiredModelWeight(ch, depth, memo)
			if best < 0 || w < best {
				best = w
			}
		}
		if best < 0 {
			return 0
		}
		return best
	default:
		// Opt, Star, Empty, Any, PCDATA: nothing mandatory.
		return 0
	}
}
