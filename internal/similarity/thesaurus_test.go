package similarity

import (
	"testing"

	"dtdevolve/internal/dtd"
	"dtdevolve/internal/thesaurus"
)

// Tests of the paper's §6 tag-similarity extension: the measure shifts
// from tag equality to thesaurus-backed tag similarity.

func thesaurusConfig(t *testing.T) Config {
	t.Helper()
	th, err := thesaurus.LoadString(`
author = writer
price ~ cost : 0.8`)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.TagSimilarity = th.SimilarityFunc()
	return cfg
}

var bookDTD = dtd.MustParse(`
<!ELEMENT book (title, author, price)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (#PCDATA)>
<!ELEMENT price (#PCDATA)>`)

func TestSynonymTagsMatch(t *testing.T) {
	// <writer> instead of <author>: a miss under tag equality, a full
	// match under the thesaurus.
	doc := parseDoc(t, `<book><title>t</title><writer>w</writer><price>1</price></book>`)
	plain := NewEvaluator(bookDTD, DefaultConfig()).GlobalSim(doc)
	thes := NewEvaluator(bookDTD, thesaurusConfig(t)).GlobalSim(doc)
	if !(thes > plain) {
		t.Errorf("thesaurus (%v) should beat equality (%v)", thes, plain)
	}
	if thes != 1 {
		t.Errorf("synonym match should be full: %v", thes)
	}
}

func TestWeightedTagsMatchPartially(t *testing.T) {
	// <cost> relates to <price> at 0.8: better than a miss, below exact.
	doc := parseDoc(t, `<book><title>t</title><author>a</author><cost>1</cost></book>`)
	exact := parseDoc(t, `<book><title>t</title><author>a</author><price>1</price></book>`)
	miss := parseDoc(t, `<book><title>t</title><author>a</author><zzz>1</zzz></book>`)
	e := NewEvaluator(bookDTD, thesaurusConfig(t))
	sCost, sExact, sMiss := e.GlobalSim(doc), e.GlobalSim(exact), e.GlobalSim(miss)
	if !(sMiss < sCost && sCost < sExact) {
		t.Errorf("ordering violated: miss %v, cost %v, exact %v", sMiss, sCost, sExact)
	}
}

func TestMinTagSimilarityFloor(t *testing.T) {
	cfg := thesaurusConfig(t)
	cfg.MinTagSimilarity = 0.9 // the price~cost relation (0.8) falls below
	doc := parseDoc(t, `<book><title>t</title><author>a</author><cost>1</cost></book>`)
	floored := NewEvaluator(bookDTD, cfg).GlobalSim(doc)
	open := NewEvaluator(bookDTD, thesaurusConfig(t)).GlobalSim(doc)
	if !(floored < open) {
		t.Errorf("floor did not exclude the weak relation: %v vs %v", floored, open)
	}
}

func TestSynonymRootMatches(t *testing.T) {
	th, _ := thesaurus.LoadString(`book = volume`)
	cfg := DefaultConfig()
	cfg.TagSimilarity = th.SimilarityFunc()
	doc := parseDoc(t, `<volume><title>t</title><author>a</author><price>1</price></volume>`)
	if sim := NewEvaluator(bookDTD, cfg).GlobalSim(doc); sim != 1 {
		t.Errorf("synonym root similarity = %v, want 1", sim)
	}
	if sim := NewEvaluator(bookDTD, DefaultConfig()).GlobalSim(doc); sim != 0 {
		t.Errorf("equality root similarity = %v, want 0", sim)
	}
}

func TestThesaurusInMixedContent(t *testing.T) {
	d := dtd.MustParse(`<!ELEMENT p (#PCDATA | em)*> <!ELEMENT em (#PCDATA)>`)
	th, _ := thesaurus.LoadString(`em = italic`)
	cfg := DefaultConfig()
	cfg.TagSimilarity = th.SimilarityFunc()
	doc := parseDoc(t, `<p>x <italic>y</italic></p>`)
	if sim := NewEvaluator(d, cfg).GlobalSim(doc); sim != 1 {
		t.Errorf("mixed synonym similarity = %v, want 1", sim)
	}
}

func TestThesaurusDoesNotAffectEqualityBehaviour(t *testing.T) {
	// With a thesaurus that knows nothing relevant, results equal the
	// plain configuration.
	th := thesaurus.New()
	cfg := DefaultConfig()
	cfg.TagSimilarity = th.SimilarityFunc()
	doc := parseDoc(t, `<book><title>t</title><author>a</author><price>1</price><zz/></book>`)
	a := NewEvaluator(bookDTD, DefaultConfig()).GlobalSim(doc)
	b := NewEvaluator(bookDTD, cfg).GlobalSim(doc)
	if a != b {
		t.Errorf("empty thesaurus changed result: %v vs %v", a, b)
	}
}
