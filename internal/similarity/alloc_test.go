package similarity

// Allocation-budget regression tests (DESIGN.md §9): the scoring hot path
// must not allocate at steady state. First calls may allocate (memo growth,
// scratch acquisition); these tests warm the evaluator up, then assert zero.

import (
	"testing"

	"dtdevolve/internal/gen"
	"dtdevolve/internal/intern"
)

func TestEvaluateSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under the race detector")
	}
	g := gen.New(gen.DefaultConfig(3))
	d := g.RandomDTD("root", 8)
	docs := g.MutatedDocuments(d, 6, 3, 0.6)
	e := NewEvaluator(d, DefaultConfig())
	for _, doc := range docs { // warm up: intern tags, grow memos and scratch
		e.Evaluate(doc.Root)
	}
	i := 0
	allocs := testing.AllocsPerRun(100, func() {
		e.Evaluate(docs[i%len(docs)].Root)
		i++
	})
	if allocs != 0 {
		t.Errorf("Evaluate allocates %.1f objects/op at steady state, want 0", allocs)
	}
}

func TestLocalSimSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under the race detector")
	}
	g := gen.New(gen.DefaultConfig(4))
	d := g.RandomDTD("root", 8)
	docs := g.MutatedDocuments(d, 6, 3, 0.6)
	model := d.Elements[d.Name]
	e := NewEvaluator(d, DefaultConfig())
	for _, doc := range docs {
		e.LocalSim(doc.Root, model)
	}
	i := 0
	allocs := testing.AllocsPerRun(100, func() {
		e.LocalSim(docs[i%len(docs)].Root, model)
		i++
	})
	if allocs != 0 {
		t.Errorf("LocalSim allocates %.1f objects/op at steady state, want 0", allocs)
	}
}

// TestPooledEvaluateSteadyStateAllocs covers the classify path: a pooled
// borrow-score-return cycle over stamped documents.
func TestPooledEvaluateSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under the race detector")
	}
	g := gen.New(gen.DefaultConfig(5))
	d := g.RandomDTD("root", 8)
	docs := g.MutatedDocuments(d, 6, 3, 0.6)
	pool := NewPoolWithTable(d, DefaultConfig(), intern.NewTable())
	for _, doc := range docs {
		intern.InternDocument(pool.Table(), doc.Root)
		pool.Evaluate(doc.Root)
	}
	i := 0
	allocs := testing.AllocsPerRun(100, func() {
		pool.Evaluate(docs[i%len(docs)].Root)
		i++
	})
	if allocs != 0 {
		t.Errorf("pooled Evaluate allocates %.1f objects/op at steady state, want 0", allocs)
	}
}
