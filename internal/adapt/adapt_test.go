package adapt

import (
	"strings"
	"testing"

	"dtdevolve/internal/dtd"
	"dtdevolve/internal/gen"
	"dtdevolve/internal/similarity"
	"dtdevolve/internal/thesaurus"
	"dtdevolve/internal/validate"
	"dtdevolve/internal/xmltree"
)

func parseDoc(t *testing.T, src string) *xmltree.Document {
	t.Helper()
	doc, err := xmltree.ParseString(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return doc
}

var productDTD = func() *dtd.DTD {
	d := dtd.MustParse(`
<!ELEMENT catalog (product+)>
<!ELEMENT product (name, price, tag*)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT price (#PCDATA)>
<!ELEMENT tag (#PCDATA)>`)
	d.Name = "catalog"
	return d
}()

func adaptAndValidate(t *testing.T, d *dtd.DTD, src string) (*xmltree.Document, *Report) {
	t.Helper()
	a := New(d, DefaultOptions())
	out, report := a.Adapt(parseDoc(t, src))
	if vs := validate.New(d).ValidateDocument(out); len(vs) != 0 {
		t.Fatalf("adapted doc invalid: %v\nbefore: %s\nafter: %s", vs, src, out.Root)
	}
	return out, report
}

func TestAdaptValidDocumentUnchanged(t *testing.T) {
	src := `<catalog><product><name>n</name><price>1</price><tag>t</tag></product></catalog>`
	out, report := adaptAndValidate(t, productDTD, src)
	if !out.Root.Equal(parseDoc(t, src).Root) {
		t.Error("valid document changed")
	}
	if report.Dropped+report.Inserted+report.Renamed != 0 {
		t.Errorf("report = %+v, want no changes", report)
	}
}

func TestAdaptDropsExtras(t *testing.T) {
	src := `<catalog><product><name>n</name><price>1</price><sku>S</sku></product></catalog>`
	out, report := adaptAndValidate(t, productDTD, src)
	if report.Dropped != 1 {
		t.Errorf("dropped = %d, want 1", report.Dropped)
	}
	if strings.Contains(out.Root.String(), "sku") {
		t.Error("sku still present")
	}
	if len(report.Changes) == 0 || report.Changes[0].Kind != "drop" {
		t.Errorf("changes = %v", report.Changes)
	}
}

func TestAdaptInsertsMissing(t *testing.T) {
	src := `<catalog><product><name>n</name></product></catalog>`
	out, report := adaptAndValidate(t, productDTD, src)
	if report.Inserted != 1 {
		t.Errorf("inserted = %d, want 1", report.Inserted)
	}
	if !strings.Contains(out.Root.String(), "<price") {
		t.Errorf("price not inserted: %s", out.Root)
	}
}

func TestAdaptPlaceholderText(t *testing.T) {
	opts := DefaultOptions()
	opts.PlaceholderText = "TBD"
	a := New(productDTD, opts)
	out, _ := a.Adapt(parseDoc(t, `<catalog><product><name>n</name></product></catalog>`))
	if !strings.Contains(out.Root.String(), "<price>TBD</price>") {
		t.Errorf("placeholder missing: %s", out.Root)
	}
}

func TestAdaptDropTextInElementContent(t *testing.T) {
	src := `<catalog>stray text<product><name>n</name><price>1</price></product></catalog>`
	_, report := adaptAndValidate(t, productDTD, src)
	found := false
	for _, c := range report.Changes {
		if c.Kind == "drop-text" {
			found = true
		}
	}
	if !found {
		t.Errorf("stray text not reported: %+v", report.Changes)
	}
}

func TestAdaptEmptyAndPCDATA(t *testing.T) {
	d := dtd.MustParse(`<!ELEMENT r (e, p)> <!ELEMENT e EMPTY> <!ELEMENT p (#PCDATA)>`)
	src := `<r><e><junk/></e><p>keep<junk/></p></r>`
	out, report := adaptAndValidate(t, d, src)
	if report.Dropped != 2 {
		t.Errorf("dropped = %d, want 2", report.Dropped)
	}
	if got := out.Root.String(); !strings.Contains(got, "<p>keep</p>") {
		t.Errorf("PCDATA text lost: %s", got)
	}
}

func TestAdaptMixedContent(t *testing.T) {
	d := dtd.MustParse(`<!ELEMENT p (#PCDATA | em)*> <!ELEMENT em (#PCDATA)>`)
	src := `<p>one <em>two</em> three <bad>x</bad> four</p>`
	out, report := adaptAndValidate(t, d, src)
	if report.Dropped != 1 {
		t.Errorf("dropped = %d, want 1", report.Dropped)
	}
	if got := out.Root.Text(); !strings.Contains(got, "four") {
		t.Errorf("text lost: %q", got)
	}
}

func TestAdaptRenamesSynonyms(t *testing.T) {
	th, _ := thesaurus.LoadString(`price = cost`)
	opts := DefaultOptions()
	opts.Similarity = similarity.DefaultConfig()
	opts.Similarity.TagSimilarity = th.SimilarityFunc()
	a := New(productDTD, opts)
	out, report := a.Adapt(parseDoc(t, `<catalog><product><name>n</name><cost>5</cost></product></catalog>`))
	if report.Renamed != 1 {
		t.Fatalf("renamed = %d, want 1\nchanges: %v", report.Renamed, report.Changes)
	}
	if !strings.Contains(out.Root.String(), "<price>5</price>") {
		t.Errorf("cost not renamed: %s", out.Root)
	}
	if vs := validate.New(productDTD).ValidateDocument(out); len(vs) != 0 {
		t.Errorf("adapted doc invalid: %v", vs)
	}
}

func TestAdaptKeepExtrasMode(t *testing.T) {
	opts := DefaultOptions()
	opts.DropExtras = false
	a := New(productDTD, opts)
	out, report := a.Adapt(parseDoc(t, `<catalog><product><name>n</name><price>1</price><sku>S</sku></product></catalog>`))
	if report.Dropped != 0 {
		t.Errorf("dropped = %d in keep mode", report.Dropped)
	}
	if !strings.Contains(out.Root.String(), "sku") {
		t.Error("sku removed despite keep mode")
	}
}

func TestAdaptChoiceInsertsCheapestAlternative(t *testing.T) {
	d := dtd.MustParse(`
<!ELEMENT r (x, (big | small))>
<!ELEMENT x EMPTY>
<!ELEMENT big (p, q, s)>
<!ELEMENT small EMPTY>
<!ELEMENT p EMPTY> <!ELEMENT q EMPTY> <!ELEMENT s EMPTY>`)
	out, _ := adaptAndValidate(t, d, `<r><x/></r>`)
	if !strings.Contains(out.Root.String(), "<small/>") {
		t.Errorf("cheapest alternative not chosen: %s", out.Root)
	}
}

func TestAdaptRequiredCycleGivesUpGracefully(t *testing.T) {
	d := dtd.MustParse(`<!ELEMENT a (b)> <!ELEMENT b (a)>`)
	a := New(d, DefaultOptions())
	out, _ := a.Adapt(parseDoc(t, `<a/>`))
	// No finite valid instance exists; the adapter must terminate and
	// return something sensible, not loop.
	if out == nil || out.Root == nil {
		t.Fatal("adapter returned nothing")
	}
}

func TestAdaptDoesNotMutateInput(t *testing.T) {
	src := `<catalog><product><name>n</name><junk/></product></catalog>`
	doc := parseDoc(t, src)
	before := doc.Root.String()
	a := New(productDTD, DefaultOptions())
	a.Adapt(doc)
	if doc.Root.String() != before {
		t.Error("input mutated")
	}
}

// TestAdaptPropertyMutatedCorpusBecomesValid is the headline property:
// whatever the mutation, adaptation yields a valid document (the DTD here
// has no required cycles).
func TestAdaptPropertyMutatedCorpusBecomesValid(t *testing.T) {
	truth := dtd.MustParse(`
<!ELEMENT doc (head, section+)>
<!ELEMENT head (title, meta*)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT meta EMPTY>
<!ELEMENT section (heading?, (para | list)*)>
<!ELEMENT heading (#PCDATA)>
<!ELEMENT para (#PCDATA)>
<!ELEMENT list (item+)>
<!ELEMENT item (#PCDATA)>`)
	truth.Name = "doc"
	g := gen.New(gen.DefaultConfig(31))
	a := New(truth, DefaultOptions())
	v := validate.New(truth)
	for i := 0; i < 150; i++ {
		doc := g.Mutate(g.Document(truth), 1+i%4)
		out, _ := a.Adapt(doc)
		if vs := v.ValidateDocument(out); len(vs) != 0 {
			t.Fatalf("doc %d not valid after adaptation: %v\nbefore:\n%safter:\n%s",
				i, vs, doc.Root.Indent(), out.Root.Indent())
		}
	}
}

func TestAdaptElementInPlace(t *testing.T) {
	d := dtd.MustParse(`<!ELEMENT a (b)> <!ELEMENT b EMPTY>`)
	a := New(d, DefaultOptions())
	root := parseDoc(t, `<a><junk/></a>`).Root
	report := a.AdaptElement(root)
	if report.Dropped != 1 || report.Inserted != 1 {
		t.Errorf("report = %+v", report)
	}
	if len(validate.New(d).ValidateElement(root)) != 0 {
		t.Errorf("in-place adaptation left %s invalid", root)
	}
	if report.Changes[0].String() == "" {
		t.Error("empty change string")
	}
}

func TestAdaptUndeclaredRootLeftAlone(t *testing.T) {
	d := dtd.MustParse(`<!ELEMENT a (b)> <!ELEMENT b EMPTY>`)
	a := New(d, DefaultOptions())
	doc := parseDoc(t, `<mystery><x/></mystery>`)
	out, report := a.Adapt(doc)
	if !out.Root.Equal(doc.Root) {
		t.Error("undeclared root modified")
	}
	if len(report.Changes) != 0 {
		t.Errorf("changes = %v", report.Changes)
	}
}

func TestAdaptAnyContentRecursesDeclaredChildren(t *testing.T) {
	d := dtd.MustParse(`<!ELEMENT a ANY> <!ELEMENT b (c)> <!ELEMENT c EMPTY>`)
	a := New(d, DefaultOptions())
	out, report := a.Adapt(parseDoc(t, `<a><b/></a>`))
	// b under ANY must still be repaired against its own declaration.
	if report.Inserted != 1 {
		t.Errorf("report = %+v", report)
	}
	if len(validate.New(d).ValidateDocument(out)) != 0 {
		t.Errorf("out = %s", out.Root)
	}
}

func TestAdaptPlusInsertsOneInstance(t *testing.T) {
	d := dtd.MustParse(`<!ELEMENT a (b+)> <!ELEMENT b (c, c)> <!ELEMENT c EMPTY>`)
	a := New(d, DefaultOptions())
	out, _ := a.Adapt(parseDoc(t, `<a/>`))
	if got := out.Root.String(); got != `<a><b><c/><c/></b></a>` {
		t.Errorf("out = %s", got)
	}
}
