// Package adapt transforms documents to conform to a DTD: the open problem
// the paper names in §6 ("how to adapt documents, already stored in the
// source, to the new structure prescribed by the evolved set of DTDs").
//
// Adaptation reuses the similarity measure's optimal alignment: per
// element, the children are aligned against the (evolved) content model;
// matched children recurse (renamed to the declared tag when the match came
// from a thesaurus), extra children are dropped, and missing mandatory
// elements are inserted as minimal valid instances. The result is valid for
// DTDs with finitely satisfiable declarations; a report records every
// transformation so nothing is lost silently.
package adapt

import (
	"fmt"
	"strings"

	"dtdevolve/internal/dtd"
	"dtdevolve/internal/similarity"
	"dtdevolve/internal/xmltree"
)

// Options configures the adapter.
type Options struct {
	// DropExtras removes elements with no place in the content model. When
	// false they are kept in place (the output may then stay invalid).
	DropExtras bool
	// InsertMissing creates minimal instances of mandatory elements the
	// document lacks. When false they remain missing.
	InsertMissing bool
	// PlaceholderText fills created #PCDATA-only elements ("" keeps them
	// empty, which is valid).
	PlaceholderText string
	// Similarity configures the alignment (including an optional
	// thesaurus; synonym children are renamed to the declared tag).
	Similarity similarity.Config
}

// DefaultOptions returns full adaptation: drop extras, insert missing.
func DefaultOptions() Options {
	return Options{
		DropExtras:    true,
		InsertMissing: true,
		Similarity:    similarity.DefaultConfig(),
	}
}

// Change records one transformation applied to the document.
type Change struct {
	// Path locates the parent element, e.g. "/catalog/product[0]".
	Path string
	// Kind is "drop", "insert", "rename", or "drop-text".
	Kind string
	// Detail names the element involved.
	Detail string
}

func (c Change) String() string {
	return fmt.Sprintf("%s: %s %s", c.Path, c.Kind, c.Detail)
}

// Report summarizes one adaptation.
type Report struct {
	Matched  int
	Dropped  int
	Inserted int
	Renamed  int
	Changes  []Change
}

// Adapter transforms documents to conform to one DTD.
type Adapter struct {
	d    *dtd.DTD
	opts Options
	eval *similarity.Evaluator
}

// New returns an Adapter for d.
func New(d *dtd.DTD, opts Options) *Adapter {
	if opts.Similarity.MaxDepth == 0 {
		opts.Similarity = similarity.DefaultConfig()
	}
	return &Adapter{d: d, opts: opts, eval: similarity.NewEvaluator(d, opts.Similarity)}
}

// Adapt returns a transformed copy of the document (the input is not
// modified) and the report of applied changes.
func (a *Adapter) Adapt(doc *xmltree.Document) (*xmltree.Document, *Report) {
	report := &Report{}
	root := doc.Root.Clone()
	a.adaptElement(root, "/"+root.Name, report)
	return &xmltree.Document{Doctype: doc.Doctype, Root: root}, report
}

// AdaptElement transforms the subtree rooted at n in place and returns the
// report.
func (a *Adapter) AdaptElement(n *xmltree.Node) *Report {
	report := &Report{}
	a.adaptElement(n, "/"+n.Name, report)
	return report
}

func (a *Adapter) adaptElement(n *xmltree.Node, path string, report *Report) {
	model, declared := a.d.Elements[n.Name]
	if !declared {
		// An undeclared element cannot be made valid; its parent decides
		// whether it survives (as an extra). Children are left as-is.
		return
	}
	switch {
	case model.Kind == dtd.Any:
		for i, c := range n.ChildElements() {
			a.adaptElement(c, childPath(path, c.Name, i), report)
		}
		return
	case model.Kind == dtd.Empty:
		if len(n.Children) > 0 && a.opts.DropExtras {
			report.Dropped += len(n.Children)
			report.Changes = append(report.Changes, Change{
				Path: path, Kind: "drop", Detail: fmt.Sprintf("%d children of EMPTY element", len(n.Children)),
			})
			n.Children = nil
		}
		return
	case model.Kind == dtd.PCDATA:
		a.dropElementChildren(n, path, report)
		return
	case model.IsMixed():
		a.adaptMixed(n, model, path, report)
		return
	}
	a.adaptElementContent(n, model, path, report)
}

func (a *Adapter) dropElementChildren(n *xmltree.Node, path string, report *Report) {
	if !a.opts.DropExtras {
		return
	}
	var kept []*xmltree.Node
	for _, c := range n.Children {
		if c.Kind == xmltree.Element {
			report.Dropped++
			report.Changes = append(report.Changes, Change{Path: path, Kind: "drop", Detail: "<" + c.Name + ">"})
			continue
		}
		kept = append(kept, c)
	}
	n.Children = kept
}

func (a *Adapter) adaptMixed(n *xmltree.Node, model *dtd.Content, path string, report *Report) {
	ops := a.eval.AlignChildren(model, n.ChildElements())
	decision := make(map[*xmltree.Node]similarity.AlignOp, len(ops))
	for _, op := range ops {
		if op.Child != nil {
			decision[op.Child] = op
		}
	}
	var kept []*xmltree.Node
	idx := 0
	for _, c := range n.Children {
		if c.Kind != xmltree.Element {
			kept = append(kept, c)
			continue
		}
		op := decision[c]
		switch op.Kind {
		case similarity.OpMatch:
			a.applyMatch(c, op.Name, childPath(path, c.Name, idx), report)
			kept = append(kept, c)
		default:
			if a.opts.DropExtras {
				report.Dropped++
				report.Changes = append(report.Changes, Change{Path: path, Kind: "drop", Detail: "<" + c.Name + ">"})
			} else {
				kept = append(kept, c)
			}
		}
		idx++
	}
	n.Children = kept
}

func (a *Adapter) adaptElementContent(n *xmltree.Node, model *dtd.Content, path string, report *Report) {
	// Character data is not allowed in element content.
	if a.opts.DropExtras {
		var kept []*xmltree.Node
		for _, c := range n.Children {
			if c.Kind == xmltree.Text {
				if strings.TrimSpace(c.Data) != "" {
					report.Dropped++
					report.Changes = append(report.Changes, Change{Path: path, Kind: "drop-text", Detail: fmt.Sprintf("%q", snippet(c.Data))})
				}
				continue
			}
			kept = append(kept, c)
		}
		n.Children = kept
	}

	ops := a.eval.AlignChildren(model, n.ChildElements())
	var out []*xmltree.Node
	idx := 0
	for _, op := range ops {
		switch op.Kind {
		case similarity.OpMatch:
			a.applyMatch(op.Child, op.Name, childPath(path, op.Child.Name, idx), report)
			out = append(out, op.Child)
			idx++
		case similarity.OpExtra:
			if a.opts.DropExtras {
				report.Dropped++
				report.Changes = append(report.Changes, Change{Path: path, Kind: "drop", Detail: "<" + op.Child.Name + ">"})
			} else {
				out = append(out, op.Child)
				idx++
			}
		case similarity.OpMissing:
			if a.opts.InsertMissing {
				created := a.minimal(op.Name, make(map[string]bool))
				if created != nil {
					report.Inserted++
					report.Changes = append(report.Changes, Change{Path: path, Kind: "insert", Detail: "<" + op.Name + ">"})
					out = append(out, created)
					idx++
				}
			}
		}
	}
	// Preserve non-element children that survived (only whitespace text
	// remains after the drop above); append after elements is wrong, so
	// interleave: element content has no meaningful text, drop silently.
	n.Children = make([]*xmltree.Node, len(out))
	copy(n.Children, out)
	report.Matched += countMatches(ops)
}

func countMatches(ops []similarity.AlignOp) int {
	n := 0
	for _, op := range ops {
		if op.Kind == similarity.OpMatch {
			n++
		}
	}
	return n
}

func (a *Adapter) applyMatch(c *xmltree.Node, declName, path string, report *Report) {
	if c.Name != declName {
		report.Renamed++
		report.Changes = append(report.Changes, Change{
			Path: path, Kind: "rename", Detail: fmt.Sprintf("<%s> to <%s>", c.Name, declName),
		})
		c.Name = declName
	}
	a.adaptElement(c, path, report)
}

// minimal builds a minimal valid instance of the named element; nil when
// the name is undeclared or only infinitely satisfiable (required cycle).
func (a *Adapter) minimal(name string, building map[string]bool) *xmltree.Node {
	if building[name] {
		return nil // required cycle: no finite instance
	}
	n := xmltree.NewElement(name)
	model, ok := a.d.Elements[name]
	if !ok {
		return n
	}
	building[name] = true
	defer delete(building, name)
	switch {
	case model.Kind == dtd.PCDATA:
		if a.opts.PlaceholderText != "" {
			n.Children = append(n.Children, xmltree.NewText(a.opts.PlaceholderText))
		}
		return n
	case model.Kind == dtd.Empty, model.Kind == dtd.Any, model.IsMixed():
		return n
	}
	kids, ok := a.minimalContent(model, building)
	if !ok {
		return nil
	}
	n.Children = kids
	return n
}

// minimalContent returns the cheapest child list satisfying the model.
func (a *Adapter) minimalContent(model *dtd.Content, building map[string]bool) ([]*xmltree.Node, bool) {
	switch model.Kind {
	case dtd.Empty, dtd.Any, dtd.PCDATA:
		return nil, true
	case dtd.Opt, dtd.Star:
		return nil, true
	case dtd.Plus:
		return a.minimalContent(model.Children[0], building)
	case dtd.Name:
		c := a.minimal(model.Name, building)
		if c == nil {
			return nil, false
		}
		return []*xmltree.Node{c}, true
	case dtd.Seq:
		var out []*xmltree.Node
		for _, ch := range model.Children {
			kids, ok := a.minimalContent(ch, building)
			if !ok {
				return nil, false
			}
			out = append(out, kids...)
		}
		return out, true
	case dtd.Choice:
		// Prefer the alternative with the fewest created nodes.
		var best []*xmltree.Node
		found := false
		for _, ch := range model.Children {
			kids, ok := a.minimalContent(ch, building)
			if !ok {
				continue
			}
			if !found || countNodes(kids) < countNodes(best) {
				best, found = kids, true
			}
		}
		return best, found
	default:
		return nil, true
	}
}

func countNodes(nodes []*xmltree.Node) int {
	n := 0
	for _, node := range nodes {
		n += node.CountElements()
	}
	return n
}

func childPath(parent, name string, i int) string {
	return fmt.Sprintf("%s/%s[%d]", parent, name, i)
}

func snippet(s string) string {
	s = strings.TrimSpace(s)
	if len(s) > 20 {
		return s[:20] + "..."
	}
	return s
}
