package evolve

// Cross-seed properties of the whole evolution phase over generated
// workloads: these are the behavioral guarantees the evaluation relies on.

import (
	"testing"

	"dtdevolve/internal/dtd"
	"dtdevolve/internal/gen"
	"dtdevolve/internal/metrics"
	"dtdevolve/internal/record"
)

func propertyTruth() *dtd.DTD {
	d := dtd.MustParse(`
<!ELEMENT doc (head, section+)>
<!ELEMENT head (title, meta*)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT meta EMPTY>
<!ELEMENT section (heading?, (para | list)*)>
<!ELEMENT heading (#PCDATA)>
<!ELEMENT para (#PCDATA)>
<!ELEMENT list (item+)>
<!ELEMENT item (#PCDATA)>`)
	d.Name = "doc"
	return d
}

// TestPropertyEvolutionImprovesConformance: for many random drifts, one
// evolution step must never reduce — and essentially always increase —
// conformance on the drifted population.
func TestPropertyEvolutionImprovesConformance(t *testing.T) {
	truth := propertyTruth()
	improved := 0
	const seeds = 40
	for seed := int64(1); seed <= seeds; seed++ {
		g := gen.New(gen.DefaultConfig(seed))
		drifted := g.Drift(truth, 1+int(seed%4))
		docs := g.Documents(drifted, 60)

		rec := record.New(truth)
		for _, doc := range docs {
			rec.Record(doc)
		}
		evolved, _ := Evolve(rec, DefaultConfig())

		before := metrics.Conformance(docs, truth)
		after := metrics.Conformance(docs, evolved)
		if after < before {
			t.Errorf("seed %d: conformance dropped %.3f -> %.3f\ndrifted:\n%s\nevolved:\n%s",
				seed, before, after, drifted, evolved)
		}
		if after > before {
			improved++
		}
	}
	if improved < seeds*3/4 {
		t.Errorf("evolution improved conformance in only %d/%d drifts", improved, seeds)
	}
}

// TestPropertyEvolvedDTDReparses: whatever the drift, the evolved DTD
// serializes to legal DTD syntax and reparses to an equal structure.
func TestPropertyEvolvedDTDReparses(t *testing.T) {
	truth := propertyTruth()
	for seed := int64(1); seed <= 30; seed++ {
		g := gen.New(gen.DefaultConfig(seed))
		drifted := g.Drift(truth, 2)
		rec := record.New(truth)
		for _, doc := range g.MutatedDocuments(drifted, 40, 2, 0.4) {
			rec.Record(doc)
		}
		evolved, _ := Evolve(rec, DefaultConfig())
		out := evolved.String()
		back, err := dtd.ParseString(out)
		if err != nil {
			t.Fatalf("seed %d: evolved DTD does not reparse: %v\n%s", seed, err, out)
		}
		if !evolved.Equal(back) {
			t.Fatalf("seed %d: round trip changed evolved DTD", seed)
		}
	}
}

// TestPropertySecondEvolutionConverges: evolving twice on a stable drifted
// population reaches a fixpoint good enough that the whole population is
// valid.
func TestPropertySecondEvolutionConverges(t *testing.T) {
	truth := propertyTruth()
	for seed := int64(1); seed <= 20; seed++ {
		g := gen.New(gen.DefaultConfig(seed))
		drifted := g.Drift(truth, 2)
		docs := g.Documents(drifted, 60)

		current := truth
		for round := 0; round < 2; round++ {
			rec := record.New(current)
			for _, doc := range docs {
				rec.Record(doc)
			}
			if !rec.ShouldEvolve(0) && round > 0 {
				break // already fully valid
			}
			current, _ = Evolve(rec, DefaultConfig())
		}
		if got := metrics.Conformance(docs, current); got < 0.95 {
			t.Errorf("seed %d: conformance after two evolutions = %.3f\ndrifted:\n%s\nreached:\n%s",
				seed, got, drifted, current)
		}
	}
}
