package evolve

import (
	"strings"
	"testing"

	"dtdevolve/internal/dtd"
	"dtdevolve/internal/record"
	"dtdevolve/internal/validate"
	"dtdevolve/internal/xmltree"
)

func parseDoc(t *testing.T, src string) *xmltree.Document {
	t.Helper()
	doc, err := xmltree.ParseString(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return doc
}

func recordDocs(t *testing.T, d *dtd.DTD, docs map[string]int) *record.Recorder {
	t.Helper()
	r := record.New(d)
	for src, n := range docs {
		for i := 0; i < n; i++ {
			r.Record(parseDoc(t, src))
		}
	}
	return r
}

// TestPaperExample5 reproduces the worked example of §4.2 / Figure 5: the
// DTD declares a with sequence (b, c); documents in D1 contain repeated
// (b, c) pairs followed by d, documents in D2 contain one (b, c) pair
// followed by e. Policy 1 binds {b, c} into (b, c)* (they form a repetition
// group), Policy 4 binds the mutually exclusive {d, e} into (d | e), and
// Policy 13 binds the two trees into the final declaration
//
//	<!ELEMENT a ((b, c)*, (d | e))>
//
// d and e are plus elements: declarations are extracted for them from the
// recorded nested structure (tree (4) of Figure 5).
func TestPaperExample5(t *testing.T) {
	d := dtd.MustParse(`
<!ELEMENT a (b, c)>
<!ELEMENT b (#PCDATA)>
<!ELEMENT c (#PCDATA)>`)
	docs := map[string]int{
		`<a><b>1</b><c>1</c><b>2</b><c>2</c><d>x</d></a>`: 3, // D1
		`<a><b>1</b><c>1</c><e>y</e></a>`:                 2, // D2
	}
	rec := recordDocs(t, d, docs)

	// Every instance of a is non-valid: a falls in the new window.
	if got := rec.Stats("a").InvalidityRatio(); got != 1 {
		t.Fatalf("I(a) = %v, want 1", got)
	}

	evolved, report := Evolve(rec, DefaultConfig())
	if got := evolved.Elements["a"].String(); got != "((b, c)*, (d | e))" {
		t.Errorf("evolved a = %s, want ((b, c)*, (d | e))", got)
	}
	// d and e carried text: their extracted declarations are (#PCDATA).
	if got := evolved.Elements["d"]; got == nil || got.String() != "(#PCDATA)" {
		t.Errorf("evolved d = %v, want (#PCDATA)", got)
	}
	if got := evolved.Elements["e"]; got == nil || got.String() != "(#PCDATA)" {
		t.Errorf("evolved e = %v, want (#PCDATA)", got)
	}
	// b and c keep their declarations.
	if got := evolved.Elements["b"].String(); got != "(#PCDATA)" {
		t.Errorf("evolved b = %s", got)
	}

	// All recorded documents are valid for the evolved DTD.
	v := validate.New(evolved)
	for src := range docs {
		if vs := v.ValidateElement(parseDoc(t, src).Root); len(vs) != 0 {
			t.Errorf("doc not valid after evolution: %v\n%s", vs, src)
		}
	}

	// Report: a rebuilt, d and e added.
	actions := make(map[string]Action)
	for _, c := range report.Changes {
		actions[c.Name] = c.Action
	}
	if actions["a"] != Rebuilt {
		t.Errorf("action[a] = %v, want rebuilt", actions["a"])
	}
	if actions["d"] != Added || actions["e"] != Added {
		t.Errorf("actions d/e = %v/%v, want added", actions["d"], actions["e"])
	}
	if actions["b"] != Unchanged {
		t.Errorf("action[b] = %v, want unchanged", actions["b"])
	}
}

func TestOldWindowRestriction(t *testing.T) {
	d := dtd.MustParse(`
<!ELEMENT a (b*, c?, d+, (x | y))>
<!ELEMENT b EMPTY> <!ELEMENT c EMPTY> <!ELEMENT d EMPTY>
<!ELEMENT x EMPTY> <!ELEMENT y EMPTY>`)
	// Twelve valid documents: b always present and repeated, c always
	// present, d never repeated, only alternative x ever used.
	rec := recordDocs(t, d, map[string]int{
		`<a><b/><b/><c/><d/><x/></a>`: 12,
	})
	if got := rec.Stats("a").InvalidityRatio(); got != 0 {
		t.Fatalf("I(a) = %v, want 0 (old window)", got)
	}
	evolved, report := Evolve(rec, DefaultConfig())
	if got := evolved.Elements["a"].String(); got != "(b+, c, d, x)" {
		t.Errorf("restricted a = %s, want (b+, c, d, x)", got)
	}
	var action Action
	for _, c := range report.Changes {
		if c.Name == "a" {
			action = c.Action
		}
	}
	if action != Restricted {
		t.Errorf("action = %v, want restricted", action)
	}
}

func TestRestrictionRequiresSamples(t *testing.T) {
	d := dtd.MustParse(`<!ELEMENT a (b*)> <!ELEMENT b EMPTY>`)
	rec := recordDocs(t, d, map[string]int{`<a><b/></a>`: 3})
	evolved, _ := Evolve(rec, DefaultConfig()) // MinRestrictSamples = 10
	if got := evolved.Elements["a"]; !got.Equal(dtd.NewStar(dtd.NewName("b"))) {
		t.Errorf("a = %s, want b* — too few samples to restrict", got)
	}
	cfg := DefaultConfig()
	cfg.MinRestrictSamples = 2
	evolved, _ = Evolve(rec, cfg)
	if got := evolved.Elements["a"].String(); got != "(b)" {
		t.Errorf("a = %s, want (b) with a low sample floor", got)
	}
}

func TestMiscWindowMergesWithOldDeclaration(t *testing.T) {
	d := dtd.MustParse(`<!ELEMENT a (b, c)> <!ELEMENT b EMPTY> <!ELEMENT c EMPTY>`)
	// Half the instances valid, half with a brand-new shape (z only):
	// I(a) = 0.5 falls in the misc window for ψ = 0.15.
	rec := recordDocs(t, d, map[string]int{
		`<a><b/><c/></a>`: 5,
		`<a><z/></a>`:     5,
	})
	evolved, report := Evolve(rec, DefaultConfig())
	model := evolved.Elements["a"]
	v := validate.New(evolved)
	for _, src := range []string{`<a><b/><c/></a>`, `<a><z/></a>`} {
		if vs := v.ValidateElement(parseDoc(t, src).Root); len(vs) != 0 {
			t.Errorf("doc not valid after misc merge (%s): %v", model, vs)
		}
	}
	var action Action
	for _, c := range report.Changes {
		if c.Name == "a" {
			action = c.Action
		}
	}
	if action != Merged {
		t.Errorf("action = %v, want merged", action)
	}
	if evolved.Elements["z"] == nil {
		t.Error("plus element z not declared")
	}
}

func TestEvolveLocalityOfModifications(t *testing.T) {
	// Only the drifting element changes; everything else stays untouched.
	d := dtd.MustParse(`
<!ELEMENT r (head, body)>
<!ELEMENT head (title)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT body (p+)>
<!ELEMENT p (#PCDATA)>`)
	// Nine documents: below the restriction sample floor, so valid
	// declarations (r, body) stay literally unchanged while head evolves.
	rec := recordDocs(t, d, map[string]int{
		`<r><head><title>t</title><author>a</author></head><body><p>x</p></body></r>`: 9,
	})
	evolved, _ := Evolve(rec, DefaultConfig())
	if got := evolved.Elements["r"].String(); got != "(head, body)" {
		t.Errorf("r changed: %s", got)
	}
	if got := evolved.Elements["body"]; !got.Equal(d.Elements["body"]) {
		t.Errorf("body changed: %s", got)
	}
	head := evolved.Elements["head"].String()
	if !strings.Contains(head, "author") {
		t.Errorf("head did not gain author: %s", head)
	}
	if evolved.Elements["author"] == nil {
		t.Error("author not declared")
	}
}

func TestEvolveKeepsElementsWithoutData(t *testing.T) {
	d := dtd.MustParse(`<!ELEMENT a (b)> <!ELEMENT b EMPTY> <!ELEMENT unused (a)>`)
	rec := recordDocs(t, d, map[string]int{`<a><b/></a>`: 2})
	evolved, report := Evolve(rec, DefaultConfig())
	if got := evolved.Elements["unused"].String(); got != "(a)" {
		t.Errorf("unused = %s", got)
	}
	for _, c := range report.Changes {
		if c.Name == "unused" && c.Action != Unchanged {
			t.Errorf("unused action = %v", c.Action)
		}
	}
}

func TestEvolveDoesNotMutateInput(t *testing.T) {
	d := dtd.MustParse(`<!ELEMENT a (b)> <!ELEMENT b EMPTY>`)
	before := d.String()
	rec := recordDocs(t, d, map[string]int{`<a><z/><z/></a>`: 10})
	_, _ = Evolve(rec, DefaultConfig())
	if d.String() != before {
		t.Error("Evolve mutated the input DTD")
	}
}

func TestActionString(t *testing.T) {
	for a, want := range map[Action]string{
		Unchanged: "unchanged", Restricted: "restricted",
		Rebuilt: "rebuilt", Merged: "merged", Added: "added",
	} {
		if a.String() != want {
			t.Errorf("Action(%d).String() = %q, want %q", int(a), a.String(), want)
		}
	}
}
