package evolve

// Direct tests of individual heuristic policies (DESIGN.md §3.2): each
// builds the engine's working set and rule base by hand and fires exactly
// one policy, verifying its condition and rewrite. Full-corpus flows are
// covered in extract_test.go; these unit tests reach the policies that
// corpus-level mutual-presence classes tend to absorb (P3, P8, P11, P12).

import (
	"testing"

	"dtdevolve/internal/dtd"
	"dtdevolve/internal/mine"
	"dtdevolve/internal/record"
)

// policyStats builds ElementStats with explicit positions, repetitions and
// groups for engine-level tests.
func policyStats(pos map[string]float64, repeated map[string]bool, groups [][]string) *record.ElementStats {
	s := &record.ElementStats{
		Labels:       map[string]*record.LabelStats{},
		Sequences:    map[string]*record.SeqStats{},
		Groups:       map[string]*record.GroupStats{},
		PresentCount: map[string]int{},
		RepeatCount:  map[string]int{},
		PosSum:       map[string]float64{},
		PosCount:     map[string]int{},
	}
	for tag, p := range pos {
		s.PosSum[tag] = p
		s.PosCount[tag] = 1
		s.PresentCount[tag] = 1
	}
	for tag, r := range repeated {
		if r {
			s.RepeatCount[tag] = 1
		}
	}
	for _, g := range groups {
		s.Groups[mine.Key(g)] = &record.GroupStats{Tags: g, Count: 1}
	}
	return s
}

// policyEngine builds an engine with a hand-made working set.
func policyEngine(stats *record.ElementStats, txs []mine.Transaction, universe []string, trees ...*workTree) *engine {
	aug := mine.AugmentAll(txs, universe)
	e := &engine{
		stats:  stats,
		cfg:    DefaultConfig(),
		rules:  mine.NewRuleSet(aug, 0.2, 1.0),
		txs:    aug,
		allTxs: aug,
		C:      trees,
	}
	for _, tx := range aug {
		e.total += tx.Count
	}
	e.sortByPos()
	return e
}

func elemTree(name string, pos float64) *workTree {
	return &workTree{c: dtd.NewName(name), labels: []string{name}, pos: pos}
}

func tx(count int, items ...string) mine.Transaction { return mine.NewTransaction(items, count) }

func TestPolicy3InsertsElementIntoANDTree(t *testing.T) {
	// Working set: AND(b, c) and element d; every sequence has all three,
	// and d's document position falls between b and c.
	stats := policyStats(map[string]float64{"b": 0, "d": 1, "c": 2}, nil, nil)
	and := &workTree{c: dtd.NewSeq(dtd.NewName("b"), dtd.NewName("c")), labels: []string{"b", "c"}, pos: 0}
	e := policyEngine(stats, []mine.Transaction{tx(10, "b", "c", "d")}, []string{"b", "c", "d"},
		and, elemTree("d", 1))
	if !e.p3() {
		t.Fatal("p3 did not fire")
	}
	if len(e.C) != 1 {
		t.Fatalf("C = %d trees", len(e.C))
	}
	if got := e.C[0].c.String(); got != "(b, d, c)" {
		t.Errorf("p3 result = %s, want (b, d, c) — inserted at its position", got)
	}
}

func TestPolicy3AppendsWhenLast(t *testing.T) {
	stats := policyStats(map[string]float64{"b": 0, "c": 1, "d": 5}, nil, nil)
	and := &workTree{c: dtd.NewSeq(dtd.NewName("b"), dtd.NewName("c")), labels: []string{"b", "c"}, pos: 0}
	e := policyEngine(stats, []mine.Transaction{tx(10, "b", "c", "d")}, []string{"b", "c", "d"},
		and, elemTree("d", 5))
	if !e.p3() {
		t.Fatal("p3 did not fire")
	}
	if got := e.C[0].c.String(); got != "(b, c, d)" {
		t.Errorf("p3 result = %s, want (b, c, d)", got)
	}
}

func TestPolicy3RequiresMutualImplication(t *testing.T) {
	stats := policyStats(map[string]float64{"b": 0, "c": 1, "d": 2}, nil, nil)
	and := &workTree{c: dtd.NewSeq(dtd.NewName("b"), dtd.NewName("c")), labels: []string{"b", "c"}, pos: 0}
	// d appears only in half the sequences containing {b, c}.
	e := policyEngine(stats, []mine.Transaction{tx(5, "b", "c", "d"), tx(5, "b", "c")},
		[]string{"b", "c", "d"}, and, elemTree("d", 2))
	if e.p3() {
		t.Fatal("p3 fired without mutual implication")
	}
}

func TestPolicy8MergesANDTrees(t *testing.T) {
	stats := policyStats(map[string]float64{"a": 0, "b": 1, "c": 2, "d": 3}, nil, nil)
	and1 := &workTree{c: dtd.NewSeq(dtd.NewName("a"), dtd.NewName("c")), labels: []string{"a", "c"}, pos: 0}
	and2 := &workTree{c: dtd.NewSeq(dtd.NewName("b"), dtd.NewName("d")), labels: []string{"b", "d"}, pos: 1}
	e := policyEngine(stats, []mine.Transaction{tx(10, "a", "b", "c", "d")},
		[]string{"a", "b", "c", "d"}, and1, and2)
	if !e.p8() {
		t.Fatal("p8 did not fire")
	}
	if got := e.C[0].c.String(); got != "(a, b, c, d)" {
		t.Errorf("p8 result = %s, want (a, b, c, d) — children interleaved by position", got)
	}
}

func TestPolicy8RequiresMutualImplication(t *testing.T) {
	stats := policyStats(map[string]float64{"a": 0, "b": 1, "c": 2, "d": 3}, nil, nil)
	and1 := &workTree{c: dtd.NewSeq(dtd.NewName("a"), dtd.NewName("c")), labels: []string{"a", "c"}, pos: 0}
	and2 := &workTree{c: dtd.NewSeq(dtd.NewName("b"), dtd.NewName("d")), labels: []string{"b", "d"}, pos: 1}
	e := policyEngine(stats, []mine.Transaction{tx(5, "a", "c", "b", "d"), tx(5, "a", "c")},
		[]string{"a", "b", "c", "d"}, and1, and2)
	if e.p8() {
		t.Fatal("p8 fired without mutual implication")
	}
}

func TestPolicy9RepetitionWraps(t *testing.T) {
	// Repeated and always present: +.
	stats := policyStats(map[string]float64{"x": 0}, map[string]bool{"x": true}, nil)
	e := policyEngine(stats, []mine.Transaction{tx(10, "x")}, []string{"x"}, elemTree("x", 0))
	if !e.p9() {
		t.Fatal("p9 did not fire")
	}
	if got := e.C[0].c.String(); got != "(x)+" {
		t.Errorf("p9 result = %s, want x+", got)
	}
	// Repeated and sometimes absent: *.
	stats = policyStats(map[string]float64{"x": 0, "y": 0}, map[string]bool{"x": true}, nil)
	e = policyEngine(stats, []mine.Transaction{tx(5, "x"), tx(5, "y")}, []string{"x", "y"},
		elemTree("x", 0))
	if !e.p9() {
		t.Fatal("p9 did not fire in optional case")
	}
	if got := e.C[0].c.String(); got != "(x)*" {
		t.Errorf("p9 result = %s, want x*", got)
	}
}

func TestPolicy11ORBindsExclusiveOperatorTrees(t *testing.T) {
	stats := policyStats(map[string]float64{"a": 0, "b": 1}, nil, nil)
	plusA := &workTree{c: dtd.NewPlus(dtd.NewName("a")), labels: []string{"a"}, pos: 0}
	optB := &workTree{c: dtd.NewOpt(dtd.NewName("b")), labels: []string{"b"}, pos: 1}
	e := policyEngine(stats, []mine.Transaction{tx(5, "a"), tx(5, "b")}, []string{"a", "b"},
		plusA, optB)
	if !e.p11() {
		t.Fatal("p11 did not fire")
	}
	if got := e.C[0].c.String(); got != "(a+ | b?)" {
		t.Errorf("p11 result = %s, want (a+ | b?)", got)
	}
}

func TestPolicy11RequiresExclusion(t *testing.T) {
	stats := policyStats(map[string]float64{"a": 0, "b": 1}, nil, nil)
	plusA := &workTree{c: dtd.NewPlus(dtd.NewName("a")), labels: []string{"a"}, pos: 0}
	optB := &workTree{c: dtd.NewOpt(dtd.NewName("b")), labels: []string{"b"}, pos: 1}
	e := policyEngine(stats, []mine.Transaction{tx(10, "a", "b")}, []string{"a", "b"},
		plusA, optB)
	if e.p11() {
		t.Fatal("p11 fired for co-occurring trees")
	}
}

func TestPolicy12MergesORTrees(t *testing.T) {
	stats := policyStats(map[string]float64{"a": 0, "b": 1, "c": 2, "d": 3}, nil, nil)
	or1 := &workTree{c: dtd.NewChoice(dtd.NewName("a"), dtd.NewName("b")), labels: []string{"a", "b"}, pos: 0}
	or2 := &workTree{c: dtd.NewChoice(dtd.NewName("c"), dtd.NewName("d")), labels: []string{"c", "d"}, pos: 2}
	e := policyEngine(stats, []mine.Transaction{tx(3, "a"), tx(3, "b"), tx(3, "c"), tx(3, "d")},
		[]string{"a", "b", "c", "d"}, or1, or2)
	if !e.p12() {
		t.Fatal("p12 did not fire")
	}
	if got := e.C[0].c.String(); got != "(a | b | c | d)" {
		t.Errorf("p12 result = %s, want (a | b | c | d)", got)
	}
}

func TestPolicy12RequiresCrossExclusion(t *testing.T) {
	stats := policyStats(map[string]float64{"a": 0, "b": 1, "c": 2, "d": 3}, nil, nil)
	or1 := &workTree{c: dtd.NewChoice(dtd.NewName("a"), dtd.NewName("b")), labels: []string{"a", "b"}, pos: 0}
	or2 := &workTree{c: dtd.NewChoice(dtd.NewName("c"), dtd.NewName("d")), labels: []string{"c", "d"}, pos: 2}
	// a co-occurs with c: the ORs must not merge.
	e := policyEngine(stats, []mine.Transaction{tx(5, "a", "c"), tx(5, "b"), tx(5, "d")},
		[]string{"a", "b", "c", "d"}, or1, or2)
	if e.p12() {
		t.Fatal("p12 fired despite a co-occurring cross pair")
	}
}

func TestPolicy5FourWayClique(t *testing.T) {
	stats := policyStats(map[string]float64{"w": 0, "x": 1, "y": 2, "z": 3}, nil, nil)
	e := policyEngine(stats,
		[]mine.Transaction{tx(3, "w"), tx(3, "x"), tx(3, "y"), tx(3, "z")},
		[]string{"w", "x", "y", "z"},
		elemTree("w", 0), elemTree("x", 1), elemTree("y", 2), elemTree("z", 3))
	if !e.p5() {
		t.Fatal("p5 did not fire")
	}
	if len(e.C) != 1 {
		t.Fatalf("C = %d trees", len(e.C))
	}
	m := e.C[0].c
	if m.Kind != dtd.Choice || len(m.Children) != 4 {
		t.Errorf("p5 result = %s, want a 4-way OR", m)
	}
}

func TestPolicy2StarBinding(t *testing.T) {
	stats := policyStats(map[string]float64{"b": 0, "c": 1, "d": 2}, nil, nil)
	star := &workTree{c: dtd.NewStar(dtd.NewSeq(dtd.NewName("b"), dtd.NewName("c"))), labels: []string{"b", "c"}, pos: 0}
	e := policyEngine(stats, []mine.Transaction{tx(5, "b", "c", "d"), tx(5, "d")},
		[]string{"b", "c", "d"}, star, elemTree("d", 2))
	if !e.p2() {
		t.Fatal("p2 did not fire")
	}
	if got := e.C[0].c.String(); got != "((b, c)*, d)" {
		t.Errorf("p2 result = %s", got)
	}
}

func TestPolicy6ExtendsOR(t *testing.T) {
	stats := policyStats(map[string]float64{"a": 0, "b": 1, "c": 2}, nil, nil)
	or := &workTree{c: dtd.NewChoice(dtd.NewName("a"), dtd.NewName("b")), labels: []string{"a", "b"}, pos: 0}
	e := policyEngine(stats, []mine.Transaction{tx(3, "a"), tx(3, "b"), tx(3, "c")},
		[]string{"a", "b", "c"}, or, elemTree("c", 2))
	if !e.p6() {
		t.Fatal("p6 did not fire")
	}
	if got := e.C[0].c.String(); got != "(a | b | c)" {
		t.Errorf("p6 result = %s", got)
	}
}

func TestPolicy7ORBindsANDAndElement(t *testing.T) {
	stats := policyStats(map[string]float64{"a": 0, "b": 1, "z": 0.5}, nil, nil)
	and := &workTree{c: dtd.NewSeq(dtd.NewName("a"), dtd.NewName("b")), labels: []string{"a", "b"}, pos: 0}
	e := policyEngine(stats, []mine.Transaction{tx(5, "a", "b"), tx(5, "z")},
		[]string{"a", "b", "z"}, and, elemTree("z", 0.5))
	if !e.p7() {
		t.Fatal("p7 did not fire")
	}
	if got := e.C[0].c.String(); got != "((a, b) | z)" {
		t.Errorf("p7 result = %s", got)
	}
}
