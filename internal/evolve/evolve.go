// Package evolve implements the paper's evolution phase (§4): turning the
// statistics of the extended DTD (package record) into a new set of DTD
// declarations.
//
// The algorithm works element by element. Each declared element e falls in
// one of three windows according to its invalidity ratio I(e) and the
// threshold ψ (0 ≤ ψ ≤ 0.5):
//
//   - old window, I(e) ∈ [0, ψ]: the declaration is kept; where all
//     recorded instances agree, operators are restricted (e.g. * → +);
//   - new window, I(e) ∈ [1-ψ, 1]: the declaration is rebuilt from the
//     recorded sequences using association rules and the heuristic
//     policies (see extract.go);
//   - misc window, otherwise: a declaration is rebuilt from the new
//     documents and OR-ed with the previous one, then simplified with the
//     DTD re-writing rules.
//
// Plus elements (tags that appear in documents but have no declaration)
// referenced by a rebuilt declaration receive brand-new declarations,
// extracted recursively from their nested statistics against an empty DTD
// (paper Example 5, tree (4)).
package evolve

import (
	"fmt"

	"dtdevolve/internal/dtd"
	"dtdevolve/internal/record"
)

// Config holds the evolution parameters.
type Config struct {
	// Psi is the window threshold ψ ∈ [0, 0.5]: old window is [0, ψ], new
	// window is [1-ψ, 1].
	Psi float64
	// MinSupport is the paper's µ: the minimum support for a sequence of
	// element tags to participate in rule extraction.
	MinSupport float64
	// MinConfidence is the confidence bound for rules; the paper uses
	// maximal-confidence rules (1.0).
	MinConfidence float64
	// MinRestrictSamples is the minimum number of recorded instances before
	// an old-window operator restriction is applied; it prevents a handful
	// of documents from tightening a DTD.
	MinRestrictSamples int
	// MaxExtractDepth caps the recursive extraction of plus-element
	// declarations.
	MaxExtractDepth int
	// DisableAbsentAugmentation turns off the paper's absent-element
	// augmentation (Example 4) before rule mining. Only OR structure
	// discovery depends on it; the flag exists for the ablation experiment
	// E9 and should stay false in normal use.
	DisableAbsentAugmentation bool
}

// DefaultConfig returns the parameters used by the evaluation harness.
func DefaultConfig() Config {
	return Config{
		Psi:                0.15,
		MinSupport:         0.2,
		MinConfidence:      1.0,
		MinRestrictSamples: 10,
		MaxExtractDepth:    16,
	}
}

// Action describes what the evolution phase did to one element declaration.
type Action int

const (
	// Unchanged: the declaration was kept as-is (old window, or no data).
	Unchanged Action = iota
	// Restricted: old window, with one or more operators restricted.
	Restricted
	// Rebuilt: new window, declaration rebuilt from recorded structure.
	Rebuilt
	// Merged: misc window, new structure OR-ed with the old declaration.
	Merged
	// Added: a brand-new declaration extracted for a plus element.
	Added
)

// String returns a human-readable action name.
func (a Action) String() string {
	switch a {
	case Unchanged:
		return "unchanged"
	case Restricted:
		return "restricted"
	case Rebuilt:
		return "rebuilt"
	case Merged:
		return "merged"
	case Added:
		return "added"
	default:
		return fmt.Sprintf("Action(%d)", int(a))
	}
}

// ElementChange reports the evolution outcome for one element.
type ElementChange struct {
	Name       string
	Action     Action
	Invalidity float64
	Old        string // old content model ("" for added elements)
	New        string
}

// Report summarizes one evolution run.
type Report struct {
	Changes []ElementChange
}

// Evolve produces a new DTD from the recorder's DTD and statistics. The
// input DTD is not modified. The recorder is left untouched; callers
// typically Reset (or SetDTD) it afterwards.
func Evolve(rec *record.Recorder, cfg Config) (*dtd.DTD, Report) {
	if cfg.MaxExtractDepth <= 0 {
		cfg.MaxExtractDepth = 16
	}
	old := rec.DTD()
	out := old.Clone()
	var report Report

	for _, name := range old.Order {
		model := old.Elements[name]
		stats := rec.Stats(name)
		if stats == nil || stats.TotalInstances() == 0 {
			report.Changes = append(report.Changes, ElementChange{
				Name: name, Action: Unchanged, Old: model.String(), New: model.String(),
			})
			continue
		}
		inv := stats.InvalidityRatio()
		change := ElementChange{Name: name, Invalidity: inv, Old: model.String()}
		switch {
		case inv <= cfg.Psi:
			restricted := Restrict(model, stats, cfg)
			if restricted.Equal(model) {
				change.Action = Unchanged
			} else {
				change.Action = Restricted
				out.Elements[name] = restricted
			}
		case inv >= 1-cfg.Psi:
			rebuilt := ExtractStructure(stats, cfg)
			change.Action = Rebuilt
			out.Elements[name] = rebuilt
			declarePlusElements(out, stats, cfg, 0, &report)
		default:
			rebuilt := ExtractStructure(stats, cfg)
			merged := dtd.Rewrite(dtd.NewChoice(model.Clone(), rebuilt))
			change.Action = Merged
			out.Elements[name] = merged
			declarePlusElements(out, stats, cfg, 0, &report)
		}
		change.New = out.Elements[name].String()
		report.Changes = append(report.Changes, change)
	}
	result := dtd.RewriteDTD(out)
	// RewriteDTD clones; keep the report's New strings consistent.
	for i := range report.Changes {
		if m, ok := result.Elements[report.Changes[i].Name]; ok {
			report.Changes[i].New = m.String()
		}
	}
	return result, report
}

// declarePlusElements walks the recorded labels of stats and, for every
// plus element (nested statistics present) that the evolved DTD does not
// declare yet, extracts a declaration from its nested statistics —
// recursively, since plus elements may contain further plus elements.
func declarePlusElements(out *dtd.DTD, stats *record.ElementStats, cfg Config, depth int, report *Report) {
	if depth >= cfg.MaxExtractDepth {
		return
	}
	for _, label := range stats.LabelSet() {
		ls := stats.Labels[label]
		if ls.Child == nil {
			continue
		}
		if _, declared := out.Elements[label]; declared {
			continue
		}
		model := ExtractStructure(ls.Child, cfg)
		out.Declare(label, model)
		report.Changes = append(report.Changes, ElementChange{
			Name:   label,
			Action: Added,
			New:    model.String(),
		})
		declarePlusElements(out, ls.Child, cfg, depth+1, report)
	}
}

// Restrict applies the paper's old-window "restriction of operators": when
// every recorded instance agrees, an operator is narrowed to fit the
// population (e.g. b* becomes b+ when every instance contains at least one
// b). Restrictions require at least MinRestrictSamples recorded instances.
// The input model is not modified.
func Restrict(model *dtd.Content, stats *record.ElementStats, cfg Config) *dtd.Content {
	if stats.TotalInstances() < cfg.MinRestrictSamples {
		return model.Clone()
	}
	return restrict(model.Clone(), stats)
}

func restrict(c *dtd.Content, stats *record.ElementStats) *dtd.Content {
	for i, ch := range c.Children {
		c.Children[i] = restrict(ch, stats)
	}
	switch c.Kind {
	case dtd.Opt:
		// x? → x when x was always present.
		if tag, ok := leafName(c.Children[0]); ok && stats.AlwaysPresent(tag) {
			return c.Children[0]
		}
	case dtd.Plus:
		// x+ → x when x was never repeated.
		if tag, ok := leafName(c.Children[0]); ok && stats.EverPresent(tag) && !stats.EverRepeated(tag) {
			return c.Children[0]
		}
	case dtd.Star:
		tag, ok := leafName(c.Children[0])
		if !ok {
			return c
		}
		always := stats.AlwaysPresent(tag)
		repeated := stats.EverRepeated(tag)
		switch {
		case always && repeated:
			return dtd.NewPlus(c.Children[0])
		case always && !repeated:
			return c.Children[0]
		case !always && !repeated && stats.EverPresent(tag):
			return dtd.NewOpt(c.Children[0])
		}
	case dtd.Choice:
		// Prune alternatives whose labels never occurred; if exactly one
		// alternative was ever used, the OR restricts to it.
		var used []*dtd.Content
		for _, alt := range c.Children {
			if alt.Kind == dtd.PCDATA || anyLabelPresent(alt, stats) {
				used = append(used, alt)
			}
		}
		if len(used) >= 1 && len(used) < len(c.Children) {
			if len(used) == 1 {
				return used[0]
			}
			return dtd.NewChoice(used...)
		}
	}
	return c
}

// leafName returns the element name when c is a bare Name node.
func leafName(c *dtd.Content) (string, bool) {
	if c.Kind == dtd.Name {
		return c.Name, true
	}
	return "", false
}

func anyLabelPresent(c *dtd.Content, stats *record.ElementStats) bool {
	for _, l := range c.Labels() {
		if stats.EverPresent(l) {
			return true
		}
	}
	return false
}
