package evolve

import (
	"testing"

	"dtdevolve/internal/dtd"
	"dtdevolve/internal/record"
	"dtdevolve/internal/validate"
)

// statsFor records the given documents (as children of a root element whose
// declaration never matches, forcing every instance to be non-valid) and
// returns the root element's statistics, ready for ExtractStructure.
func statsFor(t *testing.T, docs map[string]int) *record.ElementStats {
	t.Helper()
	// Declare r with a content model that no document satisfies so that
	// every instance records its sequence.
	d := dtd.MustParse(`<!ELEMENT r (neverpresent)> <!ELEMENT neverpresent EMPTY>`)
	rec := recordDocs(t, d, docs)
	s := rec.Stats("r")
	if s == nil {
		t.Fatal("no stats recorded")
	}
	return s
}

func extract(t *testing.T, docs map[string]int) string {
	t.Helper()
	return ExtractStructure(statsFor(t, docs), DefaultConfig()).String()
}

func TestExtractEmpty(t *testing.T) {
	if got := extract(t, map[string]int{`<r/>`: 5}); got != "EMPTY" {
		t.Errorf("extract = %s, want EMPTY", got)
	}
}

func TestExtractPCDATA(t *testing.T) {
	if got := extract(t, map[string]int{`<r>text only</r>`: 5}); got != "(#PCDATA)" {
		t.Errorf("extract = %s, want (#PCDATA)", got)
	}
}

func TestExtractMixed(t *testing.T) {
	got := extract(t, map[string]int{`<r>text <em/> more</r>`: 5})
	if got != "(#PCDATA | em)*" {
		t.Errorf("extract = %s, want (#PCDATA | em)*", got)
	}
}

func TestExtractSingleRequired(t *testing.T) {
	if got := extract(t, map[string]int{`<r><x/></r>`: 5}); got != "(x)" {
		t.Errorf("extract = %s, want (x)", got)
	}
}

func TestExtractSingleOptional(t *testing.T) {
	got := extract(t, map[string]int{`<r><x/></r>`: 5, `<r/>`: 5})
	if got != "(x)?" {
		t.Errorf("extract = %s, want (x)?", got)
	}
}

func TestExtractSingleRepeated(t *testing.T) {
	got := extract(t, map[string]int{`<r><x/><x/><x/></r>`: 5})
	if got != "(x)+" {
		t.Errorf("extract = %s, want (x)+", got)
	}
}

func TestExtractSingleOptionalRepeated(t *testing.T) {
	got := extract(t, map[string]int{`<r><x/><x/></r>`: 5, `<r/>`: 5})
	if got != "(x)*" {
		t.Errorf("extract = %s, want (x)*", got)
	}
}

func TestExtractSequenceInDocumentOrder(t *testing.T) {
	got := extract(t, map[string]int{`<r><first/><second/><third/></r>`: 8})
	if got != "(first, second, third)" {
		t.Errorf("extract = %s, want (first, second, third)", got)
	}
}

func TestExtractExclusivePair(t *testing.T) {
	got := extract(t, map[string]int{`<r><x/></r>`: 5, `<r><y/></r>`: 5})
	if got != "(x | y)" && got != "(y | x)" {
		t.Errorf("extract = %s, want an OR of x and y", got)
	}
}

func TestExtractExclusiveTriple(t *testing.T) {
	got := extract(t, map[string]int{`<r><x/></r>`: 4, `<r><y/></r>`: 4, `<r><z/></r>`: 4})
	m, err := dtd.ParseContentModel(got)
	if err != nil {
		t.Fatalf("parse %q: %v", got, err)
	}
	if m.Kind != dtd.Choice || len(m.Children) != 3 {
		t.Errorf("extract = %s, want a 3-way OR", got)
	}
}

func TestExtractGroupRepetition(t *testing.T) {
	// {b, c} always together, repeated the same number of times: Policy 1
	// sub-case 2 yields (b, c)*.
	got := extract(t, map[string]int{`<r><b/><c/><b/><c/></r>`: 6})
	if got != "((b, c))*" && got != "(b, c)*" {
		t.Errorf("extract = %s, want (b, c)*", got)
	}
}

func TestExtractPolicy2StarThenElement(t *testing.T) {
	// F1: repeated (b, c) group plus d; F2: d alone. Policy 1 builds
	// (b, c)*; Policy 2 then binds d because {b, c} => d has confidence 1.
	got := extract(t, map[string]int{
		`<r><b/><c/><b/><c/><d/></r>`: 5,
		`<r><d/></r>`:                 5,
	})
	if got != "((b, c)*, d)" {
		t.Errorf("extract = %s, want ((b, c)*, d)", got)
	}
}

func TestExtractPolicy1SubcaseThree(t *testing.T) {
	// b, c repeat together as a group; d occurs exactly once; all mutually
	// present: Policy 1 sub-case 3 yields ((b, c)+, d).
	got := extract(t, map[string]int{`<r><b/><c/><b/><c/><d/></r>`: 6})
	if got != "((b, c)+, d)" {
		t.Errorf("extract = %s, want ((b, c)+, d)", got)
	}
}

func TestExtractOrBetweenGroupAndElement(t *testing.T) {
	// Either the pair (b, c) or the single z: the AND tree from Policy 1
	// and element z are mutually exclusive (Policy 7).
	got := extract(t, map[string]int{
		`<r><b/><c/></r>`: 5,
		`<r><z/></r>`:     5,
	})
	if got != "((b, c) | z)" && got != "(z | (b, c))" {
		t.Errorf("extract = %s, want ((b, c) | z)", got)
	}
}

func TestExtractSupportFiltersRareSequences(t *testing.T) {
	// The one-off {weird} sequence is below µ = 0.2 and must not surface
	// in the extracted structure.
	got := extract(t, map[string]int{
		`<r><x/></r>`:     19,
		`<r><weird/></r>`: 1,
	})
	if got != "(x)" {
		t.Errorf("extract = %s, want (x) — rare sequence must be discarded", got)
	}
}

func TestExtractFallbackWhenNothingFrequent(t *testing.T) {
	// Every sequence distinct: at µ = 0.2 and six distinct shapes nothing
	// reaches the threshold; the engine falls back to the full set instead
	// of emitting EMPTY.
	docs := map[string]int{
		`<r><a1/></r>`: 1, `<r><a2/></r>`: 1, `<r><a3/></r>`: 1,
		`<r><a4/></r>`: 1, `<r><a5/></r>`: 1, `<r><a6/></r>`: 1,
	}
	got := extract(t, docs)
	if got == "EMPTY" {
		t.Errorf("extract = EMPTY, want a structure from the fallback")
	}
}

func TestExtractOptionalTail(t *testing.T) {
	// x always present, tail sometimes: (x, tail?).
	got := extract(t, map[string]int{
		`<r><x/><tail/></r>`: 5,
		`<r><x/></r>`:        5,
	})
	if got != "(x, tail?)" {
		t.Errorf("extract = %s, want (x, tail?)", got)
	}
}

// TestExtractAcceptsItsOwnCorpus is the key soundness property: the
// structure extracted from a corpus must accept every frequent shape of
// that corpus.
func TestExtractAcceptsItsOwnCorpus(t *testing.T) {
	corpora := []map[string]int{
		{`<r><a/><b/></r>`: 6, `<r><a/><b/><c/></r>`: 6},
		{`<r><a/><a/></r>`: 5, `<r><b/></r>`: 5},
		{`<r><p/><q/><p/><q/></r>`: 4, `<r><p/><q/></r>`: 4},
		{`<r><x/><y/><z/></r>`: 3, `<r><x/><z/></r>`: 3, `<r><x/></r>`: 3},
		{`<r><m/></r>`: 9, `<r><n/></r>`: 1}, // n is rare: may be rejected
	}
	for i, docs := range corpora {
		stats := statsFor(t, docs)
		model := ExtractStructure(stats, DefaultConfig())
		d := dtd.NewDTD("r")
		d.Declare("r", model)
		v := validate.New(d)
		table := stats.Transactions()
		total := 0
		for _, tx := range table {
			total += tx.Count
		}
		for src, n := range docs {
			doc := parseDoc(t, src)
			frequent := float64(n)/float64(total) >= DefaultConfig().MinSupport
			if !frequent {
				continue
			}
			if !v.LocalValid(doc.Root, model) {
				t.Errorf("corpus %d: extracted %s rejects frequent doc %s", i, model, src)
			}
		}
	}
}
