package evolve

import (
	"sort"

	"dtdevolve/internal/dtd"
	"dtdevolve/internal/mine"
	"dtdevolve/internal/record"
)

// ExtractStructure determines a new content model for an element from its
// recorded statistics: the paper's §4.2 algorithm. The steps are:
//
//  1. augment the recorded sequences with absent elements;
//  2. keep the most frequent sequences (support > µ; the others are not
//     representative and are discarded);
//  3. extract maximal-confidence association rules from them;
//  4. apply the 13 heuristic policies (plus the 3 basic-case policies) to
//     the working set C of trees until C is a singleton.
//
// Elements whose instances carry character data yield (#PCDATA) or a mixed
// declaration — DTDs cannot constrain order inside mixed content, so any
// element structure collapses to (#PCDATA | l1 | ... | ln)* in that case.
//
// The appendix defining the policies is truncated in the available paper
// text; DESIGN.md §3.2 documents the reconstruction implemented here.
func ExtractStructure(stats *record.ElementStats, cfg Config) *dtd.Content {
	labels := stats.LabelSet()
	if len(labels) == 0 {
		if stats.TextInstances > 0 {
			return dtd.NewPCDATA()
		}
		return dtd.NewEmpty()
	}
	if stats.TextInstances > 0 {
		kids := []*dtd.Content{dtd.NewPCDATA()}
		for _, l := range labels {
			kids = append(kids, dtd.NewName(l))
		}
		return dtd.NewStar(dtd.NewChoice(kids...))
	}
	eng := newEngine(stats, cfg)
	return dtd.Rewrite(eng.run())
}

// workTree is one member of the paper's working set C: a content-model tree
// plus the element labels it covers and its ordering position.
type workTree struct {
	c      *dtd.Content
	labels []string
	pos    float64
}

func (w *workTree) isElement() bool { return w.c.Kind == dtd.Name }
func (w *workTree) kind() dtd.Kind  { return w.c.Kind }

type engine struct {
	stats *record.ElementStats
	cfg   Config
	rules *mine.RuleSet
	// txs are the kept (most frequent), absent-augmented transactions used
	// for rule queries; allTxs is the unfiltered set used for presence and
	// optionality evidence (an element spread across many rare shapes is
	// still present).
	txs    []mine.Transaction
	allTxs []mine.Transaction
	total  int
	C      []*workTree
}

func newEngine(stats *record.ElementStats, cfg Config) *engine {
	universe := stats.LabelSet()
	aug := stats.Transactions()
	if !cfg.DisableAbsentAugmentation {
		aug = mine.AugmentAll(aug, universe)
	}

	// Step 2: most frequent sequences. With absent-element augmentation
	// every transaction carries the full item universe, so containment
	// support equals exact-match frequency.
	total := 0
	for _, tx := range aug {
		total += tx.Count
	}
	var kept []mine.Transaction
	for _, tx := range aug {
		if total > 0 && float64(tx.Count)/float64(total)+1e-12 >= cfg.MinSupport {
			kept = append(kept, tx)
		}
	}
	if len(kept) == 0 {
		// Nothing is frequent at this µ: fall back to the full set rather
		// than producing an empty declaration.
		kept = aug
	}
	e := &engine{
		stats:  stats,
		cfg:    cfg,
		rules:  mine.NewRuleSet(kept, cfg.MinSupport, cfg.MinConfidence),
		txs:    kept,
		allTxs: aug,
	}
	for _, tx := range aug {
		e.total += tx.Count
	}
	// The working set starts with one element tree per label whose
	// *presence* is frequent, ordered by mean first position. Presence is
	// measured over the full sequence set: an element spread across many
	// individually-rare shapes (optional-combination diversity) must not
	// vanish just because no single sequence passes µ — only labels that
	// are rare overall are noise.
	presence := make(map[string]int)
	for _, tx := range aug {
		for _, it := range tx.Items {
			if !mine.IsAbsent(it) {
				presence[it] += tx.Count
			}
		}
	}
	for _, l := range universe {
		if total > 0 && float64(presence[l])/float64(total)+1e-12 >= cfg.MinSupport {
			e.C = append(e.C, &workTree{
				c:      dtd.NewName(l),
				labels: []string{l},
				pos:    stats.MeanFirstPosition(l),
			})
		}
	}
	if len(e.C) == 0 {
		// Everything is rare: fall back to the full label set.
		for _, l := range universe {
			e.C = append(e.C, &workTree{
				c:      dtd.NewName(l),
				labels: []string{l},
				pos:    stats.MeanFirstPosition(l),
			})
		}
	}
	e.sortByPos()
	return e
}

func (e *engine) sortByPos() {
	sort.SliceStable(e.C, func(i, j int) bool { return e.C[i].pos < e.C[j].pos })
}

// run applies the policies in order, each exhaustively, until the working
// set is a singleton (Policy 13 guarantees termination).
func (e *engine) run() *dtd.Content {
	if len(e.C) == 0 {
		return dtd.NewEmpty()
	}
	if len(e.C) == 1 {
		// Basic-case policies: C is already a singleton.
		return e.basicWrap(e.C[0]).c
	}
	policies := []func() bool{
		e.p1, e.p2, e.p3, e.p4, e.p5, e.p6, e.p7, e.p8, e.p9, e.p10, e.p11, e.p12,
	}
	for _, p := range policies {
		for p() {
		}
		if len(e.C) == 1 {
			return e.C[0].c
		}
	}
	e.p13()
	return e.C[0].c
}

// --- predicates over the kept transactions and recorded statistics ---

// presentInAll reports whether the label is effectively mandatory: its
// absences stay below the noise threshold µ. Judging over the full sequence
// set (not just the µ-kept shapes) matters when absence is spread across
// many individually-rare shapes; requiring the absent mass itself to reach
// µ keeps a single outlier from loosening the declaration.
func (e *engine) presentInAll(label string) bool {
	return !e.setOptional([]string{label})
}

// setOptional reports whether a significant fraction (≥ µ) of the recorded
// sequences contains none of the labels: the subtree covering them may
// legitimately be absent.
func (e *engine) setOptional(labels []string) bool {
	if e.total == 0 {
		return false
	}
	absent := 0
	for _, tx := range e.allTxs {
		found := false
		for _, l := range labels {
			if containsItem(tx.Items, l) {
				found = true
				break
			}
		}
		if !found {
			absent += tx.Count
		}
	}
	return float64(absent)/float64(e.total)+1e-12 >= e.cfg.MinSupport
}

func containsItem(sorted []string, item string) bool {
	i := sort.SearchStrings(sorted, item)
	return i < len(sorted) && sorted[i] == item
}

func (e *engine) everRepeated(label string) bool { return e.stats.EverRepeated(label) }

// exclusive reports pairwise exclusion of two label sets: every cross pair
// never co-occurs (the clique-composable form of the paper's principle P2;
// the exhaustiveness direction is recovered by the optionality wrap).
func (e *engine) exclusive(a, b []string) bool {
	for _, x := range a {
		for _, y := range b {
			if !e.rules.NeverCoOccur(x, y) {
				return false
			}
		}
	}
	return len(a) > 0 && len(b) > 0
}

// presenceCount returns the weighted number of recorded sequences
// containing the label, used to order OR alternatives by dominance.
func (e *engine) presenceCount(label string) int {
	n := 0
	for _, tx := range e.allTxs {
		if containsItem(tx.Items, label) {
			n += tx.Count
		}
	}
	return n
}

// byDominance orders trees by descending presence of their labels (the
// dominant alternative first), breaking ties by document position.
func (e *engine) byDominance(parts []*workTree) []*workTree {
	count := func(t *workTree) int {
		n := 0
		for _, l := range t.labels {
			n += e.presenceCount(l)
		}
		return n
	}
	out := append([]*workTree(nil), parts...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0; j-- {
			ci, cj := count(out[j]), count(out[j-1])
			if ci > cj || (ci == cj && out[j].pos < out[j-1].pos) {
				out[j], out[j-1] = out[j-1], out[j]
			} else {
				break
			}
		}
	}
	return out
}

// mutualPresence reports pairwise mutual implication between two label
// sets: every element of one implies every element of the other and vice
// versa (the paper's principle P1 across trees).
func (e *engine) mutualPresence(a, b []string) bool {
	return e.rules.Holds(a, b) && e.rules.Holds(b, a)
}

// --- working-set editing helpers ---

// replace removes the trees at the given indices and inserts nw, keeping C
// ordered by position.
func (e *engine) replace(indices []int, nw *workTree) {
	remove := make(map[int]bool, len(indices))
	for _, i := range indices {
		remove[i] = true
	}
	var next []*workTree
	for i, t := range e.C {
		if !remove[i] {
			next = append(next, t)
		}
	}
	e.C = append(next, nw)
	e.sortByPos()
}

// merged builds the workTree covering the union of the given trees.
func (e *engine) merged(c *dtd.Content, parts ...*workTree) *workTree {
	labelSet := make(map[string]bool)
	pos := 1e18
	for _, p := range parts {
		for _, l := range p.labels {
			labelSet[l] = true
		}
		if p.pos < pos {
			pos = p.pos
		}
	}
	labels := make([]string, 0, len(labelSet))
	for l := range labelSet {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	return &workTree{c: c, labels: labels, pos: pos}
}

// byPos returns copies of the trees sorted by position.
func byPos(parts []*workTree) []*workTree {
	out := append([]*workTree(nil), parts...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].pos < out[j].pos })
	return out
}

func contents(parts []*workTree) []*dtd.Content {
	out := make([]*dtd.Content, len(parts))
	for i, p := range parts {
		out[i] = p.c
	}
	return out
}

// wrapRepetition wraps an element tree entering an OR or AND group with +
// when it was observed repeated.
func (e *engine) wrapRepetition(t *workTree) *dtd.Content {
	if t.isElement() && e.everRepeated(t.labels[0]) {
		return dtd.NewPlus(t.c)
	}
	return t.c
}

// basicWrap implements the three basic-case policies: a singleton tree is
// wrapped in ?, + or * according to its optionality and repeatability.
func (e *engine) basicWrap(t *workTree) *workTree {
	optional := e.setOptional(t.labels) && !t.c.Nullable()
	repeatable := t.isElement() && e.everRepeated(t.labels[0])
	var c *dtd.Content
	switch {
	case optional && repeatable:
		c = dtd.NewStar(t.c)
	case repeatable:
		c = dtd.NewPlus(t.c)
	case optional:
		c = dtd.NewOpt(t.c)
	default:
		return t
	}
	return &workTree{c: c, labels: t.labels, pos: t.pos}
}

// --- the thirteen policies (DESIGN.md §3.2) ---

// p1 — Extraction of an AND-binding (paper Appendix, Policy 1). A maximal
// set of element trees whose members mutually imply each other is bound by
// AND; repetition counts and recorded groups select among the three
// sub-cases (plain AND, * around the AND, or a mix of +-wrapped groups).
func (e *engine) p1() bool {
	elems := e.elementTrees()
	if len(elems) < 2 {
		return false
	}
	// Mutual implication at confidence 1 is transitive: compute classes
	// with a union-find over the pairwise relation.
	parent := make(map[string]string)
	var find func(string) string
	find = func(x string) string {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	for _, i := range elems {
		parent[e.C[i].labels[0]] = e.C[i].labels[0]
	}
	for a := 0; a < len(elems); a++ {
		for b := a + 1; b < len(elems); b++ {
			x, y := e.C[elems[a]].labels[0], e.C[elems[b]].labels[0]
			if e.rules.MutualPresence([]string{x, y}) {
				parent[find(x)] = find(y)
			}
		}
	}
	classes := make(map[string][]int)
	for _, i := range elems {
		l := e.C[i].labels[0]
		classes[find(l)] = append(classes[find(l)], i)
	}
	for _, indices := range classes {
		if len(indices) < 2 {
			continue
		}
		var class []string
		var parts []*workTree
		for _, i := range indices {
			class = append(class, e.C[i].labels[0])
			parts = append(parts, e.C[i])
		}
		sort.Strings(class)
		if !e.rules.MutualPresence(class) {
			continue
		}
		nw := e.merged(e.andBinding(class, byPos(parts)), parts...)
		e.replace(indices, nw)
		return true
	}
	return false
}

// andBinding builds the Policy-1 result tree for a mutually-implied class.
func (e *engine) andBinding(class []string, parts []*workTree) *dtd.Content {
	anyRepeated := false
	for _, l := range class {
		if e.everRepeated(l) {
			anyRepeated = true
			break
		}
	}
	if !anyRepeated {
		// Sub-case 1: every member occurs exactly once.
		return dtd.NewSeq(contents(parts)...)
	}
	if g, ok := e.stats.Groups[mine.Key(class)]; ok && e.groupReliable(g) && e.allRepeated(class) {
		// Sub-case 2: the whole class repeats together as a group.
		return dtd.NewStar(dtd.NewSeq(contents(parts)...))
	}
	// Sub-case 3: disjoint recorded groups inside the class become
	// +-wrapped AND groups; leftovers are +-wrapped when repeated.
	groups := e.disjointGroups(class)
	inGroup := make(map[string]bool)
	for _, g := range groups {
		for _, l := range g {
			inGroup[l] = true
		}
	}
	type piece struct {
		c   *dtd.Content
		pos float64
	}
	var pieces []piece
	for _, g := range groups {
		var members []*dtd.Content
		pos := 1e18
		for _, p := range byPos(parts) {
			if containsItem(g, p.labels[0]) {
				members = append(members, p.c)
				if p.pos < pos {
					pos = p.pos
				}
			}
		}
		pieces = append(pieces, piece{c: dtd.NewPlus(dtd.NewSeq(members...)), pos: pos})
	}
	for _, p := range parts {
		l := p.labels[0]
		if inGroup[l] {
			continue
		}
		c := p.c
		if e.everRepeated(l) {
			c = dtd.NewPlus(c)
		}
		pieces = append(pieces, piece{c: c, pos: p.pos})
	}
	sort.SliceStable(pieces, func(i, j int) bool { return pieces[i].pos < pieces[j].pos })
	kids := make([]*dtd.Content, len(pieces))
	for i, p := range pieces {
		kids[i] = p.c
	}
	return dtd.NewSeq(kids...)
}

func (e *engine) allRepeated(class []string) bool {
	for _, l := range class {
		if !e.everRepeated(l) {
			return false
		}
	}
	return true
}

// groupReliable reports whether a recorded repetition group reflects the
// dominant behaviour of its members: the group must cover at least half of
// the instances in which its most-repeated member repeats. Without the
// floor, a group seen in a couple of instances would force the (x, y)*
// sub-case on a population whose dominant pattern is x+ y+.
func (e *engine) groupReliable(g *record.GroupStats) bool {
	maxRep := 0
	for _, l := range g.Tags {
		if rc := e.stats.RepeatCount[l]; rc > maxRep {
			maxRep = rc
		}
	}
	return maxRep > 0 && g.Count*2 >= maxRep
}

// disjointGroups selects recorded groups fully inside the class, greedily
// by descending counter, skipping overlaps.
func (e *engine) disjointGroups(class []string) [][]string {
	var candidates []*record.GroupStats
	for _, g := range e.stats.Groups {
		if !e.groupReliable(g) {
			continue
		}
		inside := true
		for _, l := range g.Tags {
			if !containsItem(class, l) {
				inside = false
				break
			}
		}
		if inside {
			candidates = append(candidates, g)
		}
	}
	sort.Slice(candidates, func(i, j int) bool {
		if candidates[i].Count != candidates[j].Count {
			return candidates[i].Count > candidates[j].Count
		}
		return mine.Key(candidates[i].Tags) < mine.Key(candidates[j].Tags)
	})
	used := make(map[string]bool)
	var out [][]string
	for _, g := range candidates {
		overlap := false
		for _, l := range g.Tags {
			if used[l] {
				overlap = true
				break
			}
		}
		if overlap {
			continue
		}
		for _, l := range g.Tags {
			used[l] = true
		}
		out = append(out, g.Tags)
	}
	return out
}

func (e *engine) elementTrees() []int {
	var out []int
	for i, t := range e.C {
		if t.isElement() {
			out = append(out, i)
		}
	}
	return out
}

func (e *engine) treesOfKind(k dtd.Kind) []int {
	var out []int
	for i, t := range e.C {
		if t.kind() == k {
			out = append(out, i)
		}
	}
	return out
}

// p2 — AND-binding between an element tree and a *-labeled tree (paper
// Appendix, Policy 2): when the labels of the *-tree imply the element, the
// two are bound in a sequence.
func (e *engine) p2() bool {
	for _, si := range e.treesOfKind(dtd.Star) {
		for _, xi := range e.elementTrees() {
			star, x := e.C[si], e.C[xi]
			if !e.rules.ImpliesPresence(star.labels, x.labels[0]) {
				continue
			}
			parts := byPos([]*workTree{star, x})
			nw := e.merged(dtd.NewSeq(contents(parts)...), star, x)
			e.replace([]int{si, xi}, nw)
			return true
		}
	}
	return false
}

// p3 — AND-binding between an element tree and an AND-labeled tree (paper
// Appendix, Policy 3; reconstructed): when the element and the AND tree's
// labels mutually imply each other, the element joins the sequence at its
// document-order position.
func (e *engine) p3() bool {
	for _, ai := range e.treesOfKind(dtd.Seq) {
		for _, xi := range e.elementTrees() {
			and, x := e.C[ai], e.C[xi]
			if !e.mutualPresence(x.labels, and.labels) {
				continue
			}
			kids := e.insertByPos(and.c.Children, e.wrapRepetition(x), x.pos)
			nw := e.merged(dtd.NewSeq(kids...), and, x)
			e.replace([]int{ai, xi}, nw)
			return true
		}
	}
	return false
}

// insertByPos inserts c among kids according to its position, comparing
// against the mean first position of each sibling's first label.
func (e *engine) insertByPos(kids []*dtd.Content, c *dtd.Content, pos float64) []*dtd.Content {
	out := make([]*dtd.Content, 0, len(kids)+1)
	inserted := false
	for _, k := range kids {
		if !inserted && pos < e.contentPos(k) {
			out = append(out, c)
			inserted = true
		}
		out = append(out, k)
	}
	if !inserted {
		out = append(out, c)
	}
	return out
}

func (e *engine) contentPos(c *dtd.Content) float64 {
	pos := 1e18
	for _, l := range c.Labels() {
		if p := e.stats.MeanFirstPosition(l); p < pos {
			pos = p
		}
	}
	return pos
}

// p4 — OR-binding between two element trees (exercised as "policy 4" in
// paper Example 5): mutually exclusive elements become alternatives.
func (e *engine) p4() bool {
	elems := e.elementTrees()
	for a := 0; a < len(elems); a++ {
		for b := a + 1; b < len(elems); b++ {
			x, y := e.C[elems[a]], e.C[elems[b]]
			if !e.rules.NeverCoOccur(x.labels[0], y.labels[0]) {
				continue
			}
			parts := e.byDominance([]*workTree{x, y})
			kids := []*dtd.Content{e.wrapRepetition(parts[0]), e.wrapRepetition(parts[1])}
			nw := e.merged(dtd.NewChoice(kids...), x, y)
			e.replace([]int{elems[a], elems[b]}, nw)
			return true
		}
	}
	return false
}

// p5 — OR-binding among a maximal set of three or more pairwise exclusive
// element trees.
func (e *engine) p5() bool {
	elems := e.elementTrees()
	for a := 0; a < len(elems); a++ {
		clique := []int{elems[a]}
		for b := a + 1; b < len(elems); b++ {
			ok := true
			for _, ci := range clique {
				if !e.rules.NeverCoOccur(e.C[ci].labels[0], e.C[elems[b]].labels[0]) {
					ok = false
					break
				}
			}
			if ok {
				clique = append(clique, elems[b])
			}
		}
		if len(clique) < 3 {
			continue
		}
		var parts []*workTree
		for _, i := range clique {
			parts = append(parts, e.C[i])
		}
		ordered := e.byDominance(parts)
		kids := make([]*dtd.Content, len(ordered))
		for i, p := range ordered {
			kids[i] = e.wrapRepetition(p)
		}
		nw := e.merged(dtd.NewChoice(kids...), parts...)
		e.replace(clique, nw)
		return true
	}
	return false
}

// p6 — OR-binding between an element tree and an OR-labeled tree: an
// element exclusive with every member extends the alternative.
func (e *engine) p6() bool {
	for _, oi := range e.treesOfKind(dtd.Choice) {
		for _, xi := range e.elementTrees() {
			or, x := e.C[oi], e.C[xi]
			if !e.exclusive(x.labels, or.labels) {
				continue
			}
			kids := append(append([]*dtd.Content(nil), or.c.Children...), e.wrapRepetition(x))
			nw := e.merged(dtd.NewChoice(kids...), or, x)
			e.replace([]int{oi, xi}, nw)
			return true
		}
	}
	return false
}

// p7 — OR-binding between an element tree and an AND-labeled tree: an
// element exclusive with the whole group is an alternative to it.
func (e *engine) p7() bool {
	for _, ai := range e.treesOfKind(dtd.Seq) {
		for _, xi := range e.elementTrees() {
			and, x := e.C[ai], e.C[xi]
			if !e.exclusive(x.labels, and.labels) {
				continue
			}
			nw := e.merged(dtd.NewChoice(and.c, e.wrapRepetition(x)), and, x)
			e.replace([]int{ai, xi}, nw)
			return true
		}
	}
	return false
}

// p8 — AND-binding between two AND-labeled trees whose label sets mutually
// imply each other: the sequences merge, ordered by document position.
func (e *engine) p8() bool {
	ands := e.treesOfKind(dtd.Seq)
	for a := 0; a < len(ands); a++ {
		for b := a + 1; b < len(ands); b++ {
			ta, tb := e.C[ands[a]], e.C[ands[b]]
			if !e.mutualPresence(ta.labels, tb.labels) {
				continue
			}
			kids := append(append([]*dtd.Content(nil), ta.c.Children...), tb.c.Children...)
			sort.SliceStable(kids, func(i, j int) bool {
				return e.contentPos(kids[i]) < e.contentPos(kids[j])
			})
			nw := e.merged(dtd.NewSeq(kids...), ta, tb)
			e.replace([]int{ands[a], ands[b]}, nw)
			return true
		}
	}
	return false
}

// p9 — repetition of an element tree: an element observed repeated becomes
// +, or * when it is also optional (element-only input, per Figure 4).
//
// Refinement (DESIGN.md §3.2): repeatable elements whose occurrences
// *interleave* in the documents (recorded pairwise evidence) are bound
// together as (x | y)* first — separate x*, y* wraps would force all x's
// before all y's, rejecting the very documents that were recorded.
func (e *engine) p9() bool {
	if e.p9Interleaved() {
		return true
	}
	for _, xi := range e.elementTrees() {
		x := e.C[xi]
		if !e.everRepeated(x.labels[0]) {
			continue
		}
		var c *dtd.Content
		if e.setOptional(x.labels) {
			c = dtd.NewStar(x.c)
		} else {
			c = dtd.NewPlus(x.c)
		}
		e.replace([]int{xi}, &workTree{c: c, labels: x.labels, pos: x.pos})
		return true
	}
	return false
}

// p9Interleaved clusters repeatable element trees that mostly interleave
// and binds each cluster as a starred choice.
func (e *engine) p9Interleaved() bool {
	elems := e.elementTrees()
	var repeatable []int
	for _, i := range elems {
		if e.everRepeated(e.C[i].labels[0]) {
			repeatable = append(repeatable, i)
		}
	}
	if len(repeatable) < 2 {
		return false
	}
	for a := 0; a < len(repeatable); a++ {
		cluster := []int{repeatable[a]}
		for b := a + 1; b < len(repeatable); b++ {
			ok := true
			for _, ci := range cluster {
				if !e.stats.Interleaved(e.C[ci].labels[0], e.C[repeatable[b]].labels[0]) {
					ok = false
					break
				}
			}
			if ok {
				cluster = append(cluster, repeatable[b])
			}
		}
		if len(cluster) < 2 {
			continue
		}
		var parts []*workTree
		for _, i := range cluster {
			parts = append(parts, e.C[i])
		}
		ordered := e.byDominance(parts)
		nw := e.merged(dtd.NewStar(dtd.NewChoice(contents(ordered)...)), parts...)
		e.replace(cluster, nw)
		return true
	}
	return false
}

// p10 — optionality of an element tree: an element absent from some
// frequent sequence (and not consumed by an OR policy) becomes optional.
func (e *engine) p10() bool {
	for _, xi := range e.elementTrees() {
		x := e.C[xi]
		if e.presentInAll(x.labels[0]) {
			continue
		}
		e.replace([]int{xi}, &workTree{c: dtd.NewOpt(x.c), labels: x.labels, pos: x.pos})
		return true
	}
	return false
}

// p11 — OR-binding between two operator trees with mutually exclusive
// label sets (operator-only input, per Figure 4).
func (e *engine) p11() bool {
	ops := e.operatorTrees()
	for a := 0; a < len(ops); a++ {
		for b := a + 1; b < len(ops); b++ {
			ta, tb := e.C[ops[a]], e.C[ops[b]]
			if !e.exclusive(ta.labels, tb.labels) {
				continue
			}
			parts := byPos([]*workTree{ta, tb})
			nw := e.merged(dtd.NewChoice(contents(parts)...), ta, tb)
			e.replace([]int{ops[a], ops[b]}, nw)
			return true
		}
	}
	return false
}

// p12 — merge of two OR-labeled trees when every cross pair of labels is
// exclusive: the alternatives pool into one OR.
func (e *engine) p12() bool {
	ors := e.treesOfKind(dtd.Choice)
	for a := 0; a < len(ors); a++ {
		for b := a + 1; b < len(ors); b++ {
			ta, tb := e.C[ors[a]], e.C[ors[b]]
			if !e.exclusive(ta.labels, tb.labels) {
				continue
			}
			kids := append(append([]*dtd.Content(nil), ta.c.Children...), tb.c.Children...)
			nw := e.merged(dtd.NewChoice(kids...), ta, tb)
			e.replace([]int{ors[a], ors[b]}, nw)
			return true
		}
	}
	return false
}

func (e *engine) operatorTrees() []int {
	var out []int
	for i, t := range e.C {
		if !t.isElement() {
			out = append(out, i)
		}
	}
	return out
}

// p13 — the terminal fallback (operator trees per Figure 4; exercised in
// paper Example 5 to bind the *-tree and the OR-tree): every remaining tree
// is wrapped for optionality/repeatability and the whole set is bound by
// AND in document order. Bare AND trees are spliced so each of their
// children is placed by its own observed position — otherwise an element
// whose dominant position falls inside another group would be forced after
// it. Always succeeds, guaranteeing termination.
func (e *engine) p13() {
	wrapped := make([]*workTree, len(e.C))
	for i, t := range e.C {
		wrapped[i] = e.basicWrap(t)
	}
	if len(wrapped) == 1 {
		e.C = wrapped
		return
	}
	type piece struct {
		c   *dtd.Content
		pos float64
	}
	var pieces []piece
	for _, t := range wrapped {
		if t.c.Kind == dtd.Seq {
			// Splicing preserves the group's internal order (its children
			// are already position-ordered) while letting other trees
			// interleave at their own positions.
			for _, ch := range t.c.Children {
				pieces = append(pieces, piece{c: ch, pos: e.contentPos(ch)})
			}
			continue
		}
		pieces = append(pieces, piece{c: t.c, pos: t.pos})
	}
	sort.SliceStable(pieces, func(i, j int) bool { return pieces[i].pos < pieces[j].pos })
	kids := make([]*dtd.Content, len(pieces))
	for i, p := range pieces {
		kids[i] = p.c
	}
	nw := e.merged(dtd.NewSeq(kids...), wrapped...)
	e.C = []*workTree{nw}
}
