package intern

import (
	"fmt"
	"sync"
	"testing"

	"dtdevolve/internal/dtd"
	"dtdevolve/internal/xmltree"
)

func TestInternBasics(t *testing.T) {
	tab := NewTable()
	if tab.Len() != 0 {
		t.Fatalf("fresh table has Len %d", tab.Len())
	}
	a := tab.Intern("alpha")
	b := tab.Intern("beta")
	if a == None || b == None {
		t.Fatalf("Intern returned None for non-empty names: %d, %d", a, b)
	}
	if a == b {
		t.Fatalf("distinct names share ID %d", a)
	}
	if got := tab.Intern("alpha"); got != a {
		t.Errorf("re-interning alpha: got %d, want %d", got, a)
	}
	if got := tab.ID("alpha"); got != a {
		t.Errorf("ID(alpha) = %d, want %d", got, a)
	}
	if got := tab.ID("missing"); got != None {
		t.Errorf("ID(missing) = %d, want None", got)
	}
	if got := tab.Name(a); got != "alpha" {
		t.Errorf("Name(%d) = %q, want alpha", a, got)
	}
	if got := tab.Name(None); got != "" {
		t.Errorf("Name(None) = %q, want empty", got)
	}
	if got := tab.Name(99); got != "" {
		t.Errorf("Name(out of range) = %q, want empty", got)
	}
	if !tab.NameIs(a, "alpha") || tab.NameIs(a, "beta") || tab.NameIs(None, "") {
		t.Error("NameIs misbehaves")
	}
	if tab.Len() != 2 {
		t.Errorf("Len = %d, want 2", tab.Len())
	}
}

func TestInternEmptyStringIsNone(t *testing.T) {
	tab := NewTable()
	if got := tab.Intern(""); got != None {
		t.Fatalf("Intern(\"\") = %d, want None", got)
	}
	if tab.Len() != 0 {
		t.Fatalf("interning the empty string grew the table to %d", tab.Len())
	}
}

func TestNamesRoundTrip(t *testing.T) {
	tab := NewTable()
	want := []string{"x", "y", "z"}
	for _, n := range want {
		tab.Intern(n)
	}
	names := tab.Names()
	if len(names) != len(want) {
		t.Fatalf("Names() = %v", names)
	}
	for i, n := range want {
		if names[i] != n {
			t.Errorf("Names()[%d] = %q, want %q", i, names[i], n)
		}
	}
}

// TestInternConcurrent hammers one table from many goroutines interning an
// overlapping name set, then checks the table is consistent: every name has
// exactly one ID and every ID maps back to its name. Run with -race.
func TestInternConcurrent(t *testing.T) {
	tab := NewTable()
	const goroutines = 8
	const names = 200
	ids := make([][]int32, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ids[g] = make([]int32, names)
			for i := 0; i < names; i++ {
				// Overlapping sets: every goroutine interns every name,
				// in a goroutine-dependent order.
				ids[g][i] = tab.Intern(fmt.Sprintf("name%d", (i+g*7)%names))
			}
		}(g)
	}
	wg.Wait()
	if tab.Len() != names {
		t.Fatalf("Len = %d, want %d", tab.Len(), names)
	}
	for g := 0; g < goroutines; g++ {
		for i := 0; i < names; i++ {
			name := fmt.Sprintf("name%d", (i+g*7)%names)
			if got := tab.ID(name); got != ids[g][i] {
				t.Fatalf("goroutine %d saw %s=%d, table says %d", g, name, ids[g][i], got)
			}
			if got := tab.Name(ids[g][i]); got != name {
				t.Fatalf("Name(%d) = %q, want %q", ids[g][i], got, name)
			}
		}
	}
}

func TestInternAll(t *testing.T) {
	tab := NewTable()
	pre := tab.Intern("b")
	tab.InternAll([]string{"a", "b", "", "c", "a"})
	if tab.Len() != 3 {
		t.Fatalf("Len = %d, want 3 (dedup, skip empty)", tab.Len())
	}
	if got := tab.ID("b"); got != pre {
		t.Errorf("InternAll reassigned existing ID: %d vs %d", got, pre)
	}
	for _, n := range []string{"a", "c"} {
		id := tab.ID(n)
		if id == None || tab.Name(id) != n {
			t.Errorf("%q: ID %d, Name %q", n, id, tab.Name(id))
		}
	}
	tab.InternAll([]string{"a", "b", "c"}) // all present: must be a no-op
	if tab.Len() != 3 {
		t.Errorf("idempotent InternAll grew table to %d", tab.Len())
	}
}

func TestInternDTDCoversDeclaredAndReferencedLabels(t *testing.T) {
	d := dtd.MustParse(`
<!ELEMENT doc (head, (para | note)*)>
<!ELEMENT head (#PCDATA)>
<!ELEMENT para (#PCDATA | em)*>`)
	tab := NewTable()
	InternDTD(tab, d)
	// Declared elements, plus labels only referenced in models (note, em).
	for _, name := range []string{"doc", "head", "para", "note", "em"} {
		if tab.ID(name) == None {
			t.Errorf("label %q not interned", name)
		}
	}
}

func TestInternDocumentStampsEveryElement(t *testing.T) {
	doc, err := xmltree.ParseString(`<doc><head>t</head><para>x<em>y</em></para></doc>`)
	if err != nil {
		t.Fatal(err)
	}
	tab := NewTable()
	InternDocument(tab, doc.Root)
	var check func(n *xmltree.Node)
	check = func(n *xmltree.Node) {
		if n.Kind != xmltree.Element {
			return
		}
		id := n.LabelID()
		if id == None {
			t.Errorf("element <%s> not stamped", n.Name)
		} else if !tab.NameIs(id, n.Name) {
			t.Errorf("element <%s> stamped with foreign ID %d (%q)", n.Name, id, tab.Name(id))
		}
		for _, c := range n.Children {
			check(c)
		}
	}
	check(doc.Root)
}

// TestViewSnapshot pins the semantics candidate pruning relies on: a View
// resolves exactly the symbols present when it was taken, and later
// interning neither extends nor invalidates it.
func TestViewSnapshot(t *testing.T) {
	tab := NewTable()
	a := tab.Intern("a")
	v := tab.View()
	if v.Len() != 1 || v.ID("a") != a || !v.NameIs(a, "a") || v.Name(a) != "a" {
		t.Fatalf("view does not reflect the table at snapshot time")
	}
	b := tab.Intern("b")
	if v.ID("b") != None {
		t.Errorf("stale view resolves a later symbol")
	}
	if v.NameIs(b, "b") || v.Name(b) != "" {
		t.Errorf("stale view accepts a later ID")
	}
	if got := tab.View().ID("b"); got != b {
		t.Errorf("fresh view misses b: %d", got)
	}
	if v.ID("") != None || v.NameIs(None, "") {
		t.Errorf("view mishandles the empty name or None")
	}
}

// TestInternDocumentBatchesFreshTags checks that a document of entirely
// novel tags grows the table through one batched extension: the assigned
// IDs are dense and in document order, exactly what a single InternAll of
// the collected tags yields.
func TestInternDocumentBatchesFreshTags(t *testing.T) {
	doc, err := xmltree.ParseString(`<r><x1/><x2><x3/></x2><x1/></r>`)
	if err != nil {
		t.Fatal(err)
	}
	tab := NewTable()
	base := int32(tab.Intern("pre"))
	InternDocument(tab, doc.Root)
	// Document order of first sight: r, x1, x2, x3.
	for i, name := range []string{"r", "x1", "x2", "x3"} {
		if got := tab.ID(name); got != base+1+int32(i) {
			t.Errorf("ID(%s) = %d, want %d (dense, document order)", name, got, base+1+int32(i))
		}
	}
	if tab.Len() != 5 {
		t.Errorf("Len = %d, want 5", tab.Len())
	}
	// Every element is stamped with its snapshot ID.
	doc.Root.Walk(func(n *xmltree.Node, _ int) bool {
		if n.Kind == xmltree.Element && !tab.NameIs(n.LabelID(), n.Name) {
			t.Errorf("<%s> stamped %d", n.Name, n.LabelID())
		}
		return true
	})
	// A second pass finds nothing fresh and restamps identically.
	InternDocument(tab, doc.Root)
	if tab.Len() != 5 {
		t.Errorf("second InternDocument grew the table to %d", tab.Len())
	}
}

// TestInternDocumentRestampsAfterForeignStamp models a document migrating
// between sources: IDs from the old table must be replaced, not trusted.
func TestInternDocumentRestampsAfterForeignStamp(t *testing.T) {
	doc, err := xmltree.ParseString(`<b><a/></b>`)
	if err != nil {
		t.Fatal(err)
	}
	old := NewTable()
	old.Intern("padding") // skew the ID space
	InternDocument(old, doc.Root)
	fresh := NewTable()
	InternDocument(fresh, doc.Root)
	if id := doc.Root.LabelID(); !fresh.NameIs(id, "b") {
		t.Errorf("root not restamped: ID %d in fresh table is %q", id, fresh.Name(id))
	}
}
