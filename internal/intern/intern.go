// Package intern implements a symbol table mapping element labels to
// dense int32 IDs, so the similarity and recording hot paths can replace
// string-keyed maps with slice indexing and integer comparisons.
//
// A Table is built in two phases mirroring the lifecycle of a DTD set
// (DESIGN.md §9):
//
//   - at pool-compile time, every element name and content-model label of
//     a DTD is interned (InternDTD), so the alignment automata carry IDs
//     on their symbol edges and the required-weight memo is a dense slice;
//   - at ingest time, tags of incoming documents that the DTDs never
//     declared are interned on first sight (Intern), extending the table.
//
// Reads (ID, Name, NameIs) are lock-free: the table keeps its state in an
// atomically-published immutable snapshot, and writers copy-on-write under
// a mutex. Interning a new symbol is therefore O(n) — the table is meant
// for element-label alphabets (tens to a few thousand symbols), not for
// arbitrary document text. A Table never shrinks; it is shared by every
// pool, evaluator and recorder of one Source so that IDs assigned to a
// document during classification remain valid during recording.
package intern

import (
	"sort"
	"sync"
	"sync/atomic"

	"dtdevolve/internal/dtd"
	"dtdevolve/internal/xmltree"
)

// None is the reserved ID meaning "no symbol": the zero value of a node's
// cached label ID, and the lookup result for unknown names.
const None int32 = 0

// Table is a concurrency-safe label → dense-ID symbol table. IDs are
// assigned consecutively starting at 1; 0 is None. The zero value is not
// usable; call NewTable.
type Table struct {
	mu    sync.Mutex
	state atomic.Pointer[tableState]
}

// tableState is an immutable snapshot: readers load it atomically and
// never observe a partially-updated table.
type tableState struct {
	ids   map[string]int32
	names []string // names[id]; names[0] is "" for None
}

// NewTable returns an empty table.
func NewTable() *Table {
	t := &Table{}
	t.state.Store(&tableState{ids: map[string]int32{}, names: []string{""}})
	return t
}

// Len returns the number of interned symbols (excluding None).
func (t *Table) Len() int { return len(t.state.Load().names) - 1 }

// ID returns the ID of name, or None when it has never been interned.
// Lock-free.
func (t *Table) ID(name string) int32 { return t.state.Load().ids[name] }

// Name returns the symbol with the given ID, or "" for None and
// out-of-range IDs. Lock-free.
func (t *Table) Name(id int32) string {
	s := t.state.Load()
	if id <= 0 || int(id) >= len(s.names) {
		return ""
	}
	return s.names[id]
}

// NameIs reports whether id is a valid ID naming exactly name. It lets a
// consumer verify a cached ID (e.g. xmltree.Node.LabelID, possibly stamped
// by a different table) before trusting it. Lock-free.
func (t *Table) NameIs(id int32, name string) bool {
	s := t.state.Load()
	return id > 0 && int(id) < len(s.names) && s.names[id] == name
}

// View is an immutable point-in-time snapshot of a Table. All its lookups
// read the one state loaded when the view was taken, so a consumer that
// resolves many IDs (e.g. extracting a document's structural signature)
// sees a consistent alphabet and pays the atomic load once instead of per
// lookup. Symbols interned after the view was taken resolve to None.
type View struct {
	s *tableState
}

// View returns a snapshot of the table's current state.
func (t *Table) View() View { return View{s: t.state.Load()} }

// ID returns the ID of name in the snapshot, or None.
func (v View) ID(name string) int32 { return v.s.ids[name] }

// Len returns the number of symbols in the snapshot (excluding None).
func (v View) Len() int { return len(v.s.names) - 1 }

// Name returns the symbol with the given ID in the snapshot, or "".
func (v View) Name(id int32) string {
	if id <= 0 || int(id) >= len(v.s.names) {
		return ""
	}
	return v.s.names[id]
}

// NameIs reports whether id is a valid snapshot ID naming exactly name.
func (v View) NameIs(id int32, name string) bool {
	return id > 0 && int(id) < len(v.s.names) && v.s.names[id] == name
}

// Intern returns the ID of name, assigning the next dense ID when the name
// is new. The read path is lock-free; only the first interning of a name
// takes the write lock and republishes a copied snapshot. Interning "" is
// a no-op returning None.
func (t *Table) Intern(name string) int32 {
	if name == "" {
		return None
	}
	if id, ok := t.state.Load().ids[name]; ok {
		return id
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.state.Load()
	if id, ok := s.ids[name]; ok {
		// Lost the race to another writer.
		return id
	}
	ids := make(map[string]int32, len(s.ids)+1)
	for k, v := range s.ids {
		ids[k] = v
	}
	id := int32(len(s.names))
	ids[name] = id
	names := make([]string, len(s.names)+1)
	copy(names, s.names)
	names[id] = name
	t.state.Store(&tableState{ids: ids, names: names})
	return id
}

// InternBytes returns the ID and canonical interned string of the symbol
// spelled by b, interning it when new. The found path is lock-free and does
// not copy b (the map lookup compiles to a no-allocation probe), so the
// streaming parser can resolve element names straight out of its read
// window. Only the first sighting of a name allocates. An empty b returns
// (None, "").
func (t *Table) InternBytes(b []byte) (int32, string) {
	if len(b) == 0 {
		return None, ""
	}
	s := t.state.Load()
	if id, ok := s.ids[string(b)]; ok {
		return id, s.names[id]
	}
	id := t.Intern(string(b))
	return id, t.Name(id)
}

// InternAll interns every name in names, taking the write lock and copying
// the snapshot at most once — use it over per-name Intern calls when
// seeding a table, where n copy-on-write extensions would cost O(n²).
// Empty names are skipped.
func (t *Table) InternAll(names []string) {
	s := t.state.Load()
	fresh := 0
	for _, n := range names {
		if n != "" {
			if _, ok := s.ids[n]; !ok {
				fresh++
			}
		}
	}
	if fresh == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s = t.state.Load()
	ids := make(map[string]int32, len(s.ids)+fresh)
	for k, v := range s.ids {
		ids[k] = v
	}
	grown := make([]string, len(s.names), len(s.names)+fresh)
	copy(grown, s.names)
	for _, n := range names {
		if n == "" {
			continue
		}
		if _, ok := ids[n]; ok {
			continue
		}
		ids[n] = int32(len(grown))
		grown = append(grown, n)
	}
	t.state.Store(&tableState{ids: ids, names: grown})
}

// Names returns the interned symbols in ID order, starting at ID 1.
func (t *Table) Names() []string {
	s := t.state.Load()
	out := make([]string, len(s.names)-1)
	copy(out, s.names[1:])
	return out
}

// InternDTD interns every element name and every content-model label of d,
// in one batched table extension. Called once per DTD at pool-compile time.
//
// The walk is deterministic (declaration order, then any programmatic
// additions missing from d.Order, sorted): the ID assignment must be a pure
// function of the operation history, so that a WAL replay reproduces the
// live table exactly and snapshots carrying interned IDs (source snapshot
// v2) compare equal across recoveries.
func InternDTD(t *Table, d *dtd.DTD) {
	if d == nil {
		return
	}
	names := make([]string, 0, 2*len(d.Elements))
	seen := make(map[string]bool, len(d.Elements))
	for _, name := range d.Order {
		if model, ok := d.Elements[name]; ok && !seen[name] {
			seen[name] = true
			names = append(names, name)
			names = collectContent(names, model)
		}
	}
	if len(seen) < len(d.Elements) {
		rest := make([]string, 0, len(d.Elements)-len(seen))
		for name := range d.Elements {
			if !seen[name] {
				rest = append(rest, name)
			}
		}
		sort.Strings(rest)
		for _, name := range rest {
			names = append(names, name)
			names = collectContent(names, d.Elements[name])
		}
	}
	t.InternAll(names)
}

func collectContent(names []string, c *dtd.Content) []string {
	if c == nil {
		return names
	}
	if c.Kind == dtd.Name {
		return append(names, c.Name)
	}
	for _, ch := range c.Children {
		names = collectContent(names, ch)
	}
	return names
}

// InternDocument interns the tag of every element node under root and
// stamps the node's cached LabelID. The table itself is safe for
// concurrent interning, but stamping writes to the nodes: callers must be
// the only writer of the tree (the source engine stamps documents under
// its write lock, just before recording).
//
// Unknown tags are collected in one pass and interned with a single
// batched table extension: a document full of fresh tags costs one
// copy-on-write instead of one per tag, which matters because per-symbol
// Intern is O(table) and a stream of novel-tag documents would otherwise
// grow the table in O(n²).
func InternDocument(t *Table, root *xmltree.Node) {
	if root == nil {
		return
	}
	v := t.View()
	var fresh []string
	collectFresh(v, root, &fresh)
	if len(fresh) > 0 {
		t.InternAll(fresh)
		v = t.View()
	}
	stampLabels(v, root)
}

// collectFresh appends the tags under root missing from the snapshot.
// Repetitions are fine: InternAll deduplicates.
func collectFresh(v View, n *xmltree.Node, fresh *[]string) {
	if n.Kind == xmltree.Element && n.Name != "" && v.ID(n.Name) == None {
		*fresh = append(*fresh, n.Name)
	}
	for _, c := range n.Children {
		collectFresh(v, c, fresh)
	}
}

// stampLabels writes the snapshot ID of every element tag under root into
// the node's LabelID cache.
func stampLabels(v View, n *xmltree.Node) {
	if n.Kind == xmltree.Element {
		n.SetLabelID(v.ID(n.Name))
	}
	for _, c := range n.Children {
		stampLabels(v, c)
	}
}
