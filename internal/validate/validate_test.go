package validate

import (
	"strings"
	"testing"

	"dtdevolve/internal/dtd"
	"dtdevolve/internal/xmltree"
)

func model(t *testing.T, src string) *dtd.Content {
	t.Helper()
	m, err := dtd.ParseContentModel(src)
	if err != nil {
		t.Fatalf("ParseContentModel(%q): %v", src, err)
	}
	return m
}

func TestMatchModel(t *testing.T) {
	cases := []struct {
		model string
		tags  []string
		want  bool
	}{
		{"(a)", []string{"a"}, true},
		{"(a)", []string{"b"}, false},
		{"(a)", nil, false},
		{"(a)", []string{"a", "a"}, false},
		{"(a?)", nil, true},
		{"(a?)", []string{"a"}, true},
		{"(a?)", []string{"a", "a"}, false},
		{"(a*)", nil, true},
		{"(a*)", []string{"a", "a", "a"}, true},
		{"(a+)", nil, false},
		{"(a+)", []string{"a"}, true},
		{"(a+)", []string{"a", "a"}, true},
		{"(a, b)", []string{"a", "b"}, true},
		{"(a, b)", []string{"b", "a"}, false},
		{"(a, b)", []string{"a"}, false},
		{"(a | b)", []string{"a"}, true},
		{"(a | b)", []string{"b"}, true},
		{"(a | b)", []string{"a", "b"}, false},
		{"(a, (b | c)+, d)", []string{"a", "b", "c", "b", "d"}, true},
		{"(a, (b | c)+, d)", []string{"a", "d"}, false},
		{"((a, b)*)", []string{"a", "b", "a", "b"}, true},
		{"((a, b)*)", []string{"a", "b", "a"}, false},
		{"((a, b) | (c, d))", []string{"c", "d"}, true},
		{"(a, b?, c*)", []string{"a"}, true},
		{"(a, b?, c*)", []string{"a", "c", "c"}, true},
		{"(a, b?, c*)", []string{"a", "b", "c"}, true},
		{"(a, b?, c*)", []string{"a", "b", "b"}, false},
		// Nullable inner expressions must not hang * or +.
		{"((a?)*)", nil, true},
		{"((a?)*)", []string{"a", "a"}, true},
		{"((a?)+)", nil, true},
		{"((a*, b*)+)", []string{"b", "a"}, true},
		{"EMPTY", nil, true},
		{"EMPTY", []string{"a"}, false},
		{"ANY", []string{"x", "y"}, true},
		{"(#PCDATA)", nil, true},
		{"(#PCDATA)", []string{"a"}, false},
		// Ambiguous models still match correctly (NFA semantics).
		{"((a, b) | (a, c))", []string{"a", "c"}, true},
		{"(a*, a)", []string{"a", "a", "a"}, true},
		{"(a*, a)", nil, false},
	}
	for _, tc := range cases {
		name := tc.model + " " + strings.Join(tc.tags, ",")
		t.Run(name, func(t *testing.T) {
			if got := MatchModel(model(t, tc.model), tc.tags); got != tc.want {
				t.Errorf("MatchModel(%s, %v) = %v, want %v", tc.model, tc.tags, got, tc.want)
			}
		})
	}
}

func parseDoc(t *testing.T, src string) *xmltree.Document {
	t.Helper()
	doc, err := xmltree.ParseString(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return doc
}

const catalogDTD = `
<!ELEMENT catalog (product+)>
<!ELEMENT product (name, price?, tag*)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT price (#PCDATA)>
<!ELEMENT tag (#PCDATA)>`

func TestValidateDocument(t *testing.T) {
	d := dtd.MustParse(catalogDTD)
	d.Name = "catalog"
	v := New(d)

	valid := parseDoc(t, `<catalog><product><name>x</name><price>1</price><tag>t</tag></product></catalog>`)
	if vs := v.ValidateDocument(valid); len(vs) != 0 {
		t.Errorf("valid doc produced violations: %v", vs)
	}
	if !v.Valid(valid) {
		t.Error("Valid = false for valid doc")
	}

	// Missing required <name>.
	missing := parseDoc(t, `<catalog><product><price>1</price></product></catalog>`)
	vs := v.ValidateDocument(missing)
	if len(vs) != 1 || vs[0].Element != "product" {
		t.Errorf("violations = %v, want one on <product>", vs)
	}

	// Wrong root.
	wrongRoot := parseDoc(t, `<product><name>x</name></product>`)
	vs = v.ValidateDocument(wrongRoot)
	if len(vs) == 0 || !strings.Contains(vs[0].Msg, "root element") {
		t.Errorf("violations = %v, want root mismatch", vs)
	}

	// Undeclared element.
	undeclared := parseDoc(t, `<catalog><product><name>x</name><bogus/></product></catalog>`)
	vs = v.ValidateDocument(undeclared)
	if len(vs) != 2 { // content-model mismatch on product + undeclared bogus
		t.Errorf("violations = %v, want 2", vs)
	}
}

func TestValidateViolationPaths(t *testing.T) {
	d := dtd.MustParse(catalogDTD)
	v := New(d)
	doc := parseDoc(t, `<catalog><product><name>a</name></product><product><price>1</price></product></catalog>`)
	vs := v.ValidateDocument(doc)
	if len(vs) != 1 {
		t.Fatalf("violations = %v, want 1", vs)
	}
	if vs[0].Path != "/catalog/product[1]" {
		t.Errorf("path = %q, want /catalog/product[1]", vs[0].Path)
	}
	if s := vs[0].String(); !strings.Contains(s, "/catalog/product[1]") || !strings.Contains(s, "<product>") {
		t.Errorf("String() = %q", s)
	}
}

func TestValidateEmptyAndAny(t *testing.T) {
	d := dtd.MustParse(`<!ELEMENT a (b, c)> <!ELEMENT b EMPTY> <!ELEMENT c ANY>`)
	v := New(d)
	ok := parseDoc(t, `<a><b/><c><b/>text</c></a>`)
	if vs := v.ValidateDocument(ok); len(vs) != 0 {
		t.Errorf("violations = %v", vs)
	}
	badEmpty := parseDoc(t, `<a><b>text</b><c/></a>`)
	if vs := v.ValidateDocument(badEmpty); len(vs) != 1 || !strings.Contains(vs[0].Msg, "EMPTY") {
		t.Errorf("violations = %v", vs)
	}
	// ANY still requires descendants to be declared.
	badAny := parseDoc(t, `<a><b/><c><zz/></c></a>`)
	if vs := v.ValidateDocument(badAny); len(vs) != 1 || vs[0].Element != "zz" {
		t.Errorf("violations = %v", vs)
	}
}

func TestValidateMixed(t *testing.T) {
	d := dtd.MustParse(`<!ELEMENT p (#PCDATA | em | b)*> <!ELEMENT em (#PCDATA)> <!ELEMENT b (#PCDATA)>`)
	v := New(d)
	ok := parseDoc(t, `<p>one <em>two</em> three <b>four</b><em>five</em></p>`)
	if vs := v.ValidateDocument(ok); len(vs) != 0 {
		t.Errorf("violations = %v", vs)
	}
	bad := parseDoc(t, `<p>one <i>two</i></p>`)
	vs := v.ValidateDocument(bad)
	if len(vs) != 2 { // <i> not allowed in p + <i> undeclared
		t.Errorf("violations = %v, want 2", vs)
	}
}

func TestValidatePCDATAOnly(t *testing.T) {
	d := dtd.MustParse(`<!ELEMENT n (#PCDATA)>`)
	v := New(d)
	if vs := v.ValidateElement(parseDoc(t, `<n>text</n>`).Root); len(vs) != 0 {
		t.Errorf("violations = %v", vs)
	}
	if vs := v.ValidateElement(parseDoc(t, `<n/>`).Root); len(vs) != 0 {
		t.Errorf("empty #PCDATA element should be valid: %v", vs)
	}
}

func TestValidateTextInElementContent(t *testing.T) {
	d := dtd.MustParse(`<!ELEMENT a (b)> <!ELEMENT b EMPTY>`)
	v := New(d)
	doc := parseDoc(t, `<a>stray<b/></a>`)
	vs := v.ValidateDocument(doc)
	if len(vs) != 1 || !strings.Contains(vs[0].Msg, "character data") {
		t.Errorf("violations = %v", vs)
	}
}

func TestLocalValid(t *testing.T) {
	d := dtd.MustParse(`<!ELEMENT a (b, c)> <!ELEMENT b (x)> <!ELEMENT c (#PCDATA)> <!ELEMENT x (#PCDATA)>`)
	v := New(d)
	// Paper Example 1: <a><b>5</b><c>7</c></a> — locally valid at <a>
	// (children b, c match (b, c)) even though <b> is not globally valid.
	doc := parseDoc(t, `<a><b>5</b><c>7</c></a>`)
	if !v.LocalValid(doc.Root, d.Elements["a"]) {
		t.Error("LocalValid(a) = false, want true")
	}
	b := doc.Root.ChildElements()[0]
	if v.LocalValid(b, d.Elements["b"]) {
		t.Error("LocalValid(b) = true, want false (b has text, model (x))")
	}
	if len(v.ValidateDocument(doc)) == 0 {
		t.Error("document should not be globally valid")
	}
}

func TestValidatorReuseAcrossDifferentShapes(t *testing.T) {
	// Regression: matcher memoization must not leak between different child
	// sequences of the same model.
	d := dtd.MustParse(`<!ELEMENT r (a, b)> <!ELEMENT a EMPTY> <!ELEMENT b EMPTY>`)
	v := New(d)
	good := parseDoc(t, `<r><a/><b/></r>`)
	bad := parseDoc(t, `<r><b/><a/></r>`)
	if !v.Valid(good) {
		t.Error("good invalid")
	}
	if v.Valid(bad) {
		t.Error("bad valid")
	}
	if !v.Valid(good) {
		t.Error("good became invalid after validating bad (memo leak)")
	}
}

func TestDeepSequencePerformance(t *testing.T) {
	// A long sequence of optional elements against a long tag list should
	// complete quickly thanks to memoization.
	var parts []string
	var tags []string
	for i := 0; i < 26; i++ {
		name := string(rune('a' + i))
		parts = append(parts, name+"?")
		tags = append(tags, name)
	}
	m := model(t, "("+strings.Join(parts, ", ")+")")
	if !MatchModel(m, tags) {
		t.Error("full sequence should match")
	}
	if MatchModel(m, append(append([]string{}, tags...), "zz")) {
		t.Error("trailing junk should not match")
	}
}
