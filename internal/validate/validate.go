// Package validate implements a DTD validator: the rigid, boolean
// classification mechanism the paper contrasts with its similarity-based
// approach, and the ground-truth notion of validity that the similarity
// measure must agree with (global similarity 1 ⟺ valid).
//
// Content-model matching is a memoized dynamic program over the model tree
// and child-tag segments, equivalent in power to matching with Brzozowski
// derivatives but allocation-free on the model side. Matchers (and their
// memo tables and tag scratch) are pooled per Validator, so the recording
// hot path — LocalValid on every element of every document — does not
// allocate at steady state.
package validate

import (
	"fmt"
	"strings"
	"sync"

	"dtdevolve/internal/dtd"
	"dtdevolve/internal/xmltree"
)

// Violation describes one way in which a document fails to conform to a DTD.
type Violation struct {
	// Path locates the offending element, e.g. "/catalog/product[2]/name".
	Path string
	// Element is the tag of the offending element.
	Element string
	// Msg explains the violation.
	Msg string
}

func (v Violation) String() string {
	return fmt.Sprintf("%s <%s>: %s", v.Path, v.Element, v.Msg)
}

// Validator validates documents against one DTD. A Validator is safe for
// concurrent use: its only mutable state is a pool of matcher scratch.
type Validator struct {
	d *dtd.DTD
	// mixed precomputes the allowed-label set of every mixed content model
	// of d; read-only after New. Models not in the map (foreign models
	// passed to LocalValid directly) fall back to a per-call set.
	mixed    map[*dtd.Content]map[string]bool
	matchers sync.Pool
}

// New returns a Validator for d.
func New(d *dtd.DTD) *Validator {
	v := &Validator{d: d, mixed: map[*dtd.Content]map[string]bool{}}
	for _, model := range d.Elements {
		if model != nil && model.IsMixed() {
			v.mixed[model] = labelSet(model)
		}
	}
	v.matchers.New = func() any { return newMatcher() }
	return v
}

func labelSet(model *dtd.Content) map[string]bool {
	allowed := make(map[string]bool)
	for _, l := range model.Labels() {
		allowed[l] = true
	}
	return allowed
}

// Valid reports whether the whole document is valid for the DTD.
func (v *Validator) Valid(doc *xmltree.Document) bool {
	return len(v.ValidateDocument(doc)) == 0
}

// ValidateDocument checks the document root (against the DTD's root element
// name, when the DTD has one) and every element recursively, returning all
// violations found.
func (v *Validator) ValidateDocument(doc *xmltree.Document) []Violation {
	if doc == nil || doc.Root == nil {
		return []Violation{{Path: "/", Msg: "document has no root element"}}
	}
	var out []Violation
	if v.d.Name != "" && doc.Root.Name != v.d.Name {
		out = append(out, Violation{
			Path:    "/" + doc.Root.Name,
			Element: doc.Root.Name,
			Msg:     fmt.Sprintf("root element is <%s>, DTD declares <%s>", doc.Root.Name, v.d.Name),
		})
	}
	out = append(out, v.ValidateElement(doc.Root)...)
	return out
}

// ValidateElement validates the subtree rooted at n, returning all
// violations found.
func (v *Validator) ValidateElement(n *xmltree.Node) []Violation {
	var out []Violation
	v.validate(n, "/"+n.Name, &out)
	return out
}

func (v *Validator) validate(n *xmltree.Node, path string, out *[]Violation) {
	model, declared := v.d.Elements[n.Name]
	if !declared {
		*out = append(*out, Violation{Path: path, Element: n.Name, Msg: "element is not declared in the DTD"})
		// Children cannot be checked against a model, but they may still
		// reference declared elements; keep descending.
		for i, c := range n.ChildElements() {
			v.validate(c, childPath(path, c.Name, i), out)
		}
		return
	}
	if err := v.localViolation(n, model); err != "" {
		*out = append(*out, Violation{Path: path, Element: n.Name, Msg: err})
	}
	for i, c := range n.ChildElements() {
		v.validate(c, childPath(path, c.Name, i), out)
	}
}

func childPath(parent, name string, i int) string {
	return fmt.Sprintf("%s/%s[%d]", parent, name, i)
}

// LocalValid reports whether element n's direct content conforms to model:
// the paper's one-level validity, whose numeric counterpart is local
// similarity. It does not descend into grandchildren. LocalValid never
// allocates — it sits on the recording hot path, called once per element of
// every document; diagnostics belong to localViolation.
func (v *Validator) LocalValid(n *xmltree.Node, model *dtd.Content) bool {
	return v.localConforms(n, model)
}

// localConforms is the allocation-free boolean core of local validation.
func (v *Validator) localConforms(n *xmltree.Node, model *dtd.Content) bool {
	switch {
	case model == nil || model.Kind == dtd.Any:
		return true
	case model.Kind == dtd.Empty:
		return len(n.Children) == 0
	case model.Kind == dtd.PCDATA:
		for _, c := range n.Children {
			if c.Kind == xmltree.Element {
				return false
			}
		}
		return true
	case model.IsMixed():
		allowed, ok := v.mixed[model]
		if !ok {
			allowed = labelSet(model)
		}
		for _, c := range n.Children {
			if c.Kind == xmltree.Element && !allowed[c.Name] {
				return false
			}
		}
		return true
	default:
		if n.HasText() {
			return false
		}
		m := v.matchers.Get().(*matcher)
		tags := m.fillTags(n)
		ok := m.match(model, tags)
		m.reset()
		v.matchers.Put(m)
		return ok
	}
}

// localViolation returns "" when n's direct content conforms to model, or a
// description of the mismatch. Messages are only built after localConforms
// fails, so ValidateDocument on a valid document allocates no diagnostics.
func (v *Validator) localViolation(n *xmltree.Node, model *dtd.Content) string {
	if v.localConforms(n, model) {
		return ""
	}
	switch {
	case model.Kind == dtd.Empty:
		return "declared EMPTY but has content"
	case model.Kind == dtd.PCDATA:
		return fmt.Sprintf("declared (#PCDATA) but has element children %v", n.ChildTags())
	case model.IsMixed():
		allowed, ok := v.mixed[model]
		if !ok {
			allowed = labelSet(model)
		}
		for _, c := range n.Children {
			if c.Kind == xmltree.Element && !allowed[c.Name] {
				return fmt.Sprintf("element <%s> not allowed in mixed content %s", c.Name, model)
			}
		}
	case n.HasText():
		return fmt.Sprintf("character data not allowed in element content %s", model)
	}
	return fmt.Sprintf("children %v do not match content model %s", compactTags(n.ChildTags()), model)
}

func compactTags(tags []string) string {
	if len(tags) == 0 {
		return "(none)"
	}
	return "(" + strings.Join(tags, ", ") + ")"
}

// MatchModel reports whether the sequence of child tags matches the content
// model exactly. It treats the model as an element-content model; PCDATA
// leaves match the empty sequence (character data carries no child tags).
func MatchModel(model *dtd.Content, tags []string) bool {
	return newMatcher().match(model, tags)
}

// matcher memoizes content-model matching per (model node, segment). The
// memo is keyed by model node and segment, so a matcher is only valid for
// a single tag sequence; reset clears it (retaining map buckets and tag
// capacity) for reuse on the next sequence.
type matcher struct {
	memo    map[memoKey]bool
	seqMemo map[seqKey]bool
	tags    []string
}

type memoKey struct {
	node *dtd.Content
	star bool // key for the implicit Star used to expand Plus
	i, j int
}

type seqKey struct {
	node    *dtd.Content
	k, i, j int
}

func newMatcher() *matcher {
	return &matcher{memo: make(map[memoKey]bool), seqMemo: make(map[seqKey]bool)}
}

// fillTags loads the direct child tags of n into the matcher's scratch.
func (m *matcher) fillTags(n *xmltree.Node) []string {
	m.tags = m.tags[:0]
	for _, c := range n.Children {
		if c.Kind == xmltree.Element {
			m.tags = append(m.tags, c.Name)
		}
	}
	return m.tags
}

// reset prepares the matcher for a different tag sequence.
func (m *matcher) reset() {
	clear(m.memo)
	clear(m.seqMemo)
}

// match reports whether model matches exactly tags[0:len(tags)].
func (m *matcher) match(model *dtd.Content, tags []string) bool {
	return m.seg(model, tags, 0, len(tags))
}

// seg reports whether model matches tags[i:j].
func (m *matcher) seg(c *dtd.Content, tags []string, i, j int) bool {
	key := memoKey{node: c, i: i, j: j}
	if v, ok := m.memo[key]; ok {
		return v
	}
	v := m.segUncached(c, tags, i, j)
	m.memo[key] = v
	return v
}

func (m *matcher) segUncached(c *dtd.Content, tags []string, i, j int) bool {
	switch c.Kind {
	case dtd.Empty, dtd.PCDATA:
		return i == j
	case dtd.Any:
		return true
	case dtd.Name:
		return j == i+1 && tags[i] == c.Name
	case dtd.Opt:
		return i == j || m.seg(c.Children[0], tags, i, j)
	case dtd.Star:
		return m.star(c.Children[0], tags, i, j)
	case dtd.Plus:
		inner := c.Children[0]
		for k := i + 1; k <= j; k++ {
			if m.seg(inner, tags, i, k) && m.star(inner, tags, k, j) {
				return true
			}
		}
		// A nullable inner may match tags[i:i] once, satisfying the +.
		return inner.Nullable() && m.star(inner, tags, i, j)
	case dtd.Choice:
		for _, ch := range c.Children {
			if m.seg(ch, tags, i, j) {
				return true
			}
		}
		return false
	case dtd.Seq:
		return m.seq(c, tags, 0, i, j)
	default:
		return false
	}
}

// star reports whether zero or more repetitions of inner match tags[i:j].
func (m *matcher) star(inner *dtd.Content, tags []string, i, j int) bool {
	key := memoKey{node: inner, star: true, i: i, j: j}
	if v, ok := m.memo[key]; ok {
		return v
	}
	v := false
	if i == j {
		v = true
	} else {
		// Each repetition must consume at least one tag, or the recursion
		// would not terminate; an empty repetition adds nothing anyway.
		for k := i + 1; k <= j; k++ {
			if m.seg(inner, tags, i, k) && m.star(inner, tags, k, j) {
				v = true
				break
			}
		}
	}
	m.memo[key] = v
	return v
}

// seq reports whether c.Children[k:] match tags[i:j].
func (m *matcher) seq(c *dtd.Content, tags []string, k, i, j int) bool {
	if k == len(c.Children) {
		return i == j
	}
	first := c.Children[k]
	if k == len(c.Children)-1 {
		return m.seg(first, tags, i, j)
	}
	key := seqKey{node: c, k: k, i: i, j: j}
	if v, ok := m.seqMemo[key]; ok {
		return v
	}
	v := false
	for mid := i; mid <= j; mid++ {
		if m.seg(first, tags, i, mid) && m.seq(c, tags, k+1, mid, j) {
			v = true
			break
		}
	}
	m.seqMemo[key] = v
	return v
}
