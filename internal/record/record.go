// Package record implements the paper's recording phase (§3): after a
// document has been classified against a DTD, compact structural statistics
// are extracted and attached to the DTD's element declarations — the
// "extended DTD" — so that the evolution phase never has to re-analyze
// documents.
//
// Per element declaration the extended DTD stores (paper §3.2):
//
//   - the number of valid instances and of documents containing valid
//     instances (local validity: the direct subelements meet the
//     declaration's operators);
//   - the number of non-valid instances;
//   - the set of labels found in non-valid instances and, per label, how
//     many non-valid instances contain it and in how many it is repeated;
//   - the set of "sequences" (αβ of each non-valid instance: child tag sets
//     disregarding order and repetitions) with multiplicities;
//   - the "groups": subsets of labels repeated the same number of times
//     within one instance, with a counter r;
//   - for labels that do not appear in the declaration (plus elements),
//     nested statistics of their subelements, from which the evolution
//     phase extracts a brand-new declaration (Example 5, tree (4)).
//
// Additionally — to support the old-window operator restriction (§4.1) —
// presence and repetition aggregates are kept over all instances, valid
// ones included, along with first-position order statistics used to order
// the children of rebuilt AND groups.
package record

import (
	"sort"

	"dtdevolve/internal/dtd"
	"dtdevolve/internal/mine"
	"dtdevolve/internal/validate"
	"dtdevolve/internal/xmltree"
)

// ElementStats is the extended-DTD data structure attached to one element
// declaration (or to a plus element discovered in documents).
type ElementStats struct {
	// Name is the element tag these statistics describe.
	Name string
	// ValidInstances counts instances whose direct content met the
	// declaration (full local similarity).
	ValidInstances int
	// DocsWithValid counts documents containing at least one valid instance.
	DocsWithValid int
	// InvalidInstances counts instances with non-full local similarity.
	InvalidInstances int
	// Labels maps each tag found in non-valid instances to its statistics.
	Labels map[string]*LabelStats
	// Sequences maps the canonical key of each recorded child tag set to
	// the set and its multiplicity.
	Sequences map[string]*SeqStats
	// Groups maps the canonical key of each repetition group to its counter.
	Groups map[string]*GroupStats
	// PresentCount / RepeatCount aggregate over ALL instances (valid and
	// invalid): in how many instances each tag occurs at least once /
	// more than once. They drive the old-window operator restriction.
	PresentCount map[string]int
	RepeatCount  map[string]int
	// PosSum and PosCount accumulate the index of the first occurrence of
	// each tag among the instance's child elements, for ordering rebuilt
	// sequences by dominant document order.
	PosSum   map[string]float64
	PosCount map[string]int
	// TextInstances counts instances (valid or not) carrying non-whitespace
	// character data; a rebuilt declaration must then admit #PCDATA.
	TextInstances int
	// PairCount counts, per unordered tag pair, the instances containing
	// both tags; InterleavedCount counts those in which their occurrences
	// interleave (neither tag's occurrences all precede the other's).
	// Interleaving evidence drives the (x | y)* form during evolution.
	PairCount        map[string]int
	InterleavedCount map[string]int
}

// LabelStats records, for one tag l found in non-valid instances of an
// element e, the paper's per-label structural information.
type LabelStats struct {
	// InvalidWithLabel counts the non-valid instances of e containing l.
	InvalidWithLabel int
	// RepeatedInInvalid counts the non-valid instances of e in which l is
	// repeated more than once.
	RepeatedInInvalid int
	// Child holds nested statistics for the subelements of l when l does
	// not appear in e's declaration (a plus element); nil otherwise.
	Child *ElementStats
}

// SeqStats is one recorded sequence (a child tag set) with its multiplicity.
type SeqStats struct {
	Tags  []string
	Count int
}

// GroupStats is one recorded repetition group with the paper's counter r.
type GroupStats struct {
	Tags []string
	// Count is incremented each time the group is found in an instance.
	Count int
}

func newElementStats(name string) *ElementStats {
	return &ElementStats{
		Name:             name,
		Labels:           make(map[string]*LabelStats),
		Sequences:        make(map[string]*SeqStats),
		Groups:           make(map[string]*GroupStats),
		PresentCount:     make(map[string]int),
		RepeatCount:      make(map[string]int),
		PosSum:           make(map[string]float64),
		PosCount:         make(map[string]int),
		PairCount:        make(map[string]int),
		InterleavedCount: make(map[string]int),
	}
}

// TotalInstances returns the number of recorded instances of the element.
func (s *ElementStats) TotalInstances() int {
	return s.ValidInstances + s.InvalidInstances
}

// InvalidityRatio returns the paper's I(e) = m / n: the fraction of
// recorded instances whose local similarity was below 1. With no recorded
// instances it returns 0 (nothing suggests the declaration is wrong).
func (s *ElementStats) InvalidityRatio() float64 {
	n := s.TotalInstances()
	if n == 0 {
		return 0
	}
	return float64(s.InvalidInstances) / float64(n)
}

// LabelSet returns the paper's Label = ∪ αβ(e_di): all tags found in
// non-valid instances, sorted.
func (s *ElementStats) LabelSet() []string {
	out := make([]string, 0, len(s.Labels))
	for l := range s.Labels {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// Transactions exports the recorded sequences as mining transactions with
// multiplicities.
func (s *ElementStats) Transactions() []mine.Transaction {
	keys := make([]string, 0, len(s.Sequences))
	for k := range s.Sequences {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]mine.Transaction, 0, len(keys))
	for _, k := range keys {
		seq := s.Sequences[k]
		out = append(out, mine.NewTransaction(seq.Tags, seq.Count))
	}
	return out
}

// MeanFirstPosition returns the average first-occurrence index of the tag
// among instance children, used to order rebuilt groups; tags never seen
// sort last.
func (s *ElementStats) MeanFirstPosition(tag string) float64 {
	n := s.PosCount[tag]
	if n == 0 {
		return 1e9
	}
	return s.PosSum[tag] / float64(n)
}

// AlwaysPresent reports whether the tag occurred in every recorded instance.
func (s *ElementStats) AlwaysPresent(tag string) bool {
	return s.TotalInstances() > 0 && s.PresentCount[tag] == s.TotalInstances()
}

// EverRepeated reports whether the tag occurred more than once in any
// recorded instance.
func (s *ElementStats) EverRepeated(tag string) bool {
	return s.RepeatCount[tag] > 0
}

// EverPresent reports whether the tag occurred in any recorded instance.
func (s *ElementStats) EverPresent(tag string) bool {
	return s.PresentCount[tag] > 0
}

// Recorder accumulates extended-DTD statistics for one DTD over a stream of
// classified documents. It is not safe for concurrent use; the source
// engine serializes access.
type Recorder struct {
	d        *dtd.DTD
	v        *validate.Validator
	elements map[string]*ElementStats
	docs     int
	// invalidMass is Σ over documents of (#non-valid elements / #elements),
	// the numerator of the paper's check-phase trigger condition.
	invalidMass float64
}

// New returns an empty Recorder for d.
func New(d *dtd.DTD) *Recorder {
	return &Recorder{
		d:        d,
		v:        validate.New(d),
		elements: make(map[string]*ElementStats),
	}
}

// DTD returns the DTD the recorder is attached to.
func (r *Recorder) DTD() *dtd.DTD { return r.d }

// Docs returns the number of documents recorded since the last reset.
func (r *Recorder) Docs() int { return r.docs }

// DocResult summarizes the recording of one document.
type DocResult struct {
	// Elements is the number of element nodes in the document.
	Elements int
	// Invalid is the number of locally non-valid element nodes.
	Invalid int
}

// InvalidRatio is Invalid / Elements (0 for an empty document).
func (d DocResult) InvalidRatio() float64 {
	if d.Elements == 0 {
		return 0
	}
	return float64(d.Invalid) / float64(d.Elements)
}

// Record extracts the structural information of a classified document and
// merges it into the extended DTD.
func (r *Recorder) Record(doc *xmltree.Document) DocResult {
	return r.RecordElement(doc.Root)
}

// RecordElement records the document subtree rooted at root.
func (r *Recorder) RecordElement(root *xmltree.Node) DocResult {
	if root == nil {
		return DocResult{}
	}
	res := DocResult{}
	validSeen := make(map[string]bool)
	r.walk(root, &res, validSeen)
	for name := range validSeen {
		r.elements[name].DocsWithValid++
	}
	r.docs++
	r.invalidMass += res.InvalidRatio()
	return res
}

func (r *Recorder) walk(n *xmltree.Node, res *DocResult, validSeen map[string]bool) {
	res.Elements++
	decl, declared := r.d.Elements[n.Name]
	if declared {
		stats := r.stats(n.Name)
		if r.recordInstance(stats, n, decl) {
			validSeen[n.Name] = true
		} else {
			res.Invalid++
		}
	} else {
		// An element never declared in the DTD: it is non-valid by
		// definition; its structure is recorded under its parent's label
		// statistics (see recordInstance), not at the top level.
		res.Invalid++
	}
	for _, c := range n.ChildElements() {
		r.walk(c, res, validSeen)
	}
}

// recordInstance merges one instance of an element into stats and reports
// whether the instance was locally valid for decl.
func (r *Recorder) recordInstance(stats *ElementStats, n *xmltree.Node, decl *dtd.Content) bool {
	counts := childCounts(n)
	r.recordAggregates(stats, n, counts)

	if decl != nil && r.v.LocalValid(n, decl) {
		stats.ValidInstances++
		return true
	}
	stats.InvalidInstances++

	// Labels and the sequence (αβ of the instance).
	tags := n.TagSet()
	seqKey := mine.Key(tags)
	if seq, ok := stats.Sequences[seqKey]; ok {
		seq.Count++
	} else {
		stats.Sequences[seqKey] = &SeqStats{Tags: tags, Count: 1}
	}

	declaredLabels := make(map[string]bool)
	if decl != nil {
		for _, l := range decl.Labels() {
			declaredLabels[l] = true
		}
	}
	for _, tag := range tags {
		ls, ok := stats.Labels[tag]
		if !ok {
			ls = &LabelStats{}
			stats.Labels[tag] = ls
		}
		ls.InvalidWithLabel++
		if counts[tag] > 1 {
			ls.RepeatedInInvalid++
		}
		// Plus element: record the structure of its instances so a
		// declaration can be deduced for it (paper §3.2, Example 5).
		if !declaredLabels[tag] {
			if ls.Child == nil {
				ls.Child = newElementStats(tag)
			}
			for _, c := range n.ChildElements() {
				if c.Name == tag {
					r.recordPlusInstance(ls.Child, c)
				}
			}
		}
	}

	// Groups: for each repetition count m > 1, the set of labels repeated
	// exactly m times forms a group (when it has at least two members).
	byCount := make(map[int][]string)
	for tag, c := range counts {
		if c > 1 {
			byCount[c] = append(byCount[c], tag)
		}
	}
	for _, group := range byCount {
		if len(group) < 2 {
			continue
		}
		sort.Strings(group)
		key := mine.Key(group)
		if g, ok := stats.Groups[key]; ok {
			g.Count++
		} else {
			stats.Groups[key] = &GroupStats{Tags: group, Count: 1}
		}
	}
	return false
}

// recordPlusInstance records an instance of an element that has no DTD
// declaration: every instance is non-valid by definition, and all its
// subelements recurse as plus elements too.
func (r *Recorder) recordPlusInstance(stats *ElementStats, n *xmltree.Node) {
	r.recordInstance(stats, n, nil)
}

// recordAggregates updates the all-instance presence/repetition/order
// statistics.
func (r *Recorder) recordAggregates(stats *ElementStats, n *xmltree.Node, counts map[string]int) {
	if n.HasText() {
		stats.TextInstances++
	}
	for tag, c := range counts {
		stats.PresentCount[tag]++
		if c > 1 {
			stats.RepeatCount[tag]++
		}
	}
	// First/last occurrence positions per tag, for order statistics and
	// pairwise interleaving evidence.
	first := make(map[string]int)
	last := make(map[string]int)
	var tags []string
	for i, c := range n.ChildElements() {
		if _, seen := first[c.Name]; !seen {
			first[c.Name] = i
			tags = append(tags, c.Name)
			stats.PosSum[c.Name] += float64(i)
			stats.PosCount[c.Name]++
		}
		last[c.Name] = i
	}
	for i := 0; i < len(tags); i++ {
		for j := i + 1; j < len(tags); j++ {
			x, y := tags[i], tags[j]
			key := mine.Key([]string{x, y})
			stats.PairCount[key]++
			// Interleaved: neither tag's occurrences entirely precede the
			// other's.
			if first[x] < last[y] && first[y] < last[x] {
				stats.InterleavedCount[key]++
			}
		}
	}
}

// Interleaved reports whether the two tags were ever observed interleaved
// within one instance. A single interleaved instance already falsifies any
// "all x before all y" form, so one observation is evidence enough for the
// (x | y)* shape.
func (s *ElementStats) Interleaved(x, y string) bool {
	return s.InterleavedCount[mine.Key([]string{x, y})] > 0
}

func childCounts(n *xmltree.Node) map[string]int {
	counts := make(map[string]int)
	for _, c := range n.ChildElements() {
		counts[c.Name]++
	}
	return counts
}

// stats returns (creating if needed) the statistics entry for a declared
// element.
func (r *Recorder) stats(name string) *ElementStats {
	s, ok := r.elements[name]
	if !ok {
		s = newElementStats(name)
		r.elements[name] = s
	}
	return s
}

// Stats returns the recorded statistics for the named element, or nil when
// no instance has been recorded.
func (r *Recorder) Stats(name string) *ElementStats { return r.elements[name] }

// ElementNames returns the names of all elements with recorded statistics,
// sorted.
func (r *Recorder) ElementNames() []string {
	out := make([]string, 0, len(r.elements))
	for name := range r.elements {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// CheckRatio returns the paper's check-phase quantity:
//
//	Σ_D (#non-valid elements of D / #elements of D) / #Doc_T
//
// over the documents recorded since the last reset.
func (r *Recorder) CheckRatio() float64 {
	if r.docs == 0 {
		return 0
	}
	return r.invalidMass / float64(r.docs)
}

// ShouldEvolve reports whether the check-phase condition exceeds the
// activation threshold τ.
func (r *Recorder) ShouldEvolve(tau float64) bool {
	return r.docs > 0 && r.CheckRatio() > tau
}

// Reset clears all recorded statistics, e.g. after an evolution step.
func (r *Recorder) Reset() {
	r.elements = make(map[string]*ElementStats)
	r.docs = 0
	r.invalidMass = 0
}

// SetDTD swaps the recorder onto a new (evolved) DTD and clears statistics.
func (r *Recorder) SetDTD(d *dtd.DTD) {
	r.d = d
	r.v = validate.New(d)
	r.Reset()
}

// Snapshot is the serializable state of a Recorder (the extended DTD
// statistics), used by the source engine's checkpointing.
type Snapshot struct {
	Docs        int                      `json:"docs"`
	InvalidMass float64                  `json:"invalid_mass"`
	Elements    map[string]*ElementStats `json:"elements"`
}

// Snapshot exports the recorder's statistics. The returned structure shares
// memory with the recorder; serialize it (or copy it) before mutating.
func (r *Recorder) Snapshot() *Snapshot {
	return &Snapshot{Docs: r.docs, InvalidMass: r.invalidMass, Elements: r.elements}
}

// Restore replaces the recorder's statistics with a snapshot previously
// produced by Snapshot (typically after JSON round-tripping).
func (r *Recorder) Restore(s *Snapshot) {
	r.docs = s.Docs
	r.invalidMass = s.InvalidMass
	if s.Elements != nil {
		r.elements = s.Elements
	} else {
		r.elements = make(map[string]*ElementStats)
	}
	// Maps may be nil after JSON decoding of sparse snapshots.
	for name, es := range r.elements {
		normalizeStats(name, es)
	}
}

func normalizeStats(name string, es *ElementStats) {
	if es.Name == "" {
		es.Name = name
	}
	if es.Labels == nil {
		es.Labels = make(map[string]*LabelStats)
	}
	if es.Sequences == nil {
		es.Sequences = make(map[string]*SeqStats)
	}
	if es.Groups == nil {
		es.Groups = make(map[string]*GroupStats)
	}
	if es.PresentCount == nil {
		es.PresentCount = make(map[string]int)
	}
	if es.RepeatCount == nil {
		es.RepeatCount = make(map[string]int)
	}
	if es.PosSum == nil {
		es.PosSum = make(map[string]float64)
	}
	if es.PosCount == nil {
		es.PosCount = make(map[string]int)
	}
	if es.PairCount == nil {
		es.PairCount = make(map[string]int)
	}
	if es.InterleavedCount == nil {
		es.InterleavedCount = make(map[string]int)
	}
	for label, ls := range es.Labels {
		if ls.Child != nil {
			normalizeStats(label, ls.Child)
		}
	}
}
