// Package record implements the paper's recording phase (§3): after a
// document has been classified against a DTD, compact structural statistics
// are extracted and attached to the DTD's element declarations — the
// "extended DTD" — so that the evolution phase never has to re-analyze
// documents.
//
// Per element declaration the extended DTD stores (paper §3.2):
//
//   - the number of valid instances and of documents containing valid
//     instances (local validity: the direct subelements meet the
//     declaration's operators);
//   - the number of non-valid instances;
//   - the set of labels found in non-valid instances and, per label, how
//     many non-valid instances contain it and in how many it is repeated;
//   - the set of "sequences" (αβ of each non-valid instance: child tag sets
//     disregarding order and repetitions) with multiplicities;
//   - the "groups": subsets of labels repeated the same number of times
//     within one instance, with a counter r;
//   - for labels that do not appear in the declaration (plus elements),
//     nested statistics of their subelements, from which the evolution
//     phase extracts a brand-new declaration (Example 5, tree (4)).
//
// Additionally — to support the old-window operator restriction (§4.1) —
// presence and repetition aggregates are kept over all instances, valid
// ones included, along with first-position order statistics used to order
// the children of rebuilt AND groups.
//
// Internally all statistics are keyed by interned label IDs (package
// intern), so the recording hot path — one recordInstance per element per
// document — hashes small integers instead of strings and allocates
// nothing at steady state. Strings reappear only at the edges: Stats,
// Snapshot and Restore convert between the ID-keyed tables and the
// exported, JSON-stable ElementStats view.
package record

import (
	"sort"
	"strings"

	"dtdevolve/internal/dtd"
	"dtdevolve/internal/intern"
	"dtdevolve/internal/mine"
	"dtdevolve/internal/validate"
	"dtdevolve/internal/xmltree"
)

// ElementStats is the extended-DTD data structure attached to one element
// declaration (or to a plus element discovered in documents). It is the
// exported, string-keyed view of the recorder's internal ID-keyed tables:
// Stats and Snapshot materialize it, Restore ingests it, and the evolution
// phase consumes it.
type ElementStats struct {
	// Name is the element tag these statistics describe.
	Name string
	// ValidInstances counts instances whose direct content met the
	// declaration (full local similarity).
	ValidInstances int
	// DocsWithValid counts documents containing at least one valid instance.
	DocsWithValid int
	// InvalidInstances counts instances with non-full local similarity.
	InvalidInstances int
	// Labels maps each tag found in non-valid instances to its statistics.
	Labels map[string]*LabelStats
	// Sequences maps the canonical key of each recorded child tag set to
	// the set and its multiplicity.
	Sequences map[string]*SeqStats
	// Groups maps the canonical key of each repetition group to its counter.
	Groups map[string]*GroupStats
	// PresentCount / RepeatCount aggregate over ALL instances (valid and
	// invalid): in how many instances each tag occurs at least once /
	// more than once. They drive the old-window operator restriction.
	PresentCount map[string]int
	RepeatCount  map[string]int
	// PosSum and PosCount accumulate the index of the first occurrence of
	// each tag among the instance's child elements, for ordering rebuilt
	// sequences by dominant document order.
	PosSum   map[string]float64
	PosCount map[string]int
	// TextInstances counts instances (valid or not) carrying non-whitespace
	// character data; a rebuilt declaration must then admit #PCDATA.
	TextInstances int
	// PairCount counts, per unordered tag pair, the instances containing
	// both tags; InterleavedCount counts those in which their occurrences
	// interleave (neither tag's occurrences all precede the other's).
	// Interleaving evidence drives the (x | y)* form during evolution.
	PairCount        map[string]int
	InterleavedCount map[string]int
}

// LabelStats records, for one tag l found in non-valid instances of an
// element e, the paper's per-label structural information.
type LabelStats struct {
	// InvalidWithLabel counts the non-valid instances of e containing l.
	InvalidWithLabel int
	// RepeatedInInvalid counts the non-valid instances of e in which l is
	// repeated more than once.
	RepeatedInInvalid int
	// Child holds nested statistics for the subelements of l when l does
	// not appear in e's declaration (a plus element); nil otherwise.
	Child *ElementStats
}

// SeqStats is one recorded sequence (a child tag set) with its multiplicity.
type SeqStats struct {
	Tags  []string
	Count int
}

// GroupStats is one recorded repetition group with the paper's counter r.
type GroupStats struct {
	Tags []string
	// Count is incremented each time the group is found in an instance.
	Count int
}

func newElementStats(name string) *ElementStats {
	return &ElementStats{
		Name:             name,
		Labels:           make(map[string]*LabelStats),
		Sequences:        make(map[string]*SeqStats),
		Groups:           make(map[string]*GroupStats),
		PresentCount:     make(map[string]int),
		RepeatCount:      make(map[string]int),
		PosSum:           make(map[string]float64),
		PosCount:         make(map[string]int),
		PairCount:        make(map[string]int),
		InterleavedCount: make(map[string]int),
	}
}

// TotalInstances returns the number of recorded instances of the element.
func (s *ElementStats) TotalInstances() int {
	return s.ValidInstances + s.InvalidInstances
}

// InvalidityRatio returns the paper's I(e) = m / n: the fraction of
// recorded instances whose local similarity was below 1. With no recorded
// instances it returns 0 (nothing suggests the declaration is wrong).
func (s *ElementStats) InvalidityRatio() float64 {
	n := s.TotalInstances()
	if n == 0 {
		return 0
	}
	return float64(s.InvalidInstances) / float64(n)
}

// LabelSet returns the paper's Label = ∪ αβ(e_di): all tags found in
// non-valid instances, sorted.
func (s *ElementStats) LabelSet() []string {
	out := make([]string, 0, len(s.Labels))
	for l := range s.Labels {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// Transactions exports the recorded sequences as mining transactions with
// multiplicities.
func (s *ElementStats) Transactions() []mine.Transaction {
	keys := make([]string, 0, len(s.Sequences))
	for k := range s.Sequences {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]mine.Transaction, 0, len(keys))
	for _, k := range keys {
		seq := s.Sequences[k]
		out = append(out, mine.NewTransaction(seq.Tags, seq.Count))
	}
	return out
}

// MeanFirstPosition returns the average first-occurrence index of the tag
// among instance children, used to order rebuilt groups; tags never seen
// sort last.
func (s *ElementStats) MeanFirstPosition(tag string) float64 {
	n := s.PosCount[tag]
	if n == 0 {
		return 1e9
	}
	return s.PosSum[tag] / float64(n)
}

// AlwaysPresent reports whether the tag occurred in every recorded instance.
func (s *ElementStats) AlwaysPresent(tag string) bool {
	return s.TotalInstances() > 0 && s.PresentCount[tag] == s.TotalInstances()
}

// EverRepeated reports whether the tag occurred more than once in any
// recorded instance.
func (s *ElementStats) EverRepeated(tag string) bool {
	return s.RepeatCount[tag] > 0
}

// EverPresent reports whether the tag occurred in any recorded instance.
func (s *ElementStats) EverPresent(tag string) bool {
	return s.PresentCount[tag] > 0
}

// Interleaved reports whether the two tags were ever observed interleaved
// within one instance. A single interleaved instance already falsifies any
// "all x before all y" form, so one observation is evidence enough for the
// (x | y)* shape.
func (s *ElementStats) Interleaved(x, y string) bool {
	return s.InterleavedCount[mine.Key([]string{x, y})] > 0
}

// elemStats is the recorder-internal, ID-keyed counterpart of ElementStats.
type elemStats struct {
	name          string
	valid         int
	docsWithValid int
	invalid       int
	textInstances int
	labels        map[int32]*labelAgg
	// seqs and groups are keyed by the packed bytes of their sorted ID set.
	seqs   map[string]*seqAgg
	groups map[string]*groupAgg
	// Aggregates over all instances, keyed by label ID.
	present  map[int32]int
	repeat   map[int32]int
	posSum   map[int32]float64
	posCount map[int32]int
	pairs    map[pairKey]pairAgg
}

type labelAgg struct {
	invalidWith int
	repeated    int
	child       *elemStats
}

type seqAgg struct {
	ids   []int32 // sorted ascending
	count int
}

type groupAgg struct {
	ids   []int32 // sorted ascending
	count int
}

// pairKey identifies an unordered label pair; a < b.
type pairKey struct {
	a, b int32
}

type pairAgg struct {
	count       int
	interleaved int
}

func newElemStats(name string) *elemStats {
	return &elemStats{
		name:     name,
		labels:   make(map[int32]*labelAgg),
		seqs:     make(map[string]*seqAgg),
		groups:   make(map[string]*groupAgg),
		present:  make(map[int32]int),
		repeat:   make(map[int32]int),
		posSum:   make(map[int32]float64),
		posCount: make(map[int32]int),
		pairs:    make(map[pairKey]pairAgg),
	}
}

func (es *elemStats) invalidityRatio() float64 {
	n := es.valid + es.invalid
	if n == 0 {
		return 0
	}
	return float64(es.invalid) / float64(n)
}

// Recorder accumulates extended-DTD statistics for one DTD over a stream of
// classified documents. It is not safe for concurrent use; the source
// engine serializes access.
type Recorder struct {
	d   *dtd.DTD
	v   *validate.Validator
	tab *intern.Table
	// elements is keyed by the interned ID of the declared element's name.
	elements map[int32]*elemStats
	docs     int
	// invalidMass is Σ over documents of (#non-valid elements / #elements),
	// the numerator of the paper's check-phase trigger condition.
	invalidMass float64
	// declared caches, per content model, the set of its label IDs; used to
	// detect plus elements without re-walking the model per instance.
	declared map[*dtd.Content]map[int32]bool
	// validSeen collects, per document, the IDs of elements with at least
	// one valid instance; reused (cleared) across documents.
	validSeen map[int32]bool
	// scratch is a free list of per-instance buffers: recordInstance
	// recurses into plus elements, and each level needs live buffers.
	scratch []*recScratch
}

// New returns an empty Recorder for d with a private symbol table. To share
// the table with classification pools (so document label stamps stay
// valid), use NewWithTable.
func New(d *dtd.DTD) *Recorder {
	return NewWithTable(d, intern.NewTable())
}

// NewWithTable returns an empty Recorder for d keying its statistics by
// tab's IDs.
func NewWithTable(d *dtd.DTD, tab *intern.Table) *Recorder {
	intern.InternDTD(tab, d)
	return &Recorder{
		d:         d,
		v:         validate.New(d),
		tab:       tab,
		elements:  make(map[int32]*elemStats),
		declared:  make(map[*dtd.Content]map[int32]bool),
		validSeen: make(map[int32]bool),
	}
}

// DTD returns the DTD the recorder is attached to.
func (r *Recorder) DTD() *dtd.DTD { return r.d }

// Table returns the symbol table the recorder keys its statistics by.
func (r *Recorder) Table() *intern.Table { return r.tab }

// Docs returns the number of documents recorded since the last reset.
func (r *Recorder) Docs() int { return r.docs }

// id resolves the interned ID of a document element's tag: the node's
// cached LabelID when it verifiably belongs to this recorder's table, else
// a fresh intern.
// dtdvet:noalloc
func (r *Recorder) id(n *xmltree.Node) int32 {
	if id := n.LabelID(); id > 0 && r.tab.NameIs(id, n.Name) {
		return id
	}
	return r.tab.Intern(n.Name)
}

// DocResult summarizes the recording of one document.
type DocResult struct {
	// Elements is the number of element nodes in the document.
	Elements int
	// Invalid is the number of locally non-valid element nodes.
	Invalid int
}

// InvalidRatio is Invalid / Elements (0 for an empty document).
func (d DocResult) InvalidRatio() float64 {
	if d.Elements == 0 {
		return 0
	}
	return float64(d.Invalid) / float64(d.Elements)
}

// Record extracts the structural information of a classified document and
// merges it into the extended DTD.
// dtdvet:noalloc
func (r *Recorder) Record(doc *xmltree.Document) DocResult {
	return r.RecordElement(doc.Root)
}

// RecordElement records the document subtree rooted at root. The
// steady-state zero-allocation guarantee (alloc_test.go) holds because this
// path reuses pooled scratch buffers; the noalloc annotations keep the
// allocating constructs from creeping back in.
// dtdvet:noalloc
func (r *Recorder) RecordElement(root *xmltree.Node) DocResult {
	if root == nil {
		return DocResult{}
	}
	res := DocResult{}
	clear(r.validSeen)
	r.walk(root, &res)
	for id := range r.validSeen {
		r.elements[id].docsWithValid++
	}
	r.docs++
	r.invalidMass += res.InvalidRatio()
	return res
}

// dtdvet:noalloc
func (r *Recorder) walk(n *xmltree.Node, res *DocResult) {
	res.Elements++
	decl, ok := r.d.Elements[n.Name]
	if ok {
		id := r.id(n)
		stats := r.statsFor(id, n.Name)
		if r.recordInstance(stats, n, decl) {
			r.validSeen[id] = true
		} else {
			res.Invalid++
		}
	} else {
		// An element never declared in the DTD: it is non-valid by
		// definition; its structure is recorded under its parent's label
		// statistics (see recordInstance), not at the top level.
		res.Invalid++
	}
	for _, c := range n.Children {
		if c.Kind == xmltree.Element {
			r.walk(c, res)
		}
	}
}

// recScratch is one reusable set of per-instance buffers. The maps are
// cleared on reuse (retaining buckets); the slices are grow-only.
type recScratch struct {
	counts map[int32]int
	first  map[int32]int
	last   map[int32]int
	order  []int32 // label IDs in first-occurrence order
	set    []int32 // label IDs sorted ascending (the instance's αβ)
	rep    []repEntry
	key    []byte
}

type repEntry struct {
	count int
	id    int32
}

func (r *Recorder) getScratch() *recScratch {
	if n := len(r.scratch); n > 0 {
		sc := r.scratch[n-1]
		r.scratch = r.scratch[:n-1]
		clear(sc.counts)
		clear(sc.first)
		clear(sc.last)
		sc.order = sc.order[:0]
		sc.set = sc.set[:0]
		sc.rep = sc.rep[:0]
		return sc
	}
	return &recScratch{
		counts: make(map[int32]int),
		first:  make(map[int32]int),
		last:   make(map[int32]int),
	}
}

func (r *Recorder) putScratch(sc *recScratch) {
	r.scratch = append(r.scratch, sc)
}

// packIDs appends the little-endian bytes of ids to buf[:0], forming a map
// key for an ID set. Lookups use the m[string(buf)] no-copy idiom; only a
// first insertion materializes the key string.
func packIDs(buf []byte, ids []int32) []byte {
	buf = buf[:0]
	for _, id := range ids {
		buf = append(buf, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
	}
	return buf
}

// recordInstance merges one instance of an element into stats and reports
// whether the instance was locally valid for decl.
func (r *Recorder) recordInstance(stats *elemStats, n *xmltree.Node, decl *dtd.Content) bool {
	sc := r.getScratch()
	defer r.putScratch(sc)

	// One pass over the element children: occurrence counts, first/last
	// positions, first-occurrence order.
	idx := 0
	for _, c := range n.Children {
		if c.Kind != xmltree.Element {
			continue
		}
		id := r.id(c)
		if cnt, seen := sc.counts[id]; seen {
			sc.counts[id] = cnt + 1
		} else {
			sc.counts[id] = 1
			sc.first[id] = idx
			sc.order = append(sc.order, id)
			stats.posSum[id] += float64(idx)
			stats.posCount[id]++
		}
		sc.last[id] = idx
		idx++
	}

	// All-instance aggregates.
	if n.HasText() {
		stats.textInstances++
	}
	for _, id := range sc.order {
		stats.present[id]++
		if sc.counts[id] > 1 {
			stats.repeat[id]++
		}
	}
	for i := 0; i < len(sc.order); i++ {
		for j := i + 1; j < len(sc.order); j++ {
			x, y := sc.order[i], sc.order[j]
			k := pairKey{a: x, b: y}
			if y < x {
				k = pairKey{a: y, b: x}
			}
			pa := stats.pairs[k]
			pa.count++
			// Interleaved: neither tag's occurrences entirely precede the
			// other's.
			if sc.first[x] < sc.last[y] && sc.first[y] < sc.last[x] {
				pa.interleaved++
			}
			stats.pairs[k] = pa
		}
	}

	if decl != nil && r.v.LocalValid(n, decl) {
		stats.valid++
		return true
	}
	stats.invalid++

	// The sequence (αβ of the instance): the sorted set of child label IDs.
	sc.set = append(sc.set[:0], sc.order...)
	sortIDs(sc.set)
	sc.key = packIDs(sc.key, sc.set)
	if seq, ok := stats.seqs[string(sc.key)]; ok {
		seq.count++
	} else {
		stats.seqs[string(sc.key)] = &seqAgg{ids: append([]int32(nil), sc.set...), count: 1}
	}

	// Labels of the non-valid instance; plus elements recurse.
	declared := r.declaredSet(decl)
	for _, id := range sc.set {
		la, ok := stats.labels[id]
		if !ok {
			la = &labelAgg{}
			stats.labels[id] = la
		}
		la.invalidWith++
		if sc.counts[id] > 1 {
			la.repeated++
		}
		// Plus element: record the structure of its instances so a
		// declaration can be deduced for it (paper §3.2, Example 5).
		if !declared[id] {
			if la.child == nil {
				la.child = newElemStats(r.tab.Name(id))
			}
			for _, c := range n.Children {
				if c.Kind == xmltree.Element && r.id(c) == id {
					r.recordInstance(la.child, c, nil)
				}
			}
		}
	}

	// Groups: for each repetition count m > 1, the set of labels repeated
	// exactly m times forms a group (when it has at least two members).
	// Collecting from the sorted set and stably ordering by count keeps
	// each group's IDs ascending.
	for _, id := range sc.set {
		if c := sc.counts[id]; c > 1 {
			sc.rep = append(sc.rep, repEntry{count: c, id: id})
		}
	}
	sortRepByCount(sc.rep)
	for i := 0; i < len(sc.rep); {
		j := i
		for j < len(sc.rep) && sc.rep[j].count == sc.rep[i].count {
			j++
		}
		if j-i >= 2 {
			sc.set = sc.set[:0]
			for k := i; k < j; k++ {
				sc.set = append(sc.set, sc.rep[k].id)
			}
			sc.key = packIDs(sc.key, sc.set)
			if g, ok := stats.groups[string(sc.key)]; ok {
				g.count++
			} else {
				stats.groups[string(sc.key)] = &groupAgg{ids: append([]int32(nil), sc.set...), count: 1}
			}
		}
		i = j
	}
	return false
}

// sortIDs is an insertion sort: instance label sets are small, and this
// avoids any sorting-machinery allocations on the hot path.
func sortIDs(ids []int32) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}

// sortRepByCount stably orders entries by repetition count, preserving the
// ascending-ID order of equal counts.
func sortRepByCount(rep []repEntry) {
	for i := 1; i < len(rep); i++ {
		for j := i; j > 0 && rep[j].count < rep[j-1].count; j-- {
			rep[j], rep[j-1] = rep[j-1], rep[j]
		}
	}
}

// declaredSet returns the cached set of label IDs referenced by decl; nil
// (matching nothing) for a nil model.
func (r *Recorder) declaredSet(decl *dtd.Content) map[int32]bool {
	if decl == nil {
		return nil
	}
	if s, ok := r.declared[decl]; ok {
		return s
	}
	s := make(map[int32]bool)
	for _, l := range decl.Labels() {
		s[r.tab.Intern(l)] = true
	}
	r.declared[decl] = s
	return s
}

// statsFor returns (creating if needed) the statistics entry for a declared
// element.
func (r *Recorder) statsFor(id int32, name string) *elemStats {
	s, ok := r.elements[id]
	if !ok {
		s = newElemStats(name)
		r.elements[id] = s
	}
	return s
}

// Stats returns the recorded statistics for the named element, or nil when
// no instance has been recorded. The returned view is materialized from the
// internal ID-keyed tables; it is a snapshot, not updated by later Records.
func (r *Recorder) Stats(name string) *ElementStats {
	es, ok := r.elements[r.tab.ID(name)]
	if !ok {
		return nil
	}
	return r.materialize(es)
}

// InvalidityRatio returns I(e) for the named element without materializing
// its statistics view (0 when nothing was recorded).
func (r *Recorder) InvalidityRatio(name string) float64 {
	if es, ok := r.elements[r.tab.ID(name)]; ok {
		return es.invalidityRatio()
	}
	return 0
}

// ElementNames returns the names of all elements with recorded statistics,
// sorted.
func (r *Recorder) ElementNames() []string {
	out := make([]string, 0, len(r.elements))
	for id := range r.elements {
		out = append(out, r.tab.Name(id))
	}
	sort.Strings(out)
	return out
}

// CheckRatio returns the paper's check-phase quantity:
//
//	Σ_D (#non-valid elements of D / #elements of D) / #Doc_T
//
// over the documents recorded since the last reset.
func (r *Recorder) CheckRatio() float64 {
	if r.docs == 0 {
		return 0
	}
	return r.invalidMass / float64(r.docs)
}

// ShouldEvolve reports whether the check-phase condition exceeds the
// activation threshold τ.
func (r *Recorder) ShouldEvolve(tau float64) bool {
	return r.docs > 0 && r.CheckRatio() > tau
}

// Reset clears all recorded statistics, e.g. after an evolution step.
func (r *Recorder) Reset() {
	r.elements = make(map[int32]*elemStats)
	r.docs = 0
	r.invalidMass = 0
}

// SetDTD swaps the recorder onto a new (evolved) DTD and clears statistics.
// The symbol table is kept (tables only ever grow): the new DTD's labels
// are interned into it.
func (r *Recorder) SetDTD(d *dtd.DTD) {
	r.d = d
	r.v = validate.New(d)
	r.declared = make(map[*dtd.Content]map[int32]bool)
	intern.InternDTD(r.tab, d)
	r.Reset()
}

// Snapshot is the serializable state of a Recorder (the extended DTD
// statistics), used by the source engine's checkpointing.
type Snapshot struct {
	Docs        int                      `json:"docs"`
	InvalidMass float64                  `json:"invalid_mass"`
	Elements    map[string]*ElementStats `json:"elements"`
}

// Snapshot exports the recorder's statistics, materializing the
// string-keyed view. The result shares no mutable state with the recorder.
func (r *Recorder) Snapshot() *Snapshot {
	elements := make(map[string]*ElementStats, len(r.elements))
	for id, es := range r.elements {
		elements[r.tab.Name(id)] = r.materialize(es)
	}
	return &Snapshot{Docs: r.docs, InvalidMass: r.invalidMass, Elements: elements}
}

// Restore replaces the recorder's statistics with a snapshot previously
// produced by Snapshot (typically after JSON round-tripping).
func (r *Recorder) Restore(s *Snapshot) {
	r.docs = s.Docs
	r.invalidMass = s.InvalidMass
	r.elements = make(map[int32]*elemStats, len(s.Elements))
	for name, es := range s.Elements {
		r.elements[r.tab.Intern(name)] = r.internalize(name, es)
	}
}

// materialize converts the internal ID-keyed statistics into the exported
// string-keyed view.
func (r *Recorder) materialize(es *elemStats) *ElementStats {
	out := newElementStats(es.name)
	out.ValidInstances = es.valid
	out.DocsWithValid = es.docsWithValid
	out.InvalidInstances = es.invalid
	out.TextInstances = es.textInstances
	for id, la := range es.labels {
		ls := &LabelStats{InvalidWithLabel: la.invalidWith, RepeatedInInvalid: la.repeated}
		if la.child != nil {
			ls.Child = r.materialize(la.child)
		}
		out.Labels[r.tab.Name(id)] = ls
	}
	for _, seq := range es.seqs {
		tags := r.sortedNames(seq.ids)
		out.Sequences[mine.Key(tags)] = &SeqStats{Tags: tags, Count: seq.count}
	}
	for _, g := range es.groups {
		tags := r.sortedNames(g.ids)
		out.Groups[mine.Key(tags)] = &GroupStats{Tags: tags, Count: g.count}
	}
	for id, c := range es.present {
		out.PresentCount[r.tab.Name(id)] = c
	}
	for id, c := range es.repeat {
		out.RepeatCount[r.tab.Name(id)] = c
	}
	for id, s := range es.posSum {
		out.PosSum[r.tab.Name(id)] = s
	}
	for id, c := range es.posCount {
		out.PosCount[r.tab.Name(id)] = c
	}
	for k, pa := range es.pairs {
		key := mine.Key([]string{r.tab.Name(k.a), r.tab.Name(k.b)})
		out.PairCount[key] = pa.count
		if pa.interleaved > 0 {
			out.InterleavedCount[key] = pa.interleaved
		}
	}
	return out
}

// sortedNames resolves the IDs and sorts the names, matching the canonical
// tag-set order of the exported view.
func (r *Recorder) sortedNames(ids []int32) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = r.tab.Name(id)
	}
	sort.Strings(out)
	return out
}

// internalize converts an exported view (e.g. decoded from JSON) into the
// internal ID-keyed form, interning every tag it mentions.
func (r *Recorder) internalize(name string, s *ElementStats) *elemStats {
	if s.Name != "" {
		name = s.Name
	}
	es := newElemStats(name)
	es.valid = s.ValidInstances
	es.docsWithValid = s.DocsWithValid
	es.invalid = s.InvalidInstances
	es.textInstances = s.TextInstances
	for label, ls := range s.Labels {
		la := &labelAgg{invalidWith: ls.InvalidWithLabel, repeated: ls.RepeatedInInvalid}
		if ls.Child != nil {
			la.child = r.internalize(label, ls.Child)
		}
		es.labels[r.tab.Intern(label)] = la
	}
	for _, seq := range s.Sequences {
		ids := r.internIDs(seq.Tags)
		es.seqs[string(packIDs(nil, ids))] = &seqAgg{ids: ids, count: seq.Count}
	}
	for _, g := range s.Groups {
		ids := r.internIDs(g.Tags)
		es.groups[string(packIDs(nil, ids))] = &groupAgg{ids: ids, count: g.Count}
	}
	for tag, c := range s.PresentCount {
		es.present[r.tab.Intern(tag)] = c
	}
	for tag, c := range s.RepeatCount {
		es.repeat[r.tab.Intern(tag)] = c
	}
	for tag, sum := range s.PosSum {
		es.posSum[r.tab.Intern(tag)] = sum
	}
	for tag, c := range s.PosCount {
		es.posCount[r.tab.Intern(tag)] = c
	}
	for key, c := range s.PairCount {
		if k, ok := r.pairKeyOf(key); ok {
			pa := es.pairs[k]
			pa.count = c
			es.pairs[k] = pa
		}
	}
	for key, c := range s.InterleavedCount {
		if k, ok := r.pairKeyOf(key); ok {
			pa := es.pairs[k]
			pa.interleaved = c
			es.pairs[k] = pa
		}
	}
	return es
}

// internIDs interns the tags and returns their IDs sorted ascending.
func (r *Recorder) internIDs(tags []string) []int32 {
	ids := make([]int32, len(tags))
	for i, t := range tags {
		ids[i] = r.tab.Intern(t)
	}
	sortIDs(ids)
	return ids
}

// pairKeyOf parses a canonical pair key (mine.Key of two tags) back into an
// ID pair.
func (r *Recorder) pairKeyOf(key string) (pairKey, bool) {
	sep := strings.IndexByte(key, 0)
	if sep < 0 {
		return pairKey{}, false
	}
	a, b := r.tab.Intern(key[:sep]), r.tab.Intern(key[sep+1:])
	if b < a {
		a, b = b, a
	}
	return pairKey{a: a, b: b}, true
}
