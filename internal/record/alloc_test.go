package record

// Allocation-budget regression test (DESIGN.md §9): recording a document
// whose shape has been seen before must not allocate — all per-instance
// bookkeeping lives in pooled scratch, and the ID-keyed stat tables only
// grow on first sight of a label, sequence or group.

import (
	"testing"

	"dtdevolve/internal/gen"
)

func TestRecordSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under the race detector")
	}
	g := gen.New(gen.DefaultConfig(6))
	d := g.RandomDTD("root", 8)
	docs := g.MutatedDocuments(d, 6, 3, 0.6)
	r := New(d)
	for _, doc := range docs { // warm up: create stat rows for every shape
		r.Record(doc)
	}
	i := 0
	allocs := testing.AllocsPerRun(100, func() {
		r.Record(docs[i%len(docs)])
		i++
	})
	if allocs != 0 {
		t.Errorf("Record allocates %.1f objects/op at steady state, want 0", allocs)
	}
}
