package record

// Equivalence tests for the streaming recorder (stream.go): a document
// streamed through a StreamRecorder and committed lane-by-lane must leave
// every Recorder in exactly the state Record(doc) would have — compared
// snapshot-deep and as JSON checkpoint bytes — including cross-family
// documents (undeclared roots, plus elements) and pooled reuse across
// documents.

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"dtdevolve/internal/dtd"
	"dtdevolve/internal/gen"
	"dtdevolve/internal/intern"
	"dtdevolve/internal/validate"
	"dtdevolve/internal/xmltree"
)

func loadCorpus(t *testing.T, dir string) (*dtd.DTD, []*xmltree.Document) {
	t.Helper()
	dtds, err := filepath.Glob(filepath.Join(dir, "*.dtd"))
	if err != nil || len(dtds) != 1 {
		t.Fatalf("globbing %s: %v (%d DTDs)", dir, err, len(dtds))
	}
	d, err := dtd.ParseFile(dtds[0])
	if err != nil {
		t.Fatal(err)
	}
	xmls, err := filepath.Glob(filepath.Join(dir, "*.xml"))
	if err != nil || len(xmls) == 0 {
		t.Fatalf("globbing %s: %v (%d docs)", dir, err, len(xmls))
	}
	var docs []*xmltree.Document
	for _, path := range xmls {
		doc, err := xmltree.ParseFile(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		docs = append(docs, doc)
	}
	return d, docs
}

// streamDoc replays doc's event stream into sr, computing each lane's
// validity bit the way the tree recorder does (decl != nil && LocalValid),
// and optionally degrading the element closed at index degradeAt.
func streamDoc(sr *StreamRecorder, vs []*validate.Validator, doc *xmltree.Document, degradeAt int) {
	sr.Begin()
	tab := sr.Table()
	valids := make([]bool, sr.Lanes())
	closed := 0
	var walk func(n *xmltree.Node)
	walk = func(n *xmltree.Node) {
		sr.Start(tab.Intern(n.Name), n.Name)
		for _, c := range n.Children {
			switch c.Kind {
			case xmltree.Element:
				walk(c)
			case xmltree.Text:
				sr.Text(strings.TrimSpace(c.Data) != "")
			}
		}
		if closed == degradeAt {
			sr.DegradeTop()
		}
		closed++
		for i := 0; i < sr.Lanes(); i++ {
			d := sr.Lane(i).DTD()
			decl := d.Elements[n.Name]
			valids[i] = closed-1 != degradeAt && decl != nil && vs[i].LocalValid(n, decl)
		}
		sr.End(valids)
	}
	walk(doc.Root)
}

// checkRecorders compares a tree recorder and a stream-committed recorder
// snapshot-deep and as checkpoint JSON bytes.
func checkRecorders(t *testing.T, label string, tree, stream *Recorder) {
	t.Helper()
	ts, ss := tree.Snapshot(), stream.Snapshot()
	if !reflect.DeepEqual(ts, ss) {
		t.Errorf("%s: snapshots differ", label)
		tj, _ := json.Marshal(ts)
		sj, _ := json.Marshal(ss)
		t.Logf("tree:   %s", tj)
		t.Logf("stream: %s", sj)
		return
	}
	tj, err := json.Marshal(ts)
	if err != nil {
		t.Fatal(err)
	}
	sj, err := json.Marshal(ss)
	if err != nil {
		t.Fatal(err)
	}
	if string(tj) != string(sj) {
		t.Errorf("%s: snapshot JSON differs\ntree:   %s\nstream: %s", label, tj, sj)
	}
}

// runEquivalence streams every document through one shared StreamRecorder
// (pooled-reuse shape), committing every lane, and requires each resulting
// recorder to match its tree twin exactly.
func runEquivalence(t *testing.T, label string, ds []*dtd.DTD, docs []*xmltree.Document) {
	t.Helper()
	tab := intern.NewTable()
	sr := NewStreamRecorder(tab)
	sr.SetLanes(ds)
	vs := make([]*validate.Validator, len(ds))
	treeRecs := make([]*Recorder, len(ds))
	streamRecs := make([]*Recorder, len(ds))
	for i, d := range ds {
		vs[i] = validate.New(d)
		treeRecs[i] = NewWithTable(d, tab)
		streamRecs[i] = NewWithTable(d, tab)
	}
	for di, doc := range docs {
		streamDoc(sr, vs, doc, -1)
		for i := range ds {
			want := treeRecs[i].Record(doc)
			got := sr.CommitTo(i, streamRecs[i])
			if got != want {
				t.Errorf("%s doc %d lane %d: DocResult stream %+v tree %+v", label, di, i, got, want)
			}
		}
	}
	for i := range ds {
		checkRecorders(t, fmt.Sprintf("%s lane %d", label, i), treeRecs[i], streamRecs[i])
	}
}

// TestStreamRecorderMatchesRecorderCorpus runs the streaming recorder over
// the full testdata corpus with both DTD lanes live, cross-family.
func TestStreamRecorderMatchesRecorderCorpus(t *testing.T) {
	feedDTD, feedDocs := loadCorpus(t, filepath.Join("..", "..", "testdata", "feeds"))
	playDTD, playDocs := loadCorpus(t, filepath.Join("..", "..", "testdata", "plays"))
	docs := append(append([]*xmltree.Document{}, feedDocs...), playDocs...)
	runEquivalence(t, "corpus", []*dtd.DTD{feedDTD, playDTD}, docs)
}

// TestStreamRecorderMatchesRecorderRandom fuzzes the streaming recorder
// with generated DTDs and heavily mutated documents (plus elements,
// repeated labels, undeclared tags) across multiple lanes.
func TestStreamRecorderMatchesRecorderRandom(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		g := gen.New(gen.DefaultConfig(seed))
		a := g.RandomDTD("root", 8)
		b := g.RandomDTD("root", 6)
		docs := append(g.MutatedDocuments(a, 10, 3, 0.7), g.MutatedDocuments(b, 10, 3, 0.7)...)
		runEquivalence(t, fmt.Sprintf("seed %d", seed), []*dtd.DTD{a, b}, docs)
	}
}

// TestStreamRecorderPaperExample2 re-runs the paper's Example 2 scenario
// through the streaming path and checks the recorded group/label structure
// against the tree recorder.
func TestStreamRecorderPaperExample2(t *testing.T) {
	d := dtd.MustParse(paperExample2DTD)
	d1 := parseDoc(t, `<a><b>1</b><c>1</c><b>2</b><c>2</c><d>x</d><d>y</d><d>z</d></a>`)
	d2 := parseDoc(t, `<a><b>1</b><c>1</c><e>w</e></a>`)
	runEquivalence(t, "example2", []*dtd.DTD{d},
		[]*xmltree.Document{d1, d1, d1, d2, d2})
}

// TestStreamRecorderDegradeDeterministic pins the degradation semantics:
// the same document degraded at the same element produces bit-identical
// recorder state on repeat runs (the property sdoc WAL replay relies on),
// and the degraded instance records as invalid.
func TestStreamRecorderDegradeDeterministic(t *testing.T) {
	g := gen.New(gen.DefaultConfig(7))
	d := g.RandomDTD("root", 8)
	docs := g.MutatedDocuments(d, 6, 3, 0.7)
	run := func() *Recorder {
		tab := intern.NewTable()
		sr := NewStreamRecorder(tab)
		sr.SetLanes([]*dtd.DTD{d})
		vs := []*validate.Validator{validate.New(d)}
		rec := NewWithTable(d, tab)
		for _, doc := range docs {
			// Degrade the root (last element to close).
			streamDoc(sr, vs, doc, countNodes(doc.Root)-1)
			sr.CommitTo(0, rec)
		}
		return rec
	}
	a, b := run(), run()
	aj, _ := json.Marshal(a.Snapshot())
	bj, _ := json.Marshal(b.Snapshot())
	if string(aj) != string(bj) {
		t.Errorf("degraded runs diverge:\n%s\n%s", aj, bj)
	}
	if st := a.Stats(d.Name); st != nil && st.ValidInstances != 0 {
		t.Errorf("degraded root recorded %d valid instances, want 0", st.ValidInstances)
	}
}

// TestStreamRecorderAbortViaBegin checks that a document abandoned
// mid-stream (parse error path) leaves no residue: Begin discards it and
// the next document records exactly as if the abort never happened.
func TestStreamRecorderAbortViaBegin(t *testing.T) {
	d := dtd.MustParse(paperExample2DTD)
	tab := intern.NewTable()
	sr := NewStreamRecorder(tab)
	sr.SetLanes([]*dtd.DTD{d})
	vs := []*validate.Validator{validate.New(d)}

	// Abandon a document with two open frames.
	sr.Begin()
	sr.Start(tab.Intern("a"), "a")
	sr.Start(tab.Intern("b"), "b")
	sr.Text(true)

	doc := parseDoc(t, `<a><b>1</b><c>1</c></a>`)
	streamDoc(sr, vs, doc, -1)
	stream := NewWithTable(d, tab)
	sr.CommitTo(0, stream)

	tree := NewWithTable(d, tab)
	tree.Record(doc)
	checkRecorders(t, "after abort", tree, stream)
}

func countNodes(n *xmltree.Node) int {
	c := 1
	for _, ch := range n.Children {
		if ch.Kind == xmltree.Element {
			c += countNodes(ch)
		}
	}
	return c
}
