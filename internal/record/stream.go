package record

// Streaming recording (DESIGN.md §15). The tree path records a document
// after classification by walking the materialized *xmltree.Node tree
// (Recorder.Record). The streaming path cannot buffer the document — the
// winner DTD is only known once the root closes — so a StreamRecorder
// records speculatively: it maintains one DTD-independent aggregate per
// open element (the same per-instance counts recordInstance derives in its
// one-pass loop) plus one delta lane per registered DTD, and at commit
// time merges only the winning lane's delta into that DTD's Recorder.
// The merged statistics are bit-identical to Record(doc) on the winner
// (stream_test.go pins this over the corpus and generated documents):
// every counter is an exact integer sum, and the only float accumulator
// (posSum) adds integer-valued terms, so merge order cannot perturb it.
//
// Memory is bounded by the open-element path, the number of distinct
// labels per element (capped by the caller's max-children budget via
// DegradeTop) and the schema-sized delta tables — never by document
// length. The nil-record machinery replaces recordInstance's recursion
// into already-closed plus-element children: every closing element folds
// its instance, under a nil declaration, into its parent's childNil table,
// and an invalid instance deep-adds childNil[l] into Labels[l].Child for
// each undeclared label l — exactly the sum recordInstance would have
// computed child by child.
//
// All per-close structures are pooled and map-clear-reused, and seq/group
// map keys are interned in a per-StreamRecorder cache, so the steady-state
// per-event loop allocates nothing once the document's shapes have been
// seen (alloc gate: BenchmarkStreamIngest).

import (
	"dtdevolve/internal/dtd"
	"dtdevolve/internal/intern"
)

// recFrame is the DTD-independent aggregate of one open element: exactly
// the per-instance buffers recordInstance fills in its one-pass loop over
// the children, plus the childNil table feeding plus-element statistics.
type recFrame struct {
	id   int32
	name string
	// counts/first/last/order mirror recScratch: occurrence counts,
	// first/last positions among element children, first-occurrence order.
	counts map[int32]int
	first  map[int32]int
	last   map[int32]int
	order  []int32
	// childNil accumulates, per child label, the nil-declaration record of
	// every closed child bearing it (the streaming stand-in for
	// recordInstance(la.child, c, nil)).
	childNil map[int32]*elemStats
	// idx is the element-child index (text children do not advance it).
	idx      int
	hasText  bool
	degraded bool
}

// grpScratch is one repetition group computed at element close.
type grpScratch struct {
	ids []int32
	key []byte
}

// closeScratch holds the per-close derived data shared by every lane: the
// sorted label set, its packed sequence key, and the repetition groups.
type closeScratch struct {
	set     []int32
	seqKey  []byte
	rep     []repEntry
	groups  []grpScratch
	ngroups int
}

// RecLane accumulates the recording delta of the current document against
// one DTD. Deltas are private to the lane until CommitTo merges them into
// a Recorder, so lanes can be filled without holding the source lock.
type RecLane struct {
	d   *dtd.DTD
	tab *intern.Table
	// declared caches, per content model, the interned set of its labels —
	// the lane's own cache, never the Recorder's (which is lock-guarded).
	declared map[*dtd.Content]map[int32]bool
	// delta is keyed by the interned ID of the declared element's name.
	delta     map[int32]*elemStats
	validSeen map[int32]bool
	invalid   int
}

func newRecLane(d *dtd.DTD, tab *intern.Table) *RecLane {
	return &RecLane{
		d:         d,
		tab:       tab,
		declared:  make(map[*dtd.Content]map[int32]bool),
		delta:     make(map[int32]*elemStats),
		validSeen: make(map[int32]bool),
	}
}

// DTD returns the DTD this lane records against.
func (l *RecLane) DTD() *dtd.DTD { return l.d }

func (l *RecLane) reset(sr *StreamRecorder) {
	for _, es := range l.delta {
		sr.putStats(es)
	}
	clear(l.delta)
	clear(l.validSeen)
	l.invalid = 0
}

// declaredSet mirrors Recorder.declaredSet on the lane's private cache.
func (l *RecLane) declaredSet(decl *dtd.Content) map[int32]bool {
	if decl == nil {
		return nil
	}
	if s, ok := l.declared[decl]; ok {
		return s
	}
	s := make(map[int32]bool)
	for _, lbl := range decl.Labels() {
		s[l.tab.Intern(lbl)] = true
	}
	l.declared[decl] = s
	return s
}

// closeElement mirrors one step of Recorder.walk for the closing element:
// declared names get an instance recorded (valid is the caller-computed
// decl != nil && LocalValid bit), undeclared names only count as invalid.
// dtdvet:noalloc
func (l *RecLane) closeElement(sr *StreamRecorder, f *recFrame, valid bool) {
	decl, ok := l.d.Elements[f.name]
	if !ok {
		l.invalid++
		return
	}
	es := l.delta[f.id]
	if es == nil {
		es = sr.getStats(f.name)
		l.delta[f.id] = es
	}
	sr.applyInstance(es, f, l.declaredSet(decl), valid)
	if valid {
		l.validSeen[f.id] = true
	} else {
		l.invalid++
	}
}

// StreamRecorder drives speculative per-DTD recording over one document's
// event stream. It is not safe for concurrent use; callers pool whole
// recorders (one per in-flight streaming ingest).
type StreamRecorder struct {
	tab      *intern.Table
	lanes    []*RecLane
	frames   []recFrame
	n        int
	elements int
	cl       closeScratch
	// keys canonicalizes packed seq/group map keys so steady-state
	// re-insertion into cleared pooled maps does not re-materialize them.
	keys map[string]string
	// Free lists for the per-document structures.
	statsPool []*elemStats
	laPool    []*labelAgg
	seqPool   []*seqAgg
	grpPool   []*groupAgg
}

// NewStreamRecorder returns a StreamRecorder keying statistics by tab's
// IDs. Every Recorder later passed to CommitTo must share the same table.
func NewStreamRecorder(tab *intern.Table) *StreamRecorder {
	return &StreamRecorder{tab: tab, keys: make(map[string]string)}
}

// Table returns the symbol table the recorder keys its statistics by.
func (sr *StreamRecorder) Table() *intern.Table { return sr.tab }

// SetLanes (re)binds the recorder to one lane per DTD, in the given order.
// Lanes whose DTD pointer is unchanged are reused, keeping their
// declared-set caches warm across documents.
func (sr *StreamRecorder) SetLanes(ds []*dtd.DTD) {
	old := make(map[*dtd.DTD]*RecLane, len(sr.lanes))
	for _, l := range sr.lanes {
		old[l.d] = l
	}
	lanes := sr.lanes[:0]
	if cap(lanes) < len(ds) {
		lanes = make([]*RecLane, 0, len(ds))
	}
	for _, d := range ds {
		if l, ok := old[d]; ok {
			lanes = append(lanes, l)
			delete(old, d)
			continue
		}
		intern.InternDTD(sr.tab, d)
		lanes = append(lanes, newRecLane(d, sr.tab))
	}
	sr.lanes = lanes
}

// Lanes returns the number of bound lanes.
func (sr *StreamRecorder) Lanes() int { return len(sr.lanes) }

// Lane returns the i-th lane.
func (sr *StreamRecorder) Lane(i int) *RecLane { return sr.lanes[i] }

// Begin resets the recorder for a new document, releasing any state left
// by a previous (possibly aborted) one.
func (sr *StreamRecorder) Begin() {
	for i := sr.n - 1; i >= 0; i-- {
		sr.releaseFrame(&sr.frames[i])
	}
	sr.n = 0
	sr.elements = 0
	for _, l := range sr.lanes {
		l.reset(sr)
	}
}

// Start opens one element. name must remain valid until the matching End
// (interned names satisfy this); id must be name's ID in the recorder's
// table.
// dtdvet:noalloc
func (sr *StreamRecorder) Start(id int32, name string) {
	sr.elements++
	if sr.n == len(sr.frames) {
		sr.growFrames()
	}
	f := &sr.frames[sr.n]
	sr.n++
	f.id, f.name = id, name
	f.idx, f.hasText, f.degraded = 0, false, false
	f.order = f.order[:0]
}

// growFrames extends the frame stack by one level — the only allocation
// tied to document shape, paid once per depth level ever reached and
// reused for every later document.
func (sr *StreamRecorder) growFrames() {
	sr.frames = append(sr.frames, recFrame{
		counts:   make(map[int32]int),
		first:    make(map[int32]int),
		last:     make(map[int32]int),
		childNil: make(map[int32]*elemStats),
	})
}

// Text notes one text child of the open element; nonWS reports whether it
// carries non-whitespace data (the HasText condition).
// dtdvet:noalloc
func (sr *StreamRecorder) Text(nonWS bool) {
	if nonWS && sr.n > 0 {
		sr.frames[sr.n-1].hasText = true
	}
}

// DegradeTop marks the open element as over budget: labels not yet seen
// among its children are dropped from its instance statistics from here on
// (bounding the per-frame tables); already-seen labels keep full counts.
// The budget is a byte of the journaled streaming record, so replay
// degrades identically.
func (sr *StreamRecorder) DegradeTop() {
	if sr.n > 0 {
		sr.frames[sr.n-1].degraded = true
	}
}

// End closes the open element, recording one instance into every lane.
// valids[i] must be lane i's decl != nil && LocalValid bit for the
// element (false for degraded elements).
// dtdvet:noalloc
func (sr *StreamRecorder) End(valids []bool) {
	f := &sr.frames[sr.n-1]
	sr.computeClose(f)
	for i, l := range sr.lanes {
		l.closeElement(sr, f, valids[i])
	}
	if sr.n > 1 {
		sr.registerChild(&sr.frames[sr.n-2], f)
	}
	sr.releaseFrame(f)
	sr.n--
}

// Elements returns the number of elements streamed since Begin.
func (sr *StreamRecorder) Elements() int { return sr.elements }

// DocResult returns lane i's document summary (walk's DocResult).
func (sr *StreamRecorder) DocResult(lane int) DocResult {
	return DocResult{Elements: sr.elements, Invalid: sr.lanes[lane].invalid}
}

// CommitTo merges lane i's delta into r — the winning DTD's recorder —
// reproducing exactly the state Record(doc) would have left. r must share
// the recorder's symbol table. The iteration order over the delta maps is
// observable only through map-key insertion (all counters are commutative
// sums), so replayed commits converge to identical snapshots.
func (sr *StreamRecorder) CommitTo(lane int, r *Recorder) DocResult {
	l := sr.lanes[lane]
	for id, es := range l.delta {
		addStats(nil, r.statsFor(id, es.name), es)
	}
	for id := range l.validSeen {
		r.elements[id].docsWithValid++
	}
	res := sr.DocResult(lane)
	r.docs++
	r.invalidMass += res.InvalidRatio()
	return res
}

// registerChild folds the closing child f into its parent's aggregate —
// the streaming counterpart of one iteration of recordInstance's one-pass
// child loop — and deep-adds f's nil-record into the parent's childNil.
// dtdvet:noalloc
func (sr *StreamRecorder) registerChild(p, f *recFrame) {
	id := f.id
	if cnt, seen := p.counts[id]; seen {
		p.counts[id] = cnt + 1
		p.last[id] = p.idx
	} else {
		if p.degraded {
			// Over budget: a label first seen after degradation is
			// invisible to the parent's instance statistics (and does not
			// advance the child index), keeping the frame tables bounded.
			return
		}
		p.counts[id] = 1
		p.first[id] = p.idx
		p.last[id] = p.idx
		p.order = append(p.order, id)
	}
	cn := p.childNil[id]
	if cn == nil {
		cn = sr.getStats(f.name)
		p.childNil[id] = cn
	}
	sr.applyInstance(cn, f, nil, false)
	p.idx++
}

// computeClose derives the close-time data every lane shares: the sorted
// label set (αβ), its packed key, and the repetition groups — mirroring
// the sequence/group blocks of recordInstance.
// dtdvet:noalloc
func (sr *StreamRecorder) computeClose(f *recFrame) {
	cl := &sr.cl
	cl.set = append(cl.set[:0], f.order...)
	sortIDs(cl.set)
	cl.seqKey = packIDs(cl.seqKey, cl.set)
	cl.rep = cl.rep[:0]
	for _, id := range cl.set {
		if c := f.counts[id]; c > 1 {
			cl.rep = append(cl.rep, repEntry{count: c, id: id})
		}
	}
	sortRepByCount(cl.rep)
	cl.ngroups = 0
	for i := 0; i < len(cl.rep); {
		j := i
		for j < len(cl.rep) && cl.rep[j].count == cl.rep[i].count {
			j++
		}
		if j-i >= 2 {
			if cl.ngroups == len(cl.groups) {
				cl.groups = append(cl.groups, grpScratch{})
			}
			g := &cl.groups[cl.ngroups]
			cl.ngroups++
			g.ids = g.ids[:0]
			for k := i; k < j; k++ {
				g.ids = append(g.ids, cl.rep[k].id)
			}
			g.key = packIDs(g.key, g.ids)
		}
		i = j
	}
}

// applyInstance merges one instance of the closing element — frame f plus
// the close scratch — into target, mirroring recordInstance exactly.
// declared is the declaration's interned label set (nil for the
// nil-record); valid is the instance's local validity.
// dtdvet:noalloc
func (sr *StreamRecorder) applyInstance(target *elemStats, f *recFrame, declared map[int32]bool, valid bool) {
	for _, id := range f.order {
		target.posSum[id] += float64(f.first[id])
		target.posCount[id]++
		target.present[id]++
		if f.counts[id] > 1 {
			target.repeat[id]++
		}
	}
	if f.hasText {
		target.textInstances++
	}
	for i := 0; i < len(f.order); i++ {
		for j := i + 1; j < len(f.order); j++ {
			x, y := f.order[i], f.order[j]
			k := pairKey{a: x, b: y}
			if y < x {
				k = pairKey{a: y, b: x}
			}
			pa := target.pairs[k]
			pa.count++
			if f.first[x] < f.last[y] && f.first[y] < f.last[x] {
				pa.interleaved++
			}
			target.pairs[k] = pa
		}
	}
	if valid {
		target.valid++
		return
	}
	target.invalid++
	cl := &sr.cl
	if sa, ok := target.seqs[string(cl.seqKey)]; ok { // dtdvet:allow noalloc -- map-index string(b) is the compiler's no-copy special case
		sa.count++
	} else {
		target.seqs[sr.internKey(cl.seqKey)] = sr.getSeqAgg(cl.set, 1)
	}
	for _, id := range cl.set {
		la, ok := target.labels[id]
		if !ok {
			la = sr.getLabelAgg()
			target.labels[id] = la
		}
		la.invalidWith++
		if f.counts[id] > 1 {
			la.repeated++
		}
		if declared[id] {
			continue
		}
		// Plus element: childNil[id] is the sum of the nil-declaration
		// records of every child bearing the label — what recordInstance
		// computes by recursing into each such child.
		cn := f.childNil[id]
		if cn == nil {
			continue
		}
		if la.child == nil {
			la.child = sr.getStats(cn.name)
		}
		addStats(sr, la.child, cn)
	}
	for gi := 0; gi < cl.ngroups; gi++ {
		g := &cl.groups[gi]
		if ga, ok := target.groups[string(g.key)]; ok { // dtdvet:allow noalloc -- map-index string(b) is the compiler's no-copy special case
			ga.count++
		} else {
			target.groups[sr.internKey(g.key)] = sr.getGroupAgg(g.ids, 1)
		}
	}
}

// addStats deep-adds src into dst. New nested structures come from sr's
// pools when sr is non-nil (the streaming hot path) and from the heap when
// nil (CommitTo targets outlive the StreamRecorder). dst never aliases
// src's mutable state.
func addStats(sr *StreamRecorder, dst, src *elemStats) {
	dst.valid += src.valid
	dst.docsWithValid += src.docsWithValid
	dst.invalid += src.invalid
	dst.textInstances += src.textInstances
	for id, la := range src.labels {
		dla, ok := dst.labels[id]
		if !ok {
			if sr != nil {
				dla = sr.getLabelAgg()
			} else {
				dla = &labelAgg{}
			}
			dst.labels[id] = dla
		}
		dla.invalidWith += la.invalidWith
		dla.repeated += la.repeated
		if la.child != nil {
			if dla.child == nil {
				if sr != nil {
					dla.child = sr.getStats(la.child.name)
				} else {
					dla.child = newElemStats(la.child.name)
				}
			}
			addStats(sr, dla.child, la.child)
		}
	}
	for k, sa := range src.seqs {
		if da, ok := dst.seqs[k]; ok {
			da.count += sa.count
		} else if sr != nil {
			dst.seqs[k] = sr.getSeqAgg(sa.ids, sa.count)
		} else {
			dst.seqs[k] = &seqAgg{ids: append([]int32(nil), sa.ids...), count: sa.count}
		}
	}
	for k, ga := range src.groups {
		if da, ok := dst.groups[k]; ok {
			da.count += ga.count
		} else if sr != nil {
			dst.groups[k] = sr.getGroupAgg(ga.ids, ga.count)
		} else {
			dst.groups[k] = &groupAgg{ids: append([]int32(nil), ga.ids...), count: ga.count}
		}
	}
	for id, c := range src.present {
		dst.present[id] += c
	}
	for id, c := range src.repeat {
		dst.repeat[id] += c
	}
	for id, s := range src.posSum {
		dst.posSum[id] += s
	}
	for id, c := range src.posCount {
		dst.posCount[id] += c
	}
	for k, pa := range src.pairs {
		da := dst.pairs[k]
		da.count += pa.count
		da.interleaved += pa.interleaved
		dst.pairs[k] = da
	}
}

// releaseFrame pools the frame's childNil entries and clears its maps.
func (sr *StreamRecorder) releaseFrame(f *recFrame) {
	for _, cn := range f.childNil {
		sr.putStats(cn)
	}
	clear(f.childNil)
	clear(f.counts)
	clear(f.first)
	clear(f.last)
	f.order = f.order[:0]
}

// internKey canonicalizes a packed seq/group key so repeat insertions into
// cleared pooled maps reuse one materialized string.
func (sr *StreamRecorder) internKey(b []byte) string {
	if s, ok := sr.keys[string(b)]; ok {
		return s
	}
	s := string(b)
	sr.keys[s] = s
	return s
}

func (sr *StreamRecorder) getStats(name string) *elemStats {
	if n := len(sr.statsPool); n > 0 {
		es := sr.statsPool[n-1]
		sr.statsPool = sr.statsPool[:n-1]
		es.name = name
		return es
	}
	return newElemStats(name)
}

// putStats recursively returns es (cleared) and its nested structures to
// the free lists. es must not be referenced anywhere after the call.
func (sr *StreamRecorder) putStats(es *elemStats) {
	es.valid, es.docsWithValid, es.invalid, es.textInstances = 0, 0, 0, 0
	for _, la := range es.labels {
		if la.child != nil {
			sr.putStats(la.child)
			la.child = nil
		}
		la.invalidWith, la.repeated = 0, 0
		sr.laPool = append(sr.laPool, la)
	}
	clear(es.labels)
	for _, sa := range es.seqs {
		sr.seqPool = append(sr.seqPool, sa)
	}
	clear(es.seqs)
	for _, ga := range es.groups {
		sr.grpPool = append(sr.grpPool, ga)
	}
	clear(es.groups)
	clear(es.present)
	clear(es.repeat)
	clear(es.posSum)
	clear(es.posCount)
	clear(es.pairs)
	sr.statsPool = append(sr.statsPool, es)
}

func (sr *StreamRecorder) getLabelAgg() *labelAgg {
	if n := len(sr.laPool); n > 0 {
		la := sr.laPool[n-1]
		sr.laPool = sr.laPool[:n-1]
		return la
	}
	return &labelAgg{}
}

func (sr *StreamRecorder) getSeqAgg(ids []int32, count int) *seqAgg {
	if n := len(sr.seqPool); n > 0 {
		sa := sr.seqPool[n-1]
		sr.seqPool = sr.seqPool[:n-1]
		sa.ids = append(sa.ids[:0], ids...)
		sa.count = count
		return sa
	}
	return &seqAgg{ids: append([]int32(nil), ids...), count: count}
}

func (sr *StreamRecorder) getGroupAgg(ids []int32, count int) *groupAgg {
	if n := len(sr.grpPool); n > 0 {
		ga := sr.grpPool[n-1]
		sr.grpPool = sr.grpPool[:n-1]
		ga.ids = append(ga.ids[:0], ids...)
		ga.count = count
		return ga
	}
	return &groupAgg{ids: append([]int32(nil), ids...), count: count}
}
