package record

import (
	"encoding/json"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"dtdevolve/internal/dtd"
	"dtdevolve/internal/mine"
	"dtdevolve/internal/xmltree"
)

func parseDoc(t *testing.T, src string) *xmltree.Document {
	t.Helper()
	doc, err := xmltree.ParseString(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return doc
}

// paperExample2DTD is the DTD of Figure 3(a): a contains a sequence of b
// and c. (The figure's exact declaration is not reproduced in the text; a
// sequence (b, c) matches the narrative: documents add d* or e after it.)
const paperExample2DTD = `
<!ELEMENT a (b, c)>
<!ELEMENT b (#PCDATA)>
<!ELEMENT c (#PCDATA)>`

// TestPaperExample2 reproduces Example 2 / Figure 3: two document families
// are classified against the DTD. D1 documents contain a sequence of b and
// c followed by a sequence of d elements; D2 documents contain the b, c
// sequence followed by one e. The extended DTD must record the label set
// {b, c, d, e} for a, the group {b, c} (b and c always repeated the same
// number of times), the repeatability of d and the optionality of d and e.
func TestPaperExample2(t *testing.T) {
	d := dtd.MustParse(paperExample2DTD)
	r := New(d)

	// D1: <a> (b c)x2 d d d </a> — b, c repeated twice, three d's.
	d1 := `<a><b>1</b><c>1</c><b>2</b><c>2</c><d>x</d><d>y</d><d>z</d></a>`
	// D2: <a> b c e </a>.
	d2 := `<a><b>1</b><c>1</c><e>w</e></a>`
	for i := 0; i < 3; i++ {
		r.Record(parseDoc(t, d1))
	}
	for i := 0; i < 2; i++ {
		r.Record(parseDoc(t, d2))
	}

	s := r.Stats("a")
	if s == nil {
		t.Fatal("no stats for a")
	}
	if s.InvalidInstances != 5 || s.ValidInstances != 0 {
		t.Errorf("instances: valid %d invalid %d, want 0/5", s.ValidInstances, s.InvalidInstances)
	}
	if got := s.LabelSet(); !reflect.DeepEqual(got, []string{"b", "c", "d", "e"}) {
		t.Errorf("Label = %v, want [b c d e]", got)
	}
	// The group {b, c}: recorded once per D1 document (b and c both occur
	// twice there); D2 has no repetition.
	g := s.Groups[mine.Key([]string{"b", "c"})]
	if g == nil || g.Count != 3 {
		t.Errorf("group {b,c} = %+v, want count 3", g)
	}
	// d is repeatable (three occurrences in D1) and optional (absent in D2).
	if !s.EverRepeated("d") {
		t.Error("d should be recorded as repeated")
	}
	if s.AlwaysPresent("d") {
		t.Error("d should not be always present")
	}
	if s.AlwaysPresent("e") {
		t.Error("e should not be always present")
	}
	if s.EverRepeated("e") {
		t.Error("e should not be repeated")
	}
	// Sequences: {b,c,d} with multiplicity 3 and {b,c,e} with 2.
	seqD := s.Sequences[mine.Key([]string{"b", "c", "d"})]
	seqE := s.Sequences[mine.Key([]string{"b", "c", "e"})]
	if seqD == nil || seqD.Count != 3 {
		t.Errorf("sequence {b,c,d} = %+v, want count 3", seqD)
	}
	if seqE == nil || seqE.Count != 2 {
		t.Errorf("sequence {b,c,e} = %+v, want count 2", seqE)
	}
	// Per-label info: d appears in 3 invalid instances, repeated in all 3.
	ld := s.Labels["d"]
	if ld == nil || ld.InvalidWithLabel != 3 || ld.RepeatedInInvalid != 3 {
		t.Errorf("label d = %+v, want 3/3", ld)
	}
	// d and e are plus elements: nested stats must exist and record that
	// their instances carry only text (no child labels).
	if ld.Child == nil {
		t.Fatal("no nested stats for plus element d")
	}
	if ld.Child.InvalidInstances != 9 { // 3 docs × 3 d's
		t.Errorf("nested d instances = %d, want 9", ld.Child.InvalidInstances)
	}
	if len(ld.Child.LabelSet()) != 0 {
		t.Errorf("nested d labels = %v, want none", ld.Child.LabelSet())
	}
	// b and c are declared: no nested recording.
	if s.Labels["b"].Child != nil {
		t.Error("declared label b must not get nested stats")
	}
}

func TestValidInstancesCounted(t *testing.T) {
	d := dtd.MustParse(paperExample2DTD)
	r := New(d)
	res := r.Record(parseDoc(t, `<a><b>1</b><c>2</c></a>`))
	if res.Elements != 3 || res.Invalid != 0 {
		t.Errorf("result = %+v, want 3 elements, 0 invalid", res)
	}
	s := r.Stats("a")
	if s.ValidInstances != 1 || s.InvalidInstances != 0 {
		t.Errorf("a stats = %d/%d", s.ValidInstances, s.InvalidInstances)
	}
	if s.DocsWithValid != 1 {
		t.Errorf("DocsWithValid = %d", s.DocsWithValid)
	}
	// Valid instances record no sequences.
	if len(s.Sequences) != 0 {
		t.Errorf("sequences = %v, want none", s.Sequences)
	}
	// But aggregates still see them (for operator restriction).
	if !s.AlwaysPresent("b") {
		t.Error("b should be always present")
	}
}

func TestDocsWithValidCountsDocumentsNotInstances(t *testing.T) {
	d := dtd.MustParse(`<!ELEMENT r (a*)> <!ELEMENT a EMPTY>`)
	r := New(d)
	r.Record(parseDoc(t, `<r><a/><a/><a/></r>`))
	s := r.Stats("a")
	if s.ValidInstances != 3 {
		t.Errorf("valid instances = %d, want 3", s.ValidInstances)
	}
	if s.DocsWithValid != 1 {
		t.Errorf("DocsWithValid = %d, want 1", s.DocsWithValid)
	}
}

func TestInvalidityRatio(t *testing.T) {
	d := dtd.MustParse(`<!ELEMENT r (a)> <!ELEMENT a EMPTY>`)
	r := New(d)
	r.Record(parseDoc(t, `<r><a/></r>`))      // valid r
	r.Record(parseDoc(t, `<r><a/><a/></r>`))  // invalid r
	r.Record(parseDoc(t, `<r><zz/><a/></r>`)) // invalid r
	s := r.Stats("r")
	if got := s.InvalidityRatio(); got != 2.0/3.0 {
		t.Errorf("I(r) = %v, want 2/3", got)
	}
	if got := r.Stats("a").InvalidityRatio(); got != 0 {
		t.Errorf("I(a) = %v, want 0", got)
	}
	var empty ElementStats
	if got := empty.InvalidityRatio(); got != 0 {
		t.Errorf("I(no instances) = %v, want 0", got)
	}
}

func TestCheckPhaseTrigger(t *testing.T) {
	d := dtd.MustParse(`<!ELEMENT r (a)> <!ELEMENT a EMPTY>`)
	r := New(d)
	// Valid document: ratio 0.
	r.Record(parseDoc(t, `<r><a/></r>`))
	if r.CheckRatio() != 0 {
		t.Errorf("check ratio = %v, want 0", r.CheckRatio())
	}
	if r.ShouldEvolve(0.1) {
		t.Error("should not evolve on a valid corpus")
	}
	// Document with 1 of 2 elements invalid: doc ratio 0.5.
	r.Record(parseDoc(t, `<r><a><zz/></a></r>`)) // a invalid (EMPTY with content), zz invalid too
	// That document has 3 elements (r, a, zz): r valid, a invalid, zz
	// undeclared => invalid: ratio 2/3. Mass = 0 + 2/3 over 2 docs = 1/3.
	want := (0.0 + 2.0/3.0) / 2.0
	if got := r.CheckRatio(); got != want {
		t.Errorf("check ratio = %v, want %v", got, want)
	}
	if !r.ShouldEvolve(0.2) {
		t.Error("should evolve at τ = 0.2")
	}
	if r.ShouldEvolve(0.5) {
		t.Error("should not evolve at τ = 0.5")
	}
}

func TestUndeclaredElementsRecordedUnderParent(t *testing.T) {
	d := dtd.MustParse(`<!ELEMENT r (a)> <!ELEMENT a EMPTY>`)
	r := New(d)
	r.Record(parseDoc(t, `<r><a/><extra><inner>txt</inner></extra></r>`))
	if r.Stats("extra") != nil {
		t.Error("undeclared element must not appear at top level")
	}
	s := r.Stats("r")
	le := s.Labels["extra"]
	if le == nil || le.Child == nil {
		t.Fatal("extra not recorded under r")
	}
	if got := le.Child.LabelSet(); !reflect.DeepEqual(got, []string{"inner"}) {
		t.Errorf("nested labels of extra = %v, want [inner]", got)
	}
	// Deep nesting: inner recorded under extra's nested stats.
	li := le.Child.Labels["inner"]
	if li == nil || li.Child == nil {
		t.Fatal("inner not recorded under extra")
	}
	if li.Child.InvalidInstances != 1 {
		t.Errorf("inner nested instances = %d", li.Child.InvalidInstances)
	}
}

func TestTransactionsExport(t *testing.T) {
	d := dtd.MustParse(`<!ELEMENT r (x)> <!ELEMENT x EMPTY>`)
	r := New(d)
	r.Record(parseDoc(t, `<r><x/><y/></r>`))
	r.Record(parseDoc(t, `<r><x/><y/></r>`))
	r.Record(parseDoc(t, `<r><z/></r>`))
	txs := r.Stats("r").Transactions()
	if len(txs) != 2 {
		t.Fatalf("transactions = %v, want 2 distinct", txs)
	}
	table := mine.NewTable(txs)
	if table.Total() != 3 {
		t.Errorf("total = %d, want 3", table.Total())
	}
	if got := table.Support([]string{"x", "y"}); got != 2.0/3.0 {
		t.Errorf("support(x,y) = %v", got)
	}
}

func TestMeanFirstPositionOrdering(t *testing.T) {
	d := dtd.MustParse(`<!ELEMENT r (q)> <!ELEMENT q EMPTY>`)
	r := New(d)
	r.Record(parseDoc(t, `<r><one/><two/><three/></r>`))
	r.Record(parseDoc(t, `<r><one/><two/><three/></r>`))
	s := r.Stats("r")
	p1, p2, p3 := s.MeanFirstPosition("one"), s.MeanFirstPosition("two"), s.MeanFirstPosition("three")
	if !(p1 < p2 && p2 < p3) {
		t.Errorf("positions = %v, %v, %v, want increasing", p1, p2, p3)
	}
	if s.MeanFirstPosition("never") <= p3 {
		t.Error("unseen tag should sort last")
	}
}

func TestResetAndSetDTD(t *testing.T) {
	d := dtd.MustParse(`<!ELEMENT r (a)> <!ELEMENT a EMPTY>`)
	r := New(d)
	r.Record(parseDoc(t, `<r><b/></r>`))
	if r.Docs() != 1 || r.Stats("r") == nil {
		t.Fatal("recording did not happen")
	}
	r.Reset()
	if r.Docs() != 0 || r.Stats("r") != nil || r.CheckRatio() != 0 {
		t.Error("reset incomplete")
	}
	d2 := dtd.MustParse(`<!ELEMENT r (b)> <!ELEMENT b EMPTY>`)
	r.SetDTD(d2)
	r.Record(parseDoc(t, `<r><b/></r>`))
	if s := r.Stats("r"); s.ValidInstances != 1 {
		t.Error("recorder not re-validating against the new DTD")
	}
	if r.DTD() != d2 {
		t.Error("DTD() should return the new DTD")
	}
}

func TestRepeatedSequencesAggregate(t *testing.T) {
	d := dtd.MustParse(`<!ELEMENT r (x)> <!ELEMENT x EMPTY>`)
	r := New(d)
	for i := 0; i < 50; i++ {
		r.Record(parseDoc(t, `<r><x/><pad/></r>`))
	}
	s := r.Stats("r")
	if len(s.Sequences) != 1 {
		t.Fatalf("distinct sequences = %d, want 1 (aggregation)", len(s.Sequences))
	}
	for _, seq := range s.Sequences {
		if seq.Count != 50 {
			t.Errorf("sequence count = %d, want 50", seq.Count)
		}
	}
}

func TestElementNames(t *testing.T) {
	d := dtd.MustParse(`<!ELEMENT r (b, a)> <!ELEMENT a EMPTY> <!ELEMENT b EMPTY>`)
	r := New(d)
	r.Record(parseDoc(t, `<r><b/><a/></r>`))
	if got := r.ElementNames(); !reflect.DeepEqual(got, []string{"a", "b", "r"}) {
		t.Errorf("names = %v", got)
	}
}

func TestLargeFanoutRecording(t *testing.T) {
	d := dtd.MustParse(`<!ELEMENT r (x*)> <!ELEMENT x EMPTY>`)
	r := New(d)
	var b strings.Builder
	b.WriteString("<r>")
	for i := 0; i < 500; i++ {
		fmt.Fprintf(&b, "<x/>")
	}
	b.WriteString("<odd/></r>")
	res := r.Record(parseDoc(t, b.String()))
	if res.Elements != 502 {
		t.Errorf("elements = %d", res.Elements)
	}
	s := r.Stats("r")
	if !s.EverRepeated("x") {
		t.Error("x repetition lost")
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	d := dtd.MustParse(`<!ELEMENT r (a)> <!ELEMENT a EMPTY>`)
	r := New(d)
	r.Record(parseDoc(t, `<r><a/><b><deep/></b></r>`))
	r.Record(parseDoc(t, `<r><a/></r>`))

	data, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatal(err)
	}
	r2 := New(d)
	r2.Restore(&snap)
	if r2.Docs() != r.Docs() || r2.CheckRatio() != r.CheckRatio() {
		t.Errorf("docs/ratio = %d/%v, want %d/%v", r2.Docs(), r2.CheckRatio(), r.Docs(), r.CheckRatio())
	}
	s1, s2 := r.Stats("r"), r2.Stats("r")
	if s2 == nil || s2.InvalidInstances != s1.InvalidInstances {
		t.Fatalf("restored stats = %+v", s2)
	}
	if !reflect.DeepEqual(s1.LabelSet(), s2.LabelSet()) {
		t.Errorf("labels = %v vs %v", s1.LabelSet(), s2.LabelSet())
	}
	// Nested plus-element stats survive the round trip.
	if s2.Labels["b"].Child == nil || s2.Labels["b"].Child.LabelSet()[0] != "deep" {
		t.Error("nested stats lost")
	}
	// Restoring a sparse snapshot initializes all maps.
	r3 := New(d)
	r3.Restore(&Snapshot{Docs: 1, Elements: map[string]*ElementStats{"r": {}}})
	if r3.Stats("r").LabelSet() == nil && r3.Stats("r").Labels == nil {
		t.Error("sparse restore left nil maps")
	}
	if !r3.Stats("r").EverPresent("nothing") == true {
		// EverPresent on empty stats must simply be false, not panic.
		_ = r3
	}
	if r3.Stats("r").EverPresent("x") {
		t.Error("EverPresent on empty stats")
	}
	// Restore with nil elements map.
	r3.Restore(&Snapshot{})
	if r3.Docs() != 0 || r3.Stats("r") != nil {
		t.Error("nil-elements restore incomplete")
	}
}
