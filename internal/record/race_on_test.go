//go:build race

package record

// raceEnabled reports whether the race detector is active. Allocation-count
// tests are skipped under -race: instrumentation allocates, and sync.Pool
// intentionally drops items to expose races.
const raceEnabled = true
