package classify

import (
	"reflect"
	"testing"

	"dtdevolve/internal/dtd"
	"dtdevolve/internal/intern"
	"dtdevolve/internal/similarity"
	"dtdevolve/internal/xmltree"
)

func persistDTD(t *testing.T, src, root string) *dtd.DTD {
	t.Helper()
	d, err := dtd.ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	d.Name = root
	return d
}

var persistCorpus = map[string]string{
	"article": `
<!ELEMENT article (title, body)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT body (#PCDATA)>`,
	"invoice": `
<!ELEMENT invoice (item+, total)>
<!ELEMENT item (name, price)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT price (#PCDATA)>
<!ELEMENT total (#PCDATA)>`,
	"memo": `
<!ELEMENT memo (to, from, body?)>
<!ELEMENT to (#PCDATA)>
<!ELEMENT from (#PCDATA)>
<!ELEMENT body ANY>`,
}

// TestSetFromSnapshotEquivalence is the round-trip property: a classifier
// rebuilt from persisted signatures must classify identically to one that
// computed them — same winner, same score, same pruning decisions.
func TestSetFromSnapshotEquivalence(t *testing.T) {
	built := New(0.7, similarity.DefaultConfig())
	for name, src := range persistCorpus {
		built.Set(name, persistDTD(t, src, name))
	}

	// Re-seed a fresh table in the original ID order, exactly like source
	// snapshot v2 restoration does.
	tab := intern.NewTable()
	tab.InternAll(built.Table().Names())
	restored := NewWithTable(0.7, similarity.DefaultConfig(), tab)
	for name, src := range persistCorpus {
		snap := built.SigSnapshot(name)
		if snap == nil {
			t.Fatalf("SigSnapshot(%q) = nil", name)
		}
		if !restored.SetFromSnapshot(name, persistDTD(t, src, name), snap) {
			t.Fatalf("SetFromSnapshot(%q) rejected its own round trip", name)
		}
	}

	docs := []string{
		`<article><title>t</title><body>b</body></article>`,
		`<invoice><item><name>n</name><price>1</price></item><total>1</total></invoice>`,
		`<memo><to>a</to><from>b</from></memo>`,
		`<article><title>t</title><author>x</author><body>b</body></article>`,
		`<alien><x/><y/></alien>`,
	}
	for _, src := range docs {
		doc, err := xmltree.ParseString(src)
		if err != nil {
			t.Fatal(err)
		}
		got := restored.Classify(doc)
		want := built.Classify(doc)
		got.Candidates, want.Candidates = nil, nil // order among ties may differ
		if got.DTDName != want.DTDName || got.Classified != want.Classified || got.Similarity != want.Similarity {
			t.Errorf("doc %s:\n restored: %+v\n built:    %+v", src, got, want)
		}
	}
	// The pruning index itself must be identical: same posting behavior
	// shows up as the same candidate counts on a probe document.
	doc, _ := xmltree.ParseString(docs[0])
	restored.Classify(doc)
	built.Classify(doc)
	gs, bs := restored.Stats(), built.Stats()
	if !reflect.DeepEqual(gs, bs) {
		t.Errorf("index stats diverge:\n restored: %+v\n built:    %+v", gs, bs)
	}
}

// TestSetFromSnapshotRejectsMismatches checks every defensive gate: a
// rejected snapshot means the caller falls back to a full rebuild, so
// rejection (not panic, not silent corruption) is the contract.
func TestSetFromSnapshotRejectsMismatches(t *testing.T) {
	built := New(0.7, similarity.DefaultConfig())
	d := persistDTD(t, persistCorpus["article"], "article")
	built.Set("article", d)
	good := built.SigSnapshot("article")

	fresh := func() (*Classifier, *dtd.DTD) {
		tab := intern.NewTable()
		tab.InternAll(built.Table().Names())
		return NewWithTable(0.7, similarity.DefaultConfig(), tab),
			persistDTD(t, persistCorpus["article"], "article")
	}

	c, dd := fresh()
	if c.SetFromSnapshot("article", dd, nil) {
		t.Error("nil snapshot accepted")
	}

	c, dd = fresh()
	bad := *good
	bad.DepthCap = good.DepthCap + 1
	if c.SetFromSnapshot("article", dd, &bad) {
		t.Error("depth-cap mismatch accepted (the reach bound would be unsound)")
	}

	c, dd = fresh()
	bad = *good
	bad.Root = "other"
	if c.SetFromSnapshot("article", dd, &bad) {
		t.Error("root mismatch accepted")
	}

	c, dd = fresh()
	bad = *good
	bad.Declared = bad.Declared[:len(bad.Declared)-1]
	if c.SetFromSnapshot("article", dd, &bad) {
		t.Error("truncated declared set accepted")
	}

	c, dd = fresh()
	bad = *good
	bad.Labels = append(append([]int32(nil), good.Labels...), 9999)
	if c.SetFromSnapshot("article", dd, &bad) {
		t.Error("out-of-range label ID accepted")
	}

	// A DTD that genuinely differs from the snapshotted one (extra element)
	// must be rejected: the signature would misprune.
	c, _ = fresh()
	grown := persistDTD(t, persistCorpus["article"]+`
<!ELEMENT extra (#PCDATA)>`, "article")
	if c.SetFromSnapshot("article", grown, good) {
		t.Error("stale snapshot accepted for a changed DTD")
	}

	// After every rejection, the plain Set fallback must still work.
	c, dd = fresh()
	c.Set("article", dd)
	doc, _ := xmltree.ParseString(`<article><title>t</title><body>b</body></article>`)
	if res := c.Classify(doc); !res.Classified {
		t.Errorf("fallback Set classifier broken: %+v", res)
	}
}
