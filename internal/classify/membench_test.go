package classify

import (
	"fmt"
	"runtime"
	"testing"

	"dtdevolve/internal/dtd"
	"dtdevolve/internal/intern"
	"dtdevolve/internal/similarity"
)

// memShapeSrc builds the i-th DTD shape for the memory benchmark: a root
// with a few elements shared across shapes (so posting lists grow long, the
// worst case for the index) and a few unique to the shape (so the alphabet
// keeps growing, the worst case for the symbol table).
func memShapeSrc(i int) string {
	return fmt.Sprintf(`
<!ELEMENT root%[1]d (title, body, u%[1]da, u%[1]db*)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT body (para+)>
<!ELEMENT para (#PCDATA)>
<!ELEMENT u%[1]da (#PCDATA)>
<!ELEMENT u%[1]db (para)>`, i)
}

// BenchmarkClassifyIndexMemory100k reports the resident cost of the
// candidate-pruning index alone — dtdSig structs, the sigs map and the
// inverted posting lists — per registered DTD, at 100k DTDs. Everything a
// registration shares or amortizes (the DTD AST, the evaluator pool, the
// symbol table) is built once per shape before the measurement, so the
// bytes/DTD number is the marginal footprint a deployment pays for each
// additional DTD in a many-DTD registry; DESIGN.md §12 quotes it.
//
// Not in the CI bench set: forced GCs make its ns/op meaningless and the
// 100k inner loop makes it slow. Run by hand:
//
//	go test -run xxx -bench ClassifyIndexMemory100k ./internal/classify
func BenchmarkClassifyIndexMemory100k(b *testing.B) {
	const n = 100_000
	const shapes = 16
	cfg := similarity.DefaultConfig()
	tab := intern.NewTable()
	type shape struct {
		d    *dtd.DTD
		pool *similarity.Pool
	}
	built := make([]shape, shapes)
	for i := range built {
		d, err := dtd.ParseString(memShapeSrc(i))
		if err != nil {
			b.Fatal(err)
		}
		d.Name = fmt.Sprintf("root%d", i)
		// The pool interns every label of d into the shared table, so the
		// measured loop allocates no symbols.
		built[i] = shape{d: d, pool: similarity.NewPoolWithTable(d, cfg, tab)}
	}

	var bytesPerDTD float64
	var m0, m1 runtime.MemStats
	for it := 0; it < b.N; it++ {
		c := NewWithTable(0.7, cfg, tab)
		b.StopTimer()
		runtime.GC()
		runtime.ReadMemStats(&m0)
		b.StartTimer()
		for i := 0; i < n; i++ {
			s := built[i%shapes]
			name := fmt.Sprintf("dtd-%06d", i)
			g := buildSig(name, s.d, s.pool)
			c.mu.Lock()
			c.dtds[name] = s.d
			c.sigs[name] = g
			c.indexLocked(g)
			c.mu.Unlock()
		}
		b.StopTimer()
		runtime.GC()
		runtime.ReadMemStats(&m1)
		bytesPerDTD = float64(m1.HeapAlloc-m0.HeapAlloc) / n
		b.StartTimer()
		runtime.KeepAlive(c)
	}
	b.ReportMetric(bytesPerDTD, "bytes/DTD")
	b.ReportMetric(float64(n), "DTDs")
}
