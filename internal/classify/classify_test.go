package classify

import (
	"fmt"
	"sync"
	"testing"

	"dtdevolve/internal/dtd"
	"dtdevolve/internal/similarity"
	"dtdevolve/internal/xmltree"
)

func parseDoc(t *testing.T, src string) *xmltree.Document {
	t.Helper()
	doc, err := xmltree.ParseString(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return doc
}

func testDTDs() map[string]*dtd.DTD {
	catalog := dtd.MustParse(`
<!ELEMENT catalog (product+)>
<!ELEMENT product (name, price)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT price (#PCDATA)>`)
	catalog.Name = "catalog"
	article := dtd.MustParse(`
<!ELEMENT article (title, body)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT body (#PCDATA)>`)
	article.Name = "article"
	return map[string]*dtd.DTD{"catalog": catalog, "article": article}
}

func newClassifier(sigma float64) *Classifier {
	c := New(sigma, similarity.DefaultConfig())
	for name, d := range testDTDs() {
		c.Set(name, d)
	}
	return c
}

func TestClassifyValidDocuments(t *testing.T) {
	c := newClassifier(0.7)
	cases := map[string]string{
		`<catalog><product><name>x</name><price>1</price></product></catalog>`: "catalog",
		`<article><title>t</title><body>b</body></article>`:                    "article",
	}
	for src, want := range cases {
		res := c.Classify(parseDoc(t, src))
		if !res.Classified || res.DTDName != want || res.Similarity != 1 {
			t.Errorf("Classify(%s) = %+v, want %s with similarity 1", src, res, want)
		}
	}
}

func TestClassifyNearMiss(t *testing.T) {
	c := newClassifier(0.5)
	// A product catalog missing prices: similar to catalog, not article.
	res := c.Classify(parseDoc(t, `<catalog><product><name>x</name></product></catalog>`))
	if res.DTDName != "catalog" || !res.Classified {
		t.Errorf("res = %+v, want classified in catalog", res)
	}
	if res.Similarity >= 1 {
		t.Errorf("similarity = %v, want < 1", res.Similarity)
	}
	if res.All != nil {
		t.Errorf("Classify filled All (%v); exhaustive scores are opt-in", res.All)
	}
	all := c.ClassifyExhaustive(parseDoc(t, `<catalog><product><name>x</name></product></catalog>`))
	if sim, ok := all.All["article"]; !ok || sim != 0 {
		t.Errorf("similarity vs article = %v (present %v), want 0 (root mismatch)", sim, ok)
	}
	if all.DTDName != res.DTDName || all.Similarity != res.Similarity || all.Classified != res.Classified {
		t.Errorf("exhaustive result %+v differs from pruned %+v", all, res)
	}
}

func TestClassifyBelowThresholdGoesUnclassified(t *testing.T) {
	c := newClassifier(0.95)
	res := c.Classify(parseDoc(t, `<catalog><junk/><junk/><junk/></catalog>`))
	if res.Classified {
		t.Errorf("res = %+v, want unclassified at σ = 0.95", res)
	}
	if res.DTDName != "catalog" {
		t.Errorf("best DTD = %q, want catalog even when below threshold", res.DTDName)
	}
}

func TestClassifyUnknownRoot(t *testing.T) {
	c := newClassifier(0.3)
	res := c.Classify(parseDoc(t, `<mystery><a/></mystery>`))
	if res.Classified || res.Similarity != 0 {
		t.Errorf("res = %+v, want unclassified with similarity 0", res)
	}
}

func TestClassifyEmptySet(t *testing.T) {
	c := New(0.5, similarity.DefaultConfig())
	res := c.Classify(parseDoc(t, `<a/>`))
	if res.Classified || res.DTDName != "" {
		t.Errorf("res = %+v, want nothing on empty set", res)
	}
}

func TestSetReplaceAndRemove(t *testing.T) {
	c := newClassifier(0.5)
	if got := len(c.Names()); got != 2 {
		t.Fatalf("names = %v", c.Names())
	}
	relaxed := dtd.MustParse(`<!ELEMENT catalog ANY>`)
	relaxed.Name = "catalog"
	c.Set("catalog", relaxed)
	if c.DTD("catalog") != relaxed {
		t.Error("Set did not replace")
	}
	c.Remove("article")
	if got := len(c.Names()); got != 1 {
		t.Errorf("names after remove = %v", c.Names())
	}
	if c.Sigma() != 0.5 {
		t.Errorf("sigma = %v", c.Sigma())
	}
}

func TestValidatorClassifierBaseline(t *testing.T) {
	vc := NewValidator(testDTDs())
	if name, ok := vc.Classify(parseDoc(t, `<article><title>t</title><body>b</body></article>`)); !ok || name != "article" {
		t.Errorf("valid doc: %q, %v", name, ok)
	}
	// The paper's core argument: a slightly deviating document is rejected
	// outright by the validator baseline...
	deviant := parseDoc(t, `<article><title>t</title><subtitle>s</subtitle><body>b</body></article>`)
	if _, ok := vc.Classify(deviant); ok {
		t.Error("validator accepted a non-valid document")
	}
	// ...but retained by the similarity classifier.
	c := newClassifier(0.6)
	if res := c.Classify(deviant); !res.Classified || res.DTDName != "article" {
		t.Errorf("similarity classifier lost the deviant document: %+v", res)
	}
}

// TestClassifyConcurrent runs many concurrent classifications (with a Set
// replacing a DTD in flight) and checks each result is internally
// consistent and matches one of the two possible DTD-set states. Run with
// -race.
func TestClassifyConcurrent(t *testing.T) {
	c := newClassifier(0.5)
	docs := []*xmltree.Document{
		parseDoc(t, `<article><title>t</title><body>b</body></article>`),
		parseDoc(t, `<catalog><product><name>n</name><price>1</price></product></catalog>`),
		parseDoc(t, `<article><title>t</title><body>b</body><extra>x</extra></article>`),
	}
	want := make([]Result, len(docs))
	for i, doc := range docs {
		want[i] = c.Classify(doc)
	}
	done := make(chan struct{})
	go func() { // churn the set while classifications run
		defer close(done)
		d := testDTDs()["article"]
		for i := 0; i < 50; i++ {
			c.Set("article", d)
		}
	}()
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := (g + i) % len(docs)
				got := c.Classify(docs[k])
				if got.DTDName != want[k].DTDName || got.Similarity != want[k].Similarity {
					errs <- fmt.Sprintf("doc %d: got (%s, %v), want (%s, %v)",
						k, got.DTDName, got.Similarity, want[k].DTDName, want[k].Similarity)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	<-done
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}
