// Structural signatures for candidate pruning (DESIGN.md §12).
//
// Classification at registry scale cannot afford one DP alignment per
// registered DTD per document. Both sides get a cheap structural summary
// over interned label IDs:
//
//   - a dtdSig is computed once per DTD at Set time: the declared root,
//     the label alphabet as a bitset, per-element child alphabets, and a
//     reachability depth — plus the similarity.Bound constants;
//   - a docSig is extracted in one pass over the document tree: per-label
//     and per-(parent,child)-pair decayed weights, a per-level weight
//     profile, and the text bonus.
//
// Together they yield a conservative upper bound on the global similarity
// the document can score against the DTD: the common components c are
// capped by the document weight carried on labels the DTD knows (refined
// by pair and depth eligibility), and — when every referenced label is
// declared — the plus components p are at least the weight the DTD cannot
// match. Feeding both into Bound.Max gives the skip test of the exact
// mode; see DESIGN.md §12 for the soundness argument.
package classify

import (
	"sort"
	"strings"

	"dtdevolve/internal/dtd"
	"dtdevolve/internal/intern"
	"dtdevolve/internal/similarity"
	"dtdevolve/internal/xmltree"
)

// labelBits is a dense bitset over interned label IDs.
type labelBits []uint64

// makeLabelBits returns a bitset containing the given IDs.
func makeLabelBits(ids []int32) labelBits {
	var max int32
	for _, id := range ids {
		if id > max {
			max = id
		}
	}
	b := make(labelBits, int(max)/64+1)
	for _, id := range ids {
		if id > 0 {
			b[int(id)>>6] |= 1 << (uint(id) & 63)
		}
	}
	return b
}

// has reports whether id is in the set; None and out-of-range IDs are not.
func (b labelBits) has(id int32) bool {
	if id <= 0 {
		return false
	}
	w := int(id) >> 6
	return w < len(b) && b[w]&(1<<(uint(id)&63)) != 0
}

// dtdSig is the structural signature of one registered DTD, built outside
// the classifier lock at Set time. All fields are immutable afterwards;
// the classifier's inverted index stores pointers to it.
type dtdSig struct {
	name  string
	d     *dtd.DTD
	pool  *similarity.Pool
	bound similarity.Bound

	// rootName is the declared root; "" matches any document root.
	rootName string
	// labels is the sorted distinct alphabet (declared element names plus
	// every label referenced by a content model) — the posting keys.
	labels []int32
	// declared holds the declared element names; a document can only score
	// non-zero when its root tag is in here (exact matching).
	declared labelBits
	// childAlpha maps a declared element's ID to the alphabet of labels its
	// content model admits as direct children (the declared set for ANY and
	// nil models). Elements with no admissible children (EMPTY, #PCDATA)
	// map to an empty set.
	childAlpha map[int32]labelBits
	// reach is the deepest document level at which a common component can
	// occur: matched nodes form childAlpha chains from the declared root.
	reach int
	// refsUndeclared is set when some content model references a label the
	// DTD never declares. The aligner matches such an element without
	// recursing, so its subtree contributes neither common nor plus weight
	// and the plus lower bound must collapse to 0.
	refsUndeclared bool
}

// buildSig computes the signature of d under the pool's configuration.
// The pool has already interned every label of d, so the snapshot resolves
// them all.
func buildSig(name string, d *dtd.DTD, pool *similarity.Pool) *dtdSig {
	g := &dtdSig{name: name, d: d, pool: pool, bound: pool.Bound(), rootName: d.Name}
	v := pool.Table().View()
	declaredIDs := make([]int32, 0, len(d.Elements))
	labelSet := make(map[int32]bool, 2*len(d.Elements))
	for el := range d.Elements {
		id := v.ID(el)
		declaredIDs = append(declaredIDs, id)
		labelSet[id] = true
	}
	g.declared = makeLabelBits(declaredIDs)
	g.childAlpha = make(map[int32]labelBits, len(d.Elements))
	for el, model := range d.Elements {
		id := v.ID(el)
		if model == nil || model.Kind == dtd.Any {
			g.childAlpha[id] = g.declared // ANY admits every declared element
			continue
		}
		kids := model.Labels()
		ids := make([]int32, 0, len(kids))
		for _, k := range kids {
			ids = append(ids, v.ID(k))
			labelSet[v.ID(k)] = true
			if _, ok := d.Elements[k]; !ok {
				g.refsUndeclared = true
			}
		}
		g.childAlpha[id] = makeLabelBits(ids)
	}
	g.labels = make([]int32, 0, len(labelSet))
	for id := range labelSet {
		if id > 0 {
			g.labels = append(g.labels, id)
		}
	}
	sort.Slice(g.labels, func(i, j int) bool { return g.labels[i] < g.labels[j] })
	g.reach = computeReach(d, g.bound.DepthCap())
	return g
}

// computeReach bounds the deepest document level at which a common
// component can occur against d: matched document nodes form a connected
// tree whose labels follow childAlpha edges from the declared root, so no
// level beyond the longest such chain (capped at the recursion cap) can
// hold a match. A DTD without a declared root matches any declared element
// at level 0, so only the cap applies.
func computeReach(d *dtd.DTD, depthCap int) int {
	if d.Name == "" {
		return depthCap
	}
	if _, ok := d.Elements[d.Name]; !ok {
		return 0 // undeclared root: only the root itself could ever match
	}
	frontier := map[string]bool{d.Name: true}
	reach := 0
	for level := 0; level < depthCap; level++ {
		next := make(map[string]bool)
		for el := range frontier {
			model, ok := d.Elements[el]
			if !ok {
				continue // undeclared reference: a leaf of the chain graph
			}
			if model == nil || model.Kind == dtd.Any {
				for name := range d.Elements {
					next[name] = true
				}
			} else {
				for _, k := range model.Labels() {
					next[k] = true
				}
			}
		}
		if len(next) == 0 {
			break
		}
		reach = level + 1
		if sameNameSet(frontier, next) {
			return depthCap // a cycle sustains itself to the cap
		}
		frontier = next
	}
	return reach
}

func sameNameSet(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// docSig is the structural signature of one document, extracted in a
// single tree pass over cached label IDs. Weights mirror the measure's
// level accounting: a node at level ℓ carries decay^ℓ, and levels beyond
// the recursion cap (which the aligner never charges as common) are not
// walked.
type docSig struct {
	rootID   int32
	rootName string
	// labels / labelW: distinct interned element labels and the total
	// weight carried on each (sorted by ID, so accumulation over postings
	// is deterministic).
	labels []int32
	labelW []float64
	// pairs / pairW: distinct (parentID<<32 | ownID) label pairs of
	// non-root elements whose tags are both interned, with total weight.
	pairs []uint64
	pairW []float64
	// levels[ℓ] is the total element weight at level ℓ; total is their sum
	// — the weight the aligner charges as plus for a fully unmatched
	// document (restricted to walked levels, which only understates it).
	levels []float64
	total  float64
	// textBonus caps the common weight attainable from character data:
	// decay^(ℓ+1) for every element at level ℓ < cap with non-blank text.
	textBonus float64
}

// sigID resolves a node's interned tag ID from the snapshot, trusting the
// stamped LabelID only when it verifiably belongs to this table. Unknown
// tags stay None — signature extraction never extends the table.
func sigID(n *xmltree.Node, v intern.View) int32 {
	if id := n.LabelID(); id > 0 && v.NameIs(id, n.Name) {
		return id
	}
	return v.ID(n.Name)
}

// extractSig computes the signature of the subtree rooted at root against
// the label alphabet in v, with the given decay and recursion cap.
func extractSig(root *xmltree.Node, v intern.View, decay float64, depthCap int) *docSig {
	s := &docSig{levels: make([]float64, depthCap+1)}
	if root == nil || !root.IsElement() {
		return s
	}
	s.rootName = root.Name
	s.rootID = sigID(root, v)
	pow := make([]float64, depthCap+2)
	p := 1.0
	for i := range pow {
		pow[i] = p
		p *= decay
	}
	lw := make(map[int32]float64)
	pw := make(map[uint64]float64)
	var walk func(n *xmltree.Node, parent int32, level int)
	walk = func(n *xmltree.Node, parent int32, level int) {
		id := sigID(n, v)
		w := pow[level]
		s.levels[level] += w
		s.total += w
		if id != intern.None {
			lw[id] += w
			if level > 0 && parent != intern.None {
				pw[uint64(uint32(parent))<<32|uint64(uint32(id))] += w
			}
		}
		if level >= depthCap {
			return // deeper levels can never be common components
		}
		hasText := false
		for _, c := range n.Children {
			switch c.Kind {
			case xmltree.Element:
				walk(c, id, level+1)
			case xmltree.Text:
				if !hasText && strings.TrimSpace(c.Data) != "" {
					hasText = true
				}
			}
		}
		if hasText {
			s.textBonus += pow[level+1]
		}
	}
	walk(root, intern.None, 0)
	s.labels = make([]int32, 0, len(lw))
	for id := range lw {
		s.labels = append(s.labels, id)
	}
	sort.Slice(s.labels, func(i, j int) bool { return s.labels[i] < s.labels[j] })
	s.labelW = make([]float64, len(s.labels))
	for i, id := range s.labels {
		s.labelW[i] = lw[id]
	}
	s.pairs = make([]uint64, 0, len(pw))
	for k := range pw {
		s.pairs = append(s.pairs, k)
	}
	sort.Slice(s.pairs, func(i, j int) bool { return s.pairs[i] < s.pairs[j] })
	s.pairW = make([]float64, len(s.pairs))
	for i, k := range s.pairs {
		s.pairW[i] = pw[k]
	}
	return s
}

// pminFor is the plus lower bound given an upper bound cnodes on the
// element-common weight: everything the DTD cannot match is charged as
// plus — unless some model references an undeclared label, in which case
// matched-but-unrecursed subtrees can evade both sides and nothing can be
// promised.
func (g *dtdSig) pminFor(s *docSig, cnodes float64) float64 {
	if g.refsUndeclared {
		return 0
	}
	p := s.total - cnodes
	if p < 0 {
		p = 0
	}
	return p
}

// ubFlat is the discovery-stage upper bound: acc is the total document
// weight on labels in the DTD's alphabet, accumulated from the inverted
// index. Every matched element's label is in the alphabet, so the
// element-common weight is at most acc; character data adds at most the
// text bonus.
func (g *dtdSig) ubFlat(s *docSig, acc float64) float64 {
	return g.bound.Max(acc+s.textBonus, g.pminFor(s, acc))
}

// ubRefined tightens the element-common cap with two more signature
// facts before paying for an alignment:
//
//   - every matched non-root element sits under a matched parent, so its
//     (parent, child) label pair must be admitted by the parent's child
//     alphabet — the root contributes its own weight 1;
//   - every matched element sits at a level reachable from the declared
//     root, so weight beyond the reach prefix cannot be common.
//
// Both are upper bounds on the same quantity; the minimum (with acc)
// applies.
func (g *dtdSig) ubRefined(s *docSig, acc float64) float64 {
	pairSum := 1.0
	for i, key := range s.pairs {
		parent := int32(key >> 32)
		child := int32(uint32(key))
		if alpha, ok := g.childAlpha[parent]; ok && alpha.has(child) {
			pairSum += s.pairW[i]
		}
	}
	prefix := 0.0
	for l := 0; l <= g.reach && l < len(s.levels); l++ {
		prefix += s.levels[l]
	}
	cnodes := acc
	if pairSum < cnodes {
		cnodes = pairSum
	}
	if prefix < cnodes {
		cnodes = prefix
	}
	return g.bound.Max(cnodes+s.textBonus, g.pminFor(s, cnodes))
}
