package classify

// FuzzDocSignature cross-checks the one-pass signature extractor against an
// independent reference walker on arbitrary parsed documents, with mixed
// known/unknown labels, varying recursion caps, and stale label stamps from
// a foreign symbol table.

import (
	"math"
	"sort"
	"strings"
	"testing"

	"dtdevolve/internal/intern"
	"dtdevolve/internal/xmltree"
)

// refSig recomputes a docSig naively: collect every element with its level
// and parent via an explicit stack, then build the maps with math.Pow. It
// shares no code with extractSig beyond the xmltree API.
func refSig(root *xmltree.Node, v intern.View, decay float64, depthCap int) *docSig {
	s := &docSig{levels: make([]float64, depthCap+1)}
	if root == nil || !root.IsElement() {
		return s
	}
	s.rootName = root.Name
	s.rootID = v.ID(root.Name)
	type frame struct {
		n      *xmltree.Node
		parent int32
		level  int
	}
	lw := make(map[int32]float64)
	pw := make(map[uint64]float64)
	stack := []frame{{root, intern.None, 0}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		id := v.ID(f.n.Name)
		w := math.Pow(decay, float64(f.level))
		s.levels[f.level] += w
		s.total += w
		if id != intern.None {
			lw[id] += w
			if f.level > 0 && f.parent != intern.None {
				pw[uint64(uint32(f.parent))<<32|uint64(uint32(id))] += w
			}
		}
		if f.level >= depthCap {
			continue
		}
		text := false
		// Reverse order keeps LIFO traversal close to document order; the
		// maps are order-insensitive up to float rounding anyway.
		for i := len(f.n.Children) - 1; i >= 0; i-- {
			c := f.n.Children[i]
			switch c.Kind {
			case xmltree.Element:
				stack = append(stack, frame{c, id, f.level + 1})
			case xmltree.Text:
				if strings.TrimSpace(c.Data) != "" {
					text = true
				}
			}
		}
		if text {
			s.textBonus += math.Pow(decay, float64(f.level+1))
		}
	}
	for id := range lw {
		s.labels = append(s.labels, id)
	}
	sort.Slice(s.labels, func(i, j int) bool { return s.labels[i] < s.labels[j] })
	s.labelW = make([]float64, len(s.labels))
	for i, id := range s.labels {
		s.labelW[i] = lw[id]
	}
	for k := range pw {
		s.pairs = append(s.pairs, k)
	}
	sort.Slice(s.pairs, func(i, j int) bool { return s.pairs[i] < s.pairs[j] })
	s.pairW = make([]float64, len(s.pairs))
	for i, k := range s.pairs {
		s.pairW[i] = pw[k]
	}
	return s
}

func sigClose(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*(1+math.Abs(a)+math.Abs(b))
}

func diffSigs(t *testing.T, label string, got, want *docSig) {
	t.Helper()
	if got.rootID != want.rootID || got.rootName != want.rootName {
		t.Errorf("%s: root (%d, %q), want (%d, %q)", label, got.rootID, got.rootName, want.rootID, want.rootName)
	}
	if !sigClose(got.total, want.total) || !sigClose(got.textBonus, want.textBonus) {
		t.Errorf("%s: total/text (%v, %v), want (%v, %v)", label, got.total, got.textBonus, want.total, want.textBonus)
	}
	if len(got.levels) != len(want.levels) {
		t.Fatalf("%s: %d levels, want %d", label, len(got.levels), len(want.levels))
	}
	for i := range got.levels {
		if !sigClose(got.levels[i], want.levels[i]) {
			t.Errorf("%s: levels[%d] = %v, want %v", label, i, got.levels[i], want.levels[i])
		}
	}
	if len(got.labels) != len(want.labels) {
		t.Fatalf("%s: %d labels, want %d", label, len(got.labels), len(want.labels))
	}
	for i := range got.labels {
		if got.labels[i] != want.labels[i] || !sigClose(got.labelW[i], want.labelW[i]) {
			t.Errorf("%s: label[%d] = (%d, %v), want (%d, %v)",
				label, i, got.labels[i], got.labelW[i], want.labels[i], want.labelW[i])
		}
	}
	if len(got.pairs) != len(want.pairs) {
		t.Fatalf("%s: %d pairs, want %d", label, len(got.pairs), len(want.pairs))
	}
	for i := range got.pairs {
		if got.pairs[i] != want.pairs[i] || !sigClose(got.pairW[i], want.pairW[i]) {
			t.Errorf("%s: pair[%d] = (%x, %v), want (%x, %v)",
				label, i, got.pairs[i], got.pairW[i], want.pairs[i], want.pairW[i])
		}
	}
}

func FuzzDocSignature(f *testing.F) {
	f.Add(`<catalog><product><name>x</name><price>1</price></product></catalog>`, uint8(4))
	f.Add(`<a><b><c><d><e/></d></c></b>text</a>`, uint8(2))
	f.Add(`<r>   </r>`, uint8(63))
	f.Add(`<x><x><x>deep</x></x></x>`, uint8(1))
	f.Fuzz(func(t *testing.T, src string, capRaw uint8) {
		doc, err := xmltree.ParseString(src)
		if err != nil {
			t.Skip()
		}
		depthCap := int(capRaw)%64 + 1
		// Intern every other distinct label, so extraction sees a mix of
		// known and unknown tags.
		tab := intern.NewTable()
		seen := make(map[string]int)
		doc.Root.Walk(func(n *xmltree.Node, _ int) bool {
			if n.IsElement() {
				if _, ok := seen[n.Name]; !ok {
					seen[n.Name] = len(seen)
					if len(seen)%2 == 1 && n.Name != "" {
						tab.Intern(n.Name)
					}
				}
			}
			return true
		})
		v := tab.View()
		before := tab.Len()

		got := extractSig(doc.Root, v, 0.5, depthCap)
		want := refSig(doc.Root, v, 0.5, depthCap)
		diffSigs(t, "fresh", got, want)

		if tab.Len() != before {
			t.Errorf("extractSig interned %d symbols; extraction must never extend the table", tab.Len()-before)
		}

		// Stamp every node from a foreign table: stale IDs must not leak
		// into the signature (sigID verifies stamps against the snapshot).
		foreign := intern.NewTable()
		foreign.Intern("decoy0")
		foreign.Intern("decoy1")
		intern.InternDocument(foreign, doc.Root)
		stamped := extractSig(doc.Root, v, 0.5, depthCap)
		diffSigs(t, "foreign-stamped", stamped, want)
	})
}
