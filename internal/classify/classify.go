// Package classify implements the paper's classification phase: an
// incoming document is matched against every DTD of the source, and is
// associated with the DTD yielding the highest structural similarity,
// provided that similarity reaches the threshold σ; otherwise the document
// is destined for the repository of unclassified documents.
//
// The package also provides the rigid validator-based classifier the paper
// argues against ("classification based on validators is very rigid, with a
// boolean answer"), used as the baseline of experiment E1.
package classify

import (
	"sort"
	"sync"

	"dtdevolve/internal/dtd"
	"dtdevolve/internal/intern"
	"dtdevolve/internal/similarity"
	"dtdevolve/internal/validate"
	"dtdevolve/internal/xmltree"
)

// Result is the outcome of classifying one document.
type Result struct {
	// DTDName is the best-matching DTD (empty when the set is empty).
	DTDName string
	// Similarity is the best global similarity value.
	Similarity float64
	// Classified reports whether Similarity reached the threshold σ.
	Classified bool
	// All holds the similarity against every DTD in the set.
	All map[string]float64
}

// Classifier matches documents against a set of named DTDs by structural
// similarity. It is safe for concurrent use: Classify runs under a read
// lock and scores each DTD on its own goroutine with evaluators drawn from
// a per-DTD similarity.Pool, so concurrent classifications never share
// evaluator state.
type Classifier struct {
	sigma float64
	cfg   similarity.Config
	tab   *intern.Table

	mu    sync.RWMutex
	dtds  map[string]*dtd.DTD         // dtdvet:guarded_by mu
	pools map[string]*similarity.Pool // dtdvet:guarded_by mu
}

// New returns a Classifier with threshold σ and measure configuration cfg,
// interning labels into a private symbol table.
func New(sigma float64, cfg similarity.Config) *Classifier {
	return NewWithTable(sigma, cfg, intern.NewTable())
}

// NewWithTable is New with a caller-provided symbol table, shared by the
// evaluator pools of every registered DTD. The source engine passes the
// same table to its recorders, so the label IDs it stamps on documents
// stay valid across classification and recording.
func NewWithTable(sigma float64, cfg similarity.Config, tab *intern.Table) *Classifier {
	return &Classifier{
		sigma: sigma,
		cfg:   cfg,
		tab:   tab,
		dtds:  make(map[string]*dtd.DTD),
		pools: make(map[string]*similarity.Pool),
	}
}

// Sigma returns the classification threshold.
func (c *Classifier) Sigma() float64 { return c.sigma }

// Table returns the symbol table shared by the classifier's pools.
func (c *Classifier) Table() *intern.Table { return c.tab }

// Set adds or replaces the DTD registered under name, precompiling its
// evaluator pool. The DTD must not be mutated afterwards; to evolve it,
// call Set again with the replacement.
func (c *Classifier) Set(name string, d *dtd.DTD) {
	pool := similarity.NewPoolWithTable(d, c.cfg, c.tab) // precompile outside the lock
	c.mu.Lock()
	defer c.mu.Unlock()
	c.dtds[name] = d
	c.pools[name] = pool
}

// Remove deletes the DTD registered under name.
func (c *Classifier) Remove(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.dtds, name)
	delete(c.pools, name)
}

// Names returns the registered DTD names, sorted.
func (c *Classifier) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.namesLocked()
}

// dtdvet:requires mu:r
func (c *Classifier) namesLocked() []string {
	out := make([]string, 0, len(c.dtds))
	for name := range c.dtds {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// DTD returns the DTD registered under name, or nil.
func (c *Classifier) DTD(name string) *dtd.DTD {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.dtds[name]
}

// Classify evaluates the document against every DTD and returns the best
// match. Ties break deterministically by DTD name.
func (c *Classifier) Classify(doc *xmltree.Document) Result {
	return c.ClassifyElement(doc.Root)
}

// ClassifyElement classifies the document subtree rooted at root. Each
// registered DTD is scored on its own goroutine, so a classification over n
// DTDs costs one alignment's wall-clock time given n spare cores.
func (c *Classifier) ClassifyElement(root *xmltree.Node) Result {
	c.mu.RLock()
	defer c.mu.RUnlock()
	names := c.namesLocked()
	sims := make([]float64, len(names))
	if len(names) > 1 {
		var wg sync.WaitGroup
		wg.Add(len(names))
		for i, name := range names {
			go func(i int, name string) {
				defer wg.Done()
				sims[i] = c.simLocked(name, root) // dtdvet:allow locks -- runs under the RLock ClassifyElement holds across wg.Wait
			}(i, name)
		}
		wg.Wait()
	} else {
		for i, name := range names {
			sims[i] = c.simLocked(name, root)
		}
	}
	// Fold in sorted name order so ties break deterministically regardless
	// of goroutine scheduling.
	res := Result{All: make(map[string]float64, len(names))}
	for i, name := range names {
		res.All[name] = sims[i]
		if sims[i] > res.Similarity || res.DTDName == "" {
			res.Similarity = sims[i]
			res.DTDName = name
		}
	}
	res.Classified = res.DTDName != "" && res.Similarity >= c.sigma
	return res
}

// simLocked scores root against one registered DTD. The read side is
// enough: pools are safe for concurrent use.
// dtdvet:requires mu:r
func (c *Classifier) simLocked(name string, root *xmltree.Node) float64 {
	// A DTD with a declared root only matches documents rooted there.
	if d := c.dtds[name]; d.Name == "" || root == nil || d.Name == root.Name {
		return c.pools[name].GlobalSim(root)
	}
	return 0
}

// ValidatorClassifier is the boolean baseline: a document is associated
// with a DTD only when it is strictly valid for it. Heterogeneous documents
// are rejected outright, which is the loss of information the paper's
// similarity-based approach avoids.
type ValidatorClassifier struct {
	names      []string
	validators map[string]*validate.Validator
}

// NewValidator returns a ValidatorClassifier over the given DTD set.
func NewValidator(dtds map[string]*dtd.DTD) *ValidatorClassifier {
	c := &ValidatorClassifier{validators: make(map[string]*validate.Validator, len(dtds))}
	for name, d := range dtds {
		c.names = append(c.names, name)
		c.validators[name] = validate.New(d)
	}
	sort.Strings(c.names)
	return c
}

// Classify returns the first DTD (in name order) for which the document is
// valid — including the root-element check — and whether any matched.
func (c *ValidatorClassifier) Classify(doc *xmltree.Document) (string, bool) {
	for _, name := range c.names {
		if len(c.validators[name].ValidateDocument(doc)) == 0 {
			return name, true
		}
	}
	return "", false
}
