// Package classify implements the paper's classification phase: an
// incoming document is matched against the DTDs of the source, and is
// associated with the DTD yielding the highest structural similarity,
// provided that similarity reaches the threshold σ; otherwise the document
// is destined for the repository of unclassified documents.
//
// The paper scores every document against every DTD — fine for a 5-DTD
// experiment, ruinous for a registry of thousands. The Classifier instead
// maintains a candidate-pruning index (DESIGN.md §12): per-DTD structural
// signatures over interned label IDs in an inverted index, so a
// classification extracts the document's signature in one cheap pass,
// ranks DTDs by signature overlap, and runs the expensive DP alignment
// only on candidates that could still win. The default mode is provably
// exact — a DTD is skipped only when a conservative upper bound on its
// attainable similarity is below both the best confirmed score and σ — and
// an approximate mode takes a fixed top-K for latency-critical serving.
//
// The package also provides the rigid validator-based classifier the paper
// argues against ("classification based on validators is very rigid, with a
// boolean answer"), used as the baseline of experiment E1.
package classify

import (
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"dtdevolve/internal/dtd"
	"dtdevolve/internal/intern"
	"dtdevolve/internal/similarity"
	"dtdevolve/internal/validate"
	"dtdevolve/internal/xmltree"
)

// Candidate is one scored DTD of a classification.
type Candidate struct {
	Name       string  `json:"dtd"`
	Similarity float64 `json:"similarity"`
}

// Result is the outcome of classifying one document.
type Result struct {
	// DTDName is the best-matching DTD (empty when the set is empty).
	DTDName string
	// Similarity is the best global similarity value.
	Similarity float64
	// Classified reports whether Similarity reached the threshold σ.
	Classified bool
	// Candidates holds the DTDs the classifier actually scored, best
	// first (similarity descending, ties by name). Under the candidate
	// index this is a handful of entries, not one per registered DTD.
	Candidates []Candidate
	// All maps every registered DTD to its similarity. Classify leaves it
	// nil — materializing O(#DTDs) scores per document is exactly the cost
	// the index avoids — and only ClassifyExhaustive fills it.
	All map[string]float64
}

// DefaultTopK is the candidate budget of the approximate mode when
// Options.TopK is unset.
const DefaultTopK = 16

// Options selects how the classifier prunes candidates. The zero value is
// the exact mode: results are identical to exhaustive scoring.
type Options struct {
	// Approx switches to the fixed-budget mode: only the TopK candidates
	// with the highest similarity upper bounds are scored. The winner can
	// differ from exhaustive scoring when the true best DTD's bound ranks
	// below the budget.
	Approx bool
	// TopK is the approximate-mode candidate budget; 0 means DefaultTopK.
	TopK int
}

// Stats are cumulative classification counters, all monotone.
type Stats struct {
	// Classifications counts ClassifyElement/ClassifyExhaustive calls.
	Classifications int64
	// Possible is what exhaustive scoring would have cost: one DP
	// alignment per registered DTD per classification.
	Possible int64
	// Candidates is how many DTDs survived the signature prefilter
	// (pruned modes only).
	Candidates int64
	// Scored is how many DP alignments actually ran.
	Scored int64
	// Pruned is how many surviving candidates were skipped because their
	// upper bound was below both the best confirmed score and σ.
	Pruned int64
}

// PruneRatio is the fraction of exhaustive-mode alignments the index
// avoided, in [0, 1].
func (s Stats) PruneRatio() float64 {
	if s.Possible == 0 {
		return 0
	}
	return 1 - float64(s.Scored)/float64(s.Possible)
}

// Classifier matches documents against a set of named DTDs by structural
// similarity through the candidate-pruning index. It is safe for
// concurrent use: classification runs under a read lock, scores candidates
// on a bounded worker pool with evaluators drawn from per-DTD
// similarity.Pools, and index updates take the write lock.
type Classifier struct {
	sigma    float64
	cfg      similarity.Config
	tab      *intern.Table
	depthCap int
	// prunable: the configuration admits sound upper bounds (exact tag
	// matching, sane weights). When false every classification scores
	// exhaustively, as the pre-index classifier did.
	prunable bool
	// slots admits helper goroutines for candidate scoring. The budget is
	// per-classifier and shared by every concurrent classification, so a
	// GOMAXPROCS-wide ingest batch cannot fan out more than cap(slots)
	// helpers in total — the caller always scores on its own goroutine.
	slots chan struct{}

	classifications atomic.Int64
	possible        atomic.Int64
	candidates      atomic.Int64
	scored          atomic.Int64
	pruned          atomic.Int64

	mu       sync.RWMutex
	opts     Options             // dtdvet:guarded_by mu
	dtds     map[string]*dtd.DTD // dtdvet:guarded_by mu
	sigs     map[string]*dtdSig  // dtdvet:guarded_by mu
	postings map[int32][]*dtdSig // dtdvet:guarded_by mu -- inverted index: label ID → signatures of DTDs whose alphabet has it
}

// New returns a Classifier with threshold σ and measure configuration cfg,
// interning labels into a private symbol table.
func New(sigma float64, cfg similarity.Config) *Classifier {
	return NewWithTable(sigma, cfg, intern.NewTable())
}

// NewWithTable is New with a caller-provided symbol table, shared by the
// evaluator pools of every registered DTD. The source engine passes the
// same table to its recorders, so the label IDs it stamps on documents
// stay valid across classification and recording.
func NewWithTable(sigma float64, cfg similarity.Config, tab *intern.Table) *Classifier {
	return &Classifier{
		sigma:    sigma,
		cfg:      cfg,
		tab:      tab,
		depthCap: cfg.DepthCap(),
		prunable: cfg.TagSimilarity == nil && cfg.CommonWeight > 0 &&
			cfg.PlusWeight >= 0 && cfg.MinusWeight >= 0 &&
			cfg.Decay > 0 && cfg.Decay <= 1,
		slots:    make(chan struct{}, runtime.GOMAXPROCS(0)),
		dtds:     make(map[string]*dtd.DTD),
		sigs:     make(map[string]*dtdSig),
		postings: make(map[int32][]*dtdSig),
	}
}

// Sigma returns the classification threshold.
func (c *Classifier) Sigma() float64 { return c.sigma }

// Table returns the symbol table shared by the classifier's pools.
func (c *Classifier) Table() *intern.Table { return c.tab }

// Configure sets the pruning options for subsequent classifications.
func (c *Classifier) Configure(opts Options) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.opts = opts
}

// Stats returns a snapshot of the cumulative classification counters.
func (c *Classifier) Stats() Stats {
	return Stats{
		Classifications: c.classifications.Load(),
		Possible:        c.possible.Load(),
		Candidates:      c.candidates.Load(),
		Scored:          c.scored.Load(),
		Pruned:          c.pruned.Load(),
	}
}

// Set adds or replaces the DTD registered under name, precompiling its
// evaluator pool and structural signature. The DTD must not be mutated
// afterwards; to evolve it, call Set again with the replacement.
func (c *Classifier) Set(name string, d *dtd.DTD) {
	pool := similarity.NewPoolWithTable(d, c.cfg, c.tab) // precompile outside the lock
	sig := buildSig(name, d, pool)                       // and the signature too
	c.mu.Lock()
	defer c.mu.Unlock()
	if old, ok := c.sigs[name]; ok {
		c.unindexLocked(old)
	}
	c.dtds[name] = d
	c.sigs[name] = sig
	c.indexLocked(sig)
}

// Remove deletes the DTD registered under name.
func (c *Classifier) Remove(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if old, ok := c.sigs[name]; ok {
		c.unindexLocked(old)
	}
	delete(c.dtds, name)
	delete(c.sigs, name)
}

// indexLocked adds one posting per alphabet label of g.
// dtdvet:requires mu
func (c *Classifier) indexLocked(g *dtdSig) {
	for _, id := range g.labels {
		c.postings[id] = append(c.postings[id], g)
	}
}

// unindexLocked removes g's postings. Swap-remove: order within a posting
// list is irrelevant, candidates are re-ranked per query.
// dtdvet:requires mu
func (c *Classifier) unindexLocked(g *dtdSig) {
	for _, id := range g.labels {
		list := c.postings[id]
		for i, e := range list {
			if e == g {
				list[i] = list[len(list)-1]
				list = list[:len(list)-1]
				break
			}
		}
		if len(list) == 0 {
			delete(c.postings, id)
		} else {
			c.postings[id] = list
		}
	}
}

// Names returns the registered DTD names, sorted.
func (c *Classifier) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.namesLocked()
}

// dtdvet:requires mu:r
func (c *Classifier) namesLocked() []string {
	out := make([]string, 0, len(c.dtds))
	for name := range c.dtds {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// DTD returns the DTD registered under name, or nil.
func (c *Classifier) DTD(name string) *dtd.DTD {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.dtds[name]
}

// Classify evaluates the document through the candidate index and returns
// the best match. Ties break deterministically by DTD name.
func (c *Classifier) Classify(doc *xmltree.Document) Result {
	return c.ClassifyElement(doc.Root)
}

// ClassifyElement classifies the document subtree rooted at root. In the
// exact mode (the default) the result — winner, score and classified bit —
// is identical to exhaustive scoring; only the work differs.
func (c *Classifier) ClassifyElement(root *xmltree.Node) Result {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.classifyLocked(root, false)
}

// ClassifyExhaustive scores the document against every registered DTD,
// bypassing the candidate index, and fills Result.All. It is the oracle
// the equivalence tests compare the index against, and the opt-in for
// callers that genuinely want every score.
func (c *Classifier) ClassifyExhaustive(doc *xmltree.Document) Result {
	return c.ClassifyExhaustiveElement(doc.Root)
}

// ClassifyExhaustiveElement is ClassifyExhaustive on a bare subtree.
func (c *Classifier) ClassifyExhaustiveElement(root *xmltree.Node) Result {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.classifyLocked(root, true)
}

// scoreEntry is one planned candidate. Entries are claimed by exactly one
// scoring worker (via an atomic cursor), which is the only writer of the
// mutable fields until the pool is joined.
type scoreEntry struct {
	sig *dtdSig
	// ub is the similarity upper bound that admitted the candidate; 1 on
	// the exhaustive path.
	ub float64
	// doc/acc carry the signature context for lazy bound refinement; doc
	// is nil on the exhaustive path.
	doc     *docSig
	acc     float64
	refined bool
	scored  bool
	sim     float64
}

// dtdvet:requires mu:r
func (c *Classifier) classifyLocked(root *xmltree.Node, exhaustive bool) Result {
	c.classifications.Add(1)
	c.possible.Add(int64(len(c.sigs)))
	var plan []*scoreEntry
	prune := false
	if exhaustive || !c.prunable {
		plan = c.fullPlanLocked(root)
	} else {
		sig := extractSig(root, c.tab.View(), c.cfg.Decay, c.depthCap)
		plan = c.candidatePlanLocked(sig)
		c.candidates.Add(int64(len(plan)))
		if c.opts.Approx {
			k := c.opts.TopK
			if k <= 0 {
				k = DefaultTopK
			}
			if len(plan) > k {
				plan = plan[:k]
			}
		}
		prune = true
	}
	c.scorePlan(plan, root, prune)
	return c.foldLocked(plan, exhaustive)
}

// fullPlanLocked plans every registered DTD, with the declared-root gate
// the exhaustive path has always had: a DTD with a declared root only
// matches documents rooted there, scored 0 with no alignment.
// dtdvet:requires mu:r
func (c *Classifier) fullPlanLocked(root *xmltree.Node) []*scoreEntry {
	plan := make([]*scoreEntry, 0, len(c.sigs))
	for _, g := range c.sigs {
		e := &scoreEntry{sig: g, ub: 1}
		if !(g.rootName == "" || root == nil || g.rootName == root.Name) {
			e.scored = true // root mismatch: similarity 0, no alignment
		}
		plan = append(plan, e)
	}
	return plan
}

// candidatePlanLocked ranks the DTDs structurally overlapping the
// document: the postings of every distinct document label accumulate
// overlap weight per DTD, the root gates drop DTDs that would score 0
// anyway, and survivors are ordered best bound first so the confirmed
// score rises as fast as possible.
// dtdvet:requires mu:r
func (c *Classifier) candidatePlanLocked(s *docSig) []*scoreEntry {
	if s.rootID == intern.None {
		// The root tag was never interned, so no DTD declares it and every
		// similarity is 0.
		return nil
	}
	acc := make(map[*dtdSig]float64)
	for i, id := range s.labels {
		for _, g := range c.postings[id] {
			acc[g] += s.labelW[i]
		}
	}
	plan := make([]*scoreEntry, 0, len(acc))
	for g, w := range acc {
		if !g.declared.has(s.rootID) {
			continue // root tag undeclared by g: similarity 0
		}
		if g.rootName != "" && g.rootName != s.rootName {
			continue // declared-root gate
		}
		plan = append(plan, &scoreEntry{sig: g, ub: g.ubFlat(s, w), doc: s, acc: w})
	}
	sort.Slice(plan, func(i, j int) bool {
		if plan[i].ub != plan[j].ub {
			return plan[i].ub > plan[j].ub
		}
		return plan[i].sig.name < plan[j].sig.name
	})
	return plan
}

// boundEps absorbs floating-point divergence between the bound's and the
// aligner's summation orders; a skip must clear it.
const boundEps = 1e-9

// scorePlan runs the DP alignment for every planned entry not provably
// beaten. The caller always scores on its own goroutine; helpers join
// only as the classifier-wide slots budget admits, claiming entries in
// plan order through an atomic cursor.
func (c *Classifier) scorePlan(plan []*scoreEntry, root *xmltree.Node, prune bool) {
	if len(plan) == 0 {
		return
	}
	var cursor atomic.Int64
	cursor.Store(-1)
	var best atomic.Uint64 // Float64bits of the best confirmed similarity
	work := func() {
		for {
			i := int(cursor.Add(1))
			if i >= len(plan) {
				return
			}
			e := plan[i]
			if e.scored {
				continue // pre-gated to 0
			}
			if prune && c.skipEntry(e, &best) {
				continue
			}
			e.sim = e.sig.pool.GlobalSim(root)
			e.scored = true
			c.scored.Add(1)
			for {
				cur := best.Load()
				if e.sim <= math.Float64frombits(cur) {
					break
				}
				if best.CompareAndSwap(cur, math.Float64bits(e.sim)) {
					break
				}
			}
		}
	}
	var wg sync.WaitGroup
	for helpers := 0; helpers < len(plan)-1; helpers++ {
		select {
		case c.slots <- struct{}{}:
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-c.slots }()
				work()
			}()
			continue
		default:
		}
		break
	}
	work()
	wg.Wait()
}

// skipEntry reports whether e can be skipped without changing the result:
// its upper bound is strictly below both the best confirmed similarity
// (the winner cannot change — the best only rises) and σ (the classified
// bit cannot change). Before giving up on a skip, the flat bound is
// refined once with the pair and depth profiles.
func (c *Classifier) skipEntry(e *scoreEntry, best *atomic.Uint64) bool {
	for {
		limit := math.Float64frombits(best.Load())
		if c.sigma < limit {
			limit = c.sigma
		}
		if e.ub < limit-boundEps {
			c.pruned.Add(1)
			return true
		}
		if e.refined || e.doc == nil {
			return false
		}
		e.refined = true
		if ub := e.sig.ubRefined(e.doc, e.acc); ub < e.ub {
			e.ub = ub
		}
	}
}

// foldLocked folds the scored entries into a Result in sorted name order,
// so ties break toward the lexicographically smallest name exactly as
// exhaustive scoring always has. Every DTD attaining the maximum is
// guaranteed scored (a skip requires the bound to be strictly below the
// best), so folding the scored subset is equivalent to folding all.
// dtdvet:requires mu:r
func (c *Classifier) foldLocked(plan []*scoreEntry, fillAll bool) Result {
	sort.Slice(plan, func(i, j int) bool { return plan[i].sig.name < plan[j].sig.name })
	var res Result
	for _, e := range plan {
		if !e.scored {
			continue
		}
		if e.sim > res.Similarity || res.DTDName == "" {
			res.Similarity = e.sim
			res.DTDName = e.sig.name
		}
	}
	if res.Similarity == 0 {
		// All-zero similarities: exhaustive scoring reports the first
		// registered name, whether or not the index scored it.
		res.DTDName = c.minNameLocked()
	}
	res.Classified = res.DTDName != "" && res.Similarity >= c.sigma
	res.Candidates = make([]Candidate, 0, len(plan))
	for _, e := range plan {
		if e.scored {
			res.Candidates = append(res.Candidates, Candidate{Name: e.sig.name, Similarity: e.sim})
		}
	}
	sort.Slice(res.Candidates, func(i, j int) bool {
		if res.Candidates[i].Similarity != res.Candidates[j].Similarity {
			return res.Candidates[i].Similarity > res.Candidates[j].Similarity
		}
		return res.Candidates[i].Name < res.Candidates[j].Name
	})
	if fillAll {
		res.All = make(map[string]float64, len(plan))
		for _, e := range plan {
			res.All[e.sig.name] = e.sim
		}
	}
	return res
}

// dtdvet:requires mu:r
func (c *Classifier) minNameLocked() string {
	min := ""
	for name := range c.dtds {
		if min == "" || name < min {
			min = name
		}
	}
	return min
}

// StreamEntry is one registered DTD exposed to the streaming ingest path:
// the pieces a stream consumer needs to score a document incrementally
// (the evaluator pool, the declared-root gate, and the DTD for the
// recorder lane).
type StreamEntry struct {
	Name     string
	RootName string // declared root ("" gates nothing)
	Pool     *similarity.Pool
	DTD      *dtd.DTD
}

// StreamEntries snapshots the registered DTDs sorted by name — the lane
// order of a streamed classification, matching foldLocked's tie-break
// order.
func (c *Classifier) StreamEntries() []StreamEntry {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]StreamEntry, 0, len(c.sigs))
	for _, name := range c.namesLocked() {
		g := c.sigs[name]
		out = append(out, StreamEntry{Name: name, RootName: g.rootName, Pool: g.pool, DTD: g.d})
	}
	return out
}

// StreamScore is one lane's outcome of a streamed classification.
type StreamScore struct {
	Name string
	Sim  float64
	// Gated reports that the declared-root gate pre-scored the DTD to 0
	// without running the alignment.
	Gated bool
}

// FoldStream folds per-lane scores from the streaming path into a Result,
// bumping the classification counters. scores must be sorted by name (the
// StreamEntries order); the fold then reproduces foldLocked exactly — the
// winner is the highest similarity with ties toward the smallest name, an
// all-zero fold reports the smallest name, and Classified applies σ.
func (c *Classifier) FoldStream(scores []StreamScore) Result {
	c.classifications.Add(1)
	c.possible.Add(int64(len(scores)))
	var res Result
	for _, e := range scores {
		if !e.Gated {
			c.scored.Add(1)
		}
		if e.Sim > res.Similarity || res.DTDName == "" {
			res.Similarity = e.Sim
			res.DTDName = e.Name
		}
	}
	if res.Similarity == 0 && len(scores) > 0 {
		// Sorted input: the smallest name is the first entry, matching
		// minNameLocked over the same snapshot.
		res.DTDName = scores[0].Name
	}
	res.Classified = res.DTDName != "" && res.Similarity >= c.sigma
	res.Candidates = make([]Candidate, 0, len(scores))
	for _, e := range scores {
		res.Candidates = append(res.Candidates, Candidate{Name: e.Name, Similarity: e.Sim})
	}
	sort.Slice(res.Candidates, func(i, j int) bool {
		if res.Candidates[i].Similarity != res.Candidates[j].Similarity {
			return res.Candidates[i].Similarity > res.Candidates[j].Similarity
		}
		return res.Candidates[i].Name < res.Candidates[j].Name
	})
	return res
}

// ValidatorClassifier is the boolean baseline: a document is associated
// with a DTD only when it is strictly valid for it. Heterogeneous documents
// are rejected outright, which is the loss of information the paper's
// similarity-based approach avoids.
type ValidatorClassifier struct {
	names      []string
	validators map[string]*validate.Validator
}

// NewValidator returns a ValidatorClassifier over the given DTD set.
func NewValidator(dtds map[string]*dtd.DTD) *ValidatorClassifier {
	c := &ValidatorClassifier{validators: make(map[string]*validate.Validator, len(dtds))}
	for name, d := range dtds {
		c.names = append(c.names, name)
		c.validators[name] = validate.New(d)
	}
	sort.Strings(c.names)
	return c
}

// Classify returns the first DTD (in name order) for which the document is
// valid — including the root-element check — and whether any matched.
func (c *ValidatorClassifier) Classify(doc *xmltree.Document) (string, bool) {
	for _, name := range c.names {
		if len(c.validators[name].ValidateDocument(doc)) == 0 {
			return name, true
		}
	}
	return "", false
}
