// Signature persistence (DESIGN.md §12): checkpoints carry the
// candidate-pruning index so recovery does not recompute every DTD's
// structural signature.
//
// A dtdSig is a pure function of (DTD, symbol table, depth cap), so it can
// be serialized as interned label IDs and restored verbatim — provided the
// restoring source first re-seeds its symbol table with the snapshot's
// symbol list in the original ID order (source snapshot v2 does exactly
// that). The evaluator pool still compiles at restore time — it holds
// automata, not signature state — but the alphabet walks, child-alphabet
// bitsets and the reachability fixpoint (the per-DTD cost that scales with
// registry size) are skipped.
//
// Restoration is defensive: SetFromSnapshot validates the snapshot against
// the live DTD and table and reports false on any mismatch, in which case
// the caller falls back to a plain Set (full rebuild). Old snapshots
// without signatures take the same fallback, so the codec change is
// backward compatible.
package classify

import (
	"math/bits"
	"sort"

	"dtdevolve/internal/dtd"
	"dtdevolve/internal/similarity"
)

// SigSnapshot is the serialized form of one DTD's structural signature.
// All label references are interned IDs, valid only together with the
// symbol table (in ID order) of the snapshot that carried them.
type SigSnapshot struct {
	// Root is the declared root element ("" matches any document root).
	Root string `json:"root,omitempty"`
	// Labels is the sorted distinct alphabet — the posting keys.
	Labels []int32 `json:"labels"`
	// Declared holds the declared element IDs.
	Declared []int32 `json:"declared"`
	// Children maps a declared element ID to the child alphabet its content
	// model admits (the full declared set for ANY and nil models).
	Children map[int32][]int32 `json:"children"`
	// Reach is the deepest level a common component can occur at, computed
	// under DepthCap; a snapshot taken under a different cap is rejected
	// (the bound would be unsound).
	Reach    int `json:"reach"`
	DepthCap int `json:"depth_cap"`
	// RefsUndeclared marks content models referencing undeclared labels
	// (collapses the plus lower bound; see signature.go).
	RefsUndeclared bool `json:"refs_undeclared,omitempty"`
}

// ids expands a bitset to its sorted ID list.
func (b labelBits) ids() []int32 {
	var out []int32
	for w, word := range b {
		for word != 0 {
			out = append(out, int32(w<<6)+int32(bits.TrailingZeros64(word)))
			word &= word - 1
		}
	}
	return out
}

// SigSnapshot returns the serialized signature of the named DTD, or nil
// when none is registered (or the configuration admits no pruning, in
// which case there is nothing worth persisting).
func (c *Classifier) SigSnapshot(name string) *SigSnapshot {
	if !c.prunable {
		return nil
	}
	c.mu.RLock()
	g := c.sigs[name]
	c.mu.RUnlock()
	if g == nil {
		return nil
	}
	snap := &SigSnapshot{
		Root:           g.rootName,
		Labels:         append([]int32(nil), g.labels...),
		Declared:       g.declared.ids(),
		Children:       make(map[int32][]int32, len(g.childAlpha)),
		Reach:          g.reach,
		DepthCap:       c.depthCap,
		RefsUndeclared: g.refsUndeclared,
	}
	for id, alpha := range g.childAlpha {
		snap.Children[id] = alpha.ids()
	}
	return snap
}

// SetFromSnapshot registers the DTD under name with a signature restored
// from snap instead of rebuilding it, reporting whether the snapshot was
// accepted. The evaluator pool still compiles (it is automata, not
// signature state). False — nil snapshot, configuration mismatch, or a
// snapshot inconsistent with d under the current symbol table — means the
// caller must fall back to Set.
func (c *Classifier) SetFromSnapshot(name string, d *dtd.DTD, snap *SigSnapshot) bool {
	if snap == nil || !c.prunable || snap.DepthCap != c.depthCap || snap.Root != d.Name {
		return false
	}
	if snap.Reach < 0 || snap.Reach > c.depthCap {
		return false
	}
	pool := similarity.NewPoolWithTable(d, c.cfg, c.tab) // compiles outside the lock, interns d's labels
	v := c.tab.View()
	// The declared set must be exactly d's element names under the live
	// table: it gates the root check, and a stale gate misclassifies.
	if len(snap.Declared) != len(d.Elements) {
		return false
	}
	declared := makeLabelBits(snap.Declared)
	for el := range d.Elements {
		id := v.ID(el)
		if id <= 0 || !declared.has(id) {
			return false
		}
	}
	tabLen := int32(c.tab.Len())
	inRange := func(ids []int32) bool {
		for _, id := range ids {
			if id <= 0 || id > tabLen {
				return false
			}
		}
		return true
	}
	if !inRange(snap.Labels) || !inRange(snap.Declared) {
		return false
	}
	g := &dtdSig{
		name:           name,
		d:              d,
		pool:           pool,
		bound:          pool.Bound(),
		rootName:       d.Name,
		labels:         append([]int32(nil), snap.Labels...),
		declared:       declared,
		childAlpha:     make(map[int32]labelBits, len(snap.Children)),
		reach:          snap.Reach,
		refsUndeclared: snap.RefsUndeclared,
	}
	sort.Slice(g.labels, func(i, j int) bool { return g.labels[i] < g.labels[j] })
	for id, kids := range snap.Children {
		if id <= 0 || id > tabLen || !declared.has(id) || !inRange(kids) {
			return false
		}
		g.childAlpha[id] = makeLabelBits(kids)
	}
	if len(g.childAlpha) != len(d.Elements) {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if old, ok := c.sigs[name]; ok {
		c.unindexLocked(old)
	}
	c.dtds[name] = d
	c.sigs[name] = g
	c.indexLocked(g)
	return true
}
