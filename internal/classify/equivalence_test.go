package classify

// Equivalence tests for the candidate-pruning index (DESIGN.md §12): in the
// exact mode, Classify must be bit-identical to exhaustive scoring — same
// winner, same similarity, same classified bit — on real corpora, on
// synthetic registries with heavy root sharing, across threshold settings,
// and across the registry churn (evolution re-Sets, removals) of a live
// source. The index is only allowed to change how much work runs.

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"dtdevolve/internal/dtd"
	"dtdevolve/internal/gen"
	"dtdevolve/internal/similarity"
	"dtdevolve/internal/xmltree"
)

// assertSame classifies doc both ways and fails unless the results agree
// exactly. It also checks the winner is reported among the scored
// candidates whenever it scored above zero.
func assertSame(t *testing.T, c *Classifier, doc *xmltree.Document, label string) {
	t.Helper()
	got := c.Classify(doc)
	want := c.ClassifyExhaustive(doc)
	if got.DTDName != want.DTDName || got.Similarity != want.Similarity || got.Classified != want.Classified {
		t.Errorf("%s: pruned (%q, %v, %v) != exhaustive (%q, %v, %v)",
			label, got.DTDName, got.Similarity, got.Classified,
			want.DTDName, want.Similarity, want.Classified)
		return
	}
	if got.Similarity > 0 {
		found := false
		for _, cand := range got.Candidates {
			if cand.Name == got.DTDName && cand.Similarity == got.Similarity {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: winner %q (%v) missing from candidates %v", label, got.DTDName, got.Similarity, got.Candidates)
		}
	}
}

func loadCorpusDTD(t *testing.T, path, root string) *dtd.DTD {
	t.Helper()
	d, err := dtd.ParseFile(path)
	if err != nil {
		t.Fatalf("ParseFile(%s): %v", path, err)
	}
	d.Name = root
	return d
}

func loadCorpusDocs(t *testing.T, dir string) map[string]*xmltree.Document {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	docs := make(map[string]*xmltree.Document)
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".xml") {
			continue
		}
		doc, err := xmltree.ParseFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatalf("parse %s: %v", e.Name(), err)
		}
		docs[e.Name()] = doc
	}
	return docs
}

// TestEquivalenceCorpus drives the real testdata corpora through a registry
// padded with generated noise DTDs, at permissive, default and strict
// thresholds.
func TestEquivalenceCorpus(t *testing.T) {
	feed := loadCorpusDTD(t, "../../testdata/feeds/feed.dtd", "feed")
	play := loadCorpusDTD(t, "../../testdata/plays/play.dtd", "play")
	g := gen.New(gen.DefaultConfig(1))
	noise := make(map[string]*dtd.DTD, 40)
	for i := 0; i < 40; i++ {
		noise[fmt.Sprintf("noise%02d", i)] = g.RandomDTD(fmt.Sprintf("n%02d", i), 5)
	}
	for _, sigma := range []float64{0.3, 0.7, 0.95} {
		c := New(sigma, similarity.DefaultConfig())
		c.Set("feed", feed)
		c.Set("play", play)
		for name, d := range noise {
			c.Set(name, d)
		}
		for _, dir := range []string{"../../testdata/feeds", "../../testdata/plays"} {
			for name, doc := range loadCorpusDocs(t, dir) {
				assertSame(t, c, doc, fmt.Sprintf("σ=%v %s", sigma, name))
			}
		}
	}
}

// TestEquivalenceSyntheticChurn covers the registry shapes the corpus
// cannot: many DTDs sharing one root (so the index must rank real
// competitors, not just gate on roots), documents that fit nothing, and the
// churn sequence of a live source — evolution replacing DTDs in place, then
// removals — after which the rebuilt index must still agree with the
// oracle.
func TestEquivalenceSyntheticChurn(t *testing.T) {
	g := gen.New(gen.DefaultConfig(42))
	dtds := make(map[string]*dtd.DTD)
	for i := 0; i < 30; i++ {
		dtds[fmt.Sprintf("solo%02d", i)] = g.RandomDTD(fmt.Sprintf("r%02d", i), 6)
	}
	for i := 0; i < 10; i++ {
		dtds[fmt.Sprintf("shared%02d", i)] = g.RandomDTD("common", 6)
	}
	var docs []*xmltree.Document
	for _, name := range []string{"solo00", "solo07", "shared03", "shared08"} {
		d := dtds[name]
		docs = append(docs, g.Documents(d, 3)...)
		docs = append(docs, g.MutatedDocuments(d, 5, 3, 0.8)...)
	}
	docs = append(docs, parseDoc(t, `<unknownroot><a/><b>t</b></unknownroot>`))

	names := make([]string, 0, len(dtds))
	for name := range dtds {
		names = append(names, name)
	}
	sort.Strings(names)

	for _, sigma := range []float64{0.3, 0.7, 0.95} {
		c := New(sigma, similarity.DefaultConfig())
		for _, name := range names {
			c.Set(name, dtds[name])
		}
		for i, doc := range docs {
			assertSame(t, c, doc, fmt.Sprintf("σ=%v doc%d", sigma, i))
		}
		// Evolution: replace three DTDs with drifted successors; Set must
		// re-sign and re-index them.
		for _, name := range []string{"solo00", "shared03", "shared08"} {
			c.Set(name, g.Drift(dtds[name], 3))
		}
		for i, doc := range docs {
			assertSame(t, c, doc, fmt.Sprintf("σ=%v post-drift doc%d", sigma, i))
		}
		// Removal: drop a winner and a shared-root competitor; their
		// postings must vanish from the index.
		c.Remove("solo07")
		c.Remove("shared08")
		for i, doc := range docs {
			assertSame(t, c, doc, fmt.Sprintf("σ=%v post-remove doc%d", sigma, i))
		}
	}
}

// TestEquivalenceTieBreak pins the tie rule: equal similarities resolve to
// the lexicographically smallest DTD name on both paths, regardless of
// registration or scoring order.
func TestEquivalenceTieBreak(t *testing.T) {
	src := `
<!ELEMENT doc (a, b)>
<!ELEMENT a (#PCDATA)>
<!ELEMENT b (#PCDATA)>`
	mk := func() *dtd.DTD {
		d := dtd.MustParse(src)
		d.Name = "doc"
		return d
	}
	c := New(0.5, similarity.DefaultConfig())
	c.Set("b", mk()) // registered first, must still lose the tie
	c.Set("a", mk())
	doc := parseDoc(t, `<doc><a>x</a><b>y</b></doc>`)
	got := c.Classify(doc)
	want := c.ClassifyExhaustive(doc)
	if got.DTDName != "a" || want.DTDName != "a" {
		t.Errorf("tie winners: pruned %q, exhaustive %q, want both \"a\"", got.DTDName, want.DTDName)
	}
	if got.Similarity != want.Similarity || got.Similarity != 1 {
		t.Errorf("tie similarities: pruned %v, exhaustive %v, want both 1", got.Similarity, want.Similarity)
	}
}

// TestPruneEffectiveness asserts the index actually prunes: on a 300-DTD
// registry where 20 DTDs share the documents' root, classification must run
// at most a tenth of the exhaustive alignment count (the acceptance bar of
// the issue, at a third of its registry size).
func TestPruneEffectiveness(t *testing.T) {
	g := gen.New(gen.DefaultConfig(9))
	c := New(0.7, similarity.DefaultConfig())
	for i := 0; i < 280; i++ {
		c.Set(fmt.Sprintf("solo%03d", i), g.RandomDTD(fmt.Sprintf("p%03d", i), 6))
	}
	shared := make([]*dtd.DTD, 20)
	for i := range shared {
		shared[i] = g.RandomDTD("hub", 6)
		c.Set(fmt.Sprintf("hub%02d", i), shared[i])
	}
	for _, d := range shared[:5] {
		for _, doc := range g.MutatedDocuments(d, 10, 2, 0.6) {
			res := c.Classify(doc)
			if res.DTDName == "" {
				t.Fatalf("no winner for a hub document: %+v", res)
			}
		}
	}
	st := c.Stats()
	if st.Possible == 0 || st.Scored*10 > st.Possible {
		t.Errorf("scored %d of %d possible alignments (prune ratio %.3f), want ≥10× reduction",
			st.Scored, st.Possible, st.PruneRatio())
	}
	if st.Candidates >= st.Possible {
		t.Errorf("prefilter admitted %d candidates of %d possible: inverted index not filtering", st.Candidates, st.Possible)
	}
}
