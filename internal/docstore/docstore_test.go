package docstore

import (
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"dtdevolve/internal/wal"
	"dtdevolve/internal/xmltree"
)

func doc(t *testing.T, src string) *xmltree.Document {
	t.Helper()
	d, err := xmltree.ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestInMemoryStore(t *testing.T) {
	s, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Put("a", doc(t, `<x><y/></x>`)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("a", doc(t, `<x><z/></x>`)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("b", doc(t, `<q/>`)); err != nil {
		t.Fatal(err)
	}
	if s.Len("a") != 2 || s.Len("b") != 1 || s.Len("zz") != 0 {
		t.Errorf("lens = %d, %d, %d", s.Len("a"), s.Len("b"), s.Len("zz"))
	}
	if got := s.Collections(); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Errorf("collections = %v", got)
	}
	docs := s.Docs("a")
	if len(docs) != 2 || docs[0].Root.ChildTags()[0] != "y" {
		t.Errorf("docs = %v", docs)
	}
}

func TestDurableStoreSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := s.Put("articles", doc(t, `<article><title>t</title></article>`)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Put("other", doc(t, `<o attr="v">text &amp; more</o>`)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len("articles") != 10 {
		t.Errorf("articles after reopen = %d, want 10", s2.Len("articles"))
	}
	other := s2.Docs("other")
	if len(other) != 1 {
		t.Fatalf("other = %v", other)
	}
	if got := other[0].Root.Text(); got != "text & more" {
		t.Errorf("text round trip = %q", got)
	}
	if v, _ := other[0].Root.Attr("attr"); v != "v" {
		t.Errorf("attr round trip = %q", v)
	}
	// Appending after reopen keeps old records.
	if err := s2.Put("articles", doc(t, `<article><title>new</title></article>`)); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	s3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if s3.Len("articles") != 11 {
		t.Errorf("articles after append+reopen = %d, want 11", s3.Len("articles"))
	}
}

func TestReplace(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.Put("c", doc(t, `<a><old/></a>`))
	s.Put("c", doc(t, `<a><old/></a>`))
	if err := s.Replace("c", []*xmltree.Document{doc(t, `<a><new/></a>`)}); err != nil {
		t.Fatal(err)
	}
	if s.Len("c") != 1 {
		t.Errorf("len after replace = %d", s.Len("c"))
	}
	// Appends after replace still work and survive reopen.
	s.Put("c", doc(t, `<a><more/></a>`))
	s.Close()
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	docs := s2.Docs("c")
	if len(docs) != 2 || docs[0].Root.ChildTags()[0] != "new" || docs[1].Root.ChildTags()[0] != "more" {
		t.Errorf("docs after reopen = %v, %v", docs[0].Root, docs[1].Root)
	}
}

func TestDrop(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	s.Put("gone", doc(t, `<x/>`))
	if err := s.Drop("gone"); err != nil {
		t.Fatal(err)
	}
	if s.Len("gone") != 0 {
		t.Error("collection still has docs")
	}
	if _, err := os.Stat(filepath.Join(dir, "gone.seg")); !os.IsNotExist(err) {
		t.Error("segment file not removed")
	}
	if err := s.Drop("never-existed"); err != nil {
		t.Errorf("dropping a missing collection: %v", err)
	}
}

func TestCorruptSegmentRejected(t *testing.T) {
	// A complete frame whose payload no longer matches its CRC is bit rot,
	// not a crash signature: the store must refuse to serve it.
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.Put("bad", doc(t, `<x><y/></x>`))
	s.Close()
	path := filepath.Join(dir, "bad.seg")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[wal.FrameHeaderSize] ^= 0xFF // flip a payload byte under an intact CRC
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("corrupt segment accepted")
	}
}

func TestTornTailTruncatedOnLoad(t *testing.T) {
	// A crash mid-append leaves a partial final frame; loading must drop it,
	// keep the intact prefix, and leave the segment appendable.
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.Put("c", doc(t, `<x><y/></x>`)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	path := filepath.Join(dir, "c.seg")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	recLen := len(data) / 3
	for cut := len(data) - 1; cut > len(data)-recLen; cut -= 3 {
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		s2, err := Open(dir)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if s2.Len("c") != 2 {
			t.Fatalf("cut %d: loaded %d docs, want the 2 intact ones", cut, s2.Len("c"))
		}
		// The truncated segment stays appendable and consistent.
		if err := s2.Put("c", doc(t, `<x><z/></x>`)); err != nil {
			t.Fatal(err)
		}
		s2.Close()
		s3, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		if s3.Len("c") != 3 {
			t.Fatalf("cut %d: after re-append got %d docs, want 3", cut, s3.Len("c"))
		}
		s3.Close()
	}
}

func TestSyncAlwaysPolicy(t *testing.T) {
	s, err := Open(t.TempDir(), WithSync(wal.SyncAlways))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Put("c", doc(t, `<x/>`)); err != nil {
		t.Fatalf("put under SyncAlways: %v", err)
	}
	if err := s.Replace("c", []*xmltree.Document{doc(t, `<y/>`)}); err != nil {
		t.Fatalf("replace under SyncAlways: %v", err)
	}
}

func TestConcurrentPuts(t *testing.T) {
	s, _ := Open(t.TempDir())
	defer s.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if err := s.Put("c", doc(t, `<x><y/></x>`)); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if s.Len("c") != 400 {
		t.Errorf("len = %d, want 400", s.Len("c"))
	}
}
