// Package docstore is a small embedded document store: the "source of XML
// documents ... stored in a database" the paper's scenario assumes. It
// keeps the documents classified in each DTD, durably when given a
// directory, so that after an evolution step the stored population can be
// re-validated or adapted to the new schema (the §6 open problem, closed by
// package adapt).
//
// The on-disk layout is one append-only segment file per collection
// (collection = DTD name), each record CRC32C-framed with the same codec as
// the write-ahead log (internal/wal): [length][checksum][XML payload]. A
// torn final record — the signature of a crash mid-append — is truncated
// away at load; a checksum mismatch anywhere else is corruption and refuses
// to load rather than silently serving damaged documents. The store is safe
// for concurrent use.
package docstore

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"dtdevolve/internal/wal"
	"dtdevolve/internal/xmltree"
)

// The docstore is part of the durability layer: a dropped Sync/Close/Write
// error here can serve a document the disk never accepted.
// dtdvet:strict errsync

// Store holds documents grouped into named collections. A Store with an
// empty directory path is purely in-memory. dir and sync are set at Open
// time and immutable afterwards; everything else is guarded.
type Store struct {
	mu          sync.Mutex
	dir         string // "" = in-memory
	sync        wal.SyncPolicy
	collections map[string]*collection // dtdvet:guarded_by mu
	frame       []byte                 // reusable framing buffer; dtdvet:guarded_by mu
}

type collection struct {
	docs []*xmltree.Document
	file *os.File // nil for in-memory stores
}

// Option configures a Store at Open time.
type Option func(*Store)

// WithSync sets the fsync policy for appended records, mirroring the WAL's
// policies: SyncAlways fsyncs after every Put, anything else leaves flushing
// to the OS (the default, matching the WAL's interval/off modes where the
// journal — not the docstore — is the durability source of truth).
func WithSync(p wal.SyncPolicy) Option {
	return func(s *Store) { s.sync = p }
}

// Open returns a Store rooted at dir, loading any existing segments.
// An empty dir yields an in-memory store.
func Open(dir string, opts ...Option) (*Store, error) {
	s := &Store{dir: dir, sync: wal.SyncOff, collections: make(map[string]*collection)}
	for _, opt := range opts {
		opt(s)
	}
	if dir == "" {
		return s, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("docstore: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("docstore: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".seg") {
			continue
		}
		name := strings.TrimSuffix(e.Name(), ".seg")
		if err := s.loadCollection(name); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Close releases the segment files. The store must not be used afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var firstErr error
	for _, c := range s.collections {
		if c.file != nil {
			if err := c.file.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
			c.file = nil
		}
	}
	return firstErr
}

func (s *Store) segPath(name string) string {
	return filepath.Join(s.dir, name+".seg")
}

// loadCollection reads one segment into memory, keeping the handle open for
// appends on success.
// dtdvet:allow locks -- called only from Open, before the store is shared
func (s *Store) loadCollection(name string) error {
	path := s.segPath(name)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return fmt.Errorf("docstore: %w", err)
	}
	loaded := false
	defer func() {
		if !loaded {
			_ = f.Close() // dtdvet:allow errsync -- error path: the load already failed and nothing was written
		}
	}()
	c := &collection{file: f}
	r := bufio.NewReader(f)
	var validEnd int64
	var buf []byte
	for {
		payload, err := wal.ReadFrame(r, buf)
		if errors.Is(err, io.EOF) {
			break
		}
		if errors.Is(err, wal.ErrTorn) {
			// The process died mid-append: drop the torn final record and
			// keep the intact prefix.
			if err := f.Truncate(validEnd); err != nil {
				return fmt.Errorf("docstore: truncating torn tail of %s: %w", path, err)
			}
			if err := f.Sync(); err != nil {
				return fmt.Errorf("docstore: %w", err)
			}
			break
		}
		if err != nil {
			// CRC mismatch on a complete frame is corruption, not a crash
			// signature — refuse to serve damaged documents.
			return fmt.Errorf("docstore: reading %s: %w", path, err)
		}
		buf = payload[:0]
		doc, err := xmltree.ParseString(string(payload))
		if err != nil {
			return fmt.Errorf("docstore: corrupt record in %s: %w", path, err)
		}
		validEnd += int64(wal.FrameHeaderSize + len(payload))
		c.docs = append(c.docs, doc)
	}
	if _, err := f.Seek(validEnd, io.SeekStart); err != nil {
		return fmt.Errorf("docstore: %w", err)
	}
	loaded = true
	s.collections[name] = c
	return nil
}

// ensure returns (creating if needed) the named collection.
// dtdvet:requires mu
func (s *Store) ensure(name string) (*collection, error) {
	if c, ok := s.collections[name]; ok {
		return c, nil
	}
	c := &collection{}
	if s.dir != "" {
		f, err := os.OpenFile(s.segPath(name), os.O_RDWR|os.O_CREATE|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("docstore: %w", err)
		}
		c.file = f
	}
	s.collections[name] = c
	return c, nil
}

// Put appends a document to the named collection.
func (s *Store) Put(name string, doc *xmltree.Document) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, err := s.ensure(name)
	if err != nil {
		return err
	}
	if c.file != nil {
		if err := s.appendRecord(c.file, doc); err != nil {
			return err
		}
	}
	c.docs = append(c.docs, doc)
	return nil
}

// PutRaw appends a document given as canonical serialized bytes — the
// streaming ingest path's spool, byte-identical to what Put would have
// framed — sparing the re-serialization. The bytes are parsed once for the
// in-memory collection (the store serves *Document values), so raw must be
// a well-formed document.
func (s *Store) PutRaw(name string, raw []byte) error {
	doc, err := xmltree.ParseString(string(raw))
	if err != nil {
		return fmt.Errorf("docstore: raw record: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	c, err := s.ensure(name)
	if err != nil {
		return err
	}
	if c.file != nil {
		s.frame = wal.EncodeFrame(s.frame[:0], raw)
		if _, err := c.file.Write(s.frame); err != nil {
			return fmt.Errorf("docstore: %w", err)
		}
		if s.sync == wal.SyncAlways {
			if err := c.file.Sync(); err != nil {
				return fmt.Errorf("docstore: %w", err)
			}
		}
	}
	c.docs = append(c.docs, doc)
	return nil
}

// appendRecord writes one CRC-framed record in a single Write call (so a
// crash tears at most the final record, never interleaves two), fsyncing
// per the store's policy. The lock covers the shared frame buffer.
// dtdvet:requires mu
func (s *Store) appendRecord(f *os.File, doc *xmltree.Document) error {
	var b strings.Builder
	if _, err := doc.WriteTo(&b); err != nil {
		return fmt.Errorf("docstore: %w", err)
	}
	s.frame = wal.EncodeFrame(s.frame[:0], []byte(b.String()))
	if _, err := f.Write(s.frame); err != nil {
		return fmt.Errorf("docstore: %w", err)
	}
	if s.sync == wal.SyncAlways {
		if err := f.Sync(); err != nil {
			return fmt.Errorf("docstore: %w", err)
		}
	}
	return nil
}

// Docs returns a copy of the documents of the named collection.
func (s *Store) Docs(name string) []*xmltree.Document {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.collections[name]
	if !ok {
		return nil
	}
	return append([]*xmltree.Document(nil), c.docs...)
}

// Len returns the number of documents in the named collection.
func (s *Store) Len(name string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if c, ok := s.collections[name]; ok {
		return len(c.docs)
	}
	return 0
}

// Collections returns the collection names, sorted.
func (s *Store) Collections() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.collections))
	for name := range s.collections {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Replace atomically replaces the contents of the named collection (used
// after adapting stored documents to an evolved schema). For durable
// stores the segment is rewritten via a temp file and renamed into place.
func (s *Store) Replace(name string, docs []*xmltree.Document) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, err := s.ensure(name)
	if err != nil {
		return err
	}
	if c.file != nil {
		tmpPath := s.segPath(name) + ".tmp"
		tmp, err := os.Create(tmpPath)
		if err != nil {
			return fmt.Errorf("docstore: %w", err)
		}
		closed, renamed := false, false
		defer func() {
			if !closed {
				_ = tmp.Close() // dtdvet:allow errsync -- error path: the replace already failed
			}
			if !renamed {
				os.Remove(tmpPath)
			}
		}()
		for _, doc := range docs {
			if err := s.appendRecord(tmp, doc); err != nil {
				return err
			}
		}
		if err := tmp.Sync(); err != nil {
			return fmt.Errorf("docstore: %w", err)
		}
		closed = true
		if err := tmp.Close(); err != nil {
			return fmt.Errorf("docstore: %w", err)
		}
		old := c.file
		if err := os.Rename(tmpPath, s.segPath(name)); err != nil {
			return fmt.Errorf("docstore: %w", err)
		}
		renamed = true
		_ = old.Close() // dtdvet:allow errsync -- superseded handle: the rename already replaced its segment
		f, err := os.OpenFile(s.segPath(name), os.O_RDWR|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("docstore: %w", err)
		}
		c.file = f
	}
	c.docs = append([]*xmltree.Document(nil), docs...)
	return nil
}

// Drop removes the named collection (and its segment file).
func (s *Store) Drop(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.collections[name]
	if !ok {
		return nil
	}
	delete(s.collections, name)
	if c.file != nil {
		cerr := c.file.Close()
		if err := os.Remove(s.segPath(name)); err != nil {
			return fmt.Errorf("docstore: %w", err)
		}
		if cerr != nil {
			return fmt.Errorf("docstore: closing segment %s: %w", name, cerr)
		}
	}
	return nil
}
