// Package shard partitions the document stream across N fully independent
// source.Source shards, so ingest scales across cores and disks instead of
// funneling every writer through one mutex and one WAL queue.
//
// A Router owns the shards and routes each document by rendezvous
// (highest-random-weight) hashing over a stable document key: the explicit
// key a client supplies (the X-Doc-Key header, or the per-item key of a
// batch), falling back to a hash of the document's serialized content.
// Every shard runs its own write lock, group-commit queue, WAL directory
// (shard-000, shard-001, …), background checkpointer (start offsets
// staggered across the interval so N shards never fsync-storm together)
// and sticky degraded flag — one shard going read-only must not poison the
// others.
//
// DTD registrations, trigger rules, forced evolutions and repository
// re-classifications broadcast to every shard: the DTD *set* is global,
// only the document population is partitioned, so each shard evolves its
// DTDs against the documents it owns (the paper's lifecycle is
// per-document-set, which is what makes the split sound). Broadcast
// mutations require every shard healthy; document ingest requires only the
// target shard.
//
// The shard count is fixed at creation and recorded in a manifest next to
// the per-shard WALs: rendezvous hashing minimizes key movement if a
// reshard tool ever migrates documents, but today a changed count is a
// rejected configuration error (see manifest.go), because shards evolve
// their DTDs independently and merging two shards' extended-DTD statistics
// is not replay-equivalent. See DESIGN.md §13.
//
// The durability layer must never drop a Sync/Close/Write error.
// dtdvet:strict errsync
//
// Per-shard fan-outs (recovery, broadcasts, checkpointer stops) must be
// tied to a WaitGroup or stop signal.
// dtdvet:strict golife
package shard

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"dtdevolve/internal/docstore"
	"dtdevolve/internal/dtd"
	"dtdevolve/internal/evolve"
	"dtdevolve/internal/metrics"
	"dtdevolve/internal/source"
	"dtdevolve/internal/xmltree"
)

// Options configures a Router.
type Options struct {
	// Shards is the number of independent shards; 0 or negative means 1.
	Shards int
	// Seed perturbs the rendezvous hash so distinct deployments spread the
	// same key space differently. Recover persists it in the manifest and
	// rejects a mismatch.
	Seed uint64
}

func (o *Options) normalize() {
	if o.Shards <= 0 {
		o.Shards = 1
	}
}

// DegradedError reports that an operation was refused because a specific
// shard's write-ahead log is in the sticky degraded state.
type DegradedError struct {
	Shard int
	Err   error
}

func (e *DegradedError) Error() string {
	return fmt.Sprintf("shard %d degraded: %v", e.Shard, e.Err)
}

func (e *DegradedError) Unwrap() error { return e.Err }

// Router routes documents across N independent shards. All routing state
// (the shard set, the hash salts) is immutable after New, so no Router
// lock is ever held across a shard call — the "never hold two shard locks
// at once" discipline is structural, not conventional. The only mutable
// state is shutdown bookkeeping, guarded by mu and never overlapping a
// shard operation.
type Router struct {
	cfg    source.Config
	shards []*source.Source
	salts  []uint64 // per-shard rendezvous salts, derived from seed
	seed   uint64
	dir    string // durable root ("" for in-memory routers)

	mu     sync.Mutex
	stops  []func() // dtdvet:guarded_by mu -- registered checkpointer stops
	closed bool     // dtdvet:guarded_by mu
}

// New returns a Router over opts.Shards fresh in-memory shards. For a
// durable router, use Recover, which wires per-shard WALs and checkpoints.
func New(cfg source.Config, opts Options) *Router {
	opts.normalize()
	r := &Router{
		cfg:    cfg,
		shards: make([]*source.Source, opts.Shards),
		salts:  makeSalts(opts.Shards, opts.Seed),
		seed:   opts.Seed,
	}
	for i := range r.shards {
		r.shards[i] = source.New(cfg)
	}
	return r
}

// splitmix64 is the canonical 64-bit finalizer-style mixer: cheap, and its
// avalanche is plenty for spreading shard salts and key hashes.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func makeSalts(n int, seed uint64) []uint64 {
	salts := make([]uint64, n)
	for i := range salts {
		salts[i] = splitmix64(seed + uint64(i) + 1)
	}
	return salts
}

// Shards returns the number of shards.
func (r *Router) Shards() int { return len(r.shards) }

// Seed returns the rendezvous hash seed.
func (r *Router) Seed() uint64 { return r.seed }

// Shard returns the i-th shard, for tests and per-shard inspection.
func (r *Router) Shard(i int) *source.Source { return r.shards[i] }

// KeyFor returns the routing key for a document: the explicit key when the
// client supplied one, else a hash of the serialized content. Explicit keys
// are cheaper (no serialization) and stable under semantically-neutral
// re-serialization, so batch clients should send them.
func (r *Router) KeyFor(explicit string, doc *xmltree.Document) string {
	if explicit != "" {
		return explicit
	}
	h := fnv.New64a()
	_, _ = h.Write([]byte(doc.String())) // dtdvet:allow errsync -- hash.Hash.Write never fails
	return fmt.Sprintf("%016x", h.Sum64())
}

// ShardFor maps a routing key to its shard by rendezvous hashing: the
// shard whose salted key hash is highest wins. Every key ranks every shard
// independently, so the assignment is stable, uniform, and — if a future
// reshard tool adds shards — moves only the keys the new shard wins.
func (r *Router) ShardFor(key string) int {
	h := fnv.New64a()
	_, _ = h.Write([]byte(key)) // dtdvet:allow errsync -- hash.Hash.Write never fails
	kh := h.Sum64()
	best, bestScore := 0, uint64(0)
	for i, salt := range r.salts {
		score := splitmix64(kh ^ salt)
		if i == 0 || score > bestScore {
			best, bestScore = i, score
		}
	}
	return best
}

// healthy returns nil when every shard accepts mutations, else a
// DegradedError naming the first degraded shard. Broadcast mutations (DTD
// registration, triggers, forced evolution, re-classification) must reach
// every shard's journal or none would stay replay-consistent, so they
// require full health.
func (r *Router) healthy() error {
	for i, s := range r.shards {
		if err := s.Degraded(); err != nil {
			return &DegradedError{Shard: i, Err: err}
		}
	}
	return nil
}

// AddDTD registers (or replaces) a DTD on every shard. Each shard gets its
// own clone: shards evolve their declarations independently, and a shared
// *dtd.DTD would couple them.
func (r *Router) AddDTD(name string, d *dtd.DTD) error {
	if err := r.healthy(); err != nil {
		return err
	}
	for i, s := range r.shards {
		dd := d
		if i > 0 {
			dd = d.Clone()
		}
		s.AddDTD(name, dd)
	}
	return nil
}

// DTD returns shard 0's copy of the named DTD (the shards share a
// registration history but may have evolved it differently; per-shard
// declarations are available via Shard(i).DTD).
func (r *Router) DTD(name string) *dtd.DTD { return r.shards[0].DTD(name) }

// Names returns the registered DTD names, sorted (identical on every
// shard: registrations broadcast).
func (r *Router) Names() []string { return r.shards[0].Names() }

// AddDocument routes one document to its shard and ingests it there. key
// "" falls back to content hashing. The target shard must be healthy; a
// degraded one yields a DegradedError while the other shards keep
// accepting documents.
func (r *Router) AddDocument(_ context.Context, key string, doc *xmltree.Document) (source.AddResult, error) {
	si := r.ShardFor(r.KeyFor(key, doc))
	if err := r.shards[si].Degraded(); err != nil {
		return source.AddResult{}, &DegradedError{Shard: si, Err: err}
	}
	return r.shards[si].Add(doc), nil
}

// ErrStreamKeyRequired reports a streaming ingest without an explicit
// routing key: the content-hash fallback needs the whole document, which
// is exactly what streaming avoids buffering.
var ErrStreamKeyRequired = errors.New("shard: streaming ingest requires an explicit routing key (content hashing would buffer the document)")

// AddDocumentStream routes one document stream to its shard by the
// explicit key and ingests it there through the one-pass streaming path.
// Unlike AddDocument there is no content-hash fallback — the router never
// sees the document bytes — so key must be non-empty.
func (r *Router) AddDocumentStream(_ context.Context, key string, rd io.Reader) (source.AddResult, error) {
	if key == "" {
		return source.AddResult{}, ErrStreamKeyRequired
	}
	si := r.ShardFor(key)
	if err := r.shards[si].Degraded(); err != nil {
		return source.AddResult{}, &DegradedError{Shard: si, Err: err}
	}
	return r.shards[si].AddStream(rd)
}

// AddBatchKeyed partitions a batch by routing key and fans the per-shard
// sub-batches out concurrently, one AddBatch per shard, returning results
// in input order. keys may be nil (all content-hashed) or must match docs
// in length. If any targeted shard is degraded the whole batch is refused
// — a batch is one durability promise, not len(docs) independent ones.
func (r *Router) AddBatchKeyed(ctx context.Context, keys []string, docs []*xmltree.Document) ([]source.AddResult, error) {
	if len(keys) != 0 && len(keys) != len(docs) {
		return nil, fmt.Errorf("shard: %d keys for %d documents", len(keys), len(docs))
	}
	byShard := make([][]int, len(r.shards))
	for i, doc := range docs {
		key := ""
		if len(keys) != 0 {
			key = keys[i]
		}
		si := r.ShardFor(r.KeyFor(key, doc))
		byShard[si] = append(byShard[si], i)
	}
	for si, idx := range byShard {
		if len(idx) == 0 {
			continue
		}
		if err := r.shards[si].Degraded(); err != nil {
			return nil, &DegradedError{Shard: si, Err: err}
		}
	}
	results := make([]source.AddResult, len(docs))
	errs := make([]error, len(r.shards))
	var wg sync.WaitGroup
	for si, idx := range byShard {
		if len(idx) == 0 {
			continue
		}
		wg.Add(1)
		go func(si int, idx []int) {
			defer wg.Done()
			sub := make([]*xmltree.Document, len(idx))
			for j, i := range idx {
				sub[j] = docs[i]
			}
			res, err := r.shards[si].AddBatchContext(ctx, sub)
			if err != nil {
				errs[si] = err
				return
			}
			for j, i := range idx {
				results[i] = res[j]
			}
		}(si, idx)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// EvolveNow forces the evolution phase for the named DTD on every shard
// (each evolves against its own recorded statistics) and returns the
// concatenated per-shard change reports plus the total number of
// repository documents recovered.
func (r *Router) EvolveNow(name string) (evolve.Report, int, error) {
	if err := r.healthy(); err != nil {
		return evolve.Report{}, 0, err
	}
	var merged evolve.Report
	total := 0
	for _, s := range r.shards {
		report, reclassified, err := s.EvolveNow(name)
		if err != nil {
			return evolve.Report{}, 0, err
		}
		merged.Changes = append(merged.Changes, report.Changes...)
		total += reclassified
	}
	return merged, total, nil
}

// Reclassify re-classifies every shard's repository against its current
// DTD set, returning the total number of documents recovered.
func (r *Router) Reclassify() (int, error) {
	if err := r.healthy(); err != nil {
		return 0, err
	}
	total := 0
	for _, s := range r.shards {
		total += s.ReclassifyRepository()
	}
	return total, nil
}

// RepositorySize returns the total number of unclassified documents across
// all shard repositories.
func (r *Router) RepositorySize() int {
	total := 0
	for _, s := range r.shards {
		total += s.RepositorySize()
	}
	return total
}

// SetTriggerRules installs the rule list on every shard.
func (r *Router) SetTriggerRules(src string) error {
	if err := r.healthy(); err != nil {
		return err
	}
	for _, s := range r.shards {
		if err := s.SetTriggerRules(src); err != nil {
			// A parse error fails on shard 0 before any shard applied it;
			// rule parsing is deterministic, so no shard diverges.
			return err
		}
	}
	return nil
}

// TriggerRules returns the installed rules (identical on every shard).
func (r *Router) TriggerRules() []string { return r.shards[0].TriggerRules() }

// Degraded returns non-nil only when EVERY shard is degraded — the point
// at which the service as a whole has nothing writable left. Individual
// shard failures surface per-operation (DegradedError) and in
// ShardStatuses.
func (r *Router) Degraded() error {
	var firstErr error
	for i, s := range r.shards {
		err := s.Degraded()
		if err == nil {
			return nil
		}
		if firstErr == nil {
			firstErr = &DegradedError{Shard: i, Err: err}
		}
	}
	return firstErr
}

// ShardStatus is the per-shard health and volume summary of GET /status.
type ShardStatus struct {
	Shard      int    `json:"shard"`
	Degraded   bool   `json:"degraded"`
	Error      string `json:"error,omitempty"`
	Added      int64  `json:"added"`
	Classified int64  `json:"classified"`
	Repository int    `json:"repository"`
	Evolutions int64  `json:"evolutions"`
}

// ShardStatuses returns one entry per shard, in shard order.
func (r *Router) ShardStatuses() []ShardStatus {
	out := make([]ShardStatus, len(r.shards))
	for i, s := range r.shards {
		m := s.Metrics()
		st := ShardStatus{
			Shard:      i,
			Added:      m.Added,
			Classified: m.Classified,
			Repository: s.RepositorySize(),
			Evolutions: m.Evolutions,
		}
		if err := s.Degraded(); err != nil {
			st.Degraded = true
			st.Error = err.Error()
		}
		out[i] = st
	}
	return out
}

// DTDStatus rolls the per-shard DTD states up by name: documents and
// evolutions sum, the check ratio reports the worst (highest) shard, and
// the serialized model is included only while every shard still agrees on
// it (shards evolve independently; after they diverge, per-shard models
// are available via Shard(i).Status()).
func (r *Router) DTDStatus() []source.DTDStatus {
	merged := make(map[string]*source.DTDStatus)
	agree := make(map[string]bool)
	for si, s := range r.shards {
		for _, st := range s.Status() {
			m, ok := merged[st.Name]
			if !ok {
				copied := st
				merged[st.Name] = &copied
				agree[st.Name] = true
				if si != 0 {
					// Registered on a later shard only: cannot happen via the
					// broadcast API, but stay deterministic anyway.
					agree[st.Name] = false
				}
				continue
			}
			m.Docs += st.Docs
			m.Evolutions += st.Evolutions
			if st.CheckRatio > m.CheckRatio {
				m.CheckRatio = st.CheckRatio
			}
			if st.Model != m.Model {
				agree[st.Name] = false
			}
		}
	}
	names := make([]string, 0, len(merged))
	for name := range merged {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]source.DTDStatus, 0, len(names))
	for _, name := range names {
		st := *merged[name]
		if !agree[name] {
			st.Model = ""
		}
		out = append(out, st)
	}
	return out
}

// Metrics returns the rolled-up ingest counters plus the per-shard
// snapshots they were aggregated from.
func (r *Router) Metrics() (metrics.IngestSnapshot, []metrics.IngestSnapshot) {
	per := make([]metrics.IngestSnapshot, len(r.shards))
	for i, s := range r.shards {
		per[i] = s.Metrics()
	}
	return metrics.Aggregate(per), per
}

// routerSnapshot is the JSON shape of a shard-merged snapshot: the routing
// parameters plus every shard's own checkpoint document, in shard order.
type routerSnapshot struct {
	Version        int               `json:"version"`
	Shards         int               `json:"shards"`
	Seed           uint64            `json:"seed"`
	ShardSnapshots []json.RawMessage `json:"shard_snapshots"`
}

// Snapshot serializes every shard's state into one merged document. Each
// shard snapshots independently (its own read lock); the merged snapshot
// is a point-in-time view per shard, not a global cut — identical to what
// N independent checkpoints provide. The merged bytes are compared across
// primary/replica pairs, so the emission must be deterministic.
// dtdvet:replayroot
func (r *Router) Snapshot() ([]byte, error) {
	merged := routerSnapshot{
		Version: manifestVersion,
		Shards:  len(r.shards),
		Seed:    r.seed,
	}
	for i, s := range r.shards {
		data, err := s.Snapshot()
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		merged.ShardSnapshots = append(merged.ShardSnapshots, data)
	}
	return json.Marshal(merged)
}

// EnableGroupCommit routes every shard's commits through its own
// leader/follower group-commit queue (one WAL append + one fsync per group
// per shard; see source/groupcommit.go).
func (r *Router) EnableGroupCommit(opts source.GroupCommitOptions) {
	for _, s := range r.shards {
		s.EnableGroupCommit(opts)
	}
}

// EnableStore attaches a per-shard document store under dir (shard-000,
// shard-001, … subdirectories).
func (r *Router) EnableStore(dir string, opts ...docstore.Option) error {
	for i, s := range r.shards {
		sub := dir
		if dir != "" {
			sub = filepath.Join(dir, shardName(i))
		}
		if err := s.EnableStore(sub, opts...); err != nil {
			return fmt.Errorf("shard %d store: %w", i, err)
		}
	}
	return nil
}

// CloseStores closes every shard's document store.
func (r *Router) CloseStores() error {
	var errs []error
	for i, s := range r.shards {
		if err := s.CloseStore(); err != nil {
			errs = append(errs, fmt.Errorf("shard %d: %w", i, err))
		}
	}
	return errors.Join(errs...)
}

// StartCheckpointers starts one background checkpointer per shard, each
// writing that shard's checkpoint file under the router's durable
// directory. Start offsets are staggered deterministically across the
// interval (shard i first fires at i/N of it), so N co-located shards
// spread their snapshot+fsync bursts instead of storming the disk
// together. The returned stop function stops them all (each runs a final
// checkpoint), concurrently. Only valid on a Recover-built router.
func (r *Router) StartCheckpointers(interval time.Duration, onErr func(shard int, err error)) (stop func(), err error) {
	if r.dir == "" {
		return nil, errors.New("shard: StartCheckpointers needs a durable router (Recover)")
	}
	if interval <= 0 {
		interval = 30 * time.Second
	}
	n := len(r.shards)
	stops := make([]func(), n)
	for i, s := range r.shards {
		i := i
		phase := interval * time.Duration(i) / time.Duration(n)
		cb := func(err error) {
			if onErr != nil {
				onErr(i, err)
			}
		}
		stops[i] = s.StartCheckpointerDelayed(r.checkpointPath(i), interval, phase, cb)
	}
	stopAll := func() {
		var wg sync.WaitGroup
		for _, f := range stops {
			wg.Add(1)
			go func(f func()) {
				defer wg.Done()
				f()
			}(f)
		}
		wg.Wait()
	}
	r.mu.Lock()
	r.stops = append(r.stops, stopAll)
	r.mu.Unlock()
	return stopAll, nil
}

// CloseWALs detaches and closes every shard's write-ahead log.
func (r *Router) CloseWALs() error {
	var errs []error
	for i, s := range r.shards {
		if err := s.CloseWAL(); err != nil {
			errs = append(errs, fmt.Errorf("shard %d: %w", i, err))
		}
	}
	return errors.Join(errs...)
}

// Close stops every registered checkpointer (each writes a final
// checkpoint) and closes every shard WAL. Idempotent.
func (r *Router) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	stops := r.stops
	r.stops = nil
	r.mu.Unlock()
	// The stops run outside mu: they checkpoint, which takes shard locks,
	// and the router must never hold its own lock across a shard call.
	for _, f := range stops {
		f()
	}
	return r.CloseWALs()
}

// checkpointPath is the checkpoint file of shard i under the durable root.
func (r *Router) checkpointPath(i int) string {
	return filepath.Join(r.dir, CheckpointFileName(i))
}

// CheckpointFileName is the checkpoint file name of shard i under a
// durable root (checkpoint-000.json, …), exported so a follower replica
// can mirror the primary's layout exactly.
func CheckpointFileName(i int) string { return fmt.Sprintf("checkpoint-%03d.json", i) }

// shardName is the per-shard subdirectory name (WAL and store layout).
func shardName(i int) string { return fmt.Sprintf("shard-%03d", i) }

// Dir returns the router's durable root ("" for in-memory routers).
func (r *Router) Dir() string { return r.dir }

// WALDir returns the WAL directory of shard i under the durable root. The
// replication primary reads sealed segment files from it directly.
func (r *Router) WALDir(i int) string { return filepath.Join(r.dir, shardName(i)) }

// CheckpointFile returns the checkpoint file of shard i under the durable
// root. The replication primary ships its contents to bootstrapping
// followers.
func (r *Router) CheckpointFile(i int) string { return r.checkpointPath(i) }

// ShardDirName returns the per-shard subdirectory name used by the durable
// layout (shard-000, shard-001, …), so a follower can mirror the primary's
// directory structure exactly and a promoted replica directory is directly
// recoverable by Recover.
func ShardDirName(i int) string { return shardName(i) }

// NewReplica wires an already-built shard set into a read-only router:
// same rendezvous salts (from seed), same snapshot shape, no durable root
// of its own — the follower runtime owns the shards' directories and WALs.
// The shards are expected to be in replica mode; registry mutations through
// the router would journal nothing and must not be offered (the serving
// layer enforces read-only).
func NewReplica(cfg source.Config, shards []*source.Source, seed uint64) *Router {
	return &Router{
		cfg:    cfg,
		shards: shards,
		salts:  makeSalts(len(shards), seed),
		seed:   seed,
	}
}
