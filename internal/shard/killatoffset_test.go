package shard

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"testing"

	"dtdevolve/internal/source"
	"dtdevolve/internal/wal"
)

// killShards is the shard count of the kill-at-every-offset suite; the
// DTDEVOLVE_SHARDS environment variable overrides it (the CI matrix runs
// the suite at 4).
func killShards() int {
	if s := os.Getenv("DTDEVOLVE_SHARDS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return 4
}

// copyTree copies the two-level router directory layout (manifest,
// checkpoints, shard-*/wal-*.log) from src to dst.
func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		from := filepath.Join(src, e.Name())
		to := filepath.Join(dst, e.Name())
		if e.IsDir() {
			if err := os.MkdirAll(to, 0o755); err != nil {
				t.Fatal(err)
			}
			copyTree(t, from, to)
			continue
		}
		in, err := os.Open(from)
		if err != nil {
			t.Fatal(err)
		}
		out, err := os.Create(to)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := io.Copy(out, in); err != nil {
			t.Fatal(err)
		}
		in.Close()
		if err := out.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// truncateShardStream rewrites dir's wal-*.log segment byte stream (in
// segment order) to its first cut bytes, like a crash at that offset.
func truncateShardStream(t *testing.T, dir string, cut int) {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil {
		t.Fatal(err)
	}
	remaining := cut
	for _, p := range segs {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if len(data) <= remaining {
			remaining -= len(data)
			continue
		}
		if remaining <= 0 {
			if err := os.Remove(p); err != nil {
				t.Fatal(err)
			}
			continue
		}
		if err := os.WriteFile(p, data[:remaining], 0o644); err != nil {
			t.Fatal(err)
		}
		remaining = 0
	}
}

// TestKillAtEveryOffsetSharded is the sharded end-to-end durability
// property: for every shard and every record boundary (plus torn
// mid-record offsets) of that shard's WAL stream, cut the stream there,
// recover the whole router, and check
//
//   - the cut shard's state equals a reference source that ran exactly the
//     durable prefix of its op sequence,
//   - every untouched shard recovers to exactly its live state (one
//     shard's crash must not perturb the others),
//   - a mid-record cut is reported as a torn tail on that shard alone.
func TestKillAtEveryOffsetSharded(t *testing.T) {
	n := killShards()
	dir := t.TempDir()
	walOpts := wal.Options{Sync: wal.SyncOff, SegmentSize: 512}
	live, _, err := Recover(testConfig(), dir, walOpts, Options{Shards: n, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	maybeEnableGroupCommit(live)
	if err := live.AddDTD("article", articleDTD()); err != nil {
		t.Fatal(err)
	}
	shapes := []string{
		`<article><title>t</title><body>b</body></article>`,
		`<article><title>t</title><author>a</author><body>b</body></article>`,
		`<invoice><total>3</total></invoice>`,
		`<article><title>u</title><ref/><body>c</body></article>`,
	}
	docCount := 4 * n // a few documents per shard in expectation
	for i := 0; i < docCount; i++ {
		key := fmt.Sprintf("doc-%d", i)
		if _, err := live.AddDocument(context.Background(), key, parseDoc(t, shapes[i%len(shapes)])); err != nil {
			t.Fatal(err)
		}
	}
	liveSnaps := make([]map[string]any, n)
	for i := range liveSnaps {
		liveSnaps[i] = snapshotOf(t, live.Shard(i))
	}
	if err := live.CloseWALs(); err != nil {
		t.Fatal(err)
	}

	for si := 0; si < n; si++ {
		// Reference snapshots of shard si after each journaled record
		// prefix, derived from the stream itself through a replica-mode
		// source (auto-evolution decisions are records of their own) —
		// while also collecting record boundaries, plus a torn offset
		// inside every record.
		shardDir := filepath.Join(dir, shardName(si))
		ref := source.New(testConfig())
		ref.SetReplica(true)
		refs := []map[string]any{snapshotOf(t, ref)}
		offsets := map[int]bool{0: true}
		boundary := 0
		if _, err := wal.Replay(shardDir, func(p []byte) error {
			if err := ref.ApplyWALRecord(p); err != nil {
				return err
			}
			refs = append(refs, snapshotOf(t, ref))
			offsets[boundary+3] = true // torn: mid-header or mid-payload
			boundary += 8 + len(p)
			offsets[boundary] = true
			return nil
		}); err != nil {
			t.Fatal(err)
		}

		for cut := range offsets {
			sub := t.TempDir()
			copyTree(t, dir, sub)
			truncateShardStream(t, filepath.Join(sub, shardName(si)), cut)

			recovered, infos, err := Recover(testConfig(), sub, walOpts, Options{})
			if err != nil {
				t.Fatalf("shard %d cut %d: recovery failed: %v", si, cut, err)
			}
			info := infos[si]
			if info.Replayed >= len(refs) {
				t.Fatalf("shard %d cut %d: replayed %d > %d journaled ops", si, cut, info.Replayed, len(refs)-1)
			}
			if got, want := snapshotOf(t, recovered.Shard(si)), refs[info.Replayed]; !reflect.DeepEqual(got, want) {
				t.Errorf("shard %d cut %d (replayed %d): recovered state != reference prefix\n got: %v\nwant: %v",
					si, cut, info.Replayed, got, want)
			}
			if !offsets[cut] {
				t.Fatalf("impossible: cut %d not in offsets", cut)
			}
			for sj := 0; sj < n; sj++ {
				if sj == si {
					continue
				}
				if infos[sj].Truncated || infos[sj].Corrupted {
					t.Errorf("shard %d cut %d: untouched shard %d reports torn/corrupt: %+v", si, cut, sj, infos[sj])
				}
				if got := snapshotOf(t, recovered.Shard(sj)); !reflect.DeepEqual(got, liveSnaps[sj]) {
					t.Errorf("shard %d cut %d: untouched shard %d diverged from live state", si, cut, sj)
				}
			}
			// After recovery, every shard — including the cut one — must
			// accept writes again: the crash consumed no shard's health.
			key := keyOn(t, recovered, si)
			if _, err := recovered.AddDocument(context.Background(), key, parseDoc(t, shapes[0])); err != nil {
				t.Errorf("shard %d cut %d: recovered shard refuses writes: %v", si, cut, err)
			}
			if err := recovered.CloseWALs(); err != nil {
				t.Fatalf("shard %d cut %d: close: %v", si, cut, err)
			}
		}
	}
}
