// The shard manifest and recovery fan-in.
//
// A durable router's directory layout is
//
//	dir/manifest.json        shard count + rendezvous seed (this file)
//	dir/shard-000/ …         per-shard WAL directories (wal-*.log segments)
//	dir/checkpoint-000.json  per-shard checkpoints
//
// The manifest pins the routing parameters: recovering with a different
// shard count (or seed) would silently route keys to shards that never saw
// their history, so a mismatch is a hard configuration error — resharding
// requires an explicit migration tool, not a flag change. See DESIGN.md §13.
package shard

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"dtdevolve/internal/source"
	"dtdevolve/internal/wal"
)

// manifestVersion is the on-disk format version of manifest.json and of
// the shard-merged snapshot document.
const manifestVersion = 1

// manifestFile is the manifest's file name under the router directory.
const manifestFile = "manifest.json"

// manifest pins a durable router's immutable routing parameters.
type manifest struct {
	Version int    `json:"version"`
	Shards  int    `json:"shards"`
	Seed    uint64 `json:"seed"`
}

// loadManifest reads dir's manifest; ok is false when none exists yet.
func loadManifest(dir string) (m manifest, ok bool, err error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestFile))
	if os.IsNotExist(err) {
		return manifest{}, false, nil
	}
	if err != nil {
		return manifest{}, false, err
	}
	if err := json.Unmarshal(data, &m); err != nil {
		return manifest{}, false, fmt.Errorf("shard: decoding %s: %w", manifestFile, err)
	}
	return m, true, nil
}

// writeManifest persists the manifest atomically (temp + fsync + rename +
// directory fsync), so a crash during creation leaves either no manifest
// (a fresh directory, re-initialized next start) or a complete one.
func writeManifest(dir string, m manifest) error {
	data, err := json.Marshal(m)
	if err != nil {
		return err
	}
	return source.WriteFileAtomic(filepath.Join(dir, manifestFile), data)
}

// ReadManifest reads dir's manifest and returns its routing parameters;
// ok is false when no manifest exists. A follower replica uses it to
// verify its local mirror matches the primary's layout across restarts.
func ReadManifest(dir string) (shards int, seed uint64, ok bool, err error) {
	m, ok, err := loadManifest(dir)
	if err != nil || !ok {
		return 0, 0, ok, err
	}
	if m.Version != manifestVersion {
		return 0, 0, false, fmt.Errorf("shard: manifest version %d, want %d", m.Version, manifestVersion)
	}
	return m.Shards, m.Seed, true, nil
}

// WriteManifest atomically writes dir's manifest. A follower replica uses
// it to mirror the primary's layout, so its directory — manifest plus
// per-shard checkpoint and WAL files — is directly recoverable (and
// promotable) by Recover with the exact same routing parameters.
func WriteManifest(dir string, shards int, seed uint64) error {
	return writeManifest(dir, manifest{Version: manifestVersion, Shards: shards, Seed: seed})
}

// checkLayout rejects a directory that holds a legacy single-source WAL:
// its wal-*.log segments belong to an unsharded deployment, and silently
// ignoring them would drop acknowledged history. The operator must either
// keep -shards=1 (the legacy path reads the directory as before) or
// migrate explicitly.
func checkLayout(dir string) error {
	legacy, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil {
		return err
	}
	if len(legacy) > 0 {
		return fmt.Errorf("shard: %s holds a single-source WAL (%d wal-*.log segments); it cannot be opened sharded — keep -shards=1, or migrate the data explicitly", dir, len(legacy))
	}
	return nil
}

// Recover rebuilds a durable Router from dir: each shard recovers in
// parallel from its own checkpoint + WAL pair (source.Recover — torn tails
// truncated, corruption quarantined, per shard), and the WALs are
// reattached so the router is immediately durable again. A fresh directory
// is initialized with a manifest recording opts; an existing manifest must
// match opts (changing the shard count requires resharding and is
// rejected). The returned RecoveryInfo slice has one entry per shard.
// dtdvet:replayroot
func Recover(cfg source.Config, dir string, walOpts wal.Options, opts Options) (*Router, []source.RecoveryInfo, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	if err := checkLayout(dir); err != nil {
		return nil, nil, err
	}
	man, ok, err := loadManifest(dir)
	if err != nil {
		return nil, nil, err
	}
	if ok {
		if man.Version != manifestVersion {
			return nil, nil, fmt.Errorf("shard: manifest version %d, want %d", man.Version, manifestVersion)
		}
		// Zero opts mean "adopt the manifest"; an explicit value must match.
		if opts.Shards > 0 && man.Shards != opts.Shards {
			return nil, nil, fmt.Errorf("shard: directory %s was created with %d shards, configured for %d — changing the shard count requires resharding (migrate with a new directory), not a flag change", dir, man.Shards, opts.Shards)
		}
		if opts.Seed != 0 && opts.Seed != man.Seed {
			return nil, nil, fmt.Errorf("shard: directory %s was created with hash seed %d, configured for %d", dir, man.Seed, opts.Seed)
		}
		opts.Shards = man.Shards
		opts.Seed = man.Seed
		opts.normalize()
	} else {
		opts.normalize()
		if err := writeManifest(dir, manifest{Version: manifestVersion, Shards: opts.Shards, Seed: opts.Seed}); err != nil {
			return nil, nil, err
		}
	}

	r := &Router{
		cfg:    cfg,
		shards: make([]*source.Source, opts.Shards),
		salts:  makeSalts(opts.Shards, opts.Seed),
		seed:   opts.Seed,
		dir:    dir,
	}
	infos := make([]source.RecoveryInfo, opts.Shards)
	errs := make([]error, opts.Shards)
	var wg sync.WaitGroup
	for i := 0; i < opts.Shards; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var snapshot []byte
			data, err := os.ReadFile(r.checkpointPath(i))
			switch {
			case err == nil:
				snapshot = data
			case !os.IsNotExist(err):
				errs[i] = fmt.Errorf("shard %d checkpoint: %w", i, err)
				return
			}
			s, info, err := source.Recover(cfg, snapshot, filepath.Join(dir, shardName(i)), walOpts)
			if err != nil {
				errs[i] = fmt.Errorf("shard %d: %w", i, err)
				return
			}
			r.shards[i] = s
			infos[i] = info
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			// Fan-in failed: release the WALs the successful shards opened
			// before reporting the first failure (in shard order).
			for _, s := range r.shards {
				if s != nil {
					_ = s.CloseWAL() // dtdvet:allow errsync -- error path: the recovery error is being returned
				}
			}
			return nil, infos, err
		}
	}
	return r, infos, nil
}
