package shard

import (
	"context"
	"errors"
	"testing"

	"dtdevolve/internal/wal"
	"dtdevolve/internal/wal/faultfs"
)

// degradedRouter builds a 4-shard router whose target shard journals
// through a fault-injecting filesystem; the other shards get healthy WALs.
// It returns the router, the faulty FS, and the degraded shard's index.
func degradedRouter(t *testing.T) (*Router, *faultfs.FS, int) {
	t.Helper()
	r := New(testConfig(), Options{Shards: 4})
	maybeEnableGroupCommit(r)
	const target = 2
	fs := faultfs.New()
	for i := 0; i < r.Shards(); i++ {
		opts := wal.Options{Sync: wal.SyncOff}
		if i == target {
			opts.FS = fs
		}
		w, err := wal.Open(t.TempDir(), opts)
		if err != nil {
			t.Fatal(err)
		}
		r.Shard(i).AttachWAL(w)
		t.Cleanup(func() { r.Shard(i).CloseWAL() })
	}
	if err := r.AddDTD("article", articleDTD()); err != nil {
		t.Fatal(err)
	}
	// Kill shard 2's disk and trip its sticky degraded flag with one write.
	fs.FailWritesAfter(0)
	key := keyOn(t, r, target)
	if _, err := r.AddDocument(context.Background(), key, parseDoc(t, `<article><title>t</title><body>b</body></article>`)); err == nil {
		// The first failing add may still succeed at the API level when the
		// WAL error surfaces asynchronously; what matters is the flag below.
		t.Log("first add on the dying shard did not error (flag checked next)")
	}
	if r.Shard(target).Degraded() == nil {
		t.Fatal("target shard not degraded after WAL write failure")
	}
	return r, fs, target
}

// TestDegradedShardIsolation is the blast-radius property: one shard's dead
// disk leaves every other shard writable, the router reports shard-level
// health, and only operations touching the dead shard are refused.
func TestDegradedShardIsolation(t *testing.T) {
	r, _, target := degradedRouter(t)

	// The router as a whole is NOT degraded: three shards can still promise
	// durability.
	if err := r.Degraded(); err != nil {
		t.Errorf("router degraded with 3 healthy shards: %v", err)
	}

	// Documents routed to healthy shards keep flowing.
	for i := 0; i < r.Shards(); i++ {
		if i == target {
			continue
		}
		key := keyOn(t, r, i)
		res, err := r.AddDocument(context.Background(), key, parseDoc(t, `<article><title>u</title><body>c</body></article>`))
		if err != nil {
			t.Errorf("healthy shard %d refused a document: %v", i, err)
		} else if !res.Classified {
			t.Errorf("healthy shard %d did not classify", i)
		}
	}

	// A document routed to the dead shard is refused with a typed error
	// naming the shard.
	key := keyOn(t, r, target)
	_, err := r.AddDocument(context.Background(), key, parseDoc(t, `<article><title>v</title><body>d</body></article>`))
	var de *DegradedError
	if !errors.As(err, &de) {
		t.Fatalf("add to degraded shard: err = %v, want *DegradedError", err)
	}
	if de.Shard != target {
		t.Errorf("DegradedError.Shard = %d, want %d", de.Shard, target)
	}

	// ShardStatuses reports exactly one degraded shard.
	degraded := 0
	for _, st := range r.ShardStatuses() {
		if st.Degraded {
			degraded++
			if st.Shard != target {
				t.Errorf("shard %d reported degraded, want %d", st.Shard, target)
			}
			if st.Error == "" {
				t.Error("degraded shard status carries no error")
			}
		}
	}
	if degraded != 1 {
		t.Errorf("%d shards degraded, want 1", degraded)
	}
}

// TestDegradedShardRefusesBatchAndBroadcast checks the all-or-nothing
// paths: a batch touching the dead shard is refused whole, and broadcast
// mutations (which must reach every shard's journal) are refused too.
func TestDegradedShardRefusesBatchAndBroadcast(t *testing.T) {
	r, _, target := degradedRouter(t)

	healthy := (target + 1) % r.Shards()
	keys := []string{keyOn(t, r, healthy), keyOn(t, r, target)}
	docs := parseDocsShard(t, []string{
		`<article><title>a</title><body>b</body></article>`,
		`<article><title>c</title><body>d</body></article>`,
	})
	added := r.Shard(healthy).Metrics().Added
	_, err := r.AddBatchKeyed(context.Background(), keys, docs)
	var de *DegradedError
	if !errors.As(err, &de) || de.Shard != target {
		t.Fatalf("batch touching degraded shard: err = %v, want *DegradedError{Shard: %d}", err, target)
	}
	if got := r.Shard(healthy).Metrics().Added; got != added {
		t.Errorf("refused batch still committed %d documents on the healthy shard", got-added)
	}
	// A batch avoiding the dead shard goes through.
	if _, err := r.AddBatchKeyed(context.Background(), keys[:1], docs[:1]); err != nil {
		t.Errorf("batch on healthy shards refused: %v", err)
	}

	if err := r.AddDTD("extra", articleDTD()); !errors.As(err, &de) {
		t.Errorf("broadcast AddDTD with a degraded shard: err = %v, want *DegradedError", err)
	}
	if err := r.SetTriggerRules("on article when docs >= 4 do evolve"); !errors.As(err, &de) {
		t.Errorf("broadcast SetTriggerRules with a degraded shard: err = %v, want *DegradedError", err)
	}
	if _, _, err := r.EvolveNow("article"); !errors.As(err, &de) {
		t.Errorf("broadcast EvolveNow with a degraded shard: err = %v, want *DegradedError", err)
	}
}

// TestAllShardsDegradedTripsRouter checks the blanket read-only gate: only
// when every shard has lost durability does the router itself report
// degraded.
func TestAllShardsDegradedTripsRouter(t *testing.T) {
	r := New(testConfig(), Options{Shards: 2})
	maybeEnableGroupCommit(r)
	fs := faultfs.New()
	for i := 0; i < r.Shards(); i++ {
		w, err := wal.Open(t.TempDir(), wal.Options{Sync: wal.SyncOff, FS: fs})
		if err != nil {
			t.Fatal(err)
		}
		r.Shard(i).AttachWAL(w)
		t.Cleanup(func() { r.Shard(i).CloseWAL() })
	}
	if err := r.AddDTD("article", articleDTD()); err != nil {
		t.Fatal(err)
	}
	fs.FailWritesAfter(0)
	for i := 0; i < r.Shards(); i++ {
		key := keyOn(t, r, i)
		_, _ = r.AddDocument(context.Background(), key, parseDoc(t, `<article><title>t</title><body>b</body></article>`))
	}
	if r.Degraded() == nil {
		t.Fatal("router not degraded with every shard degraded")
	}
	var de *DegradedError
	if err := r.Degraded(); !errors.As(err, &de) {
		t.Errorf("router Degraded() = %v, want *DegradedError", err)
	}
}
