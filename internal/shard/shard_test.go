package shard

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"dtdevolve/internal/dtd"
	"dtdevolve/internal/source"
	"dtdevolve/internal/wal"
	"dtdevolve/internal/xmltree"
)

func testConfig() source.Config {
	cfg := source.DefaultConfig()
	cfg.MinDocs = 5
	return cfg
}

func parseDoc(t *testing.T, src string) *xmltree.Document {
	t.Helper()
	doc, err := xmltree.ParseString(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return doc
}

func parseDocsShard(t *testing.T, srcs []string) []*xmltree.Document {
	t.Helper()
	docs := make([]*xmltree.Document, len(srcs))
	for i, s := range srcs {
		docs[i] = parseDoc(t, s)
	}
	return docs
}

func articleDTD() *dtd.DTD {
	d := dtd.MustParse(`
<!ELEMENT article (title, body)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT body (#PCDATA)>`)
	d.Name = "article"
	return d
}

// maybeEnableGroupCommit mirrors the source package's env hook: CI runs the
// fault-injection suite with DTDEVOLVE_GROUP_COMMIT both unset and set, so
// the sharded durability tests exercise both commit pipelines too.
func maybeEnableGroupCommit(r *Router) {
	if os.Getenv("DTDEVOLVE_GROUP_COMMIT") != "" {
		r.EnableGroupCommit(source.GroupCommitOptions{})
	}
}

// snapshotOf decodes a shard's snapshot for deep comparison, dropping the
// WAL position (recovered shards checkpoint at different offsets).
func snapshotOf(t *testing.T, s *source.Source) map[string]any {
	t.Helper()
	data, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	delete(m, "wal_seq")
	return m
}

// keyOn returns a key the router routes to the wanted shard (rendezvous
// hashing is uniform, so a handful of probes suffice).
func keyOn(t *testing.T, r *Router, shard int) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		key := fmt.Sprintf("key-%d", i)
		if r.ShardFor(key) == shard {
			return key
		}
	}
	t.Fatalf("no key found for shard %d", shard)
	return ""
}

func TestShardForDeterministicStableBalanced(t *testing.T) {
	a := New(testConfig(), Options{Shards: 8, Seed: 7})
	b := New(testConfig(), Options{Shards: 8, Seed: 7})
	counts := make([]int, 8)
	for i := 0; i < 8000; i++ {
		key := fmt.Sprintf("doc-%d", i)
		si := a.ShardFor(key)
		if sj := b.ShardFor(key); sj != si {
			t.Fatalf("key %q: router A says shard %d, router B says %d (same seed must agree)", key, si, sj)
		}
		counts[si]++
	}
	for si, n := range counts {
		// 8000 keys over 8 shards: mean 1000; a uniform hash stays well
		// inside ±40%.
		if n < 600 || n > 1400 {
			t.Errorf("shard %d owns %d of 8000 keys; distribution too skewed: %v", si, n, counts)
		}
	}
	// A different seed must spread the same keys differently.
	c := New(testConfig(), Options{Shards: 8, Seed: 8})
	moved := 0
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("doc-%d", i)
		if a.ShardFor(key) != c.ShardFor(key) {
			moved++
		}
	}
	if moved < 500 {
		t.Errorf("only %d/1000 keys moved under a different seed", moved)
	}
}

func TestKeyForExplicitWinsContentHashStable(t *testing.T) {
	r := New(testConfig(), Options{Shards: 4})
	doc := parseDoc(t, `<article><title>t</title><body>b</body></article>`)
	if got := r.KeyFor("user-42", doc); got != "user-42" {
		t.Errorf("explicit key: got %q", got)
	}
	same := parseDoc(t, `<article><title>t</title><body>b</body></article>`)
	if r.KeyFor("", doc) != r.KeyFor("", same) {
		t.Error("content hash must be stable across identical documents")
	}
	other := parseDoc(t, `<article><title>u</title><body>b</body></article>`)
	if r.KeyFor("", doc) == r.KeyFor("", other) {
		t.Error("different documents hashed to the same key (suspicious)")
	}
}

func TestAddDocumentRoutesToItsShard(t *testing.T) {
	r := New(testConfig(), Options{Shards: 4})
	if err := r.AddDTD("article", articleDTD()); err != nil {
		t.Fatal(err)
	}
	target := 2
	key := keyOn(t, r, target)
	res, err := r.AddDocument(context.Background(), key, parseDoc(t, `<article><title>t</title><body>b</body></article>`))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Classified {
		t.Error("document not classified")
	}
	for i := 0; i < r.Shards(); i++ {
		want := int64(0)
		if i == target {
			want = 1
		}
		if got := r.Shard(i).Metrics().Added; got != want {
			t.Errorf("shard %d Added = %d, want %d", i, got, want)
		}
	}
}

func TestAddBatchKeyedOrderAndValidation(t *testing.T) {
	r := New(testConfig(), Options{Shards: 4})
	if err := r.AddDTD("article", articleDTD()); err != nil {
		t.Fatal(err)
	}
	srcs := []string{
		`<article><title>a</title><body>b</body></article>`,
		`<alien><x/><y/></alien>`,
		`<article><title>c</title><body>d</body></article>`,
		`<alien><z/></alien>`,
		`<article><title>e</title><body>f</body></article>`,
	}
	docs := make([]*xmltree.Document, len(srcs))
	keys := make([]string, len(srcs))
	for i, s := range srcs {
		docs[i] = parseDoc(t, s)
		keys[i] = keyOn(t, r, i%r.Shards())
	}
	results, err := r.AddBatchKeyed(context.Background(), keys, docs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(docs) {
		t.Fatalf("got %d results for %d documents", len(results), len(docs))
	}
	// Results must be in input order: the alien documents (indexes 1, 3)
	// land in the repository, the articles classify.
	for i, res := range results {
		wantClassified := i%2 == 0
		if res.Classified != wantClassified {
			t.Errorf("result %d: Classified = %v, want %v", i, res.Classified, wantClassified)
		}
	}
	if got := r.RepositorySize(); got != 2 {
		t.Errorf("RepositorySize = %d, want 2", got)
	}
	if _, err := r.AddBatchKeyed(context.Background(), keys[:2], docs); err == nil {
		t.Error("mismatched key count accepted")
	}
}

func TestBroadcastDTDAndTriggersReachEveryShard(t *testing.T) {
	r := New(testConfig(), Options{Shards: 3})
	if err := r.AddDTD("article", articleDTD()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < r.Shards(); i++ {
		if r.Shard(i).DTD("article") == nil {
			t.Errorf("shard %d missing broadcast DTD", i)
		}
	}
	// Shards must not share the *dtd.DTD: evolving one may not mutate the
	// others' declarations.
	if r.Shard(0).DTD("article") == r.Shard(1).DTD("article") {
		t.Error("shards share one *dtd.DTD instance")
	}
	rule := "on article when docs >= 4 and check_ratio > 0.1 do evolve"
	if err := r.SetTriggerRules(rule); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < r.Shards(); i++ {
		if got := r.Shard(i).TriggerRules(); len(got) != 1 {
			t.Errorf("shard %d rules = %v", i, got)
		}
	}
	if got := r.TriggerRules(); len(got) != 1 {
		t.Errorf("router rules = %v", got)
	}
}

func TestDTDStatusRollsUpAcrossShards(t *testing.T) {
	r := New(testConfig(), Options{Shards: 2})
	if err := r.AddDTD("article", articleDTD()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		key := keyOn(t, r, i)
		if _, err := r.AddDocument(context.Background(), key, parseDoc(t, `<article><title>t</title><body>b</body></article>`)); err != nil {
			t.Fatal(err)
		}
	}
	sts := r.DTDStatus()
	if len(sts) != 1 || sts[0].Name != "article" {
		t.Fatalf("DTDStatus = %+v", sts)
	}
	if sts[0].Docs != 2 {
		t.Errorf("rolled-up Docs = %d, want 2 (1 per shard)", sts[0].Docs)
	}
	if sts[0].Model == "" {
		t.Error("model dropped although every shard still agrees")
	}
}

func TestMetricsAggregation(t *testing.T) {
	r := New(testConfig(), Options{Shards: 4})
	if err := r.AddDTD("article", articleDTD()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		key := keyOn(t, r, i)
		if _, err := r.AddDocument(context.Background(), key, parseDoc(t, `<article><title>t</title><body>b</body></article>`)); err != nil {
			t.Fatal(err)
		}
	}
	total, per := r.Metrics()
	if len(per) != 4 {
		t.Fatalf("per-shard snapshots = %d, want 4", len(per))
	}
	var sum int64
	for _, s := range per {
		sum += s.Added
	}
	if total.Added != 4 || sum != 4 {
		t.Errorf("aggregate Added = %d (per-shard sum %d), want 4", total.Added, sum)
	}
}

func TestRecoverManifestMismatchRejected(t *testing.T) {
	dir := t.TempDir()
	walOpts := wal.Options{Sync: wal.SyncOff}
	r, infos, err := Recover(testConfig(), dir, walOpts, Options{Shards: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 4 {
		t.Fatalf("got %d recovery infos, want 4", len(infos))
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	// Same configuration reopens fine; seed 0 adopts the manifest's.
	r2, _, err := Recover(testConfig(), dir, walOpts, Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Seed() != 7 {
		t.Errorf("recovered seed = %d, want 7 from the manifest", r2.Seed())
	}
	r2.Close()

	// A changed shard count is a configuration error, not a silent re-hash.
	if _, _, err := Recover(testConfig(), dir, walOpts, Options{Shards: 8}); err == nil {
		t.Error("changed shard count accepted")
	} else if !strings.Contains(err.Error(), "reshard") {
		t.Errorf("shard-count error should mention resharding: %v", err)
	}
	// So is a changed (non-zero) seed.
	if _, _, err := Recover(testConfig(), dir, walOpts, Options{Shards: 4, Seed: 8}); err == nil {
		t.Error("changed seed accepted")
	}
}

func TestRecoverRejectsLegacyUnshardedLayout(t *testing.T) {
	dir := t.TempDir()
	// An unsharded WAL directory has wal-*.log segments at the top level.
	w, err := wal.Open(dir, wal.Options{Sync: wal.SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Recover(testConfig(), dir, wal.Options{Sync: wal.SyncOff}, Options{Shards: 4}); err == nil {
		t.Error("sharded Recover accepted an unsharded WAL directory")
	}
}

// TestRecoverRoundTrip runs a mixed workload through a durable router,
// crashes it (close = flush only), recovers, and checks every shard's state
// equals its live counterpart.
func TestRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	walOpts := wal.Options{Sync: wal.SyncOff}
	live, _, err := Recover(testConfig(), dir, walOpts, Options{Shards: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	maybeEnableGroupCommit(live)
	if err := live.AddDTD("article", articleDTD()); err != nil {
		t.Fatal(err)
	}
	if err := live.SetTriggerRules("on article when docs >= 4 and check_ratio > 0.1 do evolve"); err != nil {
		t.Fatal(err)
	}
	shapes := []string{
		`<article><title>t</title><body>b</body></article>`,
		`<article><title>t</title><author>a</author><body>b</body></article>`,
		`<invoice><total>3</total></invoice>`,
	}
	for i := 0; i < 18; i++ {
		key := fmt.Sprintf("doc-%d", i)
		if _, err := live.AddDocument(context.Background(), key, parseDoc(t, shapes[i%len(shapes)])); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := live.EvolveNow("article"); err != nil {
		t.Fatal(err)
	}
	lives := make([]map[string]any, live.Shards())
	for i := range lives {
		lives[i] = snapshotOf(t, live.Shard(i))
	}
	if err := live.CloseWALs(); err != nil {
		t.Fatal(err)
	}

	recovered, infos, err := Recover(testConfig(), dir, walOpts, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer recovered.Close()
	if recovered.Shards() != 3 {
		t.Fatalf("recovered %d shards, want 3 from the manifest", recovered.Shards())
	}
	replayed := 0
	for i, info := range infos {
		if info.Truncated || info.Corrupted {
			t.Errorf("shard %d: clean close reported torn/corrupt: %+v", i, info)
		}
		replayed += info.Replayed
	}
	// 18 docs + per-shard broadcast (dtd, triggers, evolve) = 18 + 3*3,
	// plus one record per auto-evolution decision the trigger fired; the
	// journals themselves are the authority.
	want := 0
	for i := 0; i < 3; i++ {
		if _, err := wal.Replay(filepath.Join(dir, shardName(i)), func([]byte) error {
			want++
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if want < 18+3*3 {
		t.Errorf("journals hold %d records, want >= %d (one per op)", want, 18+3*3)
	}
	if replayed != want {
		t.Errorf("replayed %d records across shards, want %d", replayed, want)
	}
	for i := range lives {
		if got := snapshotOf(t, recovered.Shard(i)); !reflect.DeepEqual(got, lives[i]) {
			t.Errorf("shard %d recovered state diverges:\n got: %v\nwant: %v", i, got, lives[i])
		}
	}
}

// TestCheckpointersStaggeredAndFinal checks the per-shard checkpointers
// write every shard's checkpoint file on stop and that recovery from
// checkpoints + empty tails reproduces the state.
func TestCheckpointersStaggeredAndFinal(t *testing.T) {
	dir := t.TempDir()
	walOpts := wal.Options{Sync: wal.SyncOff}
	live, _, err := Recover(testConfig(), dir, walOpts, Options{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	maybeEnableGroupCommit(live)
	if err := live.AddDTD("article", articleDTD()); err != nil {
		t.Fatal(err)
	}
	stop, err := live.StartCheckpointers(time.Hour, func(shard int, err error) {
		t.Errorf("shard %d checkpoint: %v", shard, err)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 9; i++ {
		key := fmt.Sprintf("doc-%d", i)
		if _, err := live.AddDocument(context.Background(), key, parseDoc(t, `<article><title>t</title><body>b</body></article>`)); err != nil {
			t.Fatal(err)
		}
	}
	stop() // runs one final checkpoint per shard
	lives := make([]map[string]any, live.Shards())
	for i := range lives {
		lives[i] = snapshotOf(t, live.Shard(i))
		if _, err := os.Stat(filepath.Join(dir, fmt.Sprintf("checkpoint-%03d.json", i))); err != nil {
			t.Errorf("shard %d checkpoint file missing: %v", i, err)
		}
	}
	if err := live.Close(); err != nil {
		t.Fatal(err)
	}

	recovered, infos, err := Recover(testConfig(), dir, walOpts, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer recovered.Close()
	for i, info := range infos {
		if !info.SnapshotRestored {
			t.Errorf("shard %d: checkpoint not restored", i)
		}
		if info.Replayed != 0 {
			t.Errorf("shard %d: %d records replayed after final checkpoint, want 0", i, info.Replayed)
		}
		if got := snapshotOf(t, recovered.Shard(i)); !reflect.DeepEqual(got, lives[i]) {
			t.Errorf("shard %d state diverges after checkpointed recovery", i)
		}
	}
}

// TestRouterSnapshotShape checks the merged snapshot names the routing
// parameters and carries one sub-snapshot per shard.
func TestRouterSnapshotShape(t *testing.T) {
	r := New(testConfig(), Options{Shards: 2, Seed: 3})
	if err := r.AddDTD("article", articleDTD()); err != nil {
		t.Fatal(err)
	}
	data, err := r.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Version        int               `json:"version"`
		Shards         int               `json:"shards"`
		Seed           uint64            `json:"seed"`
		ShardSnapshots []json.RawMessage `json:"shard_snapshots"`
	}
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Shards != 2 || snap.Seed != 3 || len(snap.ShardSnapshots) != 2 {
		t.Errorf("snapshot = %+v", snap)
	}
}

func TestCloseIdempotent(t *testing.T) {
	dir := t.TempDir()
	r, _, err := Recover(testConfig(), dir, wal.Options{Sync: wal.SyncOff}, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.StartCheckpointers(time.Hour, nil); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}
