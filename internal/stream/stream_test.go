package stream

// Equivalence tests for the one-pass ingest consumer: a document streamed
// through an Ingestor must classify identically (winner, score bits,
// σ-decision, full candidate list) to the tree path, leave the winner's
// recorder in a bit-identical state, and reproduce the tree serializer's
// canonical bytes — all without materializing the tree.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dtdevolve/internal/classify"
	"dtdevolve/internal/dtd"
	"dtdevolve/internal/intern"
	"dtdevolve/internal/record"
	"dtdevolve/internal/similarity"
	"dtdevolve/internal/xmltree"
)

// corpusSetup registers every testdata DTD in one classifier and returns
// the raw bytes of every testdata document.
func corpusSetup(t *testing.T) (*classify.Classifier, map[string]*dtd.DTD, map[string][]byte) {
	t.Helper()
	tab := intern.NewTable()
	c := classify.NewWithTable(0.7, similarity.DefaultConfig(), tab)
	dtds := make(map[string]*dtd.DTD)
	dirs, err := filepath.Glob(filepath.Join("..", "..", "testdata", "*"))
	if err != nil || len(dirs) == 0 {
		t.Fatalf("globbing testdata: %v (%d dirs)", err, len(dirs))
	}
	docs := make(map[string][]byte)
	for _, dir := range dirs {
		dpaths, _ := filepath.Glob(filepath.Join(dir, "*.dtd"))
		for _, p := range dpaths {
			d, err := dtd.ParseFile(p)
			if err != nil {
				t.Fatalf("%s: %v", p, err)
			}
			name := strings.TrimSuffix(filepath.Base(p), ".dtd")
			d.Name = name // corpus DTD files are named after their root element
			dtds[name] = d
			c.Set(name, d)
		}
		xpaths, _ := filepath.Glob(filepath.Join(dir, "*.xml"))
		for _, p := range xpaths {
			raw, err := os.ReadFile(p)
			if err != nil {
				t.Fatal(err)
			}
			docs[p] = raw
		}
	}
	if len(dtds) < 2 || len(docs) == 0 {
		t.Fatalf("corpus too small: %d DTDs, %d docs", len(dtds), len(docs))
	}
	return c, dtds, docs
}

func recSnapshotJSON(t *testing.T, r *record.Recorder) string {
	t.Helper()
	b, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestIngestMatchesTreePath pins the tentpole equivalence over the corpus:
// same winner, bit-identical similarity, same σ-decision and candidate
// list as the exhaustive tree classification; the winner's recorder state
// bit-identical to Record(doc); canonical bytes equal to doc.String().
func TestIngestMatchesTreePath(t *testing.T) {
	c, dtds, docs := corpusSetup(t)
	tab := c.Table()
	ing := NewIngestor(tab, Config{Decay: similarity.DefaultConfig().Decay})
	for path, raw := range docs {
		doc, err := xmltree.ParseString(string(raw))
		if err != nil {
			t.Fatalf("%s: tree parse: %v", path, err)
		}
		want := c.ClassifyExhaustiveElement(doc.Root)

		var canon bytes.Buffer
		out, err := ing.Run(bytes.NewReader(raw), c.StreamEntries(), &canon)
		if err != nil {
			t.Fatalf("%s: stream: %v", path, err)
		}
		got := c.FoldStream(out.Scores)

		if got.DTDName != want.DTDName || got.Similarity != want.Similarity || got.Classified != want.Classified {
			t.Errorf("%s: stream fold (%q, %v, %v) != tree (%q, %v, %v)",
				path, got.DTDName, got.Similarity, got.Classified,
				want.DTDName, want.Similarity, want.Classified)
		}
		if fmt.Sprint(got.Candidates) != fmt.Sprint(want.Candidates) {
			t.Errorf("%s: candidates %v != %v", path, got.Candidates, want.Candidates)
		}
		if canon.String() != doc.String() {
			t.Errorf("%s: canonical bytes diverge from tree serialization", path)
		}
		if out.Degraded {
			t.Errorf("%s: unexpected degradation without a budget", path)
		}
		if out.Consumed != int64(len(raw)) {
			t.Errorf("%s: consumed %d of %d bytes", path, out.Consumed, len(raw))
		}

		if want.Classified {
			d := dtds[want.DTDName]
			streamRec := record.NewWithTable(d, tab)
			if _, ok := ing.CommitWinner(want.DTDName, streamRec); !ok {
				t.Fatalf("%s: winner %q not committable", path, want.DTDName)
			}
			treeRec := record.NewWithTable(d, tab)
			intern.InternDocument(tab, doc.Root)
			treeRec.Record(doc)
			if a, b := recSnapshotJSON(t, streamRec), recSnapshotJSON(t, treeRec); a != b {
				t.Errorf("%s: recorder state diverges from tree path\nstream: %s\ntree:   %s", path, a, b)
			}
		}
	}
}

// TestIngestRootGate checks that DTDs whose declared root cannot match are
// gated (scored 0 without a recorder lane) and that CommitWinner refuses
// them.
func TestIngestRootGate(t *testing.T) {
	c, _, _ := corpusSetup(t)
	tab := c.Table()
	ing := NewIngestor(tab, Config{Decay: similarity.DefaultConfig().Decay})
	raw := []byte(`<nosuchroot><x/></nosuchroot>`)
	out, err := ing.Run(bytes.NewReader(raw), c.StreamEntries(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range out.Scores {
		if !sc.Gated || sc.Sim != 0 {
			t.Errorf("score %+v: want gated 0", sc)
		}
	}
	res := c.FoldStream(out.Scores)
	if res.Classified || res.DTDName == "" {
		t.Errorf("fold %+v: want unclassified with min-name winner", res)
	}
	d, err := dtd.ParseString(`<!ELEMENT nosuchroot EMPTY>`)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ing.CommitWinner(res.DTDName, record.NewWithTable(d, tab)); ok {
		t.Errorf("CommitWinner accepted a gated lane")
	}
}

// TestIngestDegrade checks the MaxChildren budget: an over-wide element
// flags the document Degraded, drops local validity, and two runs with the
// same budget leave bit-identical recorder state (the budget is part of
// the journaled record, so replay must reproduce it).
func TestIngestDegrade(t *testing.T) {
	tab := intern.NewTable()
	c := classify.NewWithTable(0.1, similarity.DefaultConfig(), tab)
	d, err := dtd.ParseString(`<!ELEMENT r (a, b)><!ELEMENT a EMPTY><!ELEMENT b EMPTY>`)
	if err != nil {
		t.Fatal(err)
	}
	d.Name = "r"
	c.Set("wide", d)

	// b first appears as the 7th child: past a budget of 4, so the degraded
	// recording must drop it while the full one keeps it.
	raw := []byte("<r>" + strings.Repeat("<a/>", 6) + "<b/></r>")

	run := func(maxKids int) (Outcome, string) {
		ing := NewIngestor(tab, Config{Decay: similarity.DefaultConfig().Decay, MaxChildren: maxKids})
		out, err := ing.Run(bytes.NewReader(raw), c.StreamEntries(), nil)
		if err != nil {
			t.Fatal(err)
		}
		rec := record.NewWithTable(d, tab)
		if _, ok := ing.CommitWinner("wide", rec); !ok {
			t.Fatal("winner not committable")
		}
		return out, recSnapshotJSON(t, rec)
	}

	full, fullSnap := run(0)
	if full.Degraded {
		t.Fatal("degraded without budget")
	}
	deg1, degSnap1 := run(4)
	deg2, degSnap2 := run(4)
	if !deg1.Degraded || !deg2.Degraded {
		t.Fatal("budget 4 over 7 children: want Degraded")
	}
	if degSnap1 != degSnap2 {
		t.Errorf("degraded recording not deterministic:\n%s\n%s", degSnap1, degSnap2)
	}
	if degSnap1 == fullSnap {
		t.Errorf("degraded recording equals full recording; budget had no effect")
	}
	if s := deg1.Scores[0]; s.Gated || s.Sim == full.Scores[0].Sim {
		t.Errorf("degraded sim %v vs full %v: want the set-summary escalation to show", s.Sim, full.Scores[0].Sim)
	}
}

// TestIngestErrorRecovery checks that a failed run releases its evaluators
// and the ingestor keeps working.
func TestIngestErrorRecovery(t *testing.T) {
	c, _, docs := corpusSetup(t)
	ing := NewIngestor(c.Table(), Config{Decay: similarity.DefaultConfig().Decay})
	if _, err := ing.Run(strings.NewReader("<r><unclosed></r>"), c.StreamEntries(), nil); err == nil {
		t.Fatal("want parse error")
	}
	for path, raw := range docs {
		if _, err := ing.Run(bytes.NewReader(raw), c.StreamEntries(), nil); err != nil {
			t.Fatalf("%s after failed run: %v", path, err)
		}
		break
	}
}

// TestIngestMaxBytes checks the parse-layer byte budget surfaces as
// xmltree.SizeError from the streaming path.
func TestIngestMaxBytes(t *testing.T) {
	c, _, _ := corpusSetup(t)
	ing := NewIngestor(c.Table(), Config{
		Decay: similarity.DefaultConfig().Decay,
		Parse: xmltree.Options{MaxBytes: 16},
	})
	_, err := ing.Run(strings.NewReader("<feed>"+strings.Repeat("<entry/>", 100)+"</feed>"), c.StreamEntries(), nil)
	var se *xmltree.SizeError
	if !errors.As(err, &se) || se.Limit != 16 {
		t.Fatalf("want SizeError{16}, got %v", err)
	}
}
