// Package stream is the one-pass ingest path (DESIGN.md §15): it drives
// the event stream of xmltree.StreamParse into one similarity.StreamEval
// per candidate DTD and a record.StreamRecorder, so a document is
// classified and its statistics recorded in a single pass over the reader
// with memory bounded by the open-element path — never by document size.
//
// The consumer owns only
//
//   - the open-element stacks: one weighted-size accumulator, one
//     kept-child counter and one degraded flag per open element;
//   - one streaming evaluator per non-gated DTD (O(depth × automaton
//     states) each);
//   - the streaming recorder's speculative per-DTD deltas (schema-sized).
//
// Root gating mirrors classify.fullPlanLocked: a DTD whose declared root
// differs from the document root is pre-scored 0 without running its
// alignment (and without a recorder lane — it can only win the fold in
// the degenerate σ ≤ 0 case, which the source resolves through the tree
// fallback).
//
// Budgets degrade instead of OOMing: an element whose kept children
// (elements and text nodes alike) exceed MaxChildren is escalated — its
// similarity triple falls back to the ANY-style set summary, its exact
// sequence statistics stop admitting new labels, and it is never counted
// locally valid. The document is flagged Degraded so the source journals
// it with the budget that shaped it, keeping replay deterministic.
package stream

import (
	"io"

	"dtdevolve/internal/classify"
	"dtdevolve/internal/dtd"
	"dtdevolve/internal/intern"
	"dtdevolve/internal/record"
	"dtdevolve/internal/similarity"
	"dtdevolve/internal/xmltree"
)

// Config holds the per-source streaming parameters; it is immutable after
// NewIngestor.
type Config struct {
	// Parse configures the pull parser (MaxDepth, MaxBytes,
	// PreserveWhitespace), exactly as the tree path's ParseWithOptions.
	Parse xmltree.Options
	// MaxChildren bounds the kept children (element and text nodes) of one
	// element before it degrades; 0 means unlimited.
	MaxChildren int
	// Decay is the similarity measure's decay, used to fold weighted sizes
	// bottom-up (weightedSize(n) = 1 + Decay·Σ children). It must equal the
	// Decay of every evaluator pool the entries carry.
	Decay float64
}

// Outcome summarizes one streamed document.
type Outcome struct {
	// Scores has one entry per candidate DTD, in StreamEntries (sorted by
	// name) order — the input classify.FoldStream expects.
	Scores []classify.StreamScore
	// Degraded reports that at least one element exceeded MaxChildren.
	Degraded bool
	// Elements is the element count of the document.
	Elements int
	// Doctype is the document's DOCTYPE declaration, if any.
	Doctype *xmltree.Doctype
	// Consumed is the number of input bytes read.
	Consumed int64
}

// Ingestor streams documents against a candidate DTD set. It is not safe
// for concurrent use; callers pool ingestors (one per in-flight streaming
// ingest) and reuse them across documents to keep the parser and recorder
// buffers warm.
type Ingestor struct {
	tab *intern.Table
	cfg Config
	sr  *record.StreamRecorder
	st  *xmltree.Streamer

	// Per-run state, reused across documents.
	entries []classify.StreamEntry
	evals   []*similarity.StreamEval // parallel to entries; nil when gated
	recLane []int                    // entries index → recorder lane; -1 when gated
	dtds    []*dtd.DTD
	wsum    []float64 // per open element: Σ weighted sizes of closed children
	kids    []int     // per open element: kept children so far
	fdeg    []bool    // per open element: already degraded
	valids  []bool    // per recorder lane: validity of the closing element
	scores  []classify.StreamScore
}

// NewIngestor returns an Ingestor recording into tab's IDs. tab must be
// the table shared by the entry pools and the target recorders.
func NewIngestor(tab *intern.Table, cfg Config) *Ingestor {
	return &Ingestor{tab: tab, cfg: cfg, sr: record.NewStreamRecorder(tab)}
}

// Recorder exposes the underlying streaming recorder (for tests).
func (g *Ingestor) Recorder() *record.StreamRecorder { return g.sr }

// Run streams one document from r against entries, returning its per-DTD
// scores and leaving the recorder's speculative deltas ready for
// CommitWinner. canon, when non-nil, receives the document's canonical
// serialization (byte-identical to Document.String() of the tree path) as
// a side effect of the parse — the source journals and stores it without
// ever materializing the tree. On error nothing is committable.
func (g *Ingestor) Run(r io.Reader, entries []classify.StreamEntry, canon io.Writer) (Outcome, error) {
	sopts := xmltree.StreamOptions{Options: g.cfg.Parse, Symbols: g.tab, Canon: canon}
	if g.st == nil {
		g.st = xmltree.StreamParse(r, sopts)
	} else {
		g.st.Reset(r, sopts)
	}
	g.entries = entries
	g.evals = g.evals[:0]
	g.recLane = g.recLane[:0]
	g.wsum = g.wsum[:0]
	g.kids = g.kids[:0]
	g.fdeg = g.fdeg[:0]
	var out Outcome

	for {
		ev, err := g.st.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			g.release()
			return Outcome{}, err
		}
		switch ev.Kind {
		case xmltree.StartEvent:
			if len(g.kids) == 0 {
				g.openRoot(ev.Name)
			} else {
				g.bumpChild()
			}
			for _, se := range g.evals {
				if se != nil {
					se.Start(ev.ID, ev.Name)
				}
			}
			g.sr.Start(ev.ID, ev.Name)
			g.wsum = append(g.wsum, 0)
			g.kids = append(g.kids, 0)
			g.fdeg = append(g.fdeg, false)
		case xmltree.TextEvent:
			g.bumpChild()
			for _, se := range g.evals {
				if se != nil {
					se.Text(ev.NonWS)
				}
			}
			g.sr.Text(ev.NonWS)
			// A text child has weighted size exactly 1.
			g.wsum[len(g.wsum)-1]++
		case xmltree.EndEvent:
			top := len(g.wsum) - 1
			w := 1 + g.cfg.Decay*g.wsum[top]
			g.wsum = g.wsum[:top]
			g.kids = g.kids[:top]
			out.Degraded = out.Degraded || g.fdeg[top]
			g.fdeg = g.fdeg[:top]
			for i, se := range g.evals {
				if se == nil {
					continue
				}
				v := se.End(w)
				if lane := g.recLane[i]; lane >= 0 {
					g.valids[lane] = v
				}
			}
			g.sr.End(g.valids)
			if top > 0 {
				g.wsum[top-1] += w
			}
		}
	}

	g.scores = g.scores[:0]
	for i, e := range g.entries {
		if se := g.evals[i]; se != nil {
			g.scores = append(g.scores, classify.StreamScore{Name: e.Name, Sim: se.Result().Global})
			e.Pool.PutStream(se)
			g.evals[i] = nil
		} else {
			g.scores = append(g.scores, classify.StreamScore{Name: e.Name, Gated: true})
		}
	}
	out.Scores = g.scores
	out.Elements = g.sr.Elements()
	out.Doctype = g.st.Doctype()
	out.Consumed = g.st.Consumed()
	return out, nil
}

// openRoot decides root gating, binds the recorder lanes and borrows one
// streaming evaluator per live DTD. Runs once per document, on the root's
// Start event.
func (g *Ingestor) openRoot(rootName string) {
	g.dtds = g.dtds[:0]
	for _, e := range g.entries {
		if e.RootName != "" && e.RootName != rootName {
			g.evals = append(g.evals, nil)
			g.recLane = append(g.recLane, -1)
			continue
		}
		g.evals = append(g.evals, e.Pool.GetStream())
		g.recLane = append(g.recLane, len(g.dtds))
		g.dtds = append(g.dtds, e.DTD)
	}
	g.sr.SetLanes(g.dtds)
	g.sr.Begin()
	if cap(g.valids) < len(g.dtds) {
		g.valids = make([]bool, len(g.dtds))
	}
	g.valids = g.valids[:len(g.dtds)]
}

// bumpChild charges one kept child to the innermost open element,
// degrading it the moment the budget is crossed — before the overflowing
// child is registered, so the recorder's frame tables stop admitting new
// labels at exactly MaxChildren children.
// dtdvet:noalloc
func (g *Ingestor) bumpChild() {
	top := len(g.kids) - 1
	g.kids[top]++
	if g.cfg.MaxChildren > 0 && g.kids[top] > g.cfg.MaxChildren && !g.fdeg[top] {
		g.fdeg[top] = true
		for _, se := range g.evals {
			if se != nil {
				se.DegradeTop()
			}
		}
		g.sr.DegradeTop()
	}
}

// Committable reports whether the last run kept a recorder lane for name
// — false for root-gated DTDs, whose delta was never accumulated. Callers
// check it before journaling a streamed commit.
func (g *Ingestor) Committable(name string) bool {
	for i, e := range g.entries {
		if e.Name == name {
			return g.recLane[i] >= 0
		}
	}
	return false
}

// CommitWinner merges the named DTD's recorded delta into r, reproducing
// exactly the state the tree path's Record(doc) would have left. It
// reports false — with nothing merged — when name was root-gated (or not
// among the run's entries), in which case the caller must fall back to the
// tree path.
func (g *Ingestor) CommitWinner(name string, r *record.Recorder) (record.DocResult, bool) {
	for i, e := range g.entries {
		if e.Name == name {
			if lane := g.recLane[i]; lane >= 0 {
				return g.sr.CommitTo(lane, r), true
			}
			return record.DocResult{}, false
		}
	}
	return record.DocResult{}, false
}

// release returns borrowed evaluators after a failed run.
func (g *Ingestor) release() {
	for i, se := range g.evals {
		if se != nil {
			g.entries[i].Pool.PutStream(se)
			g.evals[i] = nil
		}
	}
}
