package xmltree

import (
	"fmt"
	"io"
	"strings"
)

// WriteTo serializes the document as XML to w.
func (d *Document) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	b.WriteString(`<?xml version="1.0"?>` + "\n")
	if d.Doctype != nil {
		writeDoctype(&b, d.Doctype)
	}
	writeNode(&b, d.Root)
	b.WriteByte('\n')
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// String renders the document as XML.
func (d *Document) String() string {
	var b strings.Builder
	if _, err := d.WriteTo(&b); err != nil {
		return fmt.Sprintf("<error: %v>", err)
	}
	return b.String()
}

func writeDoctype(b *strings.Builder, dt *Doctype) {
	b.WriteString("<!DOCTYPE ")
	b.WriteString(dt.Name)
	switch {
	case dt.PublicID != "":
		fmt.Fprintf(b, " PUBLIC %q %q", dt.PublicID, dt.SystemID)
	case dt.SystemID != "":
		fmt.Fprintf(b, " SYSTEM %q", dt.SystemID)
	}
	if dt.InternalSubset != "" {
		b.WriteString(" [")
		b.WriteString(dt.InternalSubset)
		b.WriteString("]")
	}
	b.WriteString(">\n")
}

func writeNode(b *strings.Builder, n *Node) {
	if n == nil {
		return
	}
	if n.Kind == Text {
		b.WriteString(EscapeText(n.Data))
		return
	}
	b.WriteByte('<')
	b.WriteString(n.Name)
	for _, a := range n.Attrs {
		b.WriteByte(' ')
		b.WriteString(a.Name)
		b.WriteString(`="`)
		b.WriteString(EscapeAttr(a.Value))
		b.WriteByte('"')
	}
	if len(n.Children) == 0 {
		b.WriteString("/>")
		return
	}
	b.WriteByte('>')
	for _, c := range n.Children {
		writeNode(b, c)
	}
	b.WriteString("</")
	b.WriteString(n.Name)
	b.WriteByte('>')
}

var textEscaper = strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")

var attrEscaper = strings.NewReplacer(
	"&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;", "'", "&apos;",
)

// EscapeText escapes character data for inclusion in element content.
func EscapeText(s string) string { return textEscaper.Replace(s) }

// EscapeAttr escapes character data for inclusion in a double-quoted
// attribute value.
func EscapeAttr(s string) string { return attrEscaper.Replace(s) }

// Indent renders the subtree rooted at n as indented XML, one element per
// line, for human inspection.
func (n *Node) Indent() string {
	var b strings.Builder
	writeIndented(&b, n, 0)
	return b.String()
}

func writeIndented(b *strings.Builder, n *Node, depth int) {
	pad := strings.Repeat("  ", depth)
	if n.Kind == Text {
		b.WriteString(pad)
		b.WriteString(EscapeText(strings.TrimSpace(n.Data)))
		b.WriteByte('\n')
		return
	}
	b.WriteString(pad)
	b.WriteByte('<')
	b.WriteString(n.Name)
	for _, a := range n.Attrs {
		fmt.Fprintf(b, " %s=%q", a.Name, EscapeAttr(a.Value))
	}
	if len(n.Children) == 0 {
		b.WriteString("/>\n")
		return
	}
	// Inline single text child for readability.
	if len(n.Children) == 1 && n.Children[0].Kind == Text {
		b.WriteByte('>')
		b.WriteString(EscapeText(strings.TrimSpace(n.Children[0].Data)))
		b.WriteString("</")
		b.WriteString(n.Name)
		b.WriteString(">\n")
		return
	}
	b.WriteString(">\n")
	for _, c := range n.Children {
		writeIndented(b, c, depth+1)
	}
	b.WriteString(pad)
	b.WriteString("</")
	b.WriteString(n.Name)
	b.WriteString(">\n")
}
