package xmltree_test

// Equivalence tests for the streaming pull parser (stream.go): the event
// stream must match a walk of the tree parse exactly (same kept nodes,
// same names and NonWS bits), the canonical output must be byte-identical
// to Document.String(), and accept/reject decisions must agree — pinned
// over the corpus, handcrafted grammar corners, stress shapes (spill-size
// text runs, one-byte readers) and a fuzz target cross-checking the two
// parsers on arbitrary inputs.

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"testing/iotest"

	"dtdevolve/internal/intern"
	"dtdevolve/internal/xmltree"
)

// treeEvents walks a tree-parsed document in document order, producing the
// event sequence the streamer must emit for the same input.
func treeEvents(root *xmltree.Node) []xmltree.Event {
	var out []xmltree.Event
	var walk func(n *xmltree.Node)
	walk = func(n *xmltree.Node) {
		out = append(out, xmltree.Event{Kind: xmltree.StartEvent, Name: n.Name})
		for _, c := range n.Children {
			switch c.Kind {
			case xmltree.Element:
				walk(c)
			case xmltree.Text:
				out = append(out, xmltree.Event{Kind: xmltree.TextEvent, NonWS: strings.TrimSpace(c.Data) != ""})
			}
		}
		out = append(out, xmltree.Event{Kind: xmltree.EndEvent, Name: n.Name})
	}
	walk(root)
	return out
}

// streamCollect drives the streamer over input and returns its events,
// canonical bytes and doctype.
func streamCollect(input string, opts xmltree.Options, tab *intern.Table) ([]xmltree.Event, string, *xmltree.Doctype, error) {
	var canon bytes.Buffer
	so := xmltree.StreamOptions{Options: opts, Canon: &canon}
	if tab != nil {
		so.Symbols = tab
	}
	s := xmltree.StreamParse(strings.NewReader(input), so)
	var events []xmltree.Event
	err := s.Events(func(ev xmltree.Event) error {
		events = append(events, ev)
		return nil
	})
	return events, canon.String(), s.Doctype(), err
}

// checkStreamTree requires stream and tree parses of input to agree on
// accept/reject, and on success on events, canonical bytes and doctype.
func checkStreamTree(t *testing.T, label, input string, opts xmltree.Options) {
	t.Helper()
	doc, treeErr := xmltree.ParseWithOptions(strings.NewReader(input), opts)
	tab := intern.NewTable()
	events, canon, dt, streamErr := streamCollect(input, opts, tab)
	if (treeErr == nil) != (streamErr == nil) {
		t.Errorf("%s: tree err %v, stream err %v", label, treeErr, streamErr)
		return
	}
	if treeErr != nil {
		return
	}
	want := treeEvents(doc.Root)
	if len(events) != len(want) {
		t.Errorf("%s: %d stream events, %d tree events", label, len(events), len(want))
		return
	}
	for i := range want {
		got := events[i]
		if got.Kind != want[i].Kind || got.Name != want[i].Name || got.NonWS != want[i].NonWS {
			t.Errorf("%s: event %d stream %+v tree %+v", label, i, got, want[i])
			return
		}
		// The interned ID must resolve back to the name.
		if got.Kind != xmltree.TextEvent && tab.Name(got.ID) != got.Name {
			t.Errorf("%s: event %d ID %d resolves to %q, want %q", label, i, got.ID, tab.Name(got.ID), got.Name)
		}
	}
	if wantCanon := doc.String(); canon != wantCanon {
		t.Errorf("%s: canonical bytes differ\nstream: %q\ntree:   %q", label, canon, wantCanon)
	}
	if !reflect.DeepEqual(dt, doc.Doctype) {
		t.Errorf("%s: doctype stream %+v tree %+v", label, dt, doc.Doctype)
	}
}

// corpusInputs returns every testdata XML document.
func corpusInputs(t testing.TB) map[string]string {
	paths, err := filepath.Glob(filepath.Join("..", "..", "testdata", "*", "*.xml"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("globbing corpus: %v (%d files)", err, len(paths))
	}
	out := make(map[string]string, len(paths))
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		out[p] = string(data)
	}
	return out
}

func TestStreamParseMatchesTreeCorpus(t *testing.T) {
	for path, input := range corpusInputs(t) {
		checkStreamTree(t, path, input, xmltree.Options{})
		checkStreamTree(t, path+" preserve", input, xmltree.Options{PreserveWhitespace: true})
	}
}

// streamCases are handcrafted grammar corners: each must parse (or fail)
// identically through both parsers.
var streamCases = []string{
	`<a/>`,
	`<a></a>`,
	`<a> </a>`,
	`<a>x</a>`,
	`<a><b/>tail<b>t</b></a>`,
	`<a at="v" b2="&lt;&amp;'x'&quot;"/>`,
	"\xef\xbb\xbf<a/>",
	`<?xml version="1.0"?><a/>`,
	`<?xml version="1.0"?><!DOCTYPE a><a/>`,
	`<!DOCTYPE a SYSTEM "sys.dtd"><a/>`,
	`<!DOCTYPE a PUBLIC "pub" "sys"><a/>`,
	`<!DOCTYPE a [<!ELEMENT a (#PCDATA)><!ENTITY e "ho">]><a>&e;&e;</a>`,
	`<!DOCTYPE a [<!ENTITY e "<b>">]><a>&e;</a>`,
	`<!DOCTYPE a [<!ENTITY e "&f;"><!ENTITY f "deep">]><a>&e;</a>`,
	`<!DOCTYPE a [<!ENTITY e "&e;">]><a>&e;</a>`,
	`<!DOCTYPE a [<!-- ] --><!ENTITY e "x]y">]><a>&e;</a>`,
	`<!DOCTYPE a [<!ENTITY % p "param">]><a/>`,
	`<a>&#65;&#x42;&#x1F600;</a>`,
	`<a>&amp;&lt;&gt;&apos;&quot;</a>`,
	`<a><!-- comment --><b/><!-- another --></a>`,
	`<a>pre<!-- c -->post</a>`,
	`<a><![CDATA[]]></a>`,
	`<a><![CDATA[ ]]></a>`,
	`<a><![CDATA[<b>&amp;]]></a>`,
	`<a>x<![CDATA[y]]>z</a>`,
	`<a><?pi data?>t</a>`,
	`<a/><!-- trailing --><?pi?>`,
	"<a>\n  line\n   \n</a>",
	"<a> </a>",
	"<a> \t\r\n\v\f </a>",
	`<root xmlns:x="n"><x:e at="1"/></root>`,
	// Reject cases: both parsers must fail.
	``,
	`   `,
	`<a>`,
	`<a></b>`,
	`<a`,
	`<a x`,
	`<a x=`,
	`<a x="v`,
	`<a x="v" x="w"/>`,
	`<a>&undefined;</a>`,
	`<a>&unterminated</a>`,
	`<a>&unterminated<b/></a>`,
	`<a>&#xZZ;</a>`,
	`<a>&#xD800;</a>`,
	`<a>&#4294967296;</a>`,
	`<a><!-- -- --></a>`,
	`<a><!-- unterminated</a>`,
	`<a><![CDATA[unterminated</a>`,
	`<a><?pi unterminated</a>`,
	`<a/>junk`,
	`junk<a/>`,
	`<!DOCTYPE a><!DOCTYPE b><a/>`,
	`<!DOCTYPE a [<!ELEMENT a>]<a/>`,
	`<!DOCTYPE a [ <a/>`,
	`</a>`,
	`<1a/>`,
}

func TestStreamParseMatchesTreeCases(t *testing.T) {
	for i, input := range streamCases {
		label := fmt.Sprintf("case %d %.40q", i, input)
		checkStreamTree(t, label, input, xmltree.Options{})
		checkStreamTree(t, label+" preserve", input, xmltree.Options{PreserveWhitespace: true})
	}
}

// TestStreamParseDepthLimit pins MaxDepth equivalence at and past the
// boundary.
func TestStreamParseDepthLimit(t *testing.T) {
	nested := strings.Repeat("<d>", 6) + "x" + strings.Repeat("</d>", 6)
	checkStreamTree(t, "at limit", nested, xmltree.Options{MaxDepth: 6})
	checkStreamTree(t, "over limit", nested, xmltree.Options{MaxDepth: 5})
}

// TestStreamParseSpill covers text runs past the spill threshold: huge
// kept runs, huge whitespace-only runs (dropped and preserved), and a
// multi-byte whitespace rune straddling chunk appends.
func TestStreamParseSpill(t *testing.T) {
	big := strings.Repeat("lorem ipsum &amp; more ", 8<<10) // ~184 KiB expanded
	ws := strings.Repeat(" \t\n", 40<<10)                   // ~120 KiB whitespace
	nbsp := strings.Repeat(" ", 48<<10)                     // multi-byte whitespace
	for label, input := range map[string]string{
		"big kept run":    "<a>" + big + "</a>",
		"big ws run":      "<a>" + ws + "</a>",
		"big nbsp run":    "<a>" + nbsp + "</a>",
		"ws then text":    "<a>" + ws + "x</a>",
		"big cdata":       "<a><![CDATA[" + big + "]]></a>",
		"big mixed":       "<a><b>" + big + "</b>" + ws + "</a>",
		"nbsp then text":  "<a>" + nbsp + "tail</a>",
		"big entity text": "<a>" + strings.Repeat("&lt;x&gt;", 24<<10) + "</a>",
	} {
		checkStreamTree(t, label, input, xmltree.Options{})
		checkStreamTree(t, label+" preserve", input, xmltree.Options{PreserveWhitespace: true})
	}
}

// TestStreamParseOneByteReader stresses window refills: every token and
// prefix test crosses a read boundary.
func TestStreamParseOneByteReader(t *testing.T) {
	input := `<!DOCTYPE a [<!ENTITY e "v">]><a x="1 &e;"><!-- c --><b>t&e;<![CDATA[&raw;]]></b> <c/></a>`
	doc, err := xmltree.ParseString(input)
	if err != nil {
		t.Fatal(err)
	}
	var canon bytes.Buffer
	s := xmltree.StreamParse(iotest.OneByteReader(strings.NewReader(input)), xmltree.StreamOptions{Canon: &canon})
	var events []xmltree.Event
	if err := s.Events(func(ev xmltree.Event) error {
		events = append(events, ev)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	want := treeEvents(doc.Root)
	if !reflect.DeepEqual(events, want) {
		t.Errorf("events differ:\nstream: %+v\ntree:   %+v", events, want)
	}
	if canon.String() != doc.String() {
		t.Errorf("canonical bytes differ:\nstream: %q\ntree:   %q", canon.String(), doc.String())
	}
}

// TestStreamParseReaderError pins IO-failure reporting: a reader error
// surfaces as a reading-input error, not as a truncation parse error.
func TestStreamParseReaderError(t *testing.T) {
	broken := io.MultiReader(strings.NewReader("<a><b>text"), iotest.ErrReader(errors.New("disk gone")))
	s := xmltree.StreamParse(broken, xmltree.StreamOptions{})
	err := s.Events(func(xmltree.Event) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "reading input") || !strings.Contains(err.Error(), "disk gone") {
		t.Errorf("got %v, want a reading-input error wrapping the reader failure", err)
	}
}

// TestStreamParseReuse checks Reset: one streamer across documents with
// different symbol tables and canonical sinks leaks nothing between runs.
func TestStreamParseReuse(t *testing.T) {
	s := xmltree.StreamParse(strings.NewReader(""), xmltree.StreamOptions{})
	inputs := []string{
		`<!DOCTYPE a [<!ENTITY e "one">]><a>&e;</a>`,
		`<a>&e;</a>`, // must fail: prior doc's entity must not leak
		`<b><c at="2"/></b>`,
	}
	wantErr := []bool{false, true, false}
	for i, input := range inputs {
		var canon bytes.Buffer
		s.Reset(strings.NewReader(input), xmltree.StreamOptions{Canon: &canon})
		err := s.Events(func(xmltree.Event) error { return nil })
		if (err != nil) != wantErr[i] {
			t.Errorf("doc %d: err %v, want error %v", i, err, wantErr[i])
		}
		if err == nil {
			doc, terr := xmltree.ParseString(input)
			if terr != nil {
				t.Fatal(terr)
			}
			if canon.String() != doc.String() {
				t.Errorf("doc %d: canonical bytes differ", i)
			}
		}
	}
}

// TestParseMaxBytes pins the MaxBytes satellite on both paths: at-limit
// inputs parse, over-limit inputs fail with *SizeError.
func TestParseMaxBytes(t *testing.T) {
	input := `<a><b>hello</b></a>`
	limit := int64(len(input))
	for _, tc := range []struct {
		name  string
		limit int64
		ok    bool
	}{
		{"unlimited", 0, true},
		{"at limit", limit, true},
		{"over limit", limit - 1, false},
	} {
		_, treeErr := xmltree.ParseWithOptions(strings.NewReader(input), xmltree.Options{MaxBytes: tc.limit})
		s := xmltree.StreamParse(strings.NewReader(input), xmltree.StreamOptions{Options: xmltree.Options{MaxBytes: tc.limit}})
		streamErr := s.Events(func(xmltree.Event) error { return nil })
		for path, err := range map[string]error{"tree": treeErr, "stream": streamErr} {
			if tc.ok && err != nil {
				t.Errorf("%s %s: unexpected error %v", tc.name, path, err)
			}
			if !tc.ok {
				var se *xmltree.SizeError
				if !errors.As(err, &se) {
					t.Errorf("%s %s: got %v, want *SizeError", tc.name, path, err)
				} else if se.Limit != tc.limit {
					t.Errorf("%s %s: limit %d, want %d", tc.name, path, se.Limit, tc.limit)
				}
			}
		}
	}
}

// FuzzStreamVsTree cross-checks the two parsers on arbitrary inputs: they
// must agree on accept/reject, and on success the event stream must match
// the tree walk and the canonical bytes must match Document.String().
func FuzzStreamVsTree(f *testing.F) {
	for _, s := range streamCases {
		f.Add(s, false)
	}
	for _, input := range corpusInputs(f) {
		f.Add(input, false)
		f.Add(input, true)
	}
	f.Fuzz(func(t *testing.T, input string, preserve bool) {
		opts := xmltree.Options{PreserveWhitespace: preserve, MaxDepth: 64}
		doc, treeErr := xmltree.ParseWithOptions(strings.NewReader(input), opts)
		events, canon, dt, streamErr := streamCollect(input, opts, nil)
		if (treeErr == nil) != (streamErr == nil) {
			t.Fatalf("tree err %v, stream err %v", treeErr, streamErr)
		}
		if treeErr != nil {
			return
		}
		want := treeEvents(doc.Root)
		if !reflect.DeepEqual(events, want) {
			t.Fatalf("events differ:\nstream: %+v\ntree:   %+v", events, want)
		}
		if canon != doc.String() {
			t.Fatalf("canonical bytes differ:\nstream: %q\ntree:   %q", canon, doc.String())
		}
		if !reflect.DeepEqual(dt, doc.Doctype) {
			t.Fatalf("doctype stream %+v tree %+v", dt, doc.Doctype)
		}
	})
}
