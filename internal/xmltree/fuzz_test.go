package xmltree

import (
	"strings"
	"testing"
)

// FuzzParse checks the parser never panics and that accepted documents
// round-trip through the serializer. Run with `go test -fuzz=FuzzParse`;
// the seed corpus runs on every ordinary `go test`.
func FuzzParse(f *testing.F) {
	seeds := []string{
		`<a/>`,
		`<a><b>5</b><c>7</c></a>`,
		`<a x="1" y='2'>mixed <b/> text</a>`,
		`<!DOCTYPE a [<!ELEMENT a EMPTY><!ENTITY e "v">]><a>&e;</a>`,
		`<a><![CDATA[<raw>]]></a>`,
		`<?xml version="1.0"?><!--c--><a?`,
		`<a>&#x41;&#66;</a>`,
		`<a><b></a></b>`,
		`<a`,
		`&amp;`,
		"\xef\xbb\xbf<a/>",
		`<a>&undefined;</a>`,
		strings.Repeat("<a>", 40) + strings.Repeat("</a>", 40),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		doc, err := ParseString(src)
		if err != nil {
			return // rejected input: fine, as long as no panic
		}
		// Accepted input must serialize and reparse to an equal tree.
		out := doc.Root.String()
		doc2, err := ParseString(out)
		if err != nil {
			t.Fatalf("serialized form does not reparse: %v\nsrc: %q\nout: %q", err, src, out)
		}
		if !doc.Root.Equal(doc2.Root) {
			t.Fatalf("round trip changed tree\nsrc: %q\nout: %q", src, out)
		}
	})
}
