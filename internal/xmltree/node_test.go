package xmltree

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestTagSetDisregardsOrderAndRepetition(t *testing.T) {
	doc := mustParse(t, `<r><c/><a/><b/><a/><a/></r>`)
	got := doc.Root.TagSet()
	want := []string{"a", "b", "c"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("TagSet = %v, want %v", got, want)
	}
	tags := doc.Root.ChildTags()
	if !reflect.DeepEqual(tags, []string{"c", "a", "b", "a", "a"}) {
		t.Errorf("ChildTags = %v", tags)
	}
}

func TestCloneIsDeep(t *testing.T) {
	orig := mustParse(t, `<a x="1"><b>t</b><c/></a>`).Root
	clone := orig.Clone()
	if !orig.Equal(clone) {
		t.Fatal("clone not equal to original")
	}
	clone.Children[0].Name = "z"
	clone.Attrs[0].Value = "2"
	if orig.Children[0].Name != "b" || orig.Attrs[0].Value != "1" {
		t.Fatal("mutating clone affected original")
	}
}

func TestEqual(t *testing.T) {
	a := mustParse(t, `<a><b/><c>x</c></a>`).Root
	b := mustParse(t, `<a><b/><c>x</c></a>`).Root
	c := mustParse(t, `<a><b/><c>y</c></a>`).Root
	d := mustParse(t, `<a><c>x</c><b/></a>`).Root
	if !a.Equal(b) {
		t.Error("identical trees not Equal")
	}
	if a.Equal(c) {
		t.Error("different text considered Equal")
	}
	if a.Equal(d) {
		t.Error("different child order considered Equal")
	}
	if a.Equal(nil) {
		t.Error("tree Equal nil")
	}
	var nilNode *Node
	if !nilNode.Equal(nil) {
		t.Error("nil not Equal nil")
	}
}

func TestWalkOrderAndPrune(t *testing.T) {
	root := mustParse(t, `<a><b><d/></b><c/></a>`).Root
	var visited []string
	root.Walk(func(n *Node, depth int) bool {
		visited = append(visited, n.Name)
		return true
	})
	if !reflect.DeepEqual(visited, []string{"a", "b", "d", "c"}) {
		t.Errorf("walk order = %v", visited)
	}
	visited = nil
	root.Walk(func(n *Node, depth int) bool {
		visited = append(visited, n.Name)
		return n.Name != "b" // prune below b
	})
	if !reflect.DeepEqual(visited, []string{"a", "b", "c"}) {
		t.Errorf("pruned walk order = %v", visited)
	}
}

func TestCountAndDepth(t *testing.T) {
	root := mustParse(t, `<a><b><d>x</d></b><c/></a>`).Root
	if got := root.CountElements(); got != 4 {
		t.Errorf("CountElements = %d, want 4", got)
	}
	if got := root.Depth(); got != 3 { // a -> b -> d -> text
		t.Errorf("Depth = %d, want 3", got)
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	srcs := []string{
		`<a/>`,
		`<a x="1&amp;2"><b>text &lt;here&gt;</b><c/></a>`,
		`<r>mixed <b>bold</b> tail</r>`,
	}
	for _, src := range srcs {
		doc := mustParse(t, src)
		out := doc.Root.String()
		doc2, err := ParseString(out)
		if err != nil {
			t.Fatalf("reparse of %q: %v", out, err)
		}
		if !doc.Root.Equal(doc2.Root) {
			t.Errorf("round trip changed tree:\n in: %s\nout: %s", src, out)
		}
	}
}

func TestSerializeDoctype(t *testing.T) {
	doc := mustParse(t, `<!DOCTYPE a [<!ELEMENT a EMPTY>]><a/>`)
	var b strings.Builder
	if _, err := doc.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "<!DOCTYPE a [") || !strings.Contains(out, "<!ELEMENT a EMPTY>") {
		t.Errorf("serialized doc missing doctype: %s", out)
	}
	if _, err := ParseString(out); err != nil {
		t.Fatalf("reparse: %v", err)
	}
}

func TestIndent(t *testing.T) {
	root := mustParse(t, `<a><b>5</b><c><d/></c></a>`).Root
	out := root.Indent()
	want := "<a>\n  <b>5</b>\n  <c>\n    <d/>\n  </c>\n</a>\n"
	if out != want {
		t.Errorf("Indent:\n%s\nwant:\n%s", out, want)
	}
}

// randomTree builds a random element tree for property testing.
func randomTree(r *rand.Rand, depth int) *Node {
	names := []string{"a", "b", "c", "item", "x1", "long-name", "ns:tag"}
	n := NewElement(names[r.Intn(len(names))])
	if r.Intn(3) == 0 {
		n.Attrs = append(n.Attrs, Attr{Name: "k", Value: `v<&">x`})
	}
	if depth > 3 {
		return n
	}
	kids := r.Intn(4)
	lastWasText := false
	for i := 0; i < kids; i++ {
		// Avoid adjacent text children: the parser correctly coalesces
		// adjacent character data into a single node.
		if !lastWasText && r.Intn(4) == 0 {
			n.Children = append(n.Children, NewText("t&<> "+names[r.Intn(len(names))]))
			lastWasText = true
		} else {
			n.Children = append(n.Children, randomTree(r, depth+1))
			lastWasText = false
		}
	}
	return n
}

func TestPropertySerializeParseIdentity(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tree := randomTree(r, 0)
		doc, err := ParseString(tree.String())
		if err != nil {
			t.Logf("parse failed for %s: %v", tree.String(), err)
			return false
		}
		return tree.Equal(doc.Root)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestPropertyCloneEqual(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tree := randomTree(r, 0)
		return tree.Equal(tree.Clone())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestKindAndNodePredicates(t *testing.T) {
	el, txt := NewElement("a"), NewText("t")
	if !el.IsElement() || el.IsText() || !txt.IsText() || txt.IsElement() {
		t.Error("predicates wrong")
	}
	var nilNode *Node
	if nilNode.IsElement() || nilNode.IsText() {
		t.Error("nil node predicates")
	}
	if Element.String() != "element" || Text.String() != "text" {
		t.Error("kind strings")
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind string empty")
	}
}

func TestDocumentStringAndParseError(t *testing.T) {
	doc := mustParse(t, `<!DOCTYPE a SYSTEM "x.dtd"><a>v</a>`)
	s := doc.String()
	if !strings.Contains(s, `SYSTEM "x.dtd"`) || !strings.Contains(s, "<a>v</a>") {
		t.Errorf("doc string = %q", s)
	}
	_, err := ParseString("<a><b></a>")
	perr, ok := err.(*ParseError)
	if !ok || perr.Error() == "" || perr.Line == 0 {
		t.Errorf("parse error = %v", err)
	}
}

func TestParseReader(t *testing.T) {
	doc, err := Parse(strings.NewReader(`<a/>`))
	if err != nil || doc.Root.Name != "a" {
		t.Fatalf("Parse: %v", err)
	}
}

func TestParseFileAndErrors(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.xml")
	if err := os.WriteFile(path, []byte(`<a><b/></a>`), 0o644); err != nil {
		t.Fatal(err)
	}
	doc, err := ParseFile(path)
	if err != nil || doc.Root.Name != "a" {
		t.Fatalf("ParseFile: %v", err)
	}
	if _, err := ParseFile(filepath.Join(dir, "missing.xml")); err == nil {
		t.Error("missing file accepted")
	}
}
