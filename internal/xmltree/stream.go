package xmltree

// Streaming pull parser: the bounded-memory twin of parseBytes. A Streamer
// reads the document through a fixed-size window and emits Start/Text/End
// events instead of building a tree, so ingest memory is proportional to
// the open-element path (plus the longest single text run), never the
// document. Grammar, accepted language and kept-node decisions mirror the
// tree parser exactly — the equivalence is pinned by stream_test.go over
// the corpus and by a fuzz target cross-checking the two parsers.
//
// Three optional taps make the streamer a drop-in for the ingest pipeline:
//
//   - Symbols: an Interner (in practice *intern.Table) resolving element
//     names straight out of the read window, so events carry dense label
//     IDs and canonical (pointer-stable) name strings with zero
//     steady-state allocation;
//   - Canon: an io.Writer receiving the canonical serialization of the
//     document — byte-identical to Document.String() of the tree parse —
//     so the WAL and docstore can journal the exact bytes the tree path
//     would have, without materializing the document;
//   - MaxBytes (via Options): total input budget, enforced as the cursor
//     advances and reported as *SizeError.

import (
	"fmt"
	"io"
	"strings"
	"unicode"
	"unicode/utf8"
)

// EventKind identifies a streaming parse event.
type EventKind uint8

const (
	// StartEvent marks an element open (also emitted for self-closing
	// elements, immediately followed by the EndEvent).
	StartEvent EventKind = iota + 1
	// TextEvent marks one kept text node (a character-data run or CDATA
	// section that the tree parser would have appended as a Text child).
	TextEvent
	// EndEvent marks an element close.
	EndEvent
)

// Event is one streaming parse event. For Start/End events, Name is the
// element tag (the canonical interned string when the streamer has a
// symbol table) and ID its interned label (None without one). For Text
// events, NonWS reports whether the node carries non-whitespace characters
// — exactly Node.HasText of the tree twin; the data itself is not
// retained.
type Event struct {
	Kind  EventKind
	Name  string
	ID    int32
	NonWS bool
}

// Interner resolves a byte-spelled element name to a dense label ID and a
// canonical string without copying on the found path. *intern.Table
// satisfies it; xmltree declares the interface (rather than importing the
// intern package) because intern already imports xmltree.
type Interner interface {
	InternBytes(b []byte) (int32, string)
}

// StreamOptions configures a Streamer. The embedded Options carry the
// exact knobs of the tree parser (PreserveWhitespace, MaxDepth, MaxBytes)
// with identical semantics.
type StreamOptions struct {
	Options
	// Symbols, when set, resolves element names to interned IDs.
	Symbols Interner
	// Canon, when set, receives the canonical serialization of the
	// document, byte-identical to what Document.String() would render for
	// the tree parse of the same input.
	Canon io.Writer
}

const (
	// streamBufSize is the initial read-window size. The window grows only
	// when a single token (name, attribute literal, markup test) exceeds
	// it.
	streamBufSize = 32 << 10
	// textSpillSize is the text-run buffer high-water mark: once a run is
	// known to be kept, buffered text beyond this size is flushed to the
	// canonical writer (or discarded when there is none) so an arbitrarily
	// long run does not hold memory.
	textSpillSize = 64 << 10
)

const (
	streamProlog = iota
	streamContent
	streamEpilog
	streamDone
)

// Streamer is a pull parser over an io.Reader. Obtain one with
// StreamParse, drive it with Next or Events, and reuse it across documents
// with Reset — all internal buffers are retained.
type Streamer struct {
	in       io.Reader
	opts     StreamOptions
	maxDepth int

	buf     []byte
	r, w    int
	inEOF   bool
	readErr error

	consumed int64
	line     int
	col      int

	entities map[string]string
	doctype  *Doctype

	stack   []streamFrame
	state   int
	started bool

	// Current text run. runActive distinguishes "no run" from a run that
	// expanded to nothing (the tree keeps the latter as an empty node
	// under PreserveWhitespace). textSpilled means a kept prefix has
	// already been written to the canonical output; textNonWS is sticky
	// across spills.
	textBuf     []byte
	runActive   bool
	textNonWS   bool
	textSpilled bool

	// Attribute scratch for the start tag being parsed: an arena of the
	// names seen (for the duplicate check and canonical output) and the
	// expanded-value buffer.
	attrNames  []byte
	attrStarts []int
	valBuf     []byte

	pend         [4]Event
	ipend, npend int

	err error
}

// streamFrame is one open element. open tracks whether the canonical
// start tag is still unclosed (no '>' written), which is also how the
// writer decides between <a/> and <a></a> — exactly the tree serializer's
// "no kept children" test.
type streamFrame struct {
	name string
	id   int32
	open bool
}

// StreamParse returns a pull parser over r. No input is read until the
// first Next call.
func StreamParse(r io.Reader, opts StreamOptions) *Streamer {
	s := &Streamer{}
	s.Reset(r, opts)
	return s
}

// Reset rewinds the streamer onto a fresh input, keeping all internal
// buffers for reuse.
func (s *Streamer) Reset(r io.Reader, opts StreamOptions) {
	s.in = r
	s.opts = opts
	s.maxDepth = opts.MaxDepth
	if s.maxDepth <= 0 {
		s.maxDepth = defaultMaxDepth
	}
	if s.buf == nil {
		s.buf = make([]byte, streamBufSize)
	}
	s.r, s.w = 0, 0
	s.inEOF = false
	s.readErr = nil
	s.consumed = 0
	s.line, s.col = 1, 1
	if s.entities == nil {
		s.entities = make(map[string]string, 8)
	} else {
		clear(s.entities)
	}
	// Same seed set as parseBytes.
	s.entities["lt"] = "<"
	s.entities["gt"] = ">"
	s.entities["amp"] = "&"
	s.entities["apos"] = "'"
	s.entities["quot"] = `"`
	s.doctype = nil
	s.stack = s.stack[:0]
	s.state = streamProlog
	s.started = false
	s.textBuf = s.textBuf[:0]
	s.runActive, s.textNonWS, s.textSpilled = false, false, false
	s.attrNames = s.attrNames[:0]
	s.attrStarts = s.attrStarts[:0]
	s.ipend, s.npend = 0, 0
	s.err = nil
}

// Doctype returns the document's DOCTYPE once parsed, or nil.
func (s *Streamer) Doctype() *Doctype { return s.doctype }

// Consumed returns the number of input bytes consumed so far.
func (s *Streamer) Consumed() int64 { return s.consumed }

// Next returns the next event. It returns io.EOF after the document
// completed cleanly; any other error is terminal and sticky.
func (s *Streamer) Next() (Event, error) {
	if s.ipend < s.npend {
		ev := s.pend[s.ipend]
		s.ipend++
		return ev, nil
	}
	if s.err != nil {
		return Event{}, s.err
	}
	ev, err := s.step()
	if err != nil {
		if s.readErr != nil {
			// The input failed underneath the parser; report that rather
			// than the truncation artifact, like the tree path's ReadAll.
			err = fmt.Errorf("xml: reading input: %w", s.readErr)
		}
		s.err = err
		return Event{}, err
	}
	return ev, nil
}

// Events invokes fn for every event of the document in order. A successful
// parse returns nil; otherwise the first parse or callback error.
func (s *Streamer) Events(fn func(Event) error) error {
	for {
		ev, err := s.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := fn(ev); err != nil {
			return err
		}
	}
}

// step advances the parser until at least one event is pending or the
// document ends, then returns the first pending event.
func (s *Streamer) step() (Event, error) {
	for {
		s.ipend, s.npend = 0, 0
		var err error
		switch s.state {
		case streamProlog:
			err = s.stepProlog()
		case streamContent:
			err = s.stepContent()
		case streamEpilog:
			err = s.stepEpilog()
		case streamDone:
			err = io.EOF
		}
		if err != nil {
			return Event{}, err
		}
		if s.ipend < s.npend {
			ev := s.pend[s.ipend]
			s.ipend++
			return ev, nil
		}
		if err := s.checkBudget(); err != nil {
			return Event{}, err
		}
	}
}

func (s *Streamer) queue(ev Event) {
	s.pend[s.npend] = ev
	s.npend++
}

func (s *Streamer) checkBudget() error {
	if s.opts.MaxBytes > 0 && s.consumed > s.opts.MaxBytes {
		return &SizeError{Limit: s.opts.MaxBytes}
	}
	return nil
}

func (s *Streamer) errf(format string, args ...any) error {
	return &ParseError{Line: s.line, Column: s.col, Msg: fmt.Sprintf(format, args...)}
}

// ---- window management ----

// fill ensures at least n bytes are buffered ahead of the cursor, reading
// more input as needed, and returns the count available (less than n only
// at end of input). Buffered bytes survive compaction, so token slices
// taken at the cursor stay valid until the next fill.
func (s *Streamer) fill(n int) int {
	if s.w-s.r >= n {
		return s.w - s.r
	}
	if len(s.buf)-s.r < n {
		copy(s.buf, s.buf[s.r:s.w])
		s.w -= s.r
		s.r = 0
		if n > len(s.buf) {
			grown := make([]byte, max(2*len(s.buf), n))
			copy(grown, s.buf[:s.w])
			s.buf = grown
		}
	}
	for s.w-s.r < n && !s.inEOF && s.readErr == nil {
		m, err := s.in.Read(s.buf[s.w:])
		s.w += m
		if err == io.EOF {
			s.inEOF = true
		} else if err != nil {
			s.readErr = err
		}
	}
	return s.w - s.r
}

func (s *Streamer) eof() bool { return s.fill(1) == 0 }

func (s *Streamer) peek() byte {
	if s.fill(1) == 0 {
		return 0
	}
	return s.buf[s.r]
}

// advance consumes one buffered byte; callers must have established
// availability via peek/fill/eof, as with the tree parser.
func (s *Streamer) advance() byte {
	c := s.buf[s.r]
	s.r++
	s.consumed++
	if c == '\n' {
		s.line++
		s.col = 1
	} else {
		s.col++
	}
	return c
}

// advanceSpan consumes n buffered bytes, maintaining line/column.
func (s *Streamer) advanceSpan(n int) {
	b := s.buf[s.r : s.r+n]
	for _, c := range b {
		if c == '\n' {
			s.line++
			s.col = 1
		} else {
			s.col++
		}
	}
	s.r += n
	s.consumed += int64(n)
}

func (s *Streamer) hasPrefix(str string) bool {
	if s.fill(len(str)) < len(str) {
		return false
	}
	return string(s.buf[s.r:s.r+len(str)]) == str
}

func (s *Streamer) expect(str string) error {
	if !s.hasPrefix(str) {
		return s.errf("expected %q", str)
	}
	s.advanceSpan(len(str))
	return nil
}

func (s *Streamer) skipSpace() {
	for !s.eof() {
		switch s.buf[s.r] {
		case ' ', '\t', '\r', '\n':
			s.advance()
		default:
			return
		}
	}
}

// readName scans one XML name and returns it as a window slice, valid only
// until the next fill — consume (intern, compare, copy) immediately.
func (s *Streamer) readName() ([]byte, error) {
	if s.eof() || !isNameStart(s.buf[s.r]) {
		return nil, s.errf("expected a name")
	}
	i := 1
	for s.fill(i+1) > i && isNameChar(s.buf[s.r+i]) {
		i++
	}
	nb := s.buf[s.r : s.r+i]
	s.advanceSpan(i)
	return nb, nil
}

// readQuoted scans one quoted literal and returns its raw body as a window
// slice, valid only until the next fill.
func (s *Streamer) readQuoted() ([]byte, error) {
	if s.eof() || (s.buf[s.r] != '"' && s.buf[s.r] != '\'') {
		return nil, s.errf("expected a quoted literal")
	}
	quote := s.advance()
	i := 0
	for {
		if s.fill(i+1) <= i {
			return nil, s.errf("unterminated literal")
		}
		if s.buf[s.r+i] == quote {
			break
		}
		i++
	}
	v := s.buf[s.r : s.r+i]
	s.advanceSpan(i + 1) // body plus closing quote
	return v, nil
}

// ---- canonical output ----

func (s *Streamer) cwrite(b []byte) error {
	if s.opts.Canon == nil || len(b) == 0 {
		return nil
	}
	if _, err := s.opts.Canon.Write(b); err != nil {
		return fmt.Errorf("xml: writing canonical output: %w", err)
	}
	return nil
}

func (s *Streamer) cstring(str string) error {
	if s.opts.Canon == nil || len(str) == 0 {
		return nil
	}
	if _, err := io.WriteString(s.opts.Canon, str); err != nil {
		return fmt.Errorf("xml: writing canonical output: %w", err)
	}
	return nil
}

// canonOpenParent closes the pending '>' of the innermost start tag, if
// any: called right before a kept child (element or text) is written.
func (s *Streamer) canonOpenParent() error {
	if n := len(s.stack); n > 0 && s.stack[n-1].open {
		s.stack[n-1].open = false
		return s.cstring(">")
	}
	return nil
}

// escTextTo writes b to the canonical output with element-content escaping
// (the byte-exact twin of EscapeText).
func (s *Streamer) escTextTo(b []byte) error {
	if s.opts.Canon == nil {
		return nil
	}
	start := 0
	for i := 0; i < len(b); i++ {
		var esc string
		switch b[i] {
		case '&':
			esc = "&amp;"
		case '<':
			esc = "&lt;"
		case '>':
			esc = "&gt;"
		default:
			continue
		}
		if err := s.cwrite(b[start:i]); err != nil {
			return err
		}
		if err := s.cstring(esc); err != nil {
			return err
		}
		start = i + 1
	}
	return s.cwrite(b[start:])
}

// escAttrTo writes b with attribute-value escaping (the twin of
// EscapeAttr).
func (s *Streamer) escAttrTo(b []byte) error {
	if s.opts.Canon == nil {
		return nil
	}
	start := 0
	for i := 0; i < len(b); i++ {
		var esc string
		switch b[i] {
		case '&':
			esc = "&amp;"
		case '<':
			esc = "&lt;"
		case '>':
			esc = "&gt;"
		case '"':
			esc = "&quot;"
		case '\'':
			esc = "&apos;"
		default:
			continue
		}
		if err := s.cwrite(b[start:i]); err != nil {
			return err
		}
		if err := s.cstring(esc); err != nil {
			return err
		}
		start = i + 1
	}
	return s.cwrite(b[start:])
}

// ---- prolog and epilog ----

func (s *Streamer) stepProlog() error {
	if !s.started {
		s.started = true
		if err := s.cstring("<?xml version=\"1.0\"?>\n"); err != nil {
			return err
		}
		// Optional byte-order mark: skipped without touching the column,
		// like the tree parser.
		if s.fill(3) >= 3 && string(s.buf[s.r:s.r+3]) == "\xef\xbb\xbf" {
			s.r += 3
			s.consumed += 3
		}
	}
	s.skipSpace()
	if s.eof() {
		return s.errf("no root element")
	}
	switch {
	case s.hasPrefix("<?"):
		return s.skipPI()
	case s.hasPrefix("<!--"):
		return s.skipComment()
	case s.hasPrefix("<!DOCTYPE"):
		if s.doctype != nil {
			return s.errf("multiple DOCTYPE declarations")
		}
		dt, err := s.parseDoctype()
		if err != nil {
			return err
		}
		s.doctype = dt
		if s.opts.Canon != nil {
			var b strings.Builder
			writeDoctype(&b, dt)
			if err := s.cstring(b.String()); err != nil {
				return err
			}
		}
		return nil
	case s.peek() == '<':
		return s.openElement()
	default:
		return s.errf("unexpected character %q before root element", s.peek())
	}
}

func (s *Streamer) stepEpilog() error {
	for {
		if err := s.checkBudget(); err != nil {
			return err
		}
		s.skipSpace()
		if s.eof() {
			s.state = streamDone
			return io.EOF
		}
		switch {
		case s.hasPrefix("<!--"):
			if err := s.skipComment(); err != nil {
				return err
			}
		case s.hasPrefix("<?"):
			if err := s.skipPI(); err != nil {
				return err
			}
		default:
			return s.errf("content after root element")
		}
	}
}

func (s *Streamer) skipPI() error {
	s.advanceSpan(2) // "<?"
	for {
		if s.eof() {
			return s.errf("unterminated processing instruction")
		}
		if s.hasPrefix("?>") {
			s.advanceSpan(2)
			return nil
		}
		s.advance()
	}
}

func (s *Streamer) skipComment() error {
	s.advanceSpan(4) // "<!--"
	for {
		if s.eof() {
			return s.errf("unterminated comment")
		}
		if s.hasPrefix("-->") {
			s.advanceSpan(3)
			return nil
		}
		if s.hasPrefix("--") {
			return s.errf(`"--" is not allowed inside comments`)
		}
		s.advance()
	}
}

func (s *Streamer) parseDoctype() (*Doctype, error) {
	if err := s.expect("<!DOCTYPE"); err != nil {
		return nil, err
	}
	s.skipSpace()
	nb, err := s.readName()
	if err != nil {
		return nil, err
	}
	dt := &Doctype{Name: string(nb)}
	s.skipSpace()
	if s.hasPrefix("PUBLIC") {
		s.advanceSpan(len("PUBLIC"))
		s.skipSpace()
		qb, err := s.readQuoted()
		if err != nil {
			return nil, err
		}
		dt.PublicID = string(qb)
		s.skipSpace()
		if qb, err = s.readQuoted(); err != nil {
			return nil, err
		}
		dt.SystemID = string(qb)
	} else if s.hasPrefix("SYSTEM") {
		s.advanceSpan(len("SYSTEM"))
		s.skipSpace()
		qb, err := s.readQuoted()
		if err != nil {
			return nil, err
		}
		dt.SystemID = string(qb)
	}
	s.skipSpace()
	if !s.eof() && s.peek() == '[' {
		s.advance()
		var subset []byte
		for {
			if err := s.checkBudget(); err != nil {
				return nil, err
			}
			if s.eof() {
				return nil, s.errf("unterminated internal DTD subset")
			}
			c := s.peek()
			switch {
			case c == ']':
				dt.InternalSubset = string(subset)
				s.advance()
			case c == '<':
				if subset, err = s.captureSubsetMarkup(subset); err != nil {
					return nil, err
				}
				continue
			default:
				subset = append(subset, c)
				s.advance()
				continue
			}
			break
		}
		registerSubsetEntities(dt.InternalSubset, s.entities)
		s.skipSpace()
	}
	if s.eof() || s.peek() != '>' {
		return nil, s.errf("expected '>' to close DOCTYPE")
	}
	s.advance()
	return dt, nil
}

// captureSubsetMarkup consumes one markup declaration, PI, or comment
// inside the internal subset, honoring quoted strings, appending the raw
// bytes to subset — the streaming twin of skipSubsetMarkup plus the tree
// parser's raw-slice capture.
func (s *Streamer) captureSubsetMarkup(subset []byte) ([]byte, error) {
	if s.hasPrefix("<!--") {
		subset = append(subset, "<!--"...)
		s.advanceSpan(4)
		for {
			if s.eof() {
				return subset, s.errf("unterminated comment")
			}
			if s.hasPrefix("-->") {
				subset = append(subset, "-->"...)
				s.advanceSpan(3)
				return subset, nil
			}
			if s.hasPrefix("--") {
				return subset, s.errf(`"--" is not allowed inside comments`)
			}
			subset = append(subset, s.advance())
		}
	}
	if s.hasPrefix("<?") {
		subset = append(subset, "<?"...)
		s.advanceSpan(2)
		for {
			if s.eof() {
				return subset, s.errf("unterminated processing instruction")
			}
			if s.hasPrefix("?>") {
				subset = append(subset, "?>"...)
				s.advanceSpan(2)
				return subset, nil
			}
			subset = append(subset, s.advance())
		}
	}
	// <!ELEMENT ...>, <!ATTLIST ...>, <!ENTITY ...>, <!NOTATION ...>
	for !s.eof() {
		c := s.advance()
		subset = append(subset, c)
		if c == '"' || c == '\'' {
			for !s.eof() && s.peek() != c {
				subset = append(subset, s.advance())
			}
			if s.eof() {
				return subset, s.errf("unterminated literal in DTD internal subset")
			}
			subset = append(subset, s.advance())
			continue
		}
		if c == '>' {
			return subset, nil
		}
	}
	return subset, s.errf("unterminated declaration in DTD internal subset")
}

// ---- element structure ----

func (s *Streamer) top() *streamFrame { return &s.stack[len(s.stack)-1] }

// openElement parses one start tag at the cursor (the '<' not yet
// consumed), pushes its frame and queues the Start event (plus the End
// event when self-closing).
// Window, stack, arena and value buffers are all reused across documents.
// dtdvet:noalloc
func (s *Streamer) openElement() error {
	if len(s.stack) > s.maxDepth {
		return s.errf("element nesting exceeds %d", s.maxDepth) // dtdvet:allow noalloc -- cold error path, the parse is over
	}
	s.advance() // '<'
	nb, err := s.readName()
	if err != nil {
		return err
	}
	var id int32
	var name string
	if s.opts.Symbols != nil {
		id, name = s.opts.Symbols.InternBytes(nb)
	} else {
		name = string(nb) // dtdvet:allow noalloc -- no-interner configuration only; the source always passes Symbols
	}
	if err := s.canonOpenParent(); err != nil {
		return err
	}
	if s.opts.Canon != nil {
		if err := s.cstring("<"); err != nil {
			return err
		}
		if err := s.cwrite(nb); err != nil {
			return err
		}
	}
	s.attrNames = s.attrNames[:0]
	s.attrStarts = s.attrStarts[:0]
	for {
		s.skipSpace()
		if s.eof() {
			return s.errf("unterminated start tag <%s", name) // dtdvet:allow noalloc -- cold error path, the parse is over
		}
		switch {
		case s.hasPrefix("/>"):
			s.advanceSpan(2)
			s.stack = append(s.stack, streamFrame{name: name, id: id, open: true})
			s.queue(Event{Kind: StartEvent, Name: name, ID: id})
			return s.closeTop()
		case s.buf[s.r] == '>':
			s.advance()
			s.stack = append(s.stack, streamFrame{name: name, id: id, open: true})
			s.state = streamContent
			s.queue(Event{Kind: StartEvent, Name: name, ID: id})
			return nil
		default:
			if err := s.parseAttr(name); err != nil {
				return err
			}
		}
	}
}

// parseAttr parses one attribute of the start tag of element name,
// duplicate-checking against the names already seen and writing the
// canonical ` name="value"` form.
// dtdvet:noalloc
func (s *Streamer) parseAttr(elem string) error {
	anb, err := s.readName()
	if err != nil {
		return s.errf("malformed start tag <%s", elem) // dtdvet:allow noalloc -- cold error path, the parse is over
	}
	// Duplicate check against the arena of prior names.
	for i := 0; i < len(s.attrStarts); i++ {
		end := len(s.attrNames)
		if i+1 < len(s.attrStarts) {
			end = s.attrStarts[i+1]
		}
		if string(s.attrNames[s.attrStarts[i]:end]) == string(anb) { // dtdvet:allow noalloc -- string(b)==string(b) comparison does not allocate
			return s.errf("duplicate attribute %q on <%s>", string(anb), elem) // dtdvet:allow noalloc -- cold error path, the parse is over
		}
	}
	s.attrStarts = append(s.attrStarts, len(s.attrNames))
	s.attrNames = append(s.attrNames, anb...)
	nameStart := s.attrStarts[len(s.attrStarts)-1]
	s.skipSpace()
	if s.eof() || s.buf[s.r] != '=' {
		return s.errf("attribute %q missing '='", string(s.attrNames[nameStart:])) // dtdvet:allow noalloc -- cold error path, the parse is over
	}
	s.advance()
	s.skipSpace()
	raw, err := s.readQuoted()
	if err != nil {
		return err
	}
	if s.valBuf, err = s.expandBytes(s.valBuf[:0], raw); err != nil {
		return err
	}
	if s.opts.Canon != nil {
		if err := s.cstring(" "); err != nil {
			return err
		}
		if err := s.cwrite(s.attrNames[nameStart:]); err != nil {
			return err
		}
		if err := s.cstring(`="`); err != nil {
			return err
		}
		if err := s.escAttrTo(s.valBuf); err != nil {
			return err
		}
		if err := s.cstring(`"`); err != nil {
			return err
		}
	}
	return nil
}

// closeTop pops the innermost open element, queues its End event, writes
// its canonical close and moves to the epilog when the root closed.
// dtdvet:noalloc
func (s *Streamer) closeTop() error {
	f := s.stack[len(s.stack)-1]
	s.stack = s.stack[:len(s.stack)-1]
	if s.opts.Canon != nil {
		if f.open {
			if err := s.cstring("/>"); err != nil {
				return err
			}
		} else {
			if err := s.cstring("</"); err != nil {
				return err
			}
			if err := s.cstring(f.name); err != nil {
				return err
			}
			if err := s.cstring(">"); err != nil {
				return err
			}
		}
	}
	s.queue(Event{Kind: EndEvent, Name: f.name, ID: f.id})
	if len(s.stack) == 0 {
		s.state = streamEpilog
		return s.cstring("\n")
	}
	return nil
}

// stepContent processes one content item: a text chunk, one entity
// reference, or one piece of markup.
// dtdvet:noalloc
func (s *Streamer) stepContent() error {
	if s.eof() {
		return s.errf("missing end tag </%s>", s.top().name) // dtdvet:allow noalloc -- cold error path, the parse is over
	}
	c := s.buf[s.r]
	if c != '<' && c != '&' {
		return s.textChunk()
	}
	if c == '&' {
		return s.entityInText()
	}
	switch {
	case s.hasPrefix("</"):
		if err := s.flushText(); err != nil {
			return err
		}
		return s.closeTag()
	case s.hasPrefix("<!--"):
		if err := s.flushText(); err != nil {
			return err
		}
		return s.skipComment()
	case s.hasPrefix("<![CDATA["):
		if err := s.flushText(); err != nil {
			return err
		}
		return s.cdata()
	case s.hasPrefix("<?"):
		if err := s.flushText(); err != nil {
			return err
		}
		return s.skipPI()
	default:
		if err := s.flushText(); err != nil {
			return err
		}
		return s.openElement()
	}
}

// textChunk consumes the buffered run of plain character data up to the
// next markup or entity reference.
// dtdvet:noalloc
func (s *Streamer) textChunk() error {
	n := s.fill(1)
	b := s.buf[s.r : s.r+n]
	i := 0
	for i < n && b[i] != '<' && b[i] != '&' {
		i++
	}
	s.runActive = true
	s.textBuf = append(s.textBuf, b[:i]...)
	s.advanceSpan(i)
	return s.spillText()
}

// entityInText expands one entity reference inside character data. The
// tree parser expands at run-flush time, searching for ';' only within
// the run (which ends at the next '<'): scanning up to '<' reproduces its
// accept/reject decisions exactly.
// dtdvet:noalloc
func (s *Streamer) entityInText() error {
	i := 1 // past '&'
	for {
		if s.fill(i+1) <= i {
			// EOF inside the run: the tree parser errors on the missing
			// end tag before ever expanding the run.
			return s.errf("missing end tag </%s>", s.top().name) // dtdvet:allow noalloc -- cold error path, the parse is over
		}
		c := s.buf[s.r+i]
		if c == ';' {
			break
		}
		if c == '<' {
			return s.errf("unterminated entity reference")
		}
		i++
	}
	ref := s.buf[s.r+1 : s.r+i]
	s.runActive = true
	var err error
	if s.textBuf, err = s.appendRef(s.textBuf, ref, 0); err != nil {
		return err
	}
	s.advanceSpan(i + 1)
	return s.spillText()
}

func (s *Streamer) closeTag() error {
	s.advanceSpan(2) // "</"
	nb, err := s.readName()
	if err != nil {
		return err
	}
	top := s.top()
	if string(nb) != top.name {
		return s.errf("end tag </%s> does not match <%s>", string(nb), top.name)
	}
	s.skipSpace()
	if s.eof() || s.buf[s.r] != '>' {
		return s.errf("malformed end tag </%s", top.name)
	}
	s.advance()
	return s.closeTop()
}

func (s *Streamer) cdata() error {
	s.advanceSpan(len("<![CDATA["))
	s.runActive = true
	for {
		if err := s.checkBudget(); err != nil {
			return err
		}
		if s.eof() {
			return s.errf("unterminated CDATA section")
		}
		if s.hasPrefix("]]>") {
			s.advanceSpan(3)
			break
		}
		s.textBuf = append(s.textBuf, s.buf[s.r])
		s.advance()
		if err := s.spillText(); err != nil {
			return err
		}
	}
	// A CDATA section is its own text node, never merged with adjacent
	// character data.
	return s.flushText()
}

// ---- text-run bookkeeping ----

// spillText bounds the text-run buffer: once a run is provably kept, the
// complete-rune prefix is flushed to the canonical output (or dropped when
// there is none) so a long run cannot grow memory. Runs that are still
// all-whitespace keep buffering, since their fate is unknown until the
// run ends.
func (s *Streamer) spillText() error {
	if len(s.textBuf) < textSpillSize {
		return nil
	}
	// Decide on the complete-rune prefix so a multi-byte whitespace rune
	// split at the boundary cannot flip the drop decision.
	cut := completeRuneBoundary(s.textBuf)
	if cut == 0 {
		return nil
	}
	if !allSpaceBytes(s.textBuf[:cut]) {
		s.textNonWS = true
	}
	if !s.textNonWS && !s.opts.PreserveWhitespace {
		return nil
	}
	if !s.textSpilled {
		if err := s.canonOpenParent(); err != nil {
			return err
		}
		s.textSpilled = true
	}
	if err := s.escTextTo(s.textBuf[:cut]); err != nil {
		return err
	}
	s.textBuf = append(s.textBuf[:0], s.textBuf[cut:]...)
	return nil
}

// flushText ends the current text run, applying the tree parser's keep
// rule (PreserveWhitespace, or non-whitespace content) and queueing the
// Text event.
// dtdvet:noalloc
func (s *Streamer) flushText() error {
	if !s.runActive {
		return nil
	}
	nonWS := s.textNonWS || !allSpaceBytes(s.textBuf)
	keep := s.opts.PreserveWhitespace || s.textSpilled || nonWS
	if keep {
		if err := s.canonOpenParent(); err != nil {
			return err
		}
		if err := s.escTextTo(s.textBuf); err != nil {
			return err
		}
		s.queue(Event{Kind: TextEvent, NonWS: nonWS})
	}
	s.textBuf = s.textBuf[:0]
	s.runActive, s.textNonWS, s.textSpilled = false, false, false
	return nil
}

// allSpaceBytes reports whether b trims to nothing under strings.TrimSpace
// — every rune satisfies unicode.IsSpace (invalid UTF-8 does not).
func allSpaceBytes(b []byte) bool {
	for i := 0; i < len(b); {
		if c := b[i]; c < utf8.RuneSelf {
			switch c {
			case ' ', '\t', '\n', '\v', '\f', '\r':
				i++
				continue
			}
			return false
		}
		r, size := utf8.DecodeRune(b[i:])
		if !unicode.IsSpace(r) {
			return false
		}
		i += size
	}
	return true
}

// completeRuneBoundary returns the longest prefix length of b that does
// not end in a truncated UTF-8 sequence.
func completeRuneBoundary(b []byte) int {
	n := len(b)
	if n == 0 || b[n-1] < utf8.RuneSelf {
		return n
	}
	i := n - 1
	for i > 0 && n-i < utf8.UTFMax && !utf8.RuneStart(b[i]) {
		i--
	}
	if !utf8.RuneStart(b[i]) {
		return n // malformed either way; treat as complete
	}
	if utf8.FullRune(b[i:]) {
		return n
	}
	return i
}

// ---- entity expansion ----

// appendRef expands one reference (the bytes between '&' and ';') at the
// given nesting depth, mirroring expandEntitiesDepth's per-reference body.
// dtdvet:noalloc
func (s *Streamer) appendRef(dst []byte, ref []byte, depth int) ([]byte, error) {
	if len(ref) > 0 && ref[0] == '#' {
		return s.appendCharRef(dst, ref)
	}
	val, ok := s.entities[string(ref)] // dtdvet:allow noalloc -- map-index string(b) is the compiler's no-copy special case
	if !ok {
		return dst, s.errf("reference to undeclared entity %q", string(ref)) // dtdvet:allow noalloc -- cold error path, the parse is over
	}
	if predefinedEntities[string(ref)] { // dtdvet:allow noalloc -- map-index string(b) is the compiler's no-copy special case
		// Predefined entities expand to literal characters that are not
		// rescanned.
		return append(dst, val...), nil
	}
	return s.expandString(dst, val, depth+1)
}

// expandString expands declared-entity replacement text, which may itself
// contain references — the streaming twin of expandEntitiesDepth.
func (s *Streamer) expandString(dst []byte, v string, depth int) ([]byte, error) {
	if !strings.ContainsRune(v, '&') {
		return append(dst, v...), nil
	}
	if depth > maxEntityDepth {
		return dst, s.errf("entity expansion too deep (possible recursion)")
	}
	for i := 0; i < len(v); {
		c := v[i]
		if c != '&' {
			dst = append(dst, c)
			i++
			continue
		}
		end := strings.IndexByte(v[i:], ';')
		if end < 0 {
			return dst, s.errf("unterminated entity reference")
		}
		ref := v[i+1 : i+end]
		i += end + 1
		var err error
		if dst, err = s.appendRefString(dst, ref, depth); err != nil {
			return dst, err
		}
	}
	return dst, nil
}

// appendRefString is appendRef for a reference already held as a string.
func (s *Streamer) appendRefString(dst []byte, ref string, depth int) ([]byte, error) {
	if strings.HasPrefix(ref, "#") {
		r, err := parseCharRef(ref)
		if err != nil {
			return dst, s.errf("%v", err)
		}
		return utf8.AppendRune(dst, r), nil
	}
	val, ok := s.entities[ref]
	if !ok {
		return dst, s.errf("reference to undeclared entity %q", ref)
	}
	if predefinedEntities[ref] {
		return append(dst, val...), nil
	}
	return s.expandString(dst, val, depth+1)
}

// expandBytes expands a raw attribute value — the twin of expandEntities
// on a byte slice, appending into dst.
func (s *Streamer) expandBytes(dst, v []byte) ([]byte, error) {
	for i := 0; i < len(v); {
		c := v[i]
		if c != '&' {
			dst = append(dst, c)
			i++
			continue
		}
		end := -1
		for j := i + 1; j < len(v); j++ {
			if v[j] == ';' {
				end = j
				break
			}
		}
		if end < 0 {
			return dst, s.errf("unterminated entity reference")
		}
		ref := v[i+1 : end]
		i = end + 1
		var err error
		if dst, err = s.appendRef(dst, ref, 0); err != nil {
			return dst, err
		}
	}
	return dst, nil
}

// appendCharRef appends the rune of a character reference ("#..." between
// '&' and ';'), mirroring parseCharRef without leaving the byte domain.
// dtdvet:noalloc
func (s *Streamer) appendCharRef(dst []byte, ref []byte) ([]byte, error) {
	body := ref[1:]
	base := uint64(10)
	if len(body) > 0 && (body[0] == 'x' || body[0] == 'X') {
		body = body[1:]
		base = 16
	}
	if len(body) == 0 {
		return dst, s.errf("invalid character reference &%s;", string(ref)) // dtdvet:allow noalloc -- cold error path, the parse is over
	}
	var n uint64
	for _, c := range body {
		var d uint64
		switch {
		case c >= '0' && c <= '9':
			d = uint64(c - '0')
		case base == 16 && c >= 'a' && c <= 'f':
			d = uint64(c-'a') + 10
		case base == 16 && c >= 'A' && c <= 'F':
			d = uint64(c-'A') + 10
		default:
			return dst, s.errf("invalid character reference &%s;", string(ref)) // dtdvet:allow noalloc -- cold error path, the parse is over
		}
		n = n*base + d
		if n > 1<<32 {
			return dst, s.errf("invalid character reference &%s;", string(ref)) // dtdvet:allow noalloc -- cold error path, the parse is over
		}
	}
	if n > (1<<32)-1 {
		return dst, s.errf("invalid character reference &%s;", string(ref)) // dtdvet:allow noalloc -- cold error path, the parse is over
	}
	r := rune(uint32(n))
	if !utf8.ValidRune(r) {
		return dst, s.errf("character reference &%s; is not a valid rune", string(ref)) // dtdvet:allow noalloc -- cold error path, the parse is over
	}
	return utf8.AppendRune(dst, r), nil
}
