package xmltree

import (
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"unicode/utf8"
)

// ParseError is a well-formedness or syntax error with its position in the
// input.
type ParseError struct {
	Line   int
	Column int
	Msg    string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("xml: %d:%d: %s", e.Line, e.Column, e.Msg)
}

// Options controls document parsing.
type Options struct {
	// PreserveWhitespace keeps text nodes that consist only of whitespace.
	// By default they are dropped, since the structural algorithms operate
	// on element structure and meaningful #PCDATA only.
	PreserveWhitespace bool
	// MaxDepth bounds element nesting to guard against hostile inputs.
	// Zero means the default of 1024.
	MaxDepth int
	// MaxBytes bounds the total input size in bytes. Inputs past the cap
	// fail with *SizeError instead of being read to completion, so a
	// hostile or runaway document cannot exhaust memory through the
	// tree-building path. Zero means unlimited.
	MaxBytes int64
}

const defaultMaxDepth = 1024

// SizeError reports an input rejected for exceeding Options.MaxBytes. The
// API layer maps it to 413 Request Entity Too Large.
type SizeError struct {
	Limit int64
}

func (e *SizeError) Error() string {
	return fmt.Sprintf("xml: input exceeds %d-byte limit", e.Limit)
}

// Parse reads an entire XML document from r.
func Parse(r io.Reader) (*Document, error) {
	return ParseWithOptions(r, Options{})
}

// ParseWithOptions reads an entire XML document from r using opts.
func ParseWithOptions(r io.Reader, opts Options) (*Document, error) {
	var data []byte
	var err error
	if opts.MaxBytes > 0 {
		// Read one byte past the cap so an exactly-at-limit input is
		// distinguishable from an over-limit one without buffering the
		// excess.
		data, err = io.ReadAll(io.LimitReader(r, opts.MaxBytes+1))
		if err == nil && int64(len(data)) > opts.MaxBytes {
			return nil, &SizeError{Limit: opts.MaxBytes}
		}
	} else {
		data, err = io.ReadAll(r)
	}
	if err != nil {
		return nil, fmt.Errorf("xml: reading input: %w", err)
	}
	return parseBytes(data, opts)
}

// ParseString parses a document held in a string.
func ParseString(s string) (*Document, error) {
	return parseBytes([]byte(s), Options{})
}

// ParseFile parses the XML document stored at path.
func ParseFile(path string) (*Document, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return parseBytes(data, Options{})
}

type parser struct {
	src      []byte
	pos      int
	line     int
	col      int
	opts     Options
	entities map[string]string // general entities from the internal subset
	maxDepth int
}

func parseBytes(src []byte, opts Options) (*Document, error) {
	p := &parser{
		src:      src,
		line:     1,
		col:      1,
		opts:     opts,
		maxDepth: opts.MaxDepth,
		entities: map[string]string{
			"lt":   "<",
			"gt":   ">",
			"amp":  "&",
			"apos": "'",
			"quot": `"`,
		},
	}
	if p.maxDepth <= 0 {
		p.maxDepth = defaultMaxDepth
	}
	return p.parseDocument()
}

func (p *parser) errf(format string, args ...any) error {
	return &ParseError{Line: p.line, Column: p.col, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) eof() bool { return p.pos >= len(p.src) }

func (p *parser) peek() byte {
	if p.eof() {
		return 0
	}
	return p.src[p.pos]
}

func (p *parser) advance() byte {
	c := p.src[p.pos]
	p.pos++
	if c == '\n' {
		p.line++
		p.col = 1
	} else {
		p.col++
	}
	return c
}

func (p *parser) hasPrefix(s string) bool {
	// Compare in place: converting the whole remaining input to a string
	// would copy it, making text-heavy parses quadratic.
	return len(p.src)-p.pos >= len(s) && string(p.src[p.pos:p.pos+len(s)]) == s
}

func (p *parser) expect(s string) error {
	if !p.hasPrefix(s) {
		return p.errf("expected %q", s)
	}
	for range s {
		p.advance()
	}
	return nil
}

func (p *parser) skipSpace() {
	for !p.eof() {
		switch p.peek() {
		case ' ', '\t', '\r', '\n':
			p.advance()
		default:
			return
		}
	}
}

func isNameStart(c byte) bool {
	return c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c >= 0x80
}

func isNameChar(c byte) bool {
	return isNameStart(c) || c == '-' || c == '.' || (c >= '0' && c <= '9')
}

func (p *parser) readName() (string, error) {
	if p.eof() || !isNameStart(p.peek()) {
		return "", p.errf("expected a name")
	}
	start := p.pos
	for !p.eof() && isNameChar(p.peek()) {
		p.advance()
	}
	return string(p.src[start:p.pos]), nil
}

func (p *parser) parseDocument() (*Document, error) {
	doc := &Document{}
	// Optional byte-order mark.
	if p.hasPrefix("\xef\xbb\xbf") {
		p.pos += 3
	}
	// Prolog: XML declaration, comments, PIs, doctype.
	for {
		p.skipSpace()
		if p.eof() {
			return nil, p.errf("no root element")
		}
		switch {
		case p.hasPrefix("<?"):
			if err := p.skipPI(); err != nil {
				return nil, err
			}
		case p.hasPrefix("<!--"):
			if err := p.skipComment(); err != nil {
				return nil, err
			}
		case p.hasPrefix("<!DOCTYPE"):
			if doc.Doctype != nil {
				return nil, p.errf("multiple DOCTYPE declarations")
			}
			dt, err := p.parseDoctype()
			if err != nil {
				return nil, err
			}
			doc.Doctype = dt
		case p.peek() == '<':
			root, err := p.parseElement(0)
			if err != nil {
				return nil, err
			}
			doc.Root = root
			// Trailing misc: comments, PIs, whitespace only.
			for {
				p.skipSpace()
				if p.eof() {
					return doc, nil
				}
				switch {
				case p.hasPrefix("<!--"):
					if err := p.skipComment(); err != nil {
						return nil, err
					}
				case p.hasPrefix("<?"):
					if err := p.skipPI(); err != nil {
						return nil, err
					}
				default:
					return nil, p.errf("content after root element")
				}
			}
		default:
			return nil, p.errf("unexpected character %q before root element", p.peek())
		}
	}
}

func (p *parser) skipPI() error {
	if err := p.expect("<?"); err != nil {
		return err
	}
	for !p.eof() {
		if p.hasPrefix("?>") {
			p.advance()
			p.advance()
			return nil
		}
		p.advance()
	}
	return p.errf("unterminated processing instruction")
}

func (p *parser) skipComment() error {
	if err := p.expect("<!--"); err != nil {
		return err
	}
	for !p.eof() {
		if p.hasPrefix("-->") {
			p.advance()
			p.advance()
			p.advance()
			return nil
		}
		if p.hasPrefix("--") && !p.hasPrefix("-->") {
			return p.errf(`"--" is not allowed inside comments`)
		}
		p.advance()
	}
	return p.errf("unterminated comment")
}

func (p *parser) parseDoctype() (*Doctype, error) {
	if err := p.expect("<!DOCTYPE"); err != nil {
		return nil, err
	}
	p.skipSpace()
	name, err := p.readName()
	if err != nil {
		return nil, err
	}
	dt := &Doctype{Name: name}
	p.skipSpace()
	if p.hasPrefix("PUBLIC") {
		if err := p.expect("PUBLIC"); err != nil {
			return nil, err
		}
		p.skipSpace()
		if dt.PublicID, err = p.readQuoted(); err != nil {
			return nil, err
		}
		p.skipSpace()
		if dt.SystemID, err = p.readQuoted(); err != nil {
			return nil, err
		}
	} else if p.hasPrefix("SYSTEM") {
		if err := p.expect("SYSTEM"); err != nil {
			return nil, err
		}
		p.skipSpace()
		if dt.SystemID, err = p.readQuoted(); err != nil {
			return nil, err
		}
	}
	p.skipSpace()
	if p.peek() == '[' {
		p.advance()
		start := p.pos
		depth := 0
		for {
			if p.eof() {
				return nil, p.errf("unterminated internal DTD subset")
			}
			c := p.peek()
			switch {
			case c == ']' && depth == 0:
				dt.InternalSubset = string(p.src[start:p.pos])
				p.advance()
			case c == '<':
				// Declarations and comments may contain ']' inside quotes;
				// skip markup atomically.
				if err := p.skipSubsetMarkup(); err != nil {
					return nil, err
				}
				continue
			default:
				p.advance()
				continue
			}
			break
		}
		p.registerSubsetEntities(dt.InternalSubset)
		p.skipSpace()
	}
	if p.eof() || p.peek() != '>' {
		return nil, p.errf("expected '>' to close DOCTYPE")
	}
	p.advance()
	return dt, nil
}

// skipSubsetMarkup consumes one markup declaration, PI, or comment inside
// the internal subset, honoring quoted strings.
func (p *parser) skipSubsetMarkup() error {
	if p.hasPrefix("<!--") {
		return p.skipComment()
	}
	if p.hasPrefix("<?") {
		return p.skipPI()
	}
	// <!ELEMENT ...>, <!ATTLIST ...>, <!ENTITY ...>, <!NOTATION ...>
	for !p.eof() {
		c := p.advance()
		if c == '"' || c == '\'' {
			quote := c
			for !p.eof() && p.peek() != quote {
				p.advance()
			}
			if p.eof() {
				return p.errf("unterminated literal in DTD internal subset")
			}
			p.advance()
			continue
		}
		if c == '>' {
			return nil
		}
	}
	return p.errf("unterminated declaration in DTD internal subset")
}

// registerSubsetEntities extracts general-entity declarations from the
// internal subset so that references in document content can be expanded.
// Parameter entities are left to the dtd package.
func (p *parser) registerSubsetEntities(subset string) {
	registerSubsetEntities(subset, p.entities)
}

// registerSubsetEntities is the table-driven core shared with the streaming
// parser: both must expand exactly the same entity set.
func registerSubsetEntities(subset string, entities map[string]string) {
	rest := subset
	for {
		i := strings.Index(rest, "<!ENTITY")
		if i < 0 {
			return
		}
		rest = rest[i+len("<!ENTITY"):]
		j := 0
		for j < len(rest) && isSpaceByte(rest[j]) {
			j++
		}
		if j < len(rest) && rest[j] == '%' {
			continue // parameter entity
		}
		k := j
		for k < len(rest) && isNameChar(rest[k]) {
			k++
		}
		if k == j {
			continue
		}
		name := rest[j:k]
		for k < len(rest) && isSpaceByte(rest[k]) {
			k++
		}
		if k >= len(rest) || (rest[k] != '"' && rest[k] != '\'') {
			continue // external entity or malformed; ignore
		}
		quote := rest[k]
		end := strings.IndexByte(rest[k+1:], quote)
		if end < 0 {
			return
		}
		entities[name] = rest[k+1 : k+1+end]
		rest = rest[k+1+end:]
	}
}

func isSpaceByte(c byte) bool {
	return c == ' ' || c == '\t' || c == '\r' || c == '\n'
}

func (p *parser) readQuoted() (string, error) {
	if p.eof() || (p.peek() != '"' && p.peek() != '\'') {
		return "", p.errf("expected a quoted literal")
	}
	quote := p.advance()
	start := p.pos
	for !p.eof() && p.peek() != quote {
		p.advance()
	}
	if p.eof() {
		return "", p.errf("unterminated literal")
	}
	s := string(p.src[start:p.pos])
	p.advance()
	return s, nil
}

func (p *parser) parseElement(depth int) (*Node, error) {
	if depth > p.maxDepth {
		return nil, p.errf("element nesting exceeds %d", p.maxDepth)
	}
	if err := p.expect("<"); err != nil {
		return nil, err
	}
	name, err := p.readName()
	if err != nil {
		return nil, err
	}
	node := &Node{Kind: Element, Name: name}
	seen := make(map[string]bool)
	for {
		p.skipSpace()
		if p.eof() {
			return nil, p.errf("unterminated start tag <%s", name)
		}
		switch {
		case p.hasPrefix("/>"):
			p.advance()
			p.advance()
			return node, nil
		case p.peek() == '>':
			p.advance()
			if err := p.parseContent(node, depth); err != nil {
				return nil, err
			}
			return node, nil
		default:
			attrName, err := p.readName()
			if err != nil {
				return nil, p.errf("malformed start tag <%s", name)
			}
			if seen[attrName] {
				return nil, p.errf("duplicate attribute %q on <%s>", attrName, name)
			}
			seen[attrName] = true
			p.skipSpace()
			if p.eof() || p.peek() != '=' {
				return nil, p.errf("attribute %q missing '='", attrName)
			}
			p.advance()
			p.skipSpace()
			raw, err := p.readQuoted()
			if err != nil {
				return nil, err
			}
			val, err := p.expandEntities(raw)
			if err != nil {
				return nil, err
			}
			node.Attrs = append(node.Attrs, Attr{Name: attrName, Value: val})
		}
	}
}

func (p *parser) parseContent(parent *Node, depth int) error {
	var text strings.Builder
	flush := func() error {
		if text.Len() == 0 {
			return nil
		}
		data, err := p.expandEntities(text.String())
		if err != nil {
			return err
		}
		text.Reset()
		if !p.opts.PreserveWhitespace && strings.TrimSpace(data) == "" {
			return nil
		}
		parent.Children = append(parent.Children, NewText(data))
		return nil
	}
	for {
		if p.eof() {
			return p.errf("missing end tag </%s>", parent.Name)
		}
		switch {
		case p.hasPrefix("</"):
			if err := flush(); err != nil {
				return err
			}
			p.advance()
			p.advance()
			name, err := p.readName()
			if err != nil {
				return err
			}
			if name != parent.Name {
				return p.errf("end tag </%s> does not match <%s>", name, parent.Name)
			}
			p.skipSpace()
			if p.eof() || p.peek() != '>' {
				return p.errf("malformed end tag </%s", name)
			}
			p.advance()
			return nil
		case p.hasPrefix("<!--"):
			if err := flush(); err != nil {
				return err
			}
			if err := p.skipComment(); err != nil {
				return err
			}
		case p.hasPrefix("<![CDATA["):
			if err := flush(); err != nil {
				return err
			}
			if err := p.expect("<![CDATA["); err != nil {
				return err
			}
			start := p.pos
			for !p.eof() && !p.hasPrefix("]]>") {
				p.advance()
			}
			if p.eof() {
				return p.errf("unterminated CDATA section")
			}
			data := string(p.src[start:p.pos])
			p.advance()
			p.advance()
			p.advance()
			if p.opts.PreserveWhitespace || strings.TrimSpace(data) != "" {
				parent.Children = append(parent.Children, NewText(data))
			}
		case p.hasPrefix("<?"):
			if err := flush(); err != nil {
				return err
			}
			if err := p.skipPI(); err != nil {
				return err
			}
		case p.peek() == '<':
			if err := flush(); err != nil {
				return err
			}
			child, err := p.parseElement(depth + 1)
			if err != nil {
				return err
			}
			parent.Children = append(parent.Children, child)
		default:
			text.WriteByte(p.advance())
		}
	}
}

// expandEntities resolves character and entity references in raw character
// data or attribute values.
func (p *parser) expandEntities(s string) (string, error) {
	return p.expandEntitiesDepth(s, 0)
}

// maxEntityDepth bounds nested entity expansion (billion-laughs guard).
const maxEntityDepth = 16

var predefinedEntities = map[string]bool{
	"lt": true, "gt": true, "amp": true, "apos": true, "quot": true,
}

func (p *parser) expandEntitiesDepth(s string, depth int) (string, error) {
	if !strings.ContainsRune(s, '&') {
		return s, nil
	}
	if depth > maxEntityDepth {
		return "", p.errf("entity expansion too deep (possible recursion)")
	}
	var b strings.Builder
	for i := 0; i < len(s); {
		c := s[i]
		if c != '&' {
			b.WriteByte(c)
			i++
			continue
		}
		end := strings.IndexByte(s[i:], ';')
		if end < 0 {
			return "", p.errf("unterminated entity reference")
		}
		ref := s[i+1 : i+end]
		i += end + 1
		if strings.HasPrefix(ref, "#") {
			r, err := parseCharRef(ref)
			if err != nil {
				return "", p.errf("%v", err)
			}
			b.WriteRune(r)
			continue
		}
		val, ok := p.entities[ref]
		if !ok {
			return "", p.errf("reference to undeclared entity %q", ref)
		}
		if predefinedEntities[ref] {
			// Predefined entities expand to literal characters that are
			// not rescanned (that is the point of &amp; and friends).
			b.WriteString(val)
			continue
		}
		// Declared entity replacement text may itself contain references.
		expanded, err := p.expandEntitiesDepth(val, depth+1)
		if err != nil {
			return "", err
		}
		b.WriteString(expanded)
	}
	return b.String(), nil
}

func parseCharRef(ref string) (rune, error) {
	body := ref[1:]
	base := 10
	if strings.HasPrefix(body, "x") || strings.HasPrefix(body, "X") {
		body = body[1:]
		base = 16
	}
	n, err := strconv.ParseUint(body, base, 32)
	if err != nil {
		return 0, fmt.Errorf("invalid character reference &%s;", ref)
	}
	r := rune(n)
	if !utf8.ValidRune(r) {
		return 0, fmt.Errorf("character reference &%s; is not a valid rune", ref)
	}
	return r, nil
}
