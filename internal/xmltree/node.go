// Package xmltree parses XML documents into the labeled-tree representation
// used throughout the library.
//
// The paper (Bertino et al., EDBT 2002) represents an XML document as a tree
// whose internal vertices are labeled with element tags and whose leaves are
// labeled with #PCDATA values. Go's encoding/xml has no DTD support and keeps
// no document-type information, so this package implements a standalone,
// dependency-free XML parser that additionally captures the DOCTYPE
// declaration (including the internal subset, which package dtd can parse).
package xmltree

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
)

// Kind discriminates the node variants of a document tree.
type Kind int

const (
	// Element is an element node labeled with a tag name.
	Element Kind = iota
	// Text is a character-data leaf (#PCDATA in the paper's terminology).
	Text
)

// String returns a human-readable kind name.
func (k Kind) String() string {
	switch k {
	case Element:
		return "element"
	case Text:
		return "text"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Attr is a single attribute of an element.
type Attr struct {
	Name  string
	Value string
}

// Node is a vertex of a document tree. Element nodes carry Name, Attrs and
// Children; Text nodes carry Data and have no children.
type Node struct {
	Kind     Kind
	Name     string // element tag; empty for text nodes
	Data     string // character data; empty for element nodes
	Attrs    []Attr
	Children []*Node
	// labelID caches the dense symbol-table ID of Name (package intern).
	// 0 means "not stamped". The value is only meaningful relative to the
	// intern.Table that assigned it, so consumers verify it (Table.NameIs)
	// before trusting it. Accessed atomically: the source engine stamps
	// documents under its write lock while concurrent classifications may
	// still be reading the tree.
	labelID int32
}

// LabelID returns the cached symbol-table ID of the node's tag, or 0 when
// the node has never been stamped. See intern.InternDocument.
func (n *Node) LabelID() int32 { return atomic.LoadInt32(&n.labelID) }

// SetLabelID stamps the cached symbol-table ID of the node's tag.
func (n *Node) SetLabelID(id int32) { atomic.StoreInt32(&n.labelID, id) }

// Doctype is a parsed <!DOCTYPE ...> declaration.
type Doctype struct {
	// Name is the declared root element name.
	Name string
	// PublicID and SystemID are the external identifiers, if present.
	PublicID string
	SystemID string
	// InternalSubset is the raw text between '[' and ']', if present. It can
	// be handed to the dtd package for parsing.
	InternalSubset string
}

// Document is a parsed XML document: an optional DOCTYPE and a single root
// element.
type Document struct {
	Doctype *Doctype
	Root    *Node
}

// NewElement returns an element node with the given tag and children.
func NewElement(name string, children ...*Node) *Node {
	return &Node{Kind: Element, Name: name, Children: children}
}

// NewText returns a text node with the given character data.
func NewText(data string) *Node {
	return &Node{Kind: Text, Data: data}
}

// IsElement reports whether n is an element node.
func (n *Node) IsElement() bool { return n != nil && n.Kind == Element }

// IsText reports whether n is a text node.
func (n *Node) IsText() bool { return n != nil && n.Kind == Text }

// ChildElements returns the direct element children of n, in document order.
func (n *Node) ChildElements() []*Node {
	if n == nil {
		return nil
	}
	var out []*Node
	for _, c := range n.Children {
		if c.Kind == Element {
			out = append(out, c)
		}
	}
	return out
}

// ChildTags returns the tags of the direct element children of n, in
// document order, with repetitions.
func (n *Node) ChildTags() []string {
	if n == nil {
		return nil
	}
	var out []string
	for _, c := range n.Children {
		if c.Kind == Element {
			out = append(out, c.Name)
		}
	}
	return out
}

// TagSet returns the paper's αβ(n): the set of tags of the direct
// subelements of n, sorted, disregarding order and repetitions.
func (n *Node) TagSet() []string {
	seen := make(map[string]bool)
	var out []string
	for _, c := range n.Children {
		if c.Kind == Element && !seen[c.Name] {
			seen[c.Name] = true
			out = append(out, c.Name)
		}
	}
	sort.Strings(out)
	return out
}

// HasText reports whether n has at least one non-empty text child.
func (n *Node) HasText() bool {
	for _, c := range n.Children {
		if c.Kind == Text && strings.TrimSpace(c.Data) != "" {
			return true
		}
	}
	return false
}

// Attr returns the value of the named attribute and whether it is present.
func (n *Node) Attr(name string) (string, bool) {
	for _, a := range n.Attrs {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// Text returns the concatenation of all text descendants of n.
func (n *Node) Text() string {
	var b strings.Builder
	n.appendText(&b)
	return b.String()
}

func (n *Node) appendText(b *strings.Builder) {
	if n == nil {
		return
	}
	if n.Kind == Text {
		b.WriteString(n.Data)
		return
	}
	for _, c := range n.Children {
		c.appendText(b)
	}
}

// Clone returns a deep copy of the subtree rooted at n.
func (n *Node) Clone() *Node {
	if n == nil {
		return nil
	}
	c := &Node{Kind: n.Kind, Name: n.Name, Data: n.Data, labelID: n.LabelID()}
	if len(n.Attrs) > 0 {
		c.Attrs = append([]Attr(nil), n.Attrs...)
	}
	for _, ch := range n.Children {
		c.Children = append(c.Children, ch.Clone())
	}
	return c
}

// Equal reports whether the subtrees rooted at n and m are structurally
// identical (kind, name, data, attributes, and children, recursively).
func (n *Node) Equal(m *Node) bool {
	if n == nil || m == nil {
		return n == m
	}
	if n.Kind != m.Kind || n.Name != m.Name || n.Data != m.Data {
		return false
	}
	if len(n.Attrs) != len(m.Attrs) || len(n.Children) != len(m.Children) {
		return false
	}
	for i := range n.Attrs {
		if n.Attrs[i] != m.Attrs[i] {
			return false
		}
	}
	for i := range n.Children {
		if !n.Children[i].Equal(m.Children[i]) {
			return false
		}
	}
	return true
}

// Walk visits every node of the subtree rooted at n in document order,
// calling fn with the node and its depth (the root has depth 0). If fn
// returns false the walk does not descend into that node's children.
func (n *Node) Walk(fn func(node *Node, depth int) bool) {
	n.walk(0, fn)
}

func (n *Node) walk(depth int, fn func(*Node, int) bool) {
	if n == nil {
		return
	}
	if !fn(n, depth) {
		return
	}
	for _, c := range n.Children {
		c.walk(depth+1, fn)
	}
}

// CountElements returns the number of element nodes in the subtree rooted at
// n (including n itself if it is an element).
func (n *Node) CountElements() int {
	count := 0
	n.Walk(func(node *Node, _ int) bool {
		if node.Kind == Element {
			count++
		}
		return true
	})
	return count
}

// Depth returns the maximum depth of the subtree rooted at n: 0 for a leaf.
func (n *Node) Depth() int {
	max := 0
	for _, c := range n.Children {
		if d := c.Depth() + 1; d > max {
			max = d
		}
	}
	return max
}

// String renders the subtree rooted at n as compact XML, primarily for
// debugging and error messages.
func (n *Node) String() string {
	var b strings.Builder
	writeNode(&b, n)
	return b.String()
}
