package xmltree

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, s string) *Document {
	t.Helper()
	doc, err := ParseString(s)
	if err != nil {
		t.Fatalf("ParseString(%q): %v", s, err)
	}
	return doc
}

func TestParseMinimal(t *testing.T) {
	doc := mustParse(t, `<a/>`)
	if doc.Root == nil || doc.Root.Name != "a" {
		t.Fatalf("root = %+v, want element a", doc.Root)
	}
	if len(doc.Root.Children) != 0 {
		t.Fatalf("children = %d, want 0", len(doc.Root.Children))
	}
}

func TestParsePaperFigure2Document(t *testing.T) {
	// Figure 2(a) of the paper: <a><b>5</b><c>7</c></a>.
	doc := mustParse(t, `<a><b>5</b><c>7</c></a>`)
	root := doc.Root
	if root.Name != "a" {
		t.Fatalf("root name = %q, want a", root.Name)
	}
	kids := root.ChildElements()
	if len(kids) != 2 || kids[0].Name != "b" || kids[1].Name != "c" {
		t.Fatalf("child tags = %v, want [b c]", root.ChildTags())
	}
	if got := kids[0].Text(); got != "5" {
		t.Errorf("b text = %q, want 5", got)
	}
	if got := kids[1].Text(); got != "7" {
		t.Errorf("c text = %q, want 7", got)
	}
	if got := root.TagSet(); len(got) != 2 || got[0] != "b" || got[1] != "c" {
		t.Errorf("αβ(a) = %v, want [b c]", got)
	}
}

func TestParseNestedAndMixed(t *testing.T) {
	doc := mustParse(t, `<r>hello <b>bold</b> world</r>`)
	if n := len(doc.Root.Children); n != 3 {
		t.Fatalf("children = %d, want 3 (text, element, text)", n)
	}
	if doc.Root.Children[0].Data != "hello " {
		t.Errorf("first text = %q", doc.Root.Children[0].Data)
	}
	if !doc.Root.HasText() {
		t.Error("HasText = false, want true")
	}
	if got := doc.Root.Text(); got != "hello bold world" {
		t.Errorf("Text() = %q", got)
	}
}

func TestParseAttributes(t *testing.T) {
	doc := mustParse(t, `<a x="1" y='two &amp; three'/>`)
	if v, ok := doc.Root.Attr("x"); !ok || v != "1" {
		t.Errorf("attr x = %q, %v", v, ok)
	}
	if v, ok := doc.Root.Attr("y"); !ok || v != "two & three" {
		t.Errorf("attr y = %q, %v", v, ok)
	}
	if _, ok := doc.Root.Attr("z"); ok {
		t.Error("attr z should be absent")
	}
}

func TestParseDuplicateAttributeRejected(t *testing.T) {
	if _, err := ParseString(`<a x="1" x="2"/>`); err == nil {
		t.Fatal("duplicate attribute accepted")
	}
}

func TestParseEntities(t *testing.T) {
	doc := mustParse(t, `<a>&lt;tag&gt; &amp; &quot;q&quot; &apos;s&apos;</a>`)
	want := `<tag> & "q" 's'`
	if got := doc.Root.Text(); got != want {
		t.Errorf("text = %q, want %q", got, want)
	}
}

func TestParseCharRefs(t *testing.T) {
	doc := mustParse(t, `<a>&#65;&#x42;&#xe9;</a>`)
	if got := doc.Root.Text(); got != "ABé" {
		t.Errorf("text = %q, want ABé", got)
	}
}

func TestParseInvalidCharRef(t *testing.T) {
	for _, src := range []string{`<a>&#xZZ;</a>`, `<a>&#xD800;</a>`, `<a>&nosuch;</a>`, `<a>&amp</a>`} {
		if _, err := ParseString(src); err == nil {
			t.Errorf("ParseString(%q) succeeded, want error", src)
		}
	}
}

func TestParseCDATA(t *testing.T) {
	doc := mustParse(t, `<a><![CDATA[<not> & parsed]]></a>`)
	if got := doc.Root.Text(); got != "<not> & parsed" {
		t.Errorf("text = %q", got)
	}
}

func TestParseCommentsAndPIs(t *testing.T) {
	doc := mustParse(t, `<?xml version="1.0"?><!-- c --><a><!-- inner --><?pi data?><b/></a><!-- after -->`)
	if len(doc.Root.ChildElements()) != 1 {
		t.Fatalf("child elements = %v, want [b]", doc.Root.ChildTags())
	}
}

func TestParseCommentDoubleDashRejected(t *testing.T) {
	if _, err := ParseString(`<a><!-- bad -- comment --></a>`); err == nil {
		t.Fatal("comment containing -- accepted")
	}
}

func TestParseWhitespaceHandling(t *testing.T) {
	src := "<a>\n  <b/>\n  <c/>\n</a>"
	doc := mustParse(t, src)
	if n := len(doc.Root.Children); n != 2 {
		t.Fatalf("default parse children = %d, want 2 (whitespace dropped)", n)
	}
	doc2, err := ParseWithOptions(strings.NewReader(src), Options{PreserveWhitespace: true})
	if err != nil {
		t.Fatal(err)
	}
	if n := len(doc2.Root.Children); n != 5 {
		t.Fatalf("preserving parse children = %d, want 5", n)
	}
}

func TestParseDoctype(t *testing.T) {
	src := `<!DOCTYPE a SYSTEM "a.dtd" [
  <!ELEMENT a (b, c)>
  <!ENTITY greet "hi <b>there</b>">
]>
<a>&greet;</a>`
	doc := mustParse(t, src)
	dt := doc.Doctype
	if dt == nil {
		t.Fatal("no doctype parsed")
	}
	if dt.Name != "a" || dt.SystemID != "a.dtd" {
		t.Errorf("doctype = %+v", dt)
	}
	if !strings.Contains(dt.InternalSubset, "<!ELEMENT a (b, c)>") {
		t.Errorf("internal subset = %q", dt.InternalSubset)
	}
	// The general entity from the subset expands in content. Entity
	// replacement text is inserted as character data by this parser.
	if got := doc.Root.Text(); got != "hi <b>there</b>" {
		t.Errorf("expanded entity text = %q", got)
	}
}

func TestParseDoctypePublic(t *testing.T) {
	doc := mustParse(t, `<!DOCTYPE html PUBLIC "-//W3C//DTD XHTML 1.0//EN" "http://x/dtd"><html/>`)
	if doc.Doctype.PublicID != "-//W3C//DTD XHTML 1.0//EN" || doc.Doctype.SystemID != "http://x/dtd" {
		t.Errorf("doctype = %+v", doc.Doctype)
	}
}

func TestParseDoctypeSubsetWithBracketInLiteral(t *testing.T) {
	src := `<!DOCTYPE a [ <!ENTITY e "va]ue"> ]><a>&e;</a>`
	doc := mustParse(t, src)
	if got := doc.Root.Text(); got != "va]ue" {
		t.Errorf("text = %q, want va]ue", got)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"empty", ""},
		{"text only", "hello"},
		{"mismatched tags", "<a></b>"},
		{"unterminated", "<a><b></a>"},
		{"content after root", "<a/><b/>"},
		{"two roots", "<a></a><b></b>"},
		{"bad name", "<1a/>"},
		{"unterminated comment", "<a><!-- x</a>"},
		{"unterminated cdata", "<a><![CDATA[x</a>"},
		{"attr without value", `<a x/>`},
		{"unquoted attr", `<a x=1/>`},
		{"stray close", "</a>"},
		{"unterminated doctype", "<!DOCTYPE a [<!ELEMENT a (b)>"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseString(tc.src); err == nil {
				t.Errorf("ParseString(%q) succeeded, want error", tc.src)
			}
		})
	}
}

func TestParseErrorPosition(t *testing.T) {
	_, err := ParseString("<a>\n  <b></c>\n</a>")
	perr, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("error type = %T (%v), want *ParseError", err, err)
	}
	if perr.Line != 2 {
		t.Errorf("error line = %d, want 2", perr.Line)
	}
}

func TestParseDepthLimit(t *testing.T) {
	var b strings.Builder
	for i := 0; i < 50; i++ {
		b.WriteString("<a>")
	}
	for i := 0; i < 50; i++ {
		b.WriteString("</a>")
	}
	if _, err := ParseWithOptions(strings.NewReader(b.String()), Options{MaxDepth: 10}); err == nil {
		t.Fatal("depth limit not enforced")
	}
	if _, err := ParseWithOptions(strings.NewReader(b.String()), Options{MaxDepth: 100}); err != nil {
		t.Fatalf("parse under limit: %v", err)
	}
}

func TestParseBOM(t *testing.T) {
	doc := mustParse(t, "\xef\xbb\xbf<a/>")
	if doc.Root.Name != "a" {
		t.Fatalf("root = %v", doc.Root)
	}
}

func TestParseUTF8Content(t *testing.T) {
	doc := mustParse(t, `<città><名前>値</名前></città>`)
	if doc.Root.Name != "città" {
		t.Errorf("root = %q", doc.Root.Name)
	}
	if doc.Root.ChildElements()[0].Name != "名前" {
		t.Errorf("child = %q", doc.Root.ChildElements()[0].Name)
	}
}
