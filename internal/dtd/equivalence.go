package dtd

import "sort"

// Language equivalence of content models: two models are equivalent when
// they accept exactly the same child-tag sequences. The paper's DTD
// re-writing rules promise equivalence ("with the same set of valid
// documents"); Equivalent makes that promise checkable, and the evaluation
// harness uses it to decide whether an evolved DTD recovered a drifted
// ground truth exactly.
//
// The check builds the Glushkov automaton of each model (positions as
// states), determinizes both over the union alphabet with the subset
// construction, and searches the product DFA for a state pair disagreeing
// on acceptance.

// Equivalent reports whether two content models accept the same set of
// child-element sequences. Character data is ignored: (#PCDATA) and EMPTY
// are equivalent at the child-sequence level, while ANY (which admits any
// declared element) is only equivalent to ANY.
func Equivalent(a, b *Content) bool {
	if a == nil || b == nil {
		return a == b
	}
	// ANY is not a regular language over a fixed alphabet here; treat it
	// nominally.
	if a.Kind == Any || b.Kind == Any {
		return a.Kind == b.Kind
	}
	da := determinize(a)
	db := determinize(b)
	return dfaEquivalent(da, db)
}

// EquivalentDTDs reports whether two DTDs declare the same element names
// with pairwise equivalent content models.
func EquivalentDTDs(a, b *DTD) bool {
	if len(a.Elements) != len(b.Elements) {
		return false
	}
	for name, ma := range a.Elements {
		mb, ok := b.Elements[name]
		if !ok || !Equivalent(ma, mb) {
			return false
		}
	}
	return true
}

// dfa is a deterministic automaton over element names.
type dfa struct {
	// trans[state][symbol] = next state; missing entries go to the
	// implicit dead state (-1).
	trans  []map[string]int
	accept []bool
}

// determinize builds the DFA of a content model via Glushkov positions and
// the subset construction.
func determinize(c *Content) *dfa {
	g := buildGlushkov(c)
	nullable := contentNullable(c)

	// last positions: those that can end a word. Recompute via gsets on a
	// fresh build to obtain last (buildGlushkov keeps only first/follow).
	lastSet := glushkovLast(c)
	isLast := make(map[int]bool, len(lastSet))
	for _, p := range lastSet {
		isLast[p] = true
	}

	type subset string // canonical key of a sorted position set
	key := func(ps []int, initial bool) subset {
		sort.Ints(ps)
		b := make([]byte, 0, len(ps)*2+1)
		// The initial state carries its own acceptance (nullability), so
		// it must not collide with an equal follow-derived subset.
		if initial {
			b = append(b, 0xFF)
		}
		for _, p := range ps {
			b = append(b, byte(p>>8), byte(p))
		}
		return subset(b)
	}
	// A DFA state is the set of positions that could have matched the last
	// consumed symbol. The initial state (no symbol consumed) accepts iff
	// the model is nullable; any other state accepts iff it contains a
	// last position.
	acceptOf := func(ps []int, initial bool) bool {
		if initial {
			return nullable
		}
		for _, p := range ps {
			if isLast[p] {
				return true
			}
		}
		return false
	}

	d := &dfa{}
	index := make(map[subset]int)
	var queue [][]int
	var ids []int // queue-parallel state ids

	addState := func(ps []int, initial bool) int {
		k := key(ps, initial)
		if id, ok := index[k]; ok {
			return id
		}
		id := len(d.trans)
		index[k] = id
		d.trans = append(d.trans, make(map[string]int))
		d.accept = append(d.accept, acceptOf(ps, initial))
		queue = append(queue, ps)
		ids = append(ids, id)
		return id
	}

	// The initial state's successors come from the first set; every other
	// state's successors come from the union of its follow sets. Both are
	// grouped by the *successor's* symbol.
	successors := func(candidates []int) map[string][]int {
		bySym := make(map[string][]int)
		for _, q := range candidates {
			bySym[g.names[q]] = append(bySym[g.names[q]], q)
		}
		return bySym
	}

	startID := addState(nil, true)
	bySym := successors(g.first)
	installTransitions(d, startID, bySym, addState)
	for i := 1; i < len(queue); i++ {
		ps := queue[i]
		id := ids[i]
		var candidates []int
		for _, p := range ps {
			candidates = append(candidates, g.follow[p]...)
		}
		installTransitions(d, id, successors(dedupInts(candidates)), addState)
	}
	return d
}

func installTransitions(d *dfa, from int, bySym map[string][]int, addState func([]int, bool) int) {
	syms := make([]string, 0, len(bySym))
	for s := range bySym {
		syms = append(syms, s)
	}
	sort.Strings(syms)
	for _, s := range syms {
		d.trans[from][s] = addState(dedupInts(bySym[s]), false)
	}
}

func dedupInts(in []int) []int {
	sort.Ints(in)
	out := in[:0]
	for i, v := range in {
		if i == 0 || v != in[i-1] {
			out = append(out, v)
		}
	}
	return out
}

func contentNullable(c *Content) bool { return c.Nullable() }

// glushkovLast returns the last-position set of a content model.
func glushkovLast(c *Content) []int {
	g := &glushkov{follow: make(map[int][]int)}
	return g.build(c).last
}

// dfaEquivalent checks DFA equivalence with a product-automaton BFS
// (Hopcroft–Karp style union of reached pairs). State -1 is the dead state
// of either machine.
func dfaEquivalent(a, b *dfa) bool {
	type pair struct{ x, y int }
	seen := map[pair]bool{}
	queue := []pair{{0, 0}}
	acceptOf := func(d *dfa, s int) bool { return s >= 0 && d.accept[s] }
	transOf := func(d *dfa, s int, sym string) int {
		if s < 0 {
			return -1
		}
		if t, ok := d.trans[s][sym]; ok {
			return t
		}
		return -1
	}
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		if seen[p] {
			continue
		}
		seen[p] = true
		if acceptOf(a, p.x) != acceptOf(b, p.y) {
			return false
		}
		// The union of outgoing symbols from both states.
		syms := make(map[string]bool)
		if p.x >= 0 {
			for s := range a.trans[p.x] {
				syms[s] = true
			}
		}
		if p.y >= 0 {
			for s := range b.trans[p.y] {
				syms[s] = true
			}
		}
		for s := range syms {
			queue = append(queue, pair{transOf(a, p.x, s), transOf(b, p.y, s)})
		}
	}
	return true
}
