package dtd

import (
	"fmt"
	"sort"
)

// XML 1.0 requires content models to be deterministic ("compatibility"
// constraint, Appendix E): while matching a child sequence, an element must
// match exactly one occurrence of its name in the model without lookahead.
// Formally, in the Glushkov automaton of the model no state may carry two
// outgoing transitions on the same element name.
//
// Evolved declarations — in particular misc-window merges like
// ((a, b) | (a, c)) — can be nondeterministic; they are still well-defined
// DTDs for this library's NFA-based validator, but a strictly conforming
// XML processor may reject them. CheckDeterminism lets callers detect (and
// reformulate) such declarations.

// CheckDeterminism returns a description of every determinism conflict in
// the content model: pairs of competing occurrences of the same element
// name. An empty result means the model satisfies the XML 1.0
// deterministic-content-model constraint.
func CheckDeterminism(c *Content) []string {
	if c == nil {
		return nil
	}
	g := buildGlushkov(c)
	var out []string
	seen := make(map[string]bool)
	report := func(context string, set []int) {
		byName := make(map[string][]int)
		for _, p := range set {
			name := g.names[p]
			byName[name] = append(byName[name], p)
		}
		names := make([]string, 0, len(byName))
		for name, ps := range byName {
			if len(ps) > 1 {
				names = append(names, name)
			}
		}
		sort.Strings(names)
		for _, name := range names {
			msg := fmt.Sprintf("%s: element %q matches %d competing occurrences", context, name, len(byName[name]))
			if !seen[msg] {
				seen[msg] = true
				out = append(out, msg)
			}
		}
	}
	report("at start", g.first)
	positions := make([]int, 0, len(g.follow))
	for p := range g.follow {
		positions = append(positions, p)
	}
	sort.Ints(positions)
	for _, p := range positions {
		report(fmt.Sprintf("after %q", g.names[p]), g.follow[p])
	}
	return out
}

// IsDeterministic reports whether the content model satisfies the XML 1.0
// determinism constraint.
func IsDeterministic(c *Content) bool {
	return len(CheckDeterminism(c)) == 0
}

// DTDDeterminism returns the determinism conflicts of every declaration,
// keyed by element name; an empty map means the whole DTD is deterministic.
func DTDDeterminism(d *DTD) map[string][]string {
	out := make(map[string][]string)
	for name, model := range d.Elements {
		if issues := CheckDeterminism(model); len(issues) > 0 {
			out[name] = issues
		}
	}
	return out
}

// glushkov holds position-based first/follow sets of a content model.
type glushkov struct {
	names  []string      // position -> element name
	first  []int         // positions matching the first child
	follow map[int][]int // position -> positions matching the next child
}

type gsets struct {
	nullable bool
	first    []int
	last     []int
}

func buildGlushkov(c *Content) *glushkov {
	g := &glushkov{follow: make(map[int][]int)}
	root := g.build(c)
	g.first = root.first
	return g
}

func (g *glushkov) newPos(name string) int {
	g.names = append(g.names, name)
	return len(g.names) - 1
}

func (g *glushkov) addFollow(from int, to []int) {
	g.follow[from] = append(g.follow[from], to...)
}

func (g *glushkov) build(c *Content) gsets {
	switch c.Kind {
	case Name:
		p := g.newPos(c.Name)
		return gsets{first: []int{p}, last: []int{p}}
	case PCDATA, Empty, Any:
		return gsets{nullable: true}
	case Opt:
		s := g.build(c.Children[0])
		s.nullable = true
		return s
	case Star:
		s := g.build(c.Children[0])
		for _, p := range s.last {
			g.addFollow(p, s.first)
		}
		s.nullable = true
		return s
	case Plus:
		s := g.build(c.Children[0])
		for _, p := range s.last {
			g.addFollow(p, s.first)
		}
		return s
	case Choice:
		out := gsets{}
		for _, ch := range c.Children {
			s := g.build(ch)
			out.nullable = out.nullable || s.nullable
			out.first = append(out.first, s.first...)
			out.last = append(out.last, s.last...)
		}
		return out
	case Seq:
		out := gsets{nullable: true}
		for _, ch := range c.Children {
			s := g.build(ch)
			for _, p := range out.last {
				g.addFollow(p, s.first)
			}
			if out.nullable {
				out.first = append(out.first, s.first...)
			}
			if s.nullable {
				out.last = append(out.last, s.last...)
			} else {
				out.last = s.last
			}
			out.nullable = out.nullable && s.nullable
		}
		return out
	default:
		return gsets{nullable: true}
	}
}
