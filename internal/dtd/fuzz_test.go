package dtd

import "testing"

// FuzzParseDTD checks the declaration parser never panics and that accepted
// DTDs round-trip through the serializer.
func FuzzParseDTD(f *testing.F) {
	seeds := []string{
		`<!ELEMENT a (b, c)>`,
		`<!ELEMENT a (#PCDATA | b)*> <!ELEMENT b EMPTY>`,
		`<!ELEMENT a ((b | c)+, d?)> <!ATTLIST a x CDATA #REQUIRED>`,
		`<!ENTITY % p "(x | y)"> <!ELEMENT a %p;>`,
		`<!-- comment --> <?pi?> <!NOTATION n SYSTEM "s">`,
		`<!ELEMENT a (b,>`,
		`<!ELEMENT (b)>`,
		`<!ELEMENT a EMPTY> <!ELEMENT a ANY>`,
		`<!ATTLIST a k (v1 | v2) "v1">`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		d, err := ParseString(src)
		if err != nil {
			return
		}
		out := d.String()
		d2, err := ParseString(out)
		if err != nil {
			t.Fatalf("serialized DTD does not reparse: %v\nsrc: %q\nout: %q", err, src, out)
		}
		if !d.Equal(d2) {
			t.Fatalf("round trip changed DTD\nsrc: %q\nout: %q", src, out)
		}
	})
}

// FuzzParseContentModel additionally checks that Rewrite of any accepted
// model terminates and preserves nullability.
func FuzzParseContentModel(f *testing.F) {
	seeds := []string{
		"(a)", "(a, b?)", "((a | b)*, c+)", "EMPTY", "ANY",
		"(#PCDATA)", "(#PCDATA | a | b)*", "((a))", "(a,)", "(a | b, c)",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		m, err := ParseContentModel(src)
		if err != nil {
			return
		}
		rw := Rewrite(m)
		if rw.Nullable() != m.Nullable() {
			t.Fatalf("Rewrite changed nullability of %q: %s -> %s", src, m, rw)
		}
		if _, err := ParseContentModel(rw.String()); err != nil {
			t.Fatalf("rewritten model does not reparse: %v (%s)", err, rw)
		}
	})
}
