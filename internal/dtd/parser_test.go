package dtd

import (
	"reflect"
	"strings"
	"testing"
)

func TestParsePaperFigure2DTD(t *testing.T) {
	// Figure 2(c) of the paper.
	src := `
<!ELEMENT a (b, c)>
<!ELEMENT b (#PCDATA)>
<!ELEMENT c (d)>
<!ELEMENT d (#PCDATA)>`
	d, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(d.Elements); got != 4 {
		t.Fatalf("elements = %d, want 4", got)
	}
	a := d.Elements["a"]
	if a.Kind != Seq || len(a.Children) != 2 ||
		a.Children[0].Name != "b" || a.Children[1].Name != "c" {
		t.Errorf("a = %s, want (b, c)", a)
	}
	if d.Elements["b"].Kind != PCDATA {
		t.Errorf("b = %s, want (#PCDATA)", d.Elements["b"])
	}
	if c := d.Elements["c"]; c.Kind != Name || c.Name != "d" {
		t.Errorf("c = %s, want (d)", c)
	}
	// Paper: αβ(a) = {b, c}, independent of operators.
	if got := a.Labels(); !reflect.DeepEqual(got, []string{"b", "c"}) {
		t.Errorf("αβ(a) = %v, want [b c]", got)
	}
	// Figure 2(d) tree representation: AND with children b, c.
	want := "AND\n  b\n  c\n"
	if got := a.TreeString(); got != want {
		t.Errorf("tree =\n%s\nwant:\n%s", got, want)
	}
	if !reflect.DeepEqual(d.Order, []string{"a", "b", "c", "d"}) {
		t.Errorf("order = %v", d.Order)
	}
}

func TestParseContentModels(t *testing.T) {
	cases := []struct {
		src  string
		want string // canonical String() rendering
	}{
		{"EMPTY", "EMPTY"},
		{"ANY", "ANY"},
		{"(#PCDATA)", "(#PCDATA)"},
		{"(#PCDATA)*", "(#PCDATA)"},
		{"(#PCDATA | b | c)*", "(#PCDATA | b | c)*"},
		{"(a)", "(a)"},
		{"(a)?", "(a)?"},
		{"(a, b)", "(a, b)"},
		{"(a | b)", "(a | b)"},
		{"(a, b?, c*)", "(a, b?, c*)"},
		{"(a, (b | c)+, d)", "(a, (b | c)+, d)"},
		{"((a, b) | (c, d))*", "((a, b) | (c, d))*"},
		{"( a , b )", "(a, b)"},
		{"(a,b,c,d,e)", "(a, b, c, d, e)"},
		{"(a+)", "(a)+"},
	}
	for _, tc := range cases {
		t.Run(tc.src, func(t *testing.T) {
			m, err := ParseContentModel(tc.src)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			got := m.String()
			if got != tc.want {
				t.Errorf("String() = %q, want %q", got, tc.want)
			}
			// Whatever we print must reparse to an equal model.
			m2, err := ParseContentModel(got)
			if err != nil {
				t.Fatalf("reparse %q: %v", got, err)
			}
			if !m.Equal(m2) {
				t.Errorf("round trip changed model: %s vs %s", m, m2)
			}
		})
	}
}

func TestParseMixedRepresentation(t *testing.T) {
	m, err := ParseContentModel("(#PCDATA | em | strong)*")
	if err != nil {
		t.Fatal(err)
	}
	if !m.IsMixed() {
		t.Error("IsMixed = false")
	}
	if m.Kind != Star || m.Children[0].Kind != Choice {
		t.Fatalf("structure = %s", m.TreeString())
	}
	if got := m.Labels(); !reflect.DeepEqual(got, []string{"em", "strong"}) {
		t.Errorf("labels = %v", got)
	}
	plain, _ := ParseContentModel("(#PCDATA)")
	if !plain.IsMixed() {
		t.Error("(#PCDATA) IsMixed = false")
	}
	elems, _ := ParseContentModel("(a, b)")
	if elems.IsMixed() {
		t.Error("(a, b) IsMixed = true")
	}
}

func TestParseMixedErrors(t *testing.T) {
	for _, src := range []string{
		"(#PCDATA | a)",  // missing *
		"(#PCDATA, a)*",  // ',' not allowed
		"(a | #PCDATA)*", // #PCDATA must come first
	} {
		if _, err := ParseContentModel(src); err == nil {
			t.Errorf("ParseContentModel(%q) succeeded, want error", src)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"<!ELEMENT a>",            // missing content spec
		"<!ELEMENT a (b,>",        // truncated group
		"<!ELEMENT a (b | c, d)>", // mixed separators
		"<!ELEMENT a (b))>",       // extra paren
		"<!ELEMENT (b)>",          // missing name
		"<!ELEMENT a (b) extra>",  // junk before '>'
		"<!BOGUS a (b)>",          // unknown declaration
		"<!ELEMENT a (b)",         // unterminated
	}
	for _, src := range cases {
		if _, err := ParseString(src); err == nil {
			t.Errorf("ParseString(%q) succeeded, want error", src)
		}
	}
}

func TestParseDuplicateElementRejected(t *testing.T) {
	if _, err := ParseString("<!ELEMENT a (b)> <!ELEMENT a (c)>"); err == nil {
		t.Fatal("duplicate element declaration accepted")
	}
}

func TestParseParameterEntities(t *testing.T) {
	src := `
<!ENTITY % inline "(#PCDATA | em)*">
<!ENTITY % heading "title, subtitle?">
<!ELEMENT para %inline;>
<!ELEMENT doc (%heading;, para+)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT subtitle (#PCDATA)>
<!ELEMENT em (#PCDATA)>`
	d, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Elements["para"].String(); got != "(#PCDATA | em)*" {
		t.Errorf("para = %q", got)
	}
	doc := d.Elements["doc"]
	if got := doc.String(); got != "(title, subtitle?, para+)" {
		t.Errorf("doc = %q", got)
	}
}

func TestParseUndeclaredParameterEntity(t *testing.T) {
	if _, err := ParseString("<!ELEMENT a (%nope;)>"); err == nil {
		t.Fatal("undeclared parameter entity accepted")
	}
}

func TestParseAttlist(t *testing.T) {
	src := `
<!ELEMENT a (b)>
<!ELEMENT b EMPTY>
<!ATTLIST a
  id ID #REQUIRED
  lang CDATA #IMPLIED
  version CDATA #FIXED "1.0"
  kind (x | y) "x">`
	d, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	atts := d.Attlists["a"]
	if len(atts) != 4 {
		t.Fatalf("attlist a = %+v, want 4 defs", atts)
	}
	if atts[0] != (AttDef{Name: "id", Type: "ID", Mode: "#REQUIRED"}) {
		t.Errorf("atts[0] = %+v", atts[0])
	}
	if atts[2].Mode != "#FIXED" || atts[2].Default != "1.0" {
		t.Errorf("atts[2] = %+v", atts[2])
	}
	if atts[3].Type != "(x | y)" || atts[3].Default != "x" {
		t.Errorf("atts[3] = %+v", atts[3])
	}
}

func TestParseCommentsAndPIs(t *testing.T) {
	src := `<!-- a comment --> <?pi stuff?> <!ELEMENT a EMPTY> <!NOTATION n SYSTEM "x">`
	d, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Elements) != 1 {
		t.Fatalf("elements = %v", d.Order)
	}
}

func TestParseExternalEntitySkipped(t *testing.T) {
	src := `<!ENTITY chap SYSTEM "chap.xml"> <!ELEMENT a EMPTY>`
	if _, err := ParseString(src); err != nil {
		t.Fatalf("external entity declaration should parse: %v", err)
	}
}

func TestDTDStringRoundTrip(t *testing.T) {
	src := `
<!ELEMENT catalog (product+)>
<!ELEMENT product (name, price?, (tag | category)*)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT price (#PCDATA)>
<!ELEMENT tag (#PCDATA)>
<!ELEMENT category (#PCDATA)>
<!ATTLIST product sku CDATA #REQUIRED>`
	d, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	out := d.String()
	d2, err := ParseString(out)
	if err != nil {
		t.Fatalf("reparse of:\n%s\nerror: %v", out, err)
	}
	if !d.Equal(d2) {
		t.Errorf("round trip changed DTD:\n%s\nvs\n%s", d, d2)
	}
	if !strings.Contains(out, "<!ATTLIST product sku CDATA #REQUIRED>") {
		t.Errorf("attlist lost: %s", out)
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse did not panic on bad input")
		}
	}()
	MustParse("<!ELEMENT broken")
}
