package dtd

import "sort"

// Rewrite returns a simpler content model with the same language
// (set of valid child sequences). It implements the paper's "[2]-style"
// DTD re-writing rules used after the evolution phase:
//
//   - nested AND inside AND and OR inside OR are flattened,
//   - single-child AND/OR groups are unwrapped,
//   - structurally duplicate OR alternatives are removed,
//   - stacked occurrence operators collapse ((x?)* → x*, (x+)? → x*, ...),
//   - a ? around an already-nullable model is dropped,
//   - EMPTY alternatives make the surrounding OR optional,
//   - #PCDATA alternatives move to the front of an OR (mixed-content form).
//
// The input is not modified.
func Rewrite(c *Content) *Content {
	if c == nil {
		return nil
	}
	out := rewrite(c.Clone())
	return out
}

// RewriteDTD returns a copy of d with every content model rewritten.
func RewriteDTD(d *DTD) *DTD {
	out := d.Clone()
	for name, m := range out.Elements {
		out.Elements[name] = rewrite(m)
	}
	return out
}

func rewrite(c *Content) *Content {
	if c == nil {
		return nil
	}
	// Bottom-up: simplify children first.
	for i, ch := range c.Children {
		c.Children[i] = rewrite(ch)
	}
	// Local fixpoint: each rule may enable another.
	for {
		next, changed := simplifyOnce(c)
		c = next
		if !changed {
			return c
		}
		// A rule may have promoted a child that still has unsimplified
		// interactions with the new parent; children themselves are
		// already simplified, so one more local pass suffices per change.
	}
}

func simplifyOnce(c *Content) (*Content, bool) {
	switch c.Kind {
	case Seq, Choice:
		return simplifyGroup(c)
	case Opt, Star, Plus:
		return simplifyOccurrence(c)
	default:
		return c, false
	}
}

func simplifyGroup(c *Content) (*Content, bool) {
	changed := false
	// Flatten same-kind nesting and drop EMPTY from sequences.
	var flat []*Content
	sawEmptyAlt := false
	for _, ch := range c.Children {
		switch {
		case ch.Kind == c.Kind:
			flat = append(flat, ch.Children...)
			changed = true
		case ch.Kind == Empty && c.Kind == Seq:
			changed = true // (EMPTY, x) ≡ (x)
		case ch.Kind == Empty && c.Kind == Choice:
			sawEmptyAlt = true
			changed = true // (EMPTY | x) ≡ (x)?
		default:
			flat = append(flat, ch)
		}
	}
	c.Children = flat
	if c.Kind == Choice {
		// Remove structural duplicates, preserving first occurrence.
		var dedup []*Content
		for _, ch := range c.Children {
			dup := false
			for _, kept := range dedup {
				if ch.Equal(kept) {
					dup = true
					break
				}
			}
			if dup {
				changed = true
				continue
			}
			dedup = append(dedup, ch)
		}
		c.Children = dedup
		// #PCDATA alternatives first (mixed-content canonical form).
		if !sort.SliceIsSorted(c.Children, pcdataFirst(c.Children)) {
			sort.SliceStable(c.Children, pcdataFirst(c.Children))
			changed = true
		}
	}
	switch len(c.Children) {
	case 0:
		return NewEmpty(), true
	case 1:
		inner := c.Children[0]
		if sawEmptyAlt && !inner.Nullable() {
			return NewOpt(inner), true
		}
		return inner, true
	}
	if sawEmptyAlt {
		if c.Nullable() {
			return c, changed
		}
		return NewOpt(c), true
	}
	return c, changed
}

func pcdataFirst(children []*Content) func(i, j int) bool {
	return func(i, j int) bool {
		return children[i].Kind == PCDATA && children[j].Kind != PCDATA
	}
}

func simplifyOccurrence(c *Content) (*Content, bool) {
	inner := c.Children[0]
	switch inner.Kind {
	case Opt:
		// (x?)? → x?; (x?)* → x*; (x?)+ → x*
		switch c.Kind {
		case Opt:
			return inner, true
		case Star, Plus:
			return NewStar(inner.Children[0]), true
		}
	case Star:
		// (x*)? → x*; (x*)* → x*; (x*)+ → x*
		return inner, true
	case Plus:
		// (x+)? → x*; (x+)* → x*; (x+)+ → x+
		switch c.Kind {
		case Opt, Star:
			return NewStar(inner.Children[0]), true
		case Plus:
			return inner, true
		}
	case Empty:
		return NewEmpty(), true
	}
	if c.Kind == Opt && inner.Nullable() {
		// x already matches the empty sequence; the ? is redundant.
		return inner, true
	}
	return c, false
}
