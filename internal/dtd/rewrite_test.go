package dtd

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRewriteRules(t *testing.T) {
	cases := []struct {
		name string
		in   *Content
		want string
	}{
		{"flatten seq", NewSeq(NewSeq(NewName("a"), NewName("b")), NewName("c")), "(a, b, c)"},
		{"flatten choice", NewChoice(NewChoice(NewName("a"), NewName("b")), NewName("c")), "(a | b | c)"},
		{"unwrap single seq", NewSeq(NewName("a")), "(a)"},
		{"unwrap single choice", NewChoice(NewName("a")), "(a)"},
		{"dedupe choice", NewChoice(NewName("a"), NewName("b"), NewName("a")), "(a | b)"},
		{"dedupe structural", NewChoice(NewSeq(NewName("a"), NewName("b")), NewSeq(NewName("a"), NewName("b"))), "(a, b)"},
		{"opt opt", NewOpt(NewOpt(NewName("a"))), "(a)?"},
		{"star opt", NewStar(NewOpt(NewName("a"))), "(a)*"},
		{"plus opt", NewPlus(NewOpt(NewName("a"))), "(a)*"},
		{"opt star", NewOpt(NewStar(NewName("a"))), "(a)*"},
		{"star star", NewStar(NewStar(NewName("a"))), "(a)*"},
		{"plus star", NewPlus(NewStar(NewName("a"))), "(a)*"},
		{"opt plus", NewOpt(NewPlus(NewName("a"))), "(a)*"},
		{"star plus", NewStar(NewPlus(NewName("a"))), "(a)*"},
		{"plus plus", NewPlus(NewPlus(NewName("a"))), "(a)+"},
		{"opt of nullable seq", NewOpt(NewSeq(NewOpt(NewName("a")), NewStar(NewName("b")))), "(a?, b*)"},
		{"empty in seq", NewSeq(NewName("a"), NewEmpty(), NewName("b")), "(a, b)"},
		{"empty alternative", NewChoice(NewEmpty(), NewName("a")), "(a)?"},
		{"empty alternative multi", NewChoice(NewEmpty(), NewName("a"), NewName("b")), "(a | b)?"},
		{"empty group", NewSeq(), "EMPTY"},
		{"star of empty", NewStar(NewEmpty()), "EMPTY"},
		{"pcdata to front", NewStar(NewChoice(NewName("a"), NewPCDATA())), "(#PCDATA | a)*"},
		{"deep combination", NewOpt(NewSeq(NewSeq(NewStar(NewStar(NewName("a")))))), "(a)*"},
		{"untouched", NewSeq(NewName("a"), NewOpt(NewName("b")), NewPlus(NewChoice(NewName("c"), NewName("d")))), "(a, b?, (c | d)+)"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := Rewrite(tc.in)
			if got.String() != tc.want {
				t.Errorf("Rewrite(%s) = %s, want %s", tc.in, got, tc.want)
			}
		})
	}
}

func TestRewriteDoesNotMutateInput(t *testing.T) {
	in := NewSeq(NewSeq(NewName("a")), NewName("b"))
	before := in.String()
	_ = Rewrite(in)
	if in.String() != before {
		t.Errorf("input mutated: %s -> %s", before, in.String())
	}
}

func TestRewriteDTD(t *testing.T) {
	d := NewDTD("a")
	d.Declare("a", NewSeq(NewSeq(NewName("b"), NewName("b")), NewOpt(NewOpt(NewName("c")))))
	d.Declare("b", NewPCDATA())
	d.Declare("c", NewPCDATA())
	out := RewriteDTD(d)
	if got := out.Elements["a"].String(); got != "(b, b, c?)" {
		t.Errorf("rewritten a = %s", got)
	}
	// Original untouched.
	if got := d.Elements["a"].String(); got == "(b, b, c?)" {
		t.Error("RewriteDTD mutated its input")
	}
}

// randomModel builds a random content model for property testing.
func randomModel(r *rand.Rand, depth int) *Content {
	names := []string{"a", "b", "c", "d"}
	if depth > 3 || r.Intn(3) == 0 {
		return NewName(names[r.Intn(len(names))])
	}
	switch r.Intn(6) {
	case 0:
		return NewOpt(randomModel(r, depth+1))
	case 1:
		return NewStar(randomModel(r, depth+1))
	case 2:
		return NewPlus(randomModel(r, depth+1))
	case 3:
		n := 1 + r.Intn(3)
		kids := make([]*Content, n)
		for i := range kids {
			kids[i] = randomModel(r, depth+1)
		}
		return NewSeq(kids...)
	default:
		n := 1 + r.Intn(3)
		kids := make([]*Content, n)
		for i := range kids {
			kids[i] = randomModel(r, depth+1)
		}
		return NewChoice(kids...)
	}
}

func TestPropertyRewriteIdempotentAndSmaller(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := randomModel(r, 0)
		r1 := Rewrite(m)
		r2 := Rewrite(r1)
		if !r1.Equal(r2) {
			t.Logf("not idempotent: %s -> %s -> %s", m, r1, r2)
			return false
		}
		if r1.NodeCount() > m.NodeCount() {
			t.Logf("grew: %s (%d) -> %s (%d)", m, m.NodeCount(), r1, r1.NodeCount())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPropertyRewritePreservesNullability(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := randomModel(r, 0)
		return m.Nullable() == Rewrite(m).Nullable()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPropertyRewritePreservesLabels(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := randomModel(r, 0)
		a, b := m.Labels(), Rewrite(m).Labels()
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
