package dtd

import (
	"reflect"
	"testing"
)

func cm(t *testing.T, src string) *Content {
	t.Helper()
	m, err := ParseContentModel(src)
	if err != nil {
		t.Fatalf("ParseContentModel(%q): %v", src, err)
	}
	return m
}

func TestNullable(t *testing.T) {
	cases := []struct {
		src  string
		want bool
	}{
		{"EMPTY", true},
		{"ANY", true},
		{"(#PCDATA)", true},
		{"(a)", false},
		{"(a?)", true},
		{"(a*)", true},
		{"(a+)", false},
		{"(a, b)", false},
		{"(a?, b?)", true},
		{"(a?, b)", false},
		{"(a | b)", false},
		{"(a? | b)", true},
		{"((a, b)* )", true},
		{"((a | b?), c?)", true},
	}
	for _, tc := range cases {
		if got := cm(t, tc.src).Nullable(); got != tc.want {
			t.Errorf("Nullable(%s) = %v, want %v", tc.src, got, tc.want)
		}
	}
}

func TestLabels(t *testing.T) {
	m := cm(t, "(b, (c | d)*, b?, e+)")
	if got := m.Labels(); !reflect.DeepEqual(got, []string{"b", "c", "d", "e"}) {
		t.Errorf("Labels = %v", got)
	}
	if got := cm(t, "EMPTY").Labels(); len(got) != 0 {
		t.Errorf("Labels(EMPTY) = %v", got)
	}
}

func TestCloneAndEqual(t *testing.T) {
	m := cm(t, "(a, (b | c)+)")
	c := m.Clone()
	if !m.Equal(c) {
		t.Fatal("clone not equal")
	}
	c.Children[1].Children[0].Children[0].Name = "z"
	if m.Equal(c) {
		t.Fatal("mutation of clone affected equality with original (shallow copy?)")
	}
	if m.Children[1].Children[0].Children[0].Name != "b" {
		t.Fatal("mutating clone affected original")
	}
}

func TestNodeCount(t *testing.T) {
	if got := cm(t, "(a)").NodeCount(); got != 1 {
		t.Errorf("NodeCount((a)) = %d, want 1", got)
	}
	// Seq + 2 names + Plus + Choice + 2 names = 7
	if got := cm(t, "(a, b, (c | d)+)").NodeCount(); got != 7 {
		t.Errorf("NodeCount = %d, want 7", got)
	}
}

func TestDTDDeclareAndRoot(t *testing.T) {
	d := NewDTD("doc")
	d.Declare("doc", cm(t, "(p*)"))
	d.Declare("p", NewPCDATA())
	name, model := d.Root()
	if name != "doc" || model.Kind != Star {
		t.Errorf("Root = %q, %s", name, model)
	}
	// Redeclaring replaces but keeps order.
	d.Declare("doc", cm(t, "(p+)"))
	if len(d.Order) != 2 {
		t.Errorf("order = %v", d.Order)
	}
	// Unnamed DTD falls back to first declared element.
	d2 := NewDTD("")
	d2.Declare("x", NewEmpty())
	if name, _ := d2.Root(); name != "x" {
		t.Errorf("Root of unnamed = %q", name)
	}
}

func TestDTDClone(t *testing.T) {
	d := NewDTD("a")
	d.Declare("a", cm(t, "(b)"))
	d.Attlists["a"] = []AttDef{{Name: "id", Type: "ID", Mode: "#REQUIRED"}}
	c := d.Clone()
	if !d.Equal(c) {
		t.Fatal("clone not Equal")
	}
	c.Elements["a"].Name = "z"
	if d.Elements["a"].Name != "b" {
		t.Fatal("clone shares content models")
	}
	c.Attlists["a"][0].Name = "other"
	if d.Attlists["a"][0].Name != "id" {
		t.Fatal("clone shares attlists")
	}
}

func TestContentStringParenthesization(t *testing.T) {
	// A bare name with an occurrence operator at the top level must be
	// parenthesized to stay legal DTD syntax.
	m := NewPlus(NewName("item"))
	s := m.String()
	if s != "(item)+" {
		t.Errorf("String = %q, want (item)+", s)
	}
	if _, err := ParseContentModel(s); err != nil {
		t.Errorf("reparse %q: %v", s, err)
	}
}

func TestTreeStringExample5Result(t *testing.T) {
	// The final DTD declaration of Example 5: ((b, c)*, (d | e)).
	m := cm(t, "((b, c)*, (d | e))")
	want := "AND\n  *\n    AND\n      b\n      c\n  OR\n    d\n    e\n"
	if got := m.TreeString(); got != want {
		t.Errorf("TreeString =\n%s\nwant:\n%s", got, want)
	}
}
