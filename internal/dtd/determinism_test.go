package dtd

import (
	"strings"
	"testing"
)

func TestIsDeterministic(t *testing.T) {
	cases := []struct {
		model string
		want  bool
	}{
		{"EMPTY", true},
		{"ANY", true},
		{"(#PCDATA)", true},
		{"(a)", true},
		{"(a, b)", true},
		{"(a | b)", true},
		{"(a, b?, c*)", true},
		{"((a, b)+, c)", true},
		{"(#PCDATA | a | b)*", true},
		// The classic nondeterministic example: (a, b) | (a, c).
		{"((a, b) | (a, c))", false},
		// (a?, a): after seeing a, is it the first or the second?
		{"(a?, a)", false},
		// (a*, a) likewise.
		{"(a*, a)", false},
		// ((a | b)*, a): after a, loop back or finish?
		{"((a | b)*, a)", false},
		// Deterministic reformulation of (a,b)|(a,c).
		{"(a, (b | c))", true},
		// Repetition with a clear boundary is fine.
		{"((a, b)*, c)", true},
		// Nondeterministic across a nullable boundary: (a?, (a | b)).
		{"(a?, (a | b))", false},
	}
	for _, tc := range cases {
		t.Run(tc.model, func(t *testing.T) {
			m := cm(t, tc.model)
			if got := IsDeterministic(m); got != tc.want {
				t.Errorf("IsDeterministic(%s) = %v, want %v\nissues: %v",
					tc.model, got, tc.want, CheckDeterminism(m))
			}
		})
	}
}

func TestCheckDeterminismMessages(t *testing.T) {
	issues := CheckDeterminism(cm(t, "((a, b) | (a, c))"))
	if len(issues) == 0 {
		t.Fatal("no issues reported")
	}
	if !strings.Contains(issues[0], `element "a"`) {
		t.Errorf("issue = %q, want a mention of element a", issues[0])
	}
	if got := CheckDeterminism(nil); got != nil {
		t.Errorf("nil model issues = %v", got)
	}
}

func TestDTDDeterminism(t *testing.T) {
	d := MustParse(`
<!ELEMENT ok (a, b)>
<!ELEMENT bad ((a, b) | (a, c))>
<!ELEMENT a EMPTY> <!ELEMENT b EMPTY> <!ELEMENT c EMPTY>`)
	issues := DTDDeterminism(d)
	if len(issues) != 1 {
		t.Fatalf("issues = %v, want only bad", issues)
	}
	if _, ok := issues["bad"]; !ok {
		t.Errorf("issues = %v", issues)
	}
}

// The evolution's misc-window merges are the documented source of
// nondeterminism: ((headline, body) | (headline, byline, body)).
func TestMiscMergeShapeDetected(t *testing.T) {
	m := cm(t, "((headline, body) | (headline, byline, body))")
	if IsDeterministic(m) {
		t.Error("merge shape should be flagged as nondeterministic")
	}
}
