package dtd

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestEquivalentBasics(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{"(a)", "(a)", true},
		{"(a)", "(b)", false},
		{"(a, b)", "(a, b)", true},
		{"(a, b)", "(b, a)", false},
		{"(a | b)", "(b | a)", true},
		{"(a?)", "(a | a?)", true},
		{"(a*)", "((a?)+)", true},
		{"(a+)", "(a, a*)", true},
		{"(a*)", "(a+)", false},
		{"((a, b) | (a, c))", "(a, (b | c))", true},
		{"((a | b)*)", "((a* , b*)*)", true},
		{"(a?, b?)", "(b?, a?)", false}, // ab vs ba
		{"EMPTY", "EMPTY", true},
		{"EMPTY", "(a?)", false},
		// Child-sequence level: (#PCDATA) and EMPTY both admit no child
		// elements.
		{"(#PCDATA)", "EMPTY", true},
		{"ANY", "ANY", true},
		{"ANY", "(a*)", false},
		{"(a, (b | c)*, d)", "(a, (c | b)*, d)", true},
		{"((a, b)+)", "(a, b, (a, b)*)", true},
		{"((a, b)+)", "(a, (b, a)*, b)", true}, // same language, shifted
	}
	for _, tc := range cases {
		t.Run(tc.a+" vs "+tc.b, func(t *testing.T) {
			a, b := cm(t, tc.a), cm(t, tc.b)
			if got := Equivalent(a, b); got != tc.want {
				t.Errorf("Equivalent(%s, %s) = %v, want %v", tc.a, tc.b, got, tc.want)
			}
			if got := Equivalent(b, a); got != tc.want {
				t.Errorf("Equivalent(%s, %s) = %v, want %v (asymmetry)", tc.b, tc.a, got, tc.want)
			}
		})
	}
}

func TestEquivalentNil(t *testing.T) {
	if !Equivalent(nil, nil) {
		t.Error("nil vs nil")
	}
	if Equivalent(nil, NewEmpty()) {
		t.Error("nil vs EMPTY")
	}
}

func TestEquivalentDTDs(t *testing.T) {
	a := MustParse(`<!ELEMENT r ((x, y) | (x, z))> <!ELEMENT x EMPTY> <!ELEMENT y EMPTY> <!ELEMENT z EMPTY>`)
	b := MustParse(`<!ELEMENT r (x, (y | z))> <!ELEMENT x EMPTY> <!ELEMENT y EMPTY> <!ELEMENT z EMPTY>`)
	if !EquivalentDTDs(a, b) {
		t.Error("equivalent DTDs not recognized")
	}
	c := MustParse(`<!ELEMENT r (x, y)> <!ELEMENT x EMPTY> <!ELEMENT y EMPTY> <!ELEMENT z EMPTY>`)
	if EquivalentDTDs(a, c) {
		t.Error("different DTDs reported equivalent")
	}
	d := MustParse(`<!ELEMENT r (x, (y | z))> <!ELEMENT x EMPTY> <!ELEMENT y EMPTY>`)
	if EquivalentDTDs(a, d) {
		t.Error("DTDs with different element sets reported equivalent")
	}
}

// TestPropertyRewritePreservesLanguage is the paper's promise about the
// re-writing rules ("with the same set of valid documents"), verified
// exactly via automata equivalence on random models.
func TestPropertyRewritePreservesLanguage(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := randomModel(r, 0)
		if m.Kind == Any {
			return true
		}
		rw := Rewrite(m)
		if rw.Kind == Any || m.HasPCDATA() != rw.HasPCDATA() {
			// PCDATA handling may move within mixed forms; skip those.
			return Equivalent(m, rw) || m.HasPCDATA()
		}
		if !Equivalent(m, rw) {
			t.Logf("language changed: %s -> %s", m, rw)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestEquivalentLargeAlternation(t *testing.T) {
	// Scaling check: a 12-way alternation with repetition determinizes
	// without blowup.
	var parts []string
	for i := 0; i < 12; i++ {
		parts = append(parts, string(rune('a'+i)))
	}
	src := "((" + strings.Join(parts, " | ") + ")*)"
	a, b := cm(t, src), cm(t, src)
	if !Equivalent(a, b) {
		t.Error("self-equivalence failed")
	}
}
